// Parallel multi-CQ evaluation (engine scaling experiment): one eager
// CqManager carrying 64 standing queries over a hot table, driven commit
// by commit. Arg(0) is the evaluation lane count — the same workload at
// --threads 1 is the sequential baseline the determinism contract pins,
// and the 2/4-lane rows show the commit-to-notify speedup the dispatcher
// buys by snapshotting each relation's delta once and fanning the
// trigger-eligible CQs across the pool.
//
// Two companion rows bound the observability layer itself:
//   * BM_MultiCqTracedCommit runs the 4-lane workload with span tracing
//     AND lock-contention profiling on, timing every commit into the
//     multi_cq_traced_commit_us histogram — run with --trace-json to get
//     the Perfetto view of the commits it produced;
//   * BM_MultiCqObsOffCommit runs it with observability forced off,
//     timing every commit into multi_cq_off_commit_us — the committed
//     baseline for this histogram is the "disabled is free" guard CI
//     enforces with a tight threshold (see bench/baselines/multi_cq.json
//     _thresholds).
//
// CI runs this binary under scripts/check_bench.py --strict (the
// bench-check job): the committed baseline encodes the expected >= 2x
// ratio between the 1-lane and 4-lane rows via the derived counters.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_support.hpp"
#include "common/lock_profile.hpp"
#include "common/rng.hpp"
#include "cq/manager.hpp"
#include "workload/sweep.hpp"

namespace cq::bench {
namespace {

constexpr std::size_t kRows = 20000;
constexpr std::size_t kCqs = 64;
constexpr std::size_t kRounds = 12;
constexpr std::size_t kUpdatesPerRound = 96;
constexpr std::size_t kUpdatesPerCommit = 8;
constexpr std::size_t kCommits = kRounds * (kUpdatesPerRound / kUpdatesPerCommit);

/// The shared workload: a hot table, 64 overlapping standing queries, an
/// eager manager at the requested lane count.
struct MultiCqWorkload {
  cat::Database db;
  std::unique_ptr<wl::SweepTable> table;
  std::unique_ptr<core::CqManager> manager;
};

std::unique_ptr<MultiCqWorkload> make_workload(std::size_t threads) {
  auto w = std::make_unique<MultiCqWorkload>();
  common::Rng rng(0x64c0 ^ threads);
  w->table = std::make_unique<wl::SweepTable>(w->db, "S", kRows, 64, rng);
  w->manager = std::make_unique<core::CqManager>(w->db);
  for (std::size_t i = 0; i < kCqs; ++i) {
    // Overlapping 4%-wide key bands: every commit is relevant to every
    // CQ, so each commit fans all 64 evaluations across the lanes.
    const std::int64_t lo = static_cast<std::int64_t>(i) * wl::kSweepKeySpace /
                            static_cast<std::int64_t>(kCqs);
    core::CqSpec spec;
    spec.name = "cq" + std::to_string(i);
    qry::SpjQuery q;
    q.from.push_back({"S", ""});
    q.where = alg::Expr::between(alg::Expr::col("key"), rel::Value(lo),
                                 rel::Value(lo + wl::kSweepKeySpace / 25));
    spec.query = std::move(q);
    spec.trigger = core::triggers::on_change();
    spec.strategy = core::ExecutionStrategy::kDra;
    spec.mode = core::DeliveryMode::kComplete;
    w->manager->install(std::move(spec), nullptr);
  }
  w->manager->set_parallelism(threads);
  w->manager->set_eager(true);
  return w;
}

void attach_commit_counters(benchmark::State& state, std::size_t threads) {
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kCommits));
  state.counters["commits_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * static_cast<std::int64_t>(kCommits)),
      benchmark::Counter::kIsRate);
  state.counters["lanes"] = static_cast<double>(threads);
}

void BM_MultiCqCommitToNotify(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));

  for (auto _ : state) {
    state.PauseTiming();
    auto w = make_workload(threads);
    state.ResumeTiming();

    // Timed region: the commit IS the dispatch (eager mode), so this
    // measures commit-to-notify latency across all standing queries.
    for (std::size_t round = 0; round < kRounds; ++round) {
      w->table->update(kUpdatesPerRound, {}, kUpdatesPerCommit);
    }

    state.PauseTiming();
    export_metrics(state, w->manager->metrics());
    state.ResumeTiming();
  }

  attach_commit_counters(state, threads);
}

void multi_cq_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t threads : {1, 2, 4}) b->Arg(threads);
  b->Unit(benchmark::kMillisecond)->Iterations(3);
}

BENCHMARK(BM_MultiCqCommitToNotify)->Apply(multi_cq_args);

/// Run the commit schedule one commit at a time, recording each commit's
/// wall time in microseconds into `commit_us`.
void run_timed_commits(wl::SweepTable& table, common::obs::Histogram& commit_us) {
  for (std::size_t commit = 0; commit < kCommits; ++commit) {
    const std::uint64_t t0 = common::obs::now_ns();
    table.update(kUpdatesPerCommit, {}, kUpdatesPerCommit);
    commit_us.record((common::obs::now_ns() - t0) / 1000);
  }
}

/// RAII save/force/restore for the two observability switches, so the
/// companion rows can pin their instrumentation state regardless of the
/// --stats-json / --trace-json flags.
struct ObsState {
  ObsState(bool obs_on, bool lockprof_on)
      : obs_was_(common::obs::enabled()),
        lockprof_was_(common::lockprof::enabled()) {
    common::obs::set_enabled(obs_on);
    common::lockprof::set_enabled(lockprof_on);
  }
  ~ObsState() {
    common::obs::set_enabled(obs_was_);
    common::lockprof::set_enabled(lockprof_was_);
  }
  bool obs_was_;
  bool lockprof_was_;
};

void BM_MultiCqTracedCommit(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  static common::obs::Histogram& commit_us =
      common::obs::global().histogram("multi_cq_traced_commit_us");

  for (auto _ : state) {
    state.PauseTiming();
    auto w = make_workload(threads);
    const ObsState obs(/*obs_on=*/true, /*lockprof_on=*/true);
    state.ResumeTiming();

    run_timed_commits(*w->table, commit_us);

    state.PauseTiming();
    export_metrics(state, w->manager->metrics());
    state.ResumeTiming();
  }

  attach_commit_counters(state, threads);
}

BENCHMARK(BM_MultiCqTracedCommit)->Arg(4)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_MultiCqObsOffCommit(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  static common::obs::Histogram& commit_us =
      common::obs::global().histogram("multi_cq_off_commit_us");

  for (auto _ : state) {
    state.PauseTiming();
    auto w = make_workload(threads);
    const ObsState obs(/*obs_on=*/false, /*lockprof_on=*/false);
    state.ResumeTiming();

    run_timed_commits(*w->table, commit_us);

    state.PauseTiming();
    export_metrics(state, w->manager->metrics());
    state.ResumeTiming();
  }

  attach_commit_counters(state, threads);
}

BENCHMARK(BM_MultiCqObsOffCommit)->Arg(4)->Unit(benchmark::kMillisecond)->Iterations(3);

/// Lineage companion rows: the same 4-lane workload with notification
/// provenance collection ON (multi_cq_lineage_commit_us — every commit
/// tags deltas, merges sets through the DRA, and retains per-CQ records)
/// and with it OFF (multi_cq_lineage_off_commit_us — the committed
/// baseline's tight threshold is the "lineage off is free" guard: the
/// per-tuple provenance pointer and the enabled() branch must not move
/// commit latency).
void BM_MultiCqLineageCommit(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const bool lineage_on = state.range(1) != 0;
  static common::obs::Histogram& on_us =
      common::obs::global().histogram("multi_cq_lineage_commit_us");
  static common::obs::Histogram& off_us =
      common::obs::global().histogram("multi_cq_lineage_off_commit_us");

  for (auto _ : state) {
    state.PauseTiming();
    auto w = make_workload(threads);
    const ObsState obs(/*obs_on=*/false, /*lockprof_on=*/false);
    w->manager->set_lineage(lineage_on);
    state.ResumeTiming();

    run_timed_commits(*w->table, lineage_on ? on_us : off_us);

    state.PauseTiming();
    w->manager->set_lineage(false);
    export_metrics(state, w->manager->metrics());
    state.ResumeTiming();
  }

  attach_commit_counters(state, threads);
  state.counters["lineage"] = lineage_on ? 1.0 : 0.0;
}

BENCHMARK(BM_MultiCqLineageCommit)
    ->Args({4, 1})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
