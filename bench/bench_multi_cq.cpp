// Parallel multi-CQ evaluation (engine scaling experiment): one eager
// CqManager carrying 64 standing queries over a hot table, driven commit
// by commit. Arg(0) is the evaluation lane count — the same workload at
// --threads 1 is the sequential baseline the determinism contract pins,
// and the 2/4-lane rows show the commit-to-notify speedup the dispatcher
// buys by snapshotting each relation's delta once and fanning the
// trigger-eligible CQs across the pool.
//
// CI runs this binary under scripts/check_bench.py --strict (the
// bench-check job): the committed baseline encodes the expected >= 2x
// ratio between the 1-lane and 4-lane rows via the derived counters.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "common/rng.hpp"
#include "cq/manager.hpp"
#include "workload/sweep.hpp"

namespace cq::bench {
namespace {

constexpr std::size_t kRows = 20000;
constexpr std::size_t kCqs = 64;
constexpr std::size_t kRounds = 12;
constexpr std::size_t kUpdatesPerRound = 96;
constexpr std::size_t kUpdatesPerCommit = 8;

void BM_MultiCqCommitToNotify(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));

  for (auto _ : state) {
    state.PauseTiming();
    common::Rng rng(0x64c0 ^ threads);
    cat::Database db;
    wl::SweepTable table(db, "S", kRows, 64, rng);
    core::CqManager manager(db);
    for (std::size_t i = 0; i < kCqs; ++i) {
      // Overlapping 4%-wide key bands: every commit is relevant to every
      // CQ, so each commit fans all 64 evaluations across the lanes.
      const std::int64_t lo = static_cast<std::int64_t>(i) * wl::kSweepKeySpace /
                              static_cast<std::int64_t>(kCqs);
      core::CqSpec spec;
      spec.name = "cq" + std::to_string(i);
      qry::SpjQuery q;
      q.from.push_back({"S", ""});
      q.where = alg::Expr::between(alg::Expr::col("key"), rel::Value(lo),
                                   rel::Value(lo + wl::kSweepKeySpace / 25));
      spec.query = std::move(q);
      spec.trigger = core::triggers::on_change();
      spec.strategy = core::ExecutionStrategy::kDra;
      spec.mode = core::DeliveryMode::kComplete;
      manager.install(std::move(spec), nullptr);
    }
    manager.set_parallelism(threads);
    manager.set_eager(true);
    state.ResumeTiming();

    // Timed region: the commit IS the dispatch (eager mode), so this
    // measures commit-to-notify latency across all standing queries.
    for (std::size_t round = 0; round < kRounds; ++round) {
      table.update(kUpdatesPerRound, {}, kUpdatesPerCommit);
    }

    state.PauseTiming();
    export_metrics(state, manager.metrics());
    state.ResumeTiming();
  }

  const auto commits = static_cast<std::int64_t>(kRounds) *
                       static_cast<std::int64_t>(kUpdatesPerRound / kUpdatesPerCommit);
  state.SetItemsProcessed(state.iterations() * commits);
  state.counters["commits_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * commits), benchmark::Counter::kIsRate);
  state.counters["lanes"] = static_cast<double>(threads);
}

void multi_cq_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t threads : {1, 2, 4}) b->Arg(threads);
  b->Unit(benchmark::kMillisecond)->Iterations(3);
}

BENCHMARK(BM_MultiCqCommitToNotify)->Apply(multi_cq_args);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
