// Shared benchmark scaffolding: deterministic database construction for
// the E1-E8 sweeps (DESIGN.md experiment index) and counter helpers.
//
// Conventions used by every bench binary:
//   * workloads are built once per Args combination and cached, so the
//     timed region contains only the algorithm under test;
//   * dra_differential / recompute are pure (they never consume the delta
//     log), so repeated iterations measure identical work;
//   * paper-relevant cost quantities (delta rows read, base rows scanned,
//     bytes shipped) are exported as benchmark counters next to wall time.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "catalog/database.hpp"
#include "common/observability.hpp"
#include "common/rng.hpp"
#include "cq/dra.hpp"
#include "cq/propagate.hpp"
#include "workload/sweep.hpp"

namespace cq::bench {

/// One prepared scenario: a table of `rows`, a snapshot of the CQ result,
/// then `updates` random updates. The DRA evaluates (db, t0); the
/// recompute baseline evaluates (db) and diffs against `before`.
struct Scenario {
  cat::Database db;
  std::unique_ptr<wl::SweepTable> table;
  qry::SpjQuery query;
  rel::Relation before;
  common::Timestamp t0;
};

/// Build (or fetch the cached) single-table selection scenario.
inline const Scenario& selection_scenario(std::size_t rows, std::size_t updates,
                                          double selectivity,
                                          double modify_fraction = 1.0 / 3,
                                          double delete_fraction = 1.0 / 3) {
  using Key = std::tuple<std::size_t, std::size_t, int, int, int>;
  static std::map<Key, std::unique_ptr<Scenario>> cache;
  const Key key{rows, updates, static_cast<int>(selectivity * 1e6),
                static_cast<int>(modify_fraction * 1e6),
                static_cast<int>(delete_fraction * 1e6)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto s = std::make_unique<Scenario>();
    common::Rng rng(0xbe11c0de ^ rows ^ (updates << 20));
    s->table = std::make_unique<wl::SweepTable>(s->db, "S", rows, 64, rng);
    s->query = s->table->selection_query(selectivity);
    s->before = core::recompute(s->query, s->db);
    s->t0 = s->db.clock().now();
    s->table->update(updates, {.modify_fraction = modify_fraction,
                               .delete_fraction = delete_fraction});
    it = cache.emplace(key, std::move(s)).first;
  }
  return *it->second;
}

/// Multi-table equi-join scenario; `changed` of the tables receive updates.
struct JoinScenario {
  cat::Database db;
  std::vector<std::unique_ptr<wl::SweepTable>> tables;
  qry::SpjQuery query;
  rel::Relation before;
  common::Timestamp t0;
};

inline const JoinScenario& join_scenario(std::size_t n_tables, std::size_t rows,
                                         std::size_t updates, std::size_t changed,
                                         double selectivity = 0.2,
                                         bool with_indexes = false) {
  using Key = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t, int, bool>;
  static std::map<Key, std::unique_ptr<JoinScenario>> cache;
  const Key key{n_tables,
                rows,
                updates,
                changed,
                static_cast<int>(selectivity * 1e6),
                with_indexes};
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto s = std::make_unique<JoinScenario>();
    common::Rng rng(0x10adf00d ^ rows ^ (n_tables << 8));
    std::vector<const wl::SweepTable*> refs;
    for (std::size_t i = 0; i < n_tables; ++i) {
      const std::string name = "T" + std::to_string(i);
      // Group count scales with table size so equi-join fan-out stays ~32
      // rows per key regardless of N (otherwise the answer itself grows
      // with N and masks the algorithmic scaling).
      const std::size_t groups = std::max<std::size_t>(128, rows / 32);
      s->tables.push_back(
          std::make_unique<wl::SweepTable>(s->db, name, rows, groups, rng));
      refs.push_back(s->tables.back().get());
      if (with_indexes) s->db.create_index(name, "by_grp", {"grp"});
    }
    s->query = wl::join_query(refs, selectivity);
    s->before = core::recompute(s->query, s->db);
    s->t0 = s->db.clock().now();
    for (std::size_t i = 0; i < changed && i < n_tables; ++i) {
      s->tables[i]->update(updates, {});
    }
    it = cache.emplace(key, std::move(s)).first;
  }
  return *it->second;
}

/// Attach the paper's cost quantities from a metrics bag to the state, and
/// fold them into the process-wide observability registry so a final
/// --stats-json export sees the cumulative engine work of the whole run.
inline void export_metrics(benchmark::State& state, const common::Metrics& metrics) {
  state.counters["delta_rows"] = benchmark::Counter(
      static_cast<double>(metrics.get(common::metric::kDeltaRowsScanned)),
      benchmark::Counter::kAvgIterations);
  state.counters["base_rows"] = benchmark::Counter(
      static_cast<double>(metrics.get(common::metric::kBaseRowsScanned)),
      benchmark::Counter::kAvgIterations);
  state.counters["rows_scanned"] = benchmark::Counter(
      static_cast<double>(metrics.get(common::metric::kRowsScanned)),
      benchmark::Counter::kAvgIterations);
  common::obs::global().metrics().merge(metrics);
}

/// BENCHMARK_MAIN() body plus three extra flags the Google Benchmark flag
/// parser would otherwise reject:
///   * `--stats-json <path>` turns observability on for the run and writes
///     the counters + latency-histogram JSON document there on exit;
///   * `--trace-json <path>` turns observability on and writes the span
///     collector's chrome://tracing dump there on exit (load it in
///     Perfetto: one track per evaluation lane, per-commit trace ids);
///   * `--threads <n>` shorthand for --benchmark_filter=/<n>$ — run only
///     the rows with that lane count.
/// All three accept `--flag=value` too.
inline int run_benchmarks_with_stats(int argc, char** argv) {
  std::string stats_path;
  std::string trace_path;
  std::string filter_flag;  // synthesized from --threads; must outlive Initialize
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--stats-json" && i + 1 < argc) {
      stats_path = argv[++i];
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      stats_path = arg.substr(std::string_view("--stats-json=").size());
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_path = arg.substr(std::string_view("--trace-json=").size());
    } else if (arg == "--threads" && i + 1 < argc) {
      // "/N" as a whole path segment: matches BM_Foo/N and BM_Foo/N/iterations:K.
      filter_flag = std::string("--benchmark_filter=/") + argv[++i] + "(/|$)";
    } else if (arg.rfind("--threads=", 0) == 0) {
      filter_flag = "--benchmark_filter=/" +
                    std::string(arg.substr(std::string_view("--threads=").size())) +
                    "(/|$)";
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!filter_flag.empty()) passthrough.push_back(filter_flag.data());
  if (!stats_path.empty() || !trace_path.empty()) common::obs::set_enabled(true);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!stats_path.empty()) {
    std::ofstream out(stats_path);
    out << common::obs::export_json(common::obs::global(), {}) << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write stats JSON to %s\n", stats_path.c_str());
      return 1;
    }
  }
  if (!trace_path.empty()) {
    common::obs::global().traces().write_chrome_trace(trace_path);
    std::fprintf(stderr, "wrote chrome trace to %s\n", trace_path.c_str());
  }
  return 0;
}

}  // namespace cq::bench

/// Use instead of BENCHMARK_MAIN() in every bench binary.
#define CQ_BENCH_MAIN()                                          \
  int main(int argc, char** argv) {                              \
    return ::cq::bench::run_benchmarks_with_stats(argc, argv);   \
  }
