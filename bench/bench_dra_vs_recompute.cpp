// Experiment E1 (DESIGN.md): the paper's central performance claim —
// differential re-evaluation beats complete re-evaluation when the base
// relation is large, the query is selective, and the update volume since
// the last execution is small (conditions (i)-(iii) of Section 4.2).
//
// Series: base size N x update count U, single-relation selection CQ.
// Expected shape: DRA time grows with U and is nearly flat in N (modulo the
// net-effect scan); recompute grows linearly in N regardless of U.
#include "bench_support.hpp"

namespace cq::bench {
namespace {

constexpr double kSelectivity = 0.05;

void BM_DraSelection(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto updates = static_cast<std::size_t>(state.range(1));
  const Scenario& s = selection_scenario(rows, updates, kSelectivity);
  common::Metrics metrics;
  std::size_t delta_size = 0;
  for (auto _ : state) {
    const core::DiffResult d = core::dra_differential(s.query, s.db, s.t0, &metrics);
    benchmark::DoNotOptimize(&d);
    delta_size = d.size();
  }
  export_metrics(state, metrics);
  state.counters["result_delta_rows"] = static_cast<double>(delta_size);
}

void BM_RecomputeSelection(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto updates = static_cast<std::size_t>(state.range(1));
  const Scenario& s = selection_scenario(rows, updates, kSelectivity);
  common::Metrics metrics;
  for (auto _ : state) {
    const core::DiffResult d = core::propagate(s.query, s.db, s.before, &metrics);
    benchmark::DoNotOptimize(&d);
  }
  export_metrics(state, metrics);
}

void configure(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {1000, 10000, 100000, 400000}) {
    for (std::int64_t u : {10, 100, 1000}) {
      b->Args({n, u});
    }
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_DraSelection)->Apply(configure);
BENCHMARK(BM_RecomputeSelection)->Apply(configure);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
