// Multi-writer commit pipeline scaling (sharded catalog experiment): M
// relations, each carrying one standing selection CQ, driven by N writer
// threads committing disjoint slices of the same total transaction
// schedule. Arg(0) is the writer count — the 1-writer row is the
// sequential baseline; the 2/4-writer rows show how far per-shard commit
// locks let disjoint commits (validate → apply → stamp → append →
// dispatch) overlap. Commit latency lands in commit_pipeline_w<N>_us and
// the shard-lock acquisition wait in commit_lock_wait_us.
//
// Every row also digests each CQ's full notification stream (sequence
// numbers, delivered tids and values — everything except the raw
// timestamps, whose allocation order legitimately depends on the
// interleaving) and requires the digest to be bit-identical to the
// 1-writer row's: more writers may only reorder commits *across*
// independent CQs, never change what any single CQ observes.
//
// CI runs this binary under scripts/check_bench.py --strict (bench-check
// job) against bench/baselines/commit_pipeline.json. See
// docs/performance.md §5 for the measured speedups and the multi-core
// status of the >= 2x commit-to-notify claim.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "catalog/transaction.hpp"
#include "cq/manager.hpp"
#include "cq/trigger.hpp"

namespace cq::bench {
namespace {

constexpr std::size_t kTables = 8;
constexpr std::size_t kTxnsPerTable = 60;
constexpr std::size_t kRowsPerTxn = 4;
constexpr std::size_t kCommits = kTables * kTxnsPerTable;

std::string table_name(std::size_t i) { return "R" + std::to_string(i); }

/// FNV-1a over each notification a CQ delivers: sequence, then every
/// inserted row's tid and key value. Deliveries for one CQ are serialized
/// by the committer's shard locks, so plain members suffice.
class DigestSink final : public core::ResultSink {
 public:
  void on_result(const core::Notification& note) override {
    if (note.sequence == 0) return;  // initial execution, outside the timed run
    mix(note.sequence);
    for (const auto& row : note.delta.inserted.rows()) {
      mix(row.tid().raw());
      mix(static_cast<std::uint64_t>(row.at(0).as_int()));
    }
    mix(note.delta.deleted.size());
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return h_; }

 private:
  void mix(std::uint64_t v) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (v >> (byte * 8)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

struct PipelineWorkload {
  cat::Database db;
  std::unique_ptr<core::CqManager> manager;
  std::vector<std::shared_ptr<DigestSink>> sinks;  // one per table, in order

  /// Order-independent combination (per-CQ streams are deterministic; the
  /// writer interleaving across CQs is not).
  [[nodiscard]] std::uint64_t combined_digest() const noexcept {
    std::uint64_t combined = 0;
    for (const auto& sink : sinks) combined += sink->digest() * 0x9e3779b97f4a7c15ull;
    return combined;
  }
};

std::unique_ptr<PipelineWorkload> make_workload() {
  auto w = std::make_unique<PipelineWorkload>();
  for (std::size_t i = 0; i < kTables; ++i) {
    w->db.create_table(table_name(i), rel::Schema::of({{"key", rel::ValueType::kInt}}));
  }
  w->manager = std::make_unique<core::CqManager>(w->db);
  w->manager->set_eager(true);
  for (std::size_t i = 0; i < kTables; ++i) {
    auto sink = std::make_shared<DigestSink>();
    w->manager->install(
        core::CqSpec::from_sql("cq_" + table_name(i),
                               "SELECT * FROM " + table_name(i) + " WHERE key >= 0",
                               core::triggers::on_change(), nullptr,
                               core::DeliveryMode::kDifferential),
        sink);
    w->sinks.push_back(std::move(sink));
  }
  return w;
}

/// Run the whole commit schedule with `writers` threads, tables dealt
/// round-robin so writer sets are disjoint. Per-commit wall time goes to
/// `commit_us`. Writer 0 runs on the calling thread.
void run_writers(PipelineWorkload& w, std::size_t writers,
                 common::obs::Histogram& commit_us) {
  auto drive = [&w, writers, &commit_us](std::size_t writer) {
    for (std::size_t t = writer; t < kTables; t += writers) {
      const std::string table = table_name(t);
      for (std::size_t i = 0; i < kTxnsPerTable; ++i) {
        const std::uint64_t t0 = common::obs::now_ns();
        auto txn = w.db.begin();
        for (std::size_t r = 0; r < kRowsPerTxn; ++r) {
          txn.insert(table,
                     {rel::Value(static_cast<std::int64_t>(i * kRowsPerTxn + r))});
        }
        txn.commit();
        commit_us.record((common::obs::now_ns() - t0) / 1000);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(writers - 1);
  for (std::size_t wtr = 1; wtr < writers; ++wtr) threads.emplace_back(drive, wtr);
  drive(0);
  for (auto& t : threads) t.join();
}

void BM_CommitPipelineWriters(benchmark::State& state) {
  const auto writers = static_cast<std::size_t>(state.range(0));
  static common::obs::Histogram& commit_w1_us =
      common::obs::global().histogram("commit_pipeline_w1_us");
  static common::obs::Histogram& commit_w2_us =
      common::obs::global().histogram("commit_pipeline_w2_us");
  static common::obs::Histogram& commit_w4_us =
      common::obs::global().histogram("commit_pipeline_w4_us");
  common::obs::Histogram& commit_us =
      writers >= 4 ? commit_w4_us : (writers == 2 ? commit_w2_us : commit_w1_us);

  // The 1-writer row registers first and runs first, seeding the digest
  // every other writer count must reproduce.
  static std::uint64_t reference_digest = 0;
  static bool reference_seeded = false;

  for (auto _ : state) {
    state.PauseTiming();
    auto w = make_workload();
    state.ResumeTiming();

    run_writers(*w, writers, commit_us);

    state.PauseTiming();
    const std::uint64_t digest = w->combined_digest();
    if (!reference_seeded) {
      reference_digest = digest;
      reference_seeded = true;
    } else if (digest != reference_digest) {
      state.SkipWithError("notification streams diverged from the 1-writer run");
    }
    export_metrics(state, w->manager->metrics());
    state.ResumeTiming();
  }

  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kCommits));
  state.counters["commits_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * static_cast<std::int64_t>(kCommits)),
      benchmark::Counter::kIsRate);
  state.counters["writers"] = static_cast<double>(writers);
}

BENCHMARK(BM_CommitPipelineWriters)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Contended companion row: every transaction also writes a shared hot
/// table, so all closures meet on one shard and the pipeline degenerates
/// to the serialized order — the lower bound the disjoint rows are
/// measured against (and a direct read on shard-lock wait time via the
/// commit_lock_wait_us histogram).
void BM_CommitPipelineContended(benchmark::State& state) {
  const auto writers = static_cast<std::size_t>(state.range(0));
  static common::obs::Histogram& commit_us =
      common::obs::global().histogram("commit_pipeline_contended_us");

  for (auto _ : state) {
    state.PauseTiming();
    auto w = make_workload();
    w->db.create_table("HOT", rel::Schema::of({{"key", rel::ValueType::kInt}}));
    state.ResumeTiming();

    auto drive = [&w, writers](std::size_t writer) {
      for (std::size_t t = writer; t < kTables; t += writers) {
        const std::string table = table_name(t);
        for (std::size_t i = 0; i < kTxnsPerTable; ++i) {
          const std::uint64_t t0 = common::obs::now_ns();
          auto txn = w->db.begin();
          txn.insert(table, {rel::Value(static_cast<std::int64_t>(i))});
          txn.insert("HOT", {rel::Value(static_cast<std::int64_t>(i))});
          txn.commit();
          commit_us.record((common::obs::now_ns() - t0) / 1000);
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(writers - 1);
    for (std::size_t wtr = 1; wtr < writers; ++wtr) threads.emplace_back(drive, wtr);
    drive(0);
    for (auto& t : threads) t.join();

    state.PauseTiming();
    export_metrics(state, w->manager->metrics());
    state.ResumeTiming();
  }

  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kCommits));
  state.counters["writers"] = static_cast<double>(writers);
}

BENCHMARK(BM_CommitPipelineContended)->Arg(4)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
