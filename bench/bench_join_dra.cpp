// Experiment E3 (DESIGN.md): multi-relation SPJ continual queries —
// Algorithm 1's truth-table expansion. Series: number of join relations
// (2, 3) x number of *changed* relations k (1..n), DRA vs recompute.
// The DRA evaluates 2^k − 1 differential terms; recompute pays the full
// join each time. Also ablation A1: hash join vs nested-loop inside the
// differential terms.
#include "bench_support.hpp"

namespace cq::bench {
namespace {

constexpr std::size_t kRows = 4000;
constexpr std::size_t kUpdates = 150;

void BM_DraJoin(benchmark::State& state) {
  const auto n_tables = static_cast<std::size_t>(state.range(0));
  const auto changed = static_cast<std::size_t>(state.range(1));
  const JoinScenario& s = join_scenario(n_tables, kRows, kUpdates, changed);
  common::Metrics metrics;
  core::DraStats stats;
  for (auto _ : state) {
    const core::DiffResult d =
        core::dra_differential(s.query, s.db, s.t0, &metrics, {}, &stats);
    benchmark::DoNotOptimize(&d);
  }
  export_metrics(state, metrics);
  state.counters["terms"] = static_cast<double>(stats.terms_evaluated);
  state.counters["changed_k"] = static_cast<double>(stats.changed_relations);
}

void BM_RecomputeJoin(benchmark::State& state) {
  const auto n_tables = static_cast<std::size_t>(state.range(0));
  const auto changed = static_cast<std::size_t>(state.range(1));
  const JoinScenario& s = join_scenario(n_tables, kRows, kUpdates, changed);
  common::Metrics metrics;
  for (auto _ : state) {
    const core::DiffResult d = core::propagate(s.query, s.db, s.before, &metrics);
    benchmark::DoNotOptimize(&d);
  }
  export_metrics(state, metrics);
}

void BM_DraJoinNestedLoop(benchmark::State& state) {
  // Ablation A1: forbid hash joins inside the differential terms.
  const auto n_tables = static_cast<std::size_t>(state.range(0));
  const auto changed = static_cast<std::size_t>(state.range(1));
  const JoinScenario& s = join_scenario(n_tables, kRows, kUpdates, changed);
  const core::DraOptions options{.use_hash_join = false};
  for (auto _ : state) {
    const core::DiffResult d = core::dra_differential(s.query, s.db, s.t0, nullptr,
                                                      options);
    benchmark::DoNotOptimize(&d);
  }
}

void join_args(benchmark::internal::Benchmark* b) {
  b->Args({2, 1})->Args({2, 2})->Args({3, 1})->Args({3, 2})->Args({3, 3});
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_DraJoin)->Apply(join_args);
BENCHMARK(BM_RecomputeJoin)->Apply(join_args);
BENCHMARK(BM_DraJoinNestedLoop)->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMicrosecond);

/// Persistent-index extension: with a maintained index on the join column,
/// unchanged-side inputs are *probed* rather than scanned, so the DRA's
/// join terms become sublinear in base size. Sweep N with/without indexes.
void BM_DraJoinIndexed(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const JoinScenario& s = join_scenario(2, rows, kUpdates, 1, 0.2, /*indexes=*/true);
  common::Metrics metrics;
  core::DraStats stats;
  for (auto _ : state) {
    const core::DiffResult d =
        core::dra_differential(s.query, s.db, s.t0, &metrics, {}, &stats);
    benchmark::DoNotOptimize(&d);
  }
  export_metrics(state, metrics);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
}

void BM_DraJoinScan(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const JoinScenario& s = join_scenario(2, rows, kUpdates, 1, 0.2, /*indexes=*/false);
  common::Metrics metrics;
  for (auto _ : state) {
    const core::DiffResult d = core::dra_differential(s.query, s.db, s.t0, &metrics);
    benchmark::DoNotOptimize(&d);
  }
  export_metrics(state, metrics);
}

void base_size_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {4000, 20000, 100000}) b->Arg(n);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_DraJoinIndexed)->Apply(base_size_args);
BENCHMARK(BM_DraJoinScan)->Apply(base_size_args);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
