// Experiment E4 (DESIGN.md): the paper's Section 5.1 network arguments,
// measured over the DIOM substrate with real wire encodings:
//   (1) shipping deltas per refresh << re-shipping query results
//       << re-shipping base data;
//   (2) client-side caching + DRA makes servers scalable in the number of
//       clients (server work grows with deltas, not with clients x base).
// Counters (bytes per refresh) are the result; wall time covers the full
// sync+evaluate pipeline.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "query/parser.hpp"
#include "diom/mediator.hpp"
#include "query/parser.hpp"
#include "diom/network.hpp"
#include "diom/source.hpp"
#include "workload/stocks.hpp"

namespace cq::bench {
namespace {

/// One server + one client; per-iteration: a burst of updates, then one
/// refresh under the given shipping strategy.
enum class Strategy { kShipDeltas, kShipResult, kShipBase };

void run_shipping(benchmark::State& state, Strategy strategy) {
  const auto symbols = static_cast<std::size_t>(state.range(0));
  const auto updates_per_refresh = static_cast<std::size_t>(state.range(1));

  common::Rng rng(0x5e10 ^ symbols);
  cat::Database server;
  wl::StocksWorkload market(server, "Stocks", {.symbols = symbols}, rng);

  diom::Network net;
  diom::Mediator client("client", &net);
  client.attach(std::make_shared<diom::RelationalSource>("Stocks", server, "Stocks"));
  auto sink = std::make_shared<core::CollectingSink>();
  const core::CqHandle cq = client.manager().install(
      core::CqSpec::from_sql("watch", "SELECT symbol, price FROM Stocks WHERE price < 30",
                             core::triggers::manual(), nullptr,
                             core::DeliveryMode::kComplete),
      sink);

  const auto result_query =
      qry::parse_query("SELECT symbol, price FROM Stocks WHERE price < 30");
  net.reset();

  std::uint64_t refreshes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    market.step(updates_per_refresh, 2, 2);
    state.ResumeTiming();
    switch (strategy) {
      case Strategy::kShipDeltas: {
        client.sync();
        (void)client.manager().execute_now(cq);
        break;
      }
      case Strategy::kShipResult: {
        // Server evaluates and ships the full result every refresh.
        const rel::Relation result = core::recompute(result_query, server);
        net.send("Stocks", "client", diom::encode_relation(result).size());
        break;
      }
      case Strategy::kShipBase: {
        // Client-side recompute without caching: ship the base table.
        net.send("Stocks", "client",
                 diom::encode_relation(server.table("Stocks")).size());
        break;
      }
    }
    ++refreshes;
  }
  state.counters["bytes_per_refresh"] =
      static_cast<double>(net.total_bytes()) / static_cast<double>(refreshes);
  state.counters["transfer_ms_per_refresh"] =
      net.total_transfer_ms() / static_cast<double>(refreshes);
}

void BM_ShipDeltas(benchmark::State& state) { run_shipping(state, Strategy::kShipDeltas); }
void BM_ShipResult(benchmark::State& state) { run_shipping(state, Strategy::kShipResult); }
void BM_ShipBase(benchmark::State& state) { run_shipping(state, Strategy::kShipBase); }

void ship_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t symbols : {2000, 20000}) {
    for (std::int64_t updates : {20, 200}) b->Args({symbols, updates});
  }
  b->Unit(benchmark::kMicrosecond)->Iterations(20);
}

BENCHMARK(BM_ShipDeltas)->Apply(ship_args);
BENCHMARK(BM_ShipResult)->Apply(ship_args);
BENCHMARK(BM_ShipBase)->Apply(ship_args);

/// Server scalability: total bytes the server emits per update burst as the
/// number of subscribed clients grows, delta-shipping vs result-shipping.
void BM_ServerBytes_DeltaShipping(benchmark::State& state) {
  const auto clients_n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(0xca11);
  cat::Database server;
  wl::StocksWorkload market(server, "Stocks", {.symbols = 5000}, rng);

  diom::Network net;
  std::vector<std::unique_ptr<diom::Mediator>> clients;
  for (std::size_t i = 0; i < clients_n; ++i) {
    clients.push_back(
        std::make_unique<diom::Mediator>("client" + std::to_string(i), &net));
    clients.back()->attach(
        std::make_shared<diom::RelationalSource>("Stocks", server, "Stocks"));
  }
  net.reset();
  std::uint64_t bursts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    market.step(100, 2, 2);
    state.ResumeTiming();
    for (auto& c : clients) c->sync();
    ++bursts;
  }
  state.counters["server_bytes_per_burst"] =
      static_cast<double>(net.total_bytes()) / static_cast<double>(bursts);
  state.counters["clients"] = static_cast<double>(clients_n);
}

void BM_ServerBytes_ResultShipping(benchmark::State& state) {
  const auto clients_n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(0xca11);
  cat::Database server;
  wl::StocksWorkload market(server, "Stocks", {.symbols = 5000}, rng);
  const auto query =
      qry::parse_query("SELECT symbol, price FROM Stocks WHERE price < 30");

  diom::Network net;
  std::uint64_t bursts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    market.step(100, 2, 2);
    state.ResumeTiming();
    const rel::Relation result = core::recompute(query, server);
    const auto payload = diom::encode_relation(result);
    for (std::size_t i = 0; i < clients_n; ++i) {
      net.send("Stocks", "client" + std::to_string(i), payload.size());
    }
    ++bursts;
  }
  state.counters["server_bytes_per_burst"] =
      static_cast<double>(net.total_bytes()) / static_cast<double>(bursts);
  state.counters["clients"] = static_cast<double>(clients_n);
}

void client_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t c : {1, 4, 16, 64}) b->Arg(c);
  b->Unit(benchmark::kMicrosecond)->Iterations(10);
}

BENCHMARK(BM_ServerBytes_DeltaShipping)->Apply(client_args);
BENCHMARK(BM_ServerBytes_ResultShipping)->Apply(client_args);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
