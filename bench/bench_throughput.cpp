// End-to-end system throughput (summary experiment; not tied to a single
// paper claim): a CQ manager carrying K continual queries over one hot
// table, driven by rounds of updates + poll + GC. Compares the DRA
// execution strategy against per-execution recompute at the whole-system
// level, and shows how cost scales with the number of standing queries —
// the monitoring-scale scenario the paper's Internet motivation implies.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "common/rng.hpp"
#include "cq/manager.hpp"
#include "workload/sweep.hpp"

namespace cq::bench {
namespace {

constexpr std::size_t kRows = 20000;
constexpr std::size_t kUpdatesPerRound = 100;

void run_system(benchmark::State& state, core::ExecutionStrategy strategy) {
  const auto cq_count = static_cast<std::size_t>(state.range(0));

  for (auto _ : state) {
    state.PauseTiming();
    common::Rng rng(0x7412 ^ cq_count);
    cat::Database db;
    wl::SweepTable table(db, "S", kRows, 64, rng);
    core::CqManager manager(db);
    for (std::size_t i = 0; i < cq_count; ++i) {
      // Spread the queries over disjoint 2%-wide key bands.
      const std::int64_t lo =
          static_cast<std::int64_t>(i) * wl::kSweepKeySpace /
          static_cast<std::int64_t>(std::max<std::size_t>(cq_count, 1));
      core::CqSpec spec;
      spec.name = "cq" + std::to_string(i);
      qry::SpjQuery q;
      q.from.push_back({"S", ""});
      q.where = alg::Expr::between(alg::Expr::col("key"), rel::Value(lo),
                                   rel::Value(lo + wl::kSweepKeySpace / 50));
      spec.query = std::move(q);
      spec.trigger = core::triggers::on_change();
      spec.strategy = strategy;
      spec.mode = core::DeliveryMode::kComplete;
      manager.install(std::move(spec), nullptr);
    }
    state.ResumeTiming();

    for (int round = 0; round < 10; ++round) {
      table.update(kUpdatesPerRound, {});
      manager.poll();
      manager.collect_garbage();
    }

    state.PauseTiming();
    state.counters["executions"] = static_cast<double>(
        manager.metrics().get(common::metric::kQueryExecutions));
    state.counters["delta_rows"] = static_cast<double>(
        manager.metrics().get(common::metric::kDeltaRowsScanned));
    state.counters["base_rows"] = static_cast<double>(
        manager.metrics().get(common::metric::kBaseRowsScanned));
    state.ResumeTiming();
  }
  state.counters["updates_total"] = 10.0 * static_cast<double>(kUpdatesPerRound);
}

void BM_SystemDra(benchmark::State& state) {
  run_system(state, core::ExecutionStrategy::kDra);
}
void BM_SystemRecompute(benchmark::State& state) {
  run_system(state, core::ExecutionStrategy::kRecompute);
}

void throughput_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t cqs : {1, 8, 32}) b->Arg(cqs);
  b->Unit(benchmark::kMillisecond)->Iterations(3);
}

BENCHMARK(BM_SystemDra)->Apply(throughput_args);
BENCHMARK(BM_SystemRecompute)->Apply(throughput_args);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
