// Experiment E5 (DESIGN.md): Section 5.3's claim — evaluating the
// differential form of T_CQ (scan ΔCheckingAccounts only) is cheaper than
// evaluating it against the base relation whenever |R| > |ΔR|.
// Series: base size |R| sweep at fixed delta size, plus a delta-size sweep.
// Also ablation A3: eager (per-commit) vs periodic trigger checking.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "catalog/transaction.hpp"
#include "common/rng.hpp"
#include "cq/manager.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"
#include "workload/accounts.hpp"

namespace cq::bench {
namespace {

struct TriggerScenario {
  cat::Database db;
  std::unique_ptr<wl::AccountsWorkload> accounts;
  common::Timestamp t0;
};

const TriggerScenario& trigger_scenario(std::size_t accounts, std::size_t movements) {
  using Key = std::pair<std::size_t, std::size_t>;
  static std::map<Key, std::unique_ptr<TriggerScenario>> cache;
  auto it = cache.find({accounts, movements});
  if (it == cache.end()) {
    auto s = std::make_unique<TriggerScenario>();
    static common::Rng rng(0xacc7);
    s->accounts = std::make_unique<wl::AccountsWorkload>(
        s->db, "CheckingAccounts", wl::AccountsConfig{.accounts = accounts}, rng);
    s->t0 = s->db.clock().now();
    s->accounts->step(movements);
    it = cache.emplace(Key{accounts, movements}, std::move(s)).first;
  }
  return *it->second;
}

/// Differential form: |SUM over insertions − SUM over deletions| from ΔR.
void BM_TriggerDifferential(benchmark::State& state) {
  const TriggerScenario& s = trigger_scenario(
      static_cast<std::size_t>(state.range(0)), static_cast<std::size_t>(state.range(1)));
  const auto trigger =
      core::triggers::aggregate_drift("CheckingAccounts", "amount", 1e15);
  const std::vector<std::string> relations{"CheckingAccounts"};
  const core::TriggerContext ctx{s.db, relations, s.t0, s.db.clock().now(), 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(trigger->should_fire(ctx));
  }
  state.counters["delta_rows"] =
      static_cast<double>(s.db.delta("CheckingAccounts").net_effect(s.t0).size());
}

/// Complete form: re-evaluate SUM(amount) over the whole base relation and
/// compare with the value at the previous execution.
void BM_TriggerBaseScan(benchmark::State& state) {
  const TriggerScenario& s = trigger_scenario(
      static_cast<std::size_t>(state.range(0)), static_cast<std::size_t>(state.range(1)));
  const auto query = qry::parse_query("SELECT SUM(amount) FROM CheckingAccounts");
  for (auto _ : state) {
    const rel::Relation sum = qry::evaluate(query, s.db);
    benchmark::DoNotOptimize(&sum);
  }
  state.counters["base_rows"] = static_cast<double>(s.db.table("CheckingAccounts").size());
}

void trigger_args(benchmark::internal::Benchmark* b) {
  // |R| sweep at fixed |ΔR| ~ 500, then |ΔR| sweep at fixed |R| = 100k.
  for (std::int64_t accounts : {1000, 10000, 100000}) b->Args({accounts, 500});
  for (std::int64_t movements : {50, 5000}) b->Args({100000, movements});
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_TriggerDifferential)->Apply(trigger_args);
BENCHMARK(BM_TriggerBaseScan)->Apply(trigger_args);

/// Ablation A3: cost of delivering U updates under eager (per-commit)
/// trigger checking vs one periodic poll at the end. Same trigger, same
/// query; eager pays U trigger checks (and possibly U executions).
void run_checking_strategy(benchmark::State& state, bool eager) {
  const auto updates = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    common::Rng rng(0xeaec ^ updates);
    cat::Database db;
    wl::AccountsWorkload accounts(db, "CheckingAccounts",
                                  wl::AccountsConfig{.accounts = 5000}, rng);
    core::CqManager manager(db);
    manager.install(
        core::CqSpec::from_sql("sum",
                               "SELECT SUM(amount) FROM CheckingAccounts",
                               core::triggers::aggregate_drift("CheckingAccounts",
                                                               "amount", 50'000.0)),
        nullptr);
    manager.set_eager(eager);
    state.ResumeTiming();

    accounts.step(updates);
    if (!eager) manager.poll();

    state.PauseTiming();
    state.counters["executions"] = static_cast<double>(
        manager.metrics().get(common::metric::kQueryExecutions));
    state.counters["trigger_checks"] = static_cast<double>(
        manager.metrics().get(common::metric::kTriggerChecks));
    state.ResumeTiming();
  }
}

void BM_EagerChecking(benchmark::State& state) { run_checking_strategy(state, true); }
void BM_PeriodicChecking(benchmark::State& state) { run_checking_strategy(state, false); }

BENCHMARK(BM_EagerChecking)->Arg(500)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_PeriodicChecking)->Arg(500)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
