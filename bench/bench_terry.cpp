// Experiment E7 (DESIGN.md): generality vs the Terry-et-al. continuous
// queries baseline. On pure-append workloads both approaches are
// incremental and comparable; on mixed workloads (the Internet reality the
// paper argues for) continuous queries are inapplicable and the only
// alternative to the DRA is complete re-evaluation. The "applicable_pct"
// counter quantifies how quickly the append-only assumption breaks as even
// a small fraction of deletions/modifications enters the stream.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "common/error.hpp"
#include "cq/terry.hpp"

namespace cq::bench {
namespace {

constexpr std::size_t kRows = 20000;
constexpr std::size_t kUpdates = 500;

const Scenario& append_only_scenario() {
  return selection_scenario(kRows, kUpdates, 0.05, /*modify=*/0.0, /*delete=*/0.0);
}

const Scenario& mixed_scenario() {
  return selection_scenario(kRows, kUpdates, 0.05, /*modify=*/0.3, /*delete=*/0.2);
}

void BM_TerryAppendOnly(benchmark::State& state) {
  const Scenario& s = append_only_scenario();
  for (auto _ : state) {
    const rel::Relation incr = core::terry_incremental(s.query, s.db, s.t0);
    benchmark::DoNotOptimize(&incr);
  }
}

void BM_DraAppendOnly(benchmark::State& state) {
  const Scenario& s = append_only_scenario();
  for (auto _ : state) {
    const core::DiffResult d = core::dra_differential(s.query, s.db, s.t0);
    benchmark::DoNotOptimize(&d);
  }
}

void BM_DraMixed(benchmark::State& state) {
  const Scenario& s = mixed_scenario();
  for (auto _ : state) {
    const core::DiffResult d = core::dra_differential(s.query, s.db, s.t0);
    benchmark::DoNotOptimize(&d);
  }
}

void BM_RecomputeMixed(benchmark::State& state) {
  // What a continuous-query system must fall back to on mixed workloads.
  const Scenario& s = mixed_scenario();
  for (auto _ : state) {
    const core::DiffResult d = core::propagate(s.query, s.db, s.before);
    benchmark::DoNotOptimize(&d);
  }
}

void BM_TerryMixedIsRejected(benchmark::State& state) {
  const Scenario& s = mixed_scenario();
  std::size_t rejected = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    ++total;
    try {
      const rel::Relation incr = core::terry_incremental(s.query, s.db, s.t0);
      benchmark::DoNotOptimize(&incr);
    } catch (const common::Unsupported&) {
      ++rejected;
    }
  }
  state.counters["rejected_pct"] =
      100.0 * static_cast<double>(rejected) / static_cast<double>(total);
}

BENCHMARK(BM_TerryAppendOnly)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DraAppendOnly)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DraMixed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RecomputeMixed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TerryMixedIsRejected)->Unit(benchmark::kMicrosecond);

/// How fast the append-only assumption breaks: probability that a window
/// of W updates is still pure-append, as the non-insert fraction grows.
void BM_AppendOnlyApplicability(benchmark::State& state) {
  const double non_insert_fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto window = static_cast<std::size_t>(state.range(1));

  common::Rng rng(0x7e44 ^ window);
  std::size_t applicable = 0;
  std::size_t windows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cat::Database db;
    wl::SweepTable table(db, "S", 1000, 16, rng);
    const auto query = table.selection_query(0.1);
    const common::Timestamp t0 = db.clock().now();
    table.update(window, {.modify_fraction = non_insert_fraction / 2,
                          .delete_fraction = non_insert_fraction / 2});
    state.ResumeTiming();
    if (core::append_only_since(query, db, t0)) ++applicable;
    ++windows;
  }
  state.counters["applicable_pct"] =
      100.0 * static_cast<double>(applicable) / static_cast<double>(windows);
}

void applicability_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t pct : {0, 1, 5, 20}) b->Args({pct, 50});
  b->Unit(benchmark::kMillisecond)->Iterations(20);
}

BENCHMARK(BM_AppendOnlyApplicability)->Apply(applicability_args);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
