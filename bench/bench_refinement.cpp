// Experiment E8 (DESIGN.md): the Section 5.2 query-refinement claim —
// updates that cannot affect the previous result ("irrelevant updates")
// should cost (almost) nothing. We steer every update inside or outside
// the query's selection range and compare the DRA with the irrelevance
// check on vs off, and vs complete re-evaluation which always pays full
// price.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "catalog/transaction.hpp"

namespace cq::bench {
namespace {

constexpr std::size_t kRows = 50000;
constexpr std::size_t kUpdates = 500;

/// Scenario whose updates all land inside/outside key < 100000 (the query
/// selects key < 100000, i.e. selectivity 0.1 of the 1M key space).
struct SteeredScenario {
  cat::Database db;
  qry::SpjQuery query;
  rel::Relation before;
  common::Timestamp t0;
};

const SteeredScenario& steered(bool relevant) {
  static std::map<bool, std::unique_ptr<SteeredScenario>> cache;
  auto it = cache.find(relevant);
  if (it == cache.end()) {
    auto s = std::make_unique<SteeredScenario>();
    common::Rng rng(0x5711 ^ static_cast<unsigned>(relevant));
    wl::SweepTable table(s->db, "S", kRows, 64, rng);
    s->query = table.selection_query(0.1);
    s->before = core::recompute(s->query, s->db);
    s->t0 = s->db.clock().now();
    // Steered inserts: keys inside [0, 100k) when relevant, else
    // [500k, 1M). Committed in batches of 64.
    std::size_t done = 0;
    while (done < kUpdates) {
      auto txn = s->db.begin();
      const std::size_t end = std::min(kUpdates, done + 64);
      for (; done < end; ++done) {
        const std::int64_t key = relevant ? rng.uniform_int(0, 99999)
                                          : rng.uniform_int(500000, 999999);
        txn.insert("S", {rel::Value(key), rel::Value(rng.uniform_int(0, 63)),
                         rel::Value(rng.string(16))});
      }
      txn.commit();
    }
    it = cache.emplace(relevant, std::move(s)).first;
  }
  return *it->second;
}

void BM_DraIrrelevant_CheckOn(benchmark::State& state) {
  const SteeredScenario& s = steered(false);
  core::DraStats stats;
  for (auto _ : state) {
    const core::DiffResult d =
        core::dra_differential(s.query, s.db, s.t0, nullptr, {}, &stats);
    benchmark::DoNotOptimize(&d);
  }
  state.counters["skipped"] = stats.skipped_irrelevant ? 1.0 : 0.0;
  state.counters["terms"] = static_cast<double>(stats.terms_evaluated);
}

void BM_DraIrrelevant_CheckOff(benchmark::State& state) {
  const SteeredScenario& s = steered(false);
  const core::DraOptions options{.irrelevance_check = false};
  core::DraStats stats;
  for (auto _ : state) {
    const core::DiffResult d =
        core::dra_differential(s.query, s.db, s.t0, nullptr, options, &stats);
    benchmark::DoNotOptimize(&d);
  }
  state.counters["terms"] = static_cast<double>(stats.terms_evaluated);
}

void BM_DraRelevant(benchmark::State& state) {
  const SteeredScenario& s = steered(true);
  for (auto _ : state) {
    const core::DiffResult d = core::dra_differential(s.query, s.db, s.t0);
    benchmark::DoNotOptimize(&d);
  }
}

void BM_RecomputeIrrelevant(benchmark::State& state) {
  // Complete re-evaluation cannot tell irrelevant updates apart: it rescans
  // the base either way.
  const SteeredScenario& s = steered(false);
  for (auto _ : state) {
    const core::DiffResult d = core::propagate(s.query, s.db, s.before);
    benchmark::DoNotOptimize(&d);
  }
}

BENCHMARK(BM_DraIrrelevant_CheckOn)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DraIrrelevant_CheckOff)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DraRelevant)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RecomputeIrrelevant)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
