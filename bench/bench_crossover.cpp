// Experiment E2 (DESIGN.md): the limitation the paper concedes in
// Section 5.1 — when the update volume approaches the base size (or the
// query is barely selective so results are huge), complete re-evaluation
// catches up with and eventually beats the DRA. This bench sweeps the
// update fraction at fixed N so the crossover point is visible, and sweeps
// selectivity to show the poor-selectivity regime.
#include "bench_support.hpp"

namespace cq::bench {
namespace {

constexpr std::size_t kRows = 50000;

// --- update-fraction sweep (u as permille of N) -------------------------
void BM_Dra_UpdateFraction(benchmark::State& state) {
  const auto permille = static_cast<std::size_t>(state.range(0));
  const std::size_t updates = kRows * permille / 1000;
  const Scenario& s = selection_scenario(kRows, updates, 0.05);
  for (auto _ : state) {
    const core::DiffResult d = core::dra_differential(s.query, s.db, s.t0);
    benchmark::DoNotOptimize(&d);
  }
  state.counters["update_fraction_pct"] = static_cast<double>(permille) / 10.0;
}

void BM_Recompute_UpdateFraction(benchmark::State& state) {
  const auto permille = static_cast<std::size_t>(state.range(0));
  const std::size_t updates = kRows * permille / 1000;
  const Scenario& s = selection_scenario(kRows, updates, 0.05);
  for (auto _ : state) {
    const core::DiffResult d = core::propagate(s.query, s.db, s.before);
    benchmark::DoNotOptimize(&d);
  }
  state.counters["update_fraction_pct"] = static_cast<double>(permille) / 10.0;
}

void update_fraction_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t permille : {1, 10, 50, 100, 250, 500, 1000}) b->Arg(permille);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Dra_UpdateFraction)->Apply(update_fraction_args);
BENCHMARK(BM_Recompute_UpdateFraction)->Apply(update_fraction_args);

// --- selectivity sweep at moderate update volume -------------------------
void BM_Dra_Selectivity(benchmark::State& state) {
  const double selectivity = static_cast<double>(state.range(0)) / 1000.0;
  const Scenario& s = selection_scenario(kRows, 500, selectivity);
  for (auto _ : state) {
    const core::DiffResult d = core::dra_differential(s.query, s.db, s.t0);
    benchmark::DoNotOptimize(&d);
  }
  state.counters["selectivity_pct"] = selectivity * 100.0;
}

void BM_Recompute_Selectivity(benchmark::State& state) {
  const double selectivity = static_cast<double>(state.range(0)) / 1000.0;
  const Scenario& s = selection_scenario(kRows, 500, selectivity);
  for (auto _ : state) {
    const core::DiffResult d = core::propagate(s.query, s.db, s.before);
    benchmark::DoNotOptimize(&d);
  }
  state.counters["selectivity_pct"] = selectivity * 100.0;
}

void selectivity_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t s : {1, 10, 100, 500, 900}) b->Arg(s);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Dra_Selectivity)->Apply(selectivity_args);
BENCHMARK(BM_Recompute_Selectivity)->Apply(selectivity_args);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
