// Experiment E6 (DESIGN.md): garbage collection of differential relations
// (Section 5.4). K continual queries with staggered execution cadences
// define the system active delta zone; the bench reports steady-state
// delta-log size (rows and bytes) with GC on vs off, and with net-effect
// compaction exercised vs not (ablation A2: the compaction happens at read
// time, so we report the net/raw ratio).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "common/rng.hpp"
#include "cq/manager.hpp"
#include "workload/sweep.hpp"

namespace cq::bench {
namespace {

void run_gc_scenario(benchmark::State& state, bool gc_enabled) {
  const auto cq_count = static_cast<std::size_t>(state.range(0));
  const auto slow_factor = static_cast<std::size_t>(state.range(1));

  for (auto _ : state) {
    state.PauseTiming();
    common::Rng rng(0x6c ^ cq_count);
    cat::Database db;
    wl::SweepTable table(db, "S", 5000, 64, rng);
    core::CqManager manager(db);
    std::vector<core::CqHandle> handles;
    for (std::size_t i = 0; i < cq_count; ++i) {
      handles.push_back(manager.install(
          core::CqSpec::from_sql("cq" + std::to_string(i),
                                 "SELECT key FROM S WHERE key < 100000",
                                 core::triggers::manual()),
          nullptr));
    }
    std::size_t peak_rows = 0;
    std::size_t peak_bytes = 0;
    state.ResumeTiming();

    for (std::size_t round = 1; round <= 40; ++round) {
      table.update(100, {});
      for (std::size_t i = 0; i < handles.size(); ++i) {
        // CQ i executes every (1 + i*slow_factor) rounds.
        if (round % (1 + i * slow_factor) == 0) {
          (void)manager.execute_now(handles[i]);
        }
      }
      if (gc_enabled) manager.collect_garbage();
      peak_rows = std::max(peak_rows, db.delta("S").size());
      peak_bytes = std::max(peak_bytes, db.delta_bytes());
    }

    state.counters["peak_delta_rows"] = static_cast<double>(peak_rows);
    state.counters["peak_delta_bytes"] = static_cast<double>(peak_bytes);
  }
}

void BM_WithGc(benchmark::State& state) { run_gc_scenario(state, true); }
void BM_WithoutGc(benchmark::State& state) { run_gc_scenario(state, false); }

void gc_args(benchmark::internal::Benchmark* b) {
  // (number of CQs, cadence spread). Larger spread = older system zone.
  b->Args({1, 0})->Args({4, 1})->Args({4, 5})->Args({16, 1});
  b->Unit(benchmark::kMillisecond)->Iterations(3);
}

BENCHMARK(BM_WithGc)->Apply(gc_args);
BENCHMARK(BM_WithoutGc)->Apply(gc_args);

/// Ablation A2: how much the net-effect compaction shrinks what the DRA
/// actually reads, under update streams that revisit hot tuples (zipf-ish
/// behaviour approximated by a small table with many modifications).
void BM_NetEffectCompaction(benchmark::State& state) {
  const auto updates = static_cast<std::size_t>(state.range(0));
  common::Rng rng(0xc0117ac7);
  cat::Database db;
  wl::SweepTable table(db, "S", 500, 64, rng);  // small => many re-touches
  const common::Timestamp t0 = db.clock().now();
  table.update(updates, {.modify_fraction = 0.9, .delete_fraction = 0.05});

  for (auto _ : state) {
    const auto net = db.delta("S").net_effect(t0);
    benchmark::DoNotOptimize(&net);
    state.counters["raw_rows"] = static_cast<double>(db.delta("S").size());
    state.counters["net_rows"] = static_cast<double>(net.size());
  }
}

BENCHMARK(BM_NetEffectCompaction)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cq::bench

CQ_BENCH_MAIN()
