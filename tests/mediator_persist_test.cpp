// Durable mediator deployments: the client-side mirror, source cursors,
// tid mappings, and CQ positions all survive a restart; the first sync
// after restore pulls exactly the window missed while down — including
// deletions of rows mirrored before the snapshot (the tid-mapping acid test).
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "diom/mediator.hpp"
#include "diom/source.hpp"
#include "persist/snapshot.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"

namespace cq::persist {
namespace {

using rel::Schema;
using rel::TupleId;
using rel::Value;
using rel::ValueType;

struct Fixture {
  cat::Database server;
  std::shared_ptr<diom::RelationalSource> source;
  TupleId ibm;
  TupleId dec;

  Fixture() {
    server.create_table("Stocks", Schema::of({{"sym", ValueType::kString},
                                              {"px", ValueType::kInt}}));
    ibm = server.insert("Stocks", {Value("IBM"), Value(75)});
    dec = server.insert("Stocks", {Value("DEC"), Value(150)});
    source = std::make_shared<diom::RelationalSource>("Stocks", server, "Stocks");
  }
};

TEST(MediatorPersist, ResumesExactlyWhereItStopped) {
  Fixture f;
  diom::Mediator client("client");
  client.attach(f.source);
  f.server.insert("Stocks", {Value("MAC"), Value(117)});
  EXPECT_EQ(client.sync(), 1u);

  // Updates arrive while the snapshot is taken / the client is down.
  const Bytes blob = save_mediator(client);
  f.server.modify("Stocks", f.dec, {Value("DEC"), Value(149)});
  f.server.erase("Stocks", f.ibm);  // deletes a row mirrored pre-snapshot

  RestoredMediator restored = restore_mediator(blob, "client", nullptr, {f.source});
  ASSERT_EQ(restored.mediator->source_count(), 1u);
  // Mirror state is exactly the pre-snapshot state.
  EXPECT_EQ(restored.mediator->database().table("Stocks").size(), 3u);

  // The first sync pulls exactly the missed window; tid mapping must route
  // the IBM deletion to the right mirror row.
  EXPECT_EQ(restored.mediator->sync(), 2u);
  EXPECT_TRUE(restored.mediator->database().table("Stocks").equal_multiset(
      f.server.table("Stocks")));
  // And nothing is applied twice.
  EXPECT_EQ(restored.mediator->sync(), 0u);
}

TEST(MediatorPersist, CqManifestTravelsAlong) {
  Fixture f;
  diom::Mediator client("client");
  client.attach(f.source);
  auto sink = std::make_shared<core::CollectingSink>();
  client.manager().install(
      core::CqSpec::from_sql("watch", "SELECT * FROM Stocks WHERE px > 100",
                             core::triggers::on_change(), nullptr,
                             core::DeliveryMode::kComplete),
      sink);

  f.server.insert("Stocks", {Value("SUN"), Value(140)});
  const Bytes blob = save_mediator(client);

  RestoredMediator restored = restore_mediator(blob, "client", nullptr, {f.source});
  ASSERT_EQ(restored.cqs.size(), 1u);
  auto sink2 = std::make_shared<core::CollectingSink>();
  const core::CqHandle h = restored.mediator->manager().install_restored(
      core::CqSpec::from_sql("watch", "SELECT * FROM Stocks WHERE px > 100",
                             core::triggers::on_change(), nullptr,
                             core::DeliveryMode::kComplete),
      sink2, restored.cqs[0].last_execution, restored.cqs[0].executions);

  restored.mediator->sync();  // pulls SUN
  restored.mediator->manager().poll();
  ASSERT_EQ(sink2->notifications().size(), 1u);
  EXPECT_EQ(sink2->notifications()[0].delta.inserted.size(), 1u);
  const rel::Relation fresh = qry::evaluate(
      qry::parse_query("SELECT * FROM Stocks WHERE px > 100"),
      restored.mediator->database());
  EXPECT_TRUE(sink2->notifications()[0].complete->equal_multiset(fresh));
  EXPECT_TRUE(restored.mediator->manager().contains(h));
}

TEST(MediatorPersist, MissingSourceRejected) {
  Fixture f;
  diom::Mediator client("client");
  client.attach(f.source);
  const Bytes blob = save_mediator(client);
  EXPECT_THROW(static_cast<void>(restore_mediator(blob, "client", nullptr, {})),
               common::NotFound);
}

TEST(MediatorPersist, MismatchedSourceNameRejected) {
  Fixture f;
  diom::Mediator client("client");
  client.attach(f.source);
  diom::Mediator::SourceState bogus;
  bogus.source_name = "Other";
  EXPECT_THROW(client.attach_restored(f.source, bogus), common::InvalidArgument);
}

}  // namespace
}  // namespace cq::persist
