// Long-haul randomized sweeps of full ContinualQuery lifecycles: aggregate
// CQs (SUM/COUNT/AVG/MIN/MAX, grouped and scalar), DISTINCT CQs, and
// complete-mode CQs, maintained through dozens of mixed-update rounds and
// compared against from-scratch evaluation after every execution.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "cq/continual_query.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"
#include "testing/random_db.hpp"

namespace cq {
namespace {

using core::ContinualQuery;
using core::CqSpec;
using core::DeliveryMode;
using core::Notification;

struct SweepParam {
  std::uint64_t seed;
  const char* sql;
  const char* label;
};

class CqLifecycleSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CqLifecycleSweep, MaintainedResultAlwaysMatchesRecompute) {
  const auto& p = GetParam();
  common::Rng rng(p.seed);
  cat::Database db;
  testing::make_stock_table(db, "S", 150, rng);
  db.create_index("S", "by_cat", {"category"});

  const qry::SpjQuery query = qry::parse_query(p.sql);
  CqSpec spec;
  spec.name = p.label;
  spec.query = query;
  spec.trigger = core::triggers::manual();
  spec.mode = DeliveryMode::kComplete;
  ContinualQuery cq(spec, db);
  (void)cq.execute_initial(db);

  const testing::UpdateMix mix{.modify_fraction = 0.4, .delete_fraction = 0.25};
  for (int round = 0; round < 25; ++round) {
    testing::random_updates(db, "S", 12, mix, rng);
    const Notification n = cq.execute(db);

    const rel::Relation fresh = qry::evaluate(query, db);
    const rel::Relation& maintained =
        query.is_aggregate() ? *n.aggregate : *n.complete;
    ASSERT_TRUE(maintained.equal_multiset(fresh))
        << p.label << " diverged at round " << round << "\nmaintained:\n"
        << maintained.to_string() << "fresh:\n"
        << fresh.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, CqLifecycleSweep,
    ::testing::Values(
        SweepParam{201, "SELECT SUM(price) FROM S", "scalar_sum"},
        SweepParam{202, "SELECT COUNT(*) FROM S WHERE price > 300", "filtered_count"},
        SweepParam{203, "SELECT AVG(price) FROM S WHERE qty > 20", "filtered_avg"},
        SweepParam{204, "SELECT MIN(price), MAX(price) FROM S", "min_max"},
        SweepParam{205,
                   "SELECT category, SUM(price) AS total, COUNT(*) AS n FROM S "
                   "GROUP BY category",
                   "grouped_multi"},
        SweepParam{206,
                   "SELECT category, MIN(price) AS lo FROM S WHERE price < 800 "
                   "GROUP BY category",
                   "grouped_min_filtered"},
        SweepParam{207, "SELECT DISTINCT category FROM S", "distinct_category"},
        SweepParam{208, "SELECT DISTINCT category, qty FROM S WHERE price > 200",
                   "distinct_pair"},
        SweepParam{209, "SELECT id, price FROM S WHERE price BETWEEN 100 AND 500",
                   "plain_band"},
        SweepParam{210, "SELECT * FROM S WHERE category = 'tech' AND qty > 50",
                   "plain_conj"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(info.param.label);
    });

/// Aggregate CQ over a join, with indexes, complete mode, long stream.
TEST(CqLifecycle, AggregateOverJoinStaysConsistent) {
  common::Rng rng(999);
  cat::Database db;
  testing::make_stock_table(db, "A", 100, rng);
  testing::make_stock_table(db, "B", 100, rng);
  db.create_index("A", "by_cat", {"category"});
  db.create_index("B", "by_cat", {"category"});

  const qry::SpjQuery query = qry::parse_query(
      "SELECT a.category, COUNT(*) AS pairs FROM A a, B b "
      "WHERE a.category = b.category AND a.price > 300 AND b.price > 300 "
      "GROUP BY a.category");
  CqSpec spec;
  spec.name = "join-agg";
  spec.query = query;
  spec.trigger = core::triggers::manual();
  spec.mode = DeliveryMode::kComplete;
  ContinualQuery cq(spec, db);
  (void)cq.execute_initial(db);

  const testing::UpdateMix mix{.modify_fraction = 0.35, .delete_fraction = 0.25};
  for (int round = 0; round < 15; ++round) {
    testing::random_updates(db, "A", 10, mix, rng);
    testing::random_updates(db, "B", 8, mix, rng);
    const Notification n = cq.execute(db);
    const rel::Relation fresh = qry::evaluate(query, db);
    ASSERT_TRUE(n.aggregate->equal_multiset(fresh)) << "round " << round;
  }
}

/// GROUP BY keys must be projectable: alias resolution through the
/// aggregate pipeline.
TEST(CqLifecycle, GroupKeyQualification) {
  common::Rng rng(1001);
  cat::Database db;
  testing::make_stock_table(db, "S", 60, rng);
  const qry::SpjQuery query =
      qry::parse_query("SELECT category, SUM(qty) AS q FROM S GROUP BY category");
  CqSpec spec;
  spec.name = "gq";
  spec.query = query;
  spec.trigger = core::triggers::manual();
  ContinualQuery cq(spec, db);
  const Notification init = cq.execute_initial(db);
  ASSERT_TRUE(init.aggregate.has_value());
  EXPECT_EQ(init.aggregate->schema().at(1).name, "q");
}

}  // namespace
}  // namespace cq
