#include "query/parser.hpp"

#include <gtest/gtest.h>

#include "algebra/predicate.hpp"
#include "common/error.hpp"
#include "query/lexer.hpp"

namespace cq::qry {
namespace {

using common::ParseError;

TEST(Lexer, TokenKinds) {
  const auto toks = tokenize("SELECT a.b, 42 3.5 'str''x' <= <> !=");
  EXPECT_TRUE(toks[0].is_keyword("SELECT"));
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[1].text, "a.b");
  EXPECT_TRUE(toks[2].is_symbol(","));
  EXPECT_EQ(toks[3].integer, 42);
  EXPECT_DOUBLE_EQ(toks[4].real, 3.5);
  EXPECT_EQ(toks[5].text, "str'x");  // '' unescapes to '
  EXPECT_TRUE(toks[6].is_symbol("<="));
  EXPECT_TRUE(toks[7].is_symbol("<>"));
  EXPECT_TRUE(toks[8].is_symbol("<>"));  // != normalizes
  EXPECT_EQ(toks.back().kind, TokenKind::kEnd);
}

TEST(Lexer, KeywordsCaseInsensitive) {
  const auto toks = tokenize("select From wHeRe");
  EXPECT_TRUE(toks[0].is_keyword("SELECT"));
  EXPECT_TRUE(toks[1].is_keyword("FROM"));
  EXPECT_TRUE(toks[2].is_keyword("WHERE"));
}

TEST(Lexer, Errors) {
  EXPECT_THROW(tokenize("'unterminated"), ParseError);
  EXPECT_THROW(tokenize("a @ b"), ParseError);
  EXPECT_THROW(tokenize("1e"), ParseError);
}

TEST(Parser, SelectStar) {
  const SpjQuery q = parse_query("SELECT * FROM Stocks");
  EXPECT_TRUE(q.projection.empty());
  EXPECT_FALSE(q.distinct);
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0].table, "Stocks");
  EXPECT_TRUE(alg::is_always_true(q.where));
}

TEST(Parser, ProjectionAndWhere) {
  const SpjQuery q =
      parse_query("SELECT name, price FROM Stocks WHERE price > 120");
  EXPECT_EQ(q.projection, (std::vector<std::string>{"name", "price"}));
  EXPECT_EQ(q.where->to_string(), "(price > 120)");
}

TEST(Parser, Distinct) {
  EXPECT_TRUE(parse_query("SELECT DISTINCT name FROM S").distinct);
}

TEST(Parser, AliasesBothForms) {
  const SpjQuery q = parse_query("SELECT * FROM Stocks AS s, Quotes q");
  ASSERT_EQ(q.from.size(), 2u);
  EXPECT_EQ(q.from[0].alias, "s");
  EXPECT_EQ(q.from[1].alias, "q");
  EXPECT_EQ(q.from[1].effective_alias(), "q");
}

TEST(Parser, OperatorPrecedence) {
  const SpjQuery q = parse_query(
      "SELECT * FROM S WHERE a > 1 AND b < 2 OR c = 3");
  // AND binds tighter than OR.
  EXPECT_EQ(q.where->to_string(), "(((a > 1) AND (b < 2)) OR (c = 3))");
}

TEST(Parser, ArithmeticPrecedence) {
  const SpjQuery q = parse_query("SELECT * FROM S WHERE a + b * 2 > 10");
  EXPECT_EQ(q.where->to_string(), "((a + (b * 2)) > 10)");
}

TEST(Parser, ParenthesesOverride) {
  const SpjQuery q = parse_query("SELECT * FROM S WHERE (a + b) * 2 > 10");
  EXPECT_EQ(q.where->to_string(), "(((a + b) * 2) > 10)");
}

TEST(Parser, NotInBetweenLikeIsNull) {
  const SpjQuery q = parse_query(
      "SELECT * FROM S WHERE a IN (1, 2, 3) AND b NOT IN (4) AND "
      "c BETWEEN 5 AND 10 AND d LIKE 'ab%' AND e IS NOT NULL AND NOT f = 1");
  const auto conjuncts = alg::split_conjuncts(q.where);
  EXPECT_EQ(conjuncts.size(), 6u);
}

TEST(Parser, NegativeLiteralsAndUnaryMinus) {
  const SpjQuery q =
      parse_query("SELECT * FROM S WHERE a BETWEEN -5 AND 5 AND b > -1");
  EXPECT_NE(q.where, nullptr);
}

TEST(Parser, Aggregates) {
  const SpjQuery q = parse_query(
      "SELECT region, SUM(amount) AS total, COUNT(*) FROM Accounts "
      "WHERE amount > 0 GROUP BY region");
  EXPECT_TRUE(q.is_aggregate());
  ASSERT_EQ(q.aggregates.size(), 2u);
  EXPECT_EQ(q.aggregates[0].kind, alg::AggKind::kSum);
  EXPECT_EQ(q.aggregates[0].alias, "total");
  EXPECT_EQ(q.aggregates[1].column, "*");
  EXPECT_EQ(q.group_by, std::vector<std::string>{"region"});
  EXPECT_EQ(q.projection, std::vector<std::string>{"region"});
}

TEST(Parser, ScalarAggregate) {
  const SpjQuery q = parse_query("SELECT SUM(amount) FROM CheckingAccounts");
  EXPECT_TRUE(q.is_aggregate());
  EXPECT_TRUE(q.group_by.empty());
}

TEST(Parser, ValidationErrors) {
  // Non-grouped plain column next to an aggregate.
  EXPECT_THROW(parse_query("SELECT region, SUM(amount) FROM A"),
               common::InvalidArgument);
  // GROUP BY without aggregate.
  EXPECT_THROW(parse_query("SELECT a FROM T GROUP BY a"), common::InvalidArgument);
  // Duplicate alias.
  EXPECT_THROW(parse_query("SELECT * FROM T AS x, U AS x"), common::InvalidArgument);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(parse_query("SELECT"), ParseError);
  EXPECT_THROW(parse_query("SELECT * FROM"), ParseError);
  EXPECT_THROW(parse_query("SELECT * FROM T WHERE"), ParseError);
  EXPECT_THROW(parse_query("SELECT * FROM T trailing junk ,"), ParseError);
  EXPECT_THROW(parse_query("SELECT SUM(*) FROM T"), ParseError);  // only COUNT(*)
  EXPECT_THROW(parse_query("SELECT * FROM T WHERE a LIKE '%suffix'"), ParseError);
  EXPECT_THROW(parse_query("SELECT * FROM T WHERE a LIKE 'a_b%'"), ParseError);
}

TEST(Parser, StandalonePredicate) {
  const auto p = parse_predicate("price > 120 AND name = 'IBM'");
  EXPECT_EQ(p->to_string(), "((price > 120) AND (name = 'IBM'))");
  EXPECT_THROW(parse_predicate("price >"), ParseError);
}

TEST(Parser, BooleanAndNullLiterals) {
  const auto p = parse_predicate("a = TRUE OR b IS NULL AND FALSE");
  EXPECT_NE(p, nullptr);
}

TEST(Parser, ToStringRoundTrip) {
  // Not asserting exact text; re-parsing the render must succeed and match.
  const SpjQuery q = parse_query("SELECT name, price FROM Stocks s WHERE price > 120");
  const SpjQuery q2 = parse_query(q.to_string());
  EXPECT_EQ(q2.projection, q.projection);
  EXPECT_EQ(q2.from[0].alias, q.from[0].alias);
  EXPECT_EQ(q2.where->to_string(), q.where->to_string());
}

}  // namespace
}  // namespace cq::qry
