// Concurrency stress tests: hammer the introspection HTTP surface from
// several client threads while the engine installs CQs, commits
// transactions and runs sync rounds. These are the tests the TSan lane
// (the `tsan` CMake preset / CI job) exists for — single-threaded runs
// pass trivially; the sanitizer is what turns a latent race into a
// failure.
//
// Regression notes — races this file pins down:
//
//  * diom::serve_introspection used to accept a *nullable* std::mutex:
//    passing nullptr let handlers scrape a mediator the engine thread was
//    concurrently mutating (introspect_test did exactly that). The escape
//    hatch is gone — the engine mutex is a required cq::common::Mutex& —
//    and ScrapesStayCoherentWhileEngineRuns drives the full engine loop
//    against all five endpoints to prove the discipline holds.
//
//  * Mediator's sync bookkeeping (attached sources, round history,
//    staleness threshold) and CqManager's per-CQ stats registry had no
//    internal locks, so even *copying* stats for display raced with a
//    round in flight. Both now carry an annotated internal mutex
//    (Mediator::mu_, CqManager::stats_mu_; see common/sync.hpp), and
//    WritersAndStatsReaders walks the stats registry from reader threads
//    while eager commits mutate it.
//
//  * DeltaRelation::truncate_before used to shrink the change log with no
//    regard for concurrent readers: a parallel evaluation batch holding a
//    DeltaSnapshot could observe rows_ mid-erase. Truncation now takes the
//    snapshot pin mutex for the whole erase and defers (returns 0) while
//    any ReadPin is live; GcDefersWhileSnapshotsArePinned and
//    SnapshotReadersVsGarbageCollect pin both halves of that protocol.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "common/lock_profile.hpp"
#include "common/observability.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "cq/manager.hpp"
#include "cq/trigger.hpp"
#include "delta/delta_relation.hpp"
#include "delta/delta_snapshot.hpp"
#include "diom/introspect.hpp"
#include "diom/mediator.hpp"
#include "diom/source.hpp"

namespace cq {
namespace {

namespace obs = common::obs;
using rel::Value;
using rel::ValueType;

/// Minimal loopback HTTP GET (thread-safe; no gtest assertions so it can
/// run on reader threads). Returns the body, empty on any failure.
std::string raw_get(std::uint16_t port, const std::string& target,
                    int* status_out = nullptr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) != static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return "";
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (status_out != nullptr && raw.size() > 12) {
    *status_out = std::stoi(raw.substr(9, 3));
  }
  const auto split = raw.find("\r\n\r\n");
  return split == std::string::npos ? "" : raw.substr(split + 4);
}

/// A torn JSON document — one assembled from state that changed mid-read —
/// shows up as unbalanced braces or an unterminated string. Cheap
/// structural check; not a full parser.
bool json_is_whole(const std::string& body) {
  if (body.empty() || (body.front() != '{' && body.front() != '[')) return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool opened = false;
  for (const char c : body) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; opened = true; break;
      case '}':
      case ']': --depth; break;
      default: break;
    }
    if (opened && depth == 0) break;  // root closed; trailing newline is fine
  }
  return opened && depth == 0 && !in_string;
}

core::CqSpec watch_spec(const std::string& name) {
  return core::CqSpec::from_sql(name, "SELECT * FROM T WHERE id > 0",
                                core::triggers::on_change(), nullptr,
                                core::DeliveryMode::kDifferential);
}

class ConcurrencyStress : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::global().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::global().reset();
  }
};

// Engine thread runs the full loop — install CQs, commit at the source,
// sync rounds, poll, remove — under the engine mutex, while three client
// threads hammer every introspection endpoint. Every scraped document must
// be structurally whole, and the final counters must add up.
TEST_F(ConcurrencyStress, ScrapesStayCoherentWhileEngineRuns) {
  constexpr int kRounds = 40;
  constexpr int kReaders = 3;

  cat::Database source_db;
  source_db.create_table("T",
                         rel::Schema({{"id", ValueType::kInt}, {"s", ValueType::kString}}));
  auto source = std::make_shared<diom::RelationalSource>("src", source_db, "T");

  diom::Mediator mediator("client");
  mediator.attach(source, "T");

  obs::IntrospectServer server;
  common::Mutex engine_mu;
  diom::serve_introspection(server, mediator, engine_mu);
  server.start(0);
  ASSERT_TRUE(server.running());
  const std::uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::atomic<int> scrapes{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([port, r, &done, &torn, &scrapes] {
      const std::vector<std::string> targets = {"/metrics",     "/stats",
                                                "/healthz",     "/events?n=50",
                                                "/trace",       "/profile",
                                                "/trace?trace_id=1"};
      int i = r;  // stagger the rotation so readers diverge
      while (!done.load(std::memory_order_acquire)) {
        const std::string& target = targets[static_cast<std::size_t>(i++) % targets.size()];
        int status = 0;
        const std::string body = raw_get(port, target, &status);
        if (body.empty() || (status != 200 && status != 503)) continue;
        ++scrapes;
        if (target != "/metrics" && target.rfind("/events", 0) != 0 &&
            !json_is_whole(body)) {
          ++torn;
        }
      }
    });
  }

  std::size_t rows_applied = 0;
  std::uint64_t committed = 0;
  {
    common::LockGuard lock(engine_mu);
    mediator.manager().install(watch_spec("watch"), nullptr);
  }
  for (int i = 0; i < kRounds; ++i) {
    common::LockGuard lock(engine_mu);
    auto txn = source_db.begin();
    txn.insert("T", {Value(static_cast<std::int64_t>(i + 1)), Value(std::string("row"))});
    txn.commit();
    ++committed;
    rows_applied += mediator.sync();
    mediator.manager().poll();
    if (i % 8 == 7) {
      const auto h = mediator.manager().install(watch_spec("extra_" + std::to_string(i)),
                                                nullptr);
      mediator.manager().remove(h);
    }
  }
  // A fast engine loop can outrun the readers entirely (single-core CI);
  // keep serving with the engine idle until each reader has seen every
  // endpoint at least once, so the coherence assertions mean something.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scrapes.load() < kReaders * 7 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  server.stop();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GE(scrapes.load(), kReaders * 7);
  // Every committed row crossed the wire exactly once.
  EXPECT_EQ(rows_applied, committed);
  {
    common::LockGuard lock(engine_mu);
    EXPECT_EQ(mediator.database().table("T").size(), committed);
    const core::CqStats s = mediator.manager().cq_stats().at("watch");
    EXPECT_EQ(s.trigger_checks, s.fired + s.suppressed);
    const std::deque<diom::Mediator::SyncReport> history = mediator.sync_history();
    ASSERT_FALSE(history.empty());
    EXPECT_EQ(history.back().round, static_cast<std::uint64_t>(kRounds));
  }
}

// N writers committing through the catalog (serialized by the engine
// mutex, as the lock discipline demands) while M readers walk the per-CQ
// stats registry *without* the engine mutex — CqManager::stats_mu_ alone
// must keep the copies coherent. Final counters must balance exactly.
TEST_F(ConcurrencyStress, WritersAndStatsReaders) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kTxnsPerWriter = 30;

  cat::Database db;
  db.create_table("T",
                  rel::Schema({{"id", ValueType::kInt}, {"s", ValueType::kString}}));
  core::CqManager manager(db);
  manager.set_eager(true);  // trigger checks fire inside each commit
  manager.install(watch_spec("watch"), nullptr);

  common::Mutex engine_mu;
  std::atomic<bool> done{false};
  std::atomic<int> inconsistent{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&manager, &done, &inconsistent] {
      while (!done.load(std::memory_order_acquire)) {
        // cq_stats() copies under stats_mu_; each snapshot must be
        // internally consistent even mid-commit.
        const auto stats = manager.cq_stats();
        const auto it = stats.find("watch");
        if (it == stats.end()) continue;
        const core::CqStats& s = it->second;
        if (s.trigger_checks != s.fired + s.suppressed) ++inconsistent;
        obs::JsonWriter w;
        manager.write_stats_json(w);  // also exercises the JSON walk
      }
    });
  }

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int wtr = 0; wtr < kWriters; ++wtr) {
    writers.emplace_back([wtr, &db, &engine_mu] {
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        common::LockGuard lock(engine_mu);
        auto txn = db.begin();
        txn.insert("T", {Value(static_cast<std::int64_t>(wtr * 1000 + i)),
                         Value(std::string("w"))});
        txn.commit();
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(inconsistent.load(), 0);
  EXPECT_EQ(db.table("T").size(),
            static_cast<std::size_t>(kWriters) * kTxnsPerWriter);
  const core::CqStats s = manager.cq_stats().at("watch");
  EXPECT_EQ(s.trigger_checks, s.fired + s.suppressed);
  // Eager mode: every commit that touched T triggered exactly one check.
  EXPECT_EQ(s.trigger_checks, static_cast<std::uint64_t>(kWriters) * kTxnsPerWriter);
}

TEST(DeltaGcPins, GcDefersWhileSnapshotsArePinned) {
  // Deterministic half of the pin protocol: a live DeltaSnapshot makes
  // truncation a no-op (deferred reclamation), and the next GC pass after
  // the pin is released reclaims everything the first pass skipped.
  cat::Database db;
  db.create_table("T", rel::Schema::of({{"k", ValueType::kInt}}));
  for (int i = 0; i < 8; ++i) db.insert("T", {Value(i)});
  const delta::DeltaRelation& d = db.delta("T");

  {
    delta::DeltaSnapshot snap(d);
    EXPECT_EQ(d.read_pins(), 1u);
    EXPECT_EQ(db.garbage_collect(), 0u);  // no zones: cutoff=now, yet pinned
    EXPECT_EQ(d.size(), 8u);
    EXPECT_EQ(snap.net_effect(common::Timestamp::min()).size(), 8u);
    EXPECT_EQ(snap.insertions(common::Timestamp::min()).size(), 8u);
  }
  EXPECT_EQ(d.read_pins(), 0u);
  EXPECT_EQ(db.garbage_collect(), 8u);  // deferred reclamation lands now
  EXPECT_TRUE(d.empty());
}

TEST(DeltaGcPins, SnapshotReadersVsGarbageCollect) {
  // TSan half: reader threads continuously pin snapshots and walk their
  // views while GC threads hammer truncation. The pin mutex hand-off is
  // the only synchronization — the sanitizer lane proves it is enough.
  cat::Database db;
  db.create_table("T", rel::Schema::of({{"k", ValueType::kInt}}));
  constexpr int kRows = 64;
  for (int i = 0; i < kRows; ++i) db.insert("T", {Value(i)});
  const delta::DeltaRelation& d = db.delta("T");

  constexpr int kReaders = 3;
  constexpr int kGcThreads = 2;
  constexpr int kItersPerThread = 200;
  std::atomic<bool> incoherent{false};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kGcThreads);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&db, &d, &incoherent] {
      for (int i = 0; i < kItersPerThread; ++i) {
        delta::DeltaSnapshot snap(d);
        const auto& net = snap.net_effect(common::Timestamp::min());
        // Insert-only log: every surviving net row is an insertion, so the
        // two views of one snapshot must agree row-for-row.
        if (net.size() != snap.insertions(common::Timestamp::min()).size() ||
            !snap.deletions(common::Timestamp::min()).empty()) {
          incoherent.store(true, std::memory_order_relaxed);
        }
        if (i % 16 == 0) (void)db.garbage_collect();  // pinned by *this* thread
      }
    });
  }
  for (int g = 0; g < kGcThreads; ++g) {
    threads.emplace_back([&db] {
      for (int i = 0; i < kItersPerThread; ++i) (void)db.garbage_collect();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(incoherent.load());
  EXPECT_EQ(d.read_pins(), 0u);
  // With all pins gone a final pass reclaims whatever the race left behind.
  (void)db.garbage_collect();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(db.table("T").size(), static_cast<std::size_t>(kRows));
}

// -------------------------------------------- scheduler observability ----

// run_all stamps each task with the dispatcher's SpanContext; every lane —
// workers and the participating caller — must adopt it for the task's
// duration, feed the queue-wait histogram, and advance its busy clock.
TEST_F(ConcurrencyStress, PoolLanesAdoptDispatcherContextAndRecordWait) {
  constexpr std::size_t kTasks = 32;
  constexpr std::uint64_t kTraceId = 1234;

  common::ThreadPool pool(3);
  ASSERT_EQ(pool.lanes(), 4u);
  const std::uint64_t waits_before =
      obs::global().histogram(obs::hist::kPoolTaskWaitUs).count();

  std::vector<std::uint64_t> seen(kTasks, 0);
  {
    obs::ContextScope ctx(obs::SpanContext{kTraceId, 1});
    std::vector<std::function<void()>> tasks;
    tasks.reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
      tasks.push_back([&seen, i] {
        seen[i] = obs::current_context().trace_id;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    }
    pool.run_all(std::move(tasks));  // barrier: seen[] is safe to read after
  }
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(seen[i], kTraceId) << "task " << i << " ran without the context";
  }
  // Outside the scope the thread's context is restored to none.
  EXPECT_EQ(obs::current_context().trace_id, 0u);

  EXPECT_GE(obs::global().histogram(obs::hist::kPoolTaskWaitUs).count(),
            waits_before + kTasks);
  std::uint64_t busy = 0;
  for (std::size_t lane = 0; lane < pool.lanes(); ++lane) {
    busy += pool.lane_busy_ns(lane);
  }
  EXPECT_GT(busy, 0u);
}

// Histogram::record is all relaxed atomics; N threads hammering one
// histogram must lose nothing (the TSan lane checks the memory model, this
// assertion checks the arithmetic).
TEST(HistogramConcurrency, ParallelRecordsAllLand) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;

  obs::Histogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t v = 1; v <= kPerThread; ++v) h.record(v);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.sum(), kThreads * (kPerThread * (kPerThread + 1) / 2));
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), kPerThread);
}

// Profiled cq::Mutex under contention: acquisition counts must balance
// exactly, the contended/wait columns must move, and — the part TSan is
// here for — the holder-owned hold_start_ns_ handoff through the mutex
// itself must be race-free.
TEST(LockProfileConcurrency, ContendedAcquisitionsAreCounted) {
  namespace lockprof = common::lockprof;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;

  common::Mutex mu("tsan_lockprof_site");
  lockprof::set_enabled(true);
  mu.lock();  // registers the site row
  mu.unlock();

  const lockprof::SiteStats* row = nullptr;
  for (std::size_t i = 0; i < lockprof::site_count(); ++i) {
    const char* name = lockprof::site(i).name.load(std::memory_order_acquire);
    if (name != nullptr && std::string(name) == "tsan_lockprof_site") {
      row = &lockprof::site(i);
    }
  }
  ASSERT_NE(row, nullptr);
  const std::uint64_t acq0 = row->acquisitions.load(std::memory_order_relaxed);

  std::uint64_t shared = 0;  // guarded by mu
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &shared] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        mu.lock();
        ++shared;
        mu.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();

  mu.lock();
  EXPECT_EQ(shared, kThreads * kPerThread);
  mu.unlock();
  EXPECT_EQ(row->acquisitions.load(std::memory_order_relaxed) - acq0,
            kThreads * kPerThread + 1);
  EXPECT_GE(row->hold_us.count(), kThreads * kPerThread);

  // Deterministic contention: hold the lock until another thread has
  // announced its acquisition attempt, so its try_lock fast path misses.
  // Retried for the (rare) schedule where the thread is preempted between
  // announcing and attempting for the whole grace period.
  const std::uint64_t contended0 = row->contended.load(std::memory_order_relaxed);
  for (int attempt = 0; attempt < 50; ++attempt) {
    mu.lock();
    std::atomic<bool> attempting{false};
    std::thread blocked([&mu, &attempting] {
      attempting.store(true, std::memory_order_release);
      mu.lock();
      mu.unlock();
    });
    while (!attempting.load(std::memory_order_acquire)) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mu.unlock();
    blocked.join();
    if (row->contended.load(std::memory_order_relaxed) > contended0) break;
  }
  EXPECT_GT(row->contended.load(std::memory_order_relaxed), contended0);
  EXPECT_GT(row->wait_ns.load(std::memory_order_relaxed), 0u);
  lockprof::set_enabled(false);
}

}  // namespace
}  // namespace cq
