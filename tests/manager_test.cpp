#include "cq/manager.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "cq/stop.hpp"
#include "query/parser.hpp"

namespace cq::core {
namespace {

using common::Duration;
using common::Timestamp;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

struct Fixture {
  cat::Database db;
  CqManager manager{db};
  std::shared_ptr<CollectingSink> sink = std::make_shared<CollectingSink>();

  Fixture() {
    db.create_table("Stocks", rel::Schema::of({{"name", ValueType::kString},
                                               {"price", ValueType::kInt}}));
    db.insert("Stocks", {Value("DEC"), Value(150)});
    db.insert("Stocks", {Value("IBM"), Value(80)});
  }

  CqSpec spec(const std::string& name, TriggerPtr trigger, StopPtr stop = nullptr) {
    return CqSpec::from_sql(name, "SELECT * FROM Stocks WHERE price > 120",
                            std::move(trigger), std::move(stop));
  }
};

TEST(CqManager, InstallRunsInitialExecution) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  EXPECT_TRUE(f.manager.contains(h));
  ASSERT_EQ(f.sink->notifications().size(), 1u);
  EXPECT_EQ(f.sink->notifications()[0].sequence, 0u);
  EXPECT_EQ(f.sink->notifications()[0].complete->size(), 1u);
  EXPECT_EQ(f.db.zones().active_count(), 1u);
}

TEST(CqManager, PollExecutesFiredTriggers) {
  Fixture f;
  f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  EXPECT_EQ(f.manager.poll(), 0u);  // nothing changed yet
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.manager.poll(), 1u);
  ASSERT_EQ(f.sink->notifications().size(), 2u);
  EXPECT_EQ(f.sink->notifications()[1].delta.inserted.size(), 1u);
  EXPECT_EQ(f.manager.poll(), 0u);  // consumed
}

TEST(CqManager, EagerModeExecutesOnCommit) {
  Fixture f;
  f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  f.manager.set_eager(true);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  // No poll needed: the commit hook drove the execution.
  ASSERT_EQ(f.sink->notifications().size(), 2u);
  EXPECT_EQ(f.sink->notifications()[1].delta.inserted.size(), 1u);
}

TEST(CqManager, EagerIgnoresIrrelevantTables) {
  Fixture f;
  f.db.create_table("Other", rel::Schema::of({{"x", ValueType::kInt}}));
  f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  f.manager.set_eager(true);
  f.db.insert("Other", {Value(1)});
  EXPECT_EQ(f.sink->notifications().size(), 1u);  // only the initial one
}

TEST(CqManager, PeriodicTriggerViaVirtualClock) {
  Fixture f;
  auto& clock = dynamic_cast<common::VirtualClock&>(f.db.clock());
  f.manager.install(f.spec("q", triggers::periodic(Duration(100))), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.manager.poll(), 0u);  // interval not yet elapsed
  clock.advance(Duration(100));
  EXPECT_EQ(f.manager.poll(), 1u);
}

TEST(CqManager, StopConditionUninstallsCq) {
  Fixture f;
  const CqHandle h = f.manager.install(
      f.spec("q", triggers::on_change(), stop::after_executions(2)), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();  // second execution -> stop fires
  EXPECT_FALSE(f.manager.contains(h));
  EXPECT_EQ(f.manager.active_count(), 0u);
  EXPECT_EQ(f.db.zones().active_count(), 0u);
}

TEST(CqManager, ExecuteNowBypassesTrigger) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("q", triggers::manual()), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.manager.poll(), 0u);  // manual trigger never fires
  const Notification n = f.manager.execute_now(h);
  EXPECT_EQ(n.delta.inserted.size(), 1u);
}

TEST(CqManager, RemoveReleasesZone) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  f.manager.remove(h);
  EXPECT_EQ(f.db.zones().active_count(), 0u);
  EXPECT_THROW(f.manager.remove(h), common::NotFound);
  EXPECT_THROW(static_cast<void>(f.manager.execute_now(h)), common::NotFound);
  EXPECT_THROW(static_cast<void>(f.manager.cq(h)), common::NotFound);
}

TEST(CqManager, MultipleCqsIndependentCursors) {
  Fixture f;
  auto sink_a = std::make_shared<CollectingSink>();
  auto sink_b = std::make_shared<CollectingSink>();
  f.manager.install(f.spec("a", triggers::on_change()), sink_a);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();  // only A exists; consumes the change
  f.manager.install(f.spec("b", triggers::on_change()), sink_b);
  f.db.insert("Stocks", {Value("SUN"), Value(140)});
  f.manager.poll();
  // A saw both changes across two executions; B only the second.
  EXPECT_EQ(sink_a->notifications().size(), 3u);
  EXPECT_EQ(sink_b->notifications().size(), 2u);
  EXPECT_EQ(sink_b->notifications()[1].delta.inserted.size(), 1u);
}

TEST(CqManager, GarbageCollectionRespectsSlowestCq) {
  Fixture f;
  // Fast CQ re-executes on every poll; slow CQ never fires.
  f.manager.install(f.spec("fast", triggers::on_change()), nullptr);
  f.manager.install(f.spec("slow", triggers::manual()), nullptr);
  for (int i = 0; i < 10; ++i) {
    f.db.insert("Stocks", {Value("S" + std::to_string(i)), Value(130)});
    f.manager.poll();
  }
  // The slow CQ still needs everything since its installation: only the
  // two fixture rows loaded *before* any CQ existed are reclaimable.
  EXPECT_EQ(f.manager.collect_garbage(), 2u);
  EXPECT_EQ(f.db.delta("Stocks").size(), 10u);
}

TEST(CqManager, GarbageCollectionReclaimsAfterAllCqsAdvance) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("only", triggers::on_change()), nullptr);
  for (int i = 0; i < 10; ++i) {
    f.db.insert("Stocks", {Value("S" + std::to_string(i)), Value(130)});
  }
  f.manager.poll();  // CQ consumes all 10 changes; its zone advances
  // 10 new rows + the 2 fixture rows predating the CQ.
  EXPECT_EQ(f.manager.collect_garbage(), 12u);
  EXPECT_TRUE(f.db.delta("Stocks").empty());
  // And the CQ still works after GC.
  f.db.insert("Stocks", {Value("NEW"), Value(200)});
  EXPECT_EQ(f.manager.poll(), 1u);
  EXPECT_TRUE(f.manager.contains(h));
}

TEST(CqManager, MetricsAccumulate) {
  Fixture f;
  f.manager.install(f.spec("q", triggers::on_change()), nullptr);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();
  EXPECT_GE(f.manager.metrics().get(common::metric::kQueryExecutions), 2);
  EXPECT_GE(f.manager.metrics().get(common::metric::kTriggerChecks), 1);
}

TEST(CqManager, CountsSuppressedVersusFiredTriggerChecks) {
  Fixture f;
  const CqHandle h =
      f.manager.install(f.spec("q", triggers::periodic(Duration(100))), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.manager.poll(), 0u);  // interval not elapsed: suppressed
  EXPECT_EQ(f.manager.stats(h).trigger_checks, 1u);
  EXPECT_EQ(f.manager.stats(h).suppressed, 1u);
  EXPECT_EQ(f.manager.stats(h).fired, 0u);
  EXPECT_GE(f.manager.metrics().get(common::metric::kTriggersSuppressed), 1);

  auto& clock = dynamic_cast<common::VirtualClock&>(f.db.clock());
  clock.advance(Duration(100));
  EXPECT_EQ(f.manager.poll(), 1u);  // now it fires
  EXPECT_EQ(f.manager.stats(h).trigger_checks, 2u);
  EXPECT_EQ(f.manager.stats(h).suppressed, 1u);
  EXPECT_EQ(f.manager.stats(h).fired, 1u);
  EXPECT_EQ(f.manager.stats(h).executions, 2u);
  EXPECT_GE(f.manager.metrics().get(common::metric::kTriggersFired), 1);
}

TEST(CqManager, LastDraStatsExposed) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("q", triggers::manual()), nullptr);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  (void)f.manager.execute_now(h);
  EXPECT_EQ(f.manager.last_dra_stats().changed_relations, 1u);
}

TEST(CqManager, EagerToPeriodicSwitch) {
  Fixture f;
  f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  f.manager.set_eager(true);
  EXPECT_TRUE(f.manager.eager());
  f.manager.set_eager(false);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.sink->notifications().size(), 1u);  // no eager dispatch
  EXPECT_EQ(f.manager.poll(), 1u);                // but poll still works
}

// ---- parallel evaluation engine ----

/// Full serialization of one notification (no row truncation) so streams
/// from different thread counts can be compared byte-for-byte.
std::string note_string(const Notification& n) {
  std::string s = n.cq_name + "#" + std::to_string(n.sequence) + "@" +
                  std::to_string(n.at.ticks()) + "\n" + n.delta.to_string();
  if (n.complete) s += "complete:\n" + n.complete->to_string(n.complete->size());
  if (n.aggregate) s += "aggregate:\n" + n.aggregate->to_string(n.aggregate->size());
  return s;
}

struct ScenarioRun {
  std::vector<std::string> stream;  // serialized notifications, sink order
  std::map<std::string, CqStats> stats;
};

/// A mixed workload — several delivery modes and strategies, two base
/// tables, a join, an aggregate — driven by a fixed commit script. The
/// determinism contract says the observable output is a pure function of
/// the script, independent of `threads`.
ScenarioRun run_scenario(std::size_t threads, bool eager) {
  cat::Database db;
  db.create_table("Stocks", rel::Schema::of({{"name", ValueType::kString},
                                             {"price", ValueType::kInt}}));
  db.create_table("Trades", rel::Schema::of({{"sym", ValueType::kString},
                                             {"qty", ValueType::kInt}}));
  db.insert("Stocks", {Value("DEC"), Value(150)});
  db.insert("Stocks", {Value("IBM"), Value(80)});
  db.insert("Trades", {Value("DEC"), Value(5)});

  CqManager manager(db);
  manager.set_parallelism(threads);
  auto sink = std::make_shared<CollectingSink>();

  auto install = [&](const std::string& name, const std::string& sql,
                     DeliveryMode mode, ExecutionStrategy strategy) {
    CqSpec spec = CqSpec::from_sql(name, sql, triggers::on_change(), nullptr, mode);
    spec.strategy = strategy;
    manager.install(std::move(spec), sink);
  };
  install("hi", "SELECT * FROM Stocks WHERE price > 120",
          DeliveryMode::kDifferential, ExecutionStrategy::kDra);
  install("lo", "SELECT * FROM Stocks WHERE price < 100",
          DeliveryMode::kComplete, ExecutionStrategy::kDra);
  install("names", "SELECT DISTINCT name FROM Stocks",
          DeliveryMode::kDifferential, ExecutionStrategy::kDra);
  install("vol", "SELECT * FROM Trades WHERE qty > 10",
          DeliveryMode::kDifferential, ExecutionStrategy::kRecompute);
  install("cnt", "SELECT COUNT(*) FROM Trades",
          DeliveryMode::kDifferential, ExecutionStrategy::kDra);
  install("traded", "SELECT s.name FROM Stocks s, Trades t WHERE s.name = t.sym",
          DeliveryMode::kDifferential, ExecutionStrategy::kDra);

  if (eager) manager.set_eager(true);

  const auto step = [&] {
    if (!eager) (void)manager.poll();
  };
  db.insert("Stocks", {Value("MAC"), Value(130)});
  step();
  {
    auto txn = db.begin();
    txn.insert("Trades", {Value("MAC"), Value(40)});
    txn.insert("Trades", {Value("IBM"), Value(2)});
    txn.commit();
  }
  step();
  {
    // Cross-table transaction: both batches must see one coherent snapshot.
    auto txn = db.begin();
    txn.insert("Stocks", {Value("QLI"), Value(145)});
    txn.insert("Trades", {Value("QLI"), Value(60)});
    txn.commit();
  }
  step();
  db.erase("Stocks", db.table("Stocks").rows().front().tid());
  step();
  if (!eager) (void)manager.poll();  // drain any leftovers

  ScenarioRun run;
  for (const auto& n : sink->notifications()) run.stream.push_back(note_string(n));
  run.stats = manager.cq_stats();
  return run;
}

void expect_identical(const ScenarioRun& a, const ScenarioRun& b) {
  ASSERT_EQ(a.stream.size(), b.stream.size());
  for (std::size_t i = 0; i < a.stream.size(); ++i) {
    EXPECT_EQ(a.stream[i], b.stream[i]) << "notification " << i << " diverged";
  }
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (const auto& [name, sa] : a.stats) {
    const CqStats& sb = b.stats.at(name);
    EXPECT_EQ(sa.executions, sb.executions) << name;
    EXPECT_EQ(sa.trigger_checks, sb.trigger_checks) << name;
    EXPECT_EQ(sa.fired, sb.fired) << name;
    EXPECT_EQ(sa.suppressed, sb.suppressed) << name;
    EXPECT_EQ(sa.delta_rows_consumed, sb.delta_rows_consumed) << name;
    EXPECT_EQ(sa.rows_delivered, sb.rows_delivered) << name;
    EXPECT_EQ(sa.last_execution, sb.last_execution) << name;
    EXPECT_EQ(sa.finished, sb.finished) << name;
  }
}

TEST(CqManagerParallel, PolledDispatchMatchesSequential) {
  const ScenarioRun seq = run_scenario(1, /*eager=*/false);
  ASSERT_FALSE(seq.stream.empty());
  expect_identical(seq, run_scenario(2, false));
  expect_identical(seq, run_scenario(4, false));
}

TEST(CqManagerParallel, EagerDispatchMatchesSequential) {
  const ScenarioRun seq = run_scenario(1, /*eager=*/true);
  ASSERT_FALSE(seq.stream.empty());
  expect_identical(seq, run_scenario(2, true));
  expect_identical(seq, run_scenario(4, true));
}

TEST(CqManagerParallel, MoreLanesThanCqsMatchesSequential) {
  expect_identical(run_scenario(1, true), run_scenario(16, true));
}

TEST(CqManagerParallel, SetParallelismClampsAndReports) {
  Fixture f;
  EXPECT_EQ(f.manager.parallelism(), 1u);
  f.manager.set_parallelism(4);
  EXPECT_EQ(f.manager.parallelism(), 4u);
  f.manager.set_parallelism(0);  // 0 is shorthand for "sequential"
  EXPECT_EQ(f.manager.parallelism(), 1u);
}

TEST(CqManagerParallel, StopConditionsHonoredInParallelMode) {
  Fixture f;
  f.manager.set_parallelism(4);
  const CqHandle h = f.manager.install(
      f.spec("until", triggers::on_change(), stop::after_executions(2)), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  (void)f.manager.poll();
  f.db.insert("Stocks", {Value("SUN"), Value(125)});
  (void)f.manager.poll();
  EXPECT_FALSE(f.manager.contains(h));  // stop reached and uninstalled
  EXPECT_TRUE(f.manager.cq_stats().at("until").finished);
}

}  // namespace
}  // namespace cq::core
