#include "cq/manager.hpp"

#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "query/parser.hpp"

namespace cq::core {
namespace {

using common::Duration;
using common::Timestamp;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

struct Fixture {
  cat::Database db;
  CqManager manager{db};
  std::shared_ptr<CollectingSink> sink = std::make_shared<CollectingSink>();

  Fixture() {
    db.create_table("Stocks", rel::Schema::of({{"name", ValueType::kString},
                                               {"price", ValueType::kInt}}));
    db.insert("Stocks", {Value("DEC"), Value(150)});
    db.insert("Stocks", {Value("IBM"), Value(80)});
  }

  CqSpec spec(const std::string& name, TriggerPtr trigger, StopPtr stop = nullptr) {
    return CqSpec::from_sql(name, "SELECT * FROM Stocks WHERE price > 120",
                            std::move(trigger), std::move(stop));
  }
};

TEST(CqManager, InstallRunsInitialExecution) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  EXPECT_TRUE(f.manager.contains(h));
  ASSERT_EQ(f.sink->notifications().size(), 1u);
  EXPECT_EQ(f.sink->notifications()[0].sequence, 0u);
  EXPECT_EQ(f.sink->notifications()[0].complete->size(), 1u);
  EXPECT_EQ(f.db.zones().active_count(), 1u);
}

TEST(CqManager, PollExecutesFiredTriggers) {
  Fixture f;
  f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  EXPECT_EQ(f.manager.poll(), 0u);  // nothing changed yet
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.manager.poll(), 1u);
  ASSERT_EQ(f.sink->notifications().size(), 2u);
  EXPECT_EQ(f.sink->notifications()[1].delta.inserted.size(), 1u);
  EXPECT_EQ(f.manager.poll(), 0u);  // consumed
}

TEST(CqManager, EagerModeExecutesOnCommit) {
  Fixture f;
  f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  f.manager.set_eager(true);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  // No poll needed: the commit hook drove the execution.
  ASSERT_EQ(f.sink->notifications().size(), 2u);
  EXPECT_EQ(f.sink->notifications()[1].delta.inserted.size(), 1u);
}

TEST(CqManager, EagerIgnoresIrrelevantTables) {
  Fixture f;
  f.db.create_table("Other", rel::Schema::of({{"x", ValueType::kInt}}));
  f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  f.manager.set_eager(true);
  f.db.insert("Other", {Value(1)});
  EXPECT_EQ(f.sink->notifications().size(), 1u);  // only the initial one
}

TEST(CqManager, PeriodicTriggerViaVirtualClock) {
  Fixture f;
  auto& clock = dynamic_cast<common::VirtualClock&>(f.db.clock());
  f.manager.install(f.spec("q", triggers::periodic(Duration(100))), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.manager.poll(), 0u);  // interval not yet elapsed
  clock.advance(Duration(100));
  EXPECT_EQ(f.manager.poll(), 1u);
}

TEST(CqManager, StopConditionUninstallsCq) {
  Fixture f;
  const CqHandle h = f.manager.install(
      f.spec("q", triggers::on_change(), stop::after_executions(2)), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();  // second execution -> stop fires
  EXPECT_FALSE(f.manager.contains(h));
  EXPECT_EQ(f.manager.active_count(), 0u);
  EXPECT_EQ(f.db.zones().active_count(), 0u);
}

TEST(CqManager, ExecuteNowBypassesTrigger) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("q", triggers::manual()), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.manager.poll(), 0u);  // manual trigger never fires
  const Notification n = f.manager.execute_now(h);
  EXPECT_EQ(n.delta.inserted.size(), 1u);
}

TEST(CqManager, RemoveReleasesZone) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  f.manager.remove(h);
  EXPECT_EQ(f.db.zones().active_count(), 0u);
  EXPECT_THROW(f.manager.remove(h), common::NotFound);
  EXPECT_THROW(static_cast<void>(f.manager.execute_now(h)), common::NotFound);
  EXPECT_THROW(static_cast<void>(f.manager.cq(h)), common::NotFound);
}

TEST(CqManager, MultipleCqsIndependentCursors) {
  Fixture f;
  auto sink_a = std::make_shared<CollectingSink>();
  auto sink_b = std::make_shared<CollectingSink>();
  f.manager.install(f.spec("a", triggers::on_change()), sink_a);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();  // only A exists; consumes the change
  f.manager.install(f.spec("b", triggers::on_change()), sink_b);
  f.db.insert("Stocks", {Value("SUN"), Value(140)});
  f.manager.poll();
  // A saw both changes across two executions; B only the second.
  EXPECT_EQ(sink_a->notifications().size(), 3u);
  EXPECT_EQ(sink_b->notifications().size(), 2u);
  EXPECT_EQ(sink_b->notifications()[1].delta.inserted.size(), 1u);
}

TEST(CqManager, GarbageCollectionRespectsSlowestCq) {
  Fixture f;
  // Fast CQ re-executes on every poll; slow CQ never fires.
  f.manager.install(f.spec("fast", triggers::on_change()), nullptr);
  f.manager.install(f.spec("slow", triggers::manual()), nullptr);
  for (int i = 0; i < 10; ++i) {
    f.db.insert("Stocks", {Value("S" + std::to_string(i)), Value(130)});
    f.manager.poll();
  }
  // The slow CQ still needs everything since its installation: only the
  // two fixture rows loaded *before* any CQ existed are reclaimable.
  EXPECT_EQ(f.manager.collect_garbage(), 2u);
  EXPECT_EQ(f.db.delta("Stocks").size(), 10u);
}

TEST(CqManager, GarbageCollectionReclaimsAfterAllCqsAdvance) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("only", triggers::on_change()), nullptr);
  for (int i = 0; i < 10; ++i) {
    f.db.insert("Stocks", {Value("S" + std::to_string(i)), Value(130)});
  }
  f.manager.poll();  // CQ consumes all 10 changes; its zone advances
  // 10 new rows + the 2 fixture rows predating the CQ.
  EXPECT_EQ(f.manager.collect_garbage(), 12u);
  EXPECT_TRUE(f.db.delta("Stocks").empty());
  // And the CQ still works after GC.
  f.db.insert("Stocks", {Value("NEW"), Value(200)});
  EXPECT_EQ(f.manager.poll(), 1u);
  EXPECT_TRUE(f.manager.contains(h));
}

TEST(CqManager, MetricsAccumulate) {
  Fixture f;
  f.manager.install(f.spec("q", triggers::on_change()), nullptr);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();
  EXPECT_GE(f.manager.metrics().get(common::metric::kQueryExecutions), 2);
  EXPECT_GE(f.manager.metrics().get(common::metric::kTriggerChecks), 1);
}

TEST(CqManager, CountsSuppressedVersusFiredTriggerChecks) {
  Fixture f;
  const CqHandle h =
      f.manager.install(f.spec("q", triggers::periodic(Duration(100))), f.sink);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.manager.poll(), 0u);  // interval not elapsed: suppressed
  EXPECT_EQ(f.manager.stats(h).trigger_checks, 1u);
  EXPECT_EQ(f.manager.stats(h).suppressed, 1u);
  EXPECT_EQ(f.manager.stats(h).fired, 0u);
  EXPECT_GE(f.manager.metrics().get(common::metric::kTriggersSuppressed), 1);

  auto& clock = dynamic_cast<common::VirtualClock&>(f.db.clock());
  clock.advance(Duration(100));
  EXPECT_EQ(f.manager.poll(), 1u);  // now it fires
  EXPECT_EQ(f.manager.stats(h).trigger_checks, 2u);
  EXPECT_EQ(f.manager.stats(h).suppressed, 1u);
  EXPECT_EQ(f.manager.stats(h).fired, 1u);
  EXPECT_EQ(f.manager.stats(h).executions, 2u);
  EXPECT_GE(f.manager.metrics().get(common::metric::kTriggersFired), 1);
}

TEST(CqManager, LastDraStatsExposed) {
  Fixture f;
  const CqHandle h = f.manager.install(f.spec("q", triggers::manual()), nullptr);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  (void)f.manager.execute_now(h);
  EXPECT_EQ(f.manager.last_dra_stats().changed_relations, 1u);
}

TEST(CqManager, EagerToPeriodicSwitch) {
  Fixture f;
  f.manager.install(f.spec("q", triggers::on_change()), f.sink);
  f.manager.set_eager(true);
  EXPECT_TRUE(f.manager.eager());
  f.manager.set_eager(false);
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_EQ(f.sink->notifications().size(), 1u);  // no eager dispatch
  EXPECT_EQ(f.manager.poll(), 1u);                // but poll still works
}

}  // namespace
}  // namespace cq::core
