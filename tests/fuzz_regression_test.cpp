// Every fuzz crasher found (or pre-empted by inspection) lives forever as
// a unit test: the embedded inputs below reproduce the original bugs, and
// the directory walk replays everything under fuzz/regressions/<target>/
// so promoting a new crasher is `cp crash-... fuzz/regressions/<target>/`.
//
// The fuzz target functions themselves are linked in (CQ_FUZZ_NO_ENTRY
// strips their libFuzzer entry points); an oracle violation aborts, which
// gtest reports as a crashed test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "targets.hpp"

namespace cq::fuzz {
namespace {

namespace fs = std::filesystem;

using Target = int (*)(const std::uint8_t*, std::size_t);

void run_text(Target target, const std::string& text) {
  (void)target(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

/// Replay every checked-in file for `name` (corpus seeds + regressions).
void replay_dirs(Target target, const std::string& name) {
  std::size_t replayed = 0;
  for (const char* kind : {"corpus", "regressions"}) {
    const fs::path dir = fs::path(CQ_FUZZ_DIR) / kind / name;
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().filename().string()[0] != '.') {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      const auto bytes = read_file(file);
      SCOPED_TRACE(file.string());
      (void)target(bytes.data(), bytes.size());
      ++replayed;
    }
  }
  // Each target must ship a non-empty seed corpus (lint-enforced too).
  EXPECT_GT(replayed, 0u) << "no corpus/regression inputs for " << name;
}

// ---- original crashers, pre-empted while building the harness ----

TEST(FuzzRegression, LexerOutOfRangeNumericLiteral) {
  // std::stod("1e999") used to throw std::out_of_range through the lexer.
  run_text(sql_parser_target, "SELECT 1e999 FROM t");
  run_text(sql_parser_target, "SELECT a FROM t WHERE a < 1e309");
}

TEST(FuzzRegression, DeepParenNestingHitsDepthCeilingNotTheStack) {
  std::string sql = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 5000; ++i) sql += "(";
  sql += "a";
  run_text(sql_parser_target, sql);
}

TEST(FuzzRegression, DeepNotChainHitsDepthCeilingNotTheStack) {
  std::string sql = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 5000; ++i) sql += "NOT ";
  sql += "a";
  run_text(sql_parser_target, sql);
}

TEST(FuzzRegression, EmbeddedQuoteRendersReparseably) {
  // Value::to_string used to emit 'a'b' for the string a'b, which the
  // render/reparse fixed-point oracle rejects.
  run_text(sql_parser_target, "SELECT a FROM t WHERE a = 'a''b'");
  run_text(sql_parser_target, "SELECT a FROM t WHERE a LIKE 'a''%'");
}

TEST(FuzzRegression, Int64ArithmeticOverflowYieldsNull) {
  // -9223372036854775808 * -1 and friends were signed-overflow UB.
  run_text(sql_parser_target,
           "SELECT a FROM t WHERE a = 9223372036854775807 + 1");
  std::vector<std::uint8_t> input(64, 0xff);  // extreme i64 operands
  (void)expr_eval_target(input.data(), input.size());
}

TEST(FuzzRegression, WireHugeCountsRejectedWithoutAllocating) {
  // A 4-byte row count of ~4 billion used to reach std::vector::reserve.
  for (std::uint8_t route = 0; route < 5; ++route) {
    std::vector<std::uint8_t> input = {route, 0xff, 0xff, 0xff, 0xff, 0x00};
    (void)wire_decode_target(input.data(), input.size());
  }
}

TEST(FuzzRegression, DecoderOffsetMathDoesNotOverflow) {
  // Decoder::need(pos_ + n) wrapped around on n close to SIZE_MAX.
  std::vector<std::uint8_t> input = {0x00, 0x01, 0x00, 0x00, 0x00, 0x04,
                                     0xff, 0xff, 0xff, 0xff};
  (void)wire_decode_target(input.data(), input.size());
}

// ---- corpus + promoted-crasher replay, one test per target ----

TEST(FuzzReplay, SqlParser) { replay_dirs(sql_parser_target, "sql_parser"); }
TEST(FuzzReplay, ExprEval) { replay_dirs(expr_eval_target, "expr_eval"); }
TEST(FuzzReplay, WireDecode) { replay_dirs(wire_decode_target, "wire_decode"); }
TEST(FuzzReplay, DraOracle) { replay_dirs(dra_oracle_target, "dra_oracle"); }
TEST(FuzzReplay, Schedule) { replay_dirs(schedule_target, "schedule"); }

}  // namespace
}  // namespace cq::fuzz
