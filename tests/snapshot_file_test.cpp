#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "persist/snapshot.hpp"
#include "testing/random_db.hpp"

namespace cq::persist {
namespace {

TEST(SnapshotFile, RoundTrip) {
  common::Rng rng(81);
  cat::Database db;
  testing::make_stock_table(db, "S", 30, rng);
  core::CqManager manager(db);
  manager.install(core::CqSpec::from_sql("q", "SELECT * FROM S",
                                         core::triggers::manual()),
                  nullptr);

  const std::string path = ::testing::TempDir() + "cq_snapshot_test.bin";
  save_snapshot_file(path, db, manager);
  const DecodedSnapshot snap = load_snapshot_file(path);
  EXPECT_TRUE(snap.db.table("S").equal_multiset(db.table("S")));
  ASSERT_EQ(snap.cqs.size(), 1u);
  EXPECT_EQ(snap.cqs[0].name, "q");
  std::remove(path.c_str());
}

TEST(SnapshotFile, MissingFileThrows) {
  EXPECT_THROW(static_cast<void>(load_snapshot_file("/nonexistent/nope.bin")),
               common::NotFound);
}

TEST(SnapshotFile, UnwritablePathThrows) {
  cat::Database db;
  core::CqManager manager(db);
  EXPECT_THROW(save_snapshot_file("/nonexistent/dir/x.bin", db, manager),
               common::InvalidArgument);
}

}  // namespace
}  // namespace cq::persist
