// HAVING and ORDER BY: parsing, one-shot evaluation, and continual queries
// whose delivered aggregate is HAVING-filtered (groups entering/leaving the
// HAVING band differentially).
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "cq/continual_query.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"

namespace cq {
namespace {

using rel::Relation;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

cat::Database sales_db() {
  cat::Database db;
  db.create_table("Sales", rel::Schema::of({{"region", ValueType::kString},
                                            {"amount", ValueType::kInt}}));
  auto txn = db.begin();
  txn.insert("Sales", {Value("east"), Value(10)});
  txn.insert("Sales", {Value("east"), Value(20)});
  txn.insert("Sales", {Value("west"), Value(5)});
  txn.insert("Sales", {Value("north"), Value(40)});
  txn.commit();
  return db;
}

TEST(Having, ParsedAndValidated) {
  const auto q = qry::parse_query(
      "SELECT region, SUM(amount) AS total FROM Sales GROUP BY region "
      "HAVING total > 10");
  ASSERT_NE(q.having, nullptr);
  EXPECT_EQ(q.having->to_string(), "(total > 10)");
  // HAVING without aggregates is rejected.
  EXPECT_THROW(static_cast<void>(
                   qry::parse_query("SELECT region FROM Sales HAVING region = 'x'")),
               common::InvalidArgument);
}

TEST(Having, FiltersGroups) {
  const cat::Database db = sales_db();
  const Relation out = qry::evaluate(
      qry::parse_query("SELECT region, SUM(amount) AS total FROM Sales "
                       "GROUP BY region HAVING total > 10"),
      db);
  ASSERT_EQ(out.size(), 2u);  // east (30), north (40); west (5) filtered
  EXPECT_EQ(out.count_value(Tuple({Value("west"), Value(5)})), 0u);
}

TEST(Having, CanReferenceCountAlias) {
  const cat::Database db = sales_db();
  const Relation out = qry::evaluate(
      qry::parse_query("SELECT region, COUNT(*) AS n FROM Sales GROUP BY region "
                       "HAVING n >= 2"),
      db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.row(0).at(0), Value("east"));
}

TEST(OrderBy, ParsedWithDirections) {
  const auto q = qry::parse_query(
      "SELECT region FROM Sales ORDER BY region DESC, amount ASC");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_FALSE(q.order_by[1].descending);
  EXPECT_NE(q.to_string().find("ORDER BY region DESC, amount"), std::string::npos);
}

TEST(OrderBy, SortsRows) {
  const cat::Database db = sales_db();
  const Relation out = qry::evaluate(
      qry::parse_query("SELECT region, amount FROM Sales ORDER BY amount DESC"), db);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.row(0).at(1), Value(40));
  EXPECT_EQ(out.row(1).at(1), Value(20));
  EXPECT_EQ(out.row(3).at(1), Value(5));
}

TEST(OrderBy, AppliesAfterAggregation) {
  const cat::Database db = sales_db();
  const Relation out = qry::evaluate(
      qry::parse_query("SELECT region, SUM(amount) AS total FROM Sales "
                       "GROUP BY region ORDER BY total DESC"),
      db);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.row(0).at(0), Value("north"));
  EXPECT_EQ(out.row(2).at(0), Value("west"));
}

TEST(OrderBy, UnknownColumnThrows) {
  const cat::Database db = sales_db();
  EXPECT_THROW(static_cast<void>(qry::evaluate(
                   qry::parse_query("SELECT region FROM Sales ORDER BY bogus"), db)),
               common::NotFound);
}

TEST(HavingCq, GroupsEnterAndLeaveTheBand) {
  cat::Database db = sales_db();
  core::CqSpec spec = core::CqSpec::from_sql(
      "big-regions",
      "SELECT region, SUM(amount) AS total FROM Sales GROUP BY region "
      "HAVING total > 25",
      core::triggers::manual(), nullptr, core::DeliveryMode::kComplete);
  core::ContinualQuery cq(std::move(spec), db);
  const core::Notification init = cq.execute_initial(db);
  // east=30, north=40 qualify.
  EXPECT_EQ(init.aggregate->size(), 2u);

  // west gains 30 -> total 35: enters the HAVING band.
  db.insert("Sales", {Value("west"), Value(30)});
  core::Notification n = cq.execute(db);
  EXPECT_EQ(n.delta.inserted.count_value(Tuple({Value("west"), Value(35)})), 1u);
  EXPECT_EQ(n.aggregate->size(), 3u);

  // east loses a 20-sale -> total 10: leaves the band.
  for (const auto& row : db.table("Sales").rows()) {
    if (row.at(0) == Value("east") && row.at(1) == Value(20)) {
      db.erase("Sales", row.tid());
      break;
    }
  }
  n = cq.execute(db);
  EXPECT_EQ(n.delta.deleted.count_value(Tuple({Value("east"), Value(30)})), 1u);
  EXPECT_EQ(n.aggregate->size(), 2u);

  // The delivered aggregate always equals a fresh HAVING-filtered recompute.
  const Relation fresh = qry::evaluate(
      qry::parse_query("SELECT region, SUM(amount) AS total FROM Sales "
                       "GROUP BY region HAVING total > 25"),
      db);
  EXPECT_TRUE(n.aggregate->equal_multiset(fresh));
}

TEST(HavingCq, GroupBelowBandStaysInvisible) {
  cat::Database db = sales_db();
  core::CqSpec spec = core::CqSpec::from_sql(
      "q",
      "SELECT region, SUM(amount) AS total FROM Sales GROUP BY region "
      "HAVING total > 1000",
      core::triggers::manual());
  core::ContinualQuery cq(std::move(spec), db);
  const core::Notification init = cq.execute_initial(db);
  EXPECT_TRUE(init.aggregate->empty());
  db.insert("Sales", {Value("east"), Value(50)});  // still only 80 total
  const core::Notification n = cq.execute(db);
  EXPECT_TRUE(n.delta.empty());
  EXPECT_TRUE(n.aggregate->empty());
}

}  // namespace
}  // namespace cq
