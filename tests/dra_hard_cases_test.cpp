// Adversarial DRA cases beyond the randomized sweep: self-joins (the same
// changed table bound at two FROM positions), NULL-bearing data, disjunctive
// and negated predicates, empty tables, cross products, and windows whose
// net effect is empty.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/rng.hpp"
#include "cq/dra.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"
#include "testing/random_db.hpp"

namespace cq {
namespace {

using common::Timestamp;
using core::DiffResult;
using rel::Relation;
using rel::Value;
using rel::ValueType;

void expect_dra_equals_oracle(const qry::SpjQuery& query, cat::Database& db,
                              const std::function<void()>& mutate) {
  const Relation before = core::recompute(query, db);
  const Timestamp t0 = db.clock().now();
  mutate();
  const DiffResult via_dra = core::dra_differential(query, db, t0);
  const DiffResult via_oracle = core::propagate(query, db, before);
  EXPECT_TRUE(via_dra.equivalent(via_oracle))
      << "query: " << query.to_string() << "\ndra: " << via_dra.to_string()
      << "\noracle: " << via_oracle.to_string();
}

TEST(DraHardCases, SelfJoinBothPositionsChange) {
  // The same table appears twice; one update stream changes *both* FROM
  // positions, exercising the positional independence of the expansion.
  common::Rng rng(51);
  cat::Database db;
  testing::make_stock_table(db, "S", 80, rng);
  const auto query = qry::parse_query(
      "SELECT a.id, b.id FROM S a, S b "
      "WHERE a.category = b.category AND a.price < b.price AND a.price > 700");
  expect_dra_equals_oracle(query, db, [&] {
    testing::random_updates(db, "S", 40,
                            {.modify_fraction = 0.4, .delete_fraction = 0.3}, rng);
  });
}

TEST(DraHardCases, SelfJoinWithIndex) {
  common::Rng rng(52);
  cat::Database db;
  testing::make_stock_table(db, "S", 80, rng);
  db.create_index("S", "by_cat", {"category"});
  const auto query = qry::parse_query(
      "SELECT a.id, b.id FROM S a, S b WHERE a.category = b.category "
      "AND a.price > 800 AND b.price < 200");
  expect_dra_equals_oracle(query, db, [&] {
    testing::random_updates(db, "S", 30,
                            {.modify_fraction = 0.3, .delete_fraction = 0.3}, rng);
  });
}

TEST(DraHardCases, NullBearingData) {
  cat::Database db;
  db.create_table("T", rel::Schema::of({{"k", ValueType::kInt},
                                        {"v", ValueType::kInt}}));
  common::Rng rng(53);
  auto insert_maybe_null = [&](auto& txn) {
    txn.insert("T", {Value(rng.uniform_int(0, 100)),
                     rng.chance(0.3) ? Value::null()
                                     : Value(rng.uniform_int(0, 100))});
  };
  {
    auto txn = db.begin();
    for (int i = 0; i < 50; ++i) insert_maybe_null(txn);
    txn.commit();
  }
  for (const char* sql :
       {"SELECT * FROM T WHERE v > 50", "SELECT * FROM T WHERE v IS NULL",
        "SELECT * FROM T WHERE v IS NOT NULL AND k < 40",
        "SELECT * FROM T WHERE NOT v > 50"}) {
    const auto query = qry::parse_query(sql);
    expect_dra_equals_oracle(query, db, [&] {
      auto txn = db.begin();
      for (int i = 0; i < 15; ++i) insert_maybe_null(txn);
      txn.commit();
      // Also null-out some existing values.
      auto tids = testing::live_tids(db, "T");
      auto txn2 = db.begin();
      for (int i = 0; i < 5 && i < static_cast<int>(tids.size()); ++i) {
        txn2.modify("T", tids[static_cast<std::size_t>(i)],
                    {Value(rng.uniform_int(0, 100)), Value::null()});
      }
      txn2.commit();
    });
  }
}

TEST(DraHardCases, DisjunctivePredicate) {
  // OR across tables cannot be pushed down; lands in the residual.
  common::Rng rng(54);
  cat::Database db;
  testing::make_stock_table(db, "A", 40, rng);
  testing::make_stock_table(db, "B", 40, rng);
  const auto query = qry::parse_query(
      "SELECT a.id, b.id FROM A a, B b "
      "WHERE a.category = b.category AND (a.price > 900 OR b.price < 100)");
  expect_dra_equals_oracle(query, db, [&] {
    testing::random_updates(db, "A", 25,
                            {.modify_fraction = 0.4, .delete_fraction = 0.2}, rng);
    testing::random_updates(db, "B", 25,
                            {.modify_fraction = 0.4, .delete_fraction = 0.2}, rng);
  });
}

TEST(DraHardCases, CrossProductNoJoinPredicate) {
  common::Rng rng(55);
  cat::Database db;
  testing::make_stock_table(db, "A", 15, rng);
  testing::make_stock_table(db, "B", 15, rng);
  const auto query = qry::parse_query(
      "SELECT a.id, b.id FROM A a, B b WHERE a.price > 500 AND b.price > 500");
  expect_dra_equals_oracle(query, db, [&] {
    testing::random_updates(db, "A", 10,
                            {.modify_fraction = 0.3, .delete_fraction = 0.3}, rng);
    testing::random_updates(db, "B", 10,
                            {.modify_fraction = 0.3, .delete_fraction = 0.3}, rng);
  });
}

TEST(DraHardCases, TableEmptiedCompletely) {
  common::Rng rng(56);
  cat::Database db;
  testing::make_stock_table(db, "S", 20, rng);
  const auto query = qry::parse_query("SELECT * FROM S WHERE price >= 0");
  expect_dra_equals_oracle(query, db, [&] {
    auto txn = db.begin();
    for (const auto tid : testing::live_tids(db, "S")) txn.erase("S", tid);
    txn.commit();
  });
  EXPECT_TRUE(db.table("S").empty());
}

TEST(DraHardCases, EmptyTableFilled) {
  cat::Database db;
  db.create_table("S", rel::Schema::of({{"x", ValueType::kInt}}));
  const auto query = qry::parse_query("SELECT * FROM S WHERE x > 5");
  expect_dra_equals_oracle(query, db, [&] {
    auto txn = db.begin();
    for (int i = 0; i < 20; ++i) txn.insert("S", {Value(i)});
    txn.commit();
  });
}

TEST(DraHardCases, JoinAgainstEmptyTable) {
  common::Rng rng(57);
  cat::Database db;
  testing::make_stock_table(db, "A", 30, rng);
  db.create_table("B", rel::Schema::of({{"category", ValueType::kString}}));
  const auto query =
      qry::parse_query("SELECT a.id FROM A a, B b WHERE a.category = b.category");
  expect_dra_equals_oracle(query, db, [&] {
    testing::random_updates(db, "A", 10, {}, rng);  // B stays empty
  });
  // Then B gets rows (the previously-empty side changes).
  const auto query2 =
      qry::parse_query("SELECT a.id FROM A a, B b WHERE a.category = b.category");
  expect_dra_equals_oracle(query2, db, [&] {
    db.insert("B", {Value("tech")});
    db.insert("B", {Value("bank")});
  });
}

TEST(DraHardCases, NetZeroWindowProducesEmptyDiff) {
  common::Rng rng(58);
  cat::Database db;
  testing::make_stock_table(db, "S", 30, rng);
  const auto query = qry::parse_query("SELECT * FROM S WHERE price >= 0");
  const Relation before = core::recompute(query, db);
  const Timestamp t0 = db.clock().now();
  // Modify a row and modify it right back (separate transactions).
  const auto tid = db.table("S").rows().front().tid();
  const auto original = db.table("S").find(tid)->values();
  auto changed = original;
  changed[2] = Value(original[2].as_int() + 7);
  db.modify("S", tid, changed);
  db.modify("S", tid, original);
  const DiffResult d = core::dra_differential(query, db, t0);
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(core::propagate(query, db, before).empty());
}

TEST(DraHardCases, InAndLikeAndBetweenPredicates) {
  common::Rng rng(59);
  cat::Database db;
  testing::make_stock_table(db, "S", 60, rng);
  for (const char* sql :
       {"SELECT * FROM S WHERE category IN ('tech', 'bank') AND price > 400",
        "SELECT * FROM S WHERE category LIKE 'te%'",
        "SELECT id FROM S WHERE price BETWEEN 250 AND 750 AND qty NOT IN (1, 2)"}) {
    const auto query = qry::parse_query(sql);
    expect_dra_equals_oracle(query, db, [&] {
      testing::random_updates(db, "S", 20,
                              {.modify_fraction = 0.4, .delete_fraction = 0.3}, rng);
    });
  }
}

TEST(DraHardCases, ArithmeticInPredicate) {
  common::Rng rng(60);
  cat::Database db;
  testing::make_stock_table(db, "S", 60, rng);
  const auto query =
      qry::parse_query("SELECT * FROM S WHERE price * qty > 20000 AND price + 10 < 900");
  expect_dra_equals_oracle(query, db, [&] {
    testing::random_updates(db, "S", 25,
                            {.modify_fraction = 0.5, .delete_fraction = 0.2}, rng);
  });
}

TEST(DraHardCases, RepeatedWindowsAreIdempotent) {
  // Running the DRA twice over the same window gives identical results
  // (it must not consume the log).
  common::Rng rng(61);
  cat::Database db;
  testing::make_stock_table(db, "S", 50, rng);
  const auto query = qry::parse_query("SELECT * FROM S WHERE price > 300");
  const Timestamp t0 = db.clock().now();
  testing::random_updates(db, "S", 20,
                          {.modify_fraction = 0.3, .delete_fraction = 0.3}, rng);
  const DiffResult first = core::dra_differential(query, db, t0);
  const DiffResult second = core::dra_differential(query, db, t0);
  EXPECT_TRUE(first.equivalent(second));
}

}  // namespace
}  // namespace cq
