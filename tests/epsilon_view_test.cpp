#include "cq/epsilon_view.hpp"

#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"

namespace cq::core {
namespace {

using rel::Value;
using rel::ValueType;

EpsilonView::Spec changes_only(std::size_t n) {
  EpsilonView::Spec spec;
  spec.max_relevant_changes = n;
  return spec;
}

struct Fixture {
  cat::Database db;

  Fixture() {
    db.create_table("Accounts", rel::Schema::of({{"owner", ValueType::kString},
                                                 {"amount", ValueType::kInt}}));
    db.insert("Accounts", {Value("a"), Value(1000)});
    db.insert("Accounts", {Value("b"), Value(2000)});
  }
};

TEST(EpsilonView, ServesCachedWithinTolerance) {
  Fixture f;
  EpsilonView view("v", "SELECT * FROM Accounts WHERE amount > 500", f.db,
                   changes_only(5));
  const auto first = view.read();
  EXPECT_FALSE(first.refreshed);
  EXPECT_EQ(first.result.size(), 2u);

  f.db.insert("Accounts", {Value("c"), Value(3000)});
  const auto second = view.read();
  EXPECT_FALSE(second.refreshed);       // 1 <= 5: still within tolerance
  EXPECT_EQ(second.result.size(), 2u);  // served stale, knowingly
  EXPECT_EQ(second.divergence, 1u);
  EXPECT_EQ(view.refreshes(), 0u);
}

TEST(EpsilonView, RefreshesWhenToleranceExceeded) {
  Fixture f;
  EpsilonView view("v", "SELECT * FROM Accounts WHERE amount > 500", f.db,
                   changes_only(2));
  for (int i = 0; i < 3; ++i) {
    f.db.insert("Accounts", {Value("n" + std::to_string(i)), Value(4000)});
  }
  const auto answer = view.read();
  EXPECT_TRUE(answer.refreshed);
  EXPECT_EQ(answer.result.size(), 5u);
  EXPECT_EQ(answer.divergence, 0u);
  EXPECT_EQ(view.refreshes(), 1u);
}

TEST(EpsilonView, IrrelevantChangesDoNotCountAgainstTolerance) {
  Fixture f;
  EpsilonView view("v", "SELECT * FROM Accounts WHERE amount > 1500", f.db,
                   changes_only(0));
  // Below the predicate threshold: relevant_changes stays 0.
  f.db.insert("Accounts", {Value("tiny"), Value(10)});
  const auto answer = view.read();
  EXPECT_FALSE(answer.refreshed);
  EXPECT_EQ(answer.divergence, 0u);
}

TEST(EpsilonView, AggregateDriftBound) {
  Fixture f;
  EpsilonView view("sum", "SELECT SUM(amount) FROM Accounts", f.db,
                   {.max_relevant_changes = 1000,
                    .max_drift = 500.0,
                    .drift_table = "Accounts",
                    .drift_column = "amount"});
  const auto initial = view.read();
  EXPECT_EQ(initial.result.row(0).at(0), Value(3000));

  // +400: within drift tolerance, cached answer may be off by <= 500.
  const auto tid = f.db.table("Accounts").rows().front().tid();
  f.db.modify("Accounts", tid, {Value("a"), Value(1400)});
  auto answer = view.read();
  EXPECT_FALSE(answer.refreshed);
  EXPECT_EQ(answer.result.row(0).at(0), Value(3000));  // stale but bounded
  EXPECT_DOUBLE_EQ(answer.drift, 400.0);

  // Another +400 pushes cumulative pending drift to 800 > 500: refresh.
  f.db.modify("Accounts", tid, {Value("a"), Value(1800)});
  answer = view.read();
  EXPECT_TRUE(answer.refreshed);
  EXPECT_EQ(answer.result.row(0).at(0), Value(3800));
}

TEST(EpsilonView, WithdrawalsCountedByAbsoluteValue) {
  Fixture f;
  EpsilonView view("sum", "SELECT SUM(amount) FROM Accounts", f.db,
                   {.max_relevant_changes = 1000,
                    .max_drift = 300.0,
                    .drift_table = "Accounts",
                    .drift_column = "amount"});
  const auto tid = f.db.table("Accounts").rows().front().tid();
  f.db.modify("Accounts", tid, {Value("a"), Value(600)});  // -400
  const auto answer = view.read();
  EXPECT_TRUE(answer.refreshed);
  EXPECT_EQ(answer.result.row(0).at(0), Value(2600));
}

TEST(EpsilonView, ManualRefreshResetsDivergence) {
  Fixture f;
  EpsilonView view("v", "SELECT * FROM Accounts WHERE amount > 500", f.db,
                   changes_only(100));
  f.db.insert("Accounts", {Value("c"), Value(700)});
  EXPECT_EQ(view.read().divergence, 1u);
  view.refresh();
  const auto answer = view.read();
  EXPECT_EQ(answer.divergence, 0u);
  EXPECT_EQ(answer.result.size(), 3u);
}

TEST(EpsilonView, RefreshedAnswerAlwaysMatchesRecompute) {
  Fixture f;
  EpsilonView view("v", "SELECT owner FROM Accounts WHERE amount > 500", f.db,
                   changes_only(0));
  for (int i = 0; i < 10; ++i) {
    f.db.insert("Accounts", {Value("x" + std::to_string(i)), Value(600 + i * 100)});
    const auto answer = view.read();
    EXPECT_TRUE(answer.refreshed);
    const rel::Relation fresh = qry::evaluate(
        qry::parse_query("SELECT owner FROM Accounts WHERE amount > 500"), f.db);
    EXPECT_TRUE(answer.result.equal_multiset(fresh));
  }
}

TEST(EpsilonView, SpecValidation) {
  Fixture f;
  EpsilonView::Spec bad;
  bad.max_drift = 10.0;  // missing drift_table / drift_column
  EXPECT_THROW(EpsilonView("v", "SELECT * FROM Accounts", f.db, bad),
               common::InvalidArgument);
  EpsilonView::Spec negative;
  negative.max_drift = -1.0;
  negative.drift_table = "Accounts";
  negative.drift_column = "amount";
  EXPECT_THROW(EpsilonView("v", "SELECT * FROM Accounts", f.db, negative),
               common::InvalidArgument);
}

}  // namespace
}  // namespace cq::core
