// NEGATIVE-COMPILE TEST — this file must NOT build.
//
// It is deliberately excluded from the CMake tree; only
// scripts/check_thread_safety.sh compiles it, with
// `clang++ -Wthread-safety -Werror=thread-safety`, and asserts the
// compile FAILS. That proves the annotations in common/sync.hpp are live:
// a guarded field touched without its mutex is a compile error, not a
// latent data race. (Under GCC the attributes expand to nothing and this
// file compiles — which is why the script requires clang.)
#include <cstdint>

#include "common/sync.hpp"

namespace {

class Counter {
 public:
  // VIOLATION 1: writes value_ without holding mu_.
  void unguarded_bump() { ++value_; }

  // VIOLATION 2: declares the requirement but the caller below ignores it.
  void bump_locked() CQ_REQUIRES(mu_) { ++value_; }

  // VIOLATION 3: acquires but never releases (scoped guard misuse aside,
  // the analysis flags the imbalance on function exit).
  void lock_and_leak() { mu_.lock(); }

  std::int64_t read() {
    cq::common::LockGuard lock(mu_);
    return value_;
  }

 private:
  cq::common::Mutex mu_;
  std::int64_t value_ CQ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.unguarded_bump();
  c.bump_locked();  // VIOLATION 2 (caller side): mu_ not held here
  c.lock_and_leak();
  return static_cast<int>(c.read());
}
