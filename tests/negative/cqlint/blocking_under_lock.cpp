// cqlint negative fixture: blocking-under-lock.
//
// Nothing that blocks arbitrarily long — sleeps, file/socket I/O,
// ThreadPool::run_all, waits on a foreign condition variable — may run
// while a cq::common::Mutex is held. (The runtime lockdep from PR 8
// catches the resulting deadlocks after the fact; this rule rejects the
// pattern before it ships.)
#include <chrono>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace cq::common {
class Mutex {
 public:
  void lock() {}
  void unlock() {}
};
class LockGuard {
 public:
  explicit LockGuard(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() { mu_.unlock(); }

 private:
  Mutex& mu_;
};
class CondVar {
 public:
  void wait(Mutex& mu) { (void)mu; }
  void notify_all() {}
};
class ThreadPool {
 public:
  void run_all(std::vector<std::function<void()>> tasks) { (void)tasks; }
};
}  // namespace cq::common

namespace cq {

class Engine {
 public:
  // VIOLATION: sleeping while holding the engine mutex stalls every
  // other acquirer for the whole nap.
  void nap() {
    common::LockGuard lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));  // cqlint-expect: blocking-under-lock
  }

  // VIOLATION: dispatching to the pool under the lock — a worker that
  // needs this same mutex deadlocks against the dispatcher.
  void dispatch_locked(common::ThreadPool& pool,
                       std::vector<std::function<void()>> tasks) {
    common::LockGuard lock(mu_);
    pool.run_all(std::move(tasks));  // cqlint-expect: blocking-under-lock
  }

  // VIOLATION: file I/O under the lock.
  void load(const std::string& path) {
    common::LockGuard lock(mu_);
    std::ifstream in(path);  // cqlint-expect: blocking-under-lock
    (void)in;
  }

  // VIOLATION: waiting on a condvar paired with a DIFFERENT mutex while
  // this one is held — the classic two-lock deadlock recipe.
  void cross_wait() {
    common::LockGuard lock(mu_);
    done_cv_.wait(other_mu_);  // cqlint-expect: blocking-under-lock
  }

  // OK (near-miss): waiting on the condvar paired with the mutex we
  // hold is the sanctioned pattern (the wait releases and re-acquires).
  void drain() {
    common::LockGuard lock(mu_);
    done_cv_.wait(mu_);
  }

  // OK (near-miss): the sleep happens after the guard's scope closed.
  void nap_unlocked() {
    {
      common::LockGuard lock(mu_);
      counter_ += 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

 private:
  mutable common::Mutex mu_;
  mutable common::Mutex other_mu_;
  common::CondVar done_cv_;
  int counter_ = 0;
};

}  // namespace cq
