// cqlint negative fixture: guarded-ref-escape.
//
// NOT compiled into any target — scripts/cqlint/cqlint.py --self-test
// analyzes this file and asserts the rule fires exactly on the lines
// marked `cqlint-expect` (and nowhere else: the copying accessor and the
// unguarded reference below are deliberate near-misses).
//
// Self-contained stubs mirroring src/common/sync.hpp so both the
// libclang and the textual backend resolve the same shapes.
#include <map>
#include <string>
#include <vector>

#define CQ_GUARDED_BY(x) __attribute__((annotate("guarded_by:" #x)))

namespace cq::common {
class Mutex {
 public:
  void lock() {}
  void unlock() {}
};
class LockGuard {
 public:
  explicit LockGuard(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() { mu_.unlock(); }

 private:
  Mutex& mu_;
};
}  // namespace cq::common

namespace cq {

class StatsRegistry {
 public:
  // VIOLATION: the reference outlives the critical section — the caller
  // dereferences rows_ after ~LockGuard released mu_.
  const std::vector<int>& rows() const {  // cqlint-expect: guarded-ref-escape
    common::LockGuard lock(mu_);
    return rows_;
  }

  // VIOLATION: a pointer escape is the same defect in a hat.
  const std::map<std::string, int>* by_name() const {  // cqlint-expect: guarded-ref-escape
    common::LockGuard lock(mu_);
    return &by_name_;
  }

  // OK (near-miss): copy-returning accessor — the repo-sanctioned shape.
  std::vector<int> rows_copy() const {
    common::LockGuard lock(mu_);
    return rows_;
  }

  // OK (near-miss): reference to an unguarded field is not this rule's
  // business.
  const std::string& name() const { return name_; }

 private:
  mutable common::Mutex mu_;
  std::vector<int> rows_ CQ_GUARDED_BY(mu_);
  std::map<std::string, int> by_name_ CQ_GUARDED_BY(mu_);
  std::string name_;
};

}  // namespace cq
