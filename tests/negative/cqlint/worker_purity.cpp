// cqlint negative fixture: worker-purity.
//
// Lambdas submitted to ThreadPool::run_all execute on pool lanes with
// no engine lock held. They may capture engine state only by value, or
// by reference through sanctioned read-only snapshot/context types —
// everything else must flow back through the serially-replayed side
// effect channel.
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cq::common {
class ThreadPool {
 public:
  void run_all(std::vector<std::function<void()>> tasks) { (void)tasks; }
};
}  // namespace cq::common

namespace cq {

struct Outcome {
  bool ok = false;
};

// Sanctioned read-only view type (matches the engine's SnapshotMap).
using SnapshotMap = std::map<std::string, int>;

class Engine {
 public:
  // VIOLATION: capturing `this` hands a pool lane mutable reach into
  // the whole engine.
  void eval_bad_this(common::ThreadPool& pool) {
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([this]() { counter_ += 1; });  // cqlint-expect: worker-purity
    pool.run_all(std::move(tasks));
  }

  // VIOLATION: a default reference capture makes the purity contract
  // unauditable — nobody can see what the worker touches.
  void eval_bad_default_ref(common::ThreadPool& pool) {
    int scratch = 0;
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([&]() { scratch += 1; });  // cqlint-expect: worker-purity
    pool.run_all(std::move(tasks));
    (void)scratch;
  }

  // VIOLATION: a named non-sanctioned reference capture — the worker
  // mutates shared state from a pool lane.
  void eval_bad_named_ref(common::ThreadPool& pool) {
    std::vector<Outcome> outcomes(4);
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([&outcomes]() { outcomes[0].ok = true; });  // cqlint-expect: worker-purity
    pool.run_all(std::move(tasks));
  }

  // OK (near-miss): by-value captures are pure — each lane owns its copy.
  void eval_by_value(common::ThreadPool& pool) {
    int seed = 7;
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([seed]() { (void)(seed * 2); });
    pool.run_all(std::move(tasks));
  }

  // OK (near-miss): init-capture moves ownership into the worker (shared
  // so the std::function stays copyable); nothing is mutated cross-lane.
  void eval_init_capture(common::ThreadPool& pool) {
    auto payload = std::make_shared<std::string>("rows");
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([p = std::move(payload)]() { (void)p->size(); });
    pool.run_all(std::move(tasks));
  }

  // OK (near-miss): a reference to a sanctioned snapshot type — the
  // engine guarantees SnapshotMap is immutable for the batch lifetime.
  void eval_snapshot_ref(common::ThreadPool& pool) {
    SnapshotMap snapshots;
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([&snapshots]() { (void)snapshots.size(); });
    pool.run_all(std::move(tasks));
  }

 private:
  int counter_ = 0;
};

}  // namespace cq
