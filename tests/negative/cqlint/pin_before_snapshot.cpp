// cqlint negative fixture: pin-before-snapshot.
//
// DeltaRelation reads (net_effect / insertions / deletions) must happen
// under a live ReadPin — otherwise GC may truncate the delta log rows
// mid-read (use-after-truncate). Reads through a DeltaSnapshot are safe:
// the snapshot takes its own pin at construction.
#include <cstdint>
#include <vector>

namespace cq::delta {

struct DeltaRow {
  std::int64_t tid = 0;
};

class DeltaRelation {
 public:
  class ReadPin {
   public:
    ReadPin() = default;
    ~ReadPin() = default;
  };

  ReadPin pin_reads() const { return ReadPin{}; }
  const std::vector<DeltaRow>& net_effect(std::int64_t since) const {
    (void)since;
    return rows_;
  }
  const std::vector<DeltaRow>& insertions(std::int64_t since) const {
    (void)since;
    return rows_;
  }

 private:
  std::vector<DeltaRow> rows_;
};

class DeltaSnapshot {
 public:
  explicit DeltaSnapshot(const DeltaRelation& source)
      : source_(source), pin_(source.pin_reads()) {}
  const std::vector<DeltaRow>& net_effect(std::int64_t since) const {
    return source_.net_effect(since);
  }

 private:
  const DeltaRelation& source_;
  DeltaRelation::ReadPin pin_;
};

}  // namespace cq::delta

namespace cq {

// VIOLATION: live-log read with no pin in scope — GC can truncate the
// vector this loop is walking.
std::size_t count_unpinned(const delta::DeltaRelation& rel, std::int64_t since) {
  std::size_t n = 0;
  for (const auto& row : rel.net_effect(since)) {  // cqlint-expect: pin-before-snapshot
    (void)row;
    ++n;
  }
  return n;
}

// VIOLATION: insertions() is the same read path under another name.
std::size_t count_insertions(const delta::DeltaRelation& rel, std::int64_t since) {
  return rel.insertions(since).size();  // cqlint-expect: pin-before-snapshot
}

// OK (near-miss): the pin is taken first and lives across the read.
std::size_t count_pinned(const delta::DeltaRelation& rel, std::int64_t since) {
  const auto pin = rel.pin_reads();
  return rel.net_effect(since).size();
}

// OK (near-miss): a DeltaSnapshot receiver pins internally.
std::size_t count_via_snapshot(const delta::DeltaSnapshot& snap, std::int64_t since) {
  return snap.net_effect(since).size();
}

}  // namespace cq
