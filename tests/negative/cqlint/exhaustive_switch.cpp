// cqlint negative fixture: exhaustive-switch.
//
// Switches over project enums must enumerate every variant. A silent
// `default:` compiles clean when a new variant is added and then
// misroutes it at runtime; loud defaults (throw / fail / abort) are the
// sanctioned escape because they fail the query instead of guessing.
#include <stdexcept>
#include <string>

namespace cq {

enum class DeltaKind { kInsert, kDelete, kUpdate, kRescan };

// VIOLATION: silent default over DeltaKind — when kRescan grew out of
// the compaction work it fell into this bucket and was dropped.
inline int weight_bad(DeltaKind k) {
  switch (k) {
    case DeltaKind::kInsert:
      return 1;
    case DeltaKind::kDelete:
      return 1;
    default:  // cqlint-expect: exhaustive-switch
      return 0;
  }
}

// VIOLATION: no default AND missing variants — kUpdate / kRescan fall
// off the end and the caller reads an unset value.
inline std::string name_bad(DeltaKind k) {
  std::string out = "?";
  switch (k) {  // cqlint-expect: exhaustive-switch
    case DeltaKind::kInsert:
      out = "insert";
      break;
    case DeltaKind::kDelete:
      out = "delete";
      break;
  }
  return out;
}

// OK (near-miss): every variant enumerated, no default — adding a
// variant turns on -Wswitch and the build fails loudly.
inline int weight_ok(DeltaKind k) {
  switch (k) {
    case DeltaKind::kInsert:
      return 1;
    case DeltaKind::kDelete:
      return 1;
    case DeltaKind::kUpdate:
      return 2;
    case DeltaKind::kRescan:
      return 8;
  }
  return 0;
}

// OK (near-miss): the default is loud — unknown variants throw instead
// of silently collapsing into a guess.
inline std::string name_ok(DeltaKind k) {
  switch (k) {
    case DeltaKind::kInsert:
      return "insert";
    case DeltaKind::kDelete:
      return "delete";
    default:
      throw std::logic_error("unhandled DeltaKind");
  }
}

}  // namespace cq
