// NEGATIVE-COMPILE TEST — this file must NOT build.
//
// Deliberately excluded from the CMake tree; only
// scripts/check_thread_safety.sh compiles it, with
// `clang++ -Wthread-safety -Wthread-safety-beta -Werror`, and asserts the
// compile FAILS. It declares the static lock order with
// CQ_ACQUIRED_BEFORE and then acquires in the opposite order — proving
// the declared-order half of the lock discipline is live at compile time,
// independent of the runtime checker (common/lock_order.hpp) and the
// seeded schedule fuzzer that catch the same inversion dynamically.
#include "common/sync.hpp"

namespace {

class Pipeline {
 public:
  // VIOLATION: inner_ taken first, then blocking on outer_ — the declared
  // acquired_before(inner_) order inverted.
  void inverted() {
    cq::common::LockGuard inner(inner_);
    cq::common::LockGuard outer(outer_);
    (void)this;
  }

 private:
  cq::common::Mutex outer_ CQ_ACQUIRED_BEFORE(inner_);
  cq::common::Mutex inner_;
};

}  // namespace

int main() {
  Pipeline p;
  p.inverted();
  return 0;
}
