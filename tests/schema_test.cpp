#include "relation/schema.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cq::rel {
namespace {

Schema stocks() {
  return Schema::of({{"name", ValueType::kString}, {"price", ValueType::kInt}});
}

TEST(Schema, BasicLookup) {
  const Schema s = stocks();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.index_of("name"), 0u);
  EXPECT_EQ(s.index_of("price"), 1u);
  EXPECT_FALSE(s.find("volume").has_value());
  EXPECT_THROW(s.index_of("volume"), common::NotFound);
}

TEST(Schema, DuplicateNamesRejected) {
  EXPECT_THROW(Schema::of({{"a", ValueType::kInt}, {"a", ValueType::kInt}}),
               common::SchemaMismatch);
}

TEST(Schema, EmptyNameRejected) {
  EXPECT_THROW(Schema::of({{"", ValueType::kInt}}), common::InvalidArgument);
}

TEST(Schema, QualifiedLookupBySuffix) {
  const Schema q = stocks().qualified("S");
  EXPECT_EQ(q.at(0).name, "S.name");
  // Bare suffix resolves when unambiguous.
  EXPECT_EQ(q.index_of("price"), 1u);
  EXPECT_EQ(q.index_of("S.price"), 1u);
}

TEST(Schema, AmbiguousSuffixThrows) {
  const Schema joined = stocks().qualified("a").concat(stocks().qualified("b"));
  EXPECT_EQ(joined.size(), 4u);
  EXPECT_THROW(joined.index_of("price"), common::NotFound);  // ambiguous
  EXPECT_EQ(joined.index_of("a.price"), 1u);
  EXPECT_EQ(joined.index_of("b.price"), 3u);
}

TEST(Schema, RequalifyReplacesQualifier) {
  const Schema q = stocks().qualified("S").qualified("T");
  EXPECT_EQ(q.at(0).name, "T.name");
}

TEST(Schema, Unqualified) {
  const Schema q = stocks().qualified("S").unqualified();
  EXPECT_EQ(q.at(0).name, "name");
  EXPECT_EQ(q.at(1).name, "price");
}

TEST(Schema, ConcatRejectsCollision) {
  EXPECT_THROW(stocks().concat(stocks()), common::SchemaMismatch);
}

TEST(Schema, Project) {
  const Schema p = stocks().project({"price"});
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.at(0).name, "price");
  EXPECT_EQ(p.at(0).type, ValueType::kInt);
  EXPECT_THROW(stocks().project({"nope"}), common::NotFound);
}

TEST(Schema, DoubledForDeltaRelations) {
  const Schema d = stocks().doubled();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d.at(0).name, "name_old");
  EXPECT_EQ(d.at(1).name, "price_old");
  EXPECT_EQ(d.at(2).name, "name_new");
  EXPECT_EQ(d.at(3).name, "price_new");
  EXPECT_EQ(d.at(1).type, ValueType::kInt);
}

TEST(Schema, UnionCompatibility) {
  const Schema a = stocks();
  const Schema renamed =
      Schema::of({{"n", ValueType::kString}, {"p", ValueType::kInt}});
  const Schema reordered =
      Schema::of({{"price", ValueType::kInt}, {"name", ValueType::kString}});
  EXPECT_TRUE(a.union_compatible(renamed));     // names may differ
  EXPECT_FALSE(a.union_compatible(reordered));  // types positional
  EXPECT_FALSE(a.union_compatible(Schema::of({{"x", ValueType::kInt}})));
}

TEST(Schema, ToString) {
  EXPECT_EQ(stocks().to_string(), "(name:STRING, price:INT)");
}

TEST(BareName, StripsQualifier) {
  EXPECT_EQ(bare_name("S.price"), "price");
  EXPECT_EQ(bare_name("price"), "price");
  EXPECT_EQ(bare_name("a.b.c"), "c");
}

}  // namespace
}  // namespace cq::rel
