// Durable snapshots and restart: database round-trips, and the
// reconstruct-by-reverse-DRA restore of CQ runtime state. The gold test
// runs a restarted deployment side by side with an uninterrupted twin and
// requires identical notification streams after the restart point.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "persist/snapshot.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"
#include "testing/random_db.hpp"

namespace cq {
namespace {

using core::CqHandle;
using core::CqSpec;
using core::DeliveryMode;
using core::Notification;
using persist::Bytes;
using rel::Value;
using rel::ValueType;

TEST(Snapshot, DatabaseRoundTrip) {
  common::Rng rng(31);
  cat::Database db;
  testing::make_stock_table(db, "S", 80, rng);
  db.create_index("S", "by_cat", {"category"});
  db.create_table("Empty", rel::Schema::of({{"x", ValueType::kInt}}));
  testing::random_updates(db, "S", 30,
                          {.modify_fraction = 0.3, .delete_fraction = 0.3}, rng);

  const Bytes blob = persist::save_database(db);
  cat::Database restored = persist::load_database(blob);

  EXPECT_EQ(restored.table_names(), db.table_names());
  EXPECT_EQ(restored.clock().now(), db.clock().now());
  EXPECT_TRUE(restored.table("S").equal_multiset(db.table("S")));
  EXPECT_EQ(restored.delta("S").size(), db.delta("S").size());
  EXPECT_TRUE(restored.table("Empty").empty());
  // Tids survive (needed so future deltas line up).
  for (const auto& row : db.table("S").rows()) {
    ASSERT_NE(restored.table("S").find(row.tid()), nullptr);
  }
  // Indexes rebuilt.
  const auto* index = restored.index_on("S", {restored.table("S").schema().index_of(
                                                 "category")});
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->entries(), restored.table("S").size());
}

TEST(Snapshot, RestoredDatabaseAcceptsNewTransactions) {
  common::Rng rng(32);
  cat::Database db;
  testing::make_stock_table(db, "S", 20, rng);
  cat::Database restored = persist::load_database(persist::save_database(db));
  // New commits continue the timestamp sequence and tid sequence.
  const auto tid = restored.insert("S", {Value(1), Value("tech"), Value(5), Value(1)});
  EXPECT_GT(tid.raw(), 20u);
  EXPECT_GT(restored.delta("S").rows().back().ts, db.clock().now());
}

TEST(Snapshot, CorruptInputRejected) {
  Bytes junk{1, 2, 3};
  EXPECT_THROW(static_cast<void>(persist::load_database(junk)),
               common::InvalidArgument);
  cat::Database db;
  Bytes blob = persist::save_database(db);
  blob.push_back(0);
  EXPECT_THROW(static_cast<void>(persist::load_database(blob)),
               common::InvalidArgument);
}

TEST(Snapshot, ManifestRoundTrip) {
  std::vector<persist::CqManifestEntry> entries = {
      {"alpha", common::Timestamp(17), 3},
      {"beta", common::Timestamp(99), 1},
  };
  const auto back = persist::decode_manifest(persist::encode_manifest(entries));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "alpha");
  EXPECT_EQ(back[0].last_execution, common::Timestamp(17));
  EXPECT_EQ(back[1].executions, 1u);
}

/// A CQ restored from (last_exec, executions) must behave exactly like one
/// that never stopped — including consuming the deltas that arrived
/// *before* the snapshot but after its last execution.
TEST(Restore, ResumesWithPendingDeltas) {
  common::Rng rng(33);
  cat::Database db;
  testing::make_stock_table(db, "S", 100, rng);

  core::CqManager manager(db);
  auto sink = std::make_shared<core::CollectingSink>();
  const CqHandle h = manager.install(
      CqSpec::from_sql("w", "SELECT id, price FROM S WHERE price > 600",
                       core::triggers::manual(), nullptr, DeliveryMode::kComplete),
      sink);
  testing::random_updates(db, "S", 20, {}, rng);
  (void)manager.execute_now(h);

  // More updates arrive, then the deployment dies (snapshot taken).
  testing::random_updates(db, "S", 25, {}, rng);
  const Bytes blob = persist::encode_snapshot(db, manager);

  // --- restart ---
  persist::DecodedSnapshot snap = persist::decode_snapshot(blob);
  ASSERT_EQ(snap.cqs.size(), 1u);
  core::CqManager manager2(snap.db);
  auto sink2 = std::make_shared<core::CollectingSink>();
  const CqHandle h2 = manager2.install_restored(
      CqSpec::from_sql("w", "SELECT id, price FROM S WHERE price > 600",
                       core::triggers::manual(), nullptr, DeliveryMode::kComplete),
      sink2, snap.cqs[0].last_execution, snap.cqs[0].executions);

  // The restored CQ's next execution must deliver exactly the pending
  // window and a complete result equal to a fresh recompute.
  const Notification n = manager2.execute_now(h2);
  EXPECT_EQ(n.sequence, snap.cqs[0].executions);
  const rel::Relation fresh = qry::evaluate(
      qry::parse_query("SELECT id, price FROM S WHERE price > 600"), snap.db);
  EXPECT_TRUE(n.complete->equal_multiset(fresh));
  EXPECT_FALSE(n.delta.empty());  // the pre-snapshot pending deltas
}

/// Twin-run equivalence: snapshot/restore mid-stream, then feed both the
/// original and the restored deployment the same post-restart updates;
/// their notification streams must be identical.
TEST(Restore, TwinRunEquivalence) {
  const char* kSql = "SELECT category, SUM(price) AS total FROM S GROUP BY category";
  auto updates_a = [](cat::Database& db, common::Rng& rng) {
    testing::random_updates(db, "S", 15,
                            {.modify_fraction = 0.4, .delete_fraction = 0.2}, rng);
  };

  // Deployment 1: uninterrupted.
  common::Rng rng1(34);
  cat::Database db1;
  testing::make_stock_table(db1, "S", 90, rng1);
  core::CqManager mgr1(db1);
  auto sink1 = std::make_shared<core::CollectingSink>();
  const CqHandle h1 =
      mgr1.install(CqSpec::from_sql("agg", kSql, core::triggers::manual()), sink1);
  updates_a(db1, rng1);
  (void)mgr1.execute_now(h1);
  updates_a(db1, rng1);

  // Deployment 2: identical history, then snapshot + restart here.
  common::Rng rng2(34);
  cat::Database db2;
  testing::make_stock_table(db2, "S", 90, rng2);
  core::CqManager mgr2(db2);
  const CqHandle h2_pre =
      mgr2.install(CqSpec::from_sql("agg", kSql, core::triggers::manual()), nullptr);
  updates_a(db2, rng2);
  (void)mgr2.execute_now(h2_pre);
  updates_a(db2, rng2);
  const Bytes blob = persist::encode_snapshot(db2, mgr2);
  persist::DecodedSnapshot snap = persist::decode_snapshot(blob);
  core::CqManager mgr2b(snap.db);
  auto sink2 = std::make_shared<core::CollectingSink>();
  const CqHandle h2 = mgr2b.install_restored(
      CqSpec::from_sql("agg", kSql, core::triggers::manual()), sink2,
      snap.cqs[0].last_execution, snap.cqs[0].executions);

  // Same post-restart updates on both (same RNG state by construction).
  for (int round = 0; round < 5; ++round) {
    updates_a(db1, rng1);
    updates_a(snap.db, rng2);
    const Notification a = mgr1.execute_now(h1);
    const Notification b = mgr2b.execute_now(h2);
    ASSERT_EQ(a.sequence, b.sequence) << "round " << round;
    ASSERT_TRUE(a.delta.equivalent(b.delta)) << "round " << round;
    ASSERT_TRUE(a.aggregate->equal_multiset(*b.aggregate)) << "round " << round;
  }
}

/// Restore of DISTINCT and MIN/MAX state (the hard accumulators) through
/// the reverse-DRA reconstruction.
TEST(Restore, DistinctAndMinMaxState) {
  for (const char* sql :
       {"SELECT DISTINCT category FROM S",
        "SELECT category, MIN(price) AS lo, MAX(price) AS hi FROM S GROUP BY category"}) {
    common::Rng rng(35);
    cat::Database db;
    testing::make_stock_table(db, "S", 60, rng);
    core::CqManager manager(db);
    const CqHandle h = manager.install(
        CqSpec::from_sql("q", sql, core::triggers::manual(), nullptr,
                         DeliveryMode::kComplete),
        nullptr);
    testing::random_updates(db, "S", 20,
                            {.modify_fraction = 0.4, .delete_fraction = 0.3}, rng);
    (void)manager.execute_now(h);
    testing::random_updates(db, "S", 20,
                            {.modify_fraction = 0.4, .delete_fraction = 0.3}, rng);

    persist::DecodedSnapshot snap =
        persist::decode_snapshot(persist::encode_snapshot(db, manager));
    core::CqManager manager2(snap.db);
    auto sink = std::make_shared<core::CollectingSink>();
    const CqHandle h2 = manager2.install_restored(
        CqSpec::from_sql("q", sql, core::triggers::manual(), nullptr,
                         DeliveryMode::kComplete),
        sink, snap.cqs[0].last_execution, snap.cqs[0].executions);

    testing::random_updates(snap.db, "S", 20,
                            {.modify_fraction = 0.4, .delete_fraction = 0.3}, rng);
    const Notification n = manager2.execute_now(h2);
    const rel::Relation fresh = qry::evaluate(qry::parse_query(sql), snap.db);
    const rel::Relation& maintained =
        n.aggregate ? *n.aggregate : *n.complete;
    EXPECT_TRUE(maintained.equal_multiset(fresh)) << sql;
  }
}

TEST(Restore, Validation) {
  cat::Database db;
  db.create_table("T", rel::Schema::of({{"x", ValueType::kInt}}));
  core::CqManager manager(db);
  auto spec = CqSpec::from_sql("q", "SELECT * FROM T", core::triggers::manual());
  EXPECT_THROW(static_cast<void>(manager.install_restored(
                   spec, nullptr, common::Timestamp(0), /*executions=*/0)),
               common::InvalidArgument);
}

}  // namespace
}  // namespace cq
