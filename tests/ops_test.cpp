#include "algebra/ops.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cq::alg {
namespace {

using common::Metrics;
using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Relation people() {
  Relation r(Schema::of({{"p.name", ValueType::kString}, {"p.dept", ValueType::kInt}}));
  r.insert_values({Value("ann"), Value(1)});
  r.insert_values({Value("bob"), Value(2)});
  r.insert_values({Value("cat"), Value(1)});
  return r;
}

Relation depts() {
  Relation r(Schema::of({{"d.id", ValueType::kInt}, {"d.label", ValueType::kString}}));
  r.insert_values({Value(1), Value("eng")});
  r.insert_values({Value(2), Value("ops")});
  r.insert_values({Value(3), Value("hr")});
  return r;
}

TEST(Select, FiltersAndKeepsTids) {
  const Relation r = people();
  const Relation out = select(r, *Expr::col_cmp("p.dept", CmpOp::kEq, Value(1)));
  EXPECT_EQ(out.size(), 2u);
  for (const auto& row : out.rows()) EXPECT_TRUE(row.tid().valid());
}

TEST(Select, CountsMetrics) {
  Metrics m;
  const Relation out = select(people(), *Expr::always_true(), &m);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(m.get(common::metric::kRowsScanned), 3);
  EXPECT_EQ(m.get(common::metric::kRowsOutput), 3);
}

TEST(Project, KeepsMultiplicityWithoutDedup) {
  const Relation out = project(people(), {"p.dept"}, /*dedup=*/false);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out.schema().size(), 1u);
}

TEST(Project, DedupProducesSet) {
  const Relation out = project(people(), {"p.dept"}, /*dedup=*/true);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Project, ReordersColumns) {
  const Relation out = project(people(), {"p.dept", "p.name"}, false);
  EXPECT_EQ(out.schema().at(0).name, "p.dept");
  EXPECT_EQ(out.row(0).at(0).type(), ValueType::kInt);
}

TEST(NestedLoopJoin, CrossProductWithoutPredicate) {
  const Relation out = nested_loop_join(people(), depts(), nullptr);
  EXPECT_EQ(out.size(), 9u);
  EXPECT_EQ(out.schema().size(), 4u);
}

TEST(NestedLoopJoin, ThetaJoin) {
  const auto pred = Expr::cmp(CmpOp::kEq, Expr::col("p.dept"), Expr::col("d.id"));
  const Relation out = nested_loop_join(people(), depts(), pred.get());
  EXPECT_EQ(out.size(), 3u);
}

TEST(HashJoin, MatchesNestedLoop) {
  const auto pred = Expr::cmp(CmpOp::kEq, Expr::col("p.dept"), Expr::col("d.id"));
  const Relation nl = nested_loop_join(people(), depts(), pred.get());
  const Relation hj = hash_join(people(), depts(), {{1, 0}}, nullptr);
  EXPECT_TRUE(nl.equal_multiset(hj));
}

TEST(HashJoin, ResidualPredicate) {
  const auto residual = Expr::col_cmp("d.label", CmpOp::kEq, Value("eng"));
  const Relation out = hash_join(people(), depts(), {{1, 0}}, residual.get());
  EXPECT_EQ(out.size(), 2u);  // ann and cat
}

TEST(HashJoin, RequiresEquiPairs) {
  EXPECT_THROW(hash_join(people(), depts(), {}, nullptr), common::InvalidArgument);
}

TEST(Join, AutoSelectsHashAndPushesDown) {
  Metrics m;
  const auto pred = conjoin({
      Expr::cmp(CmpOp::kEq, Expr::col("p.dept"), Expr::col("d.id")),
      Expr::col_cmp("p.name", CmpOp::kNe, Value("bob")),
  });
  const Relation out = join(people(), depts(), pred, &m);
  EXPECT_EQ(out.size(), 2u);
  // Pushdown means the probe side was pre-filtered: fewer comparisons than
  // the full 3x3 cross product.
  EXPECT_LT(m.get(common::metric::kTuplesCompared), 9);
}

TEST(UnionAll, KeepsDuplicates) {
  const Relation out = union_all(people(), people());
  EXPECT_EQ(out.size(), 6u);
}

TEST(UnionAll, SchemaChecked) {
  EXPECT_THROW(union_all(people(), depts()), common::SchemaMismatch);
}

TEST(Difference, MultisetSemantics) {
  Relation a(Schema::of({{"x", ValueType::kInt}}));
  a.append(Tuple({Value(1)}));
  a.append(Tuple({Value(1)}));
  a.append(Tuple({Value(2)}));
  Relation b(Schema::of({{"x", ValueType::kInt}}));
  b.append(Tuple({Value(1)}));
  const Relation out = difference(a, b);
  EXPECT_EQ(out.size(), 2u);  // one 1 and one 2 remain
  EXPECT_EQ(out.count_value(Tuple({Value(1)})), 1u);
  EXPECT_EQ(out.count_value(Tuple({Value(2)})), 1u);
}

TEST(Difference, RemovingMoreThanPresentIsEmptyNotNegative) {
  Relation a(Schema::of({{"x", ValueType::kInt}}));
  a.append(Tuple({Value(1)}));
  Relation b(Schema::of({{"x", ValueType::kInt}}));
  b.append(Tuple({Value(1)}));
  b.append(Tuple({Value(1)}));
  EXPECT_TRUE(difference(a, b).empty());
}

TEST(Intersect, MultisetSemantics) {
  Relation a(Schema::of({{"x", ValueType::kInt}}));
  a.append(Tuple({Value(1)}));
  a.append(Tuple({Value(1)}));
  a.append(Tuple({Value(2)}));
  Relation b(Schema::of({{"x", ValueType::kInt}}));
  b.append(Tuple({Value(1)}));
  b.append(Tuple({Value(3)}));
  const Relation out = intersect(a, b);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out.count_value(Tuple({Value(1)})), 1u);
}

TEST(Distinct, RemovesDuplicates) {
  Relation a(Schema::of({{"x", ValueType::kInt}}));
  a.append(Tuple({Value(1)}));
  a.append(Tuple({Value(1)}));
  a.append(Tuple({Value(2)}));
  EXPECT_EQ(distinct(a).size(), 2u);
}

TEST(EmptyInputs, AllOperatorsHandleEmpty) {
  const Relation empty(people().schema());
  EXPECT_TRUE(select(empty, *Expr::always_true()).empty());
  EXPECT_TRUE(project(empty, {"p.name"}, true).empty());
  EXPECT_TRUE(nested_loop_join(empty, depts(), nullptr).empty());
  EXPECT_TRUE(hash_join(empty, depts(), {{1, 0}}, nullptr).empty());
  EXPECT_TRUE(difference(empty, empty).empty());
  EXPECT_TRUE(distinct(empty).empty());
}

}  // namespace
}  // namespace cq::alg
