// Long-haul stress: thousands of mixed updates across several tables, a
// bank of heterogeneous CQs (selection / join / aggregate / distinct, DRA
// and recompute strategies, with and without indexes), eager + periodic
// checking, aggressive GC, and a mid-stream snapshot/restore — with full
// recompute cross-checks at every checkpoint.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "cq/manager.hpp"
#include "cq/propagate.hpp"
#include "persist/snapshot.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"
#include "testing/random_db.hpp"

namespace cq {
namespace {

using core::CqHandle;
using core::CqSpec;
using core::DeliveryMode;
using core::ExecutionStrategy;

struct WatchedQuery {
  const char* name;
  const char* sql;
  ExecutionStrategy strategy;
};

constexpr WatchedQuery kQueries[] = {
    {"band", "SELECT id, price FROM S WHERE price BETWEEN 200 AND 600",
     ExecutionStrategy::kDra},
    {"band-recompute", "SELECT id, price FROM S WHERE price BETWEEN 200 AND 600",
     ExecutionStrategy::kRecompute},
    {"join", "SELECT s.id, t.id FROM S s, T t WHERE s.category = t.category "
             "AND s.price > 700 AND t.price < 300",
     ExecutionStrategy::kDra},
    {"sum", "SELECT category, SUM(price) AS total FROM S GROUP BY category",
     ExecutionStrategy::kDra},
    {"distinct", "SELECT DISTINCT category FROM T", ExecutionStrategy::kDra},
    {"having", "SELECT category, COUNT(*) AS n FROM S GROUP BY category HAVING n > 10",
     ExecutionStrategy::kDra},
};

void verify_all(core::CqManager& manager, const std::vector<CqHandle>& handles,
                cat::Database& db, int round) {
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const core::Notification n = manager.execute_now(handles[i]);
    const auto query = qry::parse_query(kQueries[i].sql);
    const rel::Relation fresh = qry::evaluate(query, db);
    const rel::Relation& maintained = n.aggregate ? *n.aggregate : *n.complete;
    ASSERT_TRUE(maintained.equal_multiset(fresh))
        << kQueries[i].name << " diverged at round " << round;
  }
}

TEST(Stress, EverythingAtOnce) {
  common::Rng rng(0x57E55);
  cat::Database db;
  testing::make_stock_table(db, "S", 400, rng);
  testing::make_stock_table(db, "T", 250, rng);
  db.create_index("S", "by_cat", {"category"});
  db.create_index("T", "by_cat", {"category"});

  auto manager = std::make_unique<core::CqManager>(db);
  std::vector<CqHandle> handles;
  for (const auto& wq : kQueries) {
    CqSpec spec = CqSpec::from_sql(wq.name, wq.sql, core::triggers::manual(), nullptr,
                                   DeliveryMode::kComplete);
    spec.strategy = wq.strategy;
    handles.push_back(manager->install(std::move(spec), nullptr));
  }

  const testing::UpdateMix mix{.modify_fraction = 0.4, .delete_fraction = 0.25};
  for (int round = 1; round <= 30; ++round) {
    testing::random_updates(db, "S", 40, mix, rng);
    testing::random_updates(db, "T", 25, mix, rng);
    if (round % 3 == 0) {
      verify_all(*manager, handles, db, round);
      manager->collect_garbage();
    }
  }

  // Mid-stream restart: snapshot, reload, re-install everything restored.
  testing::random_updates(db, "S", 30, mix, rng);  // pending at snapshot time
  persist::DecodedSnapshot snap =
      persist::decode_snapshot(persist::encode_snapshot(db, *manager));
  ASSERT_EQ(snap.cqs.size(), std::size(kQueries));

  cat::Database db2 = std::move(snap.db);
  auto manager2 = std::make_unique<core::CqManager>(db2);
  std::vector<CqHandle> handles2;
  for (const auto& entry : snap.cqs) {
    const WatchedQuery* wq = nullptr;
    for (const auto& q : kQueries) {
      if (entry.name == q.name) wq = &q;
    }
    ASSERT_NE(wq, nullptr);
    CqSpec spec = CqSpec::from_sql(wq->name, wq->sql, core::triggers::manual(), nullptr,
                                   DeliveryMode::kComplete);
    spec.strategy = wq->strategy;
    handles2.push_back(
        manager2->install_restored(std::move(spec), nullptr, entry.last_execution,
                                   entry.executions));
  }

  // Keep going on the restored deployment.
  for (int round = 31; round <= 45; ++round) {
    testing::random_updates(db2, "S", 40, mix, rng);
    testing::random_updates(db2, "T", 25, mix, rng);
    if (round % 3 == 0) {
      verify_all(*manager2, handles2, db2, round);
      manager2->collect_garbage();
    }
  }

  // Final sweep, then everything must still be alive and consistent.
  verify_all(*manager2, handles2, db2, 999);
  EXPECT_EQ(manager2->active_count(), std::size(kQueries));
}

TEST(Stress, EagerManagerUnderBurstyCommits) {
  common::Rng rng(0x57E56);
  cat::Database db;
  testing::make_stock_table(db, "S", 200, rng);
  core::CqManager manager(db);
  manager.set_eager(true);
  auto sink = std::make_shared<core::CollectingSink>();
  manager.install(CqSpec::from_sql("eager", "SELECT id FROM S WHERE price > 500",
                                   core::triggers::on_change()),
                  sink);

  const testing::UpdateMix mix{.modify_fraction = 0.5, .delete_fraction = 0.2};
  for (int burst = 0; burst < 50; ++burst) {
    testing::random_updates(db, "S", 10, mix, rng, /*txn_size=*/10);
  }
  // Eager checking delivered per relevant commit; the cumulative picture
  // must still match a recompute.
  core::CqManager probe(db);
  auto probe_sink = std::make_shared<core::CollectingSink>();
  probe.install(CqSpec::from_sql("probe", "SELECT id FROM S WHERE price > 500",
                                 core::triggers::manual(), nullptr,
                                 DeliveryMode::kComplete),
                probe_sink);
  const rel::Relation fresh = *probe_sink->notifications().front().complete;

  // Fold the eager CQ's diffs over its initial result.
  rel::Relation folded = *sink->notifications().front().complete;
  for (std::size_t i = 1; i < sink->notifications().size(); ++i) {
    folded = core::apply_diff(folded,
                              sink->notifications()[i].delta.consolidated());
  }
  EXPECT_TRUE(folded.equal_multiset(fresh));
  EXPECT_GT(sink->notifications().size(), 10u);
}

}  // namespace
}  // namespace cq
