// Source autonomy includes the right to be unavailable: a failing source
// must not lose updates (its cursor stays put) nor block the other sources.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "diom/mediator.hpp"
#include "diom/source.hpp"

namespace cq::diom {
namespace {

using rel::Schema;
using rel::Value;
using rel::ValueType;

/// Wraps a RelationalSource; fails pull_deltas while `down` is set.
class FlakySource final : public InformationSource {
 public:
  FlakySource(std::shared_ptr<InformationSource> inner) : inner_(std::move(inner)) {}

  bool down = false;

  [[nodiscard]] const std::string& name() const noexcept override {
    return inner_->name();
  }
  [[nodiscard]] const Schema& schema() const override { return inner_->schema(); }
  [[nodiscard]] rel::Relation snapshot() const override { return inner_->snapshot(); }
  [[nodiscard]] std::vector<delta::DeltaRow> pull_deltas(
      common::Timestamp since) const override {
    if (down) throw common::Unsupported("source unreachable");
    return inner_->pull_deltas(since);
  }
  [[nodiscard]] common::Timestamp now() const override { return inner_->now(); }

 private:
  std::shared_ptr<InformationSource> inner_;
};

struct Fixture {
  cat::Database stocks_db;
  cat::Database news_db;
  std::shared_ptr<FlakySource> stocks;
  std::shared_ptr<InformationSource> news;
  Mediator client{"client"};

  Fixture() {
    stocks_db.create_table("Stocks", Schema::of({{"sym", ValueType::kString},
                                                 {"px", ValueType::kInt}}));
    news_db.create_table("News", Schema::of({{"headline", ValueType::kString}}));
    stocks = std::make_shared<FlakySource>(
        std::make_shared<RelationalSource>("Stocks", stocks_db, "Stocks"));
    news = std::make_shared<RelationalSource>("News", news_db, "News");
    client.attach(stocks);
    client.attach(news);
  }
};

TEST(MediatorFault, FailedSourceDoesNotBlockOthers) {
  Fixture f;
  f.stocks->down = true;
  f.stocks_db.insert("Stocks", {Value("IBM"), Value(75)});
  f.news_db.insert("News", {Value("markets open")});

  const auto report = f.client.sync_report();
  EXPECT_EQ(report.rows_applied, 1u);  // the news row
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].first, "Stocks");
  EXPECT_TRUE(f.client.database().table("Stocks").empty());
  EXPECT_EQ(f.client.database().table("News").size(), 1u);
}

TEST(MediatorFault, RecoveredSourceDeliversTheMissedWindow) {
  Fixture f;
  f.stocks->down = true;
  f.stocks_db.insert("Stocks", {Value("IBM"), Value(75)});
  (void)f.client.sync_report();  // fails; cursor must not move

  f.stocks_db.insert("Stocks", {Value("DEC"), Value(150)});
  f.stocks->down = false;
  const auto report = f.client.sync_report();
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.rows_applied, 2u);  // both rows, nothing lost
  EXPECT_TRUE(f.client.database().table("Stocks").equal_multiset(
      f.stocks_db.table("Stocks")));
}

TEST(MediatorFault, RepeatedFailuresStayIdempotent) {
  Fixture f;
  f.stocks_db.insert("Stocks", {Value("IBM"), Value(75)});
  f.stocks->down = true;
  for (int i = 0; i < 5; ++i) {
    const auto report = f.client.sync_report();
    EXPECT_EQ(report.failures.size(), 1u);
  }
  f.stocks->down = false;
  EXPECT_EQ(f.client.sync(), 1u);   // applied exactly once
  EXPECT_EQ(f.client.sync(), 0u);   // and not again
}

}  // namespace
}  // namespace cq::diom
