#include "algebra/simplify.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "query/parser.hpp"

namespace cq::alg {
namespace {

using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

ExprPtr simp(const std::string& predicate) {
  return simplify(qry::parse_predicate(predicate));
}

std::string rendered(const std::string& predicate) { return simp(predicate)->to_string(); }

TEST(Simplify, ConstantFolding) {
  EXPECT_EQ(rendered("1 + 2 * 3"), "7");
  EXPECT_EQ(rendered("10 / 4"), "2");        // integer division
  EXPECT_EQ(rendered("10.0 / 4"), "2.5");
  EXPECT_EQ(rendered("3 > 2"), "true");
  EXPECT_EQ(rendered("'a' = 'b'"), "false");
  EXPECT_EQ(rendered("1 / 0"), "NULL");      // folds like evaluation would
  EXPECT_EQ(rendered("NULL IS NULL"), "true");
  EXPECT_EQ(rendered("5 IN (1, 5, 9)"), "true");
  EXPECT_EQ(rendered("2 BETWEEN 3 AND 10"), "false");
}

TEST(Simplify, BooleanIdentities) {
  EXPECT_EQ(rendered("price > 5 AND TRUE"), "(price > 5)");
  EXPECT_EQ(rendered("TRUE AND price > 5"), "(price > 5)");
  EXPECT_EQ(rendered("price > 5 AND FALSE"), "false");
  EXPECT_EQ(rendered("price > 5 OR TRUE"), "true");
  EXPECT_EQ(rendered("price > 5 OR FALSE"), "(price > 5)");
  EXPECT_EQ(rendered("NOT TRUE"), "false");
}

TEST(Simplify, FoldedConstantSubtreePrunesBranch) {
  // The constant conjunct folds away entirely.
  EXPECT_EQ(rendered("price > 5 AND 2 < 3"), "(price > 5)");
  EXPECT_EQ(rendered("price > 5 AND 2 > 3"), "false");
}

TEST(Simplify, DoubleNegation) {
  EXPECT_EQ(rendered("NOT NOT price > 5"), "(price > 5)");
}

TEST(Simplify, DeMorgan) {
  EXPECT_EQ(rendered("NOT (a > 1 AND b > 2)"), "(NOT (a > 1) OR NOT (b > 2))");
  EXPECT_EQ(rendered("NOT (a > 1 OR b > 2)"), "(NOT (a > 1) AND NOT (b > 2))");
}

TEST(Simplify, BetweenWithInvertedBoundsIsFalse) {
  EXPECT_EQ(rendered("price BETWEEN 10 AND 3"), "false");
  EXPECT_NE(rendered("price BETWEEN 3 AND 10"), "false");
}

TEST(Simplify, Idempotent) {
  for (const char* pred :
       {"NOT (a > 1 AND (b < 2 OR TRUE))", "x + 0 * 3 > 2 AND y IS NULL",
        "NOT NOT NOT a = 1"}) {
    const ExprPtr once = simp(pred);
    const ExprPtr twice = simplify(once);
    EXPECT_EQ(once->to_string(), twice->to_string()) << pred;
  }
}

TEST(Simplify, LeavesColumnsAlone) {
  EXPECT_EQ(rendered("price > qty"), "(price > qty)");
  EXPECT_EQ(rendered("name LIKE 'ab%'"), "name LIKE 'ab%'");
  EXPECT_EQ(rendered("v IS NOT NULL"), "v IS NOT NULL");
}

/// Property: simplify preserves eval_bool on randomized expressions and
/// tuples (including NULLs — the reason comparisons are never inverted).
TEST(Simplify, PreservesPredicateSemantics) {
  common::Rng rng(0x51);
  const Schema schema = Schema::of(
      {{"a", ValueType::kInt}, {"b", ValueType::kInt}, {"s", ValueType::kString}});

  // Random expression generator over {a, b, s} with bounded depth.
  std::function<ExprPtr(int)> gen = [&](int depth) -> ExprPtr {
    if (depth <= 0 || rng.chance(0.3)) {
      switch (rng.index(4)) {
        case 0: return Expr::col(rng.chance(0.5) ? "a" : "b");
        case 1: return Expr::lit(Value(rng.uniform_int(-3, 3)));
        case 2: return Expr::lit(rng.chance(0.5) ? Value(true) : Value(false));
        default: return Expr::lit(Value::null());
      }
    }
    switch (rng.index(7)) {
      case 0:
        return Expr::cmp(static_cast<CmpOp>(rng.index(6)), gen(depth - 1),
                         gen(depth - 1));
      case 1:
        return Expr::arith(static_cast<ArithOp>(rng.index(4)), gen(depth - 1),
                           gen(depth - 1));
      case 2: return Expr::logical_and(gen(depth - 1), gen(depth - 1));
      case 3: return Expr::logical_or(gen(depth - 1), gen(depth - 1));
      case 4: return Expr::logical_not(gen(depth - 1));
      case 5: return Expr::is_null(gen(depth - 1), rng.chance(0.5));
      default:
        return Expr::between(gen(depth - 1), Value(rng.uniform_int(-3, 3)),
                             Value(rng.uniform_int(-3, 3)));
    }
  };

  // Error behaviour is not part of the predicate contract (as in standard
  // SQL optimizers): pruning `X AND false` to `false` is allowed even when
  // X would raise a type error. So: when the original evaluates cleanly,
  // the simplified form must match it; when the original throws, the
  // simplified form may either throw or produce a value.
  auto outcome = [&](const ExprPtr& e, const Tuple& row) -> std::optional<bool> {
    try {
      return e->eval_bool(row, schema);
    } catch (const common::Error&) {
      return std::nullopt;
    }
  };

  for (int round = 0; round < 2000; ++round) {
    const ExprPtr original = gen(4);
    const ExprPtr simplified = simplify(original);
    for (int probe = 0; probe < 5; ++probe) {
      const Tuple row({rng.chance(0.2) ? Value::null() : Value(rng.uniform_int(-3, 3)),
                       rng.chance(0.2) ? Value::null() : Value(rng.uniform_int(-3, 3)),
                       Value(rng.string(2))});
      const std::optional<bool> expected = outcome(original, row);
      if (!expected.has_value()) continue;  // original errored: unconstrained
      ASSERT_EQ(expected, outcome(simplified, row))
          << "round " << round << "\noriginal:   " << original->to_string()
          << "\nsimplified: " << simplified->to_string() << "\nrow " << row.to_string();
    }
  }
}

}  // namespace
}  // namespace cq::alg
