// Notification provenance end to end: base delta rows are tagged with
// stable (txn, relation, seq) identities at commit time, the DRA carries
// them through joins/projections/aggregation, and the manager's
// LineageStore retains them per notification. The hand-computed
// derivations here pin the exact citation sets — which commit, which
// relation, which delta row — not just "something was cited".
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "common/observability.hpp"
#include "cq/manager.hpp"
#include "query/parser.hpp"
#include "relation/provenance.hpp"

namespace cq {
namespace {

using core::CollectingSink;
using core::CqManager;
using core::CqSpec;
using core::LineageRecord;
using core::LineageRow;
using rel::Value;
using rel::prov::ProvId;

/// Every test toggles the process-global provenance flag through
/// set_lineage; restore a clean slate around each one.
class LineageTest : public ::testing::Test {
 protected:
  void TearDown() override {
    rel::prov::set_enabled(false);
    common::obs::set_enabled(false);
  }
};

void make_join_tables(cat::Database& db) {
  db.create_table("S", rel::Schema::of({{"name", rel::ValueType::kString},
                                        {"price", rel::ValueType::kInt}}));
  db.create_table("T", rel::Schema::of({{"name", rel::ValueType::kString},
                                        {"qty", rel::ValueType::kInt}}));
}

/// Assert a row cites exactly `expected` (ProvSets are canonically sorted,
/// so exact vector equality is meaningful).
void expect_sources(const LineageRow& row, const std::vector<ProvId>& expected) {
  ASSERT_EQ(row.sources.size(), expected.size()) << "row " << row.row;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(row.sources[i].txn, expected[i].txn) << "row " << row.row;
    EXPECT_EQ(rel::prov::relation_name(row.sources[i].rel),
              rel::prov::relation_name(expected[i].rel))
        << "row " << row.row;
    EXPECT_EQ(row.sources[i].seq, expected[i].seq) << "row " << row.row;
  }
}

ProvId id_of(const std::string& table, std::int64_t txn, std::uint64_t seq) {
  return {txn, rel::prov::intern_relation(table), seq};
}

/// Join CQ, hand-computed: a commit touching both join sides must cite
/// both relations' delta rows; a later commit touching only T cites only
/// its own ΔT row.
TEST_F(LineageTest, JoinLineageMatchesHandComputedDerivation) {
  cat::Database db;
  make_join_tables(db);
  CqManager mgr(db);
  mgr.set_lineage(true, 8);
  auto sink = std::make_shared<CollectingSink>();
  (void)mgr.install(
      CqSpec::from_sql("watch",
                       "SELECT S.name, T.qty FROM S, T "
                       "WHERE S.name = T.name AND S.price > 100",
                       core::triggers::on_change()),
      sink);

  {
    // Commit 1 (clock ticks to t=1): one transaction touching BOTH sides.
    auto txn = db.begin();
    txn.insert("S", {Value("DEC"), Value(std::int64_t{150})});
    txn.insert("T", {Value("DEC"), Value(std::int64_t{7})});
    txn.commit();
  }
  ASSERT_EQ(mgr.poll(), 1u);
  // Commit 2 (t=2): only T changes; its delta row is ΔT's second (seq 1).
  db.insert("T", {Value("DEC"), Value(std::int64_t{3})});
  ASSERT_EQ(mgr.poll(), 1u);

  const std::vector<LineageRecord> records = mgr.lineage().tail("watch", 8);
  ASSERT_EQ(records.size(), 3u);  // initial + two polls

  // Notification #1: +('DEC', 7) derives from ΔS txn1/seq0 AND ΔT txn1/seq0.
  ASSERT_EQ(records[1].rows.size(), 1u);
  EXPECT_TRUE(records[1].rows[0].inserted);
  expect_sources(records[1].rows[0], {id_of("S", 1, 0), id_of("T", 1, 0)});

  // Notification #2: +('DEC', 3) derives from ΔT txn2/seq1 alone — S did
  // not change, so its (base-bound) side contributes no delta citation.
  ASSERT_EQ(records[2].rows.size(), 1u);
  EXPECT_TRUE(records[2].rows[0].inserted);
  expect_sources(records[2].rows[0], {id_of("T", 2, 1)});
}

/// Aggregate CQ, hand-computed: each group's delta rows cite exactly the
/// base delta rows that landed in that group, and an update to one group
/// leaves the other group's citations out entirely.
TEST_F(LineageTest, AggregateLineageCitesPerGroupDeltas) {
  cat::Database db;
  db.create_table("S", rel::Schema::of({{"category", rel::ValueType::kString},
                                        {"price", rel::ValueType::kInt}}));
  CqManager mgr(db);
  mgr.set_lineage(true, 8);
  auto sink = std::make_shared<CollectingSink>();
  (void)mgr.install(
      CqSpec::from_sql("totals",
                       "SELECT category, SUM(price) AS total FROM S "
                       "GROUP BY category",
                       core::triggers::on_change()),
      sink);

  {
    // Commit 1 (t=1): red lands as ΔS seq 0, blue as ΔS seq 1.
    auto txn = db.begin();
    txn.insert("S", {Value("red"), Value(std::int64_t{10})});
    txn.insert("S", {Value("blue"), Value(std::int64_t{5})});
    txn.commit();
  }
  ASSERT_EQ(mgr.poll(), 1u);
  // Commit 2 (t=2): only red changes (ΔS seq 2).
  db.insert("S", {Value("red"), Value(std::int64_t{7})});
  ASSERT_EQ(mgr.poll(), 1u);

  const std::vector<LineageRecord> records = mgr.lineage().tail("totals", 8);
  ASSERT_EQ(records.size(), 3u);

  // Notification #1: each new group row cites its own base insert only.
  ASSERT_EQ(records[1].rows.size(), 2u);
  for (const LineageRow& row : records[1].rows) {
    EXPECT_TRUE(row.inserted);
    if (row.row.find("red") != std::string::npos) {
      expect_sources(row, {id_of("S", 1, 0)});
    } else {
      ASSERT_NE(row.row.find("blue"), std::string::npos) << row.row;
      expect_sources(row, {id_of("S", 1, 1)});
    }
  }

  // Notification #2: red's old aggregate row leaves and its new one
  // enters; both cite exactly the txn-2 delta. Blue contributes no rows.
  ASSERT_EQ(records[2].rows.size(), 2u);
  for (const LineageRow& row : records[2].rows) {
    ASSERT_NE(row.row.find("red"), std::string::npos) << row.row;
    expect_sources(row, {id_of("S", 2, 2)});
  }
}

/// Every citation in every retained record must resolve to a physical row
/// in the delta log with exactly that (txn, seq) identity.
TEST_F(LineageTest, CitedDeltaRowsExistInDeltaLog) {
  cat::Database db;
  make_join_tables(db);
  CqManager mgr(db);
  mgr.set_lineage(true, 16);
  auto sink = std::make_shared<CollectingSink>();
  (void)mgr.install(CqSpec::from_sql("watch",
                                     "SELECT S.name, T.qty FROM S, T "
                                     "WHERE S.name = T.name",
                                     core::triggers::on_change()),
                    sink);
  for (int i = 0; i < 6; ++i) {
    auto txn = db.begin();
    txn.insert("S", {Value("k" + std::to_string(i % 3)), Value(std::int64_t{i})});
    if (i % 2 == 0) {
      txn.insert("T", {Value("k" + std::to_string(i % 3)), Value(std::int64_t{i})});
    }
    txn.commit();
    (void)mgr.poll();
  }

  std::size_t citations = 0;
  for (const LineageRecord& rec : mgr.lineage().tail("watch", 16)) {
    for (const LineageRow& row : rec.rows) {
      for (const ProvId& id : row.sources) {
        const std::string table = rel::prov::relation_name(id.rel);
        ASSERT_TRUE(db.has_table(table));
        bool found = false;
        for (const auto& d : db.delta(table).rows()) {
          if (d.ts.ticks() == id.txn && d.seq == id.seq) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "Δ" << table << " txn=" << id.txn
                           << " seq=" << id.seq << " not in the delta log";
        ++citations;
      }
    }
  }
  EXPECT_GT(citations, 0u);
}

/// Lineage is recorded at the serialized delivery point, so the retained
/// records must be identical whether CQs evaluate on 1 lane or 4.
TEST_F(LineageTest, LineageIdenticalAcrossLaneCounts) {
  auto run = [](std::size_t lanes) {
    auto db = std::make_unique<cat::Database>();
    make_join_tables(*db);
    auto mgr = std::make_unique<CqManager>(*db);
    mgr->set_parallelism(lanes);
    mgr->set_lineage(true, 16);
    auto sink = std::make_shared<CollectingSink>();
    for (int c = 0; c < 3; ++c) {
      (void)mgr->install(
          CqSpec::from_sql("cq" + std::to_string(c),
                           "SELECT S.name, T.qty FROM S, T "
                           "WHERE S.name = T.name AND S.price > " +
                               std::to_string(c * 2),
                           core::triggers::on_change()),
          sink);
    }
    for (int i = 0; i < 8; ++i) {
      auto txn = db->begin();
      txn.insert("S", {Value("k" + std::to_string(i % 3)), Value(std::int64_t{i})});
      txn.insert("T", {Value("k" + std::to_string((i + 1) % 3)), Value(std::int64_t{i})});
      txn.commit();
      (void)mgr->poll();
    }
    // Serialize what was retained (rows + citations) per CQ.
    std::string out;
    for (int c = 0; c < 3; ++c) {
      const std::string name = "cq" + std::to_string(c);
      for (const LineageRecord& rec : mgr->lineage().tail(name, 16)) {
        out += name + "#" + std::to_string(rec.sequence) + "\n";
        for (const LineageRow& row : rec.rows) {
          out += (row.inserted ? "+" : "-") + row.row + " <=";
          for (const ProvId& id : row.sources) {
            out += " " + rel::prov::relation_name(id.rel) + ":" +
                   std::to_string(id.txn) + ":" + std::to_string(id.seq);
          }
          out += "\n";
        }
      }
    }
    mgr->set_lineage(false);
    return out;
  };

  const std::string sequential = run(1);
  const std::string parallel = run(4);
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);
}

/// Satellite: with tracing on, journal events recorded inside the commit
/// pipeline (trigger_fired / cq_delivered) carry the commit's trace id, so
/// they join against /trace?trace_id= without timestamp guessing.
TEST_F(LineageTest, CommitPipelineEventsCarryTraceId) {
  common::obs::set_enabled(true);
  common::obs::global().reset();
  cat::Database db;
  make_join_tables(db);
  CqManager mgr(db);
  mgr.set_eager(true);  // deliver inside the commit, where the trace lives
  auto sink = std::make_shared<CollectingSink>();
  (void)mgr.install(CqSpec::from_sql("watch", "SELECT name, price FROM S",
                                     core::triggers::on_change()),
                    sink);
  db.insert("S", {Value("DEC"), Value(std::int64_t{150})});

  bool fired_traced = false;
  bool delivered_traced = false;
  for (const common::obs::Event& e : common::obs::global().events().tail(100)) {
    if (e.kind == "trigger_fired" && e.trace_id != 0) fired_traced = true;
    if (e.kind == "cq_delivered" && e.trace_id != 0) delivered_traced = true;
  }
  EXPECT_TRUE(fired_traced);
  EXPECT_TRUE(delivered_traced);
}

/// Satellite: ?since=<seq> filtering — tail() and to_ndjson() return only
/// events newer than the given journal sequence.
TEST_F(LineageTest, EventJournalSinceFilter) {
  common::obs::set_enabled(true);
  common::obs::global().reset();
  for (int i = 0; i < 5; ++i) {
    common::obs::event(common::obs::Severity::kInfo, "tick",
                       "s" + std::to_string(i));
  }
  auto& log = common::obs::global().events();
  const std::uint64_t total = log.total();
  ASSERT_GE(total, 5u);

  const auto fresh = log.tail(100, total - 2);
  ASSERT_EQ(fresh.size(), 2u);
  for (const auto& e : fresh) EXPECT_GT(e.seq, total - 2);

  EXPECT_TRUE(log.tail(100, total).empty());

  const std::string ndjson = log.to_ndjson(100, total - 1);
  EXPECT_NE(ndjson.find("\"trace_id\""), std::string::npos);
  EXPECT_EQ(ndjson.find("s0"), std::string::npos);
  EXPECT_NE(ndjson.find("s4"), std::string::npos);
}

/// The retention ring is bounded: K+extra notifications keep only the last
/// K records, and bytes() tracks evictions.
TEST_F(LineageTest, RetentionRingEvictsOldRecords) {
  cat::Database db;
  db.create_table("S", rel::Schema::of({{"name", rel::ValueType::kString},
                                        {"price", rel::ValueType::kInt}}));
  CqManager mgr(db);
  mgr.set_lineage(true, 3);
  auto sink = std::make_shared<CollectingSink>();
  (void)mgr.install(CqSpec::from_sql("watch", "SELECT name, price FROM S",
                                     core::triggers::on_change()),
                    sink);
  for (int i = 0; i < 7; ++i) {
    db.insert("S", {Value("r" + std::to_string(i)), Value(std::int64_t{i})});
    (void)mgr.poll();
  }
  const std::vector<LineageRecord> records = mgr.lineage().tail("watch", 100);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.back().sequence, 7u);  // initial was #0, last poll is #7
  EXPECT_EQ(records.front().sequence, 5u);
  EXPECT_GT(mgr.lineage().bytes(), 0u);
}

/// Disabled path: with lineage off (the default), delivered tuples carry
/// no provenance and nothing is retained.
TEST_F(LineageTest, DisabledByDefaultCollectsNothing) {
  cat::Database db;
  db.create_table("S", rel::Schema::of({{"name", rel::ValueType::kString},
                                        {"price", rel::ValueType::kInt}}));
  CqManager mgr(db);
  auto sink = std::make_shared<CollectingSink>();
  (void)mgr.install(CqSpec::from_sql("watch", "SELECT name, price FROM S",
                                     core::triggers::on_change()),
                    sink);
  db.insert("S", {Value("DEC"), Value(std::int64_t{150})});
  ASSERT_EQ(mgr.poll(), 1u);

  EXPECT_TRUE(mgr.lineage().tail("watch", 8).empty());
  EXPECT_EQ(mgr.lineage().bytes(), 0u);
  for (const core::Notification& n : sink->notifications()) {
    for (const auto& row : n.delta.inserted.rows()) {
      EXPECT_EQ(row.prov(), nullptr);
    }
  }
}

}  // namespace
}  // namespace cq
