#include "delta/delta_relation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "delta/delta_zone.hpp"

namespace cq::delta {
namespace {

using common::Timestamp;
using rel::Schema;
using rel::Tuple;
using rel::TupleId;
using rel::Value;
using rel::ValueType;

Schema stocks_schema() {
  return Schema::of({{"name", ValueType::kString}, {"price", ValueType::kInt}});
}

TEST(DeltaRelation, RecordAndViews) {
  DeltaRelation d(stocks_schema());
  d.record_insert(TupleId(1), {Value("MAC"), Value(117)}, Timestamp(10));
  d.record_modify(TupleId(2), {Value("DEC"), Value(150)}, {Value("DEC"), Value(149)},
                  Timestamp(11));
  d.record_delete(TupleId(3), {Value("QLI"), Value(145)}, Timestamp(12));

  // insertions = inserts + new halves of modifications (Section 4.1).
  const auto ins = d.insertions(Timestamp::min());
  EXPECT_EQ(ins.size(), 2u);
  EXPECT_EQ(ins.count_value(Tuple({Value("MAC"), Value(117)})), 1u);
  EXPECT_EQ(ins.count_value(Tuple({Value("DEC"), Value(149)})), 1u);

  // deletions = deletes + old halves of modifications.
  const auto del = d.deletions(Timestamp::min());
  EXPECT_EQ(del.size(), 2u);
  EXPECT_EQ(del.count_value(Tuple({Value("DEC"), Value(150)})), 1u);
  EXPECT_EQ(del.count_value(Tuple({Value("QLI"), Value(145)})), 1u);
}

TEST(DeltaRelation, TimestampWindow) {
  DeltaRelation d(stocks_schema());
  d.record_insert(TupleId(1), {Value("A"), Value(1)}, Timestamp(5));
  d.record_insert(TupleId(2), {Value("B"), Value(2)}, Timestamp(10));
  // ts > since is strict: a CQ executed exactly at ts=5 must not re-see it.
  EXPECT_EQ(d.insertions(Timestamp(5)).size(), 1u);
  EXPECT_EQ(d.insertions(Timestamp(4)).size(), 2u);
  EXPECT_EQ(d.insertions(Timestamp(10)).size(), 0u);
  EXPECT_TRUE(d.changed_since(Timestamp(9)));
  EXPECT_FALSE(d.changed_since(Timestamp(10)));
}

TEST(DeltaRelation, NetEffectInsertThenModify) {
  DeltaRelation d(stocks_schema());
  d.record_insert(TupleId(1), {Value("A"), Value(1)}, Timestamp(1));
  d.record_modify(TupleId(1), {Value("A"), Value(1)}, {Value("A"), Value(9)},
                  Timestamp(2));
  const auto net = d.net_effect(Timestamp::min());
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].kind(), ChangeKind::kInsert);
  EXPECT_EQ((*net[0].new_values)[1], Value(9));
}

TEST(DeltaRelation, NetEffectInsertThenDelete) {
  DeltaRelation d(stocks_schema());
  d.record_insert(TupleId(1), {Value("A"), Value(1)}, Timestamp(1));
  d.record_delete(TupleId(1), {Value("A"), Value(1)}, Timestamp(2));
  EXPECT_TRUE(d.net_effect(Timestamp::min()).empty());
  EXPECT_TRUE(d.insertions(Timestamp::min()).empty());
  EXPECT_TRUE(d.deletions(Timestamp::min()).empty());
  // Raw log still holds both rows (several transactions' history).
  EXPECT_EQ(d.size(), 2u);
}

TEST(DeltaRelation, NetEffectModifyChain) {
  DeltaRelation d(stocks_schema());
  d.record_modify(TupleId(1), {Value("A"), Value(1)}, {Value("A"), Value(2)},
                  Timestamp(1));
  d.record_modify(TupleId(1), {Value("A"), Value(2)}, {Value("A"), Value(3)},
                  Timestamp(2));
  const auto net = d.net_effect(Timestamp::min());
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].kind(), ChangeKind::kModify);
  EXPECT_EQ((*net[0].old_values)[1], Value(1));  // earliest old
  EXPECT_EQ((*net[0].new_values)[1], Value(3));  // latest new
}

TEST(DeltaRelation, NetEffectModifyBackToOriginalCollapses) {
  DeltaRelation d(stocks_schema());
  d.record_modify(TupleId(1), {Value("A"), Value(1)}, {Value("A"), Value(2)},
                  Timestamp(1));
  d.record_modify(TupleId(1), {Value("A"), Value(2)}, {Value("A"), Value(1)},
                  Timestamp(2));
  EXPECT_TRUE(d.net_effect(Timestamp::min()).empty());
}

TEST(DeltaRelation, NetEffectModifyThenDelete) {
  DeltaRelation d(stocks_schema());
  d.record_modify(TupleId(1), {Value("A"), Value(1)}, {Value("A"), Value(2)},
                  Timestamp(1));
  d.record_delete(TupleId(1), {Value("A"), Value(2)}, Timestamp(2));
  const auto net = d.net_effect(Timestamp::min());
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].kind(), ChangeKind::kDelete);
  EXPECT_EQ((*net[0].old_values)[1], Value(1));  // the pre-window value
}

TEST(DeltaRelation, NoTidAppearsTwiceInNetEffect) {
  DeltaRelation d(stocks_schema());
  for (int i = 0; i < 5; ++i) {
    d.record_modify(TupleId(7), {Value("A"), Value(i)}, {Value("A"), Value(i + 1)},
                    Timestamp(i));
  }
  d.record_insert(TupleId(8), {Value("B"), Value(0)}, Timestamp(10));
  const auto net = d.net_effect(Timestamp::min());
  EXPECT_EQ(net.size(), 2u);  // paper: "No tid can appear in multiple rows"
}

TEST(DeltaRelation, WideRelationLayout) {
  DeltaRelation d(stocks_schema());
  d.record_modify(TupleId(2), {Value("DEC"), Value(150)}, {Value("DEC"), Value(149)},
                  Timestamp(11));
  const auto wide = d.as_wide_relation(Timestamp::min());
  ASSERT_EQ(wide.size(), 1u);
  const auto& schema = wide.schema();
  EXPECT_EQ(schema.index_of("name_old"), 0u);
  EXPECT_EQ(schema.index_of("price_old"), 1u);
  EXPECT_EQ(schema.index_of("name_new"), 2u);
  EXPECT_EQ(schema.index_of("price_new"), 3u);
  EXPECT_EQ(schema.index_of("__tid"), 4u);
  EXPECT_EQ(schema.index_of("__ts"), 5u);
  const auto& row = wide.row(0);
  EXPECT_EQ(row.at(1), Value(150));
  EXPECT_EQ(row.at(3), Value(149));
  EXPECT_EQ(row.at(4), Value(2));
  EXPECT_EQ(row.at(5), Value(11));
}

TEST(DeltaRelation, WideRelationNullHalves) {
  DeltaRelation d(stocks_schema());
  d.record_insert(TupleId(1), {Value("MAC"), Value(117)}, Timestamp(1));
  d.record_delete(TupleId(2), {Value("QLI"), Value(145)}, Timestamp(2));
  const auto wide = d.as_wide_relation(Timestamp::min());
  ASSERT_EQ(wide.size(), 2u);
  const auto rows = wide.sorted_rows();
  // Insert row: old half null. Delete row: new half null.
  bool saw_insert = false;
  bool saw_delete = false;
  for (const auto& row : rows) {
    if (row.at(0).is_null()) {
      saw_insert = true;
      EXPECT_EQ(row.at(2), Value("MAC"));
    }
    if (row.at(2).is_null()) {
      saw_delete = true;
      EXPECT_EQ(row.at(0), Value("QLI"));
    }
  }
  EXPECT_TRUE(saw_insert);
  EXPECT_TRUE(saw_delete);
}

TEST(DeltaRelation, TruncateBefore) {
  DeltaRelation d(stocks_schema());
  for (int i = 1; i <= 10; ++i) {
    d.record_insert(TupleId(static_cast<unsigned>(i)), {Value("A"), Value(i)},
                    Timestamp(i));
  }
  EXPECT_EQ(d.truncate_before(Timestamp(5)), 5u);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.insertions(Timestamp::min()).size(), 5u);
  EXPECT_EQ(d.truncate_before(Timestamp(100)), 5u);
  EXPECT_TRUE(d.empty());
}

TEST(DeltaRelation, ValidationErrors) {
  DeltaRelation d(stocks_schema());
  EXPECT_THROW(d.record_insert(TupleId(), {Value("A"), Value(1)}, Timestamp(1)),
               common::InvalidArgument);  // invalid tid
  EXPECT_THROW(d.record_insert(TupleId(1), {Value("A")}, Timestamp(1)),
               common::SchemaMismatch);  // arity
  EXPECT_THROW(d.append(DeltaRow{TupleId(1), std::nullopt, std::nullopt, Timestamp(1)}),
               common::InvalidArgument);  // no values at all
  d.record_insert(TupleId(1), {Value("A"), Value(1)}, Timestamp(5));
  EXPECT_THROW(d.record_insert(TupleId(2), {Value("B"), Value(2)}, Timestamp(4)),
               common::InvalidArgument);  // timestamps must not go backwards
}

TEST(DeltaRelation, ByteSizeGrowsAndShrinks) {
  DeltaRelation d(stocks_schema());
  EXPECT_EQ(d.byte_size(), 0u);
  d.record_insert(TupleId(1), {Value("A"), Value(1)}, Timestamp(1));
  const auto one = d.byte_size();
  EXPECT_GT(one, 0u);
  d.record_insert(TupleId(2), {Value("B"), Value(2)}, Timestamp(2));
  EXPECT_GT(d.byte_size(), one);
  d.truncate_before(Timestamp(10));
  EXPECT_EQ(d.byte_size(), 0u);
}

TEST(DeltaZone, RegistryTracksMinimum) {
  DeltaZoneRegistry reg;
  EXPECT_FALSE(reg.system_zone_start().has_value());
  const CqId a = reg.register_cq(Timestamp(10));
  const CqId b = reg.register_cq(Timestamp(5));
  EXPECT_EQ(reg.system_zone_start(), Timestamp(5));
  reg.advance(b, Timestamp(20));
  EXPECT_EQ(reg.system_zone_start(), Timestamp(10));
  reg.unregister(a);
  EXPECT_EQ(reg.system_zone_start(), Timestamp(20));
  reg.unregister(b);
  EXPECT_FALSE(reg.system_zone_start().has_value());
}

TEST(DeltaZone, ZoneNeverMovesBackwards) {
  DeltaZoneRegistry reg;
  const CqId a = reg.register_cq(Timestamp(10));
  EXPECT_THROW(reg.advance(a, Timestamp(5)), common::InvalidArgument);
  EXPECT_THROW(reg.advance(999, Timestamp(50)), common::NotFound);
  EXPECT_THROW(reg.unregister(999), common::NotFound);
}

}  // namespace
}  // namespace cq::delta
