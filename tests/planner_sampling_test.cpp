// Sample-based selectivity estimation: the planner measures filters on
// actual rows when they're available, fixing join orders the shape-based
// heuristic gets wrong on skewed data.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"
#include "query/planner.hpp"

namespace cq::qry {
namespace {

using rel::Relation;
using rel::Value;
using rel::ValueType;

/// Two tables of equal size; the filter on Big matches almost everything,
/// the filter on Small almost nothing — but both are `=` comparisons, so
/// the shape heuristic scores them identically. Sampling must order Small
/// (post-filter tiny) first.
TEST(PlannerSampling, MeasuredSelectivityOrdersJoins) {
  cat::Database db;
  db.create_table("A", rel::Schema::of({{"flag", ValueType::kInt},
                                        {"grp", ValueType::kInt}}));
  db.create_table("B", rel::Schema::of({{"flag", ValueType::kInt},
                                        {"grp", ValueType::kInt}}));
  auto txn = db.begin();
  for (int i = 0; i < 400; ++i) {
    txn.insert("A", {Value(1), Value(i % 20)});              // flag=1 always
    txn.insert("B", {Value(i % 100 == 0 ? 1 : 0), Value(i % 20)});  // flag=1 rare
  }
  txn.commit();

  const SpjQuery q = parse_query(
      "SELECT * FROM A a, B b WHERE a.grp = b.grp AND a.flag = 1 AND b.flag = 1");

  const Relation qa = qualified_copy(db.table("A"), q.from[0]);
  const Relation qb = qualified_copy(db.table("B"), q.from[1]);
  const std::vector<rel::Schema> schemas = {qa.schema(), qb.schema()};
  const std::vector<std::size_t> cards = {qa.size(), qb.size()};

  // Without samples the heuristic sees two identical `=` filters: tie.
  // With samples, B's measured selectivity (~1%) puts it first.
  const std::vector<const Relation*> samples = {&qa, &qb};
  const PlannedQuery sampled = plan(q, schemas, cards, &samples);
  EXPECT_EQ(sampled.join_order[0], 1u) << "B (rare flag) should be joined first";
}

TEST(PlannerSampling, SampleCountMismatchThrows) {
  const SpjQuery q = parse_query("SELECT * FROM A, B");
  const std::vector<rel::Schema> schemas = {
      rel::Schema::of({{"A.x", ValueType::kInt}}),
      rel::Schema::of({{"B.x", ValueType::kInt}})};
  const std::vector<const Relation*> samples = {nullptr};  // only one entry
  EXPECT_THROW(static_cast<void>(plan(q, schemas, {1, 1}, &samples)),
               common::InvalidArgument);
}

TEST(PlannerSampling, EmptySampleFallsBackGracefully) {
  cat::Database db;
  db.create_table("A", rel::Schema::of({{"x", ValueType::kInt}}));
  const SpjQuery q = parse_query("SELECT * FROM A WHERE x > 5");
  const Relation qa = qualified_copy(db.table("A"), q.from[0]);
  const std::vector<const Relation*> samples = {&qa};
  const PlannedQuery p = plan(q, {qa.schema()}, {0}, &samples);
  EXPECT_EQ(p.join_order.size(), 1u);  // no crash on empty input
}

TEST(PlannerSampling, NullEntriesUseHeuristics) {
  const SpjQuery q = parse_query("SELECT * FROM A WHERE x = 1");
  const std::vector<rel::Schema> schemas = {
      rel::Schema::of({{"A.x", ValueType::kInt}})};
  const std::vector<const Relation*> samples = {nullptr};
  const PlannedQuery p = plan(q, schemas, {100}, &samples);
  EXPECT_EQ(p.table_filters[0].size(), 1u);
}

}  // namespace
}  // namespace cq::qry
