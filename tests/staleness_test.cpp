// Staleness/divergence accounting (the ESR-inspired measure behind the
// paper's epsilon specifications) and EXPLAIN output.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "cq/continual_query.hpp"
#include "cq/manager.hpp"

namespace cq::core {
namespace {

using common::Duration;
using rel::Value;
using rel::ValueType;

struct Fixture {
  cat::Database db;

  Fixture() {
    db.create_table("Stocks", rel::Schema::of({{"name", ValueType::kString},
                                               {"price", ValueType::kInt}}));
    db.insert("Stocks", {Value("DEC"), Value(150)});
    db.insert("Stocks", {Value("IBM"), Value(80)});
  }

  ContinualQuery make_cq(const std::string& sql) {
    ContinualQuery cq(CqSpec::from_sql("q", sql, triggers::manual()), db);
    (void)cq.execute_initial(db);
    return cq;
  }
};

TEST(Staleness, FreshCqHasNone) {
  Fixture f;
  ContinualQuery cq = f.make_cq("SELECT * FROM Stocks WHERE price > 120");
  const auto s = cq.staleness(f.db);
  EXPECT_EQ(s.pending_changes, 0u);
  EXPECT_EQ(s.relevant_changes, 0u);
  EXPECT_EQ(s.age.ticks(), 0);
}

TEST(Staleness, CountsPendingAndRelevantSeparately) {
  Fixture f;
  ContinualQuery cq = f.make_cq("SELECT * FROM Stocks WHERE price > 120");
  f.db.insert("Stocks", {Value("MAC"), Value(130)});  // relevant
  f.db.insert("Stocks", {Value("SUN"), Value(50)});   // filtered out
  const auto s = cq.staleness(f.db);
  EXPECT_EQ(s.pending_changes, 2u);
  EXPECT_EQ(s.relevant_changes, 1u);
  EXPECT_GT(s.age.ticks(), 0);
}

TEST(Staleness, ModificationCountsBothSides) {
  Fixture f;
  ContinualQuery cq = f.make_cq("SELECT * FROM Stocks WHERE price > 120");
  const auto tid = f.db.table("Stocks").rows().front().tid();
  f.db.modify("Stocks", tid, {Value("DEC"), Value(149)});
  const auto s = cq.staleness(f.db);
  // One modification = one insertion view row + one deletion view row.
  EXPECT_EQ(s.pending_changes, 2u);
  EXPECT_EQ(s.relevant_changes, 2u);  // both sides above the threshold
}

TEST(Staleness, ResetsAfterExecution) {
  Fixture f;
  ContinualQuery cq = f.make_cq("SELECT * FROM Stocks WHERE price > 120");
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  EXPECT_GT(cq.staleness(f.db).pending_changes, 0u);
  (void)cq.execute(f.db);
  EXPECT_EQ(cq.staleness(f.db).pending_changes, 0u);
}

TEST(Explain, MentionsAllTheParts) {
  Fixture f;
  f.db.create_index("Stocks", "by_name", {"name"});
  ContinualQuery cq = f.make_cq("SELECT name FROM Stocks WHERE price > 120");
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  const std::string text = cq.explain(f.db);
  EXPECT_NE(text.find("trigger: manual"), std::string::npos);
  EXPECT_NE(text.find("strategy: DRA"), std::string::npos);
  EXPECT_NE(text.find("ΔStocks: 1 pending"), std::string::npos);
  EXPECT_NE(text.find("by_name"), std::string::npos);
  EXPECT_NE(text.find("staleness"), std::string::npos);
  EXPECT_NE(text.find("price > 120"), std::string::npos);
}

TEST(Explain, JoinQueryShowsPlan) {
  Fixture f;
  f.db.create_table("Notes", rel::Schema::of({{"sym", ValueType::kString},
                                              {"rating", ValueType::kInt}}));
  ContinualQuery cq(
      CqSpec::from_sql("j",
                       "SELECT s.name FROM Stocks s, Notes n "
                       "WHERE s.name = n.sym AND n.rating > 5",
                       triggers::manual()),
      f.db);
  (void)cq.execute_initial(f.db);
  const std::string text = cq.explain(f.db);
  EXPECT_NE(text.find("join order"), std::string::npos);
  EXPECT_NE(text.find("ΔNotes"), std::string::npos);
}

}  // namespace
}  // namespace cq::core
