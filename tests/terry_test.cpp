// The Terry-et-al. continuous-query baseline: correct and incremental on
// append-only workloads, and — by design — unable to handle the general
// updates the DRA supports (the paper's core generality claim, Sections 1-2).
#include "cq/terry.hpp"

#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"

namespace cq::core {
namespace {

using common::Timestamp;
using rel::Relation;
using rel::Value;
using rel::ValueType;

cat::Database feed_db() {
  cat::Database db;
  db.create_table("News", rel::Schema::of({{"topic", ValueType::kString},
                                           {"score", ValueType::kInt}}));
  db.insert("News", {Value("db"), Value(5)});
  db.insert("News", {Value("os"), Value(9)});
  return db;
}

TEST(Terry, AppendOnlyIncrementalMatchesOracle) {
  cat::Database db = feed_db();
  const auto q = qry::parse_query("SELECT * FROM News WHERE score > 4");
  const Relation before = recompute(q, db);
  const Timestamp t0 = db.clock().now();

  db.insert("News", {Value("net"), Value(7)});
  db.insert("News", {Value("pl"), Value(2)});

  const Relation incr = terry_incremental(q, db, t0);
  const DiffResult oracle = propagate(q, db, before);
  EXPECT_TRUE(incr.equal_multiset(oracle.inserted));
  EXPECT_TRUE(oracle.deleted.empty());
}

TEST(Terry, AppendOnlyPredicateDetection) {
  cat::Database db = feed_db();
  const auto q = qry::parse_query("SELECT * FROM News");
  const Timestamp t0 = db.clock().now();
  EXPECT_TRUE(append_only_since(q, db, t0));
  db.insert("News", {Value("x"), Value(1)});
  EXPECT_TRUE(append_only_since(q, db, t0));
  db.erase("News", db.table("News").rows().front().tid());
  EXPECT_FALSE(append_only_since(q, db, t0));
}

TEST(Terry, DeletionsRejected) {
  cat::Database db = feed_db();
  const auto q = qry::parse_query("SELECT * FROM News WHERE score > 4");
  const Timestamp t0 = db.clock().now();
  db.erase("News", db.table("News").rows().front().tid());
  EXPECT_THROW(static_cast<void>(terry_incremental(q, db, t0)), common::Unsupported);
}

TEST(Terry, ModificationsRejected) {
  cat::Database db = feed_db();
  const auto q = qry::parse_query("SELECT * FROM News WHERE score > 4");
  const Timestamp t0 = db.clock().now();
  const auto tid = db.table("News").rows().front().tid();
  db.modify("News", tid, {Value("db"), Value(99)});
  EXPECT_THROW(static_cast<void>(terry_incremental(q, db, t0)), common::Unsupported);
}

TEST(Terry, InsertThenDeleteWithinWindowRejected) {
  // Even though the *net effect* includes a deletion of a pre-existing row.
  cat::Database db = feed_db();
  const auto q = qry::parse_query("SELECT * FROM News");
  const Timestamp t0 = db.clock().now();
  const auto tid = db.insert("News", {Value("tmp"), Value(3)});
  db.erase("News", tid);
  // insert∘delete of the same tid collapses to nothing: still append-only.
  EXPECT_TRUE(append_only_since(q, db, t0));
  EXPECT_TRUE(terry_incremental(q, db, t0).empty());
}

TEST(Terry, JoinQueryAppendOnly) {
  cat::Database db = feed_db();
  db.create_table("Tags", rel::Schema::of({{"topic", ValueType::kString},
                                           {"tag", ValueType::kString}}));
  db.insert("Tags", {Value("db"), Value("storage")});
  const auto q = qry::parse_query(
      "SELECT n.topic, t.tag FROM News n, Tags t WHERE n.topic = t.topic");
  const Relation before = recompute(q, db);
  const Timestamp t0 = db.clock().now();
  db.insert("News", {Value("db"), Value(8)});
  db.insert("Tags", {Value("os"), Value("kernel")});
  const Relation incr = terry_incremental(q, db, t0);
  const DiffResult oracle = propagate(q, db, before);
  EXPECT_TRUE(incr.equal_multiset(oracle.inserted));
}

}  // namespace
}  // namespace cq::core
