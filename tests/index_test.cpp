// Persistent (maintained) indexes: incremental consistency through
// transactions, and the DRA's index-probing join path vs the oracle.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "cq/dra.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"
#include "relation/index.hpp"
#include "testing/random_db.hpp"

namespace cq {
namespace {

using rel::MaintainedIndex;
using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::TupleId;
using rel::Value;
using rel::ValueType;

TEST(MaintainedIndex, BuildAndProbe) {
  Relation r(Schema::of({{"k", ValueType::kInt}, {"v", ValueType::kString}}));
  const TupleId a = r.insert_values({Value(1), Value("a")});
  r.insert_values({Value(2), Value("b")});
  const TupleId c = r.insert_values({Value(1), Value("c")});

  MaintainedIndex index({0});
  index.build(r);
  EXPECT_EQ(index.entries(), 3u);
  EXPECT_EQ(index.distinct_keys(), 2u);
  const auto& hits = index.probe({Value(1)});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_TRUE((hits[0] == a && hits[1] == c) || (hits[0] == c && hits[1] == a));
  EXPECT_TRUE(index.probe({Value(99)}).empty());
}

TEST(MaintainedIndex, IncrementalMaintenance) {
  MaintainedIndex index({0});
  const Tuple row1({Value(5), Value("x")}, TupleId(1));
  const Tuple row2({Value(5), Value("y")}, TupleId(2));
  index.on_insert(row1);
  index.on_insert(row2);
  EXPECT_EQ(index.probe({Value(5)}).size(), 2u);

  index.on_erase(row1);
  ASSERT_EQ(index.probe({Value(5)}).size(), 1u);
  EXPECT_EQ(index.probe({Value(5)})[0], TupleId(2));

  const Tuple row2_new({Value(7), Value("y")}, TupleId(2));
  index.on_update(row2, row2_new);
  EXPECT_TRUE(index.probe({Value(5)}).empty());
  EXPECT_EQ(index.probe({Value(7)}).size(), 1u);
  EXPECT_EQ(index.entries(), 1u);
}

TEST(MaintainedIndex, CompositeKey) {
  MaintainedIndex index({1, 0});
  index.on_insert(Tuple({Value(1), Value("a")}, TupleId(1)));
  // Key order follows the index's column order: (col1, col0).
  EXPECT_EQ(index.probe({Value("a"), Value(1)}).size(), 1u);
  EXPECT_TRUE(index.probe({Value(1), Value("a")}).empty());
}

struct DbFixture {
  cat::Database db;
  DbFixture() {
    db.create_table("T", Schema::of({{"k", ValueType::kInt}, {"grp", ValueType::kInt}}));
    db.create_index("T", "by_grp", {"grp"});
  }

  /// Index contents must always equal a scan-built index.
  void check_consistent() const {
    const auto* index = db.index_on("T", {1});
    ASSERT_NE(index, nullptr);
    std::size_t scanned = 0;
    for (const auto& row : db.table("T").rows()) {
      const auto& hits = index->probe({row.at(1)});
      bool found = false;
      for (auto tid : hits) found = found || tid == row.tid();
      EXPECT_TRUE(found) << "row " << row.to_string() << " missing from index";
      ++scanned;
    }
    EXPECT_EQ(index->entries(), scanned);
  }
};

TEST(DatabaseIndex, MaintainedThroughTransactions) {
  DbFixture f;
  auto txn = f.db.begin();
  const TupleId a = txn.insert("T", {Value(1), Value(10)});
  const TupleId b = txn.insert("T", {Value(2), Value(20)});
  txn.commit();
  f.check_consistent();

  f.db.modify("T", a, {Value(1), Value(20)});
  f.check_consistent();

  f.db.erase("T", b);
  f.check_consistent();

  // Aborted transactions leave the index untouched.
  auto doomed = f.db.begin();
  doomed.insert("T", {Value(9), Value(90)});
  doomed.abort();
  f.check_consistent();
}

TEST(DatabaseIndex, FailedCommitDoesNotCorruptIndex) {
  DbFixture f;
  const TupleId a = f.db.insert("T", {Value(1), Value(10)});
  auto txn = f.db.begin();
  txn.erase("T", a);
  txn.erase("T", a);  // double delete -> validation failure
  EXPECT_THROW(txn.commit(), common::NotFound);
  f.check_consistent();
  EXPECT_EQ(f.db.table("T").size(), 1u);
}

TEST(DatabaseIndex, CreationValidation) {
  DbFixture f;
  EXPECT_THROW(f.db.create_index("T", "by_grp", {"k"}), common::InvalidArgument);
  EXPECT_THROW(f.db.create_index("T", "x", {}), common::InvalidArgument);
  EXPECT_THROW(f.db.create_index("T", "x", {"nope"}), common::NotFound);
  EXPECT_THROW(f.db.create_index("Nope", "x", {"k"}), common::NotFound);
  EXPECT_EQ(f.db.index_names("T"), std::vector<std::string>{"by_grp"});
  EXPECT_EQ(f.db.index_on("T", {0}), nullptr);
  EXPECT_NE(f.db.index_on("T", {1}), nullptr);
}

TEST(DatabaseIndex, BuildsFromExistingRows) {
  cat::Database db;
  db.create_table("T", Schema::of({{"k", ValueType::kInt}}));
  for (int i = 0; i < 20; ++i) db.insert("T", {Value(i % 4)});
  db.create_index("T", "by_k", {"k"});
  const auto* index = db.index_on("T", {0});
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->entries(), 20u);
  EXPECT_EQ(index->probe({Value(2)}).size(), 5u);
}

/// The DRA with index probing must agree with Propagate, and must actually
/// use the index (stats.index_probes > 0, no base scan counted).
TEST(DraWithIndex, JoinTermsProbeInsteadOfScan) {
  common::Rng rng(404);
  cat::Database db;
  testing::make_stock_table(db, "S", 300, rng);
  testing::make_stock_table(db, "T", 300, rng);
  db.create_index("T", "by_cat", {"category"});
  db.create_index("S", "by_cat", {"category"});

  const qry::SpjQuery query = testing::random_join_query({"S", "T"}, rng);
  const Relation before = core::recompute(query, db);
  const common::Timestamp t0 = db.clock().now();
  testing::random_updates(db, "S", 40,
                          {.modify_fraction = 0.3, .delete_fraction = 0.2}, rng);

  common::Metrics with_index_metrics;
  core::DraStats stats;
  const core::DiffResult via_index = core::dra_differential(
      query, db, t0, &with_index_metrics, {.use_persistent_indexes = true}, &stats);
  const core::DiffResult via_oracle = core::propagate(query, db, before);
  EXPECT_TRUE(via_index.equivalent(via_oracle));
  EXPECT_GT(stats.index_probes, 0u);
  // The unchanged side was never scanned or copied.
  EXPECT_EQ(with_index_metrics.get(common::metric::kBaseRowsScanned), 0);

  // And disabling the option falls back to scan-based terms, same answer.
  common::Metrics no_index_metrics;
  const core::DiffResult via_scan = core::dra_differential(
      query, db, t0, &no_index_metrics, {.use_persistent_indexes = false});
  EXPECT_TRUE(via_scan.equivalent(via_oracle));
  EXPECT_GT(no_index_metrics.get(common::metric::kBaseRowsScanned), 0);
}

/// Randomized sweep: index path == scan path == oracle across update mixes
/// and both join widths, with every table both indexed and updated.
class IndexedDraSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexedDraSweep, AgreesWithOracle) {
  common::Rng rng(GetParam());
  cat::Database db;
  testing::make_stock_table(db, "A", 120, rng);
  testing::make_stock_table(db, "B", 120, rng);
  testing::make_stock_table(db, "C", 120, rng);
  for (const char* t : {"A", "B", "C"}) db.create_index(t, "by_cat", {"category"});

  const bool three_way = GetParam() % 2 == 0;
  const qry::SpjQuery query =
      three_way ? testing::random_join_query({"A", "B", "C"}, rng)
                : testing::random_join_query({"A", "B"}, rng);

  const Relation before = core::recompute(query, db);
  const common::Timestamp t0 = db.clock().now();
  const testing::UpdateMix mix{.modify_fraction = 0.35, .delete_fraction = 0.25};
  testing::random_updates(db, "A", 30, mix, rng);
  testing::random_updates(db, "B", 20, mix, rng);
  if (three_way) testing::random_updates(db, "C", 10, mix, rng);

  const core::DiffResult via_index =
      core::dra_differential(query, db, t0, nullptr, {.use_persistent_indexes = true});
  const core::DiffResult via_scan =
      core::dra_differential(query, db, t0, nullptr, {.use_persistent_indexes = false});
  const core::DiffResult via_oracle = core::propagate(query, db, before);
  EXPECT_TRUE(via_index.equivalent(via_oracle)) << "seed " << GetParam();
  EXPECT_TRUE(via_scan.equivalent(via_oracle)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Randomized, IndexedDraSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19, 20));

}  // namespace
}  // namespace cq
