// Multi-writer commit pipeline tests: transactions over disjoint catalog
// shards commit — validate, apply, stamp, append, dispatch — fully
// concurrently with NO engine lock; transactions whose commit closures
// overlap serialize on their shared shards. These are the tests the
// `tsan` and `lockcheck` presets exist for: a single-core schedule passes
// trivially, the sanitizer and the runtime lock-order checker are what
// turn a latent race or a shard-lock inversion into a failure.
//
// The acceptance contract pinned here:
//  * every committed row lands, none torn, none double-applied;
//  * timestamp allocation totally orders commits (global sequence ==
//    commits, per-shard delta logs are ts-monotone);
//  * each CQ's notification stream is serializable — sequence numbers
//    gapless from 1, timestamps strictly increasing — because eager
//    dispatch runs while the committer still holds the closure's shards;
//  * a sink committing mid-dispatch reuses the held shards (reentrant
//    ShardLockSet) instead of deadlocking, provided it only climbs the
//    shard order;
//  * the DRA script oracle delivers the same digest at 1 and 4 lanes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "cq/manager.hpp"
#include "cq/trigger.hpp"
#include "testing/dra_script.hpp"

namespace cq {
namespace {

using common::Timestamp;
using rel::Value;
using rel::ValueType;

rel::Schema two_col_schema() {
  return rel::Schema::of({{"id", ValueType::kInt}, {"s", ValueType::kString}});
}

core::CqSpec watch_spec(const std::string& cq_name, const std::string& table) {
  return core::CqSpec::from_sql(cq_name, "SELECT * FROM " + table + " WHERE id >= 0",
                                core::triggers::on_change(), nullptr,
                                core::DeliveryMode::kDifferential);
}

/// Sink asserting the serializability contract as the stream arrives: the
/// dispatching commit holds this CQ's shard locks, so deliveries are
/// mutually excluded and must carry gapless sequences and strictly
/// increasing timestamps. Violations are counted, not asserted, so the
/// sink stays usable off the main thread.
class OrderCheckingSink final : public core::ResultSink {
 public:
  void on_result(const core::Notification& note) override {
    if (note.sequence == 0) return;  // initial execution, before the writers
    if (note.sequence != last_sequence_ + 1) ++gaps_;
    if (!(last_ts_ < note.at)) ++ts_regressions_;
    last_sequence_ = note.sequence;
    last_ts_ = note.at;
    rows_ += note.delta.inserted.size();
    ++deliveries_;
  }

  [[nodiscard]] std::uint64_t gaps() const noexcept { return gaps_; }
  [[nodiscard]] std::uint64_t ts_regressions() const noexcept { return ts_regressions_; }
  [[nodiscard]] std::uint64_t deliveries() const noexcept { return deliveries_; }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }

 private:
  std::uint64_t last_sequence_ = 0;
  Timestamp last_ts_ = Timestamp::min();
  std::uint64_t gaps_ = 0;
  std::uint64_t ts_regressions_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t rows_ = 0;
};

TEST(ShardedCommit, DisjointWritersCommitAndNotifyConcurrently) {
  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 50;

  cat::Database db;
  core::CqManager manager(db);
  std::vector<std::string> tables;
  std::vector<std::shared_ptr<OrderCheckingSink>> sinks;
  for (int w = 0; w < kWriters; ++w) {
    const std::string name = "T" + std::to_string(w);
    db.create_table(name, two_col_schema());
    tables.push_back(name);
  }
  manager.set_eager(true);
  for (int w = 0; w < kWriters; ++w) {
    auto sink = std::make_shared<OrderCheckingSink>();
    manager.install(watch_spec("watch_" + tables[static_cast<std::size_t>(w)],
                               tables[static_cast<std::size_t>(w)]),
                    sink);
    sinks.push_back(std::move(sink));
  }

  // Each writer owns one table; their commit closures share a shard only
  // when the table names happen to hash together, and even then the
  // pipeline must stay correct — just less concurrent.
  const std::uint64_t seq_before = db.commit_sequence();
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &db, &tables] {
      const std::string& table = tables[static_cast<std::size_t>(w)];
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = db.begin();
        txn.insert(table, {Value(static_cast<std::int64_t>(i)), Value(std::string("r"))});
        if (i % 3 == 0) {
          txn.insert(table,
                     {Value(static_cast<std::int64_t>(1000 + i)), Value(std::string("x"))});
        }
        txn.commit();
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(db.commit_sequence() - seq_before,
            static_cast<std::uint64_t>(kWriters) * kTxnsPerWriter);
  std::uint64_t shard_total = 0;
  for (std::size_t s = 0; s < cat::Database::kNumShards; ++s) {
    shard_total += db.shard_commits(s);
  }
  EXPECT_EQ(shard_total, static_cast<std::uint64_t>(kWriters) * kTxnsPerWriter);

  for (int w = 0; w < kWriters; ++w) {
    const auto& table = tables[static_cast<std::size_t>(w)];
    const std::size_t extra = (kTxnsPerWriter + 2) / 3;  // i % 3 == 0 inserts
    const std::size_t expected_rows = kTxnsPerWriter + extra;
    EXPECT_EQ(db.table(table).size(), expected_rows) << table;
    // Per-relation delta log is timestamp-monotone: appends happen under
    // the shard lock, stamped inside it.
    Timestamp prev = Timestamp::min();
    for (const auto& row : db.delta(table).rows()) {
      EXPECT_LE(prev, row.ts) << table;
      prev = row.ts;
    }
    const auto& sink = *sinks[static_cast<std::size_t>(w)];
    EXPECT_EQ(sink.gaps(), 0u) << table;
    EXPECT_EQ(sink.ts_regressions(), 0u) << table;
    EXPECT_EQ(sink.deliveries(), static_cast<std::uint64_t>(kTxnsPerWriter)) << table;
    EXPECT_EQ(sink.rows(), expected_rows) << table;
  }
}

TEST(ShardedCommit, OverlappingClosuresSerializeOnTheSharedShard) {
  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 40;

  cat::Database db;
  db.create_table("HOT", two_col_schema());
  std::vector<std::string> privates;
  for (int w = 0; w < kWriters; ++w) {
    const std::string name = "P" + std::to_string(w);
    db.create_table(name, two_col_schema());
    privates.push_back(name);
  }
  core::CqManager manager(db);
  manager.set_eager(true);
  auto hot_sink = std::make_shared<OrderCheckingSink>();
  manager.install(watch_spec("watch_hot", "HOT"), hot_sink);

  // Every transaction writes HOT plus the writer's private table: all
  // closures meet on HOT's shard, so the dispatches to watch_hot are
  // totally ordered no matter how the writers interleave.
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &db, &privates] {
      const std::string& mine = privates[static_cast<std::size_t>(w)];
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = db.begin();
        txn.insert("HOT",
                   {Value(static_cast<std::int64_t>(w * 1000 + i)), Value(std::string("h"))});
        txn.insert(mine, {Value(static_cast<std::int64_t>(i)), Value(std::string("p"))});
        txn.commit();
      }
    });
  }
  for (auto& t : writers) t.join();

  const auto total = static_cast<std::uint64_t>(kWriters) * kTxnsPerWriter;
  EXPECT_EQ(db.table("HOT").size(), total);
  for (const auto& name : privates) {
    EXPECT_EQ(db.table(name).size(), static_cast<std::uint64_t>(kTxnsPerWriter));
  }
  EXPECT_EQ(hot_sink->gaps(), 0u);
  EXPECT_EQ(hot_sink->ts_regressions(), 0u);
  EXPECT_EQ(hot_sink->deliveries(), total);
  EXPECT_EQ(hot_sink->rows(), total);
  const core::CqStats s = manager.cq_stats().at("watch_hot");
  EXPECT_EQ(s.trigger_checks, s.fired + s.suppressed);
  EXPECT_EQ(s.fired, total);
}

TEST(ShardedCommit, AbortedWritersLeaveCommittedStateIntact) {
  // Writers interleave commits with aborts; aborted transactions return
  // their reserved tids when still on top, and committed state must be
  // exactly the committed inserts regardless of the interleaving.
  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 60;

  cat::Database db;
  db.create_table("T", two_col_schema());

  std::atomic<std::uint64_t> committed_rows{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &db, &committed_rows] {
      common::Rng rng(static_cast<std::uint64_t>(w) + 1);
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = db.begin();
        txn.insert("T", {Value(static_cast<std::int64_t>(w * 10000 + i)),
                         Value(std::string("v"))});
        if (rng.index(3) == 0) {
          txn.abort();
        } else {
          txn.commit();
          committed_rows.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(db.table("T").size(), committed_rows.load());
  EXPECT_EQ(db.delta("T").size(), committed_rows.load());
  // No two committed rows share a tid (reservation is shard-atomic).
  std::vector<std::uint64_t> tids;
  for (const auto& row : db.delta("T").rows()) tids.push_back(row.tid.raw());
  std::sort(tids.begin(), tids.end());
  EXPECT_TRUE(std::adjacent_find(tids.begin(), tids.end()) == tids.end());
}

TEST(ShardedCommit, SinkCommitMidDispatchReusesHeldShards) {
  // A result sink that writes back to the database during eager dispatch:
  // the nested commit's ShardLockSet must skip shards the enclosing
  // commit already holds and may add higher ones. Pick two tables whose
  // shard indexes are strictly ordered so the climb is legal.
  std::string low = "A";
  std::string high = "B";
  bool found = false;
  for (char a = 'A'; a <= 'Z' && !found; ++a) {
    for (char b = 'A'; b <= 'Z' && !found; ++b) {
      const std::string na(1, a);
      const std::string nb(1, b);
      if (cat::Database::shard_of(na) < cat::Database::shard_of(nb)) {
        low = na;
        high = nb;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "all single-letter names hash to one shard?";

  cat::Database db;
  db.create_table(low, two_col_schema());
  db.create_table(high, two_col_schema());
  core::CqManager manager(db);
  manager.set_eager(true);

  auto audit_sink = std::make_shared<core::CallbackSink>([&db, high](
                                                             const core::Notification& n) {
    if (n.sequence == 0) return;
    // Runs on the committing thread, inside its shard lock set.
    auto txn = db.begin();
    txn.insert(high, {Value(static_cast<std::int64_t>(n.sequence)),
                      Value(std::string("audit"))});
    txn.commit();
  });
  manager.install(watch_spec("watch_low", low), audit_sink);

  constexpr int kCommits = 25;
  for (int i = 0; i < kCommits; ++i) {
    auto txn = db.begin();
    txn.insert(low, {Value(static_cast<std::int64_t>(i)), Value(std::string("r"))});
    txn.commit();
  }

  EXPECT_EQ(db.table(low).size(), static_cast<std::size_t>(kCommits));
  // Every dispatch appended exactly one audit row via the nested commit.
  EXPECT_EQ(db.table(high).size(), static_cast<std::size_t>(kCommits));
}

TEST(ShardedCommit, DraScriptDigestIdenticalAtOneAndFourLanes) {
  // The determinism contract end-to-end: one busy DRA oracle script, the
  // full notification stream digested, sequential vs 4 evaluation lanes.
  common::Rng rng(0xc0117);
  std::vector<std::uint8_t> script;
  for (int attempt = 0; attempt < 32 && script.empty(); ++attempt) {
    std::vector<std::uint8_t> candidate(384);
    for (auto& b : candidate) b = static_cast<std::uint8_t>(rng.index(256));
    const testing::DraScriptReport probe =
        testing::run_dra_oracle_script(candidate.data(), candidate.size());
    if (probe.ok && probe.commits >= 3 && !probe.digest.empty()) {
      script = std::move(candidate);
    }
  }
  ASSERT_FALSE(script.empty()) << "no generated script reached 3 commits";

  const testing::DraScriptReport sequential =
      testing::run_dra_oracle_script(script.data(), script.size());
  ASSERT_TRUE(sequential.ok) << sequential.message;

  testing::DraScriptConfig cfg;
  cfg.eval_threads = 4;
  const testing::DraScriptReport parallel =
      testing::run_dra_oracle_script(script.data(), script.size(), cfg);
  ASSERT_TRUE(parallel.ok) << parallel.message;
  EXPECT_EQ(parallel.digest, sequential.digest);
  EXPECT_EQ(parallel.commits, sequential.commits);
  EXPECT_EQ(parallel.executions, sequential.executions);
}

}  // namespace
}  // namespace cq
