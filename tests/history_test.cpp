// ResultHistory: the CQ result *sequence* (Section 3.1) with random access
// and time travel, validated against independently recorded full results.
#include "cq/history.hpp"

#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "cq/manager.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"
#include "testing/random_db.hpp"

namespace cq {
namespace {

using core::CqHandle;
using core::CqSpec;
using core::DeliveryMode;
using core::ResultHistory;
using rel::Relation;
using rel::Value;

TEST(ResultHistory, RandomAccessMatchesRecordedResults) {
  common::Rng rng(71);
  cat::Database db;
  testing::make_stock_table(db, "S", 80, rng);
  core::CqManager manager(db);

  auto history = std::make_shared<ResultHistory>(/*checkpoint_every=*/4);
  const CqHandle h = manager.install(
      CqSpec::from_sql("hist", "SELECT id, price FROM S WHERE price > 400",
                       core::triggers::manual(), nullptr, DeliveryMode::kDifferential),
      history);

  // Record ground truth independently after every execution.
  std::vector<Relation> truth;
  std::vector<common::Timestamp> times;
  truth.push_back(core::recompute(
      qry::parse_query("SELECT id, price FROM S WHERE price > 400"), db));
  times.push_back(manager.cq(h).last_execution());

  const testing::UpdateMix mix{.modify_fraction = 0.4, .delete_fraction = 0.25};
  for (int round = 0; round < 13; ++round) {
    testing::random_updates(db, "S", 10, mix, rng);
    (void)manager.execute_now(h);
    truth.push_back(core::recompute(
        qry::parse_query("SELECT id, price FROM S WHERE price > 400"), db));
    times.push_back(manager.cq(h).last_execution());
  }

  ASSERT_EQ(history->size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_TRUE(history->at(i).equal_multiset(truth[i])) << "execution " << i;
    EXPECT_EQ(history->timestamp(i), times[i]);
  }
}

TEST(ResultHistory, AsOfTimeTravel) {
  common::Rng rng(72);
  cat::Database db;
  testing::make_stock_table(db, "S", 40, rng);
  core::CqManager manager(db);
  auto history = std::make_shared<ResultHistory>();
  const CqHandle h = manager.install(
      CqSpec::from_sql("h", "SELECT id FROM S WHERE price > 500",
                       core::triggers::manual()),
      history);

  std::vector<common::Timestamp> times{manager.cq(h).last_execution()};
  for (int round = 0; round < 5; ++round) {
    testing::random_updates(db, "S", 8, {}, rng);
    (void)manager.execute_now(h);
    times.push_back(manager.cq(h).last_execution());
  }

  // Exactly at an execution instant -> that execution's result.
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_TRUE(history->as_of(times[i]).equal_multiset(history->at(i)));
  }
  // Between executions -> the earlier one.
  EXPECT_TRUE(history->as_of(times[2] + common::Duration(0))
                  .equal_multiset(history->at(2)));
  // Far in the future -> the latest.
  EXPECT_TRUE(history->as_of(common::Timestamp::max())
                  .equal_multiset(history->at(times.size() - 1)));
  // Before history began -> NotFound.
  EXPECT_THROW(static_cast<void>(history->as_of(common::Timestamp::min())),
               common::NotFound);
}

TEST(ResultHistory, AggregateSequencesStoredDirectly) {
  cat::Database db;
  db.create_table("T", rel::Schema::of({{"x", rel::ValueType::kInt}}));
  db.insert("T", {Value(5)});
  core::CqManager manager(db);
  auto history = std::make_shared<ResultHistory>();
  const CqHandle h = manager.install(
      CqSpec::from_sql("agg", "SELECT SUM(x) FROM T", core::triggers::manual()),
      history);
  db.insert("T", {Value(7)});
  (void)manager.execute_now(h);
  db.insert("T", {Value(1)});
  (void)manager.execute_now(h);

  ASSERT_EQ(history->size(), 3u);
  EXPECT_EQ(history->at(0).row(0).at(0), Value(5));
  EXPECT_EQ(history->at(1).row(0).at(0), Value(12));
  EXPECT_EQ(history->at(2).row(0).at(0), Value(13));
}

TEST(ResultHistory, CheckpointsBoundStorage) {
  common::Rng rng(73);
  cat::Database db;
  testing::make_stock_table(db, "S", 200, rng);
  core::CqManager manager(db);
  auto dense = std::make_shared<ResultHistory>(/*checkpoint_every=*/1);
  auto sparse = std::make_shared<ResultHistory>(/*checkpoint_every=*/64);
  manager.install(CqSpec::from_sql("d", "SELECT id FROM S WHERE price > 100",
                                   core::triggers::on_change()),
                  dense);
  manager.install(CqSpec::from_sql("s", "SELECT id FROM S WHERE price > 100",
                                   core::triggers::on_change()),
                  sparse);
  for (int round = 0; round < 10; ++round) {
    testing::random_updates(db, "S", 5, {}, rng);
    manager.poll();
  }
  ASSERT_EQ(dense->size(), sparse->size());
  EXPECT_GT(dense->stored_rows(), sparse->stored_rows() * 3);
  // Both reconstruct identically.
  const std::size_t last = dense->size() - 1;
  EXPECT_TRUE(dense->at(last).equal_multiset(sparse->at(last)));
}

TEST(ResultHistory, OutOfRangeThrows) {
  ResultHistory history;
  EXPECT_TRUE(history.empty());
  EXPECT_THROW(static_cast<void>(history.at(0)), common::NotFound);
  EXPECT_THROW(static_cast<void>(history.timestamp(0)), common::NotFound);
  EXPECT_THROW(static_cast<void>(history.delta(0)), common::NotFound);
}

}  // namespace
}  // namespace cq
