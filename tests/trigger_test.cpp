#include "cq/trigger.hpp"

#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "cq/stop.hpp"

namespace cq::core {
namespace {

using common::Duration;
using common::Timestamp;
using rel::Value;
using rel::ValueType;

struct Fixture {
  cat::Database db;
  std::vector<std::string> relations{"Accounts"};

  Fixture() {
    db.create_table("Accounts", rel::Schema::of({{"owner", ValueType::kString},
                                                 {"amount", ValueType::kInt}}));
  }

  [[nodiscard]] TriggerContext ctx(Timestamp last, std::uint64_t executions = 1) const {
    return TriggerContext{db, relations, last, db.clock().now(), executions};
  }
};

TEST(PeriodicTrigger, FiresAfterInterval) {
  Fixture f;
  const auto t = triggers::periodic(Duration(10));
  auto& clock = dynamic_cast<common::VirtualClock&>(f.db.clock());
  const Timestamp last = clock.now();
  EXPECT_FALSE(t->should_fire(f.ctx(last)));
  clock.advance(Duration(9));
  EXPECT_FALSE(t->should_fire(f.ctx(last)));
  clock.advance(Duration(1));
  EXPECT_TRUE(t->should_fire(f.ctx(last)));
}

TEST(PeriodicTrigger, RejectsNonPositiveInterval) {
  EXPECT_THROW(triggers::periodic(Duration(0)), common::InvalidArgument);
}

TEST(AtTimesTrigger, FiresOncePerScheduledInstant) {
  Fixture f;
  auto& clock = dynamic_cast<common::VirtualClock&>(f.db.clock());
  const auto t = triggers::at_times({Timestamp(100), Timestamp(200)});
  EXPECT_FALSE(t->should_fire(f.ctx(Timestamp(0))));
  clock.advance_to(Timestamp(150));
  EXPECT_TRUE(t->should_fire(f.ctx(Timestamp(0))));
  // After executing at 150, the 100 instant is consumed.
  EXPECT_FALSE(t->should_fire(f.ctx(Timestamp(150))));
  clock.advance_to(Timestamp(250));
  EXPECT_TRUE(t->should_fire(f.ctx(Timestamp(150))));
  EXPECT_FALSE(t->should_fire(f.ctx(Timestamp(250))));
}

TEST(OnChangeTrigger, FiresOnlyWhenDeltaExists) {
  Fixture f;
  const auto t = triggers::on_change();
  const Timestamp last = f.db.clock().now();
  EXPECT_FALSE(t->should_fire(f.ctx(last)));
  f.db.insert("Accounts", {Value("ann"), Value(100)});
  EXPECT_TRUE(t->should_fire(f.ctx(last)));
  // After re-execution the window is empty again.
  EXPECT_FALSE(t->should_fire(f.ctx(f.db.clock().now())));
}

TEST(ChangeCountTrigger, CountsNetTuples) {
  Fixture f;
  const auto t = triggers::change_count(3);
  const Timestamp last = f.db.clock().now();
  f.db.insert("Accounts", {Value("a"), Value(1)});
  f.db.insert("Accounts", {Value("b"), Value(2)});
  EXPECT_FALSE(t->should_fire(f.ctx(last)));
  f.db.insert("Accounts", {Value("c"), Value(3)});
  EXPECT_TRUE(t->should_fire(f.ctx(last)));
}

TEST(ChangeCountTrigger, NetEffectNotRawCount) {
  Fixture f;
  const auto t = triggers::change_count(2);
  const Timestamp last = f.db.clock().now();
  // Insert then delete the same tuple: net zero relevant changes.
  const auto tid = f.db.insert("Accounts", {Value("a"), Value(1)});
  f.db.erase("Accounts", tid);
  EXPECT_FALSE(t->should_fire(f.ctx(last)));
}

TEST(AggregateDriftTrigger, CheckingAccountExample) {
  // Section 5.3: fire when |Deposits - Withdrawals| >= 0.5M, evaluated
  // against the differential relation only.
  Fixture f;
  const auto t = triggers::aggregate_drift("Accounts", "amount", 500000.0);
  const Timestamp last = f.db.clock().now();

  const auto acc = f.db.insert("Accounts", {Value("corp"), Value(100000)});
  EXPECT_FALSE(t->should_fire(f.ctx(last)));  // +100k < 500k

  f.db.modify("Accounts", acc, {Value("corp"), Value(700000)});
  // Net drift since `last`: +700000 (insert of 700k after composition).
  EXPECT_TRUE(t->should_fire(f.ctx(last)));
}

TEST(AggregateDriftTrigger, DepositsMinusWithdrawalsCancel) {
  Fixture f;
  const auto t = triggers::aggregate_drift("Accounts", "amount", 1000.0);
  const auto a = f.db.insert("Accounts", {Value("x"), Value(5000)});
  const auto b = f.db.insert("Accounts", {Value("y"), Value(5000)});
  const Timestamp last = f.db.clock().now();
  // +600 to one account, -600 from another: |drift| = 0.
  f.db.modify("Accounts", a, {Value("x"), Value(5600)});
  f.db.modify("Accounts", b, {Value("y"), Value(4400)});
  EXPECT_FALSE(t->should_fire(f.ctx(last)));
  // One more deposit of 1200 pushes |drift| over epsilon.
  f.db.modify("Accounts", a, {Value("x"), Value(6800)});
  EXPECT_TRUE(t->should_fire(f.ctx(last)));
}

TEST(AggregateDriftTrigger, AbsoluteValueOfWithdrawals) {
  Fixture f;
  const auto t = triggers::aggregate_drift("Accounts", "amount", 900.0);
  const auto a = f.db.insert("Accounts", {Value("x"), Value(5000)});
  const Timestamp last = f.db.clock().now();
  f.db.modify("Accounts", a, {Value("x"), Value(4000)});  // withdrawal of 1000
  EXPECT_TRUE(t->should_fire(f.ctx(last)));
}

TEST(AggregateDriftTrigger, Validation) {
  EXPECT_THROW(triggers::aggregate_drift("T", "c", 0.0), common::InvalidArgument);
  EXPECT_THROW(triggers::aggregate_drift("T", "c", -1.0), common::InvalidArgument);
}

TEST(CompositeTrigger, AllOfAndAnyOf) {
  Fixture f;
  auto& clock = dynamic_cast<common::VirtualClock&>(f.db.clock());
  const Timestamp last = clock.now();
  const auto periodic = triggers::periodic(Duration(100));
  const auto change = triggers::on_change();

  const auto both = triggers::all_of({periodic, change});
  const auto either = triggers::any_of({periodic, change});

  f.db.insert("Accounts", {Value("a"), Value(1)});
  EXPECT_FALSE(both->should_fire(f.ctx(last)));   // interval not elapsed
  EXPECT_TRUE(either->should_fire(f.ctx(last)));  // change suffices
  clock.advance(Duration(200));
  EXPECT_TRUE(both->should_fire(f.ctx(last)));
}

TEST(CompositeTrigger, Validation) {
  EXPECT_THROW(triggers::all_of({}), common::InvalidArgument);
  EXPECT_THROW(triggers::any_of({nullptr}), common::InvalidArgument);
}

TEST(ManualTrigger, NeverFires) {
  Fixture f;
  f.db.insert("Accounts", {Value("a"), Value(1)});
  EXPECT_FALSE(triggers::manual()->should_fire(f.ctx(Timestamp::min())));
}

TEST(Describe, AllTriggersDescribeThemselves) {
  EXPECT_FALSE(triggers::periodic(Duration(5))->describe().empty());
  EXPECT_FALSE(triggers::on_change()->describe().empty());
  EXPECT_FALSE(triggers::change_count(2)->describe().empty());
  EXPECT_FALSE(triggers::aggregate_drift("T", "c", 1.0)->describe().empty());
  EXPECT_FALSE(triggers::manual()->describe().empty());
  EXPECT_FALSE(
      triggers::any_of({triggers::on_change(), triggers::manual()})->describe().empty());
}

TEST(StopConditions, Never) {
  Fixture f;
  EXPECT_FALSE(stop::never()->satisfied(f.ctx(Timestamp::min())));
}

TEST(StopConditions, AtTime) {
  Fixture f;
  auto& clock = dynamic_cast<common::VirtualClock&>(f.db.clock());
  const auto s = stop::at_time(Timestamp(100));
  EXPECT_FALSE(s->satisfied(f.ctx(Timestamp::min())));
  clock.advance_to(Timestamp(100));
  EXPECT_TRUE(s->satisfied(f.ctx(Timestamp::min())));
}

TEST(StopConditions, AfterExecutions) {
  Fixture f;
  const auto s = stop::after_executions(3);
  EXPECT_FALSE(s->satisfied(f.ctx(Timestamp::min(), 2)));
  EXPECT_TRUE(s->satisfied(f.ctx(Timestamp::min(), 3)));
  EXPECT_THROW(stop::after_executions(0), common::InvalidArgument);
}

TEST(StopConditions, Predicate) {
  Fixture f;
  const auto s = stop::when(
      [](const TriggerContext& c) { return c.executions > 5; }, "more than 5 runs");
  EXPECT_FALSE(s->satisfied(f.ctx(Timestamp::min(), 5)));
  EXPECT_TRUE(s->satisfied(f.ctx(Timestamp::min(), 6)));
  EXPECT_EQ(s->describe(), "more than 5 runs");
  EXPECT_THROW(stop::when(nullptr, "x"), common::InvalidArgument);
}

}  // namespace
}  // namespace cq::core
