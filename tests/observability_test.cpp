// Tests for the observability layer: histograms (percentile math), spans
// and the trace ring, the JSON exporter (well-formedness checked by a
// small recursive-descent validator), and the per-CQ statistics registry.
#include "common/observability.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "catalog/database.hpp"
#include "cq/manager.hpp"
#include "query/parser.hpp"

namespace cq {
namespace {

namespace obs = common::obs;
using rel::Value;
using rel::ValueType;

// --------------------------------------------------- tiny JSON validator --

/// Strict-enough JSON syntax checker (objects, arrays, strings, numbers,
/// true/false/null). Returns true iff `text` is exactly one JSON value.
class JsonValidator {
 public:
  static bool valid(const std::string& text) {
    JsonValidator v(text);
    return v.value() && (v.skip_ws(), v.pos_ == text.size());
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      const auto c = static_cast<unsigned char>(text_[pos_]);
      if (c < 0x20) return false;  // raw control character: invalid JSON
      ++pos_;
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      skip_ws();
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }

  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonValidatorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonValidator::valid(R"({"a":[1,2.5,-3e2],"b":{"c":"x\"y"},"d":null})"));
  EXPECT_TRUE(JsonValidator::valid("[]"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a":1,})"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a")"));
  EXPECT_FALSE(JsonValidator::valid("{} extra"));
  EXPECT_FALSE(JsonValidator::valid("\"raw\ncontrol\""));
}

// -------------------------------------------------------------- Histogram --

TEST(Histogram, EmptyIsAllZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryPercentile) {
  obs::Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  // Interpolation clamps to [min, max], so one sample is exact everywhere.
  EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p95(), 42.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 42.0);
}

TEST(Histogram, PercentilesAreMonotoneAndBounded) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  const double p50 = h.p50();
  const double p95 = h.p95();
  const double p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  EXPECT_GE(p50, static_cast<double>(h.min()));
  // Log2 buckets bound the error to the winning bucket's width: the true
  // p50 of 1..1000 is 500, inside bucket [256, 511].
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_GE(p99, 512.0);
}

TEST(Histogram, ZeroAndHugeSamplesLand) {
  obs::Histogram h;
  h.record(0);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

TEST(Histogram, ResetClears) {
  obs::Histogram h;
  h.record(7);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

// ------------------------------------------------------- spans and traces --

/// Enables span collection for one test and restores a clean global state.
struct TracingScope {
  TracingScope() {
    obs::global().traces().clear();
    obs::set_enabled(true);
  }
  ~TracingScope() {
    obs::set_enabled(false);
    obs::global().traces().clear();
  }
};

TEST(Span, RecordsNestedSpansWithDepthAndDuration) {
  TracingScope scope;
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
    }
  }
  const auto events = obs::global().traces().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].dur_ns, events[1].dur_ns);
}

TEST(Span, DisabledRecordsNothing) {
  obs::global().traces().clear();
  obs::set_enabled(false);
  {
    obs::Span span("invisible");
  }
  EXPECT_EQ(obs::global().traces().size(), 0u);
}

TEST(Span, FeedsLatencyHistogram) {
  TracingScope scope;
  obs::Histogram h;
  {
    obs::Span span("timed", &h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Span, CloseIsIdempotent) {
  TracingScope scope;
  obs::Span span("once");
  span.close();
  span.close();
  EXPECT_EQ(obs::global().traces().size(), 1u);
}

TEST(TraceCollector, RingOverwritesOldest) {
  obs::TraceCollector ring(4);
  for (int i = 0; i < 6; ++i) {
    ring.record("e" + std::to_string(i), static_cast<std::uint64_t>(i), 1, 0);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e2");  // oldest survivor
  EXPECT_EQ(events.back().name, "e5");   // newest
}

TEST(TraceCollector, ChromeJsonIsValidAndComplete) {
  obs::TraceCollector ring(8);
  ring.record("a \"quoted\" span", 1500, 2500, 0);
  ring.record("plain", 5000, 1000, 1);
  const std::string json = ring.to_chrome_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  // chrome://tracing requires name/ph/ts/dur; ph "X" = complete event.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"a \\\"quoted\\\" span\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(Clock, NowNsIsMonotone) {
  const auto a = obs::now_ns();
  const auto b = obs::now_ns();
  EXPECT_LE(a, b);
}

// ------------------------------------------- trace context and retention --

TEST(TraceCollector, EventsCarryLaneAndTraceId) {
  obs::TraceCollector ring(8);
  ring.record("e", 1000, 10, 0, /*tid=*/3, /*trace_id=*/77);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, 3u);
  EXPECT_EQ(events[0].trace_id, 77u);
}

TEST(TraceCollector, ChromeJsonEmitsLaneMetadataTracks) {
  obs::TraceCollector ring(8);
  ring.record("on-lane-0", 1000, 10, 0, 0, 0);
  ring.record("on-lane-3", 2000, 10, 0, 3, 7);
  const std::string json = ring.to_chrome_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  // Perfetto derives track names from "M" metadata events: one
  // process_name plus a thread_name per lane (max observed tid + 1).
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  std::size_t lanes = 0;
  for (std::size_t at = json.find("thread_name"); at != std::string::npos;
       at = json.find("thread_name", at + 1)) {
    ++lanes;
  }
  EXPECT_GE(lanes, 4u);
  // The X events keep the real per-lane tid and the owning trace id.
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":7"), std::string::npos);
}

TEST(TraceCollector, RetainsSlowestTracesSortedAndTrimmed) {
  obs::TraceCollector ring(64);
  ring.set_slow_capacity(2);
  const auto run = [&ring](std::uint64_t id, std::uint64_t dur_ns) {
    ring.begin_trace(id);
    ring.record("phase", id * 100, dur_ns / 2, 1, 0, id);
    ring.end_trace(id, id * 100, dur_ns, "t" + std::to_string(id));
  };
  run(1, 5000);
  run(2, 9000);
  run(3, 1000);  // never ranks: both retained slots already hold slower traces
  run(4, 7000);
  const auto slow = ring.slowest();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].trace_id, 2u);
  EXPECT_EQ(slow[1].trace_id, 4u);
  EXPECT_EQ(slow[0].label, "t2");
  EXPECT_EQ(slow[0].dur_ns, 9000u);
  ASSERT_EQ(slow[0].events.size(), 1u);
  EXPECT_EQ(slow[0].events[0].name, "phase");
  EXPECT_EQ(ring.slow_capacity(), 2u);
}

TEST(TraceCollector, TraceIdFilterNarrowsToOneCommit) {
  obs::TraceCollector ring(64);
  ring.set_slow_capacity(1);
  ring.begin_trace(5);
  ring.record("slow-phase", 100, 400, 1, 0, 5);
  ring.end_trace(5, 100, 1000, "slow");
  ring.record("other", 5000, 10, 0, 0, 6);

  // Retained capture first: only trace 5's events, not trace 6's.
  const std::string five = ring.to_chrome_json(5);
  EXPECT_TRUE(JsonValidator::valid(five)) << five;
  EXPECT_NE(five.find("slow-phase"), std::string::npos);
  EXPECT_EQ(five.find("\"other\""), std::string::npos);

  // Trace 6 was never retained: the filter falls back to the ring.
  const std::string six = ring.to_chrome_json(6);
  EXPECT_TRUE(JsonValidator::valid(six)) << six;
  EXPECT_NE(six.find("\"other\""), std::string::npos);
  EXPECT_EQ(six.find("slow-phase"), std::string::npos);
}

TEST(SpanContext, ContextScopeStampsSpansAndRestores) {
  TracingScope scope;
  {
    obs::ContextScope ctx(obs::SpanContext{42, 0});
    obs::Span inside("inside");
  }
  {
    obs::Span outside("outside");
  }
  const auto events = obs::global().traces().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "inside");
  EXPECT_EQ(events[0].trace_id, 42u);
  EXPECT_EQ(events[1].name, "outside");
  EXPECT_EQ(events[1].trace_id, 0u);  // scope exit restored the null context
}

TEST(CommitTrace, CommitAllocatesTraceIdAndRetainsCapture) {
  TracingScope scope;
  const std::uint64_t commits_before =
      obs::global().histogram(obs::hist::kCommitToNotifyUs).count();

  cat::Database db;
  db.create_table("T", rel::Schema::of({{"id", ValueType::kInt}}));
  db.insert("T", {Value(std::int64_t{1})});

  const auto slow = obs::global().traces().slowest();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_GT(slow[0].trace_id, 0u);
  EXPECT_EQ(slow[0].label, "T");  // the touched table
  EXPECT_GT(slow[0].dur_ns, 0u);

  // The root "commit" span landed in the ring carrying the trace id.
  bool saw_commit = false;
  for (const auto& e : obs::global().traces().snapshot()) {
    saw_commit = saw_commit || (e.name == "commit" && e.trace_id == slow[0].trace_id);
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_GT(obs::global().histogram(obs::hist::kCommitToNotifyUs).count(),
            commits_before);

  // A second commit gets a fresh, larger trace id.
  db.insert("T", {Value(std::int64_t{2})});
  const auto slow2 = obs::global().traces().slowest();
  ASSERT_EQ(slow2.size(), 2u);
  EXPECT_NE(slow2[0].trace_id, slow2[1].trace_id);
}

TEST(ExportProfileJson, WellFormedAndListsSections) {
  TracingScope scope;
  cat::Database db;
  db.create_table("T", rel::Schema::of({{"id", ValueType::kInt}}));
  db.insert("T", {Value(std::int64_t{1})});
  const std::string json = obs::export_profile_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"lock_profiling\""), std::string::npos);
  EXPECT_NE(json.find("\"lock_contention\""), std::string::npos);
  EXPECT_NE(json.find("\"lanes\""), std::string::npos);
  EXPECT_NE(json.find("\"slowest_commits\""), std::string::npos);
  EXPECT_NE(json.find("\"commit_to_notify_us\""), std::string::npos);
}

// ----------------------------------------------------------------- JSON ---

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("k\"ey", std::string("line\nbreak\ttab\\slash\x01"));
  w.end_object();
  EXPECT_TRUE(JsonValidator::valid(w.str())) << w.str();
}

TEST(JsonWriter, NestedStructures) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("list").begin_array();
  w.value(std::int64_t{1});
  w.value(2.5);
  w.value(true);
  w.value("x");
  w.begin_object();
  w.kv("inner", std::uint64_t{7});
  w.end_object();
  w.end_array();
  w.kv("tail", false);
  w.end_object();
  EXPECT_TRUE(JsonValidator::valid(w.str())) << w.str();
  EXPECT_EQ(w.str(), R"({"list":[1,2.5,true,"x",{"inner":7}],"tail":false})");
}

TEST(ExportJson, DocumentIsWellFormedAndHasAllParts) {
  common::Metrics m;
  m.add(common::metric::kRowsScanned, 10);
  m.add("custom_counter", 3);
  std::map<std::string, obs::Histogram> hists;
  hists["lat_us"].record(5);
  hists["lat_us"].record(9);
  const std::vector<obs::Section> sections = {
      {"extra", [](obs::JsonWriter& w) {
         w.begin_object();
         w.kv("nested", std::int64_t{1});
         w.end_object();
       }}};
  const std::string json = obs::export_json(m, hists, sections);
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_scanned\":10"), std::string::npos);
  EXPECT_NE(json.find("\"custom_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"extra\":{\"nested\":1}"), std::string::npos);
}

// ------------------------------------------------------- metric interning --

TEST(MetricIds, NamesRoundTrip) {
  using namespace common;
  for (std::size_t i = 0; i < metric::kIdCount; ++i) {
    const auto id = static_cast<metric::Id>(i);
    EXPECT_EQ(metric::from_name(metric::name(id)), id) << metric::name(id);
  }
  EXPECT_EQ(metric::from_name("no_such_metric"), metric::kIdCount);
}

TEST(MetricIds, StringAndIdPathsAgree) {
  common::Metrics m;
  m.add(common::metric::kBytesSent, 5);
  m.add("bytes_sent", 2);  // slow path resolves to the same counter
  EXPECT_EQ(m.get(common::metric::kBytesSent), 7);
  EXPECT_EQ(m.get("bytes_sent"), 7);
}

TEST(Metrics, ToStringIsDeterministicAndSorted) {
  common::Metrics a;
  common::Metrics b;
  a.add("zeta", 1);
  a.add(common::metric::kGcRuns, 2);
  b.add(common::metric::kGcRuns, 2);
  b.add("zeta", 1);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_LT(a.to_string().find("gc_runs"), a.to_string().find("zeta"));
}

// ------------------------------------------------------ per-CQ statistics --

struct CqFixture {
  cat::Database db;
  core::CqManager manager{db};
  std::shared_ptr<core::CollectingSink> sink = std::make_shared<core::CollectingSink>();

  CqFixture() {
    db.create_table("Stocks", rel::Schema::of({{"name", ValueType::kString},
                                               {"price", ValueType::kInt}}));
    db.insert("Stocks", {Value("DEC"), Value(150)});
    db.insert("Stocks", {Value("IBM"), Value(80)});
  }

  core::CqHandle install(const std::string& name, core::TriggerPtr trigger) {
    return manager.install(
        core::CqSpec::from_sql(name, "SELECT * FROM Stocks WHERE price > 120",
                               std::move(trigger)),
        sink);
  }
};

TEST(CqStatsRegistry, InstallPollRemoveLifecycle) {
  CqFixture f;
  const core::CqHandle h = f.install("watch", core::triggers::on_change());
  {
    const core::CqStats& s = f.manager.stats(h);
    EXPECT_EQ(s.name, "watch");
    EXPECT_EQ(s.executions, 1u);  // the initial execution
    EXPECT_EQ(s.trigger_checks, 0u);
    EXPECT_EQ(s.rows_delivered, 1u);  // DEC
    EXPECT_FALSE(s.finished);
  }

  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();
  {
    const core::CqStats& s = f.manager.stats(h);
    EXPECT_EQ(s.executions, 2u);
    EXPECT_EQ(s.trigger_checks, 1u);
    EXPECT_EQ(s.fired, 1u);
    EXPECT_EQ(s.suppressed, 0u);
    EXPECT_EQ(s.delta_rows_consumed, 1u);
    EXPECT_EQ(s.rows_delivered, 2u);  // initial row + the delta row
  }

  f.manager.poll();  // nothing pending: checked but suppressed
  EXPECT_EQ(f.manager.stats(h).trigger_checks, 2u);
  EXPECT_EQ(f.manager.stats(h).suppressed, 1u);
  EXPECT_EQ(f.manager.stats(h).executions, 2u);

  // Stats survive removal, flagged finished, keyed by name.
  f.manager.remove(h);
  const auto& all = f.manager.cq_stats();
  ASSERT_EQ(all.count("watch"), 1u);
  EXPECT_TRUE(all.at("watch").finished);
  EXPECT_EQ(all.at("watch").executions, 2u);
}

TEST(CqStatsRegistry, ExecutionTimeAccumulates) {
  CqFixture f;
  const core::CqHandle h = f.install("t", core::triggers::on_change());
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();
  const core::CqStats& s = f.manager.stats(h);
  EXPECT_GE(s.total_exec_ns, s.last_exec_ns);
  EXPECT_GT(s.total_exec_ns, 0u);
}

TEST(CqStatsRegistry, StatsJsonSectionIsValid) {
  CqFixture f;
  f.install("a", core::triggers::on_change());
  f.install("b", core::triggers::manual());
  f.db.insert("Stocks", {Value("MAC"), Value(130)});
  f.manager.poll();
  const std::string json =
      obs::export_json(f.manager.metrics(), obs::global().histogram_snapshot(),
                       {f.manager.stats_section()});
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"cqs\""), std::string::npos);
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"executions\""), std::string::npos);
}

}  // namespace
}  // namespace cq
