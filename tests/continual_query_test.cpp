#include "cq/continual_query.hpp"

#include <gtest/gtest.h>

#include "algebra/aggregate.hpp"
#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"

namespace cq::core {
namespace {

using rel::Relation;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

cat::Database stocks_db() {
  cat::Database db;
  db.create_table("Stocks", rel::Schema::of({{"name", ValueType::kString},
                                             {"price", ValueType::kInt}}));
  auto txn = db.begin();
  txn.insert("Stocks", {Value("DEC"), Value(150)});
  txn.insert("Stocks", {Value("QLI"), Value(145)});
  txn.insert("Stocks", {Value("IBM"), Value(80)});
  txn.commit();
  return db;
}

CqSpec spec_for(const std::string& sql, DeliveryMode mode = DeliveryMode::kDifferential,
                ExecutionStrategy strategy = ExecutionStrategy::kDra) {
  CqSpec spec = CqSpec::from_sql("test-cq", sql, triggers::on_change(), nullptr, mode);
  spec.strategy = strategy;
  return spec;
}

TEST(ContinualQuery, InitialExecutionDeliversCompleteResult) {
  cat::Database db = stocks_db();
  ContinualQuery cq(spec_for("SELECT * FROM Stocks WHERE price > 120"), db);
  const Notification n = cq.execute_initial(db);
  EXPECT_EQ(n.sequence, 0u);
  ASSERT_TRUE(n.complete.has_value());
  EXPECT_EQ(n.complete->size(), 2u);
  EXPECT_TRUE(n.delta.empty());
  EXPECT_EQ(cq.executions(), 1u);
}

TEST(ContinualQuery, DifferentialModeDeliversBothSides) {
  cat::Database db = stocks_db();
  ContinualQuery cq(spec_for("SELECT * FROM Stocks WHERE price > 120"), db);
  (void)cq.execute_initial(db);

  auto txn = db.begin();
  txn.insert("Stocks", {Value("MAC"), Value(130)});  // enters
  txn.commit();
  const auto tids = db.table("Stocks");
  // Drop QLI below the threshold: leaves the result.
  for (const auto& row : tids.rows()) {
    if (row.at(0) == Value("QLI")) {
      db.modify("Stocks", row.tid(), {Value("QLI"), Value(100)});
      break;
    }
  }

  const Notification n = cq.execute(db);
  EXPECT_EQ(n.sequence, 1u);
  EXPECT_EQ(n.delta.inserted.count_value(Tuple({Value("MAC"), Value(130)})), 1u);
  EXPECT_EQ(n.delta.deleted.count_value(Tuple({Value("QLI"), Value(145)})), 1u);
  EXPECT_FALSE(n.complete.has_value());  // differential mode
}

TEST(ContinualQuery, InsertionsOnlyModeSuppressesDeletions) {
  cat::Database db = stocks_db();
  ContinualQuery cq(
      spec_for("SELECT * FROM Stocks WHERE price > 120", DeliveryMode::kInsertionsOnly),
      db);
  (void)cq.execute_initial(db);
  for (const auto& row : db.table("Stocks").rows()) {
    if (row.at(0) == Value("QLI")) {
      db.erase("Stocks", row.tid());
      break;
    }
  }
  db.insert("Stocks", {Value("MAC"), Value(130)});
  const Notification n = cq.execute(db);
  EXPECT_EQ(n.delta.inserted.size(), 1u);
  EXPECT_TRUE(n.delta.deleted.empty());
}

TEST(ContinualQuery, DeletionsOnlyModeSuppressesInsertions) {
  cat::Database db = stocks_db();
  ContinualQuery cq(
      spec_for("SELECT * FROM Stocks WHERE price > 120", DeliveryMode::kDeletionsOnly),
      db);
  (void)cq.execute_initial(db);
  for (const auto& row : db.table("Stocks").rows()) {
    if (row.at(0) == Value("QLI")) {
      db.erase("Stocks", row.tid());
      break;
    }
  }
  db.insert("Stocks", {Value("MAC"), Value(130)});
  const Notification n = cq.execute(db);
  EXPECT_TRUE(n.delta.inserted.empty());
  EXPECT_EQ(n.delta.deleted.size(), 1u);
}

TEST(ContinualQuery, CompleteModeMaintainsFullResult) {
  cat::Database db = stocks_db();
  ContinualQuery cq(
      spec_for("SELECT * FROM Stocks WHERE price > 120", DeliveryMode::kComplete), db);
  (void)cq.execute_initial(db);

  db.insert("Stocks", {Value("MAC"), Value(130)});
  const Notification n = cq.execute(db);
  ASSERT_TRUE(n.complete.has_value());
  // The maintained complete result equals a fresh recompute.
  const Relation fresh =
      recompute(qry::parse_query("SELECT * FROM Stocks WHERE price > 120"), db);
  EXPECT_TRUE(n.complete->equal_multiset(fresh));
}

TEST(ContinualQuery, CompleteModeAcrossManyRounds) {
  cat::Database db = stocks_db();
  ContinualQuery cq(
      spec_for("SELECT * FROM Stocks WHERE price > 120", DeliveryMode::kComplete), db);
  (void)cq.execute_initial(db);
  common::Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    // Random-ish churn.
    db.insert("Stocks",
              {Value("N" + std::to_string(round)),
               Value(rng.uniform_int(50, 250))});
    if (!db.table("Stocks").empty() && rng.chance(0.5)) {
      db.erase("Stocks", db.table("Stocks").rows().front().tid());
    }
    const Notification n = cq.execute(db);
    const Relation fresh =
        recompute(qry::parse_query("SELECT * FROM Stocks WHERE price > 120"), db);
    ASSERT_TRUE(n.complete->equal_multiset(fresh)) << "round " << round;
  }
}

TEST(ContinualQuery, RecomputeStrategyGivesSameDeltas) {
  cat::Database db1 = stocks_db();
  cat::Database db2 = stocks_db();
  ContinualQuery dra_cq(spec_for("SELECT name FROM Stocks WHERE price > 120"), db1);
  ContinualQuery rec_cq(spec_for("SELECT name FROM Stocks WHERE price > 120",
                                 DeliveryMode::kDifferential,
                                 ExecutionStrategy::kRecompute),
                        db2);
  (void)dra_cq.execute_initial(db1);
  (void)rec_cq.execute_initial(db2);

  for (auto* db : {&db1, &db2}) {
    db->insert("Stocks", {Value("MAC"), Value(130)});
    for (const auto& row : db->table("Stocks").rows()) {
      if (row.at(0) == Value("DEC")) {
        db->modify("Stocks", row.tid(), {Value("DEC"), Value(100)});
        break;
      }
    }
  }
  const Notification a = dra_cq.execute(db1);
  const Notification b = rec_cq.execute(db2);
  EXPECT_TRUE(a.delta.equivalent(b.delta));
}

TEST(ContinualQuery, DistinctQueryLiftsDiffs) {
  cat::Database db;
  db.create_table("T", rel::Schema::of({{"grp", ValueType::kInt},
                                        {"val", ValueType::kInt}}));
  auto txn = db.begin();
  txn.insert("T", {Value(1), Value(10)});
  txn.insert("T", {Value(1), Value(20)});
  txn.insert("T", {Value(2), Value(30)});
  txn.commit();

  ContinualQuery cq(spec_for("SELECT DISTINCT grp FROM T"), db);
  const Notification init = cq.execute_initial(db);
  EXPECT_EQ(init.complete->size(), 2u);

  // Adding another grp=1 row changes the multiset but not the distinct set.
  db.insert("T", {Value(1), Value(99)});
  Notification n = cq.execute(db);
  EXPECT_TRUE(n.delta.empty());

  // Deleting one of the three grp=1 rows: still present -> no distinct diff.
  db.erase("T", db.table("T").rows().front().tid());
  n = cq.execute(db);
  EXPECT_TRUE(n.delta.empty());

  // New grp appears.
  db.insert("T", {Value(3), Value(1)});
  n = cq.execute(db);
  EXPECT_EQ(n.delta.inserted.count_value(Tuple({Value(3)})), 1u);
}

TEST(ContinualQuery, AggregateQueryMaintainsSum) {
  cat::Database db;
  db.create_table("Accounts", rel::Schema::of({{"owner", ValueType::kString},
                                               {"amount", ValueType::kInt}}));
  db.insert("Accounts", {Value("a"), Value(100)});
  db.insert("Accounts", {Value("b"), Value(200)});

  ContinualQuery cq(spec_for("SELECT SUM(amount) FROM Accounts"), db);
  const Notification init = cq.execute_initial(db);
  ASSERT_TRUE(init.aggregate.has_value());
  EXPECT_EQ(init.aggregate->row(0).at(0), Value(300));

  db.insert("Accounts", {Value("c"), Value(50)});
  const Notification n = cq.execute(db);
  EXPECT_EQ(n.aggregate->row(0).at(0), Value(350));
  // The delta reports the aggregate-level change: 300 out, 350 in.
  EXPECT_EQ(n.delta.deleted.count_value(Tuple({Value(300)})), 1u);
  EXPECT_EQ(n.delta.inserted.count_value(Tuple({Value(350)})), 1u);
}

TEST(ContinualQuery, GroupedAggregateCqTracksGroups) {
  cat::Database db;
  db.create_table("Sales", rel::Schema::of({{"region", ValueType::kString},
                                            {"amount", ValueType::kInt}}));
  db.insert("Sales", {Value("east"), Value(10)});

  ContinualQuery cq(
      spec_for("SELECT region, SUM(amount) AS total FROM Sales GROUP BY region"), db);
  (void)cq.execute_initial(db);

  db.insert("Sales", {Value("west"), Value(7)});
  const Notification n = cq.execute(db);
  EXPECT_EQ(n.delta.inserted.count_value(Tuple({Value("west"), Value(7)})), 1u);
  EXPECT_EQ(n.aggregate->size(), 2u);
}

TEST(ContinualQuery, UnchangedDatabaseYieldsEmptyDelta) {
  cat::Database db = stocks_db();
  ContinualQuery cq(spec_for("SELECT * FROM Stocks WHERE price > 120"), db);
  (void)cq.execute_initial(db);
  const Notification n = cq.execute(db);
  EXPECT_TRUE(n.delta.empty());
  EXPECT_EQ(n.sequence, 1u);
}

TEST(ContinualQuery, ValidationAtConstruction) {
  cat::Database db = stocks_db();
  CqSpec bad = spec_for("SELECT * FROM Missing");
  EXPECT_THROW(ContinualQuery(bad, db), common::NotFound);
  CqSpec no_trigger = spec_for("SELECT * FROM Stocks");
  no_trigger.trigger = nullptr;
  EXPECT_THROW(ContinualQuery(no_trigger, db), common::InvalidArgument);
}

TEST(ContinualQuery, DoubleInitialThrows) {
  cat::Database db = stocks_db();
  ContinualQuery cq(spec_for("SELECT * FROM Stocks"), db);
  (void)cq.execute_initial(db);
  EXPECT_THROW(static_cast<void>(cq.execute_initial(db)), common::InvalidArgument);
}

TEST(ContinualQuery, ExecuteBeforeInitialRunsInitial) {
  cat::Database db = stocks_db();
  ContinualQuery cq(spec_for("SELECT * FROM Stocks"), db);
  const Notification n = cq.execute(db);
  EXPECT_EQ(n.sequence, 0u);
  EXPECT_TRUE(n.complete.has_value());
}

TEST(ContinualQuery, InvalidatedRecomputeStateReprimesInsteadOfThrowing) {
  // Historical bug: a kRecompute CQ whose saved result was lost (e.g. the
  // suppression window crossed a GC pass) threw InternalError "recompute
  // strategy lost its saved result" from execute(). Invalidation is now
  // explicit and the next execution re-primes with a full recompute.
  cat::Database db = stocks_db();
  ContinualQuery cq(spec_for("SELECT * FROM Stocks WHERE price > 120",
                             DeliveryMode::kDifferential,
                             ExecutionStrategy::kRecompute),
                    db);
  (void)cq.execute_initial(db);

  cq.invalidate_saved_result();
  EXPECT_TRUE(cq.reprime_pending());
  db.insert("Stocks", {Value("MAC"), Value(130)});

  const Notification reprimed = cq.execute(db);  // must not throw
  EXPECT_EQ(reprimed.sequence, 1u);
  EXPECT_TRUE(reprimed.delta.empty());  // no usable baseline => no delta
  ASSERT_TRUE(reprimed.complete.has_value());
  const Relation fresh =
      recompute(qry::parse_query("SELECT * FROM Stocks WHERE price > 120"), db);
  EXPECT_TRUE(reprimed.complete->equal_multiset(fresh));
  EXPECT_FALSE(cq.reprime_pending());

  // Differential operation resumes on the rebuilt baseline.
  db.insert("Stocks", {Value("SGI"), Value(200)});
  const Notification next = cq.execute(db);
  EXPECT_EQ(next.sequence, 2u);
  EXPECT_EQ(next.delta.inserted.count_value(Tuple({Value("SGI"), Value(200)})), 1u);
  EXPECT_TRUE(next.delta.deleted.empty());
}

TEST(ContinualQuery, RestoreAcrossGcTruncationReprimes) {
  // restore() rebuilds the saved result by rolling the current state back
  // through the delta window (last_execution, now]. When GC has truncated
  // part of that window the rollback would be silently wrong — the
  // truncation watermark must force a re-prime instead.
  cat::Database db = stocks_db();
  const common::Timestamp checkpoint = db.clock().now();

  db.insert("Stocks", {Value("MAC"), Value(130)});
  db.insert("Stocks", {Value("SGI"), Value(200)});
  ASSERT_GT(db.garbage_collect(), 0u);  // no zones registered: drops the log
  ASSERT_TRUE(db.delta("Stocks").truncated_through().has_value());

  ContinualQuery cq(spec_for("SELECT * FROM Stocks WHERE price > 120",
                             DeliveryMode::kComplete,
                             ExecutionStrategy::kRecompute),
                    db);
  cq.restore(db, checkpoint, 2);
  EXPECT_TRUE(cq.reprime_pending());
  EXPECT_EQ(cq.executions(), 2u);
  EXPECT_EQ(cq.last_execution(), checkpoint);

  const Notification n = cq.execute(db);
  EXPECT_EQ(n.sequence, 2u);
  ASSERT_TRUE(n.complete.has_value());
  const Relation fresh =
      recompute(qry::parse_query("SELECT * FROM Stocks WHERE price > 120"), db);
  EXPECT_TRUE(n.complete->equal_multiset(fresh));
}

TEST(ContinualQuery, RestoreWithIntactLogStillRollsBack) {
  // The watermark must not over-trigger: a restore whose window is fully
  // covered by the log keeps the exact rolled-back differential behavior.
  cat::Database db = stocks_db();
  ContinualQuery live(spec_for("SELECT * FROM Stocks WHERE price > 120",
                               DeliveryMode::kComplete),
                      db);
  (void)live.execute_initial(db);
  const common::Timestamp checkpoint = live.last_execution();

  db.insert("Stocks", {Value("MAC"), Value(130)});

  ContinualQuery restored(spec_for("SELECT * FROM Stocks WHERE price > 120",
                                   DeliveryMode::kComplete),
                          db);
  restored.restore(db, checkpoint, 1);
  EXPECT_FALSE(restored.reprime_pending());
  const Notification a = live.execute(db);
  const Notification b = restored.execute(db);
  ASSERT_TRUE(a.complete && b.complete);
  EXPECT_TRUE(a.complete->equal_multiset(*b.complete));
  EXPECT_TRUE(a.delta.inserted.equal_multiset(b.delta.inserted));
  EXPECT_TRUE(a.delta.deleted.equal_multiset(b.delta.deleted));
}

}  // namespace
}  // namespace cq::core
