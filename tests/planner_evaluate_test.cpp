#include <gtest/gtest.h>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"
#include "query/planner.hpp"

namespace cq::qry {
namespace {

using rel::Relation;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

cat::Database company_db() {
  cat::Database db;
  db.create_table("Emp", rel::Schema::of({{"name", ValueType::kString},
                                          {"dept", ValueType::kInt},
                                          {"salary", ValueType::kInt}}));
  db.create_table("Dept", rel::Schema::of({{"id", ValueType::kInt},
                                           {"label", ValueType::kString}}));
  auto txn = db.begin();
  txn.insert("Emp", {Value("ann"), Value(1), Value(100)});
  txn.insert("Emp", {Value("bob"), Value(2), Value(200)});
  txn.insert("Emp", {Value("cat"), Value(1), Value(300)});
  txn.insert("Emp", {Value("dan"), Value(3), Value(400)});
  txn.insert("Dept", {Value(1), Value("eng")});
  txn.insert("Dept", {Value(2), Value("ops")});
  txn.commit();
  return db;
}

TEST(Planner, PushesSingleTableConjunctsDown) {
  const SpjQuery q = parse_query(
      "SELECT * FROM Emp e, Dept d WHERE e.dept = d.id AND e.salary > 150 AND "
      "d.label = 'eng'");
  const std::vector<rel::Schema> schemas = {
      qualify(rel::Schema::of({{"name", ValueType::kString},
                               {"dept", ValueType::kInt},
                               {"salary", ValueType::kInt}}),
              q.from[0]),
      qualify(rel::Schema::of({{"id", ValueType::kInt}, {"label", ValueType::kString}}),
              q.from[1])};
  const PlannedQuery plan_result = plan(q, schemas, {100, 10});
  EXPECT_EQ(plan_result.table_filters[0].size(), 1u);  // e.salary > 150
  EXPECT_EQ(plan_result.table_filters[1].size(), 1u);  // d.label = 'eng'
  EXPECT_EQ(plan_result.join_conjuncts.size(), 1u);    // e.dept = d.id
  EXPECT_EQ(plan_result.join_order.size(), 2u);
}

TEST(Planner, JoinOrderPrefersSmallerEstimate) {
  SpjQuery q = parse_query("SELECT * FROM Big b, Small s WHERE b.k = s.k");
  const std::vector<rel::Schema> schemas = {
      qualify(rel::Schema::of({{"k", ValueType::kInt}}), q.from[0]),
      qualify(rel::Schema::of({{"k", ValueType::kInt}}), q.from[1])};
  const PlannedQuery p = plan(q, schemas, {1000000, 3});
  EXPECT_EQ(p.join_order[0], 1u);  // Small first
}

TEST(Evaluate, SingleTableSelection) {
  const cat::Database db = company_db();
  const Relation out =
      evaluate(parse_query("SELECT name FROM Emp WHERE salary > 150"), db);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out.schema().at(0).name, "Emp.name");
}

TEST(Evaluate, JoinWithQualifiedColumns) {
  const cat::Database db = company_db();
  const Relation out = evaluate(
      parse_query("SELECT e.name, d.label FROM Emp e, Dept d WHERE e.dept = d.id"),
      db);
  EXPECT_EQ(out.size(), 3u);  // dan's dept 3 has no match
}

TEST(Evaluate, SelectStarJoinHasCanonicalColumnOrder) {
  const cat::Database db = company_db();
  const Relation out = evaluate(
      parse_query("SELECT * FROM Emp e, Dept d WHERE e.dept = d.id"), db);
  ASSERT_EQ(out.schema().size(), 5u);
  EXPECT_EQ(out.schema().at(0).name, "e.name");
  EXPECT_EQ(out.schema().at(3).name, "d.id");
}

TEST(Evaluate, CrossProductWhenNoJoinPredicate) {
  const cat::Database db = company_db();
  const Relation out = evaluate(parse_query("SELECT * FROM Emp e, Dept d"), db);
  EXPECT_EQ(out.size(), 8u);
}

TEST(Evaluate, SelfJoinWithAliases) {
  const cat::Database db = company_db();
  const Relation out = evaluate(
      parse_query("SELECT a.name, b.name FROM Emp a, Emp b "
                  "WHERE a.dept = b.dept AND a.salary < b.salary"),
      db);
  EXPECT_EQ(out.size(), 1u);  // (ann, cat)
  EXPECT_EQ(out.row(0).at(0), Value("ann"));
}

TEST(Evaluate, Distinct) {
  const cat::Database db = company_db();
  const Relation all = evaluate(parse_query("SELECT dept FROM Emp"), db);
  EXPECT_EQ(all.size(), 4u);
  const Relation unique = evaluate(parse_query("SELECT DISTINCT dept FROM Emp"), db);
  EXPECT_EQ(unique.size(), 3u);
}

TEST(Evaluate, ScalarAggregate) {
  const cat::Database db = company_db();
  const Relation out = evaluate(parse_query("SELECT SUM(salary) FROM Emp"), db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.row(0).at(0), Value(1000));
}

TEST(Evaluate, GroupedAggregate) {
  const cat::Database db = company_db();
  const Relation out = evaluate(
      parse_query("SELECT dept, SUM(salary) AS total FROM Emp GROUP BY dept"), db);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.row(0).at(0), Value(1));
  EXPECT_EQ(out.row(0).at(1), Value(400));
}

TEST(Evaluate, AggregateOverJoin) {
  const cat::Database db = company_db();
  const Relation out = evaluate(
      parse_query("SELECT SUM(e.salary) FROM Emp e, Dept d WHERE e.dept = d.id"), db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.row(0).at(0), Value(600));
}

TEST(Evaluate, UnknownColumnThrows) {
  const cat::Database db = company_db();
  EXPECT_THROW(evaluate(parse_query("SELECT * FROM Emp WHERE bogus > 1"), db),
               common::NotFound);
}

TEST(Evaluate, UnknownTableThrows) {
  const cat::Database db = company_db();
  EXPECT_THROW(evaluate(parse_query("SELECT * FROM Nope"), db), common::NotFound);
}

TEST(Evaluate, InputCountMismatchThrows) {
  const SpjQuery q = parse_query("SELECT * FROM A, B");
  EXPECT_THROW(evaluate_spj_over(q, {}), common::InvalidArgument);
}

TEST(Evaluate, BareColumnResolvesAgainstAlias) {
  const cat::Database db = company_db();
  // "salary" is unambiguous even though the schema is qualified "Emp.salary".
  const Relation out =
      evaluate(parse_query("SELECT salary FROM Emp WHERE name = 'ann'"), db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.row(0).at(0), Value(100));
}

}  // namespace
}  // namespace cq::qry
