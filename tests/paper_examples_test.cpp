// The paper's worked examples, verbatim (experiment E9 in DESIGN.md).
//
// Example 1 (Section 4.1): transaction T over Stocks —
//   Insert (101088, MAC, 117); Modify (120992, DEC, 150)=(...,149);
//   Delete (092394);
// and the resulting differential relation's insertions/deletions views.
//
// Example 2 (Section 4.2): the continual query σ_price>120(Stocks) before
// and after T, the Propagate result, and the DRA's differential result.
//
// Section 5.3: the checking-account epsilon trigger in differential form.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "cq/dra.hpp"
#include "cq/manager.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"

namespace cq {
namespace {

using common::Timestamp;
using core::DiffResult;
using rel::Relation;
using rel::Tuple;
using rel::TupleId;
using rel::Value;
using rel::ValueType;

/// Build the paper's scenario with explicit control over which tuple is
/// which (tids are auto-assigned; we track them by symbol).
struct Scenario {
  cat::Database db;
  TupleId dec;
  TupleId qli;

  Scenario() {
    db.create_table("Stocks", rel::Schema::of({{"name", ValueType::kString},
                                               {"price", ValueType::kInt}}));
    auto txn = db.begin();
    dec = txn.insert("Stocks", {Value("DEC"), Value(150)});
    qli = txn.insert("Stocks", {Value("QLI"), Value(145)});
    txn.insert("Stocks", {Value("IBM"), Value(80)});  // below the predicate
    txn.commit();
  }

  /// The paper's transaction T.
  Timestamp run_transaction_t() {
    auto txn = db.begin();
    txn.insert("Stocks", {Value("MAC"), Value(117)});
    txn.modify("Stocks", dec, {Value("DEC"), Value(149)});
    txn.erase("Stocks", qli);
    return txn.commit();
  }
};

TEST(PaperExample1, DifferentialRelationContents) {
  Scenario s;
  const Timestamp t0 = s.db.clock().now();
  s.run_transaction_t();

  // insertions(ΔStocks) = {(MAC,117), (DEC,149)} — Example 1's table.
  const Relation ins = s.db.delta("Stocks").insertions(t0);
  EXPECT_EQ(ins.size(), 2u);
  EXPECT_EQ(ins.count_value(Tuple({Value("MAC"), Value(117)})), 1u);
  EXPECT_EQ(ins.count_value(Tuple({Value("DEC"), Value(149)})), 1u);

  // deletions(ΔStocks) = {(DEC,150), (QLI,145)}.
  const Relation del = s.db.delta("Stocks").deletions(t0);
  EXPECT_EQ(del.size(), 2u);
  EXPECT_EQ(del.count_value(Tuple({Value("DEC"), Value(150)})), 1u);
  EXPECT_EQ(del.count_value(Tuple({Value("QLI"), Value(145)})), 1u);
}

TEST(PaperExample2, QueryResultsBeforeAndAfter) {
  Scenario s;
  const auto query = qry::parse_query("SELECT * FROM Stocks WHERE price > 120");

  // Q(Stocks) = {(DEC,150), (QLI,145)}.
  const Relation before = core::recompute(query, s.db);
  EXPECT_EQ(before.size(), 2u);
  EXPECT_EQ(before.count_value(Tuple({Value("DEC"), Value(150)})), 1u);
  EXPECT_EQ(before.count_value(Tuple({Value("QLI"), Value(145)})), 1u);

  s.run_transaction_t();

  // Q(Stocks') = {(DEC,149)}.
  const Relation after = core::recompute(query, s.db);
  EXPECT_EQ(after.size(), 1u);
  EXPECT_EQ(after.count_value(Tuple({Value("DEC"), Value(149)})), 1u);
}

TEST(PaperExample2, DraEqualsPropagate) {
  Scenario s;
  const auto query = qry::parse_query("SELECT * FROM Stocks WHERE price > 120");
  const Relation before = core::recompute(query, s.db);
  const Timestamp t0 = s.db.clock().now();
  s.run_transaction_t();

  const DiffResult via_dra = core::dra_differential(query, s.db, t0);
  const DiffResult via_propagate = core::propagate(query, s.db, before);
  EXPECT_TRUE(via_dra.equivalent(via_propagate));

  // ΔQ: (DEC,149) enters, (DEC,150) and (QLI,145) leave. MAC at 117 never
  // satisfies price > 120 and must not appear — the paper's differential
  // predicate F = price_old > 120 ∧ price_new > 120 ∧ ts > t_i captures the
  // DEC modification; the insert/delete sides handle the rest.
  const DiffResult d = via_dra.consolidated();
  EXPECT_EQ(d.inserted.size(), 1u);
  EXPECT_EQ(d.inserted.count_value(Tuple({Value("DEC"), Value(149)})), 1u);
  EXPECT_EQ(d.deleted.size(), 2u);
  EXPECT_EQ(d.deleted.count_value(Tuple({Value("DEC"), Value(150)})), 1u);
  EXPECT_EQ(d.deleted.count_value(Tuple({Value("QLI"), Value(145)})), 1u);
}

TEST(PaperExample2, ModificationClassifiedByTid) {
  Scenario s;
  const auto query = qry::parse_query("SELECT * FROM Stocks WHERE price > 120");
  const Timestamp t0 = s.db.clock().now();
  s.run_transaction_t();
  const core::ClassifiedDiff c =
      core::classify(core::dra_differential(query, s.db, t0).consolidated());
  // DEC stayed in the result with a new price: one modification pair.
  ASSERT_EQ(c.modified.size(), 1u);
  EXPECT_EQ(c.modified[0].first.at(1), Value(150));
  EXPECT_EQ(c.modified[0].second.at(1), Value(149));
  // QLI left outright.
  EXPECT_EQ(c.pure_deletions.size(), 1u);
  EXPECT_TRUE(c.pure_insertions.empty());
}

TEST(PaperExample2, CompleteResultFormula) {
  // Section 4.2: E_{i+1} = E_i − σ(deletions) ∪ σ(insertions).
  Scenario s;
  const auto query = qry::parse_query("SELECT * FROM Stocks WHERE price > 120");
  const Relation before = core::recompute(query, s.db);
  const Timestamp t0 = s.db.clock().now();
  s.run_transaction_t();
  const DiffResult d = core::dra_differential(query, s.db, t0);
  const Relation next = core::apply_diff(before, d.consolidated());
  EXPECT_TRUE(next.equal_multiset(core::recompute(query, s.db)));
}

TEST(PaperSection53, CheckingAccountEpsilonTrigger) {
  // TCQ = |Deposits − Withdrawals| >= 0.5M over ΔCheckingAccounts only;
  // query Q = SELECT SUM(amount) FROM CheckingAccounts.
  cat::Database db;
  db.create_table("CheckingAccounts", rel::Schema::of({{"owner", ValueType::kString},
                                                       {"amount", ValueType::kInt}}));
  // Twenty-five accounts of $5M each: total $125M like the paper's story.
  auto txn = db.begin();
  for (int i = 0; i < 25; ++i) {
    txn.insert("CheckingAccounts",
               {Value("acct" + std::to_string(i)), Value(std::int64_t{5'000'000})});
  }
  txn.commit();

  core::CqManager manager(db);
  auto sink = std::make_shared<core::CollectingSink>();
  core::CqSpec spec = core::CqSpec::from_sql(
      "sum-up", "SELECT SUM(amount) FROM CheckingAccounts",
      core::triggers::aggregate_drift("CheckingAccounts", "amount", 500'000.0));
  manager.install(std::move(spec), sink);
  EXPECT_EQ(sink->notifications()[0].aggregate->row(0).at(0),
            Value(std::int64_t{125'000'000}));

  // $200k of deposits: under epsilon, no new result on poll.
  const auto first = db.table("CheckingAccounts").rows().front().tid();
  db.modify("CheckingAccounts", first,
            {Value("acct-up"), Value(std::int64_t{5'200'000})});
  EXPECT_EQ(manager.poll(), 0u);

  // Another $400k: cumulative drift $600k >= $500k — the query refreshes,
  // differentially.
  const auto second = db.table("CheckingAccounts").rows()[1].tid();
  db.modify("CheckingAccounts", second,
            {Value("acct-up2"), Value(std::int64_t{5'400'000})});
  EXPECT_EQ(manager.poll(), 1u);
  ASSERT_EQ(sink->notifications().size(), 2u);
  EXPECT_EQ(sink->notifications()[1].aggregate->row(0).at(0),
            Value(std::int64_t{125'600'000}));
}

TEST(PaperIntroQ3, EpsilonBandQueryOnStockPrice) {
  // Q3: "show the IBM stock transactions that differ by more than $5 from
  // $75 per share" — a selection CQ over the price band.
  cat::Database db;
  db.create_table("Trades", rel::Schema::of({{"sym", ValueType::kString},
                                             {"price", ValueType::kInt}}));
  core::CqManager manager(db);
  auto sink = std::make_shared<core::CollectingSink>();
  manager.install(
      core::CqSpec::from_sql(
          "q3",
          "SELECT * FROM Trades WHERE sym = 'IBM' AND (price > 80 OR price < 70)",
          core::triggers::on_change()),
      sink);

  auto txn = db.begin();
  txn.insert("Trades", {Value("IBM"), Value(75)});   // inside the band: no match
  txn.insert("Trades", {Value("IBM"), Value(81)});   // matches
  txn.insert("Trades", {Value("DEC"), Value(100)});  // wrong symbol
  txn.insert("Trades", {Value("IBM"), Value(69)});   // matches
  txn.commit();
  manager.poll();

  ASSERT_EQ(sink->notifications().size(), 2u);
  EXPECT_EQ(sink->notifications()[1].delta.inserted.size(), 2u);
}

}  // namespace
}  // namespace cq
