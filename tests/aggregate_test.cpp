#include "algebra/aggregate.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cq::alg {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Relation sales() {
  Relation r(Schema::of({{"region", ValueType::kString},
                         {"amount", ValueType::kInt},
                         {"rate", ValueType::kDouble}}));
  r.insert_values({Value("east"), Value(10), Value(0.5)});
  r.insert_values({Value("east"), Value(20), Value(1.5)});
  r.insert_values({Value("west"), Value(5), Value(2.0)});
  r.insert_values({Value("west"), Value::null(), Value(3.0)});
  return r;
}

TEST(ScalarAggregate, Sum) {
  EXPECT_EQ(scalar_aggregate(sales(), AggKind::kSum, "amount"), Value(35));
  EXPECT_EQ(scalar_aggregate(sales(), AggKind::kSum, "rate"), Value(7.0));
}

TEST(ScalarAggregate, CountStarVsColumn) {
  EXPECT_EQ(scalar_aggregate(sales(), AggKind::kCount, "*"), Value(4));
  // COUNT(amount) skips the NULL.
  EXPECT_EQ(scalar_aggregate(sales(), AggKind::kCount, "amount"), Value(3));
}

TEST(ScalarAggregate, Avg) {
  const Value avg = scalar_aggregate(sales(), AggKind::kAvg, "amount");
  EXPECT_DOUBLE_EQ(avg.as_double(), 35.0 / 3.0);
}

TEST(ScalarAggregate, MinMax) {
  EXPECT_EQ(scalar_aggregate(sales(), AggKind::kMin, "amount"), Value(5));
  EXPECT_EQ(scalar_aggregate(sales(), AggKind::kMax, "amount"), Value(20));
}

TEST(ScalarAggregate, EmptyInput) {
  const Relation empty(sales().schema());
  EXPECT_EQ(scalar_aggregate(empty, AggKind::kCount, "*"), Value(0));
  EXPECT_TRUE(scalar_aggregate(empty, AggKind::kSum, "amount").is_null());
  EXPECT_TRUE(scalar_aggregate(empty, AggKind::kMin, "amount").is_null());
}

TEST(ScalarAggregate, SumRequiresColumn) {
  EXPECT_THROW(scalar_aggregate(sales(), AggKind::kSum, ""), common::InvalidArgument);
}

TEST(GroupAggregate, GroupsAndAggregates) {
  const Relation out = group_aggregate(
      sales(), {"region"},
      {{AggKind::kSum, "amount", "total"}, {AggKind::kCount, "*", "n"}});
  ASSERT_EQ(out.size(), 2u);
  // Deterministic order: east before west.
  EXPECT_EQ(out.row(0).at(0), Value("east"));
  EXPECT_EQ(out.row(0).at(1), Value(30));
  EXPECT_EQ(out.row(0).at(2), Value(2));
  EXPECT_EQ(out.row(1).at(0), Value("west"));
  EXPECT_EQ(out.row(1).at(1), Value(5));
  EXPECT_EQ(out.row(1).at(2), Value(2));
}

TEST(GroupAggregate, OutputSchemaNaming) {
  const Relation out =
      group_aggregate(sales(), {"region"}, {{AggKind::kSum, "amount", ""}});
  EXPECT_EQ(out.schema().at(0).name, "region");
  EXPECT_EQ(out.schema().at(1).name, "SUM(amount)");
  EXPECT_EQ(out.schema().at(1).type, ValueType::kInt);
}

TEST(GroupAggregate, AvgIsDouble) {
  const rel::Schema s =
      aggregate_output_schema(sales().schema(), {}, {{AggKind::kAvg, "amount", "a"}});
  EXPECT_EQ(s.at(0).type, ValueType::kDouble);
}

TEST(GroupAggregate, EmptyInputYieldsNoGroups) {
  const Relation empty(sales().schema());
  EXPECT_TRUE(group_aggregate(empty, {"region"}, {{AggKind::kSum, "amount", "t"}})
                  .empty());
}

TEST(GroupAggregate, NullGroupKeyIsAGroup) {
  Relation r(Schema::of({{"g", ValueType::kString}, {"v", ValueType::kInt}}));
  r.insert_values({Value::null(), Value(1)});
  r.insert_values({Value::null(), Value(2)});
  r.insert_values({Value("a"), Value(3)});
  const Relation out = group_aggregate(r, {"g"}, {{AggKind::kSum, "v", "s"}});
  ASSERT_EQ(out.size(), 2u);
  // NULL sorts first in the total order.
  EXPECT_TRUE(out.row(0).at(0).is_null());
  EXPECT_EQ(out.row(0).at(1), Value(3));
}

TEST(GroupAggregate, MultipleGroupColumns) {
  Relation r(Schema::of({{"a", ValueType::kInt}, {"b", ValueType::kInt},
                         {"v", ValueType::kInt}}));
  r.insert_values({Value(1), Value(1), Value(10)});
  r.insert_values({Value(1), Value(2), Value(20)});
  r.insert_values({Value(1), Value(1), Value(30)});
  const Relation out = group_aggregate(r, {"a", "b"}, {{AggKind::kSum, "v", "s"}});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.row(0).at(2), Value(40));
}

}  // namespace
}  // namespace cq::alg
