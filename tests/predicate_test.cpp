#include "algebra/predicate.hpp"

#include <gtest/gtest.h>

namespace cq::alg {
namespace {

using rel::Schema;
using rel::Value;
using rel::ValueType;

const Schema kLeft = Schema::of({{"a.id", ValueType::kInt}, {"a.grp", ValueType::kInt}});
const Schema kRight = Schema::of({{"b.id", ValueType::kInt}, {"b.grp", ValueType::kInt}});

TEST(SplitConjuncts, FlattensNestedAnds) {
  const auto e = Expr::logical_and(
      Expr::logical_and(Expr::col_cmp("x", CmpOp::kGt, Value(1)),
                        Expr::col_cmp("y", CmpOp::kLt, Value(2))),
      Expr::col_cmp("z", CmpOp::kEq, Value(3)));
  EXPECT_EQ(split_conjuncts(e).size(), 3u);
}

TEST(SplitConjuncts, OrIsOpaque) {
  const auto e = Expr::logical_or(Expr::col_cmp("x", CmpOp::kGt, Value(1)),
                                  Expr::col_cmp("y", CmpOp::kLt, Value(2)));
  EXPECT_EQ(split_conjuncts(e).size(), 1u);
}

TEST(SplitConjuncts, TrueYieldsEmpty) {
  EXPECT_TRUE(split_conjuncts(Expr::always_true()).empty());
  EXPECT_TRUE(split_conjuncts(nullptr).empty());
}

TEST(AnalyzeJoin, ExtractsEquiPairs) {
  const auto pred = Expr::cmp(CmpOp::kEq, Expr::col("a.grp"), Expr::col("b.grp"));
  const JoinAnalysis ja = analyze_join(pred, kLeft, kRight);
  ASSERT_EQ(ja.equi_pairs.size(), 1u);
  EXPECT_EQ(ja.equi_pairs[0].first, 1u);   // a.grp
  EXPECT_EQ(ja.equi_pairs[0].second, 1u);  // b.grp
  EXPECT_TRUE(ja.left_only.empty());
  EXPECT_TRUE(ja.residual.empty());
}

TEST(AnalyzeJoin, EquiPairReversedOrder) {
  const auto pred = Expr::cmp(CmpOp::kEq, Expr::col("b.id"), Expr::col("a.id"));
  const JoinAnalysis ja = analyze_join(pred, kLeft, kRight);
  ASSERT_EQ(ja.equi_pairs.size(), 1u);
  EXPECT_EQ(ja.equi_pairs[0].first, 0u);
  EXPECT_EQ(ja.equi_pairs[0].second, 0u);
}

TEST(AnalyzeJoin, ClassifiesSingleSideConjuncts) {
  const auto pred = conjoin({
      Expr::cmp(CmpOp::kEq, Expr::col("a.grp"), Expr::col("b.grp")),
      Expr::col_cmp("a.id", CmpOp::kGt, Value(10)),
      Expr::col_cmp("b.id", CmpOp::kLt, Value(20)),
  });
  const JoinAnalysis ja = analyze_join(pred, kLeft, kRight);
  EXPECT_EQ(ja.equi_pairs.size(), 1u);
  EXPECT_EQ(ja.left_only.size(), 1u);
  EXPECT_EQ(ja.right_only.size(), 1u);
  EXPECT_TRUE(ja.residual.empty());
}

TEST(AnalyzeJoin, NonEquiCrossConjunctIsResidual) {
  const auto pred = Expr::cmp(CmpOp::kLt, Expr::col("a.id"), Expr::col("b.id"));
  const JoinAnalysis ja = analyze_join(pred, kLeft, kRight);
  EXPECT_TRUE(ja.equi_pairs.empty());
  EXPECT_EQ(ja.residual.size(), 1u);
}

TEST(Selectivity, OrderedByRestrictiveness) {
  const auto eq = Expr::col_cmp("x", CmpOp::kEq, Value(1));
  const auto ne = Expr::col_cmp("x", CmpOp::kNe, Value(1));
  EXPECT_LT(estimate_selectivity(eq), estimate_selectivity(ne));
  const auto both = Expr::logical_and(eq, eq);
  EXPECT_LT(estimate_selectivity(both), estimate_selectivity(eq));
  const auto either = Expr::logical_or(eq, eq);
  EXPECT_GT(estimate_selectivity(either), estimate_selectivity(eq));
  EXPECT_DOUBLE_EQ(estimate_selectivity(Expr::always_true()), 1.0);
}

TEST(CostRank, SimpleComparisonsAreCheap) {
  const auto simple = Expr::col_cmp("x", CmpOp::kEq, Value(1));
  const auto arithmetic = Expr::cmp(
      CmpOp::kGt, Expr::arith(ArithOp::kMul, Expr::col("x"), Expr::lit(Value(2))),
      Expr::lit(Value(10)));
  EXPECT_LT(predicate_cost_rank(simple), predicate_cost_rank(arithmetic));
}

}  // namespace
}  // namespace cq::alg
