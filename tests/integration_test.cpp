// End-to-end scenario test: autonomous sources feeding a DIOM mediator over
// the simulated network; several CQs with different triggers, modes, and
// strategies running against the mirror; garbage collection interleaved.
// Invariants checked every round:
//   * mirror == source contents,
//   * every complete-mode CQ result == fresh recompute,
//   * DRA-strategy and recompute-strategy CQs deliver equivalent deltas.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "cq/propagate.hpp"
#include "diom/file_source.hpp"
#include "diom/mediator.hpp"
#include "diom/network.hpp"
#include "query/parser.hpp"
#include "testing/random_db.hpp"
#include "workload/stocks.hpp"

namespace cq {
namespace {

using core::CqHandle;
using core::CqSpec;
using core::DeliveryMode;
using core::ExecutionStrategy;
using rel::Value;
using rel::ValueType;

TEST(Integration, MediatedMultiCqScenario) {
  common::Rng rng(2024);

  // --- server side: a stock exchange database + a file-based source ---
  cat::Database exchange;
  wl::StocksWorkload market(exchange, "Stocks", {.symbols = 300}, rng);
  auto files = std::make_shared<diom::FileSource>(
      "Notes", rel::Schema::of({{"sym", ValueType::kString},
                                {"rating", ValueType::kInt}}));
  files->write_line("SYM000001,4");
  files->write_line("SYM000002,9");

  // --- client side ---
  diom::Network net;
  net.set_default_link({.latency_ms = 2.0, .bandwidth_bytes_per_ms = 5000.0});
  diom::Mediator client("analyst", &net);
  client.attach(std::make_shared<diom::RelationalSource>("Stocks", exchange, "Stocks"));
  client.attach(files);

  auto& manager = client.manager();
  auto cheap_sink = std::make_shared<core::CollectingSink>();
  auto complete_sink = std::make_shared<core::CollectingSink>();
  auto join_sink = std::make_shared<core::CollectingSink>();

  const CqHandle cheap = manager.install(
      CqSpec::from_sql("cheap-stocks", "SELECT symbol, price FROM Stocks WHERE price < 40",
                       core::triggers::on_change()),
      cheap_sink);

  CqSpec complete_spec = CqSpec::from_sql(
      "complete-recompute", "SELECT symbol, price FROM Stocks WHERE price < 40",
      core::triggers::on_change(), nullptr, DeliveryMode::kComplete);
  complete_spec.strategy = ExecutionStrategy::kRecompute;
  const CqHandle complete = manager.install(std::move(complete_spec), complete_sink);

  const CqHandle rated = manager.install(
      CqSpec::from_sql("rated-stocks",
                       "SELECT s.symbol, n.rating FROM Stocks s, Notes n "
                       "WHERE s.symbol = n.sym AND n.rating > 5",
                       core::triggers::change_count(5), nullptr,
                       DeliveryMode::kComplete),
      join_sink);

  const auto cheap_query = qry::parse_query(
      "SELECT symbol, price FROM Stocks WHERE price < 40");
  const auto rated_query = qry::parse_query(
      "SELECT s.symbol, n.rating FROM Stocks s, Notes n "
      "WHERE s.symbol = n.sym AND n.rating > 5");

  std::size_t line_counter = 2;
  for (int round = 0; round < 12; ++round) {
    // Market activity + occasional analyst notes.
    market.step(/*trades=*/40, /*listings=*/3, /*delistings=*/2);
    if (round % 3 == 0) {
      files->write_line(wl::StocksWorkload::symbol_name(rng.index(300)) + "," +
                        std::to_string(rng.uniform_int(0, 10)));
      ++line_counter;
    }

    client.sync();
    manager.poll();
    if (round % 4 == 3) manager.collect_garbage();

    // Invariant 1: the mirror tracks the sources exactly.
    ASSERT_TRUE(client.database().table("Stocks").equal_multiset(
        exchange.table("Stocks")))
        << "round " << round;
    ASSERT_TRUE(client.database().table("Notes").equal_multiset(files->snapshot()))
        << "round " << round;

    // Invariant 2: complete-mode CQs match fresh recomputes over the mirror.
    if (!complete_sink->notifications().empty()) {
      const auto& last = complete_sink->notifications().back();
      ASSERT_TRUE(last.complete->equal_multiset(
          core::recompute(cheap_query, client.database())))
          << "round " << round;
    }
    if (!join_sink->notifications().empty()) {
      const auto& last = join_sink->notifications().back();
      ASSERT_TRUE(last.complete->equal_multiset(
          core::recompute(rated_query, client.database())))
          << "round " << round;
    }

    // Invariant 3: DRA- and recompute-strategy CQs over the same query have
    // delivered the same cumulative history length.
    ASSERT_EQ(cheap_sink->notifications().size(),
              complete_sink->notifications().size())
        << "round " << round;
    if (cheap_sink->notifications().size() > 1) {
      const auto& a = cheap_sink->notifications().back();
      const auto& b = complete_sink->notifications().back();
      ASSERT_TRUE(a.delta.equivalent(b.delta)) << "round " << round;
    }
  }

  // The join CQ (change_count trigger) must have fired at least once.
  EXPECT_GT(join_sink->notifications().size(), 1u);
  EXPECT_TRUE(manager.contains(cheap));
  EXPECT_TRUE(manager.contains(complete));
  EXPECT_TRUE(manager.contains(rated));
  EXPECT_GT(net.total_bytes(), 0u);
}

TEST(Integration, StopConditionEndsSequenceAndFreesZone) {
  common::Rng rng(7);
  cat::Database db;
  testing::make_stock_table(db, "S", 50, rng);
  core::CqManager manager(db);
  auto sink = std::make_shared<core::CollectingSink>();
  manager.install(
      CqSpec::from_sql("bounded", "SELECT * FROM S WHERE price > 500",
                       core::triggers::on_change(), core::stop::after_executions(3)),
      sink);

  for (int i = 0; i < 6; ++i) {
    testing::random_updates(db, "S", 5, {}, rng);
    manager.poll();
  }
  // Initial + 2 more before Stop (satisfied at executions >= 3).
  EXPECT_EQ(sink->notifications().size(), 3u);
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_EQ(db.zones().active_count(), 0u);
  // With no CQs left, everything is collectable.
  manager.collect_garbage();
  EXPECT_TRUE(db.delta("S").empty());
}

TEST(Integration, EagerManagerDeliversPerCommit) {
  common::Rng rng(9);
  cat::Database db;
  testing::make_stock_table(db, "S", 30, rng);
  core::CqManager manager(db);
  manager.set_eager(true);
  auto sink = std::make_shared<core::CollectingSink>();
  manager.install(CqSpec::from_sql("eager", "SELECT * FROM S WHERE price >= 0",
                                   core::triggers::on_change()),
                  sink);
  for (int i = 0; i < 5; ++i) {
    db.insert("S", {Value(1000 + i), Value("tech"), Value(i), Value(1)});
  }
  // One notification per commit, plus the initial one.
  ASSERT_EQ(sink->notifications().size(), 6u);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_EQ(sink->notifications()[i].delta.inserted.size(), 1u);
  }
}

}  // namespace
}  // namespace cq
