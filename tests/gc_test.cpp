// Garbage collection of differential relations (Section 5.4): safety — GC
// never removes rows a registered CQ still needs — and effectiveness —
// delta size stays bounded when every CQ keeps up.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "cq/manager.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"
#include "testing/random_db.hpp"

namespace cq {
namespace {

using core::CqHandle;
using core::CqSpec;
using core::DeliveryMode;
using core::Notification;

/// Safety property: interleave updates, executions of staggered CQs, and
/// aggressive GC after every step; every CQ's complete result must stay
/// identical to a from-scratch recompute on a GC-free shadow database.
TEST(GarbageCollection, NeverLosesNeededDeltas) {
  common::Rng rng(11);
  cat::Database db;
  testing::make_stock_table(db, "S", 150, rng);
  core::CqManager manager(db);

  // Three CQs with different cadences (poll every 1 / 2 / 5 rounds).
  struct Entry {
    CqHandle handle;
    std::shared_ptr<core::CollectingSink> sink;
    int cadence;
  };
  std::vector<Entry> cqs;
  int cadence = 1;
  for (const char* name : {"fast", "medium", "slow"}) {
    auto sink = std::make_shared<core::CollectingSink>();
    CqSpec spec = CqSpec::from_sql(
        name, "SELECT id, price FROM S WHERE price > 500", core::triggers::manual(),
        nullptr, DeliveryMode::kComplete);
    cqs.push_back({manager.install(std::move(spec), sink), sink, cadence});
    cadence += cadence + 1;  // 1, 3, 7
  }

  const testing::UpdateMix mix{.modify_fraction = 0.4, .delete_fraction = 0.3};
  for (int round = 1; round <= 21; ++round) {
    testing::random_updates(db, "S", 20, mix, rng);
    for (auto& cq : cqs) {
      if (round % cq.cadence == 0) (void)manager.execute_now(cq.handle);
    }
    manager.collect_garbage();  // aggressive: after every round
  }
  // Final execution of everyone, then compare against recompute.
  for (auto& cq : cqs) {
    const Notification last = manager.execute_now(cq.handle);
    const rel::Relation fresh =
        core::recompute(qry::parse_query("SELECT id, price FROM S WHERE price > 500"),
                        db);
    EXPECT_TRUE(last.complete->equal_multiset(fresh)) << "cq cadence " << cq.cadence;
  }
}

TEST(GarbageCollection, BoundedDeltaGrowthWhenCqsKeepUp) {
  common::Rng rng(12);
  cat::Database db;
  testing::make_stock_table(db, "S", 100, rng);
  core::CqManager manager(db);
  const CqHandle h = manager.install(
      CqSpec::from_sql("keeper", "SELECT * FROM S WHERE price > 900",
                       core::triggers::manual()),
      nullptr);

  const testing::UpdateMix mix{};
  std::size_t max_delta_rows = 0;
  for (int round = 0; round < 30; ++round) {
    testing::random_updates(db, "S", 25, mix, rng);
    (void)manager.execute_now(h);
    manager.collect_garbage();
    max_delta_rows = std::max(max_delta_rows, db.delta("S").size());
  }
  // Without GC there would be 30*25 = 750 rows; with it, never more than
  // one round's worth survives an execute+collect cycle.
  EXPECT_LE(max_delta_rows, 25u * 2);
}

TEST(GarbageCollection, UnboundedGrowthWithoutGc) {
  common::Rng rng(13);
  cat::Database db;
  testing::make_stock_table(db, "S", 100, rng);
  const testing::UpdateMix mix{};
  for (int round = 0; round < 10; ++round) testing::random_updates(db, "S", 20, mix, rng);
  // The bulk load itself also logged 100 inserts. A handful of updates can
  // compose away inside one transaction (insert+delete of the same tid), so
  // allow a small shortfall — the point is unbounded growth.
  EXPECT_GE(db.delta("S").size(), 100u + 190u);
  EXPECT_LE(db.delta("S").size(), 100u + 200u);
}

TEST(GarbageCollection, NoCqMeansEverythingCollectable) {
  common::Rng rng(14);
  cat::Database db;
  testing::make_stock_table(db, "S", 50, rng);
  EXPECT_EQ(db.garbage_collect(), 50u);
  EXPECT_TRUE(db.delta("S").empty());
}

TEST(GarbageCollection, SystemZoneIsOldestCq) {
  common::Rng rng(15);
  cat::Database db;
  testing::make_stock_table(db, "S", 10, rng);
  core::CqManager manager(db);

  const CqHandle slow = manager.install(
      CqSpec::from_sql("slow", "SELECT * FROM S", core::triggers::manual()), nullptr);
  testing::random_updates(db, "S", 10, {}, rng);
  const CqHandle fast = manager.install(
      CqSpec::from_sql("fast", "SELECT * FROM S", core::triggers::manual()), nullptr);
  testing::random_updates(db, "S", 10, {}, rng);
  (void)manager.execute_now(fast);

  // `slow` hasn't executed since install; rows after its install survive.
  const std::size_t before = db.delta("S").size();
  manager.collect_garbage();
  EXPECT_EQ(db.delta("S").size(), 20u);
  EXPECT_LT(db.delta("S").size(), before);

  (void)manager.execute_now(slow);
  manager.collect_garbage();
  EXPECT_TRUE(db.delta("S").empty());
}

}  // namespace
}  // namespace cq
