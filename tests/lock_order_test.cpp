// Layer-1 lock-discipline tests: the runtime rank checker, the observed
// lock-order graph and its exports, the lock_order_edge journal hook, the
// held-stack / lockprof behavior across CondVar waits, and the
// schedule-perturbation determinism sweep (layer 3's oracle, run here as
// a deterministic 100-seed ctest case so tier-1 exercises it without
// libFuzzer). The checker compiles out of Release builds; every test that
// needs it skips itself there.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_order.hpp"
#include "common/observability.hpp"
#include "common/rng.hpp"
#include "common/schedule.hpp"
#include "common/sync.hpp"
#include "testing/dra_script.hpp"

// This binary deliberately acquires mutexes in inverted / cyclic order to
// prove the project's own checker catches it — patterns TSan's deadlock
// detector would (rightly, elsewhere) also flag. Worse, glibc's
// std::mutex never calls pthread_mutex_destroy, so the short-lived stack
// mutexes below can alias addresses across scopes and close *false*
// cycles in TSan's graph. Race detection is unaffected; only the
// redundant deadlock layer is off, and only for this test binary.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)
extern "C" const char* __tsan_default_options() { return "detect_deadlocks=0"; }
#endif

namespace cq {
namespace {

namespace lockorder = common::lockorder;
namespace lockprof = common::lockprof;
namespace schedule = common::schedule;
namespace obs = common::obs;
using lockorder::LockRank;

// Site names in this file are zz_-prefixed compile-time literals so they
// (a) aggregate with nothing from the engine and (b) are recognizable as
// test scaffolding in a /lockgraph dump from this binary.

TEST(LockOrder, JsonExportAlwaysLinksAndReportsEnabledFlag) {
  const std::string json = lockorder::to_json();
  const std::string want =
      std::string("\"enabled\":") + (lockorder::compiled_in() ? "true" : "false");
  EXPECT_NE(json.find(want), std::string::npos);
  EXPECT_NE(json.find("\"sites\":["), std::string::npos);
  EXPECT_NE(json.find("\"edges\":["), std::string::npos);
}

void acquire_in_inverted_rank_order() {
  common::Mutex outer{"zz_ldt_outer", LockRank::kLeaf};
  common::Mutex inner{"zz_ldt_inner", LockRank::kEventLog};
  common::LockGuard hold(outer);
  common::LockGuard bad(inner);
}

void relock_held_mutex() {
  common::Mutex mu{"zz_ldt_self", LockRank::kLeaf};
  mu.lock();
  mu.lock();  // would hang forever without the checker
}

TEST(LockOrderDeathTest, RankInversionDiesNamingBothSites) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  // kLeaf (90) held, then blocking on kEventLog (70): monotone-rank
  // violation. The report must name the acquiring site, its rank, and the
  // held site — that line is the acceptance contract for the death path.
  EXPECT_DEATH(acquire_in_inverted_rank_order(),
               "acquiring site \"zz_ldt_inner\" \\(rank 70\\) while holding "
               "site \"zz_ldt_outer\"");
}

TEST(LockOrderDeathTest, SelfDeadlockDiesInsteadOfHanging) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  EXPECT_DEATH(relock_held_mutex(), "self-deadlock");
}

TEST(LockOrder, CountingModeReportsInversionWithoutAborting) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  const std::uint64_t before = lockorder::violations();
  lockorder::set_abort_on_violation(false);
  {
    common::Mutex outer{"zz_count_outer", LockRank::kLeaf};
    common::Mutex inner{"zz_count_inner", LockRank::kEventLog};
    common::LockGuard hold(outer);
    common::LockGuard bad(inner);  // counted, not fatal
  }
  lockorder::set_abort_on_violation(true);
  EXPECT_GT(lockorder::violations(), before);
  EXPECT_EQ(lockorder::held_depth(), 0u);  // stack balanced despite the report
}

TEST(LockOrder, CohortAdmitsAscendingOrderKeysAtEqualRank) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  // The shard-lock shape: same site name, same rank, order keys 1..3.
  // Ascending acquisition of several cohort members is the sanctioned
  // pattern (Transaction::commit takes its closure's shards this way),
  // and a higher plain rank may still nest inside the whole cohort.
  const std::uint64_t before = lockorder::violations();
  common::Mutex a{"zz_cohort", LockRank::kCommitShard};
  common::Mutex b{"zz_cohort", LockRank::kCommitShard};
  common::Mutex c{"zz_cohort", LockRank::kCommitShard};
  a.set_order_key(1);
  b.set_order_key(2);
  c.set_order_key(3);
  common::Mutex leaf{"zz_cohort_leaf", LockRank::kLeaf};
  {
    common::LockGuard la(a);
    common::LockGuard lb(b);
    common::LockGuard lc(c);
    common::LockGuard ll(leaf);
  }
  EXPECT_EQ(lockorder::violations(), before);
  EXPECT_EQ(lockorder::held_depth(), 0u);
}

TEST(LockOrder, CohortRejectsDescendingOrEqualOrderKeys) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  // Descending cohort acquisition is exactly the shard-lock deadlock the
  // discipline exists to prevent; an equal (reused) key is just as bad.
  const std::uint64_t before = lockorder::violations();
  lockorder::set_abort_on_violation(false);
  {
    common::Mutex lo{"zz_cohort_down", LockRank::kCommitShard};
    common::Mutex hi{"zz_cohort_down", LockRank::kCommitShard};
    lo.set_order_key(1);
    hi.set_order_key(2);
    common::LockGuard lh(hi);
    common::LockGuard ll(lo);  // key 1 after key 2: counted violation
  }
  const std::uint64_t after_descending = lockorder::violations();
  {
    common::Mutex x{"zz_cohort_dup", LockRank::kCommitShard};
    common::Mutex y{"zz_cohort_dup", LockRank::kCommitShard};
    x.set_order_key(7);
    y.set_order_key(7);
    common::LockGuard lx(x);
    common::LockGuard ly(y);  // equal keys: counted violation
  }
  lockorder::set_abort_on_violation(true);
  EXPECT_GT(after_descending, before);
  EXPECT_GT(lockorder::violations(), after_descending);
  EXPECT_EQ(lockorder::held_depth(), 0u);
}

TEST(LockOrder, EqualRankWithoutOrderKeysStaysAViolation) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  // No cohort membership (order key 0 on either side) keeps the original
  // strict rule: equal-rank blocking acquisition is never legal.
  const std::uint64_t before = lockorder::violations();
  lockorder::set_abort_on_violation(false);
  {
    common::Mutex a{"zz_norank_key", LockRank::kCommitShard};
    common::Mutex b{"zz_norank_key", LockRank::kCommitShard};
    b.set_order_key(2);  // one keyed side is not enough
    common::LockGuard la(a);
    common::LockGuard lb(b);
  }
  lockorder::set_abort_on_violation(true);
  EXPECT_GT(lockorder::violations(), before);
  EXPECT_EQ(lockorder::held_depth(), 0u);
}

TEST(LockOrder, UnrankedSitesFeedTheGraphButSkipRankChecks) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  // Two unranked named mutexes in *either* nesting order: no violation
  // (rank 0 is exempt from monotonicity) — but both edges land in the
  // graph, which is exactly what the cycle detector needs. Acquiring A->B
  // and then B->A closes a cycle, which IS a violation.
  const std::uint64_t before = lockorder::violations();
  common::Mutex a{"zz_cyc_a"};
  common::Mutex b{"zz_cyc_b"};
  {
    common::LockGuard la(a);
    common::LockGuard lb(b);
  }
  EXPECT_EQ(lockorder::violations(), before);  // forward edge: fine
  lockorder::set_abort_on_violation(false);
  {
    common::LockGuard lb(b);
    common::LockGuard la(a);  // closes the zz_cyc_a <-> zz_cyc_b cycle
  }
  lockorder::set_abort_on_violation(true);
  EXPECT_GT(lockorder::violations(), before);
}

TEST(LockOrder, GraphRecordsEdgesAndExportsJsonAndDot) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  common::Mutex outer{"zz_graph_outer", LockRank::kRefreshHooks};
  common::Mutex inner{"zz_graph_inner", LockRank::kLeaf};
  {
    common::LockGuard lo(outer);
    common::LockGuard li(inner);
  }
  // Find both site ids and assert the directed edge was counted.
  std::uint32_t from = lockorder::kNoSite;
  std::uint32_t to = lockorder::kNoSite;
  for (std::size_t i = 0; i < lockorder::site_count(); ++i) {
    const char* name = lockorder::site(i).name;
    if (name == nullptr) continue;
    if (std::string(name) == "zz_graph_outer") from = static_cast<std::uint32_t>(i);
    if (std::string(name) == "zz_graph_inner") to = static_cast<std::uint32_t>(i);
  }
  ASSERT_NE(from, lockorder::kNoSite);
  ASSERT_NE(to, lockorder::kNoSite);
  EXPECT_GT(lockorder::edge_count(from, to), 0u);
  EXPECT_EQ(lockorder::edge_count(to, from), 0u);

  const std::string json = lockorder::to_json();
  EXPECT_NE(json.find("\"name\":\"zz_graph_outer\""), std::string::npos);
  EXPECT_NE(
      json.find("{\"from\":\"zz_graph_outer\",\"to\":\"zz_graph_inner\""),
      std::string::npos);
  const std::string dot = lockorder::to_dot();
  EXPECT_NE(dot.find("\"zz_graph_outer\" -> \"zz_graph_inner\""),
            std::string::npos);
}

TEST(LockOrder, FirstObservedEdgeIsJournaled) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  // The observability layer installs the edge hook at static init; with
  // the journal enabled, the first observation of a fresh ordered pair
  // must emit a lock_order_edge event naming both sites.
  obs::set_enabled(true);
  {
    common::Mutex outer{"zz_journal_outer", LockRank::kRefreshHooks};
    common::Mutex inner{"zz_journal_inner", LockRank::kLeaf};
    common::LockGuard lo(outer);
    common::LockGuard li(inner);
  }
  const std::string events = obs::global().events().to_ndjson(256, 0);
  obs::set_enabled(false);
  EXPECT_NE(events.find("lock_order_edge"), std::string::npos);
  EXPECT_NE(events.find("zz_journal_outer->zz_journal_inner"),
            std::string::npos);
}

TEST(LockOrder, HeldStackStaysBalancedAcrossCondVarWait) {
  if (!lockorder::compiled_in()) GTEST_SKIP() << "checker compiled out";
  // condition_variable_any waits through our Mutex's own unlock()/lock(),
  // so the held stack must dip to zero inside the wait and come back —
  // never leak an entry, never double-pop.
  common::Mutex mu{"zz_cv_depth", LockRank::kLeaf};
  common::CondVar cv;
  bool go = false;
  std::size_t depth_before_wait = 99;
  std::size_t depth_after_wait = 99;
  std::thread waiter([&] {
    common::LockGuard lock(mu);
    depth_before_wait = lockorder::held_depth();
    cv.wait(mu, [&] { return go; });
    depth_after_wait = lockorder::held_depth();
  });
  {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    common::LockGuard lock(mu);
    go = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(depth_before_wait, 1u);
  EXPECT_EQ(depth_after_wait, 1u);
  EXPECT_EQ(lockorder::held_depth(), 0u);  // main thread's stack, also clean
}

TEST(LockOrder, LockprofHoldTimeExcludesCondVarWait) {
  // A thread parked in cv.wait() is NOT holding the lock — hold-time
  // attribution must charge the two short critical sections around the
  // wait, not the ~150ms spent blocked inside it.
  lockprof::set_enabled(true);
  common::Mutex mu{"zz_cv_prof", LockRank::kLeaf};
  common::CondVar cv;
  bool go = false;
  std::thread waiter([&] {
    common::LockGuard lock(mu);
    cv.wait(mu, [&] { return go; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  {
    common::LockGuard lock(mu);
    go = true;
  }
  cv.notify_all();
  waiter.join();
  lockprof::set_enabled(false);

  const lockprof::SiteStats* row = nullptr;
  for (std::size_t i = 0; i < lockprof::site_count(); ++i) {
    const char* name = lockprof::site(i).name.load(std::memory_order_acquire);
    if (name != nullptr && std::string(name) == "zz_cv_prof") {
      row = &lockprof::site(i);
    }
  }
  ASSERT_NE(row, nullptr);
  // Initial lock + at least one relock after the wait + the notifier.
  EXPECT_GE(row->acquisitions.load(std::memory_order_relaxed), 3u);
  // The 150ms parked in the wait must not be billed as hold time.
  EXPECT_LT(row->hold_ns.load(std::memory_order_relaxed), 100u * 1000 * 1000);
}

// --------------------------------------------------- schedule perturbation --

/// Deterministically find a byte script whose baseline run commits enough
/// transactions to exercise the parallel pipeline.
std::vector<std::uint8_t> find_busy_script() {
  common::Rng rng(0x5eed);
  for (int attempt = 0; attempt < 32; ++attempt) {
    std::vector<std::uint8_t> script(384);
    for (auto& b : script) b = static_cast<std::uint8_t>(rng.index(256));
    const testing::DraScriptReport report =
        testing::run_dra_oracle_script(script.data(), script.size());
    if (report.ok && report.commits >= 3 && !report.digest.empty()) {
      return script;
    }
  }
  return {};
}

TEST(SchedulePerturbation, HundredSeededSchedulesKeepTheDigestBitIdentical) {
  // The acceptance sweep: one fixed DRA script, >= 100 distinct seeded
  // perturbation schedules at 4 evaluation lanes — every run must deliver
  // the sequential baseline's notification stream bit for bit. This is the
  // same oracle fuzz_schedule explores coverage-guided; here the seeds are
  // fixed so tier-1 replays identically everywhere.
  const std::vector<std::uint8_t> script = find_busy_script();
  ASSERT_FALSE(script.empty()) << "no generated script reached 3 commits";
  const testing::DraScriptReport base =
      testing::run_dra_oracle_script(script.data(), script.size());
  ASSERT_TRUE(base.ok) << base.message;

  std::uint64_t total_injected = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    schedule::enable(seed * 0x9e3779b97f4a7c15ull);
    testing::DraScriptConfig cfg;
    cfg.eval_threads = 4;
    const testing::DraScriptReport perturbed =
        testing::run_dra_oracle_script(script.data(), script.size(), cfg);
    total_injected += schedule::injected();
    schedule::disable();
    ASSERT_TRUE(perturbed.ok) << "seed " << seed << ": " << perturbed.message;
    ASSERT_EQ(perturbed.digest, base.digest) << "seed " << seed;
  }
  if (lockorder::compiled_in()) {
    // The perturber actually fired (CQ_SCHED_POINT compiles in with the
    // checker): schedules genuinely differed, this wasn't 100 identical
    // runs.
    EXPECT_GT(total_injected, 100u);
  }
  EXPECT_FALSE(schedule::enabled());
}

TEST(SchedulePerturbation, DisabledPerturberInjectsNothing) {
  ASSERT_FALSE(schedule::enabled());
  const std::uint64_t before = schedule::injected();
  common::Mutex mu{"zz_sched_off", LockRank::kLeaf};
  for (int i = 0; i < 64; ++i) {
    common::LockGuard lock(mu);
  }
  EXPECT_EQ(schedule::injected(), before);
}

}  // namespace
}  // namespace cq
