#include <gtest/gtest.h>

#include "cq/propagate.hpp"
#include "query/evaluate.hpp"
#include "query/parser.hpp"
#include "workload/accounts.hpp"
#include "workload/stocks.hpp"
#include "workload/sweep.hpp"

namespace cq::wl {
namespace {

using common::Rng;
using common::Timestamp;

TEST(StocksWorkload, ListsRequestedSymbols) {
  Rng rng(1);
  cat::Database db;
  StocksWorkload stocks(db, "Stocks", {.symbols = 200}, rng);
  EXPECT_EQ(db.table("Stocks").size(), 200u);
  EXPECT_EQ(StocksWorkload::symbol_name(42), "SYM000042");
}

TEST(StocksWorkload, StepAppliesMixedUpdates) {
  Rng rng(2);
  cat::Database db;
  StocksWorkload stocks(db, "Stocks", {.symbols = 100}, rng);
  const Timestamp t0 = db.clock().now();
  stocks.step(/*trades=*/50, /*listings=*/10, /*delistings=*/5);
  const auto net = db.delta("Stocks").net_effect(t0);
  EXPECT_GT(net.size(), 30u);
  // At least one of each kind should appear with these volumes.
  bool ins = false;
  bool mod = false;
  bool del = false;
  for (const auto& row : net) {
    ins |= row.kind() == delta::ChangeKind::kInsert;
    mod |= row.kind() == delta::ChangeKind::kModify;
    del |= row.kind() == delta::ChangeKind::kDelete;
  }
  EXPECT_TRUE(ins);
  EXPECT_TRUE(mod);
  EXPECT_TRUE(del);
  // Table size reflects listings minus delistings (delist ops can be
  // skipped when they collide inside one transaction, never exceeded).
  EXPECT_GE(db.table("Stocks").size(), 100u + 10u - 5u);
}

TEST(AccountsWorkload, NetMovementIsPredictable) {
  Rng rng(3);
  cat::Database db;
  AccountsWorkload accounts(db, "Accounts", {.accounts = 50}, rng);
  const auto query = qry::parse_query("SELECT SUM(amount) FROM Accounts");
  const auto before = qry::evaluate(query, db);
  const std::int64_t net = accounts.step(100);
  const auto after = qry::evaluate(query, db);
  // Sum of balances moved exactly by the reported net amount.
  EXPECT_EQ(after.row(0).at(0).as_int() - before.row(0).at(0).as_int(), net);
}

TEST(AccountsWorkload, OpenCloseAccounts) {
  Rng rng(4);
  cat::Database db;
  AccountsWorkload accounts(db, "Accounts", {.accounts = 10}, rng);
  accounts.open_account(12345);
  EXPECT_EQ(db.table("Accounts").size(), 11u);
  accounts.close_random_account();
  EXPECT_EQ(db.table("Accounts").size(), 10u);
}

TEST(SweepTable, SelectivityIsAccurate) {
  Rng rng(5);
  cat::Database db;
  SweepTable table(db, "S", 20000, 16, rng);
  for (double s : {0.01, 0.1, 0.5}) {
    const auto result = core::recompute(table.selection_query(s), db);
    const double actual =
        static_cast<double>(result.size()) / static_cast<double>(db.table("S").size());
    EXPECT_NEAR(actual, s, 0.02) << "target selectivity " << s;
  }
}

TEST(SweepTable, UpdatesRespectMixRoughly) {
  Rng rng(6);
  cat::Database db;
  SweepTable table(db, "S", 2000, 16, rng);
  const Timestamp t0 = db.clock().now();
  table.update(600, {.modify_fraction = 0.5, .delete_fraction = 0.25});
  std::size_t ins = 0;
  std::size_t mod = 0;
  std::size_t del = 0;
  for (const auto& row : db.delta("S").net_effect(t0)) {
    switch (row.kind()) {
      case delta::ChangeKind::kInsert: ++ins; break;
      case delta::ChangeKind::kModify: ++mod; break;
      case delta::ChangeKind::kDelete: ++del; break;
    }
  }
  // Net-effect composition blurs exact ratios; check coarse shape only.
  EXPECT_GT(mod, ins);
  EXPECT_GT(ins, 0u);
  EXPECT_GT(del, 0u);
}

TEST(SweepJoinQuery, ProducesEquiJoinPlan) {
  Rng rng(7);
  cat::Database db;
  SweepTable a(db, "A", 300, 8, rng);
  SweepTable b(db, "B", 300, 8, rng);
  const auto q = join_query({&a, &b}, 0.3);
  const auto result = core::recompute(q, db);
  // With 8 groups and ~90 selected rows per side, expect roughly
  // 90*90/8 ≈ 1000 join rows; just check it's non-trivial and bounded.
  EXPECT_GT(result.size(), 100u);
  EXPECT_LT(result.size(), 5000u);
}

}  // namespace
}  // namespace cq::wl
