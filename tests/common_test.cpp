#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timestamp.hpp"

namespace cq::common {
namespace {

TEST(Timestamp, OrderingAndBounds) {
  EXPECT_LT(Timestamp(1), Timestamp(2));
  EXPECT_LT(Timestamp::min(), Timestamp::zero());
  EXPECT_LT(Timestamp::zero(), Timestamp::max());
  EXPECT_EQ(Timestamp(5).next(), Timestamp(6));
  EXPECT_EQ(Timestamp::max().next(), Timestamp::max());  // saturates
}

TEST(Timestamp, Arithmetic) {
  EXPECT_EQ(Timestamp(10) + Duration(5), Timestamp(15));
  EXPECT_EQ(Timestamp(10) - Timestamp(4), Duration(6));
  EXPECT_EQ(Timestamp(7).to_string(), "7");
}

TEST(VirtualClock, TickIsStrictlyMonotone) {
  VirtualClock clock;
  Timestamp prev = clock.now();
  for (int i = 0; i < 100; ++i) {
    const Timestamp t = clock.tick();
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(clock.now(), prev);
}

TEST(VirtualClock, AdvanceNeverGoesBackwards) {
  VirtualClock clock(Timestamp(100));
  clock.advance(Duration(-50));
  EXPECT_EQ(clock.now(), Timestamp(100));
  clock.advance_to(Timestamp(50));
  EXPECT_EQ(clock.now(), Timestamp(100));
  clock.advance_to(Timestamp(200));
  EXPECT_EQ(clock.now(), Timestamp(200));
}

TEST(VirtualClock, ConcurrentTicksAreUnique) {
  VirtualClock clock;
  std::set<Timestamp::rep> seen;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        const Timestamp ts = clock.tick();
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(ts.ticks()).second);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(seen.size(), 4000u);
}

TEST(SystemClock, MonotoneAcrossCalls) {
  SystemClock clock;
  Timestamp prev = clock.now();
  for (int i = 0; i < 50; ++i) {
    const Timestamp t = clock.tick();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(43);
  EXPECT_NE(Rng(42).next(), c.next());
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
  EXPECT_THROW(static_cast<void>(rng.uniform_int(2, 1)), InvalidArgument);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ZipfSkewsTowardsLowRanks) {
  Rng rng(9);
  std::size_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.zipf(1000, 0.9) < 10) ++low;
  }
  // With theta=0.9 the top-10 ranks get far more than the uniform 1%.
  EXPECT_GT(low, 1000u);
  EXPECT_THROW(static_cast<void>(rng.zipf(0, 0.5)), InvalidArgument);
}

TEST(Rng, ZipfZeroThetaIsUniformish) {
  Rng rng(10);
  std::size_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.zipf(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / 10000.0, 0.10, 0.02);
}

TEST(Rng, StringAndShuffle) {
  Rng rng(11);
  const std::string s = rng.string(16);
  EXPECT_EQ(s.size(), 16u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);  // a permutation
  EXPECT_THROW(static_cast<void>(rng.index(0)), InvalidArgument);
}

TEST(Metrics, AddGetReset) {
  Metrics m;
  EXPECT_EQ(m.get("x"), 0);
  m.add("x");
  m.add("x", 4);
  EXPECT_EQ(m.get("x"), 5);
  m.add("y", -2);
  EXPECT_EQ(m.get("y"), -2);
  EXPECT_EQ(m.all().size(), 2u);
  EXPECT_NE(m.to_string().find("x=5"), std::string::npos);
  m.reset();
  EXPECT_EQ(m.get("x"), 0);
}

TEST(HashMix, SpreadsBits) {
  std::set<std::uint64_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) hashes.insert(hash_mix(0, i));
  EXPECT_EQ(hashes.size(), 1000u);
  EXPECT_NE(hash_mix(1, 2), hash_mix(2, 1));
}

TEST(Logging, LevelGate) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // These must not crash regardless of level.
  log_debug("invisible ", 1);
  log_warn("visible ", 2);
  set_log_level(original);
}

TEST(Errors, HierarchyAndAssert) {
  EXPECT_THROW(throw SchemaMismatch("x"), InvalidArgument);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw NotFound("x"), Error);
  try {
    CQ_ASSERT(1 + 1 == 3);
    FAIL() << "assert should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("invariant failed"), std::string::npos);
  }
  CQ_ASSERT(true);  // no throw
}

}  // namespace
}  // namespace cq::common
