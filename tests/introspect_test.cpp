// Tests for the live-introspection subsystem: gauges and their resource
// accounting, the structured event journal, Prometheus text exposition
// (escaping, histogram bucket shape), the introspection HTTP server, and
// mediator health (/healthz semantics).
#include "diom/introspect.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "common/event_log.hpp"
#include "common/introspect_server.hpp"
#include "common/lock_profile.hpp"
#include "common/observability.hpp"
#include "common/prometheus.hpp"
#include "common/thread_pool.hpp"
#include "cq/manager.hpp"
#include "cq/trigger.hpp"
#include "diom/mediator.hpp"
#include "diom/source.hpp"
#include "query/parser.hpp"

namespace cq {
namespace {

namespace obs = common::obs;
using rel::Value;
using rel::ValueType;

/// Enables collection for the duration of a test and resets the global
/// registry on both sides, so tests do not see each other's samples.
class IntrospectScope : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::global().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::global().reset();
  }
};

// ------------------------------------------------------------------ gauge --

TEST(Gauge, SetAddSubGet) {
  obs::Gauge g;
  EXPECT_EQ(g.get(), 0);
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.get(), 12);
  g.set(-4);
  EXPECT_EQ(g.get(), -4);
}

TEST_F(IntrospectScope, RegistryGaugeIsStableAndKeyedByLabels) {
  obs::Gauge& a = obs::global().gauge("delta_rows", {{"table", "A"}});
  obs::Gauge& b = obs::global().gauge("delta_rows", {{"table", "B"}});
  EXPECT_NE(&a, &b);
  // Same (name, labels) resolves to the same gauge.
  EXPECT_EQ(&a, &obs::global().gauge("delta_rows", {{"table", "A"}}));
  a.set(7);
  b.set(9);

  const auto snapshot = obs::global().gauge_snapshot();
  std::map<std::string, std::int64_t> by_label;
  for (const auto& s : snapshot) {
    if (s.name == "delta_rows") by_label[s.labels.at(0).second] = s.value;
  }
  EXPECT_EQ(by_label.at("A"), 7);
  EXPECT_EQ(by_label.at("B"), 9);
}

TEST_F(IntrospectScope, RegistryResetZeroesGaugesAndClearsJournal) {
  obs::global().gauge("delta_rows").set(42);
  obs::event(obs::Severity::kInfo, "test", "x");
  ASSERT_EQ(obs::global().events().size(), 1u);
  obs::global().reset();
  EXPECT_EQ(obs::global().gauge("delta_rows").get(), 0);
  EXPECT_EQ(obs::global().events().size(), 0u);
}

// ---------------------------------------------- resource gauge accounting --

cat::Database make_db() {
  cat::Database db;
  db.create_table("T", rel::Schema({{"id", ValueType::kInt}, {"s", ValueType::kString}}));
  return db;
}

std::int64_t gauge_value(const std::string& name, const std::string& table) {
  for (const auto& s : obs::global().gauge_snapshot()) {
    if (s.name == name && !s.labels.empty() && s.labels[0].second == table) {
      return s.value;
    }
  }
  return -1;
}

TEST_F(IntrospectScope, GaugesFollowInsertsDeletesAndGc) {
  cat::Database db = make_db();
  const auto t1 = db.insert("T", {Value(std::int64_t{1}), Value(std::string("a"))});
  db.insert("T", {Value(std::int64_t{2}), Value(std::string("bb"))});

  EXPECT_EQ(gauge_value("relation_rows", "T"), 2);
  EXPECT_EQ(gauge_value("delta_rows", "T"), 2);
  const std::int64_t bytes_2 = gauge_value("relation_bytes", "T");
  EXPECT_GT(bytes_2, 0);
  EXPECT_EQ(bytes_2, static_cast<std::int64_t>(db.table("T").byte_size()));
  EXPECT_EQ(gauge_value("delta_bytes", "T"),
            static_cast<std::int64_t>(db.delta("T").byte_size()));

  db.erase("T", t1);
  EXPECT_EQ(gauge_value("relation_rows", "T"), 1);
  EXPECT_EQ(gauge_value("delta_rows", "T"), 3);  // the delete is a delta row
  EXPECT_LT(gauge_value("relation_bytes", "T"), bytes_2);
  EXPECT_EQ(gauge_value("relation_bytes", "T"),
            static_cast<std::int64_t>(db.table("T").byte_size()));

  // GC with no registered CQ reclaims the whole log and republishes.
  db.garbage_collect();
  EXPECT_EQ(gauge_value("delta_rows", "T"), 0);
  EXPECT_EQ(gauge_value("delta_bytes", "T"), 0);
  EXPECT_EQ(gauge_value("relation_rows", "T"), 1);
}

TEST_F(IntrospectScope, RefreshCoversTablesUntouchedSinceEnabling) {
  obs::set_enabled(false);
  // A table name no other test publishes: gauges must be absent (or stale
  // zero from a registry reset) until refresh_resource_gauges runs.
  cat::Database db;
  db.create_table("Untouched", rel::Schema({{"id", ValueType::kInt}}));
  db.insert("Untouched", {Value(std::int64_t{1})});
  obs::set_enabled(true);
  // Nothing published yet — the insert committed while disabled.
  EXPECT_LE(gauge_value("relation_rows", "Untouched"), 0);
  db.refresh_resource_gauges();
  EXPECT_EQ(gauge_value("relation_rows", "Untouched"), 1);
  EXPECT_EQ(gauge_value("delta_rows", "Untouched"), 1);
}

TEST(DeltaBytes, IncrementalMatchesRecount) {
  // byte_size() is maintained incrementally; it must equal a fresh scan
  // after appends and truncation, with collection disabled throughout.
  cat::Database db = make_db();
  for (int i = 0; i < 10; ++i) {
    db.insert("T", {Value(std::int64_t{i}), Value(std::string(i, 'x'))});
  }
  const delta::DeltaRelation& d = db.delta("T");
  std::size_t recount = 0;
  for (const auto& row : d.rows()) recount += row.byte_size();
  EXPECT_EQ(d.byte_size(), recount);
  db.garbage_collect();
  EXPECT_EQ(d.byte_size(), 0u);
}

// -------------------------------------------------------------- event log --

TEST(EventLog, RecordTailAndRotation) {
  obs::EventLog log;
  log.set_capacity(4);
  for (int i = 0; i < 6; ++i) {
    log.record(obs::Severity::kInfo, "kind", "subject", "detail " + std::to_string(i),
               i);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  const auto tail = log.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  // Newest last; the oldest two rotated out.
  EXPECT_EQ(tail[0].detail, "detail 4");
  EXPECT_EQ(tail[1].detail, "detail 5");
  EXPECT_EQ(tail[1].seq, 6u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, NdjsonOneValidObjectPerLine) {
  obs::EventLog log;
  log.record(obs::Severity::kWarn, "sync_failure", "src\"quoted\"", "line1\nline2", 3);
  log.record(obs::Severity::kError, "x", "y", "", 4);
  const std::string nd = log.to_ndjson(10);
  std::istringstream lines(nd);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"severity\""), std::string::npos);
    // Raw newlines must have been escaped — each record is one line.
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
  EXPECT_EQ(n, 2u);
  EXPECT_NE(nd.find("sync_failure"), std::string::npos);
  EXPECT_NE(nd.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(IntrospectScope, EventHelperIsGatedOnEnabled) {
  obs::set_enabled(false);
  obs::event(obs::Severity::kInfo, "k", "s");
  EXPECT_EQ(obs::global().events().size(), 0u);
  obs::set_enabled(true);
  obs::event(obs::Severity::kInfo, "k", "s");
  EXPECT_EQ(obs::global().events().size(), 1u);
}

// -------------------------------------------------------------- prometheus --

TEST(PromWriter, SanitizeNameAndEscapeLabelValue) {
  EXPECT_EQ(obs::PromWriter::sanitize_name("rows_scanned"), "rows_scanned");
  EXPECT_EQ(obs::PromWriter::sanitize_name("bad-name.with space"),
            "bad_name_with_space");
  EXPECT_EQ(obs::PromWriter::sanitize_name("9lives"), "_9lives");
  EXPECT_EQ(obs::PromWriter::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::PromWriter::escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(PromWriter, CounterGaugeRendering) {
  obs::PromWriter w;
  w.counter("rows_scanned", 5);
  w.gauge("delta_rows", 3, {{"table", "T"}});
  const std::string out = w.str();
  EXPECT_NE(out.find("# TYPE cq_rows_scanned_total counter"), std::string::npos);
  EXPECT_NE(out.find("cq_rows_scanned_total 5"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cq_delta_rows gauge"), std::string::npos);
  EXPECT_NE(out.find("cq_delta_rows{table=\"T\"} 3"), std::string::npos);
}

TEST(PromWriter, HistogramBucketsAreCumulativeAndEndAtCount) {
  obs::Histogram h;
  h.record(1);
  h.record(5);
  h.record(5);
  h.record(100);
  obs::PromWriter w;
  w.histogram("lat_us", h);
  const std::string out = w.str();

  // Parse every _bucket line; they must be non-decreasing and finish with
  // +Inf == _count.
  std::istringstream lines(out);
  std::string line;
  std::uint64_t prev = 0;
  std::uint64_t inf = 0;
  std::size_t buckets = 0;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    if (line.rfind("cq_lat_us_bucket", 0) != 0) continue;
    ++buckets;
    const std::uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
    if (line.find("le=\"+Inf\"") != std::string::npos) {
      saw_inf = true;
      inf = v;
    }
  }
  EXPECT_GE(buckets, 3u);
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf, h.count());
  EXPECT_NE(out.find("cq_lat_us_sum 111"), std::string::npos);
  EXPECT_NE(out.find("cq_lat_us_count 4"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cq_lat_us histogram"), std::string::npos);
}

TEST_F(IntrospectScope, RenderPrometheusHasCounterGaugeAndHistogram) {
  common::Metrics m;
  m.add(common::metric::kRowsScanned, 7);
  obs::global().gauge("delta_rows", {{"table", "T"}}).set(2);
  obs::global().histogram("cq_exec_us").record(10);
  const std::string out = obs::render_prometheus(m, obs::global());
  EXPECT_NE(out.find("cq_rows_scanned_total 7"), std::string::npos);
  EXPECT_NE(out.find("cq_delta_rows{table=\"T\"} 2"), std::string::npos);
  EXPECT_NE(out.find("cq_cq_exec_us_bucket"), std::string::npos);
  // The registry's self-describing gauges were refreshed into the render.
  EXPECT_NE(out.find("cq_event_log_events"), std::string::npos);
  EXPECT_NE(out.find("cq_trace_ring_events"), std::string::npos);
}

TEST_F(IntrospectScope, DroppedFamiliesRenderAsCounters) {
  // Overflow both bounded buffers so the dropped totals are non-zero, then
  // check they render as counter families (monotonic, so rate() works) and
  // not as the gauges they are stored as internally.
  obs::global().events().set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    obs::event(obs::Severity::kInfo, "k", "s", std::to_string(i));
  }
  obs::global().traces().set_capacity(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    obs::global().traces().record("span", i * 10, 1, 0);
  }

  const std::string out = obs::render_prometheus(common::Metrics{}, obs::global());
  EXPECT_NE(out.find("# TYPE cq_event_log_dropped_total counter"), std::string::npos);
  EXPECT_NE(out.find("cq_event_log_dropped_total 3"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cq_trace_ring_dropped_total counter"), std::string::npos);
  EXPECT_NE(out.find("cq_trace_ring_dropped_total 3"), std::string::npos);
  // The occupancy companions stay gauges.
  EXPECT_NE(out.find("# TYPE cq_event_log_events gauge"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cq_trace_ring_events gauge"), std::string::npos);

  // Capacities are process-global state; put them back for later tests.
  obs::global().events().set_capacity(obs::EventLog::kDefaultCapacity);
  obs::global().traces().set_capacity(obs::TraceCollector::kDefaultCapacity);
}

TEST_F(IntrospectScope, LockProfileFamiliesRenderPerSite) {
  common::lockprof::set_enabled(true);
  common::Mutex mu("introspect_render_site");
  mu.lock();
  mu.unlock();
  const std::string out = obs::render_prometheus(common::Metrics{}, obs::global());
  common::lockprof::set_enabled(false);

  EXPECT_NE(out.find("# TYPE cq_lock_acquisitions_total counter"), std::string::npos);
  EXPECT_NE(out.find("cq_lock_acquisitions_total{site=\"introspect_render_site\"}"),
            std::string::npos);
  EXPECT_NE(out.find("cq_lock_contended_total{site=\"introspect_render_site\"}"),
            std::string::npos);
  // Wait/hold histograms carry the same site label on every series.
  EXPECT_NE(out.find("# TYPE cq_lock_wait_us histogram"), std::string::npos);
  EXPECT_NE(
      out.find("cq_lock_hold_us_count{site=\"introspect_render_site\"}"),
      std::string::npos);
  EXPECT_NE(out.find("cq_lock_wait_us_bucket{site=\"introspect_render_site\",le=\"+Inf\"}"),
            std::string::npos);
}

TEST_F(IntrospectScope, PoolFamiliesRenderWhilePoolAlive) {
  common::ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([] { std::this_thread::sleep_for(std::chrono::microseconds(100)); });
  }
  pool.run_all(std::move(tasks));

  // The pool publishes its lane gauges through a refresh hook, which
  // render_prometheus runs; the hook only works while the pool is alive.
  const std::string out = obs::render_prometheus(common::Metrics{}, obs::global());
  EXPECT_NE(out.find("# TYPE cq_pool_task_wait_us histogram"), std::string::npos);
  EXPECT_NE(out.find("cq_pool_task_wait_us_bucket"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cq_pool_lane_busy_us_total counter"), std::string::npos);
  EXPECT_NE(out.find("cq_pool_lane_busy_us_total{lane=\"pool-1\"}"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cq_pool_lane_utilization_pct gauge"), std::string::npos);
  EXPECT_NE(out.find("cq_pool_lane_utilization_pct{lane=\"dispatch\"}"),
            std::string::npos);
}

// ------------------------------------------------------------- per-CQ stats --

core::CqSpec watch_spec(const std::string& name) {
  return core::CqSpec::from_sql(name, "SELECT * FROM T WHERE id > 0",
                                core::triggers::on_change(), nullptr,
                                core::DeliveryMode::kDifferential);
}

TEST_F(IntrospectScope, ManagerPrometheusSectionAndResetStats) {
  cat::Database db = make_db();
  core::CqManager manager(db);
  manager.install(watch_spec("watch"), nullptr);
  db.insert("T", {Value(std::int64_t{1}), Value(std::string("a"))});
  manager.poll();

  obs::PromWriter w;
  manager.write_prometheus(w);
  const std::string out = w.str();
  EXPECT_NE(out.find("cq_executions_total{cq=\"watch\"} 2"), std::string::npos);
  EXPECT_NE(out.find("cq_rows_delivered_total{cq=\"watch\"}"), std::string::npos);

  // The registry active-CQ gauge tracks install/remove.
  EXPECT_EQ(obs::global().gauge("active_cqs").get(), 1);

  manager.reset_stats();
  EXPECT_EQ(manager.metrics().get(common::metric::kTriggersFired), 0);
  // cq_stats() now returns a copy (the live registry is mutex-guarded), so
  // take the value rather than a reference into the temporary.
  const core::CqStats s = manager.cq_stats().at("watch");
  EXPECT_EQ(s.executions, 0u);
  EXPECT_EQ(s.rows_delivered, 0u);
  EXPECT_FALSE(s.finished);
  // stats(handle) still resolves after a reset.
  for (const auto h : manager.handles()) EXPECT_EQ(manager.stats(h).executions, 0u);
}

TEST_F(IntrospectScope, LifecycleEventsLandInJournal) {
  cat::Database db = make_db();
  core::CqManager manager(db);
  const auto h = manager.install(watch_spec("watch"), nullptr);
  db.insert("T", {Value(std::int64_t{1}), Value(std::string("a"))});
  manager.poll();
  manager.remove(h);

  std::map<std::string, int> kinds;
  for (const auto& e : obs::global().events().tail(100)) ++kinds[e.kind];
  EXPECT_EQ(kinds["cq_installed"], 1);
  EXPECT_EQ(kinds["trigger_fired"], 1);
  EXPECT_EQ(kinds["cq_delivered"], 1);
  EXPECT_EQ(kinds["cq_terminated"], 1);
  EXPECT_EQ(obs::global().gauge("active_cqs").get(), 0);
}

// ------------------------------------------------------------ HTTP server --

/// Minimal loopback HTTP GET for exercising the server.
std::string raw_get(std::uint16_t port, const std::string& target,
                    int* status_out = nullptr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (status_out != nullptr && raw.size() > 12) {
    *status_out = std::stoi(raw.substr(9, 3));
  }
  const auto split = raw.find("\r\n\r\n");
  return split == std::string::npos ? "" : raw.substr(split + 4);
}

TEST(IntrospectServer, ServesRoutesAndErrors) {
  obs::IntrospectServer server;
  server.route("/ping", [](const obs::HttpRequest& req) {
    return obs::HttpResponse::text("pong n=" + std::to_string(req.query_u64("n", 7)));
  });
  server.start(0);  // ephemeral port
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  int status = 0;
  EXPECT_EQ(raw_get(server.port(), "/ping", &status), "pong n=7");
  EXPECT_EQ(status, 200);
  EXPECT_EQ(raw_get(server.port(), "/ping?n=42", &status), "pong n=42");
  raw_get(server.port(), "/nope", &status);
  EXPECT_EQ(status, 404);
  const std::string index = raw_get(server.port(), "/", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(index.find("/ping"), std::string::npos);
  EXPECT_GE(server.requests_served(), 4u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

// --------------------------------------------------------- mediator health --

/// A source whose pulls always fail — the autonomous-source failure mode.
class FailingSource final : public diom::InformationSource {
 public:
  FailingSource(std::string name, const cat::Database& db, std::string table)
      : inner_(std::move(name), db, table), table_(std::move(table)) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    return inner_.name();
  }
  [[nodiscard]] const rel::Schema& schema() const override { return inner_.schema(); }
  [[nodiscard]] rel::Relation snapshot() const override { return inner_.snapshot(); }
  [[nodiscard]] std::vector<delta::DeltaRow> pull_deltas(
      common::Timestamp /*since*/) const override {
    throw common::IoError("source offline");
  }
  [[nodiscard]] common::Timestamp now() const override { return inner_.now(); }

 private:
  diom::RelationalSource inner_;
  std::string table_;
};

TEST_F(IntrospectScope, HealthzFlipsTo503OnStaleness) {
  cat::Database source_db;
  source_db.create_table("S", rel::Schema({{"id", ValueType::kInt}}));
  auto source = std::make_shared<diom::RelationalSource>("src", source_db, "S");

  diom::Mediator mediator("client");
  mediator.attach(source, "S");
  mediator.set_staleness_threshold(common::Duration(5));
  ASSERT_TRUE(mediator.healthy());

  obs::IntrospectServer server;
  common::Mutex engine_mu;  // the engine mutex is required — no null escape hatch
  diom::serve_introspection(server, mediator, engine_mu);
  server.start(0);

  int status = 0;
  std::string body = raw_get(server.port(), "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);

  // The source moves on; the mediator does not sync. Past the threshold the
  // endpoint must flip to 503.
  auto& clock = dynamic_cast<common::VirtualClock&>(source_db.clock());
  clock.advance(common::Duration(20));
  EXPECT_FALSE(mediator.healthy());
  body = raw_get(server.port(), "/healthz", &status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"status\":\"stale\""), std::string::npos);
  EXPECT_NE(body.find("\"staleness_ticks\":20"), std::string::npos);

  // A sync catches up and health recovers.
  mediator.sync();
  body = raw_get(server.port(), "/healthz", &status);
  EXPECT_EQ(status, 200);

  // /metrics from the same wiring: counters, gauges, histogram families.
  body = raw_get(server.port(), "/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("cq_source_up{source=\"src\"} 1"), std::string::npos);
  EXPECT_NE(body.find("cq_relation_rows{table=\"S\"}"), std::string::npos);
  EXPECT_NE(body.find("_total"), std::string::npos);
  server.stop();
}

TEST_F(IntrospectScope, FailingSourceIsReportedAndPendingGaugesPublish) {
  cat::Database source_db;
  source_db.create_table("S", rel::Schema({{"id", ValueType::kInt}}));
  auto source = std::make_shared<FailingSource>("flaky", source_db, "S");

  diom::Mediator mediator("client");
  mediator.attach(source, "S");
  source_db.insert("S", {Value(std::int64_t{1})});

  const auto report = mediator.sync_report();
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].first, "flaky");

  const auto health = mediator.health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].failures, 1u);
  // No staleness threshold set: a reachable-but-failing source is still
  // "healthy" by the staleness rule, but its failure count and the
  // sync_failure journal entry surface the problem.
  bool saw_failure_event = false;
  for (const auto& e : obs::global().events().tail(50)) {
    saw_failure_event = saw_failure_event || e.kind == "sync_failure";
  }
  EXPECT_TRUE(saw_failure_event);

  // The staleness gauge reflects the stuck cursor.
  bool found = false;
  for (const auto& s : obs::global().gauge_snapshot()) {
    if (s.name == "source_staleness_ticks" && !s.labels.empty() &&
        s.labels[0].second == "flaky") {
      found = true;
      EXPECT_GE(s.value, 1);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cq
