// Network, sources, translators, and the mediator end to end.
#include <gtest/gtest.h>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "cq/propagate.hpp"
#include "diom/feed_source.hpp"
#include "diom/file_source.hpp"
#include "diom/mediator.hpp"
#include "diom/network.hpp"
#include "diom/source.hpp"
#include "query/parser.hpp"

namespace cq::diom {
namespace {

using common::Timestamp;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

TEST(Network, TransferCostModel) {
  Network net;
  net.set_default_link({.latency_ms = 10.0, .bandwidth_bytes_per_ms = 100.0});
  const double ms = net.send("a", "b", 1000);
  EXPECT_DOUBLE_EQ(ms, 10.0 + 10.0);
  EXPECT_EQ(net.total_bytes(), 1000u);
  EXPECT_EQ(net.total_messages(), 1u);
}

TEST(Network, PerLinkOverride) {
  Network net;
  net.set_default_link({.latency_ms = 1.0, .bandwidth_bytes_per_ms = 1000.0});
  net.set_link("a", "b", {.latency_ms = 50.0, .bandwidth_bytes_per_ms = 10.0});
  EXPECT_GT(net.send("b", "a", 100), net.send("a", "c", 100));  // symmetric lookup
  EXPECT_EQ(net.bytes_by_pair().at("b->a"), 100u);
}

TEST(Network, InvalidBandwidthRejected) {
  Network net;
  EXPECT_THROW(net.set_link("a", "b", {.latency_ms = 1.0, .bandwidth_bytes_per_ms = 0.0}),
               common::InvalidArgument);
}

TEST(RelationalSource, ExposesTableAndDeltas) {
  cat::Database db;
  db.create_table("T", Schema::of({{"x", ValueType::kInt}}));
  db.insert("T", {Value(1)});
  RelationalSource src("srcT", db, "T");
  EXPECT_EQ(src.snapshot().size(), 1u);
  const Timestamp t0 = src.now();
  db.insert("T", {Value(2)});
  const auto deltas = src.pull_deltas(t0);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind(), delta::ChangeKind::kInsert);
  EXPECT_THROW(RelationalSource("x", db, "Missing"), common::NotFound);
}

TEST(FileSource, TranslatorParsesTypedFields) {
  FileSource fs("files", Schema::of({{"sym", ValueType::kString},
                                     {"price", ValueType::kInt},
                                     {"rate", ValueType::kDouble}}));
  const auto values = fs.translate("IBM,75,1.5");
  EXPECT_EQ(values[0], Value("IBM"));
  EXPECT_EQ(values[1], Value(75));
  EXPECT_EQ(values[2], Value(1.5));
  EXPECT_THROW(static_cast<void>(fs.translate("IBM,75")), common::ParseError);
  EXPECT_THROW(static_cast<void>(fs.translate("IBM,notanumber,1.0")),
               common::ParseError);
}

TEST(FileSource, MutationsBecomeDeltaRows) {
  FileSource fs("files", Schema::of({{"sym", ValueType::kString},
                                     {"price", ValueType::kInt}}));
  const Timestamp t0 = fs.now();
  const auto line1 = fs.write_line("IBM,75");
  const auto line2 = fs.write_line("DEC,150");
  fs.replace_line(line1, "IBM,80");
  fs.remove_line(line2);

  const auto deltas = fs.pull_deltas(t0);
  // Net effect: IBM insert (write∘replace composes), DEC write∘remove gone.
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind(), delta::ChangeKind::kInsert);
  EXPECT_EQ((*deltas[0].new_values)[1], Value(80));
  EXPECT_EQ(fs.snapshot().size(), 1u);
  EXPECT_EQ(fs.line_count(), 1u);
}

TEST(FileSource, ErrorsOnUnknownLines) {
  FileSource fs("files", Schema::of({{"x", ValueType::kInt}}));
  EXPECT_THROW(fs.remove_line(7), common::NotFound);
  EXPECT_THROW(fs.replace_line(7, "1"), common::NotFound);
  // A malformed write leaves no trace.
  EXPECT_THROW(static_cast<void>(fs.write_line("oops")), common::ParseError);
  EXPECT_EQ(fs.line_count(), 0u);
  EXPECT_TRUE(fs.pull_deltas(Timestamp::min()).empty());
}

TEST(FeedSource, AppendOnlyStream) {
  FeedSource feed("ticker", Schema::of({{"sym", ValueType::kString},
                                        {"px", ValueType::kInt}}));
  const Timestamp t0 = feed.now();
  feed.publish({Value("IBM"), Value(75)});
  feed.publish({Value("DEC"), Value(150)});
  EXPECT_EQ(feed.snapshot().size(), 2u);
  const auto deltas = feed.pull_deltas(t0);
  ASSERT_EQ(deltas.size(), 2u);
  for (const auto& d : deltas) EXPECT_EQ(d.kind(), delta::ChangeKind::kInsert);
}

TEST(Mediator, MirrorTracksSourceThroughSyncs) {
  cat::Database server;
  server.create_table("Stocks", Schema::of({{"name", ValueType::kString},
                                            {"price", ValueType::kInt}}));
  const auto dec = server.insert("Stocks", {Value("DEC"), Value(150)});
  server.insert("Stocks", {Value("IBM"), Value(80)});

  Network net;
  Mediator client("client", &net);
  client.attach(std::make_shared<RelationalSource>("Stocks", server, "Stocks"));

  EXPECT_TRUE(client.database().table("Stocks").equal_multiset(server.table("Stocks")));

  server.modify("Stocks", dec, {Value("DEC"), Value(149)});
  server.insert("Stocks", {Value("MAC"), Value(117)});
  server.erase("Stocks", dec);
  EXPECT_EQ(client.sync(), 2u);  // DEC modify∘delete composes to one delete

  EXPECT_TRUE(client.database().table("Stocks").equal_multiset(server.table("Stocks")));
  EXPECT_GT(net.total_bytes(), 0u);
}

TEST(Mediator, SyncWithNoChangesShipsNothing) {
  cat::Database server;
  server.create_table("T", Schema::of({{"x", ValueType::kInt}}));
  Network net;
  Mediator client("client", &net);
  client.attach(std::make_shared<RelationalSource>("T", server, "T"));
  const auto bytes_after_attach = net.total_bytes();
  EXPECT_EQ(client.sync(), 0u);
  EXPECT_EQ(net.total_bytes(), bytes_after_attach);
}

TEST(Mediator, HeterogeneousSourcesDriveOneCq) {
  // A relational DB, a file store, and a feed — all feeding one mediator;
  // a CQ over the mirror of the file source sees translated updates.
  cat::Database server;
  server.create_table("Db", Schema::of({{"x", ValueType::kInt}}));
  auto files = std::make_shared<FileSource>(
      "Files",
      Schema::of({{"sym", ValueType::kString}, {"price", ValueType::kInt}}));
  auto feed = std::make_shared<FeedSource>(
      "Feed", Schema::of({{"sym", ValueType::kString}, {"px", ValueType::kInt}}));

  Mediator client("client");
  client.attach(std::make_shared<RelationalSource>("Db", server, "Db"));
  client.attach(files);
  client.attach(feed);
  EXPECT_EQ(client.source_count(), 3u);

  auto sink = std::make_shared<core::CollectingSink>();
  client.manager().install(
      core::CqSpec::from_sql("watch-files", "SELECT * FROM Files WHERE price > 100",
                             core::triggers::on_change()),
      sink);

  const auto l1 = files->write_line("IBM,75");
  files->write_line("DEC,150");
  feed->publish({Value("X"), Value(1)});
  client.sync();
  client.manager().poll();
  ASSERT_EQ(sink->notifications().size(), 2u);
  EXPECT_EQ(sink->notifications()[1].delta.inserted.size(), 1u);  // DEC only

  files->replace_line(l1, "IBM,200");  // IBM enters the result
  client.sync();
  client.manager().poll();
  ASSERT_EQ(sink->notifications().size(), 3u);
  EXPECT_EQ(sink->notifications()[2].delta.inserted.count_value(
                Tuple({Value("IBM"), Value(200)})),
            1u);
}

TEST(Mediator, ShipSnapshotsCostsMoreThanDeltas) {
  cat::Database server;
  server.create_table("Big", Schema::of({{"x", ValueType::kInt},
                                         {"pad", ValueType::kString}}));
  auto txn = server.begin();
  for (int i = 0; i < 500; ++i) {
    txn.insert("Big", {Value(i), Value(std::string(20, 'p'))});
  }
  txn.commit();

  Network net;
  Mediator client("client", &net);
  client.attach(std::make_shared<RelationalSource>("Big", server, "Big"));
  net.reset();

  server.insert("Big", {Value(9999), Value("new")});
  client.sync();
  const auto delta_bytes = net.total_bytes();
  net.reset();
  client.ship_snapshots();
  const auto snapshot_bytes = net.total_bytes();
  EXPECT_LT(delta_bytes * 50, snapshot_bytes);
}

}  // namespace
}  // namespace cq::diom
