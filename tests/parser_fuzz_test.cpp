// Robustness: the lexer/parser must never crash — any input either parses
// or raises ParseError/InvalidArgument. Inputs are randomized token soups
// built from the grammar's own vocabulary (worst case for a recursive
// descent parser), plus truncations of valid queries.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "query/parser.hpp"

namespace cq::qry {
namespace {

const char* kVocabulary[] = {
    "SELECT", "DISTINCT", "FROM",  "WHERE", "GROUP",  "BY",     "AS",    "AND",
    "OR",     "NOT",      "IN",    "LIKE",  "BETWEEN", "IS",    "NULL",  "SUM",
    "COUNT",  "AVG",      "MIN",   "MAX",   "TRUE",   "FALSE",  "tbl",   "a",
    "b.c",    "price",    "42",    "3.5",   "'str'",  "(",      ")",     ",",
    "*",      "=",        "<>",    "<",     "<=",     ">",      ">=",    "+",
    "-",      "/",        "'ab%'"};

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  common::Rng rng(0xf022);
  std::size_t parsed_ok = 0;
  for (int round = 0; round < 3000; ++round) {
    std::string input = "SELECT";
    const std::size_t len = 2 + rng.index(24);
    for (std::size_t i = 0; i < len; ++i) {
      input += " ";
      input += kVocabulary[rng.index(std::size(kVocabulary))];
    }
    try {
      const SpjQuery q = parse_query(input);
      q.validate();
      ++parsed_ok;
    } catch (const common::ParseError&) {
    } catch (const common::InvalidArgument&) {
    }
  }
  // Random soups are overwhelmingly invalid; the property under test is
  // that every one of them either parsed or threw a typed error (no crash,
  // no other exception escaping). Sanity-check the happy path explicitly.
  EXPECT_LT(parsed_ok, 3000u);
  EXPECT_NO_THROW(static_cast<void>(parse_query("SELECT price FROM tbl")));
}

TEST(ParserFuzz, TruncationsOfValidQueryNeverCrash) {
  const std::string sql =
      "SELECT DISTINCT a.x, b.y FROM T1 AS a, T2 b WHERE a.x = b.y AND "
      "a.z BETWEEN 1 AND 10 OR b.w IN (1, 2, 3) AND NOT b.v LIKE 'pre%' "
      "AND a.q IS NOT NULL";
  // Full string parses.
  EXPECT_NO_THROW(static_cast<void>(parse_query(sql)));
  for (std::size_t cut = 0; cut < sql.size(); ++cut) {
    try {
      static_cast<void>(parse_query(sql.substr(0, cut)));
    } catch (const common::ParseError&) {
    } catch (const common::InvalidArgument&) {
    }
  }
}

TEST(ParserFuzz, RandomBytesNeverCrashTheLexer) {
  common::Rng rng(0xf0221);
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    const std::size_t len = rng.index(40);
    for (std::size_t i = 0; i < len; ++i) {
      input += static_cast<char>(32 + rng.index(95));  // printable ASCII
    }
    try {
      static_cast<void>(parse_query(input));
    } catch (const common::Error&) {
    }
  }
}

TEST(ParserFuzz, PredicatesRoundTripThroughToString) {
  // Any predicate we can parse, we can render and re-parse to the same
  // rendering (fixed point after one round).
  common::Rng rng(0xf0222);
  const char* kPredVocab[] = {"a",   "b.c", "42", "3.5", "'s'", "AND", "OR",
                              "NOT", "=",   "<",  ">",   "+",   "-",   "("};
  std::size_t checked = 0;
  for (int round = 0; round < 3000; ++round) {
    std::string input;
    const std::size_t len = 1 + rng.index(12);
    for (std::size_t i = 0; i < len; ++i) {
      if (i > 0) input += " ";
      input += kPredVocab[rng.index(std::size(kPredVocab))];
    }
    alg::ExprPtr parsed;
    try {
      parsed = parse_predicate(input);
    } catch (const common::Error&) {
      continue;
    }
    const std::string rendered = parsed->to_string();
    const alg::ExprPtr reparsed = parse_predicate(rendered);
    EXPECT_EQ(reparsed->to_string(), rendered) << "input: " << input;
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

}  // namespace
}  // namespace cq::qry
