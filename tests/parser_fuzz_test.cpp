// Robustness: the lexer/parser must never crash — any input either parses
// or raises ParseError/InvalidArgument. Inputs are randomized token soups
// built from the grammar's own vocabulary (worst case for a recursive
// descent parser), plus truncations of valid queries. The soup generators
// live in tests/testing/sql_gen.* and are shared with the libFuzzer target
// fuzz/fuzz_sql_parser.cpp; here an Rng-filled byte buffer stands in for
// the fuzzer's input.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "query/parser.hpp"
#include "testing/fuzz_input.hpp"
#include "testing/sql_gen.hpp"

namespace cq::qry {
namespace {

std::vector<std::uint8_t> random_bytes(common::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.index(256));
  return bytes;
}

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  common::Rng rng(0xf022);
  std::size_t parsed_ok = 0;
  for (int round = 0; round < 3000; ++round) {
    const auto bytes = random_bytes(rng, 32);
    testing::ByteReader in(bytes.data(), bytes.size());
    const std::string input = testing::sql_token_soup(in, 26);
    try {
      const SpjQuery q = parse_query(input);
      q.validate();
      ++parsed_ok;
    } catch (const common::ParseError&) {
    } catch (const common::InvalidArgument&) {
    }
  }
  // Random soups are overwhelmingly invalid; the property under test is
  // that every one of them either parsed or threw a typed error (no crash,
  // no other exception escaping). Sanity-check the happy path explicitly.
  EXPECT_LT(parsed_ok, 3000u);
  EXPECT_NO_THROW(static_cast<void>(parse_query("SELECT price FROM tbl")));
}

TEST(ParserFuzz, TruncationsOfValidQueryNeverCrash) {
  const std::string sql =
      "SELECT DISTINCT a.x, b.y FROM T1 AS a, T2 b WHERE a.x = b.y AND "
      "a.z BETWEEN 1 AND 10 OR b.w IN (1, 2, 3) AND NOT b.v LIKE 'pre%' "
      "AND a.q IS NOT NULL";
  // Full string parses.
  EXPECT_NO_THROW(static_cast<void>(parse_query(sql)));
  for (std::size_t cut = 0; cut < sql.size(); ++cut) {
    try {
      static_cast<void>(parse_query(sql.substr(0, cut)));
    } catch (const common::ParseError&) {
    } catch (const common::InvalidArgument&) {
    }
  }
}

TEST(ParserFuzz, RandomBytesNeverCrashTheLexer) {
  common::Rng rng(0xf0221);
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    const std::size_t len = rng.index(40);
    for (std::size_t i = 0; i < len; ++i) {
      input += static_cast<char>(32 + rng.index(95));  // printable ASCII
    }
    try {
      static_cast<void>(parse_query(input));
    } catch (const common::Error&) {
    }
  }
}

TEST(ParserFuzz, PredicatesRoundTripThroughToString) {
  // Any predicate we can parse, we can render and re-parse to the same
  // rendering (fixed point after one round).
  common::Rng rng(0xf0222);
  std::size_t checked = 0;
  for (int round = 0; round < 3000; ++round) {
    const auto bytes = random_bytes(rng, 16);
    testing::ByteReader in(bytes.data(), bytes.size());
    const std::string input = testing::predicate_token_soup(in, 12);
    alg::ExprPtr parsed;
    try {
      parsed = parse_predicate(input);
    } catch (const common::Error&) {
      continue;
    }
    const std::string rendered = parsed->to_string();
    const alg::ExprPtr reparsed = parse_predicate(rendered);
    EXPECT_EQ(reparsed->to_string(), rendered) << "input: " << input;
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

TEST(ParserFuzz, ExpressionNestingDepthIsBounded) {
  // Satellite hardening: pathological nesting raises ParseError at the
  // parser's depth ceiling instead of overflowing the stack.
  for (const char* unit : {"(", "NOT ", "- "}) {
    std::string sql = "SELECT a FROM t WHERE ";
    for (int i = 0; i < 5000; ++i) sql += unit;
    sql += "a";
    EXPECT_THROW(static_cast<void>(parse_query(sql)), common::ParseError) << unit;
  }
  // Well below the ceiling (each paren passes two guarded calls) still parses.
  std::string ok = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 50; ++i) ok += "(";
  ok += "a = 1";
  for (int i = 0; i < 50; ++i) ok += ")";
  EXPECT_NO_THROW(static_cast<void>(parse_query(ok)));
}

}  // namespace
}  // namespace cq::qry
