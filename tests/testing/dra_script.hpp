// Structure-aware DRA differential oracle: interprets an arbitrary byte
// string as (schema seed, generated SPJ/aggregate CQ, trigger/epsilon
// spec, transaction script), runs the script against TWO identical
// databases — one CQ maintained by the DRA, one by full recompute — and
// asserts after every commit that the two pipelines agree on trigger
// firing/suppression decisions AND on every delivered result (the paper's
// Section 4.2 equivalence, mechanized). Shared by the libFuzzer target
// fuzz/fuzz_dra_oracle.cpp, the tier-1 corpus replays, and
// tests/dra_oracle_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cq::testing {

struct DraScriptReport {
  bool ok = true;
  std::string message;        // first divergence, with commit index + query
  std::size_t commits = 0;    // transactions committed
  std::size_t executions = 0; // CQ executions the script provoked
  /// Deterministic serialization of the DRA pipeline's full notification
  /// stream plus its final trigger stats. Two runs of the same script are
  /// byte-identical here exactly when they delivered the same results in
  /// the same order — the determinism contract the parallel lane asserts
  /// (same digest at --threads 1 and at N threads).
  std::string digest;
};

/// Interpreter knobs. The fuzz target runs defaults; the parallel oracle
/// lane re-runs each script with eval_threads > 1 and compares digests.
struct DraScriptConfig {
  /// CqManager evaluation lanes on BOTH pipelines (1 = sequential path).
  std::size_t eval_threads = 1;
  /// Collect notification lineage on the DRA pipeline and (a) append every
  /// delivered row's sorted provenance set to the digest — so two runs with
  /// different eval_threads must also agree on lineage, bit for bit — and
  /// (b) cross-check that every cited (relation, txn, seq) exists in the
  /// DRA database's delta log (ok=false on a dangling citation). Resets the
  /// process-global provenance flag to off before returning.
  bool lineage = false;
};

/// Run one byte script. Never throws: malformed scripts are simply short
/// or boring runs; a false return means the DRA and the recompute oracle
/// genuinely diverged (a bug worth a minimized reproducer).
[[nodiscard]] DraScriptReport run_dra_oracle_script(const std::uint8_t* data,
                                                    std::size_t size);
[[nodiscard]] DraScriptReport run_dra_oracle_script(const std::uint8_t* data,
                                                    std::size_t size,
                                                    const DraScriptConfig& config);

}  // namespace cq::testing
