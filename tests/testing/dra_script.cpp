#include "testing/dra_script.hpp"

#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "cq/dra.hpp"
#include "cq/manager.hpp"
#include "cq/propagate.hpp"
#include "query/ast.hpp"
#include "relation/provenance.hpp"
#include "relation/schema.hpp"
#include "relation/value.hpp"
#include "testing/fuzz_input.hpp"

namespace cq::testing {
namespace {

using rel::Value;

// Script shape limits. Small on purpose: libFuzzer explores breadth, not
// depth, and every commit costs two full CQ pipelines.
constexpr std::size_t kMaxSeedRows = 24;
constexpr std::size_t kMaxCommits = 24;
constexpr std::size_t kMaxOpsPerTxn = 4;

// Categories join S to T; a tiny domain keeps join fan-out and group
// counts interesting without exploding run time.
constexpr const char* kCategories[] = {"red", "green", "blue", "gold"};
constexpr std::size_t kCategoryCount = std::size(kCategories);

// Values stay small integers so incrementally maintained double sums
// (SUM/AVG) are bit-identical to recomputed ones: every intermediate is an
// integer far below 2^53, where IEEE doubles are exact regardless of the
// order of additions.
std::vector<Value> random_s_row(ByteReader& in) {
  std::vector<Value> row;
  row.reserve(4);
  row.emplace_back(static_cast<std::int64_t>(in.range(0, 99)));  // id
  row.emplace_back(kCategories[in.index(kCategoryCount)]);       // category
  if (in.index(8) == 0) {
    row.emplace_back(Value::null());  // NULL price: exercises skip-NULL aggs
  } else {
    row.emplace_back(static_cast<std::int64_t>(in.range(0, 400)));  // price
  }
  row.emplace_back(static_cast<std::int64_t>(in.range(0, 20)));  // qty
  return row;
}

std::vector<Value> random_t_row(ByteReader& in) {
  std::vector<Value> row;
  row.reserve(2);
  row.emplace_back(kCategories[in.index(kCategoryCount)]);       // category
  row.emplace_back(static_cast<std::int64_t>(in.range(0, 50)));  // bonus
  return row;
}

// A predicate over the (possibly qualified) S columns. `q` is the column
// qualifier prefix ("" or "s.").
alg::ExprPtr random_predicate(ByteReader& in, const std::string& q, int depth) {
  using alg::CmpOp;
  using alg::Expr;
  if (depth > 0 && in.index(4) == 0) {
    auto lhs = random_predicate(in, q, depth - 1);
    auto rhs = random_predicate(in, q, depth - 1);
    switch (in.index(3)) {
      case 0: return Expr::logical_and(std::move(lhs), std::move(rhs));
      case 1: return Expr::logical_or(std::move(lhs), std::move(rhs));
      default: return Expr::logical_not(std::move(lhs));
    }
  }
  switch (in.index(6)) {
    case 0: {
      static constexpr CmpOp kOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
      return Expr::col_cmp(q + "price", kOps[in.index(std::size(kOps))],
                           Value(static_cast<std::int64_t>(in.range(0, 400))));
    }
    case 1: {
      const auto lo = in.range(0, 20);
      return Expr::between(Expr::col(q + "qty"), Value(static_cast<std::int64_t>(lo)),
                           Value(static_cast<std::int64_t>(lo + in.range(0, 10))));
    }
    case 2:
      return Expr::in_list(Expr::col(q + "category"),
                           {Value(kCategories[in.index(kCategoryCount)]),
                            Value(kCategories[in.index(kCategoryCount)])},
                           in.flip());
    case 3:
      return Expr::like_prefix(Expr::col(q + "category"),
                               std::string(1, "rgb"[in.index(3)]));
    case 4: return Expr::is_null(Expr::col(q + "price"), in.flip());
    default:
      // Arithmetic inside a comparison: price + qty <op> k.
      return Expr::cmp(in.flip() ? CmpOp::kGt : CmpOp::kLe,
                       Expr::arith(alg::ArithOp::kAdd, Expr::col(q + "price"),
                                   Expr::col(q + "qty")),
                       Expr::lit(Value(static_cast<std::int64_t>(in.range(0, 420)))));
  }
}

qry::SpjQuery random_query(ByteReader& in, bool& uses_t) {
  using alg::AggKind;
  using alg::Expr;
  qry::SpjQuery query;
  uses_t = in.index(4) == 0;
  if (uses_t) {
    query.from = {{"S", "s"}, {"T", "t"}};
    auto join = Expr::cmp(alg::CmpOp::kEq, Expr::col("s.category"),
                          Expr::col("t.category"));
    query.where = in.flip()
                      ? Expr::logical_and(std::move(join), random_predicate(in, "s.", 1))
                      : std::move(join);
    if (in.flip()) {
      query.projection = {"s.id", "s.category", "t.bonus"};
    }
    query.distinct = in.index(4) == 0;
    return query;
  }
  query.from = {{"S", ""}};
  if (in.index(4) != 0) query.where = random_predicate(in, "", 2);
  if (in.index(3) == 0) {
    // Aggregate query: optional GROUP BY category, 1-2 aggregate columns.
    if (in.flip()) query.group_by = {"category"};
    static constexpr AggKind kKinds[] = {AggKind::kCount, AggKind::kSum,
                                         AggKind::kAvg, AggKind::kMin, AggKind::kMax};
    const std::size_t n_aggs = 1 + in.index(2);
    for (std::size_t i = 0; i < n_aggs; ++i) {
      const AggKind kind = kKinds[in.index(std::size(kKinds))];
      const std::string column =
          kind == AggKind::kCount && in.flip() ? "" : (in.flip() ? "price" : "qty");
      query.aggregates.push_back({kind, column, "a" + std::to_string(i)});
    }
    if (in.index(3) == 0) {
      query.having = Expr::col_cmp("a0", in.flip() ? alg::CmpOp::kGe : alg::CmpOp::kLt,
                                   Value(static_cast<std::int64_t>(in.range(0, 200))));
    }
    if (!query.group_by.empty() && in.flip()) {
      query.order_by = {{"category", in.flip()}};
    }
  } else {
    if (in.flip()) query.projection = {"category", "price"};
    query.distinct = in.index(4) == 0;
    if (!query.distinct && in.index(4) == 0) query.order_by = {{"id", in.flip()}};
  }
  return query;
}

core::TriggerPtr random_trigger(ByteReader& in) {
  using namespace core::triggers;
  switch (in.index(6)) {
    case 0: return on_change();
    case 1: return change_count(1 + in.index(6));
    case 2:
      return aggregate_drift("S", "price", 1.0 + static_cast<double>(in.range(0, 300)));
    case 3: return periodic(common::Duration(1 + static_cast<int>(in.index(4))));
    case 4:
      return any_of({change_count(2 + in.index(4)),
                     aggregate_drift("S", "price", 50.0)});
    default: return all_of({on_change(), change_count(1 + in.index(3))});
  }
}

// Compares the two pipelines after one step; empty string = agree.
std::string compare_step(const core::CqManager& dra_mgr,
                         const core::CqManager& oracle_mgr,
                         const core::CollectingSink& dra_sink,
                         const core::CollectingSink& oracle_sink) {
  const auto dra_all = dra_mgr.cq_stats();
  const auto oracle_all = oracle_mgr.cq_stats();
  const auto dra_it = dra_all.find("cq");
  const auto oracle_it = oracle_all.find("cq");
  if ((dra_it == dra_all.end()) != (oracle_it == oracle_all.end())) {
    return "stats registry disagrees on CQ presence";
  }
  if (dra_it != dra_all.end()) {
    const core::CqStats& a = dra_it->second;
    const core::CqStats& b = oracle_it->second;
    std::ostringstream os;
    if (a.executions != b.executions) {
      os << "executions " << a.executions << " vs " << b.executions;
    } else if (a.trigger_checks != b.trigger_checks) {
      os << "trigger_checks " << a.trigger_checks << " vs " << b.trigger_checks;
    } else if (a.fired != b.fired) {
      os << "fired " << a.fired << " vs " << b.fired;
    } else if (a.suppressed != b.suppressed) {
      os << "suppressed " << a.suppressed << " vs " << b.suppressed;
    } else if (a.finished != b.finished) {
      os << "finished " << a.finished << " vs " << b.finished;
    }
    if (const auto s = os.str(); !s.empty()) return "stats diverged: " + s;
  }
  const auto& dra_notifs = dra_sink.notifications();
  const auto& oracle_notifs = oracle_sink.notifications();
  if (dra_notifs.size() != oracle_notifs.size()) {
    std::ostringstream os;
    os << "notification counts diverged: " << dra_notifs.size() << " vs "
       << oracle_notifs.size();
    return os.str();
  }
  for (std::size_t i = 0; i < dra_notifs.size(); ++i) {
    const core::Notification& a = dra_notifs[i];
    const core::Notification& b = oracle_notifs[i];
    std::ostringstream os;
    os << "notification " << i << " ";
    if (a.sequence != b.sequence) {
      os << "sequence " << a.sequence << " vs " << b.sequence;
      return os.str();
    }
    if (!a.delta.equivalent(b.delta)) {
      os << "delta diverged:\nDRA " << a.delta.to_string() << "\noracle "
         << b.delta.to_string();
      return os.str();
    }
    if (a.complete.has_value() != b.complete.has_value() ||
        (a.complete && !a.complete->equal_multiset(*b.complete))) {
      os << "complete result diverged";
      return os.str();
    }
    if (a.aggregate.has_value() != b.aggregate.has_value() ||
        (a.aggregate && !a.aggregate->equal_multiset(*b.aggregate))) {
      os << "aggregate result diverged";
      return os.str();
    }
  }
  return {};
}

/// One line per delta row: its sorted provenance set as
/// "relation:txn:seq" triples. Provenance sets are canonically sorted, so
/// this is deterministic whenever the delivered stream itself is.
void append_lineage(std::ostringstream& os, const rel::Relation& r, char sign) {
  for (const auto& row : r.rows()) {
    os << "  " << sign << " prov{";
    if (row.prov() != nullptr) {
      const char* sep = "";
      for (const auto& id : *row.prov()) {
        os << sep << rel::prov::relation_name(id.rel) << ':' << id.txn << ':'
           << id.seq;
        sep = ",";
      }
    }
    os << "}\n";
  }
}

/// Deterministic serialization of the delivered stream (see
/// DraScriptReport::digest).
std::string stream_digest(const core::CqManager& mgr, const core::CollectingSink& sink,
                          bool lineage) {
  std::ostringstream os;
  for (const core::Notification& n : sink.notifications()) {
    os << n.cq_name << '#' << n.sequence << '@' << n.at.ticks() << '\n';
    os << n.delta.to_string() << '\n';
    if (lineage) {
      append_lineage(os, n.delta.inserted, '+');
      append_lineage(os, n.delta.deleted, '-');
    }
    // Print every row (the default to_string truncates at 50).
    if (n.complete) os << "complete:" << n.complete->to_string(n.complete->size()) << '\n';
    if (n.aggregate) {
      os << "aggregate:" << n.aggregate->to_string(n.aggregate->size()) << '\n';
    }
  }
  const auto stats = mgr.cq_stats();
  if (const auto it = stats.find("cq"); it != stats.end()) {
    const core::CqStats& s = it->second;
    os << "stats:" << s.executions << '/' << s.trigger_checks << '/' << s.fired << '/'
       << s.suppressed << '/' << s.delta_rows_consumed << '/' << s.rows_delivered << '/'
       << s.finished << '\n';
  }
  return os.str();
}

}  // namespace

DraScriptReport run_dra_oracle_script(const std::uint8_t* data, std::size_t size) {
  return run_dra_oracle_script(data, size, DraScriptConfig{});
}

DraScriptReport run_dra_oracle_script(const std::uint8_t* data, std::size_t size,
                                      const DraScriptConfig& config) {
  ByteReader in(data, size);
  DraScriptReport report;

  bool uses_t = false;
  qry::SpjQuery query = random_query(in, uses_t);
  try {
    query.validate();
  } catch (const common::Error&) {
    return report;  // boring: generator produced an invalid shape
  }

  auto fail = [&](std::size_t commit_idx, const std::string& what) {
    std::ostringstream os;
    os << "DRA/oracle divergence at commit " << commit_idx << ": " << what
       << "\n  query: " << query.to_string();
    report.ok = false;
    report.message = os.str();
    return report;
  };

  try {
    // Two databases, two virtual clocks, driven in lockstep: identical op
    // sequences produce identical tids and commit timestamps on both sides.
    auto dra_clock = std::make_shared<common::VirtualClock>();
    auto oracle_clock = std::make_shared<common::VirtualClock>();
    cat::Database dra_db(dra_clock);
    cat::Database oracle_db(oracle_clock);
    const auto s_schema = rel::Schema::of({{"id", rel::ValueType::kInt},
                                           {"category", rel::ValueType::kString},
                                           {"price", rel::ValueType::kInt},
                                           {"qty", rel::ValueType::kInt}});
    const auto t_schema = rel::Schema::of(
        {{"category", rel::ValueType::kString}, {"bonus", rel::ValueType::kInt}});
    for (cat::Database* db : {&dra_db, &oracle_db}) {
      db->create_table("S", s_schema);
      db->create_table("T", t_schema);
    }
    const bool index_category = in.flip();
    const bool index_price = in.flip();
    for (cat::Database* db : {&dra_db, &oracle_db}) {
      if (index_category) db->create_index("S", "s_cat", {"category"});
      if (index_price) db->create_index("S", "s_price", {"price"});
      if (uses_t && index_category) db->create_index("T", "t_cat", {"category"});
    }

    // Seed rows (committed before the CQ installs, so E_0 is non-trivial).
    struct LiveRow {
      std::string table;
      rel::TupleId dra_tid;
      rel::TupleId oracle_tid;
    };
    std::vector<LiveRow> live;
    {
      auto dra_txn = dra_db.begin();
      auto oracle_txn = oracle_db.begin();
      const std::size_t seed_rows = in.index(kMaxSeedRows + 1);
      for (std::size_t i = 0; i < seed_rows; ++i) {
        const bool into_t = uses_t && in.index(3) == 0;
        const auto row = into_t ? random_t_row(in) : random_s_row(in);
        const std::string table = into_t ? "T" : "S";
        live.push_back({table, dra_txn.insert(table, row), oracle_txn.insert(table, row)});
      }
      if (uses_t) {  // guarantee at least one T row so joins can match
        const auto row = random_t_row(in);
        live.push_back({"T", dra_txn.insert("T", row), oracle_txn.insert("T", row)});
      }
      dra_txn.commit();
      oracle_txn.commit();
    }

    core::CqSpec spec;
    spec.name = "cq";
    spec.query = query;
    spec.trigger = random_trigger(in);
    if (in.index(4) == 0) spec.stop = core::stop::after_executions(2 + in.index(4));
    spec.mode = static_cast<core::DeliveryMode>(in.index(4));
    spec.dra_options.irrelevance_check = in.flip();
    spec.dra_options.use_hash_join = in.flip();
    spec.dra_options.use_persistent_indexes = in.flip();

    core::CqManager dra_mgr(dra_db);
    core::CqManager oracle_mgr(oracle_db);
    dra_mgr.set_parallelism(config.eval_threads);
    oracle_mgr.set_parallelism(config.eval_threads);
    // Lineage collection flips a process-global provenance flag; reset it
    // on every exit path so back-to-back script runs stay independent.
    struct ProvReset {
      bool active;
      ~ProvReset() {
        if (active) rel::prov::set_enabled(false);
      }
    } prov_reset{config.lineage};
    if (config.lineage) dra_mgr.set_lineage(true, kMaxCommits + 8);
    auto dra_sink = std::make_shared<core::CollectingSink>();
    auto oracle_sink = std::make_shared<core::CollectingSink>();

    spec.strategy = core::ExecutionStrategy::kDra;
    bool dra_installed = true;
    try {
      (void)dra_mgr.install(spec, dra_sink);
    } catch (const common::Error&) {
      dra_installed = false;
    }
    spec.strategy = core::ExecutionStrategy::kRecompute;
    bool oracle_installed = true;
    try {
      (void)oracle_mgr.install(spec, oracle_sink);
    } catch (const common::Error&) {
      oracle_installed = false;
    }
    if (dra_installed != oracle_installed) {
      return fail(0, "install succeeded on one side only");
    }
    if (!dra_installed) return report;  // boring: both rejected the spec

    const bool eager = in.flip();
    dra_mgr.set_eager(eager);
    oracle_mgr.set_eager(eager);

    // Remember the initial state for the final direct DRA-vs-Propagate
    // check (non-aggregate, non-DISTINCT queries only: that is the SPJ
    // class dra_differential itself covers).
    const common::Timestamp install_ts = dra_db.clock().now();
    std::optional<rel::Relation> initial_full;
    if (!query.is_aggregate() && !query.distinct) {
      initial_full = core::recompute(query, dra_db);
    }

    if (const auto m = compare_step(dra_mgr, oracle_mgr, *dra_sink, *oracle_sink);
        !m.empty()) {
      return fail(0, m);
    }

    // The transaction script.
    while (!in.empty() && report.commits < kMaxCommits) {
      if (in.index(4) == 0) {
        const common::Duration jump(1 + static_cast<int>(in.index(3)));
        dra_clock->advance(jump);
        oracle_clock->advance(jump);
      }
      auto dra_txn = dra_db.begin();
      auto oracle_txn = oracle_db.begin();
      const std::size_t ops = 1 + in.index(kMaxOpsPerTxn);
      for (std::size_t op = 0; op < ops; ++op) {
        const std::size_t kind = in.index(10);
        if (kind >= 7 && !live.empty()) {  // erase
          const std::size_t victim = in.index(live.size());
          const LiveRow row = live[victim];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
          dra_txn.erase(row.table, row.dra_tid);
          oracle_txn.erase(row.table, row.oracle_tid);
        } else if (kind >= 5 && !live.empty()) {  // modify
          const std::size_t victim = in.index(live.size());
          const LiveRow& row = live[victim];
          const auto values = row.table == "T" ? random_t_row(in) : random_s_row(in);
          dra_txn.modify(row.table, row.dra_tid, values);
          oracle_txn.modify(row.table, row.oracle_tid, values);
        } else if (kind == 4) {  // insert + erase in the same txn: net zero
          const auto row = random_s_row(in);
          dra_txn.erase("S", dra_txn.insert("S", row));
          oracle_txn.erase("S", oracle_txn.insert("S", row));
        } else {  // insert
          const bool into_t = uses_t && in.index(4) == 0;
          const auto row = into_t ? random_t_row(in) : random_s_row(in);
          const std::string table = into_t ? "T" : "S";
          live.push_back(
              {table, dra_txn.insert(table, row), oracle_txn.insert(table, row)});
        }
      }
      dra_txn.commit();
      oracle_txn.commit();
      ++report.commits;
      if (!eager) {
        (void)dra_mgr.poll();
        (void)oracle_mgr.poll();
      }
      if (const auto m = compare_step(dra_mgr, oracle_mgr, *dra_sink, *oracle_sink);
          !m.empty()) {
        return fail(report.commits, m);
      }
    }

    // Direct Section 4.2 check, bypassing the CQ layer: the DRA's ΔQ over
    // the whole script must match Propagate's full recompute + diff.
    if (initial_full) {
      const auto dra_delta = core::dra_differential(query, dra_db, install_ts, nullptr,
                                                    spec.dra_options);
      const auto prop_delta = core::propagate(query, dra_db, *initial_full);
      if (!dra_delta.consolidated().equivalent(prop_delta.consolidated())) {
        return fail(report.commits,
                    "direct dra_differential vs propagate mismatch:\nDRA " +
                        dra_delta.to_string() + "\noracle " + prop_delta.to_string());
      }
    }

    // Every delta row a notification cites must still exist in the DRA
    // database's delta log with exactly that (relation, txn, seq) identity.
    if (config.lineage) {
      for (const core::Notification& n : dra_sink->notifications()) {
        for (const rel::Relation* r : {&n.delta.inserted, &n.delta.deleted}) {
          for (const auto& row : r->rows()) {
            if (row.prov() == nullptr) continue;
            for (const auto& id : *row.prov()) {
              const std::string table = rel::prov::relation_name(id.rel);
              bool found = dra_db.has_table(table);
              if (found) {
                found = false;
                for (const auto& d : dra_db.delta(table).rows()) {
                  if (d.ts.ticks() == id.txn && d.seq == id.seq) {
                    found = true;
                    break;
                  }
                }
              }
              if (!found) {
                std::ostringstream os;
                os << "lineage cites a delta row missing from the log: Δ" << table
                   << " txn=" << id.txn << " seq=" << id.seq;
                return fail(report.commits, os.str());
              }
            }
          }
        }
      }
    }

    report.executions = dra_mgr.cq_stats().at("cq").executions;
    report.digest = stream_digest(dra_mgr, *dra_sink, config.lineage);
  } catch (const common::Error& e) {
    return fail(report.commits, std::string("unexpected engine error: ") + e.what());
  }
  return report;
}

}  // namespace cq::testing
