#include "testing/random_db.hpp"

#include "algebra/expr.hpp"
#include "catalog/transaction.hpp"
#include "common/error.hpp"

namespace cq::testing {

using common::Rng;
using rel::Value;

namespace {
constexpr const char* kCategories[] = {"tech", "bank", "auto", "food", "mine",
                                       "chem", "tele", "util"};
constexpr std::size_t kNumCategories = std::size(kCategories);

std::vector<Value> random_row(Rng& rng, std::int64_t price_lo, std::int64_t price_hi) {
  return {Value(rng.uniform_int(0, 1'000'000)),
          Value(std::string(kCategories[rng.index(kNumCategories)])),
          Value(rng.uniform_int(price_lo, price_hi)),
          Value(rng.uniform_int(1, 100))};
}
}  // namespace

void make_stock_table(cat::Database& db, const std::string& name, std::size_t rows,
                      Rng& rng, std::int64_t price_lo, std::int64_t price_hi) {
  db.create_table(name, rel::Schema::of({{"id", rel::ValueType::kInt},
                                         {"category", rel::ValueType::kString},
                                         {"price", rel::ValueType::kInt},
                                         {"qty", rel::ValueType::kInt}}));
  // Bulk-load in batches so the delta log isn't one giant transaction.
  std::size_t remaining = rows;
  while (remaining > 0) {
    auto txn = db.begin();
    const std::size_t batch = std::min<std::size_t>(remaining, 1024);
    for (std::size_t i = 0; i < batch; ++i) {
      txn.insert(name, random_row(rng, price_lo, price_hi));
    }
    txn.commit();
    remaining -= batch;
  }
}

std::vector<rel::TupleId> live_tids(const cat::Database& db, const std::string& table) {
  std::vector<rel::TupleId> tids;
  tids.reserve(db.table(table).size());
  for (const auto& row : db.table(table).rows()) tids.push_back(row.tid());
  return tids;
}

void random_updates(cat::Database& db, const std::string& table, std::size_t count,
                    const UpdateMix& mix, Rng& rng, std::size_t txn_size) {
  if (txn_size == 0) throw common::InvalidArgument("random_updates: txn_size must be > 0");
  std::vector<rel::TupleId> tids = live_tids(db, table);
  const auto& schema = db.table(table).schema();
  const std::size_t price_idx = schema.index_of("price");

  std::size_t done = 0;
  while (done < count) {
    auto txn = db.begin();
    const std::size_t batch = std::min(txn_size, count - done);
    for (std::size_t i = 0; i < batch; ++i) {
      const double roll = rng.uniform01();
      if (!tids.empty() && roll < mix.delete_fraction) {
        const std::size_t pick = rng.index(tids.size());
        txn.erase(table, tids[pick]);
        tids[pick] = tids.back();
        tids.pop_back();
      } else if (!tids.empty() && roll < mix.delete_fraction + mix.modify_fraction) {
        const rel::TupleId tid = tids[rng.index(tids.size())];
        // Perturb the price, keep the other fields. A tid inserted earlier
        // in this (still uncommitted) transaction is not readable from the
        // base table yet; give it fresh random values instead.
        const rel::Tuple* current = db.table(table).find(tid);
        std::vector<Value> values =
            current != nullptr ? current->values() : random_row(rng, 0, 1000);
        values[price_idx] =
            Value(values[price_idx].as_int() + rng.uniform_int(-50, 50));
        txn.modify(table, tid, std::move(values));
      } else {
        tids.push_back(txn.insert(table, random_row(rng, 0, 1000)));
      }
    }
    txn.commit();
    done += batch;
  }
}

qry::SpjQuery random_selection_query(const std::string& table, double selectivity,
                                     Rng& rng) {
  // price is uniform in [0, 1000]; a range of width selectivity*1000 gives
  // roughly the requested selectivity.
  const auto width = static_cast<std::int64_t>(selectivity * 1000.0);
  const std::int64_t lo = rng.uniform_int(0, std::max<std::int64_t>(1, 1000 - width));
  qry::SpjQuery q;
  q.from.push_back({table, ""});
  q.where = alg::Expr::between(alg::Expr::col("price"), Value(lo), Value(lo + width));
  if (rng.chance(0.5)) {
    q.projection = {"id", "category", "price"};
  }
  return q;
}

qry::SpjQuery random_join_query(const std::vector<std::string>& tables, Rng& rng) {
  if (tables.size() < 2) {
    throw common::InvalidArgument("random_join_query needs >= 2 tables");
  }
  qry::SpjQuery q;
  std::vector<std::string> aliases;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    std::string alias = "t" + std::to_string(i);
    q.from.push_back({tables[i], alias});
    aliases.push_back(std::move(alias));
  }
  std::vector<alg::ExprPtr> conjuncts;
  // Chain equi-joins on category.
  for (std::size_t i = 1; i < aliases.size(); ++i) {
    conjuncts.push_back(alg::Expr::cmp(alg::CmpOp::kEq,
                                       alg::Expr::col(aliases[i - 1] + ".category"),
                                       alg::Expr::col(aliases[i] + ".category")));
  }
  // Per-table price filters to keep join outputs bounded.
  for (const auto& alias : aliases) {
    const std::int64_t lo = rng.uniform_int(0, 700);
    conjuncts.push_back(alg::Expr::between(alg::Expr::col(alias + ".price"), Value(lo),
                                           Value(lo + rng.uniform_int(50, 300))));
  }
  q.where = alg::conjoin(conjuncts);
  q.projection = {aliases[0] + ".id", aliases[0] + ".price", aliases[1] + ".id"};
  return q;
}

}  // namespace cq::testing
