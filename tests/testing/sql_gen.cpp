#include "testing/sql_gen.hpp"

namespace cq::testing {

const char* const kSqlVocabulary[] = {
    "SELECT", "DISTINCT", "FROM",    "WHERE",  "GROUP", "BY",    "AS",     "AND",
    "OR",     "NOT",      "IN",      "LIKE",   "BETWEEN", "IS",  "NULL",   "SUM",
    "COUNT",  "AVG",      "MIN",     "MAX",    "TRUE",  "FALSE", "HAVING", "ORDER",
    "ASC",    "DESC",     "tbl",     "a",      "b.c",   "price", "42",     "3.5",
    "1e309",  "'str'",    "'a''b'",  "(",      ")",     ",",     "*",      "=",
    "<>",     "<",        "<=",      ">",      ">=",    "+",     "-",      "/",
    "'ab%'"};
const std::size_t kSqlVocabularySize = std::size(kSqlVocabulary);

namespace {
std::string token_soup(ByteReader& in, std::size_t max_tokens, const char* prefix) {
  std::string out = prefix;
  const std::size_t len = max_tokens > 0 ? in.index(max_tokens) + 1 : 1;
  for (std::size_t i = 0; i < len && !in.empty(); ++i) {
    if (!out.empty()) out += " ";
    out += kSqlVocabulary[in.index(kSqlVocabularySize)];
  }
  return out;
}
}  // namespace

std::string sql_token_soup(ByteReader& in, std::size_t max_tokens) {
  return token_soup(in, max_tokens, "SELECT");
}

std::string predicate_token_soup(ByteReader& in, std::size_t max_tokens) {
  return token_soup(in, max_tokens, "");
}

}  // namespace cq::testing
