// Shared test/bench helpers: randomized databases, update streams, and
// random SPJ queries, all fully deterministic given a seed.
#pragma once

#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "common/rng.hpp"
#include "query/ast.hpp"

namespace cq::testing {

/// Mix of update kinds, as fractions summing to <= 1 (remainder = inserts).
struct UpdateMix {
  double modify_fraction = 0.3;
  double delete_fraction = 0.2;
};

/// Create table `name` with schema (id INT, category STRING, price INT,
/// qty INT) and fill it with `rows` random rows. Categories are drawn from
/// a small alphabet so joins/selections have controllable selectivity.
void make_stock_table(cat::Database& db, const std::string& name, std::size_t rows,
                      common::Rng& rng, std::int64_t price_lo = 0,
                      std::int64_t price_hi = 1000);

/// Apply `count` random updates to `table` using the given mix, batched
/// into transactions of `txn_size` ops. Tids are picked uniformly from the
/// live set for modify/delete; inserts draw fresh random rows.
void random_updates(cat::Database& db, const std::string& table, std::size_t count,
                    const UpdateMix& mix, common::Rng& rng, std::size_t txn_size = 4);

/// A random single-table selection query over `table` with roughly the
/// given selectivity (price range predicate).
[[nodiscard]] qry::SpjQuery random_selection_query(const std::string& table,
                                                   double selectivity, common::Rng& rng);

/// A random 2- or 3-way equi-join query over the given tables (joined on
/// category), with per-table price filters.
[[nodiscard]] qry::SpjQuery random_join_query(const std::vector<std::string>& tables,
                                              common::Rng& rng);

/// Tids currently live in `table`.
[[nodiscard]] std::vector<rel::TupleId> live_tids(const cat::Database& db,
                                                  const std::string& table);

}  // namespace cq::testing
