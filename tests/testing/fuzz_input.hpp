// ByteReader: turns an arbitrary byte string (a fuzzer input, a corpus
// file, Rng-generated noise) into a deterministic stream of structured
// choices. Exhaustion is not an error — every accessor degrades to zero —
// so any prefix of an input is itself a valid input, which keeps libFuzzer
// minimization and corpus truncation well-behaved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cq::testing {

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  [[nodiscard]] bool empty() const noexcept { return pos_ >= size_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return pos_ < size_ ? size_ - pos_ : 0;
  }

  [[nodiscard]] std::uint8_t u8() noexcept {
    return pos_ < size_ ? data_[pos_++] : 0;
  }

  [[nodiscard]] std::uint32_t u32() noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] std::int64_t i64() noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return static_cast<std::int64_t>(v);
  }

  /// Uniform-ish index in [0, n). n must be > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept { return u8() % n; }

  /// Value in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(static_cast<std::uint64_t>(u32()) % span);
  }

  /// One coin flip per call.
  [[nodiscard]] bool flip() noexcept { return (u8() & 1) != 0; }

  /// Up to max_len bytes as a printable-ish string.
  [[nodiscard]] std::string str(std::size_t max_len) noexcept {
    std::string out;
    const std::size_t len = max_len > 0 ? index(max_len + 1) : 0;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>(' ' + (u8() % 95)));  // printable ASCII
    }
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace cq::testing
