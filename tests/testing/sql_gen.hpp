// Grammar-vocabulary SQL generation, shared by the libFuzzer SQL target
// and the tier-1 parser robustness tests. Token soups drawn from the
// parser's own vocabulary are the worst case for a recursive-descent
// parser: almost-valid prefixes that exercise every error path.
#pragma once

#include <cstddef>
#include <string>

#include "testing/fuzz_input.hpp"

namespace cq::testing {

/// The grammar's own vocabulary: keywords, operators, and a few literals
/// and identifiers. Exposed so fuzz dictionaries and tests stay in sync.
extern const char* const kSqlVocabulary[];
extern const std::size_t kSqlVocabularySize;

/// A SELECT-prefixed token soup of at most `max_tokens` vocabulary tokens.
[[nodiscard]] std::string sql_token_soup(ByteReader& in, std::size_t max_tokens = 32);

/// A predicate-shaped token soup (no SELECT prefix) for parse_predicate.
[[nodiscard]] std::string predicate_token_soup(ByteReader& in,
                                               std::size_t max_tokens = 16);

}  // namespace cq::testing
