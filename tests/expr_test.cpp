#include "algebra/expr.hpp"

#include <gtest/gtest.h>

#include "algebra/predicate.hpp"
#include "common/error.hpp"

namespace cq::alg {
namespace {

using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

const Schema kSchema = Schema::of(
    {{"name", ValueType::kString}, {"price", ValueType::kInt}, {"qty", ValueType::kInt}});
const Tuple kRow({Value("DEC"), Value(150), Value(10)});

TEST(Expr, LiteralAndColumn) {
  EXPECT_EQ(Expr::lit(Value(5))->eval(kRow, kSchema), Value(5));
  EXPECT_EQ(Expr::col("price")->eval(kRow, kSchema), Value(150));
  EXPECT_THROW(Expr::col("missing")->eval(kRow, kSchema), common::NotFound);
  EXPECT_THROW(Expr::col(""), common::InvalidArgument);
}

TEST(Expr, Comparisons) {
  EXPECT_TRUE(Expr::col_cmp("price", CmpOp::kGt, Value(120))->eval_bool(kRow, kSchema));
  EXPECT_FALSE(Expr::col_cmp("price", CmpOp::kLt, Value(120))->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::col_cmp("price", CmpOp::kEq, Value(150))->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::col_cmp("price", CmpOp::kNe, Value(151))->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::col_cmp("price", CmpOp::kGe, Value(150))->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::col_cmp("price", CmpOp::kLe, Value(150))->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::col_cmp("name", CmpOp::kEq, Value("DEC"))->eval_bool(kRow, kSchema));
}

TEST(Expr, ComparisonWithNullIsFalse) {
  const Tuple with_null({Value("DEC"), Value::null(), Value(10)});
  EXPECT_FALSE(Expr::col_cmp("price", CmpOp::kGt, Value(0))->eval_bool(with_null, kSchema));
  EXPECT_FALSE(Expr::col_cmp("price", CmpOp::kEq, Value::null())->eval_bool(kRow, kSchema));
}

TEST(Expr, Arithmetic) {
  const auto sum = Expr::arith(ArithOp::kAdd, Expr::col("price"), Expr::col("qty"));
  EXPECT_EQ(sum->eval(kRow, kSchema), Value(160));
  const auto product = Expr::arith(ArithOp::kMul, Expr::col("qty"), Expr::lit(Value(3)));
  EXPECT_EQ(product->eval(kRow, kSchema), Value(30));
  const auto mixed = Expr::arith(ArithOp::kDiv, Expr::col("price"), Expr::lit(Value(4.0)));
  EXPECT_EQ(mixed->eval(kRow, kSchema), Value(37.5));
}

TEST(Expr, DivisionByZeroIsNull) {
  const auto div = Expr::arith(ArithOp::kDiv, Expr::col("price"), Expr::lit(Value(0)));
  EXPECT_TRUE(div->eval(kRow, kSchema).is_null());
}

TEST(Expr, ArithmeticWithNullIsNull) {
  const auto e = Expr::arith(ArithOp::kAdd, Expr::col("price"), Expr::lit(Value::null()));
  EXPECT_TRUE(e->eval(kRow, kSchema).is_null());
}

TEST(Expr, Logical) {
  const auto t = Expr::always_true();
  const auto f = Expr::lit(Value(false));
  EXPECT_TRUE(Expr::logical_and(t, t)->eval_bool(kRow, kSchema));
  EXPECT_FALSE(Expr::logical_and(t, f)->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::logical_or(f, t)->eval_bool(kRow, kSchema));
  EXPECT_FALSE(Expr::logical_or(f, f)->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::logical_not(f)->eval_bool(kRow, kSchema));
}

TEST(Expr, IsNull) {
  const Tuple with_null({Value::null(), Value(1), Value(2)});
  EXPECT_TRUE(Expr::is_null(Expr::col("name"))->eval_bool(with_null, kSchema));
  EXPECT_FALSE(Expr::is_null(Expr::col("name"))->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::is_null(Expr::col("name"), true)->eval_bool(kRow, kSchema));
}

TEST(Expr, InList) {
  const auto in = Expr::in_list(Expr::col("name"), {Value("IBM"), Value("DEC")});
  EXPECT_TRUE(in->eval_bool(kRow, kSchema));
  const auto not_in =
      Expr::in_list(Expr::col("name"), {Value("IBM")}, /*negated=*/true);
  EXPECT_TRUE(not_in->eval_bool(kRow, kSchema));
}

TEST(Expr, Between) {
  EXPECT_TRUE(Expr::between(Expr::col("price"), Value(100), Value(200))
                  ->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::between(Expr::col("price"), Value(150), Value(150))
                  ->eval_bool(kRow, kSchema));
  EXPECT_FALSE(Expr::between(Expr::col("price"), Value(151), Value(200))
                   ->eval_bool(kRow, kSchema));
}

TEST(Expr, LikePrefix) {
  EXPECT_TRUE(Expr::like_prefix(Expr::col("name"), "DE")->eval_bool(kRow, kSchema));
  EXPECT_FALSE(Expr::like_prefix(Expr::col("name"), "EC")->eval_bool(kRow, kSchema));
  EXPECT_TRUE(Expr::like_prefix(Expr::col("name"), "")->eval_bool(kRow, kSchema));
  // Non-string input never matches.
  EXPECT_FALSE(Expr::like_prefix(Expr::col("price"), "1")->eval_bool(kRow, kSchema));
}

TEST(Expr, CollectColumnsDeduplicated) {
  const auto e = Expr::logical_and(Expr::col_cmp("price", CmpOp::kGt, Value(1)),
                                   Expr::col_cmp("price", CmpOp::kLt, Value(9)));
  EXPECT_EQ(e->columns(), std::vector<std::string>{"price"});
}

TEST(Expr, ResolvesIn) {
  const auto e = Expr::col_cmp("price", CmpOp::kGt, Value(1));
  EXPECT_TRUE(e->resolves_in(kSchema));
  EXPECT_FALSE(e->resolves_in(rel::Schema::of({{"other", ValueType::kInt}})));
}

TEST(Expr, RewriteColumns) {
  // The DRA's old/new substitution: price -> price_old.
  const auto e = Expr::logical_and(Expr::col_cmp("price", CmpOp::kGt, Value(120)),
                                   Expr::col_cmp("name", CmpOp::kEq, Value("DEC")));
  const auto rewritten =
      e->rewrite_columns([](const std::string& c) { return c + "_old"; });
  const auto cols = rewritten->columns();
  EXPECT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "price_old");
  EXPECT_EQ(cols[1], "name_old");
  // Original untouched.
  EXPECT_EQ(e->columns()[0], "price");
}

TEST(Expr, ToStringRoundTripShape) {
  const auto e = Expr::logical_and(Expr::col_cmp("price", CmpOp::kGt, Value(120)),
                                   Expr::like_prefix(Expr::col("name"), "DE"));
  EXPECT_EQ(e->to_string(), "((price > 120) AND name LIKE 'DE%')");
}

TEST(Conjoin, EmptyIsTrue) {
  EXPECT_TRUE(is_always_true(conjoin({})));
  EXPECT_TRUE(is_always_true(conjoin({nullptr, nullptr})));
}

TEST(Conjoin, SingleIsIdentity) {
  const auto e = Expr::col_cmp("price", CmpOp::kGt, Value(1));
  EXPECT_EQ(conjoin({e}), e);
}

TEST(Expr, NullChildrenRejected) {
  EXPECT_THROW(Expr::cmp(CmpOp::kEq, nullptr, Expr::lit(Value(1))),
               common::InvalidArgument);
  EXPECT_THROW(Expr::logical_not(nullptr), common::InvalidArgument);
}

}  // namespace
}  // namespace cq::alg
