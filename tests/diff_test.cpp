#include "cq/diff.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cq::core {
namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::TupleId;
using rel::Value;
using rel::ValueType;

Schema one_col() { return Schema::of({{"x", ValueType::kInt}}); }

Relation rel_of(std::initializer_list<int> xs) {
  Relation r(one_col());
  for (int x : xs) r.append(Tuple({Value(x)}));
  return r;
}

TEST(Diff, BasicInsertDelete) {
  const DiffResult d = diff(rel_of({1, 2, 3}), rel_of({2, 3, 4}));
  EXPECT_EQ(d.inserted.count_value(Tuple({Value(4)})), 1u);
  EXPECT_EQ(d.deleted.count_value(Tuple({Value(1)})), 1u);
  EXPECT_EQ(d.size(), 2u);
}

TEST(Diff, IdenticalRelationsYieldEmpty) {
  const DiffResult d = diff(rel_of({1, 2}), rel_of({2, 1}));
  EXPECT_TRUE(d.empty());
}

TEST(Diff, MultisetMultiplicity) {
  const DiffResult d = diff(rel_of({1, 1, 2}), rel_of({1, 2, 2}));
  EXPECT_EQ(d.inserted.count_value(Tuple({Value(2)})), 1u);
  EXPECT_EQ(d.deleted.count_value(Tuple({Value(1)})), 1u);
}

TEST(DiffResult, ConsolidatedCancelsCommonRows) {
  DiffResult d;
  d.inserted = rel_of({1, 2, 2});
  d.deleted = rel_of({2, 3});
  const DiffResult c = d.consolidated();
  EXPECT_EQ(c.inserted.count_value(Tuple({Value(1)})), 1u);
  EXPECT_EQ(c.inserted.count_value(Tuple({Value(2)})), 1u);
  EXPECT_EQ(c.deleted.count_value(Tuple({Value(3)})), 1u);
  EXPECT_EQ(c.deleted.count_value(Tuple({Value(2)})), 0u);
}

TEST(DiffResult, EquivalenceIsConsolidationAware) {
  DiffResult a;
  a.inserted = rel_of({1, 5});
  a.deleted = rel_of({5});
  DiffResult b;
  b.inserted = rel_of({1});
  b.deleted = rel_of({});
  EXPECT_TRUE(a.equivalent(b));
  DiffResult c;
  c.inserted = rel_of({2});
  c.deleted = rel_of({});
  EXPECT_FALSE(a.equivalent(c));
}

TEST(ApplyDiff, PatchesResult) {
  const DiffResult d = diff(rel_of({1, 2, 3}), rel_of({2, 3, 4}));
  const Relation patched = apply_diff(rel_of({1, 2, 3}), d);
  EXPECT_TRUE(patched.equal_multiset(rel_of({2, 3, 4})));
}

TEST(ApplyDiff, MissingDeletedRowThrows) {
  DiffResult d;
  d.inserted = rel_of({});
  d.deleted = rel_of({42});
  EXPECT_THROW(apply_diff(rel_of({1}), d), common::InternalError);
}

TEST(Classify, SplitsByTid) {
  DiffResult d;
  d.inserted = Relation(one_col());
  d.deleted = Relation(one_col());
  // tid 7 on both sides: a modification.
  d.deleted.append(Tuple({Value(150)}, TupleId(7)));
  d.inserted.append(Tuple({Value(149)}, TupleId(7)));
  // tid 8 only deleted; tid-less row only inserted.
  d.deleted.append(Tuple({Value(1)}, TupleId(8)));
  d.inserted.append(Tuple({Value(2)}));

  const ClassifiedDiff c = classify(d);
  ASSERT_EQ(c.modified.size(), 1u);
  EXPECT_EQ(c.modified[0].first.at(0), Value(150));
  EXPECT_EQ(c.modified[0].second.at(0), Value(149));
  EXPECT_EQ(c.pure_deletions.size(), 1u);
  EXPECT_EQ(c.pure_insertions.size(), 1u);
}

}  // namespace
}  // namespace cq::core
