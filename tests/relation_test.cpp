#include "relation/relation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "relation/index.hpp"

namespace cq::rel {
namespace {

Schema two_cols() {
  return Schema::of({{"k", ValueType::kInt}, {"v", ValueType::kString}});
}

TEST(Relation, InsertEraseUpdateByTid) {
  Relation r(two_cols());
  const TupleId a = r.insert_values({Value(1), Value("one")});
  const TupleId b = r.insert_values({Value(2), Value("two")});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.contains(a));
  ASSERT_NE(r.find(b), nullptr);
  EXPECT_EQ(r.find(b)->at(1).as_string(), "two");

  const Tuple old = r.update(b, {Value(2), Value("deux")});
  EXPECT_EQ(old.at(1).as_string(), "two");
  EXPECT_EQ(r.find(b)->at(1).as_string(), "deux");

  const Tuple removed = r.erase(a);
  EXPECT_EQ(removed.at(0).as_int(), 1);
  EXPECT_FALSE(r.contains(a));
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, EraseKeepsIndexConsistent) {
  Relation r(two_cols());
  std::vector<TupleId> tids;
  for (int i = 0; i < 10; ++i) tids.push_back(r.insert_values({Value(i), Value("x")}));
  r.erase(tids[0]);  // swap-and-pop moves the last row into slot 0
  for (int i = 1; i < 10; ++i) {
    ASSERT_NE(r.find(tids[i]), nullptr);
    EXPECT_EQ(r.find(tids[i])->at(0).as_int(), i);
  }
}

TEST(Relation, DuplicateTidRejected) {
  Relation r(two_cols());
  r.insert(Tuple({Value(1), Value("a")}, TupleId(7)));
  EXPECT_THROW(r.insert(Tuple({Value(2), Value("b")}, TupleId(7))),
               common::InvalidArgument);
}

TEST(Relation, ArityChecked) {
  Relation r(two_cols());
  EXPECT_THROW(r.insert_values({Value(1)}), common::SchemaMismatch);
  EXPECT_THROW(r.append(Tuple({Value(1), Value("a"), Value(2)})),
               common::SchemaMismatch);
}

TEST(Relation, EraseMissingThrows) {
  Relation r(two_cols());
  EXPECT_THROW(r.erase(TupleId(99)), common::NotFound);
  EXPECT_THROW(r.update(TupleId(99), {Value(1), Value("a")}), common::NotFound);
}

TEST(Relation, MultisetAppendAllowsDuplicates) {
  Relation r(two_cols());
  r.append(Tuple({Value(1), Value("a")}));
  r.append(Tuple({Value(1), Value("a")}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.count_value(Tuple({Value(1), Value("a")})), 2u);
}

TEST(Relation, RemoveOneByValue) {
  Relation r(two_cols());
  r.append(Tuple({Value(1), Value("a")}));
  r.append(Tuple({Value(1), Value("a")}));
  EXPECT_TRUE(r.remove_one_by_value(Tuple({Value(1), Value("a")})));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.remove_one_by_value(Tuple({Value(9), Value("z")})));
}

TEST(Relation, EqualMultisetIgnoresOrderAndTids) {
  Relation a(two_cols());
  Relation b(two_cols());
  a.insert_values({Value(1), Value("x")});
  a.insert_values({Value(2), Value("y")});
  b.append(Tuple({Value(2), Value("y")}));
  b.append(Tuple({Value(1), Value("x")}));
  EXPECT_TRUE(a.equal_multiset(b));
  b.append(Tuple({Value(1), Value("x")}));
  EXPECT_FALSE(a.equal_multiset(b));
}

TEST(Relation, EqualMultisetRespectsMultiplicity) {
  Relation a(two_cols());
  Relation b(two_cols());
  a.append(Tuple({Value(1), Value("x")}));
  a.append(Tuple({Value(1), Value("x")}));
  a.append(Tuple({Value(2), Value("y")}));
  b.append(Tuple({Value(1), Value("x")}));
  b.append(Tuple({Value(2), Value("y")}));
  b.append(Tuple({Value(2), Value("y")}));
  EXPECT_FALSE(a.equal_multiset(b));
}

TEST(Relation, SortedRowsDeterministic) {
  Relation r(two_cols());
  r.insert_values({Value(3), Value("c")});
  r.insert_values({Value(1), Value("a")});
  r.insert_values({Value(2), Value("b")});
  const auto sorted = r.sorted_rows();
  EXPECT_EQ(sorted[0].at(0).as_int(), 1);
  EXPECT_EQ(sorted[1].at(0).as_int(), 2);
  EXPECT_EQ(sorted[2].at(0).as_int(), 3);
}

TEST(TupleBag, CountsAndCancels) {
  TupleBag bag;
  const Tuple t({Value(1), Value("a")});
  bag.add(t, +2);
  EXPECT_EQ(bag.count(t), 2);
  bag.add(t, -2);
  EXPECT_EQ(bag.count(t), 0);
  EXPECT_TRUE(bag.all_zero());
}

TEST(TupleBag, IgnoresTids) {
  TupleBag bag;
  bag.add(Tuple({Value(1)}, TupleId(5)), +1);
  bag.add(Tuple({Value(1)}, TupleId(9)), -1);
  EXPECT_TRUE(bag.all_zero());
}

TEST(HashIndex, ProbesByKey) {
  Relation r(two_cols());
  r.insert_values({Value(1), Value("a")});
  r.insert_values({Value(2), Value("b")});
  r.insert_values({Value(1), Value("c")});
  HashIndex idx(r, {0});
  const Tuple probe({Value(1), Value("zzz")});
  EXPECT_EQ(idx.probe(probe, {0}).size(), 2u);
  const Tuple miss({Value(42), Value("zzz")});
  EXPECT_TRUE(idx.probe(miss, {0}).empty());
  EXPECT_EQ(idx.distinct_keys(), 2u);
}

TEST(HashIndex, CompositeKey) {
  Relation r(two_cols());
  r.insert_values({Value(1), Value("a")});
  r.insert_values({Value(1), Value("b")});
  HashIndex idx(r, {0, 1});
  EXPECT_EQ(idx.probe(Tuple({Value(1), Value("a")}), {0, 1}).size(), 1u);
}

TEST(Tuple, ConcatAndProject) {
  const Tuple a({Value(1), Value("x")});
  const Tuple b({Value(2.5)});
  const Tuple c = a.concat(b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(2).as_double(), 2.5);
  const Tuple p = c.project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0).as_double(), 2.5);
  EXPECT_EQ(p.at(1).as_int(), 1);
}

}  // namespace
}  // namespace cq::rel
