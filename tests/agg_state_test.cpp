// Property: AggregateState maintained through a stream of diffs always
// equals alg::group_aggregate over the current SPJ result.
#include "cq/agg_state.hpp"

#include <gtest/gtest.h>

#include "algebra/aggregate.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "cq/diff.hpp"

namespace cq::core {
namespace {

using alg::AggKind;
using alg::AggSpec;
using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

Schema sales_schema() {
  return Schema::of({{"region", ValueType::kString}, {"amount", ValueType::kInt}});
}

Tuple row(const char* region, int amount) {
  return Tuple({Value(region), Value(amount)});
}

std::vector<AggSpec> all_specs() {
  return {{AggKind::kSum, "amount", "s"},
          {AggKind::kCount, "*", "n"},
          {AggKind::kAvg, "amount", "a"},
          {AggKind::kMin, "amount", "lo"},
          {AggKind::kMax, "amount", "hi"}};
}

TEST(AggregateState, MatchesGroupAggregateAfterInit) {
  Relation base(sales_schema());
  base.append(row("e", 10));
  base.append(row("e", 20));
  base.append(row("w", 5));
  AggregateState state(sales_schema(), {"region"}, all_specs());
  state.initialize(base);
  const Relation expect = alg::group_aggregate(base, {"region"}, all_specs());
  EXPECT_TRUE(state.current().equal_multiset(expect));
}

TEST(AggregateState, InsertAndDeleteUpdateAllAggregates) {
  Relation base(sales_schema());
  base.append(row("e", 10));
  base.append(row("e", 20));
  AggregateState state(sales_schema(), {"region"}, all_specs());
  state.initialize(base);

  DiffResult d;
  d.inserted = Relation(sales_schema());
  d.deleted = Relation(sales_schema());
  d.inserted.append(row("e", 30));
  d.deleted.append(row("e", 10));
  state.apply(d);

  Relation now(sales_schema());
  now.append(row("e", 20));
  now.append(row("e", 30));
  EXPECT_TRUE(
      state.current().equal_multiset(alg::group_aggregate(now, {"region"}, all_specs())));
}

TEST(AggregateState, MinMaxSurviveExtremumDeletion) {
  Relation base(sales_schema());
  base.append(row("e", 10));
  base.append(row("e", 20));
  base.append(row("e", 30));
  AggregateState state(sales_schema(), {"region"},
                       {{AggKind::kMin, "amount", "lo"}, {AggKind::kMax, "amount", "hi"}});
  state.initialize(base);

  DiffResult d;
  d.inserted = Relation(sales_schema());
  d.deleted = Relation(sales_schema());
  d.deleted.append(row("e", 30));  // remove the max
  d.deleted.append(row("e", 10));  // remove the min
  state.apply(d);

  const Relation out = state.current();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.row(0).at(1), Value(20));  // new min
  EXPECT_EQ(out.row(0).at(2), Value(20));  // new max
}

TEST(AggregateState, GroupDisappearsAtZeroRows) {
  Relation base(sales_schema());
  base.append(row("e", 10));
  base.append(row("w", 5));
  AggregateState state(sales_schema(), {"region"}, {{AggKind::kSum, "amount", "s"}});
  state.initialize(base);
  DiffResult d;
  d.inserted = Relation(sales_schema());
  d.deleted = Relation(sales_schema());
  d.deleted.append(row("w", 5));
  state.apply(d);
  EXPECT_EQ(state.current().size(), 1u);
}

TEST(AggregateState, ScalarAccessor) {
  Relation base(sales_schema());
  base.append(row("e", 10));
  base.append(row("w", 5));
  AggregateState state(sales_schema(), {}, {{AggKind::kSum, "amount", "s"}});
  state.initialize(base);
  EXPECT_EQ(state.scalar(), Value(15));

  AggregateState empty(sales_schema(), {}, {{AggKind::kSum, "amount", "s"}});
  empty.initialize(Relation(sales_schema()));
  EXPECT_TRUE(empty.scalar().is_null());

  AggregateState counted(sales_schema(), {}, {{AggKind::kCount, "*", "n"}});
  counted.initialize(Relation(sales_schema()));
  EXPECT_EQ(counted.scalar(), Value(0));
}

TEST(AggregateState, ScalarRequiresSingleUngroupedAggregate) {
  AggregateState state(sales_schema(), {"region"}, {{AggKind::kSum, "amount", "s"}});
  EXPECT_THROW(static_cast<void>(state.scalar()), common::InvalidArgument);
}

TEST(AggregateState, InconsistentDeletionThrows) {
  AggregateState state(sales_schema(), {"region"}, {{AggKind::kSum, "amount", "s"}});
  state.initialize(Relation(sales_schema()));
  DiffResult d;
  d.inserted = Relation(sales_schema());
  d.deleted = Relation(sales_schema());
  d.deleted.append(row("ghost", 1));
  EXPECT_THROW(state.apply(d), common::InternalError);
}

TEST(AggregateState, NullInputsSkipped) {
  Relation base(sales_schema());
  base.append(Tuple({Value("e"), Value::null()}));
  base.append(row("e", 10));
  AggregateState state(sales_schema(), {"region"}, all_specs());
  state.initialize(base);
  const Relation expect = alg::group_aggregate(base, {"region"}, all_specs());
  EXPECT_TRUE(state.current().equal_multiset(expect));
}

/// Randomized property sweep: apply K random diffs, compare with recompute.
class AggStateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggStateSweep, AlwaysMatchesRecompute) {
  common::Rng rng(GetParam());
  const Schema schema = sales_schema();
  const char* regions[] = {"a", "b", "c"};

  Relation current(schema);
  for (int i = 0; i < 30; ++i) {
    current.append(row(regions[rng.index(3)], static_cast<int>(rng.uniform_int(0, 50))));
  }
  AggregateState state(schema, {"region"}, all_specs());
  state.initialize(current);

  for (int round = 0; round < 20; ++round) {
    DiffResult d;
    d.inserted = Relation(schema);
    d.deleted = Relation(schema);
    const std::size_t dels = rng.index(std::min<std::size_t>(current.size() + 1, 5));
    for (std::size_t i = 0; i < dels; ++i) {
      if (current.empty()) break;
      const Tuple victim = current.row(rng.index(current.size()));
      Tuple copy(victim.values());
      current.remove_one_by_value(copy);
      d.deleted.append(std::move(copy));
    }
    const std::size_t adds = rng.index(5);
    for (std::size_t i = 0; i < adds; ++i) {
      Tuple t = row(regions[rng.index(3)], static_cast<int>(rng.uniform_int(0, 50)));
      current.append(t);
      d.inserted.append(std::move(t));
    }
    state.apply(d);
    ASSERT_TRUE(state.current().equal_multiset(
        alg::group_aggregate(current, {"region"}, all_specs())))
        << "seed=" << GetParam() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Randomized, AggStateSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cq::core
