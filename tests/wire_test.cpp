#include "diom/wire.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cq::diom {
namespace {

// Keeps corruption-fuzz results observable so nothing is optimized away.
std::size_t benchmark_sink_ = 0;

using common::Timestamp;
using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::TupleId;
using rel::Value;
using rel::ValueType;

Schema mixed_schema() {
  return Schema::of({{"i", ValueType::kInt},
                     {"d", ValueType::kDouble},
                     {"s", ValueType::kString},
                     {"b", ValueType::kBool}});
}

TEST(Wire, ValueRoundTripAllTypes) {
  Encoder enc;
  enc.put_value(Value::null());
  enc.put_value(Value(true));
  enc.put_value(Value(-42));
  enc.put_value(Value(3.25));
  enc.put_value(Value("hello"));
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_value().is_null());
  EXPECT_EQ(dec.get_value(), Value(true));
  EXPECT_EQ(dec.get_value(), Value(-42));
  EXPECT_EQ(dec.get_value(), Value(3.25));
  EXPECT_EQ(dec.get_value(), Value("hello"));
  EXPECT_TRUE(dec.done());
}

TEST(Wire, RelationRoundTrip) {
  Relation r(mixed_schema());
  r.insert(Tuple({Value(1), Value(1.5), Value("a"), Value(true)}, TupleId(10)));
  r.insert(Tuple({Value(2), Value::null(), Value(""), Value(false)}, TupleId(20)));
  const Bytes payload = encode_relation(r);
  const Relation back = decode_relation(payload, r.schema());
  EXPECT_TRUE(r.equal_multiset(back));
  // Tids survive the trip.
  EXPECT_NE(back.find(TupleId(10)), nullptr);
}

TEST(Wire, EmptyRelation) {
  const Relation r(mixed_schema());
  const Relation back = decode_relation(encode_relation(r), r.schema());
  EXPECT_TRUE(back.empty());
}

TEST(Wire, DeltaRoundTripAllKinds) {
  std::vector<delta::DeltaRow> rows;
  rows.push_back({TupleId(1), std::nullopt,
                  std::vector<Value>{Value(1), Value(0.5), Value("x"), Value(true)},
                  Timestamp(5)});
  rows.push_back({TupleId(2),
                  std::vector<Value>{Value(2), Value(1.5), Value("y"), Value(false)},
                  std::nullopt, Timestamp(6)});
  rows.push_back({TupleId(3),
                  std::vector<Value>{Value(3), Value(2.5), Value("z"), Value(true)},
                  std::vector<Value>{Value(3), Value(9.5), Value("z"), Value(true)},
                  Timestamp(7)});
  const Bytes payload = encode_deltas(rows);
  const auto back = decode_deltas(payload, 4);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].kind(), delta::ChangeKind::kInsert);
  EXPECT_EQ(back[1].kind(), delta::ChangeKind::kDelete);
  EXPECT_EQ(back[2].kind(), delta::ChangeKind::kModify);
  EXPECT_EQ(back[2].ts, Timestamp(7));
  EXPECT_EQ((*back[2].new_values)[1], Value(9.5));
}

TEST(Wire, TruncatedMessageThrows) {
  Relation r(mixed_schema());
  r.insert_values({Value(1), Value(1.5), Value("abc"), Value(true)});
  Bytes payload = encode_relation(r);
  payload.resize(payload.size() - 3);
  EXPECT_THROW(static_cast<void>(decode_relation(payload, r.schema())),
               common::InvalidArgument);
}

TEST(Wire, TrailingBytesThrow) {
  const Relation r(mixed_schema());
  Bytes payload = encode_relation(r);
  payload.push_back(0xff);
  EXPECT_THROW(static_cast<void>(decode_relation(payload, r.schema())),
               common::InvalidArgument);
}

TEST(Wire, DeltaArityMismatchThrows) {
  std::vector<delta::DeltaRow> rows;
  rows.push_back({TupleId(1), std::nullopt, std::vector<Value>{Value(1)}, Timestamp(1)});
  const Bytes payload = encode_deltas(rows);
  EXPECT_THROW(static_cast<void>(decode_deltas(payload, 4)), common::InvalidArgument);
}

TEST(Wire, DeltaBytesSmallerThanSnapshotForSmallChanges) {
  // The quantitative heart of the paper's network argument: encoding a few
  // delta rows must cost far less than re-encoding the whole relation.
  Relation r(mixed_schema());
  for (int i = 0; i < 1000; ++i) {
    r.insert_values({Value(i), Value(i * 0.5), Value("payload-" + std::to_string(i)),
                     Value(i % 2 == 0)});
  }
  std::vector<delta::DeltaRow> few;
  for (int i = 0; i < 10; ++i) {
    few.push_back({TupleId(static_cast<unsigned>(i + 1)), std::nullopt,
                   std::vector<Value>{Value(i), Value(0.0), Value("new"), Value(true)},
                   Timestamp(i)});
  }
  EXPECT_LT(encode_deltas(few).size() * 10, encode_relation(r).size());
}

TEST(Wire, RandomCorruptionNeverCrashes) {
  // Flip/truncate bytes of valid payloads at random; decoding must either
  // succeed (benign flips) or throw a typed error — never crash or hang.
  Relation r(mixed_schema());
  for (int i = 0; i < 50; ++i) {
    r.insert_values({Value(i), Value(i * 0.25), Value("row" + std::to_string(i)),
                     Value(i % 2 == 0)});
  }
  const Bytes original = encode_relation(r);
  common::Rng rng(0xc0442);
  for (int round = 0; round < 2000; ++round) {
    Bytes payload = original;
    const std::size_t mutations = 1 + rng.index(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      if (rng.chance(0.3) && !payload.empty()) {
        payload.resize(rng.index(payload.size()));  // truncate
      } else if (!payload.empty()) {
        payload[rng.index(payload.size())] = static_cast<std::uint8_t>(rng.next());
      }
    }
    try {
      const Relation decoded = decode_relation(payload, r.schema());
      benchmark_sink_ += decoded.size();  // use the result
    } catch (const common::Error&) {
    } catch (const std::bad_alloc&) {
      // A corrupted length prefix may request a huge (but bounded by the
      // decoder's truncation check) allocation; must not happen.
      FAIL() << "decoder attempted oversized allocation";
    }
  }
}

TEST(Wire, DeltaCorruptionNeverCrashes) {
  std::vector<delta::DeltaRow> rows;
  for (int i = 1; i <= 30; ++i) {
    rows.push_back({TupleId(static_cast<unsigned>(i)),
                    std::vector<Value>{Value(i), Value(0.5), Value("x"), Value(true)},
                    std::vector<Value>{Value(i), Value(1.5), Value("y"), Value(false)},
                    Timestamp(i)});
  }
  const Bytes original = encode_deltas(rows);
  common::Rng rng(0xc0443);
  for (int round = 0; round < 2000; ++round) {
    Bytes payload = original;
    if (rng.chance(0.4) && !payload.empty()) payload.resize(rng.index(payload.size()));
    if (!payload.empty()) {
      payload[rng.index(payload.size())] = static_cast<std::uint8_t>(rng.next());
    }
    try {
      const auto decoded = decode_deltas(payload, 4);
      benchmark_sink_ += decoded.size();
    } catch (const common::Error&) {
    }
  }
}

}  // namespace
}  // namespace cq::diom
