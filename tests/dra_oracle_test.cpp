// The paper's central theorem (Section 4.2): the DRA is functionally
// equivalent to the complete re-evaluation solution (Propagate). These
// property tests exercise that equivalence over randomized databases,
// update mixes, and query shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include "cq/dra.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"
#include "testing/dra_script.hpp"
#include "testing/random_db.hpp"

namespace cq {
namespace {

using core::DiffResult;
using core::DraOptions;
using core::DraStats;

/// Run one randomized round: build DB, snapshot result, update, and check
/// DRA == Propagate.
void check_equivalence(std::uint64_t seed, std::size_t base_rows, std::size_t updates,
                       const testing::UpdateMix& mix, bool join_query,
                       const DraOptions& options = {}) {
  common::Rng rng(seed);
  cat::Database db;
  testing::make_stock_table(db, "S", base_rows, rng);
  testing::make_stock_table(db, "T", base_rows / 2 + 1, rng);

  qry::SpjQuery query = join_query
                            ? testing::random_join_query({"S", "T"}, rng)
                            : testing::random_selection_query("S", 0.3, rng);

  const rel::Relation before = core::recompute(query, db);
  const common::Timestamp t0 = db.clock().now();

  testing::random_updates(db, "S", updates, mix, rng);
  if (join_query) testing::random_updates(db, "T", updates / 2, mix, rng);

  DraStats stats;
  const DiffResult via_dra =
      core::dra_differential(query, db, t0, nullptr, options, &stats);
  const DiffResult via_oracle = core::propagate(query, db, before);

  EXPECT_TRUE(via_dra.equivalent(via_oracle))
      << "seed=" << seed << " dra=" << via_dra.to_string()
      << " oracle=" << via_oracle.to_string();

  // Applying the DRA diff to the old result must reproduce the new result.
  const rel::Relation after = core::recompute(query, db);
  const rel::Relation patched = core::apply_diff(before, via_dra.consolidated());
  EXPECT_TRUE(patched.equal_multiset(after)) << "seed=" << seed;
}

TEST(DraOracle, SelectionInsertOnly) {
  check_equivalence(1, 200, 60, {.modify_fraction = 0, .delete_fraction = 0}, false);
}

TEST(DraOracle, SelectionMixedUpdates) {
  check_equivalence(2, 200, 80, {.modify_fraction = 0.4, .delete_fraction = 0.3}, false);
}

TEST(DraOracle, SelectionDeleteHeavy) {
  check_equivalence(3, 300, 150, {.modify_fraction = 0.1, .delete_fraction = 0.8}, false);
}

TEST(DraOracle, JoinInsertOnly) {
  check_equivalence(4, 120, 40, {.modify_fraction = 0, .delete_fraction = 0}, true);
}

TEST(DraOracle, JoinMixedUpdates) {
  check_equivalence(5, 120, 60, {.modify_fraction = 0.35, .delete_fraction = 0.25}, true);
}

TEST(DraOracle, JoinNestedLoopAblation) {
  check_equivalence(6, 80, 40, {.modify_fraction = 0.3, .delete_fraction = 0.3}, true,
                    DraOptions{.use_hash_join = false});
}

TEST(DraOracle, NoIrrelevanceCheck) {
  check_equivalence(7, 150, 70, {.modify_fraction = 0.3, .delete_fraction = 0.3}, false,
                    DraOptions{.irrelevance_check = false});
}

/// Parameterized sweep across seeds and mixes — the main property test.
struct SweepParam {
  std::uint64_t seed;
  bool join;
  double modify;
  double erase;
};

class DraSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DraSweep, MatchesOracle) {
  const auto& p = GetParam();
  check_equivalence(p.seed, p.join ? 90 : 250, p.join ? 50 : 100,
                    {.modify_fraction = p.modify, .delete_fraction = p.erase}, p.join);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  std::uint64_t seed = 100;
  for (bool join : {false, true}) {
    for (double modify : {0.0, 0.3, 0.6}) {
      for (double erase : {0.0, 0.25, 0.5}) {
        out.push_back({seed++, join, modify, erase});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Randomized, DraSweep, ::testing::ValuesIn(sweep_params()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           const auto& p = info.param;
                           return (p.join ? std::string("join") : std::string("sel")) +
                                  "_s" + std::to_string(p.seed) + "_m" +
                                  std::to_string(static_cast<int>(p.modify * 100)) +
                                  "_d" + std::to_string(static_cast<int>(p.erase * 100));
                         });

/// Three-way join, all three relations changing: exercises the full
/// 2^3 − 1 = 7-term truth table.
TEST(DraOracle, ThreeWayJoinAllChanged) {
  common::Rng rng(42);
  cat::Database db;
  testing::make_stock_table(db, "A", 60, rng);
  testing::make_stock_table(db, "B", 60, rng);
  testing::make_stock_table(db, "C", 60, rng);
  qry::SpjQuery query = testing::random_join_query({"A", "B", "C"}, rng);

  const rel::Relation before = core::recompute(query, db);
  const common::Timestamp t0 = db.clock().now();
  const testing::UpdateMix mix{.modify_fraction = 0.3, .delete_fraction = 0.3};
  testing::random_updates(db, "A", 30, mix, rng);
  testing::random_updates(db, "B", 30, mix, rng);
  testing::random_updates(db, "C", 30, mix, rng);

  DraStats stats;
  const DiffResult via_dra = core::dra_differential(query, db, t0, nullptr, {}, &stats);
  const DiffResult via_oracle = core::propagate(query, db, before);
  EXPECT_TRUE(via_dra.equivalent(via_oracle))
      << " dra=" << via_dra.to_string() << " oracle=" << via_oracle.to_string();
  EXPECT_EQ(stats.changed_relations, 3u);
  EXPECT_LE(stats.terms_evaluated, 7u);
}

/// SQL-parsed query end to end.
TEST(DraOracle, SqlParsedQuery) {
  common::Rng rng(77);
  cat::Database db;
  testing::make_stock_table(db, "Stocks", 200, rng);
  const qry::SpjQuery query =
      qry::parse_query("SELECT id, price FROM Stocks WHERE price > 600");

  const rel::Relation before = core::recompute(query, db);
  const common::Timestamp t0 = db.clock().now();
  testing::random_updates(db, "Stocks", 90,
                          {.modify_fraction = 0.4, .delete_fraction = 0.3}, rng);

  const DiffResult via_dra = core::dra_differential(query, db, t0);
  const DiffResult via_oracle = core::propagate(query, db, before);
  EXPECT_TRUE(via_dra.equivalent(via_oracle));
}

/// No updates => empty diff and zero terms evaluated.
TEST(DraOracle, NoUpdatesNoWork) {
  common::Rng rng(88);
  cat::Database db;
  testing::make_stock_table(db, "S", 100, rng);
  const qry::SpjQuery query = testing::random_selection_query("S", 0.5, rng);
  const common::Timestamp t0 = db.clock().now();

  DraStats stats;
  const DiffResult d = core::dra_differential(query, db, t0, nullptr, {}, &stats);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(stats.terms_evaluated, 0u);
  EXPECT_EQ(stats.changed_relations, 0u);
}

/// Updates that cannot affect the result are skipped entirely (Section 5.2).
TEST(DraOracle, IrrelevantUpdatesSkipped) {
  cat::Database db;
  db.create_table("S", rel::Schema::of({{"id", rel::ValueType::kInt},
                                        {"price", rel::ValueType::kInt}}));
  for (int i = 0; i < 50; ++i) {
    db.insert("S", {rel::Value(i), rel::Value(i * 10)});
  }
  const qry::SpjQuery query = qry::parse_query("SELECT * FROM S WHERE price > 10000");
  const common::Timestamp t0 = db.clock().now();
  // All inserts fall far below the predicate threshold.
  for (int i = 0; i < 20; ++i) {
    db.insert("S", {rel::Value(1000 + i), rel::Value(5)});
  }
  DraStats stats;
  const DiffResult d = core::dra_differential(query, db, t0, nullptr, {}, &stats);
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(stats.skipped_irrelevant);
  EXPECT_EQ(stats.terms_evaluated, 0u);
}

/// The byte-script interpreter shared with fuzz/fuzz_dra_oracle.cpp, driven
/// here by Rng noise: every script must leave the DRA and recompute
/// pipelines in agreement (tuples, trigger firing, suppression, stats).
TEST(DraOracle, ByteScriptedCqPipelinesAgree) {
  common::Rng rng(0xd5a0);
  std::size_t total_commits = 0;
  std::size_t total_executions = 0;
  for (int round = 0; round < 60; ++round) {
    std::vector<std::uint8_t> script(256 + rng.index(512));
    for (auto& b : script) b = static_cast<std::uint8_t>(rng.index(256));
    const testing::DraScriptReport report =
        testing::run_dra_oracle_script(script.data(), script.size());
    ASSERT_TRUE(report.ok) << "round " << round << ": " << report.message;
    total_commits += report.commits;
    total_executions += report.executions;
  }
  // The scripts must actually exercise the pipelines, not bail out early.
  EXPECT_GT(total_commits, 100u);
  EXPECT_GT(total_executions, 60u);
}

/// Parallel lane: the same byte scripts evaluated sequentially and with a
/// 4-lane pool must deliver byte-identical notification streams (the
/// engine's determinism contract, checked via DraScriptReport::digest).
TEST(DraOracle, ParallelEvaluationIsByteIdentical) {
  common::Rng rng(0xbeef);
  std::size_t nonempty_digests = 0;
  for (int round = 0; round < 40; ++round) {
    std::vector<std::uint8_t> script(256 + rng.index(512));
    for (auto& b : script) b = static_cast<std::uint8_t>(rng.index(256));

    const testing::DraScriptReport seq =
        testing::run_dra_oracle_script(script.data(), script.size(),
                                       {.eval_threads = 1});
    const testing::DraScriptReport par =
        testing::run_dra_oracle_script(script.data(), script.size(),
                                       {.eval_threads = 4});
    ASSERT_TRUE(seq.ok) << "round " << round << ": " << seq.message;
    ASSERT_TRUE(par.ok) << "round " << round << ": " << par.message;
    EXPECT_EQ(seq.commits, par.commits) << "round " << round;
    EXPECT_EQ(seq.executions, par.executions) << "round " << round;
    ASSERT_EQ(seq.digest, par.digest) << "round " << round;
    if (!seq.digest.empty()) ++nonempty_digests;
  }
  EXPECT_GT(nonempty_digests, 20u);  // the lane must compare real output
}

/// Replay the full checked-in dra_oracle corpus (seeds + promoted
/// crashers) in both thread modes: every historical input must keep the
/// sequential byte-stream when pooled.
TEST(DraOracle, CorpusReplayIsByteIdenticalAcrossThreadCounts) {
  namespace fs = std::filesystem;
  std::size_t replayed = 0;
  for (const char* kind : {"corpus", "regressions"}) {
    const fs::path dir = fs::path(CQ_FUZZ_DIR) / kind / "dra_oracle";
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().filename().string()[0] != '.') {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      SCOPED_TRACE(file.string());
      std::ifstream in(file, std::ios::binary);
      std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
      const testing::DraScriptReport seq =
          testing::run_dra_oracle_script(data, bytes.size(), {.eval_threads = 1});
      const testing::DraScriptReport par =
          testing::run_dra_oracle_script(data, bytes.size(), {.eval_threads = 4});
      ASSERT_TRUE(seq.ok) << seq.message;
      ASSERT_TRUE(par.ok) << par.message;
      ASSERT_EQ(seq.digest, par.digest);
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 0u);
}

/// Lineage lane: with provenance collection on, sequential and 4-lane runs
/// must agree on every delivered row's provenance set, bit for bit — the
/// digest appends each row's sorted (relation, txn, seq) citations. The
/// interpreter additionally cross-checks every citation against the DRA
/// database's delta log (a dangling citation flips report.ok).
TEST(DraOracle, LineageIsByteIdenticalAcrossThreadCounts) {
  common::Rng rng(0x11ea);
  std::size_t cited = 0;
  for (int round = 0; round < 30; ++round) {
    std::vector<std::uint8_t> script(256 + rng.index(512));
    for (auto& b : script) b = static_cast<std::uint8_t>(rng.index(256));

    const testing::DraScriptReport seq = testing::run_dra_oracle_script(
        script.data(), script.size(), {.eval_threads = 1, .lineage = true});
    const testing::DraScriptReport par = testing::run_dra_oracle_script(
        script.data(), script.size(), {.eval_threads = 4, .lineage = true});
    ASSERT_TRUE(seq.ok) << "round " << round << ": " << seq.message;
    ASSERT_TRUE(par.ok) << "round " << round << ": " << par.message;
    ASSERT_EQ(seq.digest, par.digest) << "round " << round;
    for (std::size_t p = seq.digest.find("prov{"); p != std::string::npos;
         p = seq.digest.find("prov{", p + 1)) {
      if (p + 5 < seq.digest.size() && seq.digest[p + 5] != '}') {
        ++cited;
        break;
      }
    }
  }
  EXPECT_GT(cited, 10u);  // the lane must compare real, non-empty citations
}

/// The default-config overload is the --threads 1 byte-stream: the digest
/// of a sequential run through the config'd entry point must match it.
TEST(DraOracle, ConfigDefaultMatchesLegacyEntryPoint) {
  common::Rng rng(0x5151);
  std::vector<std::uint8_t> script(640);
  for (auto& b : script) b = static_cast<std::uint8_t>(rng.index(256));
  const testing::DraScriptReport a =
      testing::run_dra_oracle_script(script.data(), script.size());
  const testing::DraScriptReport b =
      testing::run_dra_oracle_script(script.data(), script.size(), {});
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.commits, b.commits);
}

}  // namespace
}  // namespace cq
