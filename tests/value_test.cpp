#include "relation/value.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/error.hpp"

namespace cq::rel {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v, Value::null());
}

TEST(Value, TypedConstructionAndAccess) {
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(std::int64_t{42}).as_int(), 42);
  EXPECT_EQ(Value(7).as_int(), 7);  // int promotes to int64
  EXPECT_DOUBLE_EQ(Value(3.5).as_double(), 3.5);
  EXPECT_EQ(Value("abc").as_string(), "abc");
  EXPECT_EQ(Value(std::string("xyz")).as_string(), "xyz");
}

TEST(Value, WrongTypeAccessThrows) {
  EXPECT_THROW(Value(1).as_bool(), common::InvalidArgument);
  EXPECT_THROW(Value("s").as_int(), common::InvalidArgument);
  EXPECT_THROW(Value(true).as_double(), common::InvalidArgument);
  EXPECT_THROW(Value(1.0).as_string(), common::InvalidArgument);
  EXPECT_THROW(Value::null().numeric(), common::InvalidArgument);
}

TEST(Value, NumericBridgesIntAndDouble) {
  EXPECT_DOUBLE_EQ(Value(4).numeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(4.25).numeric(), 4.25);
  EXPECT_TRUE(Value(1).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("1").is_numeric());
  EXPECT_FALSE(Value::null().is_numeric());
}

TEST(Value, OrderingWithinTypes) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value(false), Value(true));
  EXPECT_EQ(Value(2), Value(2.0));  // cross numeric equality
}

TEST(Value, OrderingAcrossTypeClasses) {
  // NULL < BOOL < numeric < STRING (total order for indexes).
  EXPECT_LT(Value::null(), Value(false));
  EXPECT_LT(Value(true), Value(0));
  EXPECT_LT(Value(999999), Value(""));
}

TEST(Value, NullEqualsNullInTotalOrder) {
  EXPECT_EQ(Value::null(), Value::null());
}

TEST(Value, HashConsistentWithEquality) {
  // INT 2 == DOUBLE 2.0 must hash alike (used by hash joins).
  EXPECT_EQ(Value(2).hash(), Value(2.0).hash());
  EXPECT_EQ(Value("k").hash(), Value(std::string("k")).hash());
  // Distinct values should usually hash differently.
  std::unordered_set<std::size_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.insert(Value(i).hash());
  EXPECT_GT(hashes.size(), 990u);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::null().to_string(), "NULL");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value("hi").to_string(), "'hi'");
}

TEST(Value, ByteSizeModel) {
  EXPECT_EQ(Value::null().byte_size(), 1u);
  EXPECT_EQ(Value(1).byte_size(), 9u);
  EXPECT_EQ(Value(1.0).byte_size(), 9u);
  EXPECT_EQ(Value("abcd").byte_size(), 9u);  // 5 + len
}

}  // namespace
}  // namespace cq::rel
