#include "catalog/transaction.hpp"

#include <gtest/gtest.h>

#include "catalog/database.hpp"
#include "common/error.hpp"

namespace cq::cat {
namespace {

using common::Timestamp;
using delta::ChangeKind;
using rel::Tuple;
using rel::TupleId;
using rel::Value;
using rel::ValueType;

Database make_db() {
  Database db;
  db.create_table("T", rel::Schema::of({{"k", ValueType::kInt}, {"v", ValueType::kString}}));
  return db;
}

TEST(Transaction, NothingVisibleUntilCommit) {
  Database db = make_db();
  auto txn = db.begin();
  txn.insert("T", {Value(1), Value("a")});
  EXPECT_EQ(db.table("T").size(), 0u);
  EXPECT_TRUE(db.delta("T").empty());
  txn.commit();
  EXPECT_EQ(db.table("T").size(), 1u);
  EXPECT_EQ(db.delta("T").size(), 1u);
}

TEST(Transaction, SingleTimestampPerCommit) {
  Database db = make_db();
  auto txn = db.begin();
  txn.insert("T", {Value(1), Value("a")});
  txn.insert("T", {Value(2), Value("b")});
  const Timestamp ts = txn.commit();
  for (const auto& row : db.delta("T").rows()) EXPECT_EQ(row.ts, ts);
}

TEST(Transaction, AbortDiscardsEverything) {
  Database db = make_db();
  auto txn = db.begin();
  txn.insert("T", {Value(1), Value("a")});
  txn.abort();
  EXPECT_EQ(db.table("T").size(), 0u);
  EXPECT_TRUE(db.delta("T").empty());
  EXPECT_THROW(txn.commit(), common::InvalidArgument);
}

TEST(Transaction, DestructorAborts) {
  Database db = make_db();
  {
    auto txn = db.begin();
    txn.insert("T", {Value(1), Value("a")});
  }
  EXPECT_EQ(db.table("T").size(), 0u);
}

TEST(Transaction, PaperExample1Shape) {
  // Begin Transaction T: Insert; Modify; Delete; End — one delta row each.
  Database db = make_db();
  const TupleId dec = db.insert("T", {Value(120992), Value("DEC")});
  const TupleId qli = db.insert("T", {Value(92394), Value("QLI")});
  const Timestamp before = db.clock().now();

  auto txn = db.begin();
  txn.insert("T", {Value(101088), Value("MAC")});
  txn.modify("T", dec, {Value(120992), Value("DEC-149")});
  txn.erase("T", qli);
  txn.commit();

  const auto net = db.delta("T").net_effect(before);
  ASSERT_EQ(net.size(), 3u);
  int inserts = 0;
  int modifies = 0;
  int deletes = 0;
  for (const auto& row : net) {
    switch (row.kind()) {
      case ChangeKind::kInsert: ++inserts; break;
      case ChangeKind::kModify: ++modifies; break;
      case ChangeKind::kDelete: ++deletes; break;
    }
  }
  EXPECT_EQ(inserts, 1);
  EXPECT_EQ(modifies, 1);
  EXPECT_EQ(deletes, 1);
}

TEST(Transaction, InsertThenModifySameTidIsNetInsert) {
  Database db = make_db();
  auto txn = db.begin();
  const TupleId tid = txn.insert("T", {Value(1), Value("a")});
  txn.modify("T", tid, {Value(1), Value("b")});
  const Timestamp ts = txn.commit();
  (void)ts;
  const auto net = db.delta("T").net_effect(Timestamp::min());
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].kind(), ChangeKind::kInsert);
  EXPECT_EQ((*net[0].new_values)[1], Value("b"));
}

TEST(Transaction, InsertThenDeleteSameTidHasNoNetEffect) {
  Database db = make_db();
  auto txn = db.begin();
  const TupleId tid = txn.insert("T", {Value(1), Value("a")});
  txn.erase("T", tid);
  txn.commit();
  EXPECT_EQ(db.table("T").size(), 0u);
  EXPECT_TRUE(db.delta("T").empty());  // not even logged
}

TEST(Transaction, ModifyThenDeleteIsNetDelete) {
  Database db = make_db();
  const TupleId tid = db.insert("T", {Value(1), Value("orig")});
  const Timestamp before = db.clock().now();
  auto txn = db.begin();
  txn.modify("T", tid, {Value(1), Value("changed")});
  txn.erase("T", tid);
  txn.commit();
  const auto net = db.delta("T").net_effect(before);
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].kind(), ChangeKind::kDelete);
  EXPECT_EQ((*net[0].old_values)[1], Value("orig"));  // pre-transaction value
}

TEST(Transaction, ModifyThenDeleteLogsExactlyOneDeleteRow) {
  // Regression guard on the *logged* shape, not just the net-effect view:
  // the commit must record one delete row carrying the pre-transaction
  // values — not a modify row followed by a delete row.
  Database db = make_db();
  const TupleId tid = db.insert("T", {Value(1), Value("orig")});
  const std::size_t logged_before = db.delta("T").size();
  auto txn = db.begin();
  txn.modify("T", tid, {Value(1), Value("changed")});
  txn.erase("T", tid);
  txn.commit();
  ASSERT_EQ(db.delta("T").size(), logged_before + 1);
  const auto& row = db.delta("T").rows().back();
  EXPECT_EQ(row.kind(), ChangeKind::kDelete);
  EXPECT_EQ((*row.old_values)[1], Value("orig"));
  EXPECT_EQ(db.table("T").size(), 0u);
}

TEST(Transaction, InsertThenModifyThenDeleteLeavesNoTrace) {
  // The full lifecycle inside one transaction must compose to nothing:
  // no base row, no delta row, and no commit-hook dispatch for the table.
  Database db = make_db();
  db.insert("T", {Value(7), Value("keep")});  // unrelated survivor
  const std::size_t logged_before = db.delta("T").size();
  auto txn = db.begin();
  const TupleId tid = txn.insert("T", {Value(1), Value("a")});
  txn.modify("T", tid, {Value(1), Value("b")});
  txn.erase("T", tid);
  txn.commit();
  EXPECT_EQ(db.table("T").size(), 1u);
  EXPECT_EQ(db.delta("T").size(), logged_before);  // nothing logged
}

TEST(Transaction, ModifyThenModifyBackCollapsesInNetEffect) {
  // Two modifies that land back on the original values log one modify row
  // (old == new), which the net-effect compaction then drops entirely.
  Database db = make_db();
  const TupleId tid = db.insert("T", {Value(1), Value("orig")});
  const Timestamp before = db.clock().now();
  auto txn = db.begin();
  txn.modify("T", tid, {Value(1), Value("detour")});
  txn.modify("T", tid, {Value(1), Value("orig")});
  txn.commit();
  EXPECT_TRUE(db.delta("T").net_effect(before).empty());
  EXPECT_EQ(db.table("T").find(tid)->values()[1], Value("orig"));
}

TEST(Transaction, ValidationFailureLeavesDatabaseUntouched) {
  Database db = make_db();
  db.insert("T", {Value(1), Value("a")});
  const std::size_t size_before = db.table("T").size();
  const std::size_t delta_before = db.delta("T").size();

  auto txn = db.begin();
  txn.insert("T", {Value(2), Value("b")});
  txn.erase("T", TupleId(9999));  // queued fine; fails validation at commit
  EXPECT_THROW(txn.commit(), common::NotFound);
  EXPECT_EQ(db.table("T").size(), size_before);
  EXPECT_EQ(db.delta("T").size(), delta_before);
}

TEST(Transaction, DoubleDeleteRejected) {
  Database db = make_db();
  const TupleId tid = db.insert("T", {Value(1), Value("a")});
  auto txn = db.begin();
  txn.erase("T", tid);
  txn.erase("T", tid);
  EXPECT_THROW(txn.commit(), common::NotFound);
}

TEST(Transaction, ModifyAfterDeleteRejected) {
  Database db = make_db();
  const TupleId tid = db.insert("T", {Value(1), Value("a")});
  auto txn = db.begin();
  txn.erase("T", tid);
  txn.modify("T", tid, {Value(1), Value("b")});
  EXPECT_THROW(txn.commit(), common::NotFound);
}

TEST(Transaction, UnknownTableRejectedAtQueueTime) {
  Database db = make_db();
  auto txn = db.begin();
  EXPECT_THROW(txn.insert("Nope", {Value(1)}), common::NotFound);
  EXPECT_THROW(txn.erase("Nope", TupleId(1)), common::NotFound);
}

TEST(Transaction, ArityCheckedAtQueueTime) {
  Database db = make_db();
  auto txn = db.begin();
  EXPECT_THROW(txn.insert("T", {Value(1)}), common::SchemaMismatch);
}

TEST(Transaction, MultiTableCommit) {
  Database db = make_db();
  db.create_table("U", rel::Schema::of({{"x", ValueType::kInt}}));
  auto txn = db.begin();
  txn.insert("T", {Value(1), Value("a")});
  txn.insert("U", {Value(2)});
  const Timestamp ts = txn.commit();
  EXPECT_EQ(db.delta("T").rows().back().ts, ts);
  EXPECT_EQ(db.delta("U").rows().back().ts, ts);
}

TEST(Database, CommitHookFiresWithTouchedTables) {
  Database db = make_db();
  db.create_table("U", rel::Schema::of({{"x", ValueType::kInt}}));
  std::vector<std::string> seen;
  db.set_commit_hook([&](const std::vector<std::string>& tables, Timestamp) {
    seen = tables;
  });
  auto txn = db.begin();
  txn.insert("T", {Value(1), Value("a")});
  txn.insert("U", {Value(2)});
  txn.commit();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "T");
  EXPECT_EQ(seen[1], "U");
}

TEST(Database, CommitHookSkipsNetNoopTables) {
  Database db = make_db();
  std::size_t calls = 0;
  std::size_t tables_seen = 0;
  db.set_commit_hook([&](const std::vector<std::string>& tables, Timestamp) {
    ++calls;
    tables_seen += tables.size();
  });
  auto txn = db.begin();
  const TupleId tid = txn.insert("T", {Value(1), Value("a")});
  txn.erase("T", tid);  // net no-op
  txn.commit();
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(tables_seen, 0u);
}

TEST(Database, SingleStatementConveniences) {
  Database db = make_db();
  const TupleId tid = db.insert("T", {Value(1), Value("a")});
  db.modify("T", tid, {Value(1), Value("b")});
  EXPECT_EQ(db.table("T").find(tid)->at(1), Value("b"));
  db.erase("T", tid);
  EXPECT_EQ(db.table("T").size(), 0u);
  EXPECT_EQ(db.delta("T").size(), 3u);
}

TEST(Transaction, MidApplyFailureRollsBackAppliedOps) {
  // A fault injected after the second applied op must undo both applied
  // ops before the exception escapes: the base table, its byte
  // accounting and the delta log all look exactly as before commit().
  Database db = make_db();
  const TupleId seeded = db.insert("T", {Value(1), Value("a")});
  const std::size_t rows_before = db.table("T").size();
  const std::size_t delta_before = db.delta("T").size();

  struct Fault {};
  auto txn = db.begin();
  txn.insert("T", {Value(2), Value("b")});
  txn.modify("T", seeded, {Value(1), Value("a2")});
  txn.erase("T", seeded);
  txn.set_apply_fault_hook_for_testing([](std::size_t applied) {
    if (applied == 2) throw Fault{};
  });
  EXPECT_THROW(txn.commit(), Fault);

  EXPECT_EQ(db.table("T").size(), rows_before);
  EXPECT_EQ(db.delta("T").size(), delta_before);
  EXPECT_EQ(db.table("T").find(seeded)->at(1), Value("a"));  // modify undone
  txn.abort();

  // The database stays fully usable: a later clean commit sees no debris.
  auto next = db.begin();
  next.modify("T", seeded, {Value(1), Value("final")});
  next.commit();
  EXPECT_EQ(db.table("T").find(seeded)->at(1), Value("final"));
}

TEST(Transaction, MidApplyFailureOnDeleteRestoresTheRow) {
  Database db = make_db();
  const TupleId victim = db.insert("T", {Value(7), Value("keep")});

  struct Fault {};
  auto txn = db.begin();
  txn.erase("T", victim);
  txn.insert("T", {Value(8), Value("new")});
  txn.set_apply_fault_hook_for_testing([](std::size_t applied) {
    if (applied == 2) throw Fault{};
  });
  EXPECT_THROW(txn.commit(), Fault);

  ASSERT_NE(db.table("T").find(victim), nullptr);
  EXPECT_EQ(db.table("T").find(victim)->at(1), Value("keep"));
  EXPECT_EQ(db.table("T").size(), 1u);
}

TEST(Transaction, AbortReturnsReservedTids) {
  // An aborted transaction's reserved tids go back to the pool, so the
  // next *committed* insert gets the tid the aborted one would have used
  // — aborts leave no gaps in the committed tid sequence.
  Database db = make_db();
  TupleId wasted;
  {
    auto txn = db.begin();
    wasted = txn.insert("T", {Value(1), Value("discarded")});
    txn.abort();
  }
  const TupleId committed = db.insert("T", {Value(1), Value("kept")});
  EXPECT_EQ(committed.raw(), wasted.raw());
}

TEST(Transaction, AbortUnwindsMultipleReservationsNewestFirst) {
  Database db = make_db();
  {
    auto txn = db.begin();
    txn.insert("T", {Value(1), Value("a")});
    txn.insert("T", {Value(2), Value("b")});
    txn.insert("T", {Value(3), Value("c")});
    txn.abort();
  }
  {
    auto txn = db.begin();
    const TupleId t1 = txn.insert("T", {Value(4), Value("d")});
    const TupleId t2 = txn.insert("T", {Value(5), Value("e")});
    txn.commit();
    EXPECT_EQ(t2.raw(), t1.raw() + 1);
  }
  EXPECT_EQ(db.table("T").size(), 2u);
}

TEST(Transaction, InterleavedAbortKeepsLaterReservationValid) {
  // Reservations interleave: txn A reserves, txn B reserves on top, A
  // aborts. A's tid cannot be returned (B built on it) — but B's commit
  // must still apply cleanly with the tid it was handed.
  Database db = make_db();
  auto a = db.begin();
  auto b = db.begin();
  const TupleId a_tid = a.insert("T", {Value(1), Value("a")});
  const TupleId b_tid = b.insert("T", {Value(2), Value("b")});
  ASSERT_NE(a_tid.raw(), b_tid.raw());
  a.abort();
  b.commit();
  ASSERT_NE(db.table("T").find(b_tid), nullptr);
  EXPECT_EQ(db.table("T").find(b_tid)->at(0), Value(2));
  EXPECT_EQ(db.table("T").size(), 1u);
}

TEST(Database, ShardAccountingCountsCommitsPerShard) {
  Database db = make_db();
  db.create_table("U", rel::Schema::of({{"k", ValueType::kInt}}));
  const std::uint64_t seq_before = db.commit_sequence();
  const std::size_t t_shard = Database::shard_of("T");
  const std::size_t u_shard = Database::shard_of("U");
  const std::uint64_t t_before = db.shard_commits(t_shard);
  db.insert("T", {Value(1), Value("a")});
  db.insert("U", {Value(2)});
  EXPECT_EQ(db.commit_sequence(), seq_before + 2);
  const std::uint64_t t_expected = t_shard == u_shard ? 2 : 1;
  EXPECT_EQ(db.shard_commits(t_shard), t_before + t_expected);
  EXPECT_GE(db.shard_commits(u_shard), 1u);
  EXPECT_EQ(db.shard_commits(Database::kNumShards + 5), 0u);  // out of range
}

TEST(Database, TableManagement) {
  Database db = make_db();
  EXPECT_TRUE(db.has_table("T"));
  EXPECT_FALSE(db.has_table("X"));
  EXPECT_THROW(db.create_table("T", rel::Schema::of({{"x", ValueType::kInt}})),
               common::InvalidArgument);
  EXPECT_THROW(static_cast<void>(db.table("X")), common::NotFound);
  EXPECT_EQ(db.table_names(), std::vector<std::string>{"T"});
}

}  // namespace
}  // namespace cq::cat
