#include "relation/index.hpp"

#include "common/hash.hpp"

namespace cq::rel {

const std::vector<std::size_t> HashIndex::kEmpty{};

std::size_t HashIndex::KeyHash::operator()(const std::vector<Value>& key) const noexcept {
  std::size_t h = 0x1dd ^ key.size();
  for (const auto& v : key) h = common::hash_combine(h, v);
  return h;
}

bool HashIndex::KeyEq::operator()(const std::vector<Value>& a,
                                  const std::vector<Value>& b) const noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

std::vector<Value> HashIndex::extract(const Tuple& t, const std::vector<std::size_t>& cols) {
  std::vector<Value> key;
  key.reserve(cols.size());
  for (auto c : cols) key.push_back(t.at(c));
  return key;
}

HashIndex::HashIndex(const std::vector<Tuple>& rows, std::vector<std::size_t> key_columns)
    : key_columns_(std::move(key_columns)) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    buckets_[extract(rows[i], key_columns_)].push_back(i);
  }
}

const std::vector<rel::TupleId> MaintainedIndex::kNoTids{};

std::size_t MaintainedIndex::KeyHash::operator()(
    const std::vector<Value>& key) const noexcept {
  std::size_t h = 0x9a1 ^ key.size();
  for (const auto& v : key) h = common::hash_combine(h, v);
  return h;
}

bool MaintainedIndex::KeyEq::operator()(const std::vector<Value>& a,
                                        const std::vector<Value>& b) const noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

MaintainedIndex::MaintainedIndex(std::vector<std::size_t> columns)
    : columns_(std::move(columns)) {}

std::vector<Value> MaintainedIndex::key_of(const Tuple& row) const {
  std::vector<Value> key;
  key.reserve(columns_.size());
  for (auto c : columns_) key.push_back(row.at(c));
  return key;
}

void MaintainedIndex::build(const Relation& relation) {
  buckets_.clear();
  entries_ = 0;
  for (const auto& row : relation.rows()) add(row);
}

void MaintainedIndex::add(const Tuple& row) {
  buckets_[key_of(row)].push_back(row.tid());
  ++entries_;
}

void MaintainedIndex::remove(const Tuple& row) {
  auto it = buckets_.find(key_of(row));
  if (it == buckets_.end()) return;  // defensive: index/table drift
  auto& tids = it->second;
  for (std::size_t i = 0; i < tids.size(); ++i) {
    if (tids[i] == row.tid()) {
      tids[i] = tids.back();
      tids.pop_back();
      --entries_;
      break;
    }
  }
  if (tids.empty()) buckets_.erase(it);
}

void MaintainedIndex::on_insert(const Tuple& row) { add(row); }

void MaintainedIndex::on_erase(const Tuple& row) { remove(row); }

void MaintainedIndex::on_update(const Tuple& old_row, const Tuple& new_row) {
  remove(old_row);
  add(new_row);
}

const std::vector<rel::TupleId>& MaintainedIndex::probe(
    const std::vector<Value>& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? kNoTids : it->second;
}

const std::vector<std::size_t>& HashIndex::probe(
    const Tuple& probe, const std::vector<std::size_t>& probe_columns) const {
  auto it = buckets_.find(extract(probe, probe_columns));
  return it == buckets_.end() ? kEmpty : it->second;
}

}  // namespace cq::rel
