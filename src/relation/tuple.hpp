// Tuples: a vector of values plus a tuple identifier (tid).
//
// The paper's differential relations are keyed by tid (Section 4.1 Example 1
// shows tids such as 101088); tids survive modification, so a delta row can
// pair the old and new versions of the same logical tuple.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "relation/provenance.hpp"
#include "relation/value.hpp"

namespace cq::rel {

/// Identifier of a logical tuple within one relation. Stable across
/// modifications; never reused after deletion within a single Database.
class TupleId {
 public:
  using rep = std::uint64_t;

  constexpr TupleId() noexcept = default;
  constexpr explicit TupleId(rep id) noexcept : id_(id) {}

  [[nodiscard]] static constexpr TupleId invalid() noexcept { return TupleId(0); }
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }
  [[nodiscard]] constexpr rep raw() const noexcept { return id_; }

  constexpr auto operator<=>(const TupleId&) const noexcept = default;

  [[nodiscard]] std::string to_string() const { return std::to_string(id_); }

 private:
  rep id_ = 0;
};

/// An immutable-by-convention row. Value count must match the schema of the
/// relation that holds it (enforced by Relation, not by Tuple).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values, TupleId tid = TupleId::invalid())
      : values_(std::move(values)), tid_(tid) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] const Value& at(std::size_t i) const;
  [[nodiscard]] const std::vector<Value>& values() const noexcept { return values_; }
  [[nodiscard]] std::vector<Value>& mutable_values() noexcept { return values_; }

  [[nodiscard]] TupleId tid() const noexcept { return tid_; }
  void set_tid(TupleId tid) noexcept { tid_ = tid; }

  /// Base-delta lineage set; null unless prov::enabled() when the row was
  /// minted. Never participates in same_values/value_hash/byte_size — two
  /// rows with equal fields are the same value regardless of derivation.
  [[nodiscard]] const prov::ProvSetPtr& prov() const noexcept { return prov_; }
  void set_prov(prov::ProvSetPtr set) noexcept { prov_ = std::move(set); }

  /// Value equality over the fields only (tids are identity, not value).
  [[nodiscard]] bool same_values(const Tuple& other) const noexcept;

  /// Hash of the field values only.
  [[nodiscard]] std::size_t value_hash() const noexcept;

  /// Concatenation (for join outputs). The result carries an invalid tid
  /// and the union of both sides' lineage sets.
  [[nodiscard]] Tuple concat(const Tuple& other) const;

  /// Projection onto the given column indexes; lineage passes through.
  [[nodiscard]] Tuple project(const std::vector<std::size_t>& indexes) const;

  /// Total serialized size in bytes under the wire cost model.
  [[nodiscard]] std::size_t byte_size() const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Value> values_;
  TupleId tid_;
  prov::ProvSetPtr prov_;
};

}  // namespace cq::rel

template <>
struct std::hash<cq::rel::TupleId> {
  std::size_t operator()(const cq::rel::TupleId& t) const noexcept {
    return std::hash<cq::rel::TupleId::rep>{}(t.raw());
  }
};
