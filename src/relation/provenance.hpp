// Delta lineage: stable provenance ids for base delta rows, threaded
// through the DRA operators as immutable shared sets on rel::Tuple.
//
// A ProvId names one net base-table change: (txn, rel, seq) where `txn`
// is the commit timestamp in ticks (the clock ticks once per commit),
// `rel` is the interned relation name, and `seq` is the physical row's
// position in that relation's delta log. The id is assigned when the
// delta row is appended and survives net-effect collapsing (the latest
// physical row of a collapsed run lends its id), so every cited id can
// be resolved back to a row that exists in the log.
//
// Sets are sorted, deduplicated vectors held by shared_ptr-to-const:
// operators that copy tuples share sets for free, join unions the two
// sides, projection passes the set through. When lineage is disabled
// (the default) every pointer stays null and the only cost is a null
// shared_ptr copy per tuple copy — the same "disabled is free"
// discipline as obs:: and lockprof.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cq::rel::prov {

/// Identity of one net base delta: commit txn, relation, log position.
struct ProvId {
  std::int64_t txn = 0;   ///< Commit timestamp ticks (one tick per commit).
  std::uint32_t rel = 0;  ///< Interned relation name; see relation_name().
  std::uint64_t seq = 0;  ///< Row position in the relation's delta log.

  constexpr auto operator<=>(const ProvId&) const noexcept = default;
};

/// A sorted, deduplicated set of base-delta ids.
using ProvSet = std::vector<ProvId>;
/// Shared immutable set; null means "no lineage" (disabled or base row).
using ProvSetPtr = std::shared_ptr<const ProvSet>;

namespace detail {
inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// True when delta lineage collection is on. One relaxed atomic load —
/// safe to call on every hot path.
inline bool enabled() noexcept {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Interns `name`, returning its stable non-zero id. Idempotent; ids are
/// process-wide (the table is never cleared) so lineage records outlive
/// the Database that minted them.
[[nodiscard]] std::uint32_t intern_relation(const std::string& name);

/// The name interned under `id`, or "?" for 0 / unknown ids.
[[nodiscard]] std::string relation_name(std::uint32_t id);

/// A one-element set.
[[nodiscard]] ProvSetPtr leaf(const ProvId& id);

/// Sorted union of two sets; either side may be null. Returns the
/// non-null side unchanged when the other is null (no allocation).
[[nodiscard]] ProvSetPtr merge(const ProvSetPtr& a, const ProvSetPtr& b);

/// Heap bytes held by a set (0 for null); used by the lineage gauge.
[[nodiscard]] std::size_t byte_size(const ProvSetPtr& set) noexcept;

}  // namespace cq::rel::prov
