#include "relation/provenance.hpp"

#include <algorithm>
#include <iterator>

#include "common/sync.hpp"

namespace cq::rel::prov {

namespace {

struct Interner {
  common::Mutex mu{"prov_interner", common::lockorder::LockRank::kProvInterner};
  std::vector<std::string> names CQ_GUARDED_BY(mu);  // index = id - 1
};

Interner& interner() {
  static Interner table;
  return table;
}

}  // namespace

std::uint32_t intern_relation(const std::string& name) {
  Interner& table = interner();
  common::LockGuard lock(table.mu);
  for (std::size_t i = 0; i < table.names.size(); ++i) {
    if (table.names[i] == name) return static_cast<std::uint32_t>(i + 1);
  }
  table.names.push_back(name);
  return static_cast<std::uint32_t>(table.names.size());
}

std::string relation_name(std::uint32_t id) {
  if (id == 0) return "?";
  Interner& table = interner();
  common::LockGuard lock(table.mu);
  if (id > table.names.size()) return "?";
  return table.names[id - 1];
}

ProvSetPtr leaf(const ProvId& id) {
  return std::make_shared<const ProvSet>(ProvSet{id});
}

ProvSetPtr merge(const ProvSetPtr& a, const ProvSetPtr& b) {
  if (!a) return b;
  if (!b) return a;
  ProvSet merged;
  merged.reserve(a->size() + b->size());
  std::set_union(a->begin(), a->end(), b->begin(), b->end(),
                 std::back_inserter(merged));
  return std::make_shared<const ProvSet>(std::move(merged));
}

std::size_t byte_size(const ProvSetPtr& set) noexcept {
  if (!set) return 0;
  return sizeof(ProvSet) + set->capacity() * sizeof(ProvId);
}

}  // namespace cq::rel::prov
