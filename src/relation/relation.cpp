#include "relation/relation.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cq::rel {

Relation::Relation(Schema schema, std::vector<Tuple> rows) : schema_(std::move(schema)) {
  rows_.reserve(rows.size());
  for (auto& r : rows) {
    if (r.tid().valid()) {
      insert(std::move(r));
    } else {
      append(std::move(r));
    }
  }
}

const Tuple& Relation::row(std::size_t i) const {
  if (i >= rows_.size()) throw common::InvalidArgument("Relation::row out of range");
  return rows_[i];
}

void Relation::set_schema(Schema schema) {
  if (schema.size() != schema_.size()) {
    throw common::SchemaMismatch("Relation::set_schema arity mismatch");
  }
  schema_ = std::move(schema);
}

void Relation::check_arity(const Tuple& t) const {
  if (t.size() != schema_.size()) {
    throw common::SchemaMismatch("Relation: tuple arity " + std::to_string(t.size()) +
                                 " != schema arity " + std::to_string(schema_.size()) +
                                 " for " + schema_.to_string());
  }
}

void Relation::insert(Tuple tuple) {
  check_arity(tuple);
  if (!tuple.tid().valid()) {
    throw common::InvalidArgument("Relation::insert requires a valid tid");
  }
  if (by_tid_.contains(tuple.tid())) {
    throw common::InvalidArgument("Relation::insert duplicate tid " + tuple.tid().to_string());
  }
  next_tid_ = std::max(next_tid_, tuple.tid().raw() + 1);
  by_tid_.emplace(tuple.tid(), rows_.size());
  rows_.push_back(std::move(tuple));
}

TupleId Relation::insert_values(std::vector<Value> values) {
  const TupleId tid(next_tid_);
  insert(Tuple(std::move(values), tid));
  return tid;
}

Tuple Relation::erase(TupleId tid) {
  auto it = by_tid_.find(tid);
  if (it == by_tid_.end()) {
    throw common::NotFound("Relation::erase: no tid " + tid.to_string());
  }
  const std::size_t idx = it->second;
  Tuple removed = std::move(rows_[idx]);
  by_tid_.erase(it);
  if (idx + 1 != rows_.size()) {
    rows_[idx] = std::move(rows_.back());
    if (rows_[idx].tid().valid()) by_tid_[rows_[idx].tid()] = idx;
  }
  rows_.pop_back();
  return removed;
}

Tuple Relation::update(TupleId tid, std::vector<Value> values) {
  auto it = by_tid_.find(tid);
  if (it == by_tid_.end()) {
    throw common::NotFound("Relation::update: no tid " + tid.to_string());
  }
  Tuple replacement(std::move(values), tid);
  check_arity(replacement);
  Tuple old = std::move(rows_[it->second]);
  rows_[it->second] = std::move(replacement);
  return old;
}

bool Relation::contains(TupleId tid) const noexcept { return by_tid_.contains(tid); }

const Tuple* Relation::find(TupleId tid) const noexcept {
  auto it = by_tid_.find(tid);
  return it == by_tid_.end() ? nullptr : &rows_[it->second];
}

void Relation::append(Tuple tuple) {
  check_arity(tuple);
  if (tuple.tid().valid()) {
    if (by_tid_.contains(tuple.tid())) {
      // Derived results can legitimately carry repeated tids (e.g. a tuple
      // matched twice through a self-join); index only the first occurrence.
    } else {
      by_tid_.emplace(tuple.tid(), rows_.size());
      next_tid_ = std::max(next_tid_, tuple.tid().raw() + 1);
    }
  }
  rows_.push_back(std::move(tuple));
}

bool Relation::remove_one_by_value(const Tuple& values) {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].same_values(values)) {
      if (rows_[i].tid().valid()) by_tid_.erase(rows_[i].tid());
      if (i + 1 != rows_.size()) {
        rows_[i] = std::move(rows_.back());
        if (rows_[i].tid().valid()) {
          auto it = by_tid_.find(rows_[i].tid());
          if (it != by_tid_.end()) it->second = i;
        }
      }
      rows_.pop_back();
      return true;
    }
  }
  return false;
}

bool Relation::remove_one(const Tuple& tuple) {
  if (tuple.tid().valid()) {
    auto it = by_tid_.find(tuple.tid());
    if (it != by_tid_.end()) {
      const std::size_t idx = it->second;
      by_tid_.erase(it);
      if (idx + 1 != rows_.size()) {
        rows_[idx] = std::move(rows_.back());
        if (rows_[idx].tid().valid()) {
          auto bt = by_tid_.find(rows_[idx].tid());
          if (bt != by_tid_.end()) bt->second = idx;
        }
      }
      rows_.pop_back();
      return true;
    }
  }
  return remove_one_by_value(tuple);
}

bool Relation::equal_multiset(const Relation& other) const {
  if (size() != other.size()) return false;
  if (!schema_.union_compatible(other.schema_)) return false;
  TupleBag bag;
  for (const auto& r : rows_) bag.add(r, +1);
  for (const auto& r : other.rows_) bag.add(r, -1);
  return bag.all_zero();
}

std::size_t Relation::count_value(const Tuple& values) const {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (r.same_values(values)) ++n;
  }
  return n;
}

std::string Relation::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  os << schema_.to_string() << " [" << rows_.size() << " rows]\n";
  std::size_t shown = 0;
  for (const auto& r : sorted_rows()) {
    if (shown++ == max_rows) {
      os << "  ...\n";
      break;
    }
    os << "  " << r.to_string();
    if (r.tid().valid()) os << " @tid=" << r.tid().to_string();
    os << "\n";
  }
  return os.str();
}

std::size_t Relation::byte_size() const noexcept {
  std::size_t total = 0;
  for (const auto& r : rows_) total += r.byte_size();
  return total;
}

std::vector<Tuple> Relation::sorted_rows() const {
  std::vector<Tuple> out = rows_;
  std::sort(out.begin(), out.end(), [](const Tuple& a, const Tuple& b) {
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      auto c = a.values()[i].compare(b.values()[i]);
      if (c != std::strong_ordering::equal) return c == std::strong_ordering::less;
    }
    if (a.size() != b.size()) return a.size() < b.size();
    return a.tid() < b.tid();
  });
  return out;
}

void TupleBag::add(const Tuple& t, std::ptrdiff_t count) {
  // Strip the tid so identical values always land in one bucket.
  Tuple key(t.values());
  auto it = counts_.find(key);
  if (it == counts_.end()) {
    counts_.emplace(std::move(key), count);
  } else {
    it->second += count;
    if (it->second == 0) counts_.erase(it);
  }
}

std::ptrdiff_t TupleBag::count(const Tuple& t) const {
  auto it = counts_.find(Tuple(t.values()));
  return it == counts_.end() ? 0 : it->second;
}

bool TupleBag::all_zero() const { return counts_.empty(); }

}  // namespace cq::rel
