#include "relation/schema.hpp"

#include <sstream>
#include <unordered_set>

#include "common/error.hpp"

namespace cq::rel {

std::string bare_name(const std::string& name) {
  auto dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

Schema::Schema(std::vector<Attribute> attributes) : attributes_(std::move(attributes)) {
  rebuild_lookup();
}

Schema Schema::of(std::initializer_list<Attribute> attributes) {
  return Schema(std::vector<Attribute>(attributes));
}

void Schema::rebuild_lookup() {
  by_name_.clear();
  by_suffix_.clear();
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    const auto& name = attributes_[i].name;
    if (name.empty()) throw common::InvalidArgument("Schema: empty attribute name");
    if (!by_name_.emplace(name, i).second) {
      throw common::SchemaMismatch("Schema: duplicate attribute name '" + name + "'");
    }
    const auto suffix = bare_name(name);
    if (suffix != name) {
      auto [it, inserted] = by_suffix_.emplace(suffix, i);
      if (!inserted) it->second = kAmbiguous;
    }
  }
}

const Attribute& Schema::at(std::size_t i) const {
  if (i >= attributes_.size()) throw common::InvalidArgument("Schema::at out of range");
  return attributes_[i];
}

std::optional<std::size_t> Schema::find(const std::string& name) const {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  if (auto it = by_suffix_.find(name); it != by_suffix_.end() && it->second != kAmbiguous) {
    return it->second;
  }
  return std::nullopt;
}

std::size_t Schema::index_of(const std::string& name) const {
  if (auto i = find(name)) return *i;
  if (auto it = by_suffix_.find(name); it != by_suffix_.end() && it->second == kAmbiguous) {
    throw common::NotFound("Schema: ambiguous attribute '" + name + "' in " + to_string());
  }
  throw common::NotFound("Schema: no attribute '" + name + "' in " + to_string());
}

Schema Schema::concat(const Schema& other) const {
  std::vector<Attribute> merged = attributes_;
  merged.insert(merged.end(), other.attributes_.begin(), other.attributes_.end());
  return Schema(std::move(merged));  // ctor checks duplicates
}

Schema Schema::project(const std::vector<std::string>& names) const {
  std::vector<Attribute> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(attributes_[index_of(n)]);
  return Schema(std::move(out));
}

Schema Schema::qualified(const std::string& qualifier) const {
  std::vector<Attribute> out;
  out.reserve(attributes_.size());
  for (const auto& a : attributes_) {
    out.push_back({qualifier + "." + bare_name(a.name), a.type});
  }
  return Schema(std::move(out));
}

Schema Schema::unqualified() const {
  std::vector<Attribute> out;
  out.reserve(attributes_.size());
  for (const auto& a : attributes_) out.push_back({bare_name(a.name), a.type});
  return Schema(std::move(out));
}

Schema Schema::doubled() const {
  std::vector<Attribute> out;
  out.reserve(attributes_.size() * 2);
  for (const auto& a : attributes_) out.push_back({a.name + "_old", a.type});
  for (const auto& a : attributes_) out.push_back({a.name + "_new", a.type});
  return Schema(std::move(out));
}

bool Schema::union_compatible(const Schema& other) const noexcept {
  if (size() != other.size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    if (attributes_[i].type != other.attributes_[i].type) return false;
  }
  return true;
}

std::string Schema::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attributes_[i].name << ":" << rel::to_string(attributes_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace cq::rel
