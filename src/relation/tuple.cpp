#include "relation/tuple.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace cq::rel {

const Value& Tuple::at(std::size_t i) const {
  if (i >= values_.size()) throw common::InvalidArgument("Tuple::at out of range");
  return values_[i];
}

bool Tuple::same_values(const Tuple& other) const noexcept {
  if (values_.size() != other.values_.size()) return false;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (!(values_[i] == other.values_[i])) return false;
  }
  return true;
}

std::size_t Tuple::value_hash() const noexcept {
  std::size_t h = 0x7091e;
  for (const auto& v : values_) h = common::hash_combine(h, v);
  return h;
}

Tuple Tuple::concat(const Tuple& other) const {
  std::vector<Value> merged = values_;
  merged.insert(merged.end(), other.values_.begin(), other.values_.end());
  Tuple joined(std::move(merged));
  if (prov_ || other.prov_) joined.prov_ = prov::merge(prov_, other.prov_);
  return joined;
}

Tuple Tuple::project(const std::vector<std::size_t>& indexes) const {
  std::vector<Value> out;
  out.reserve(indexes.size());
  for (auto i : indexes) out.push_back(at(i));
  Tuple projected(std::move(out));
  projected.prov_ = prov_;
  return projected;
}

std::size_t Tuple::byte_size() const noexcept {
  std::size_t total = 8;  // tid
  for (const auto& v : values_) total += v.byte_size();
  return total;
}

std::string Tuple::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    os << values_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace cq::rel
