// Relation schemas: ordered, typed, named attributes, with the schema
// algebra the differential machinery needs — concatenation for joins,
// projection, renaming with qualifiers, and the old/new "doubling" that
// turns a base schema into its differential-relation schema (Section 4.1).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/value.hpp"

namespace cq::rel {

/// One column: a name and a type. Names are case-sensitive identifiers;
/// a qualified name looks like "Stocks.price".
struct Attribute {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Attribute&) const = default;
};

/// An ordered list of attributes with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Convenience builder: Schema::of({{"name", kString}, {"price", kInt}}).
  [[nodiscard]] static Schema of(std::initializer_list<Attribute> attributes);

  [[nodiscard]] std::size_t size() const noexcept { return attributes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return attributes_.empty(); }
  [[nodiscard]] const Attribute& at(std::size_t i) const;
  [[nodiscard]] const std::vector<Attribute>& attributes() const noexcept {
    return attributes_;
  }

  /// Index of the attribute with this name. Accepts either the exact stored
  /// name or, when the stored names are qualified ("S.price"), the bare
  /// suffix ("price") if it is unambiguous. Returns nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> find(const std::string& name) const;

  /// Like find() but throws NotFound with a helpful message.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const { return find(name).has_value(); }

  /// Schema for R ⋈ S results: attributes of *this followed by other's.
  /// Throws SchemaMismatch on duplicate resulting names.
  [[nodiscard]] Schema concat(const Schema& other) const;

  /// Schema with only the named attributes, in the given order.
  [[nodiscard]] Schema project(const std::vector<std::string>& names) const;

  /// Schema with every attribute name prefixed "qualifier.", replacing any
  /// existing qualifier (so re-aliasing a table works).
  [[nodiscard]] Schema qualified(const std::string& qualifier) const;

  /// Schema with all qualifiers stripped ("S.price" -> "price").
  [[nodiscard]] Schema unqualified() const;

  /// Differential-relation schema per Section 4.1: every attribute A becomes
  /// A_old and A_new (same type), in old-half-then-new-half order. The tid
  /// and ts columns are handled by DeltaRelation itself, not the schema.
  [[nodiscard]] Schema doubled() const;

  /// Two schemas are union-compatible when sizes and types match positionally
  /// (names may differ). Required by union/difference (Section 4.2 Diff).
  [[nodiscard]] bool union_compatible(const Schema& other) const noexcept;

  bool operator==(const Schema& other) const { return attributes_ == other.attributes_; }

  [[nodiscard]] std::string to_string() const;

 private:
  void rebuild_lookup();

  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, std::size_t> by_name_;
  // bare suffix -> index, or npos if ambiguous
  std::unordered_map<std::string, std::size_t> by_suffix_;
  static constexpr std::size_t kAmbiguous = static_cast<std::size_t>(-1);
};

/// Strip a "qualifier." prefix if present.
[[nodiscard]] std::string bare_name(const std::string& name);

}  // namespace cq::rel
