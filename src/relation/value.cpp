#include "relation/value.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace cq::rel {

const char* to_string(ValueType type) noexcept {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return "BOOL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

bool Value::as_bool() const {
  if (auto* p = std::get_if<bool>(&data_)) return *p;
  throw common::InvalidArgument("Value::as_bool on " + std::string(rel::to_string(type())));
}

std::int64_t Value::as_int() const {
  if (auto* p = std::get_if<std::int64_t>(&data_)) return *p;
  throw common::InvalidArgument("Value::as_int on " + std::string(rel::to_string(type())));
}

double Value::as_double() const {
  if (auto* p = std::get_if<double>(&data_)) return *p;
  throw common::InvalidArgument("Value::as_double on " + std::string(rel::to_string(type())));
}

const std::string& Value::as_string() const {
  if (auto* p = std::get_if<std::string>(&data_)) return *p;
  throw common::InvalidArgument("Value::as_string on " + std::string(rel::to_string(type())));
}

double Value::numeric() const {
  if (auto* p = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*p);
  if (auto* p = std::get_if<double>(&data_)) return *p;
  throw common::InvalidArgument("Value::numeric on " + std::string(rel::to_string(type())));
}

namespace {
std::strong_ordering order_doubles(double a, double b) noexcept {
  // NaNs are not produced by the library; treat them as equal-largest anyway.
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

/// Rank used to order values of different type classes.
int type_rank(ValueType t) noexcept {
  switch (t) {
    case ValueType::kNull: return 0;
    case ValueType::kBool: return 1;
    case ValueType::kInt:
    case ValueType::kDouble: return 2;
    case ValueType::kString: return 3;
  }
  return 4;
}
}  // namespace

std::strong_ordering Value::compare(const Value& other) const noexcept {
  const int ra = type_rank(type());
  const int rb = type_rank(other.type());
  if (ra != rb) return ra <=> rb;
  switch (type()) {
    case ValueType::kNull:
      return std::strong_ordering::equal;
    case ValueType::kBool:
      return std::get<bool>(data_) <=> std::get<bool>(other.data_);
    case ValueType::kInt:
      if (other.type() == ValueType::kInt) {
        return std::get<std::int64_t>(data_) <=> std::get<std::int64_t>(other.data_);
      }
      return order_doubles(numeric(), other.numeric());
    case ValueType::kDouble:
      return order_doubles(numeric(), other.numeric());
    case ValueType::kString:
      return std::get<std::string>(data_).compare(std::get<std::string>(other.data_)) <=> 0;
  }
  return std::strong_ordering::equal;
}

std::size_t Value::hash() const noexcept {
  using common::hash_mix;
  switch (type()) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kBool:
      return hash_mix(1, std::get<bool>(data_) ? 1 : 0);
    case ValueType::kInt:
      // INT and DOUBLE with the same numeric value must hash alike, because
      // compare() treats them as equal.
      return hash_mix(2, static_cast<std::uint64_t>(std::get<std::int64_t>(data_)));
    case ValueType::kDouble: {
      const double d = std::get<double>(data_);
      const double r = std::nearbyint(d);
      if (r == d && r >= -9.2e18 && r <= 9.2e18) {
        return hash_mix(2, static_cast<std::uint64_t>(static_cast<std::int64_t>(r)));
      }
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return hash_mix(3, bits);
    }
    case ValueType::kString: {
      std::size_t h = 4;
      for (char c : std::get<std::string>(data_)) {
        h = common::hash_combine(h, c);
      }
      return h;
    }
  }
  return 0;
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return std::get<bool>(data_) ? "true" : "false";
    case ValueType::kInt: return std::to_string(std::get<std::int64_t>(data_));
    case ValueType::kDouble: {
      std::ostringstream os;
      os << std::get<double>(data_);
      return os.str();
    }
    case ValueType::kString: {
      // SQL-style quoting: embedded quotes double, so the rendering re-parses
      // to the same value ('a''b' <-> a'b).
      const auto& s = std::get<std::string>(data_);
      std::string out;
      out.reserve(s.size() + 2);
      out.push_back('\'');
      for (char c : s) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');
      }
      out.push_back('\'');
      return out;
    }
  }
  return "?";
}

std::size_t Value::byte_size() const noexcept {
  switch (type()) {
    case ValueType::kNull: return 1;
    case ValueType::kBool: return 2;
    case ValueType::kInt: return 9;
    case ValueType::kDouble: return 9;
    case ValueType::kString: return 5 + std::get<std::string>(data_).size();
  }
  return 1;
}

std::ostream& operator<<(std::ostream& os, const Value& v) { return os << v.to_string(); }

}  // namespace cq::rel
