// In-memory relations. A Relation serves two roles:
//   * base table: rows carry valid, unique tids; insert/erase/update by tid;
//   * derived result (query output): rows may be tid-less and duplicated,
//     with multiset semantics for equality and difference (Section 4.2 Diff).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/schema.hpp"
#include "relation/tuple.hpp"

namespace cq::rel {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Tuple> rows);

  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] const std::vector<Tuple>& rows() const noexcept { return rows_; }
  [[nodiscard]] const Tuple& row(std::size_t i) const;

  /// Mutable row access for in-place annotation (e.g. lineage attachment).
  /// Callers must not change values or tids through this — the tid index
  /// and multiset semantics assume rows are immutable once added.
  [[nodiscard]] std::vector<Tuple>& mutable_rows() noexcept { return rows_; }

  /// Replace the schema qualifier view without touching rows. Used by the
  /// planner when a table is aliased (FROM Stocks AS s).
  void set_schema(Schema schema);

  // ---- base-table mutations (tid-keyed) ----

  /// Insert a row with a caller-chosen tid (must be valid and fresh).
  void insert(Tuple tuple);

  /// Insert values, assigning the next tid from this relation's counter.
  TupleId insert_values(std::vector<Value> values);

  /// Claim the next tid without inserting (transactions reserve tids at
  /// op-queue time so later ops in the same transaction can reference
  /// them). Not synchronized — under multi-writer commits, go through
  /// Database, which serializes reservation on the table's shard lock.
  TupleId reserve_tid() noexcept { return TupleId(next_tid_++); }

  /// Best-effort return of a reserved-but-unused tid (transaction abort):
  /// succeeds only while `tid` is still the newest reservation, so an
  /// abort leaves the tids of subsequent commits undisturbed. Returns
  /// false — the tid is simply consumed — when later reservations
  /// already built on top of it.
  bool unreserve_tid(TupleId tid) noexcept {
    if (next_tid_ != tid.raw() + 1) return false;
    next_tid_ = tid.raw();
    return true;
  }

  /// Remove the row with this tid. Returns the removed tuple.
  Tuple erase(TupleId tid);

  /// Replace the values of the row with this tid. Returns the old tuple.
  Tuple update(TupleId tid, std::vector<Value> values);

  [[nodiscard]] bool contains(TupleId tid) const noexcept;
  [[nodiscard]] const Tuple* find(TupleId tid) const noexcept;

  // ---- derived-result mutations (multiset) ----

  /// Append a row without tid bookkeeping (duplicates allowed).
  void append(Tuple tuple);

  /// Remove one occurrence of a row with exactly these values (any tid).
  /// Returns false when no such row exists.
  bool remove_one_by_value(const Tuple& values);

  /// Remove one occurrence matching both values and tid (tid-aware variant
  /// used when maintaining complete CQ results). Falls back to value-only
  /// matching when tid is invalid.
  bool remove_one(const Tuple& tuple);

  // ---- multiset comparisons ----

  /// Multiset equality on values (tids ignored). Schemas must be
  /// union-compatible; otherwise returns false.
  [[nodiscard]] bool equal_multiset(const Relation& other) const;

  /// Number of rows whose values equal the given tuple.
  [[nodiscard]] std::size_t count_value(const Tuple& values) const;

  /// Render as an aligned ASCII table (column header + rows).
  [[nodiscard]] std::string to_string(std::size_t max_rows = 50) const;

  /// Total serialized size under the wire cost model.
  [[nodiscard]] std::size_t byte_size() const noexcept;

  /// Deterministically ordered copy of the rows (sorted by values then tid);
  /// handy for tests and stable output.
  [[nodiscard]] std::vector<Tuple> sorted_rows() const;

 private:
  void check_arity(const Tuple& t) const;

  Schema schema_;
  std::vector<Tuple> rows_;
  std::unordered_map<TupleId, std::size_t> by_tid_;
  TupleId::rep next_tid_ = 1;
};

/// Multiset counting map from value-rows to multiplicities.
class TupleBag {
 public:
  void add(const Tuple& t, std::ptrdiff_t count = 1);
  [[nodiscard]] std::ptrdiff_t count(const Tuple& t) const;
  /// True when every multiplicity is zero.
  [[nodiscard]] bool all_zero() const;
  /// Number of distinct value-rows with non-zero multiplicity.
  [[nodiscard]] std::size_t distinct_size() const noexcept { return counts_.size(); }
  /// Visit every (tuple, multiplicity) pair (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [tuple, count] : counts_) fn(tuple, count);
  }

 private:
  struct Hash {
    std::size_t operator()(const Tuple& t) const noexcept { return t.value_hash(); }
  };
  struct Eq {
    bool operator()(const Tuple& a, const Tuple& b) const noexcept {
      return a.same_values(b);
    }
  };
  std::unordered_map<Tuple, std::ptrdiff_t, Hash, Eq> counts_;
};

}  // namespace cq::rel
