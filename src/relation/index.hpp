// Hash index over one or more columns of a relation snapshot. Built on
// demand by hash joins and by the DRA's differential joins (a ΔR side is
// usually tiny, so the big side gets the index).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "relation/relation.hpp"

namespace cq::rel {

/// Immutable equi-lookup structure: key = values of the chosen columns.
class HashIndex {
 public:
  /// Build over the given rows. `key_columns` are positions in each tuple.
  HashIndex(const std::vector<Tuple>& rows, std::vector<std::size_t> key_columns);

  /// Convenience: build over a whole relation.
  HashIndex(const Relation& relation, std::vector<std::size_t> key_columns)
      : HashIndex(relation.rows(), std::move(key_columns)) {}

  /// Row positions whose key columns equal the key columns of `probe`
  /// evaluated at `probe_columns`.
  [[nodiscard]] const std::vector<std::size_t>& probe(
      const Tuple& probe, const std::vector<std::size_t>& probe_columns) const;

  [[nodiscard]] std::size_t distinct_keys() const noexcept { return buckets_.size(); }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<Value>& key) const noexcept;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const noexcept;
  };

  static std::vector<Value> extract(const Tuple& t, const std::vector<std::size_t>& cols);

  std::vector<std::size_t> key_columns_;
  std::unordered_map<std::vector<Value>, std::vector<std::size_t>, KeyHash, KeyEq> buckets_;
  static const std::vector<std::size_t> kEmpty;
};

/// A persistent equi-lookup index over a *base* table, maintained
/// incrementally as the table changes (unlike HashIndex, which is built
/// per query). The catalog updates it inside every commit; the DRA's
/// differential joins probe it so a join term costs O(|ΔR| · fanout)
/// instead of a full base scan.
class MaintainedIndex {
 public:
  /// `columns` are attribute positions in the base schema, in key order.
  explicit MaintainedIndex(std::vector<std::size_t> columns);

  /// Bulk-build from current contents.
  void build(const Relation& relation);

  // ---- incremental maintenance (called at commit time) ----
  void on_insert(const Tuple& row);
  void on_erase(const Tuple& row);
  void on_update(const Tuple& old_row, const Tuple& new_row);

  /// Tids whose key columns equal `key` (values in key-column order).
  [[nodiscard]] const std::vector<TupleId>& probe(const std::vector<Value>& key) const;

  [[nodiscard]] const std::vector<std::size_t>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t distinct_keys() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<Value>& key) const noexcept;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const noexcept;
  };

  [[nodiscard]] std::vector<Value> key_of(const Tuple& row) const;
  void add(const Tuple& row);
  void remove(const Tuple& row);

  std::vector<std::size_t> columns_;
  std::unordered_map<std::vector<Value>, std::vector<TupleId>, KeyHash, KeyEq> buckets_;
  std::size_t entries_ = 0;
  static const std::vector<TupleId> kNoTids;
};

}  // namespace cq::rel
