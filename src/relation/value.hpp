// The scalar value domain of the relational model used throughout the
// library: NULL, BOOL, INT, DOUBLE, STRING. Nulls follow SQL-ish semantics
// where the differential machinery needs them (differential relations mark
// insertions/deletions with null halves, Section 4.1), but comparisons used
// for ordering/indexing are total: NULL sorts first and equals NULL.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>
#include <variant>

namespace cq::rel {

enum class ValueType : std::uint8_t { kNull = 0, kBool, kInt, kDouble, kString };

/// Printable name of a value type ("INT", "STRING", ...).
[[nodiscard]] const char* to_string(ValueType type) noexcept;

/// A single scalar value. Cheap to copy for numerics; strings are owned.
class Value {
 public:
  /// NULL value.
  Value() noexcept : data_(std::monostate{}) {}
  Value(bool v) noexcept : data_(v) {}                    // NOLINT(google-explicit-constructor)
  Value(std::int64_t v) noexcept : data_(v) {}            // NOLINT(google-explicit-constructor)
  Value(int v) noexcept : data_(std::int64_t{v}) {}       // NOLINT(google-explicit-constructor)
  Value(double v) noexcept : data_(v) {}                  // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}           // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}         // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Value null() noexcept { return Value(); }

  [[nodiscard]] ValueType type() const noexcept {
    return static_cast<ValueType>(data_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == ValueType::kNull; }

  /// Typed accessors. Throw InvalidArgument when the type does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Numeric view: INT and DOUBLE both convert; throws otherwise.
  [[nodiscard]] double numeric() const;
  /// True for INT or DOUBLE.
  [[nodiscard]] bool is_numeric() const noexcept {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Total ordering for indexes/sorting: NULL < BOOL < numerics < STRING;
  /// INT and DOUBLE compare numerically against each other.
  [[nodiscard]] std::strong_ordering compare(const Value& other) const noexcept;

  bool operator==(const Value& other) const noexcept {
    return compare(other) == std::strong_ordering::equal;
  }
  bool operator<(const Value& other) const noexcept {
    return compare(other) == std::strong_ordering::less;
  }

  [[nodiscard]] std::size_t hash() const noexcept;

  /// Rendered form, e.g. 42, 3.5, 'abc', true, NULL.
  [[nodiscard]] std::string to_string() const;

  /// Approximate serialized size in bytes; used by the wire-format cost model.
  [[nodiscard]] std::size_t byte_size() const noexcept;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace cq::rel

template <>
struct std::hash<cq::rel::Value> {
  std::size_t operator()(const cq::rel::Value& v) const noexcept { return v.hash(); }
};
