#include "catalog/transaction.hpp"

#include <map>
#include <optional>
#include <set>

#include "catalog/database.hpp"
#include "common/error.hpp"
#include "common/observability.hpp"

namespace cq::cat {

using common::Timestamp;
using rel::TupleId;
using rel::Value;

Transaction::~Transaction() {
  if (state_ == State::kActive) abort();
}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_), ops_(std::move(other.ops_)), state_(other.state_) {
  other.state_ = State::kAborted;
  other.ops_.clear();
}

void Transaction::require_active() const {
  if (state_ != State::kActive) {
    throw common::InvalidArgument("Transaction: already committed or aborted");
  }
}

TupleId Transaction::insert(const std::string& table, std::vector<Value> values) {
  require_active();
  Table& entry = db_->table_entry(table);
  if (values.size() != entry.base.schema().size()) {
    throw common::SchemaMismatch("Transaction::insert arity mismatch for '" + table + "'");
  }
  const TupleId tid = entry.base.reserve_tid();
  ops_.push_back(Op{OpKind::kInsert, table, tid, std::move(values)});
  return tid;
}

void Transaction::erase(const std::string& table, TupleId tid) {
  require_active();
  static_cast<void>(db_->table_entry(table));  // validate the table name early
  if (!tid.valid()) throw common::InvalidArgument("Transaction::erase: invalid tid");
  ops_.push_back(Op{OpKind::kDelete, table, tid, {}});
}

void Transaction::modify(const std::string& table, TupleId tid,
                         std::vector<Value> values) {
  require_active();
  Table& entry = db_->table_entry(table);
  if (values.size() != entry.base.schema().size()) {
    throw common::SchemaMismatch("Transaction::modify arity mismatch for '" + table + "'");
  }
  if (!tid.valid()) throw common::InvalidArgument("Transaction::modify: invalid tid");
  ops_.push_back(Op{OpKind::kModify, table, tid, std::move(values)});
}

Timestamp Transaction::commit() {
  require_active();

  // The causal trace of this commit: allocates the trace id every span
  // downstream of here carries (including pool workers evaluating CQs in
  // parallel — ThreadPool propagates the context), and at scope exit
  // records the root "commit" span, the commit_to_notify_us sample and
  // the tail-retention decision. One branch when collection is off.
  common::obs::CommitTrace trace;

  // ---- validation pass: simulate visibility without touching the base ----
  // exists[t][tid]: known liveness of a tid after the ops so far; absent
  // means "whatever the base table says".
  std::map<std::string, std::map<TupleId, bool>> exists;
  for (const auto& op : ops_) {
    auto& table_exists = exists[op.table];
    const Table& entry = db_->table_entry(op.table);
    auto it = table_exists.find(op.tid);
    const bool live = it != table_exists.end() ? it->second : entry.base.contains(op.tid);
    switch (op.kind) {
      case OpKind::kInsert:
        if (live) {
          throw common::InvalidArgument("Transaction: duplicate insert of tid " +
                                        op.tid.to_string());
        }
        table_exists[op.tid] = true;
        break;
      case OpKind::kDelete:
        if (!live) {
          throw common::NotFound("Transaction: delete of missing tid " +
                                 op.tid.to_string() + " in '" + op.table + "'");
        }
        table_exists[op.tid] = false;
        break;
      case OpKind::kModify:
        if (!live) {
          throw common::NotFound("Transaction: modify of missing tid " +
                                 op.tid.to_string() + " in '" + op.table + "'");
        }
        break;
    }
  }

  // ---- apply pass: mutate base tables, composing the per-tid net effect --
  struct NetChange {
    std::optional<std::vector<Value>> old_values;  // state before the txn
    std::optional<std::vector<Value>> new_values;  // state after the txn
    bool pre_existing = false;
  };
  // Ordered map => deterministic delta append order across runs.
  std::map<std::string, std::map<TupleId, NetChange>> net;

  for (const auto& op : ops_) {
    Table& entry = db_->table_entry(op.table);
    auto& changes = net[op.table];
    auto [it, fresh] = changes.try_emplace(op.tid);
    NetChange& change = it->second;
    switch (op.kind) {
      case OpKind::kInsert: {
        if (fresh) change.pre_existing = false;
        entry.apply_insert(rel::Tuple(op.values, op.tid));
        change.new_values = op.values;
        break;
      }
      case OpKind::kDelete: {
        rel::Tuple old = entry.apply_erase(op.tid);
        if (fresh) {
          change.pre_existing = true;
          change.old_values = old.values();
        }
        change.new_values.reset();
        break;
      }
      case OpKind::kModify: {
        rel::Tuple old = entry.apply_update(op.tid, op.values);
        if (fresh) {
          change.pre_existing = true;
          change.old_values = old.values();
        }
        change.new_values = op.values;
        break;
      }
    }
  }

  // ---- stamp and log the net effect ----
  const Timestamp ts = db_->clock_->tick();
  std::vector<std::string> touched;
  for (auto& [table_name, changes] : net) {
    Table& entry = db_->table_entry(table_name);
    bool any = false;
    for (auto& [tid, change] : changes) {
      if (!change.pre_existing && change.new_values) {
        entry.delta.record_insert(tid, std::move(*change.new_values), ts);
        any = true;
      } else if (change.pre_existing && !change.new_values) {
        entry.delta.record_delete(tid, std::move(*change.old_values), ts);
        any = true;
      } else if (change.pre_existing && change.new_values) {
        entry.delta.record_modify(tid, std::move(*change.old_values),
                                  std::move(*change.new_values), ts);
        any = true;
      }
      // insert-then-delete inside one transaction: no net effect, no log row.
    }
    if (any) touched.push_back(table_name);
  }

  state_ = State::kCommitted;
  ops_.clear();
  if (trace.active()) {
    std::string label;
    for (const auto& name : touched) {
      if (!label.empty()) label += ',';
      label += name;
    }
    trace.set_label(std::move(label));
  }
  db_->notify_commit(touched, ts);
  return ts;
}

void Transaction::abort() noexcept {
  state_ = State::kAborted;
  ops_.clear();
}

}  // namespace cq::cat
