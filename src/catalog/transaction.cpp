#include "catalog/transaction.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "catalog/database.hpp"
#include "common/error.hpp"
#include "common/observability.hpp"

namespace cq::cat {

using common::Timestamp;
using rel::TupleId;
using rel::Value;

namespace obs = common::obs;

Transaction::~Transaction() {
  if (state_ == State::kActive) abort();
}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      ops_(std::move(other.ops_)),
      reserved_(std::move(other.reserved_)),
      apply_fault_hook_(std::move(other.apply_fault_hook_)),
      state_(other.state_) {
  other.state_ = State::kAborted;
  other.ops_.clear();
  other.reserved_.clear();
}

void Transaction::require_active() const {
  if (state_ != State::kActive) {
    throw common::InvalidArgument("Transaction: already committed or aborted");
  }
}

TupleId Transaction::insert(const std::string& table, std::vector<Value> values) {
  require_active();
  Table& entry = db_->table_entry(table);
  if (values.size() != entry.base.schema().size()) {
    throw common::SchemaMismatch("Transaction::insert arity mismatch for '" + table + "'");
  }
  const TupleId tid = db_->reserve_tid(table);
  reserved_.emplace_back(table, tid);
  ops_.push_back(Op{OpKind::kInsert, table, tid, std::move(values)});
  return tid;
}

void Transaction::erase(const std::string& table, TupleId tid) {
  require_active();
  static_cast<void>(db_->table_entry(table));  // validate the table name early
  if (!tid.valid()) throw common::InvalidArgument("Transaction::erase: invalid tid");
  ops_.push_back(Op{OpKind::kDelete, table, tid, {}});
}

void Transaction::modify(const std::string& table, TupleId tid,
                         std::vector<Value> values) {
  require_active();
  Table& entry = db_->table_entry(table);
  if (values.size() != entry.base.schema().size()) {
    throw common::SchemaMismatch("Transaction::modify arity mismatch for '" + table + "'");
  }
  if (!tid.valid()) throw common::InvalidArgument("Transaction::modify: invalid tid");
  ops_.push_back(Op{OpKind::kModify, table, tid, std::move(values)});
}

Timestamp Transaction::commit() {
  require_active();

  // The causal trace of this commit: allocates the trace id every span
  // downstream of here carries (including pool workers evaluating CQs in
  // parallel — ThreadPool propagates the context), and at scope exit
  // records the root "commit" span, the commit_to_notify_us sample and
  // the tail-retention decision. One branch when collection is off.
  obs::CommitTrace trace;

  // ---- lock the commit closure's shards, ascending shard order ----
  // The closure is the write set plus everything the eager dispatcher
  // will read on our behalf (the read sets of the CQs we can trigger);
  // holding it across validate/apply/stamp/dispatch is what makes
  // conflicting commits observe exactly the sequential order while
  // disjoint ones overlap completely.
  std::vector<std::string> write_set;
  for (const auto& op : ops_) {
    if (std::find(write_set.begin(), write_set.end(), op.table) == write_set.end()) {
      write_set.push_back(op.table);
    }
  }
  const std::vector<std::string> closure = db_->commit_closure(write_set);
  std::optional<ShardLockSet> locks;
  {
    static obs::Histogram& lock_wait_hist =
        obs::global().histogram(obs::hist::kCommitLockWaitUs);
    obs::Span lock_span("commit.lock_wait", &lock_wait_hist);
    locks.emplace(*db_, Database::shard_mask(closure));
  }

  // ---- validation pass: simulate visibility without touching the base ----
  // exists[t][tid]: known liveness of a tid after the ops so far; absent
  // means "whatever the base table says".
  std::map<std::string, std::map<TupleId, bool>> exists;
  for (const auto& op : ops_) {
    auto& table_exists = exists[op.table];
    const Table& entry = db_->table_entry(op.table);
    auto it = table_exists.find(op.tid);
    const bool live = it != table_exists.end() ? it->second : entry.base.contains(op.tid);
    switch (op.kind) {
      case OpKind::kInsert:
        if (live) {
          throw common::InvalidArgument("Transaction: duplicate insert of tid " +
                                        op.tid.to_string());
        }
        table_exists[op.tid] = true;
        break;
      case OpKind::kDelete:
        if (!live) {
          throw common::NotFound("Transaction: delete of missing tid " +
                                 op.tid.to_string() + " in '" + op.table + "'");
        }
        table_exists[op.tid] = false;
        break;
      case OpKind::kModify:
        if (!live) {
          throw common::NotFound("Transaction: modify of missing tid " +
                                 op.tid.to_string() + " in '" + op.table + "'");
        }
        break;
    }
  }

  // ---- apply pass: mutate base tables, composing the per-tid net effect --
  struct NetChange {
    std::optional<std::vector<Value>> old_values;  // state before the txn
    std::optional<std::vector<Value>> new_values;  // state after the txn
    bool pre_existing = false;
  };
  // Ordered map => deterministic delta append order across runs.
  std::map<std::string, std::map<TupleId, NetChange>> net;

  // Undo journal: enough to reverse every applied op if a later one
  // throws — commit is all-or-nothing even past validation (apply_* can
  // still fail on e.g. allocation).
  struct AppliedOp {
    Table* table;
    OpKind kind;
    TupleId tid;
    std::vector<Value> old_values;  // pre-image for kDelete / kModify
  };
  std::vector<AppliedOp> applied;
  applied.reserve(ops_.size());

  try {
    for (const auto& op : ops_) {
      Table& entry = db_->table_entry(op.table);
      auto& changes = net[op.table];
      auto [it, fresh] = changes.try_emplace(op.tid);
      NetChange& change = it->second;
      switch (op.kind) {
        case OpKind::kInsert: {
          if (fresh) change.pre_existing = false;
          entry.apply_insert(rel::Tuple(op.values, op.tid));
          applied.push_back(AppliedOp{&entry, op.kind, op.tid, {}});
          change.new_values = op.values;
          break;
        }
        case OpKind::kDelete: {
          rel::Tuple old = entry.apply_erase(op.tid);
          applied.push_back(AppliedOp{&entry, op.kind, op.tid, old.values()});
          if (fresh) {
            change.pre_existing = true;
            change.old_values = old.values();
          }
          change.new_values.reset();
          break;
        }
        case OpKind::kModify: {
          rel::Tuple old = entry.apply_update(op.tid, op.values);
          applied.push_back(AppliedOp{&entry, op.kind, op.tid, old.values()});
          if (fresh) {
            change.pre_existing = true;
            change.old_values = old.values();
          }
          change.new_values = op.values;
          break;
        }
      }
      if (apply_fault_hook_) apply_fault_hook_(applied.size());
    }
  } catch (...) {
    // Roll back in reverse order; each undo reverses an op that just
    // succeeded, so the pre-rollback state it needs is exactly in place.
    for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
      switch (it->kind) {
        case OpKind::kInsert:
          it->table->apply_erase(it->tid);
          break;
        case OpKind::kDelete:
          it->table->apply_insert(rel::Tuple(it->old_values, it->tid));
          break;
        case OpKind::kModify:
          it->table->apply_update(it->tid, it->old_values);
          break;
      }
    }
    throw;
  }

  // ---- stamp and log the net effect ----
  // Timestamp + global commit sequence come from one short critical
  // section; our shard locks are held, so per-relation delta appends
  // arrive in timestamp order.
  const Timestamp ts = db_->allocate_commit_ts();
  std::vector<std::string> touched;
  for (auto& [table_name, changes] : net) {
    Table& entry = db_->table_entry(table_name);
    bool any = false;
    for (auto& [tid, change] : changes) {
      if (!change.pre_existing && change.new_values) {
        entry.delta.record_insert(tid, std::move(*change.new_values), ts);
        any = true;
      } else if (change.pre_existing && !change.new_values) {
        entry.delta.record_delete(tid, std::move(*change.old_values), ts);
        any = true;
      } else if (change.pre_existing && change.new_values) {
        entry.delta.record_modify(tid, std::move(*change.old_values),
                                  std::move(*change.new_values), ts);
        any = true;
      }
      // insert-then-delete inside one transaction: no net effect, no log row.
    }
    if (any) touched.push_back(table_name);
  }

  state_ = State::kCommitted;
  ops_.clear();
  reserved_.clear();  // consumed by the commit
  if (trace.active()) {
    std::string label;
    for (const auto& name : touched) {
      if (!label.empty()) label += ',';
      label += name;
    }
    trace.set_label(std::move(label));
  }
  // Dispatch while the closure is still locked: a conflicting commit
  // cannot slip its changes between our apply and our notifications.
  db_->notify_commit(touched, ts);
  return ts;
}

void Transaction::abort() noexcept {
  state_ = State::kAborted;
  ops_.clear();
  // Return reserved tids newest-first; each return succeeds while the
  // reservation is still on top, so a clean abort leaves the counter
  // exactly where it started.
  for (auto it = reserved_.rbegin(); it != reserved_.rend(); ++it) {
    db_->unreserve_tid(it->first, it->second);
  }
  reserved_.clear();
}

}  // namespace cq::cat
