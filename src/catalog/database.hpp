// The catalog: named base relations, each paired with its differential
// relation, sharing one clock. This is the paper's picture of an
// information source: updates arrive as transactions (Example 1), the
// system instantiates the differential relation as a side effect, and the
// DRA later reads (base, ΔR, timestamps) from here (Section 4.2 inputs).
//
// The catalog is *sharded* by relation for multi-writer commits: tables
// hash onto kNumShards shards, each with its own commit lock (site
// "commit_shard", a same-rank cohort ordered by shard index — see
// docs/lock-hierarchy.md). A committing transaction acquires only the
// shards its write set (plus the read closure of the CQs it can trigger)
// hashes to, in ascending shard order, so transactions over disjoint
// shard sets commit — and dispatch their notifications — concurrently.
// Timestamp allocation stays a single short critical section
// ("commit_ts") that totally orders commits.
//
// Concurrency contract: DDL (create_table / create_index /
// restore_table) and whole-catalog reads (table_names, index lookups)
// require commits to be quiesced — the table *maps* only change under
// DDL, which is why table()/delta() lookups stay lock-free. Rows inside
// a table are guarded by its shard's commit lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/observability.hpp"
#include "common/sync.hpp"
#include "delta/delta_relation.hpp"
#include "delta/delta_zone.hpp"
#include "relation/index.hpp"
#include "relation/relation.hpp"

namespace cq::cat {

class Transaction;
class ShardLockSet;

/// One base relation together with its change log and persistent indexes.
struct Table {
  rel::Relation base;
  delta::DeltaRelation delta;
  /// Indexes by name, kept in sync by the commit apply pass.
  std::map<std::string, rel::MaintainedIndex> indexes;
  /// Wire-cost bytes of `base`, maintained by the apply_* mutations so the
  /// resource gauges never rescan the relation.
  std::size_t base_bytes = 0;

  explicit Table(rel::Schema schema) : base(schema), delta(schema) {}

  // Mutations that keep base, indexes, and byte accounting consistent
  // (used by Transaction).
  void apply_insert(rel::Tuple row);
  rel::Tuple apply_erase(rel::TupleId tid);
  rel::Tuple apply_update(rel::TupleId tid, std::vector<rel::Value> values);

  /// Publish this table's row/byte levels to the global observability
  /// registry (gauge families relation_rows/relation_bytes/delta_rows/
  /// delta_bytes, label table=`name`). Gauge refs resolve once.
  void publish_gauges(const std::string& name) const;

 private:
  struct GaugeRefs {
    common::obs::Gauge* rows = nullptr;
    common::obs::Gauge* bytes = nullptr;
    common::obs::Gauge* delta_rows = nullptr;
    common::obs::Gauge* delta_bytes = nullptr;
  };
  mutable GaugeRefs gauges_;  // lazily resolved; stable for registry lifetime
};

class Database {
 public:
  /// Catalog shard fan-out. A power of two keeps the mask math cheap and
  /// 8 comfortably exceeds the writer parallelism the bench exercises;
  /// the shard lock cohort and the per-shard gauges are sized to it.
  static constexpr std::size_t kNumShards = 8;

  /// Databases share their clock with the CQ manager so commit timestamps
  /// and CQ execution timestamps are comparable.
  explicit Database(std::shared_ptr<common::Clock> clock);

  /// Convenience: a database with its own VirtualClock.
  Database();

  /// Move support for snapshot restore (persist::load_database builds a
  /// Database by value and hands it to a Mediator). The source must be
  /// quiescent — no in-flight transactions, no thread holding any of its
  /// shard locks; the moved-to database gets fresh locks of its own.
  Database(Database&& other) noexcept;
  Database& operator=(Database&&) = delete;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  [[nodiscard]] common::Clock& clock() const noexcept { return *clock_; }
  [[nodiscard]] std::shared_ptr<common::Clock> clock_ptr() const noexcept { return clock_; }

  /// Create an empty table. Throws InvalidArgument if the name is taken.
  void create_table(const std::string& name, rel::Schema schema);

  [[nodiscard]] bool has_table(const std::string& name) const noexcept;
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Read access to a table's current contents / change log. Lock-free:
  /// the shard maps only change under (quiesced) DDL. Callers racing
  /// concurrent commits must hold the table's shard lock (the eager
  /// dispatch path runs with the whole closure locked).
  [[nodiscard]] const rel::Relation& table(const std::string& name) const;
  [[nodiscard]] const delta::DeltaRelation& delta(const std::string& name) const;

  /// Shard index `name` hashes to (stable for the database's lifetime).
  [[nodiscard]] static std::size_t shard_of(const std::string& name) noexcept;

  /// Commits applied through shard `i` so far.
  [[nodiscard]] std::uint64_t shard_commits(std::size_t i) const noexcept;

  /// Total commits allocated a timestamp so far.
  [[nodiscard]] std::uint64_t commit_sequence() const;

  // ---- persistent indexes ----

  /// Create and build a maintained index named `index_name` over the given
  /// (bare) column names of `table`. Throws if the name is taken.
  void create_index(const std::string& table, const std::string& index_name,
                    const std::vector<std::string>& columns);

  /// An index of `table` whose key is exactly `columns` (bare names, any
  /// order); nullptr when none exists. The second element gives the index's
  /// own column order as base-schema positions.
  [[nodiscard]] const rel::MaintainedIndex* index_on(
      const std::string& table, const std::vector<std::size_t>& columns) const;

  /// Names of the indexes defined on `table`.
  [[nodiscard]] std::vector<std::string> index_names(const std::string& table) const;

  /// Index key columns (base-schema positions) of a named index.
  [[nodiscard]] const rel::MaintainedIndex& index(const std::string& table,
                                                  const std::string& index_name) const;

  /// Snapshot-restore machinery (persist::load_database): install `name`
  /// with the given base contents and differential log verbatim — no new
  /// delta rows are generated. Throws if the table already exists or the
  /// schemas disagree.
  void restore_table(const std::string& name, rel::Relation base,
                     delta::DeltaRelation log);

  /// Begin a transaction. Nothing is visible until commit(); commit stamps
  /// every change of the transaction with one fresh timestamp and appends
  /// the transaction's net effect to the differential relations.
  [[nodiscard]] Transaction begin();

  // ---- single-statement conveniences (one-op transactions) ----
  rel::TupleId insert(const std::string& table, std::vector<rel::Value> values);
  void erase(const std::string& table, rel::TupleId tid);
  void modify(const std::string& table, rel::TupleId tid, std::vector<rel::Value> values);

  // ---- garbage collection (Section 5.4) ----

  /// The registry of active CQ delta zones. The CQ manager registers each
  /// CQ here and advances its zone after every execution.
  [[nodiscard]] delta::DeltaZoneRegistry& zones() noexcept { return zones_; }
  [[nodiscard]] const delta::DeltaZoneRegistry& zones() const noexcept { return zones_; }

  /// Drop every delta row outside the system active delta zone. With no
  /// registered CQ, drops everything up to `now`. Locks one shard at a
  /// time, so it interleaves with concurrent commits to other shards.
  /// Returns rows reclaimed.
  std::size_t garbage_collect();

  /// Total bytes held by all differential relations.
  [[nodiscard]] std::size_t delta_bytes() const noexcept;

  /// Publish every table's resource gauges to the global observability
  /// registry. Commits keep the gauges of the tables they touch fresh;
  /// scrape paths call this to cover tables untouched since enabling
  /// collection. O(#tables).
  void refresh_resource_gauges() const;

  /// Hook invoked after every commit (used for eager trigger evaluation,
  /// Section 5.3 strategy 1). Receives the names of the tables the commit
  /// touched and the commit timestamp. Runs *while the commit's shard
  /// lock set is held*, so everything it reads through the closure (see
  /// set_commit_closure_hook) is stable and conflicting commits observe
  /// exactly the sequential dispatch order.
  using CommitHook =
      std::function<void(const std::vector<std::string>&, common::Timestamp)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Closure hook: given a commit's write set, append every further table
  /// the commit hook will read (the read sets of the CQs the write set
  /// can trigger). Commit acquires the shard locks of the whole closure,
  /// so disjoint-closure commits run fully concurrently while commits
  /// sharing a CQ serialize. Without a hook the closure is the write set.
  using ClosureHook = std::function<void(const std::vector<std::string>& write_set,
                                         std::vector<std::string>& closure)>;
  void set_commit_closure_hook(ClosureHook hook) { closure_hook_ = std::move(hook); }

 private:
  friend class Transaction;
  friend class ShardLockSet;

  /// One catalog shard: the tables hashing here plus the commit lock that
  /// guards their rows (and this map's structure, outside quiesced DDL).
  /// The shard mutexes form a rank cohort — every shard shares the
  /// "commit_shard" site and rank, and carries order key (index + 1) so
  /// the lock-order checker admits only ascending-index acquisition.
  struct Shard {
    mutable common::Mutex mu{"commit_shard",
                             common::lockorder::LockRank::kCommitShard};
    std::map<std::string, Table> tables;
    std::atomic<std::uint64_t> commits{0};
    mutable common::obs::Gauge* commits_gauge = nullptr;  // lazily resolved
  };

  [[nodiscard]] Table& table_entry(const std::string& name);
  [[nodiscard]] const Table& table_entry(const std::string& name) const;

  /// Shard-mask of a table list (bit i = shard i).
  [[nodiscard]] static std::uint32_t shard_mask(
      const std::vector<std::string>& tables) noexcept;

  /// The commit closure of `write_set`: the write set itself plus
  /// whatever the closure hook appends.
  [[nodiscard]] std::vector<std::string> commit_closure(
      const std::vector<std::string>& write_set) const;

  /// Allocate the commit timestamp and the global commit sequence number
  /// as one atomic step (the "commit_ts" critical section). Called with
  /// the commit's shard locks held, so per-relation delta appends stay
  /// timestamp-ordered.
  [[nodiscard]] common::Timestamp allocate_commit_ts();

  /// Reserve / return a tid under the table's shard lock (Transaction
  /// insert/abort — reservation must not race concurrent writers).
  [[nodiscard]] rel::TupleId reserve_tid(const std::string& table);
  void unreserve_tid(const std::string& table, rel::TupleId tid) noexcept;

  void notify_commit(const std::vector<std::string>& tables, common::Timestamp ts);

  std::shared_ptr<common::Clock> clock_;
  std::array<Shard, kNumShards> shards_;
  mutable common::Mutex ts_mu_{"commit_ts", common::lockorder::LockRank::kCommitTs};
  std::uint64_t commit_seq_ CQ_GUARDED_BY(ts_mu_) = 0;
  delta::DeltaZoneRegistry zones_;
  CommitHook commit_hook_;
  ClosureHook closure_hook_;
};

/// RAII acquisition of a set of catalog shard locks, always in ascending
/// shard order (the cohort discipline the lock-order checker enforces).
/// Reentrancy-aware: shards already held by an enclosing ShardLockSet on
/// this thread (e.g. a result sink committing during eager dispatch) are
/// not re-acquired — but such nested commits may only *add* shards above
/// the highest one held, or the runtime checker dies loudly; locking a
/// lower shard from inside a dispatch is a deadlock under concurrency.
class ShardLockSet {
 public:
  ShardLockSet(const Database& db, std::uint32_t mask);
  ~ShardLockSet();
  ShardLockSet(const ShardLockSet&) = delete;
  ShardLockSet& operator=(const ShardLockSet&) = delete;

 private:
  const Database* db_;
  std::uint32_t locked_ = 0;      // shards this frame acquired itself
  ShardLockSet* prev_ = nullptr;  // enclosing frame on this thread
};

}  // namespace cq::cat
