// The catalog: named base relations, each paired with its differential
// relation, sharing one clock. This is the paper's picture of an
// information source: updates arrive as transactions (Example 1), the
// system instantiates the differential relation as a side effect, and the
// DRA later reads (base, ΔR, timestamps) from here (Section 4.2 inputs).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/observability.hpp"
#include "delta/delta_relation.hpp"
#include "delta/delta_zone.hpp"
#include "relation/index.hpp"
#include "relation/relation.hpp"

namespace cq::cat {

class Transaction;

/// One base relation together with its change log and persistent indexes.
struct Table {
  rel::Relation base;
  delta::DeltaRelation delta;
  /// Indexes by name, kept in sync by the commit apply pass.
  std::map<std::string, rel::MaintainedIndex> indexes;
  /// Wire-cost bytes of `base`, maintained by the apply_* mutations so the
  /// resource gauges never rescan the relation.
  std::size_t base_bytes = 0;

  explicit Table(rel::Schema schema) : base(schema), delta(schema) {}

  // Mutations that keep base, indexes, and byte accounting consistent
  // (used by Transaction).
  void apply_insert(rel::Tuple row);
  rel::Tuple apply_erase(rel::TupleId tid);
  rel::Tuple apply_update(rel::TupleId tid, std::vector<rel::Value> values);

  /// Publish this table's row/byte levels to the global observability
  /// registry (gauge families relation_rows/relation_bytes/delta_rows/
  /// delta_bytes, label table=`name`). Gauge refs resolve once.
  void publish_gauges(const std::string& name) const;

 private:
  struct GaugeRefs {
    common::obs::Gauge* rows = nullptr;
    common::obs::Gauge* bytes = nullptr;
    common::obs::Gauge* delta_rows = nullptr;
    common::obs::Gauge* delta_bytes = nullptr;
  };
  mutable GaugeRefs gauges_;  // lazily resolved; stable for registry lifetime
};

class Database {
 public:
  /// Databases share their clock with the CQ manager so commit timestamps
  /// and CQ execution timestamps are comparable.
  explicit Database(std::shared_ptr<common::Clock> clock);

  /// Convenience: a database with its own VirtualClock.
  Database();

  [[nodiscard]] common::Clock& clock() const noexcept { return *clock_; }
  [[nodiscard]] std::shared_ptr<common::Clock> clock_ptr() const noexcept { return clock_; }

  /// Create an empty table. Throws InvalidArgument if the name is taken.
  void create_table(const std::string& name, rel::Schema schema);

  [[nodiscard]] bool has_table(const std::string& name) const noexcept;
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Read access to a table's current contents / change log.
  [[nodiscard]] const rel::Relation& table(const std::string& name) const;
  [[nodiscard]] const delta::DeltaRelation& delta(const std::string& name) const;

  // ---- persistent indexes ----

  /// Create and build a maintained index named `index_name` over the given
  /// (bare) column names of `table`. Throws if the name is taken.
  void create_index(const std::string& table, const std::string& index_name,
                    const std::vector<std::string>& columns);

  /// An index of `table` whose key is exactly `columns` (bare names, any
  /// order); nullptr when none exists. The second element gives the index's
  /// own column order as base-schema positions.
  [[nodiscard]] const rel::MaintainedIndex* index_on(
      const std::string& table, const std::vector<std::size_t>& columns) const;

  /// Names of the indexes defined on `table`.
  [[nodiscard]] std::vector<std::string> index_names(const std::string& table) const;

  /// Index key columns (base-schema positions) of a named index.
  [[nodiscard]] const rel::MaintainedIndex& index(const std::string& table,
                                                  const std::string& index_name) const;

  /// Snapshot-restore machinery (persist::load_database): install `name`
  /// with the given base contents and differential log verbatim — no new
  /// delta rows are generated. Throws if the table already exists or the
  /// schemas disagree.
  void restore_table(const std::string& name, rel::Relation base,
                     delta::DeltaRelation log);

  /// Begin a transaction. Nothing is visible until commit(); commit stamps
  /// every change of the transaction with one fresh timestamp and appends
  /// the transaction's net effect to the differential relations.
  [[nodiscard]] Transaction begin();

  // ---- single-statement conveniences (one-op transactions) ----
  rel::TupleId insert(const std::string& table, std::vector<rel::Value> values);
  void erase(const std::string& table, rel::TupleId tid);
  void modify(const std::string& table, rel::TupleId tid, std::vector<rel::Value> values);

  // ---- garbage collection (Section 5.4) ----

  /// The registry of active CQ delta zones. The CQ manager registers each
  /// CQ here and advances its zone after every execution.
  [[nodiscard]] delta::DeltaZoneRegistry& zones() noexcept { return zones_; }
  [[nodiscard]] const delta::DeltaZoneRegistry& zones() const noexcept { return zones_; }

  /// Drop every delta row outside the system active delta zone. With no
  /// registered CQ, drops everything up to `now`. Returns rows reclaimed.
  std::size_t garbage_collect();

  /// Total bytes held by all differential relations.
  [[nodiscard]] std::size_t delta_bytes() const noexcept;

  /// Publish every table's resource gauges to the global observability
  /// registry. Commits keep the gauges of the tables they touch fresh;
  /// scrape paths call this to cover tables untouched since enabling
  /// collection. O(#tables).
  void refresh_resource_gauges() const;

  /// Hook invoked after every commit (used for eager trigger evaluation,
  /// Section 5.3 strategy 1). Receives the names of the tables the commit
  /// touched and the commit timestamp.
  using CommitHook =
      std::function<void(const std::vector<std::string>&, common::Timestamp)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

 private:
  friend class Transaction;

  [[nodiscard]] Table& table_entry(const std::string& name);
  [[nodiscard]] const Table& table_entry(const std::string& name) const;
  void notify_commit(const std::vector<std::string>& tables, common::Timestamp ts);

  std::shared_ptr<common::Clock> clock_;
  std::map<std::string, Table> tables_;
  delta::DeltaZoneRegistry zones_;
  CommitHook commit_hook_;
};

}  // namespace cq::cat
