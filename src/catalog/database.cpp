#include "catalog/database.hpp"

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace cq::cat {

Database::Database(std::shared_ptr<common::Clock> clock) : clock_(std::move(clock)) {
  if (!clock_) throw common::InvalidArgument("Database: null clock");
}

Database::Database() : Database(std::make_shared<common::VirtualClock>()) {}

void Database::create_table(const std::string& name, rel::Schema schema) {
  if (name.empty()) throw common::InvalidArgument("Database: empty table name");
  if (tables_.contains(name)) {
    throw common::InvalidArgument("Database: table '" + name + "' already exists");
  }
  auto [it, inserted] = tables_.emplace(name, Table(std::move(schema)));
  (void)inserted;
  it->second.delta.set_name(name);
}

bool Database::has_table(const std::string& name) const noexcept {
  return tables_.contains(name);
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

Table& Database::table_entry(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw common::NotFound("Database: no table '" + name + "'");
  return it->second;
}

const Table& Database::table_entry(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw common::NotFound("Database: no table '" + name + "'");
  return it->second;
}

const rel::Relation& Database::table(const std::string& name) const {
  return table_entry(name).base;
}

const delta::DeltaRelation& Database::delta(const std::string& name) const {
  return table_entry(name).delta;
}

void Table::apply_insert(rel::Tuple row) {
  base_bytes += row.byte_size();
  base.insert(row);
  for (auto& [name, index] : indexes) index.on_insert(row);
}

rel::Tuple Table::apply_erase(rel::TupleId tid) {
  rel::Tuple old = base.erase(tid);
  base_bytes -= old.byte_size();
  for (auto& [name, index] : indexes) index.on_erase(old);
  return old;
}

rel::Tuple Table::apply_update(rel::TupleId tid, std::vector<rel::Value> values) {
  rel::Tuple replacement(values, tid);
  rel::Tuple old = base.update(tid, std::move(values));
  base_bytes += replacement.byte_size();
  base_bytes -= old.byte_size();
  for (auto& [name, index] : indexes) index.on_update(old, replacement);
  return old;
}

void Table::publish_gauges(const std::string& name) const {
  namespace obs = common::obs;
  if (gauges_.rows == nullptr) {
    const obs::Labels labels{{"table", name}};
    gauges_.rows = &obs::global().gauge(obs::gauge::kRelationRows, labels);
    gauges_.bytes = &obs::global().gauge(obs::gauge::kRelationBytes, labels);
    gauges_.delta_rows = &obs::global().gauge(obs::gauge::kDeltaRows, labels);
    gauges_.delta_bytes = &obs::global().gauge(obs::gauge::kDeltaBytes, labels);
  }
  gauges_.rows->set(static_cast<std::int64_t>(base.size()));
  gauges_.bytes->set(static_cast<std::int64_t>(base_bytes));
  gauges_.delta_rows->set(static_cast<std::int64_t>(delta.size()));
  gauges_.delta_bytes->set(static_cast<std::int64_t>(delta.byte_size()));
}

void Database::create_index(const std::string& table, const std::string& index_name,
                            const std::vector<std::string>& columns) {
  if (index_name.empty()) throw common::InvalidArgument("Database: empty index name");
  if (columns.empty()) {
    throw common::InvalidArgument("Database: index needs at least one column");
  }
  Table& entry = table_entry(table);
  if (entry.indexes.contains(index_name)) {
    throw common::InvalidArgument("Database: index '" + index_name +
                                  "' already exists on '" + table + "'");
  }
  std::vector<std::size_t> positions;
  positions.reserve(columns.size());
  for (const auto& c : columns) positions.push_back(entry.base.schema().index_of(c));
  rel::MaintainedIndex index(std::move(positions));
  index.build(entry.base);
  entry.indexes.emplace(index_name, std::move(index));
}

const rel::MaintainedIndex* Database::index_on(
    const std::string& table, const std::vector<std::size_t>& columns) const {
  const Table& entry = table_entry(table);
  for (const auto& [name, index] : entry.indexes) {
    if (index.columns().size() != columns.size()) continue;
    bool all_found = true;
    for (auto c : columns) {
      bool found = false;
      for (auto ic : index.columns()) found = found || ic == c;
      if (!found) {
        all_found = false;
        break;
      }
    }
    if (all_found) return &index;
  }
  return nullptr;
}

const rel::MaintainedIndex& Database::index(const std::string& table,
                                            const std::string& index_name) const {
  const Table& entry = table_entry(table);
  auto it = entry.indexes.find(index_name);
  if (it == entry.indexes.end()) {
    throw common::NotFound("Database: no index '" + index_name + "' on '" + table + "'");
  }
  return it->second;
}

void Database::restore_table(const std::string& name, rel::Relation base,
                             delta::DeltaRelation log) {
  if (name.empty()) throw common::InvalidArgument("Database: empty table name");
  if (tables_.contains(name)) {
    throw common::InvalidArgument("Database: table '" + name + "' already exists");
  }
  if (!(base.schema() == log.base_schema())) {
    throw common::SchemaMismatch("Database::restore_table: base/log schema mismatch");
  }
  Table table(base.schema());
  table.base = std::move(base);
  table.delta = std::move(log);
  table.delta.set_name(name);
  table.base_bytes = table.base.byte_size();  // one O(n) pass at restore
  tables_.emplace(name, std::move(table));
}

std::vector<std::string> Database::index_names(const std::string& table) const {
  const Table& entry = table_entry(table);
  std::vector<std::string> out;
  out.reserve(entry.indexes.size());
  for (const auto& [name, index] : entry.indexes) out.push_back(name);
  return out;
}

Transaction Database::begin() { return Transaction(*this); }

rel::TupleId Database::insert(const std::string& table, std::vector<rel::Value> values) {
  Transaction txn = begin();
  const rel::TupleId tid = txn.insert(table, std::move(values));
  txn.commit();
  return tid;
}

void Database::erase(const std::string& table, rel::TupleId tid) {
  Transaction txn = begin();
  txn.erase(table, tid);
  txn.commit();
}

void Database::modify(const std::string& table, rel::TupleId tid,
                      std::vector<rel::Value> values) {
  Transaction txn = begin();
  txn.modify(table, tid, std::move(values));
  txn.commit();
}

std::size_t Database::garbage_collect() {
  namespace obs = common::obs;
  const common::Timestamp cutoff = zones_.system_zone_start().value_or(clock_->now());
  std::size_t reclaimed = 0;
  for (auto& [name, table] : tables_) {
    reclaimed += table.delta.truncate_before(cutoff);
    if (obs::enabled()) table.publish_gauges(name);
  }
  obs::event(obs::Severity::kInfo, "gc_pass", "database",
             "reclaimed " + std::to_string(reclaimed) + " delta row(s), cutoff " +
                 cutoff.to_string(),
             clock_->now().ticks());
  if (reclaimed > 0) {
    common::log_debug("Database GC reclaimed ", reclaimed, " delta rows (cutoff ",
                      cutoff.to_string(), ")");
  }
  return reclaimed;
}

std::size_t Database::delta_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.delta.byte_size();
  return total;
}

void Database::refresh_resource_gauges() const {
  for (const auto& [name, table] : tables_) table.publish_gauges(name);
}

void Database::notify_commit(const std::vector<std::string>& tables,
                             common::Timestamp ts) {
  if (common::obs::enabled()) {
    // Keep the touched tables' resource gauges fresh: one O(1) publish per
    // table per commit (sizes and byte totals are maintained incrementally).
    for (const auto& name : tables) {
      auto it = tables_.find(name);
      if (it != tables_.end()) it->second.publish_gauges(name);
    }
  }
  if (commit_hook_) {
    // The eager dispatch phase of the commit pipeline (trigger checks +
    // CQ evaluation + notification), as a child of the "commit" root span.
    common::obs::Span span("commit.dispatch");
    commit_hook_(tables, ts);
  }
}

}  // namespace cq::cat
