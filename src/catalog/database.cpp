#include "catalog/database.hpp"

#include <algorithm>

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace cq::cat {

// ------------------------------------------------------------ ShardLockSet --

namespace {
/// Innermost ShardLockSet frame on this thread — commits nested inside a
/// dispatch (a sink writing back) must not re-acquire shards the
/// enclosing commit already holds.
ShardLockSet** innermost_slot() noexcept {
  thread_local ShardLockSet* innermost = nullptr;
  return &innermost;
}
}  // namespace

ShardLockSet::ShardLockSet(const Database& db, std::uint32_t mask)
    : db_(&db), prev_(*innermost_slot()) {
  std::uint32_t held = 0;
  for (ShardLockSet* f = prev_; f != nullptr; f = f->prev_) {
    if (f->db_ == db_) held |= f->locked_;
  }
  const std::uint32_t to_lock = mask & ~held;
  for (std::size_t i = 0; i < Database::kNumShards; ++i) {
    if ((to_lock & (1u << i)) == 0) continue;
    db_->shards_[i].mu.lock();
    locked_ |= 1u << i;
  }
  *innermost_slot() = this;
}

ShardLockSet::~ShardLockSet() {
  for (std::size_t i = Database::kNumShards; i-- > 0;) {
    if ((locked_ & (1u << i)) != 0) db_->shards_[i].mu.unlock();
  }
  *innermost_slot() = prev_;
}

// ---------------------------------------------------------------- Database --

Database::Database(std::shared_ptr<common::Clock> clock) : clock_(std::move(clock)) {
  if (!clock_) throw common::InvalidArgument("Database: null clock");
  // The shard mutexes share one site and rank; the order key (shard
  // index + 1, zero means "no cohort") is what lets the lock-order
  // checker admit ascending-index acquisition of several of them.
  for (std::size_t i = 0; i < kNumShards; ++i) {
    shards_[i].mu.set_order_key(static_cast<std::uint32_t>(i + 1));
  }
}

Database::Database() : Database(std::make_shared<common::VirtualClock>()) {}

Database::Database(Database&& other) noexcept
    : clock_(std::move(other.clock_)),
      zones_(std::move(other.zones_)),
      commit_hook_(std::move(other.commit_hook_)),
      closure_hook_(std::move(other.closure_hook_)) {
  for (std::size_t i = 0; i < kNumShards; ++i) {
    shards_[i].mu.set_order_key(static_cast<std::uint32_t>(i + 1));
    shards_[i].tables = std::move(other.shards_[i].tables);
    shards_[i].commits.store(other.shards_[i].commits.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  }
  // Our own ts_mu_ stays unlocked: *this is invisible mid-construction,
  // and a second same-rank "commit_ts" acquisition would trip the
  // lock-order checker.
  common::LockGuard lock(other.ts_mu_);
  commit_seq_ = other.commit_seq_;
}

std::size_t Database::shard_of(const std::string& name) noexcept {
  return std::hash<std::string>{}(name) % kNumShards;
}

std::uint32_t Database::shard_mask(const std::vector<std::string>& tables) noexcept {
  std::uint32_t mask = 0;
  for (const auto& name : tables) mask |= 1u << shard_of(name);
  return mask;
}

std::vector<std::string> Database::commit_closure(
    const std::vector<std::string>& write_set) const {
  std::vector<std::string> closure = write_set;
  if (closure_hook_) closure_hook_(write_set, closure);
  return closure;
}

common::Timestamp Database::allocate_commit_ts() {
  common::LockGuard lock(ts_mu_);
  ++commit_seq_;
  return clock_->tick();
}

std::uint64_t Database::commit_sequence() const {
  common::LockGuard lock(ts_mu_);
  return commit_seq_;
}

std::uint64_t Database::shard_commits(std::size_t i) const noexcept {
  if (i >= kNumShards) return 0;
  return shards_[i].commits.load(std::memory_order_relaxed);
}

rel::TupleId Database::reserve_tid(const std::string& table) {
  Table& entry = table_entry(table);
  ShardLockSet lock(*this, 1u << shard_of(table));
  return entry.base.reserve_tid();
}

void Database::unreserve_tid(const std::string& table, rel::TupleId tid) noexcept {
  auto& shard = shards_[shard_of(table)];
  auto it = shard.tables.find(table);
  if (it == shard.tables.end()) return;
  ShardLockSet lock(*this, 1u << shard_of(table));
  it->second.base.unreserve_tid(tid);
}

void Database::create_table(const std::string& name, rel::Schema schema) {
  if (name.empty()) throw common::InvalidArgument("Database: empty table name");
  if (has_table(name)) {
    throw common::InvalidArgument("Database: table '" + name + "' already exists");
  }
  Shard& shard = shards_[shard_of(name)];
  ShardLockSet lock(*this, 1u << shard_of(name));
  auto [it, inserted] = shard.tables.emplace(name, Table(std::move(schema)));
  (void)inserted;
  it->second.delta.set_name(name);
}

bool Database::has_table(const std::string& name) const noexcept {
  return shards_[shard_of(name)].tables.contains(name);
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    for (const auto& [name, table] : shard.tables) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Table& Database::table_entry(const std::string& name) {
  auto& tables = shards_[shard_of(name)].tables;
  auto it = tables.find(name);
  if (it == tables.end()) throw common::NotFound("Database: no table '" + name + "'");
  return it->second;
}

const Table& Database::table_entry(const std::string& name) const {
  const auto& tables = shards_[shard_of(name)].tables;
  auto it = tables.find(name);
  if (it == tables.end()) throw common::NotFound("Database: no table '" + name + "'");
  return it->second;
}

const rel::Relation& Database::table(const std::string& name) const {
  return table_entry(name).base;
}

const delta::DeltaRelation& Database::delta(const std::string& name) const {
  return table_entry(name).delta;
}

void Table::apply_insert(rel::Tuple row) {
  base_bytes += row.byte_size();
  base.insert(row);
  for (auto& [name, index] : indexes) index.on_insert(row);
}

rel::Tuple Table::apply_erase(rel::TupleId tid) {
  rel::Tuple old = base.erase(tid);
  base_bytes -= old.byte_size();
  for (auto& [name, index] : indexes) index.on_erase(old);
  return old;
}

rel::Tuple Table::apply_update(rel::TupleId tid, std::vector<rel::Value> values) {
  rel::Tuple replacement(values, tid);
  rel::Tuple old = base.update(tid, std::move(values));
  base_bytes += replacement.byte_size();
  base_bytes -= old.byte_size();
  for (auto& [name, index] : indexes) index.on_update(old, replacement);
  return old;
}

void Table::publish_gauges(const std::string& name) const {
  namespace obs = common::obs;
  if (gauges_.rows == nullptr) {
    const obs::Labels labels{{"table", name}};
    gauges_.rows = &obs::global().gauge(obs::gauge::kRelationRows, labels);
    gauges_.bytes = &obs::global().gauge(obs::gauge::kRelationBytes, labels);
    gauges_.delta_rows = &obs::global().gauge(obs::gauge::kDeltaRows, labels);
    gauges_.delta_bytes = &obs::global().gauge(obs::gauge::kDeltaBytes, labels);
  }
  gauges_.rows->set(static_cast<std::int64_t>(base.size()));
  gauges_.bytes->set(static_cast<std::int64_t>(base_bytes));
  gauges_.delta_rows->set(static_cast<std::int64_t>(delta.size()));
  gauges_.delta_bytes->set(static_cast<std::int64_t>(delta.byte_size()));
}

void Database::create_index(const std::string& table, const std::string& index_name,
                            const std::vector<std::string>& columns) {
  if (index_name.empty()) throw common::InvalidArgument("Database: empty index name");
  if (columns.empty()) {
    throw common::InvalidArgument("Database: index needs at least one column");
  }
  Table& entry = table_entry(table);
  ShardLockSet lock(*this, 1u << shard_of(table));
  if (entry.indexes.contains(index_name)) {
    throw common::InvalidArgument("Database: index '" + index_name +
                                  "' already exists on '" + table + "'");
  }
  std::vector<std::size_t> positions;
  positions.reserve(columns.size());
  for (const auto& c : columns) positions.push_back(entry.base.schema().index_of(c));
  rel::MaintainedIndex index(std::move(positions));
  index.build(entry.base);
  entry.indexes.emplace(index_name, std::move(index));
}

const rel::MaintainedIndex* Database::index_on(
    const std::string& table, const std::vector<std::size_t>& columns) const {
  const Table& entry = table_entry(table);
  for (const auto& [name, index] : entry.indexes) {
    if (index.columns().size() != columns.size()) continue;
    bool all_found = true;
    for (auto c : columns) {
      bool found = false;
      for (auto ic : index.columns()) found = found || ic == c;
      if (!found) {
        all_found = false;
        break;
      }
    }
    if (all_found) return &index;
  }
  return nullptr;
}

const rel::MaintainedIndex& Database::index(const std::string& table,
                                            const std::string& index_name) const {
  const Table& entry = table_entry(table);
  auto it = entry.indexes.find(index_name);
  if (it == entry.indexes.end()) {
    throw common::NotFound("Database: no index '" + index_name + "' on '" + table + "'");
  }
  return it->second;
}

void Database::restore_table(const std::string& name, rel::Relation base,
                             delta::DeltaRelation log) {
  if (name.empty()) throw common::InvalidArgument("Database: empty table name");
  if (has_table(name)) {
    throw common::InvalidArgument("Database: table '" + name + "' already exists");
  }
  if (!(base.schema() == log.base_schema())) {
    throw common::SchemaMismatch("Database::restore_table: base/log schema mismatch");
  }
  Table table(base.schema());
  table.base = std::move(base);
  table.delta = std::move(log);
  table.delta.set_name(name);
  table.base_bytes = table.base.byte_size();  // one O(n) pass at restore
  Shard& shard = shards_[shard_of(name)];
  ShardLockSet lock(*this, 1u << shard_of(name));
  shard.tables.emplace(name, std::move(table));
}

std::vector<std::string> Database::index_names(const std::string& table) const {
  const Table& entry = table_entry(table);
  std::vector<std::string> out;
  out.reserve(entry.indexes.size());
  for (const auto& [name, index] : entry.indexes) out.push_back(name);
  return out;
}

Transaction Database::begin() { return Transaction(*this); }

rel::TupleId Database::insert(const std::string& table, std::vector<rel::Value> values) {
  Transaction txn = begin();
  const rel::TupleId tid = txn.insert(table, std::move(values));
  txn.commit();
  return tid;
}

void Database::erase(const std::string& table, rel::TupleId tid) {
  Transaction txn = begin();
  txn.erase(table, tid);
  txn.commit();
}

void Database::modify(const std::string& table, rel::TupleId tid,
                      std::vector<rel::Value> values) {
  Transaction txn = begin();
  txn.modify(table, tid, std::move(values));
  txn.commit();
}

std::size_t Database::garbage_collect() {
  namespace obs = common::obs;
  const common::Timestamp cutoff = zones_.system_zone_start().value_or(clock_->now());
  std::size_t reclaimed = 0;
  // One shard at a time: GC never stalls the whole commit pipeline, only
  // the shard it is truncating.
  for (std::size_t i = 0; i < kNumShards; ++i) {
    ShardLockSet lock(*this, 1u << i);
    for (auto& [name, table] : shards_[i].tables) {
      reclaimed += table.delta.truncate_before(cutoff);
      if (obs::enabled()) table.publish_gauges(name);
    }
  }
  obs::event(obs::Severity::kInfo, "gc_pass", "database",
             "reclaimed " + std::to_string(reclaimed) + " delta row(s), cutoff " +
                 cutoff.to_string(),
             clock_->now().ticks());
  if (reclaimed > 0) {
    common::log_debug("Database GC reclaimed ", reclaimed, " delta rows (cutoff ",
                      cutoff.to_string(), ")");
  }
  return reclaimed;
}

std::size_t Database::delta_bytes() const noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kNumShards; ++i) {
    ShardLockSet lock(*this, 1u << i);
    for (const auto& [name, table] : shards_[i].tables) total += table.delta.byte_size();
  }
  return total;
}

void Database::refresh_resource_gauges() const {
  for (std::size_t i = 0; i < kNumShards; ++i) {
    ShardLockSet lock(*this, 1u << i);
    for (const auto& [name, table] : shards_[i].tables) table.publish_gauges(name);
  }
}

void Database::notify_commit(const std::vector<std::string>& tables,
                             common::Timestamp ts) {
  // Caller (Transaction::commit) holds the shard locks of the whole
  // commit closure, so the gauges and the dispatched CQ evaluations read
  // a stable snapshot of every table involved.
  const std::uint32_t touched_shards = shard_mask(tables);
  for (std::size_t i = 0; i < kNumShards; ++i) {
    if ((touched_shards & (1u << i)) != 0) {
      shards_[i].commits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (common::obs::enabled()) {
    namespace obs = common::obs;
    // Keep the touched tables' resource gauges fresh: one O(1) publish per
    // table per commit (sizes and byte totals are maintained incrementally).
    for (const auto& name : tables) {
      const auto& shard_tables = shards_[shard_of(name)].tables;
      auto it = shard_tables.find(name);
      if (it != shard_tables.end()) it->second.publish_gauges(name);
    }
    for (std::size_t i = 0; i < kNumShards; ++i) {
      if ((touched_shards & (1u << i)) == 0) continue;
      const Shard& shard = shards_[i];
      if (shard.commits_gauge == nullptr) {
        shard.commits_gauge = &obs::global().gauge(
            obs::gauge::kShardCommits, obs::Labels{{"shard", std::to_string(i)}});
      }
      shard.commits_gauge->set(
          static_cast<std::int64_t>(shard.commits.load(std::memory_order_relaxed)));
    }
  }
  if (commit_hook_) {
    // The eager dispatch phase of the commit pipeline (trigger checks +
    // CQ evaluation + notification), as a child of the "commit" root span.
    common::obs::Span span("commit.dispatch");
    commit_hook_(tables, ts);
  }
}

}  // namespace cq::cat
