// Transactions over a Database, mirroring the paper's Example 1:
//
//   Begin Transaction T
//     Insert (101088, MAC, 117);
//     Modify (120992, DEC, 150) = (120992, DEC, 149);
//     Delete (092394);
//   End Transaction
//
// Changes become visible — and are appended to the differential relations,
// composed to their per-tid net effect — atomically at commit(), stamped
// with a single fresh timestamp.
#pragma once

#include <string>
#include <vector>

#include "common/timestamp.hpp"
#include "relation/tuple.hpp"
#include "relation/value.hpp"

namespace cq::cat {

class Database;

class Transaction {
 public:
  ~Transaction();
  Transaction(Transaction&&) noexcept;
  Transaction& operator=(Transaction&&) = delete;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Queue an insert; the returned tid may be used by later ops in this
  /// transaction (e.g. modify a row inserted moments earlier).
  rel::TupleId insert(const std::string& table, std::vector<rel::Value> values);

  /// Queue a deletion of the row with this tid.
  void erase(const std::string& table, rel::TupleId tid);

  /// Queue an in-place modification: the row takes these values.
  void modify(const std::string& table, rel::TupleId tid, std::vector<rel::Value> values);

  /// Validate and apply every queued op atomically, append the net effect to
  /// the differential relations, and return the commit timestamp. A
  /// validation failure (unknown table/tid, double delete, arity mismatch)
  /// throws and leaves the database untouched.
  common::Timestamp commit();

  /// Discard all queued ops. Reserved tids are not reused.
  void abort() noexcept;

  [[nodiscard]] bool active() const noexcept { return state_ == State::kActive; }
  [[nodiscard]] std::size_t pending_ops() const noexcept { return ops_.size(); }

 private:
  friend class Database;
  explicit Transaction(Database& db) : db_(&db) {}

  enum class State { kActive, kCommitted, kAborted };
  enum class OpKind { kInsert, kDelete, kModify };

  struct Op {
    OpKind kind;
    std::string table;
    rel::TupleId tid;
    std::vector<rel::Value> values;  // new values for insert/modify
  };

  void require_active() const;

  Database* db_;
  std::vector<Op> ops_;
  State state_ = State::kActive;
};

}  // namespace cq::cat
