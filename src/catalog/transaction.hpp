// Transactions over a Database, mirroring the paper's Example 1:
//
//   Begin Transaction T
//     Insert (101088, MAC, 117);
//     Modify (120992, DEC, 150) = (120992, DEC, 149);
//     Delete (092394);
//   End Transaction
//
// Changes become visible — and are appended to the differential relations,
// composed to their per-tid net effect — atomically at commit(), stamped
// with a single fresh timestamp.
//
// Commit pipeline (multi-writer): compute the commit closure (write set
// plus the read sets of the CQs it can trigger), acquire the closure's
// shard locks in ascending shard order, validate, apply all-or-nothing
// (a failure mid-apply rolls every applied op back), allocate the commit
// timestamp in the "commit_ts" critical section, append the net effect
// to the delta logs, and dispatch notifications — all before releasing
// the shards. Transactions over disjoint closures run this whole
// pipeline concurrently; conflicting ones serialize on their shared
// shards, so each CQ still observes exactly the sequential order.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/timestamp.hpp"
#include "relation/tuple.hpp"
#include "relation/value.hpp"

namespace cq::cat {

class Database;

class Transaction {
 public:
  ~Transaction();
  Transaction(Transaction&&) noexcept;
  Transaction& operator=(Transaction&&) = delete;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Queue an insert; the returned tid may be used by later ops in this
  /// transaction (e.g. modify a row inserted moments earlier). The tid is
  /// reserved under the table's shard lock, so concurrent transactions
  /// never race a reservation.
  rel::TupleId insert(const std::string& table, std::vector<rel::Value> values);

  /// Queue a deletion of the row with this tid.
  void erase(const std::string& table, rel::TupleId tid);

  /// Queue an in-place modification: the row takes these values.
  void modify(const std::string& table, rel::TupleId tid, std::vector<rel::Value> values);

  /// Validate and apply every queued op atomically, append the net effect to
  /// the differential relations, and return the commit timestamp. A
  /// validation failure (unknown table/tid, double delete, arity mismatch)
  /// throws and leaves the database untouched; a failure mid-apply rolls
  /// back the already-applied ops before rethrowing, so the base tables
  /// never expose a partial transaction.
  common::Timestamp commit();

  /// Discard all queued ops. Reserved tids are returned when no later
  /// reservation built on top of them (so an abort normally does not
  /// disturb the tids of subsequent commits).
  void abort() noexcept;

  [[nodiscard]] bool active() const noexcept { return state_ == State::kActive; }
  [[nodiscard]] std::size_t pending_ops() const noexcept { return ops_.size(); }

  /// Test seam: invoked after each op the apply pass applies, with the
  /// count of ops applied so far. A hook that throws exercises the
  /// mid-apply rollback path. Never set in production code.
  void set_apply_fault_hook_for_testing(std::function<void(std::size_t)> hook) {
    apply_fault_hook_ = std::move(hook);
  }

 private:
  friend class Database;
  explicit Transaction(Database& db) : db_(&db) {}

  enum class State { kActive, kCommitted, kAborted };
  enum class OpKind { kInsert, kDelete, kModify };

  struct Op {
    OpKind kind;
    std::string table;
    rel::TupleId tid;
    std::vector<rel::Value> values;  // new values for insert/modify
  };

  void require_active() const;

  Database* db_;
  std::vector<Op> ops_;
  /// Tids reserved by insert(), in reservation order; unwound on abort.
  std::vector<std::pair<std::string, rel::TupleId>> reserved_;
  std::function<void(std::size_t)> apply_fault_hook_;
  State state_ = State::kActive;
};

}  // namespace cq::cat
