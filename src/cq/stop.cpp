#include "cq/stop.hpp"

#include <utility>

#include "common/error.hpp"
#include "cq/trigger.hpp"

namespace cq::core::stop {

namespace {

class NeverStop final : public StopCondition {
 public:
  bool satisfied(const TriggerContext&) const override { return false; }
  std::string describe() const override { return "never"; }
};

class AtTimeStop final : public StopCondition {
 public:
  explicit AtTimeStop(common::Timestamp t) : t_(t) {}
  bool satisfied(const TriggerContext& context) const override {
    return context.now >= t_;
  }
  std::string describe() const override { return "at time " + t_.to_string(); }

 private:
  common::Timestamp t_;
};

class AfterExecutionsStop final : public StopCondition {
 public:
  explicit AfterExecutionsStop(std::uint64_t n) : n_(n) {
    if (n == 0) throw common::InvalidArgument("after_executions: n must be positive");
  }
  bool satisfied(const TriggerContext& context) const override {
    return context.executions >= n_;
  }
  std::string describe() const override {
    return "after " + std::to_string(n_) + " executions";
  }

 private:
  std::uint64_t n_;
};

class PredicateStop final : public StopCondition {
 public:
  PredicateStop(std::function<bool(const TriggerContext&)> predicate,
                std::string description)
      : predicate_(std::move(predicate)), description_(std::move(description)) {
    if (!predicate_) throw common::InvalidArgument("stop::when: null predicate");
  }
  bool satisfied(const TriggerContext& context) const override {
    return predicate_(context);
  }
  std::string describe() const override { return description_; }

 private:
  std::function<bool(const TriggerContext&)> predicate_;
  std::string description_;
};

}  // namespace

StopPtr never() { return std::make_shared<NeverStop>(); }

StopPtr at_time(common::Timestamp t) { return std::make_shared<AtTimeStop>(t); }

StopPtr after_executions(std::uint64_t n) {
  return std::make_shared<AfterExecutionsStop>(n);
}

StopPtr when(std::function<bool(const TriggerContext&)> predicate,
             std::string description) {
  return std::make_shared<PredicateStop>(std::move(predicate), std::move(description));
}

}  // namespace cq::core::stop
