#include "cq/history.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cq::core {

using common::Timestamp;
using rel::Relation;

ResultHistory::ResultHistory(std::size_t checkpoint_every)
    : checkpoint_every_(std::max<std::size_t>(1, checkpoint_every)) {}

void ResultHistory::on_result(const Notification& notification) {
  Entry entry;
  entry.at = notification.at;

  if (notification.aggregate) {
    // Aggregate results are small; store them as per-execution checkpoints
    // with the aggregate-level diff alongside.
    entry.delta = notification.delta;
    entry.checkpoint = *notification.aggregate;
    entries_.push_back(std::move(entry));
    return;
  }

  if (entries_.empty()) {
    if (!notification.complete) {
      throw common::Unsupported(
          "ResultHistory: the initial notification must carry the complete "
          "result (use kDifferential or kComplete mode)");
    }
    entry.checkpoint = *notification.complete;
    entry.delta = notification.delta;  // empty by construction
    entries_.push_back(std::move(entry));
    return;
  }

  entry.delta = notification.delta;
  if (notification.complete) {
    if (entries_.size() % checkpoint_every_ == 0) {
      entry.checkpoint = *notification.complete;
    }
  } else if (entries_.size() % checkpoint_every_ == 0) {
    // Differential mode: build the checkpoint ourselves.
    entry.checkpoint = apply_diff(at(entries_.size() - 1), entry.delta.consolidated());
  }
  entries_.push_back(std::move(entry));
}

Timestamp ResultHistory::timestamp(std::size_t execution) const {
  if (execution >= entries_.size()) {
    throw common::NotFound("ResultHistory: no execution " + std::to_string(execution));
  }
  return entries_[execution].at;
}

const DiffResult& ResultHistory::delta(std::size_t execution) const {
  if (execution >= entries_.size()) {
    throw common::NotFound("ResultHistory: no execution " + std::to_string(execution));
  }
  return entries_[execution].delta;
}

Relation ResultHistory::at(std::size_t execution) const {
  if (execution >= entries_.size()) {
    throw common::NotFound("ResultHistory: no execution " + std::to_string(execution));
  }
  // Walk back to the nearest checkpoint, then roll forward.
  std::size_t base = execution;
  while (!entries_[base].checkpoint) {
    CQ_ASSERT(base > 0);  // entry 0 always has a checkpoint
    --base;
  }
  Relation result = *entries_[base].checkpoint;
  for (std::size_t i = base + 1; i <= execution; ++i) {
    result = apply_diff(result, entries_[i].delta.consolidated());
  }
  return result;
}

Relation ResultHistory::as_of(Timestamp t) const {
  if (entries_.empty() || t < entries_.front().at) {
    throw common::NotFound("ResultHistory: no result as of t=" + t.to_string());
  }
  // Entries are timestamp-ordered; find the last one with at <= t.
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), t,
      [](Timestamp value, const Entry& e) { return value < e.at; });
  return at(static_cast<std::size_t>(it - entries_.begin()) - 1);
}

std::size_t ResultHistory::stored_rows() const noexcept {
  std::size_t total = 0;
  for (const auto& e : entries_) {
    total += e.delta.size();
    if (e.checkpoint) total += e.checkpoint->size();
  }
  return total;
}

}  // namespace cq::core
