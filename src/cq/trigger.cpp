#include "cq/trigger.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace cq::core::triggers {

using common::Duration;
using common::Timestamp;

namespace {

class PeriodicTrigger final : public Trigger {
 public:
  explicit PeriodicTrigger(Duration interval) : interval_(interval) {
    if (interval.ticks() <= 0) {
      throw common::InvalidArgument("periodic trigger needs a positive interval");
    }
  }

  bool should_fire(const TriggerContext& context) const override {
    return context.now >= context.last_execution + interval_;
  }

  std::string describe() const override {
    return "every " + std::to_string(interval_.ticks()) + " ticks";
  }

 private:
  Duration interval_;
};

class AtTimesTrigger final : public Trigger {
 public:
  explicit AtTimesTrigger(std::vector<Timestamp> times) : times_(std::move(times)) {
    std::sort(times_.begin(), times_.end());
  }

  bool should_fire(const TriggerContext& context) const override {
    // Fire if some scheduled instant falls in (last_execution, now].
    auto it = std::upper_bound(times_.begin(), times_.end(), context.last_execution);
    return it != times_.end() && *it <= context.now;
  }

  std::string describe() const override {
    return "at " + std::to_string(times_.size()) + " scheduled instants";
  }

 private:
  std::vector<Timestamp> times_;
};

class OnChangeTrigger final : public Trigger {
 public:
  bool should_fire(const TriggerContext& context) const override {
    for (const auto& table : context.relations) {
      const auto* snap = context.snapshot_of(table);
      const bool changed = snap != nullptr
                               ? snap->changed_since(context.last_execution)
                               : context.db.delta(table).changed_since(context.last_execution);
      if (changed) return true;
    }
    return false;
  }

  std::string describe() const override { return "on any change"; }
};

class ChangeCountTrigger final : public Trigger {
 public:
  explicit ChangeCountTrigger(std::size_t threshold) : threshold_(threshold) {
    if (threshold == 0) {
      throw common::InvalidArgument("change_count trigger needs a positive threshold");
    }
  }

  bool should_fire(const TriggerContext& context) const override {
    std::size_t total = 0;
    for (const auto& table : context.relations) {
      const auto* snap = context.snapshot_of(table);
      const auto& delta = context.db.delta(table);
      // Pin before the direct read; the snapshot path pins internally.
      const auto pin = delta.pin_reads();
      total += snap != nullptr
                   ? snap->net_effect(context.last_execution).size()
                   : delta.net_effect(context.last_execution).size();
      if (total >= threshold_) return true;
    }
    return false;
  }

  std::string describe() const override {
    return "when >= " + std::to_string(threshold_) + " tuples changed";
  }

 private:
  std::size_t threshold_;
};

class AggregateDriftTrigger final : public Trigger {
 public:
  AggregateDriftTrigger(std::string table, std::string column, double epsilon)
      : table_(std::move(table)), column_(std::move(column)), epsilon_(epsilon) {
    if (epsilon <= 0) {
      throw common::InvalidArgument("aggregate_drift trigger needs a positive epsilon");
    }
  }

  bool should_fire(const TriggerContext& context) const override {
    // Differential form (Section 5.3): scan only ΔR with ts > t_last.
    const auto* snap = context.snapshot_of(table_);
    const auto& delta = context.db.delta(table_);
    // Pin before the direct reads below; the snapshot path pins internally.
    const auto pin = delta.pin_reads();
    const bool changed = snap != nullptr ? snap->changed_since(context.last_execution)
                                         : delta.changed_since(context.last_execution);
    if (!changed) return false;
    const std::size_t col = delta.base_schema().index_of(column_);
    const std::vector<cq::delta::DeltaRow> live =
        snap != nullptr ? std::vector<cq::delta::DeltaRow>{}
                        : delta.net_effect(context.last_execution);
    const auto& net = snap != nullptr ? snap->net_effect(context.last_execution) : live;
    double drift = 0.0;
    for (const auto& row : net) {
      if (row.new_values && !(*row.new_values)[col].is_null()) {
        drift += (*row.new_values)[col].numeric();
      }
      if (row.old_values && !(*row.old_values)[col].is_null()) {
        drift -= (*row.old_values)[col].numeric();
      }
    }
    return std::fabs(drift) >= epsilon_;
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "when |Δ SUM(" << table_ << "." << column_ << ")| >= " << epsilon_;
    return os.str();
  }

 private:
  std::string table_;
  std::string column_;
  double epsilon_;
};

class CompositeTrigger final : public Trigger {
 public:
  CompositeTrigger(std::vector<TriggerPtr> children, bool conjunction)
      : children_(std::move(children)), conjunction_(conjunction) {
    if (children_.empty()) {
      throw common::InvalidArgument("composite trigger needs at least one child");
    }
    for (const auto& c : children_) {
      if (!c) throw common::InvalidArgument("composite trigger: null child");
    }
  }

  bool should_fire(const TriggerContext& context) const override {
    if (conjunction_) {
      for (const auto& c : children_) {
        if (!c->should_fire(context)) return false;
      }
      return true;
    }
    for (const auto& c : children_) {
      if (c->should_fire(context)) return true;
    }
    return false;
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) os << (conjunction_ ? " AND " : " OR ");
      os << children_[i]->describe();
    }
    os << ")";
    return os.str();
  }

 private:
  std::vector<TriggerPtr> children_;
  bool conjunction_;
};

class ManualTrigger final : public Trigger {
 public:
  bool should_fire(const TriggerContext&) const override { return false; }
  std::string describe() const override { return "manual"; }
};

}  // namespace

TriggerPtr periodic(Duration interval) {
  return std::make_shared<PeriodicTrigger>(interval);
}

TriggerPtr at_times(std::vector<Timestamp> times) {
  return std::make_shared<AtTimesTrigger>(std::move(times));
}

TriggerPtr on_change() { return std::make_shared<OnChangeTrigger>(); }

TriggerPtr change_count(std::size_t threshold) {
  return std::make_shared<ChangeCountTrigger>(threshold);
}

TriggerPtr aggregate_drift(std::string table, std::string column, double epsilon) {
  return std::make_shared<AggregateDriftTrigger>(std::move(table), std::move(column),
                                                 epsilon);
}

TriggerPtr all_of(std::vector<TriggerPtr> triggers) {
  return std::make_shared<CompositeTrigger>(std::move(triggers), /*conjunction=*/true);
}

TriggerPtr any_of(std::vector<TriggerPtr> triggers) {
  return std::make_shared<CompositeTrigger>(std::move(triggers), /*conjunction=*/false);
}

TriggerPtr manual() { return std::make_shared<ManualTrigger>(); }

}  // namespace cq::core::triggers
