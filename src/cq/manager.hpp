// The CQ manager (Sections 4.2, 5.3, 5.4): owns the installed continual
// queries, decides *when* to test their trigger conditions (eagerly after
// every commit, or periodically via poll()), invokes the DRA with the
// proper timestamp predicate, delivers notifications, and drives garbage
// collection of the differential relations through the delta-zone registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "common/metrics.hpp"
#include "common/observability.hpp"
#include "common/prometheus.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "cq/continual_query.hpp"
#include "cq/lineage.hpp"
#include "delta/delta_snapshot.hpp"

namespace cq::core {

/// Handle to an installed CQ.
using CqHandle = std::uint64_t;

/// Per-CQ statistics, kept by name in the manager's registry. Entries
/// survive removal / Stop so a whole deployment's history is inspectable
/// (cqshell STATS, observability export).
struct CqStats {
  std::string name;
  std::uint64_t executions = 0;       // including the initial E_0
  std::uint64_t trigger_checks = 0;   // poll/eager evaluations of T_CQ
  std::uint64_t fired = 0;            // checks where the trigger held
  std::uint64_t suppressed = 0;       // checks where it did not
  std::uint64_t delta_rows_consumed = 0;  // net-effect rows read by the DRA
  std::uint64_t rows_delivered = 0;       // notification payload rows
  std::uint64_t last_exec_ns = 0;     // wall time of the latest execution
  std::uint64_t total_exec_ns = 0;    // cumulative execution wall time
  common::Timestamp last_execution;   // logical instant of latest execution
  bool finished = false;              // removed or Stop condition reached
};

class CqManager {
 public:
  /// The database must outlive the manager.
  explicit CqManager(cat::Database& db);
  ~CqManager();

  CqManager(const CqManager&) = delete;
  CqManager& operator=(const CqManager&) = delete;

  /// Install a CQ: runs the initial execution E_0 immediately, delivers it
  /// to `sink` (which may be null to discard notifications), and registers
  /// the CQ's active delta zone. Returns a handle.
  CqHandle install(CqSpec spec, std::shared_ptr<ResultSink> sink);

  /// Re-install a CQ recovered from a persisted deployment: no initial
  /// execution or notification; runtime state (saved result, aggregate
  /// accumulators, DISTINCT counts) is reconstructed from the database via
  /// ContinualQuery::restore, and the delta zone registers at
  /// `last_execution` so garbage collection keeps the rows it still needs.
  CqHandle install_restored(CqSpec spec, std::shared_ptr<ResultSink> sink,
                            common::Timestamp last_execution,
                            std::uint64_t executions);

  /// Remove a CQ before its Stop condition fires; releases its delta zone.
  void remove(CqHandle handle);

  /// Periodic strategy (Section 5.3): test every active CQ's trigger and
  /// stop conditions; execute those that fire. Returns how many executed.
  std::size_t poll();

  /// Eager strategy (Section 5.3): hook into the database so triggers are
  /// tested immediately after each commit that touches a CQ's relations.
  /// Pass false to return to purely periodic checking.
  void set_eager(bool eager);
  [[nodiscard]] bool eager() const noexcept { return eager_; }

  /// Force one execution regardless of the trigger.
  Notification execute_now(CqHandle handle);

  /// Number of evaluation lanes used per dispatch (poll / eager commit).
  /// 1 (the default) keeps the historical sequential code path and is
  /// bit-identical to it; n > 1 evaluates trigger-eligible CQs on a
  /// thread pool of n lanes (n − 1 pool workers plus the dispatching
  /// thread) against shared pinned delta snapshots, then merges every
  /// side effect — notifications, stats, metrics, zone advances — in
  /// handle order, so the observable stream is identical for any n as
  /// long as sinks do not mutate the database (the determinism contract;
  /// see docs/performance.md). 0 is treated as 1.
  void set_parallelism(std::size_t threads);
  [[nodiscard]] std::size_t parallelism() const noexcept { return threads_; }

  /// Toggle delta lineage collection and set the per-CQ retention depth.
  /// When on, every base delta row leaving a delta log is tagged with a
  /// (txn, relation, seq) provenance id, the DRA operators thread the sets
  /// through to notification output rows, and the newest `retention`
  /// notifications per CQ are retained in lineage(). The provenance flag
  /// is process-global (rel::prov::set_enabled) — with several managers in
  /// one process, the last call wins. Disabling stops collection but keeps
  /// the already-retained records inspectable.
  void set_lineage(bool enabled,
                   std::size_t retention = LineageStore::kDefaultRetention);
  [[nodiscard]] bool lineage_enabled() const noexcept { return lineage_on_; }

  /// The per-CQ lineage retention rings (/lineage, EXPLAIN NOTIFICATION).
  [[nodiscard]] LineageStore& lineage() noexcept { return lineage_; }
  [[nodiscard]] const LineageStore& lineage() const noexcept { return lineage_; }

  /// Reclaim differential-relation rows outside the system active delta
  /// zone (Section 5.4). Returns rows reclaimed.
  std::size_t collect_garbage();

  [[nodiscard]] std::size_t active_count() const noexcept {
    common::LockGuard lock(entries_mu_);
    return entries_.size();
  }
  [[nodiscard]] bool contains(CqHandle handle) const noexcept {
    common::LockGuard lock(entries_mu_);
    return entries_.contains(handle);
  }
  [[nodiscard]] const ContinualQuery& cq(CqHandle handle) const;
  [[nodiscard]] std::vector<CqHandle> handles() const;

  /// Work counters accumulated across all executions (rows scanned, delta
  /// rows read, trigger checks, ...).
  [[nodiscard]] common::Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const common::Metrics& metrics() const noexcept { return metrics_; }

  /// Stats of the most recent DRA invocation (for EXPLAIN-style output).
  /// A copy: the record is overwritten by whichever thread dispatched the
  /// latest commit.
  [[nodiscard]] DraStats last_dra_stats() const {
    common::LockGuard lock(stats_mu_);
    return last_stats_;
  }

  /// Per-CQ statistics for a live handle. Returns a copy: the live record
  /// is guarded by the stats mutex and keeps moving while introspection
  /// handlers read.
  [[nodiscard]] CqStats stats(CqHandle handle) const;

  /// The whole registry, keyed by CQ name; includes finished/removed CQs.
  /// Returns a copy (see stats()).
  [[nodiscard]] std::map<std::string, CqStats> cq_stats() const;

  /// Emit the registry as a JSON object {cq_name: {...}} into `w`.
  void write_stats_json(common::obs::JsonWriter& w) const;

  /// The registry packaged for observability::export_json (key "cqs").
  [[nodiscard]] common::obs::Section stats_section() const;

  /// Emit per-CQ counters (executions, fired, suppressed, delta rows
  /// consumed, rows delivered — label cq="name") and the active-CQ gauge
  /// into a Prometheus exposition.
  void write_prometheus(common::obs::PromWriter& w) const;

  /// write_prometheus packaged for render_prometheus's section list.
  [[nodiscard]] std::function<void(common::obs::PromWriter&)> prometheus_section() const;

  /// Zero the work counters and every per-CQ stats record (executions,
  /// checks, timings) so an interactive measurement window starts from a
  /// clean slate. Installed CQs stay installed; name/finished survive.
  void reset_stats();

 private:
  struct Entry {
    std::unique_ptr<ContinualQuery> query;
    std::shared_ptr<ResultSink> sink;
    delta::CqId zone_id = 0;
  };

  /// Run one CQ, notify, advance its zone; finish it when Stop holds.
  void run(CqHandle handle, Entry& entry);
  void finish(CqHandle handle);
  void on_commit(const std::vector<std::string>& tables, common::Timestamp ts);
  /// Closure callback registered with the database while eager: appends
  /// the read sets of every CQ whose relations intersect `write_set`, so
  /// the committer's shard lock set covers everything on_commit reads.
  void extend_closure(const std::vector<std::string>& write_set,
                      std::vector<std::string>& closure) const;
  /// The handles whose read set intersects `tables` (all handles when
  /// `tables` is nullptr), snapshotted under entries_mu_.
  [[nodiscard]] std::vector<CqHandle> relevant_handles(
      const std::vector<std::string>* tables) const;
  /// Entry lookup under entries_mu_; nullptr when the handle is gone.
  /// The returned pointer is stable (map nodes don't move) and the entry
  /// is safe to use under the exclusivity contract above.
  [[nodiscard]] Entry* find_entry(CqHandle handle);
  /// Trigger-check bookkeeping shared by poll() and on_commit().
  void record_check(const Entry& entry, bool fired);
  /// Retain a delivered notification's lineage (no-op when lineage is
  /// off). Called only from serialized delivery points — the sequential
  /// run, the parallel merge loop, execute_now and install.
  void record_lineage(const Notification& note);
  CqStats& stats_of(const Entry& entry) CQ_REQUIRES(stats_mu_);
  /// Parallel dispatch (threads_ > 1): snapshot the touched deltas once,
  /// partition `handles` into read-set batches, evaluate on the pool, and
  /// merge all side effects in handle order. Returns executions performed.
  std::size_t dispatch_parallel(const std::vector<CqHandle>& handles);

  // Concurrency contract (multi-writer commits): the entries_ map
  // *structure* is guarded by entries_mu_ — every iteration, find,
  // emplace and erase takes it. The Entry objects and their query state
  // are NOT: a CQ is only ever touched by the thread holding the shard
  // locks of its read set (commit dispatch runs under the committer's
  // closure lock set, and install/remove/poll/execute_now require
  // commits to be quiesced), so entry contents never see two writers.
  // The map is deliberately not CQ_GUARDED_BY-annotated: accessors hand
  // out references under that exclusivity contract, exactly like the
  // engine-serialized state before sharding. metrics_ and last_stats_
  // are merged/written under stats_mu_ on every concurrent path;
  // metrics() escapes a reference for the quiesced readers (cqshell
  // METRICS, tests) and is unsynchronized by contract.
  cat::Database& db_;
  mutable common::Mutex entries_mu_{"cq_entries",
                                    common::lockorder::LockRank::kCqEntries};
  std::map<CqHandle, Entry> entries_;
  CqHandle next_handle_ = 1;
  bool eager_ = false;
  std::size_t threads_ = 1;   // evaluation lanes (1 = sequential path)
  std::unique_ptr<common::ThreadPool> pool_;  // built lazily, threads_ - 1 workers
  /// run_all is not reentrant and the pool is one resource: concurrent
  /// dispatches race for it; losers evaluate their batches inline.
  std::atomic<bool> pool_busy_{false};
  common::Metrics metrics_;
  bool lineage_on_ = false;
  LineageStore lineage_;
  mutable common::Mutex stats_mu_{"cq_stats", common::lockorder::LockRank::kCqStats};
  std::map<std::string, CqStats> stats_ CQ_GUARDED_BY(stats_mu_);
  DraStats last_stats_ CQ_GUARDED_BY(stats_mu_);
};

}  // namespace cq::core
