#include "cq/terry.hpp"

#include "common/error.hpp"
#include "cq/dra.hpp"

namespace cq::core {

bool append_only_since(const qry::SpjQuery& query, const cat::Database& db,
                       common::Timestamp since) {
  for (const auto& ref : query.from) {
    const auto& d = db.delta(ref.table);
    const auto pin = d.pin_reads();  // hold GC off while scanning the window
    for (const auto& row : d.net_effect(since)) {
      if (row.kind() != delta::ChangeKind::kInsert) return false;
    }
  }
  return true;
}

rel::Relation terry_incremental(const qry::SpjQuery& query, const cat::Database& db,
                                common::Timestamp since, common::Metrics* metrics) {
  if (!append_only_since(query, db, since)) {
    throw common::Unsupported(
        "continuous queries (Terry et al.) assume append-only sources; the "
        "update window contains a deletion or modification");
  }
  // Under append-only, ΔQ has no deleted side and the DRA's truth-table
  // expansion reduces to the classic continuous-query transformation:
  // evaluate Q with the appended tuples substituted for each changed input.
  DiffResult delta = dra_differential(query, db, since, metrics);
  CQ_ASSERT(delta.deleted.empty());
  return delta.inserted;
}

}  // namespace cq::core
