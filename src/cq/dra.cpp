#include "cq/dra.hpp"

#include <algorithm>

#include "algebra/ops.hpp"
#include "algebra/predicate.hpp"
#include "common/error.hpp"
#include "common/observability.hpp"
#include "query/evaluate.hpp"
#include "query/planner.hpp"

namespace obs = cq::common::obs;

namespace cq::core {

using alg::ExprPtr;
using common::Metrics;
using common::Timestamp;
using rel::Relation;

namespace {

/// A relation with signs: rows in `pos` carry weight +1, rows in `neg`
/// weight −1. Multiset semantics throughout.
struct Signed {
  Relation pos;
  Relation neg;

  [[nodiscard]] bool zero() const noexcept { return pos.empty() && neg.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pos.size() + neg.size(); }
};

Relation join_plain(const Relation& a, const Relation& b, const ExprPtr& predicate,
                    bool use_hash, Metrics* metrics) {
  if (a.empty() || b.empty()) {
    return Relation(a.schema().concat(b.schema()));
  }
  if (use_hash) return alg::join(a, b, predicate, metrics);
  // Nested-loop ablation: still push single-side conjuncts, but never build
  // a hash table.
  alg::JoinAnalysis analysis = alg::analyze_join(predicate, a.schema(), b.schema());
  const Relation* l = &a;
  const Relation* r = &b;
  Relation lf;
  Relation rf;
  if (!analysis.left_only.empty()) {
    lf = alg::select(a, *alg::conjoin(analysis.left_only), metrics);
    l = &lf;
  }
  if (!analysis.right_only.empty()) {
    rf = alg::select(b, *alg::conjoin(analysis.right_only), metrics);
    r = &rf;
  }
  std::vector<ExprPtr> rest = analysis.residual;
  for (const auto& [lc, rc] : analysis.equi_pairs) {
    rest.push_back(alg::Expr::cmp(alg::CmpOp::kEq,
                                  alg::Expr::col(a.schema().at(lc).name),
                                  alg::Expr::col(b.schema().at(rc).name)));
  }
  const ExprPtr residual = alg::conjoin(rest);
  return alg::nested_loop_join(*l, *r,
                               alg::is_always_true(residual) ? nullptr : residual.get(),
                               metrics);
}

/// (a ⋈ b) with sign bookkeeping: (a⁺−a⁻) ⋈ (b⁺−b⁻)
///   = a⁺⋈b⁺ + a⁻⋈b⁻  −  (a⁺⋈b⁻ + a⁻⋈b⁺).
Signed signed_join(const Signed& a, const Signed& b, const ExprPtr& predicate,
                   bool use_hash, Metrics* metrics) {
  Signed out;
  out.pos = alg::union_all(join_plain(a.pos, b.pos, predicate, use_hash, metrics),
                           join_plain(a.neg, b.neg, predicate, use_hash, metrics));
  out.neg = alg::union_all(join_plain(a.pos, b.neg, predicate, use_hash, metrics),
                           join_plain(a.neg, b.pos, predicate, use_hash, metrics));
  return out;
}

std::vector<std::string> canonical_names(const std::vector<rel::Schema>& schemas) {
  std::vector<std::string> names;
  for (const auto& s : schemas) {
    for (const auto& a : s.attributes()) names.push_back(a.name);
  }
  return names;
}

}  // namespace

DiffResult dra_differential(const qry::SpjQuery& query, const cat::Database& db,
                            Timestamp since, Metrics* metrics, const DraOptions& options,
                            DraStats* stats, const delta::SnapshotMap* snapshots) {
  query.validate();
  if (query.is_aggregate() || query.distinct) {
    throw common::InvalidArgument(
        "dra_differential handles the SPJ core only; strip aggregates/DISTINCT "
        "(ContinualQuery maintains those on top of ΔQ)");
  }
  const std::size_t n = query.from.size();
  DraStats local_stats;
  DraStats& st = stats != nullptr ? *stats : local_stats;
  st = DraStats{};

  // One branch when tracing is off; with it on, the whole invocation is a
  // span and its latency feeds the dra_exec_us histogram.
  static obs::Histogram* const dra_hist =
      &obs::global().histogram(obs::hist::kDraExecUs);
  obs::Span span("dra.differential", dra_hist);
  if (metrics != nullptr) metrics->add(common::metric::kDraInvocations, 1);

  // ---- bind inputs: current base + signed delta per FROM entry ----
  std::vector<rel::Schema> schemas;
  schemas.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    schemas.push_back(qry::qualify(db.table(query.from[i].table).schema(), query.from[i]));
  }

  // Output schema for (possibly empty) results.
  const std::vector<std::string> canon = canonical_names(schemas);
  rel::Schema joined_schema;
  for (const auto& s : schemas) joined_schema = joined_schema.concat(s);
  const rel::Schema out_schema =
      query.projection.empty() ? joined_schema : joined_schema.project(query.projection);

  DiffResult result;
  result.inserted = Relation(out_schema);
  result.deleted = Relation(out_schema);

  std::vector<Signed> delta(n);       // filtered, qualified ΔRi (signed)
  std::vector<std::size_t> changed;   // indexes of changed FROM entries
  for (std::size_t i = 0; i < n; ++i) {
    const cq::delta::DeltaSnapshot* snap = nullptr;
    if (snapshots != nullptr) {
      auto it = snapshots->find(query.from[i].table);
      if (it != snapshots->end()) snap = it->second.get();
    }
    const auto& d = db.delta(query.from[i].table);
    // Pin before reading ΔRi directly: GC must not truncate the window
    // between changed_since and the insertions/deletions copies.
    const auto pin = d.pin_reads();
    if (snap != nullptr ? !snap->changed_since(since) : !d.changed_since(since)) continue;
    Relation ins = snap != nullptr ? snap->insertions(since) : d.insertions(since);
    Relation del = snap != nullptr ? snap->deletions(since) : d.deletions(since);
    st.delta_rows_read += ins.size() + del.size();
    if (metrics != nullptr) {
      metrics->add(common::metric::kDeltaRowsScanned,
                   static_cast<std::int64_t>(ins.size() + del.size()));
    }
    if (ins.empty() && del.empty()) continue;  // e.g. insert+delete collapsed
    ins.set_schema(schemas[i]);
    del.set_schema(schemas[i]);
    delta[i] = Signed{std::move(ins), std::move(del)};
    changed.push_back(i);
  }
  st.changed_relations = changed.size();
  if (changed.empty()) return result;

  // ---- plan once: per-table filters + join conjuncts (Section 5.2) ----
  std::vector<std::size_t> cards;
  cards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) cards.push_back(db.table(query.from[i].table).size());
  const qry::PlannedQuery planned = qry::plan(query, schemas, cards);

  // Filter the deltas by their table's pushed-down selection. Selection
  // commutes with the substitution, so this both implements the Section 5.2
  // irrelevance check and shrinks every term.
  bool any_relevant = false;
  for (auto i : changed) {
    const ExprPtr f = planned.filter(i);
    if (!alg::is_always_true(f)) {
      delta[i].pos = alg::select(delta[i].pos, *f, metrics);
      delta[i].neg = alg::select(delta[i].neg, *f, metrics);
    }
    if (!delta[i].zero()) any_relevant = true;
  }
  if (options.irrelevance_check) {
    // Section 5.2 refinement: updates whose filtered delta is empty cannot
    // affect the result — drop them from the truth table, and skip the
    // whole re-evaluation when nothing relevant remains. Without the flag
    // the DRA machinery below runs regardless (empty terms still enumerate
    // and unchanged-side base states still get bound).
    if (!any_relevant) {
      st.skipped_irrelevant = true;
      if (metrics != nullptr) metrics->add(common::metric::kDraSkippedIrrelevant, 1);
      return result;
    }
    changed.erase(std::remove_if(changed.begin(), changed.end(),
                                 [&](std::size_t i) { return delta[i].zero(); }),
                  changed.end());
    if (changed.empty()) {
      st.skipped_irrelevant = true;
      if (metrics != nullptr) metrics->add(common::metric::kDraSkippedIrrelevant, 1);
      return result;
    }
    st.changed_relations = changed.size();
  }

  // Filtered, qualified current base state, built lazily and shared by all
  // terms. Position i is ever bound to its base only when it is unchanged
  // (then every term binds it) or when k >= 2 (terms substituting a
  // *different* relation's delta bind i's base). In particular the common
  // single-relation CQ never touches the base at all — the heart of the
  // paper's efficiency claim.
  const std::size_t k = changed.size();
  std::vector<Relation> base(n);
  std::vector<bool> base_built(n, false);
  auto base_of = [&](std::size_t i) -> const Relation& {
    if (!base_built[i]) {
      base[i] = qry::qualified_copy(db.table(query.from[i].table), query.from[i]);
      const ExprPtr f = planned.filter(i);
      if (!alg::is_always_true(f)) base[i] = alg::select(base[i], *f, metrics);
      if (metrics != nullptr) {
        metrics->add(common::metric::kBaseRowsScanned,
                     static_cast<std::int64_t>(db.table(query.from[i].table).size()));
      }
      base_built[i] = true;
    }
    return base[i];
  };

  // ---- truth table: one signed SPJ term per non-zero row (step 2) ----
  if (k > 20) throw common::InvalidArgument("dra: too many changed relations");
  Relation sum_pos(joined_schema);
  Relation sum_neg(joined_schema);

  // Probe an unchanged position's *persistent index* (when one covers an
  // equi conjunct against the already-joined accumulator) instead of
  // materializing and hashing its filtered base: O(|acc| · fanout) per term
  // rather than O(|base|). Returns false when no usable index exists.
  auto try_index_join = [&](const Signed& acc, std::size_t p,
                            const std::vector<ExprPtr>& applicable,
                            Signed& out) -> bool {
    const rel::Relation& base_table = db.table(query.from[p].table);
    // Collect equi pairs (acc column, base column) from the applicable
    // conjuncts; positions in schemas[p] equal positions in the base schema.
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (const auto& conjunct : applicable) {
      if (conjunct->kind() != alg::Expr::Kind::kCompare ||
          conjunct->cmp_op() != alg::CmpOp::kEq) {
        continue;
      }
      const auto& a = conjunct->children()[0];
      const auto& b = conjunct->children()[1];
      if (a->kind() != alg::Expr::Kind::kColumn ||
          b->kind() != alg::Expr::Kind::kColumn) {
        continue;
      }
      const auto a_acc = acc.pos.schema().find(a->column());
      const auto a_base = schemas[p].find(a->column());
      const auto b_acc = acc.pos.schema().find(b->column());
      const auto b_base = schemas[p].find(b->column());
      if (a_acc && b_base && !a_base && !b_acc) {
        pairs.emplace_back(*a_acc, *b_base);
      } else if (b_acc && a_base && !b_base && !a_acc) {
        pairs.emplace_back(*b_acc, *a_base);
      }
    }
    if (pairs.empty()) return false;

    // Prefer an index covering all equi columns, else any single one.
    const rel::MaintainedIndex* index = nullptr;
    {
      std::vector<std::size_t> base_cols;
      for (const auto& [ac, bc] : pairs) base_cols.push_back(bc);
      index = db.index_on(query.from[p].table, base_cols);
      if (index == nullptr) {
        for (const auto& [ac, bc] : pairs) {
          index = db.index_on(query.from[p].table, {bc});
          if (index != nullptr) break;
        }
      }
    }
    if (index == nullptr) return false;

    // Map each index key column to the accumulator column feeding it.
    std::vector<std::size_t> acc_cols;
    for (auto index_col : index->columns()) {
      bool found = false;
      for (const auto& [ac, bc] : pairs) {
        if (bc == index_col) {
          acc_cols.push_back(ac);
          found = true;
          break;
        }
      }
      if (!found) return false;
    }

    const rel::Schema combined = acc.pos.schema().concat(schemas[p]);
    // Everything else (uncovered equi pairs, residual conjuncts, and the
    // base table's own pushed-down filter) applies on the combined row.
    std::vector<ExprPtr> checks = applicable;
    const ExprPtr base_filter = planned.filter(p);
    if (!alg::is_always_true(base_filter)) checks.push_back(base_filter);
    const ExprPtr residual = alg::conjoin(checks);
    const bool check_residual = !alg::is_always_true(residual);

    auto probe_side = [&](const Relation& side, Relation& result) {
      for (const auto& row : side.rows()) {
        std::vector<rel::Value> key;
        key.reserve(acc_cols.size());
        for (auto c : acc_cols) key.push_back(row.at(c));
        for (const rel::TupleId tid : index->probe(key)) {
          const rel::Tuple* match = base_table.find(tid);
          CQ_ASSERT(match != nullptr);
          rel::Tuple joined = row.concat(*match);
          if (metrics != nullptr) metrics->add(common::metric::kTuplesCompared, 1);
          if (!check_residual || residual->eval_bool(joined, combined)) {
            result.append(std::move(joined));
          }
        }
      }
    };
    out.pos = Relation(combined);
    out.neg = Relation(combined);
    probe_side(acc.pos, out.pos);
    probe_side(acc.neg, out.neg);
    st.index_probes += acc.size();
    return true;
  };

  for (std::size_t bits = 1; bits < (static_cast<std::size_t>(1) << k); ++bits) {
    // Bind each FROM position for this term: a changed position in b gets
    // its (signed, filtered) delta; the rest bind the current base state,
    // materialized lazily only if a join step actually needs it.
    std::vector<const Signed*> bound(n, nullptr);
    bool term_zero = false;
    std::size_t popcount = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if ((bits >> c) & 1U) {
        bound[changed[c]] = &delta[changed[c]];
        ++popcount;
      }
    }
    for (std::size_t i = 0; i < n && !term_zero; ++i) {
      if (bound[i] != nullptr) {
        if (bound[i]->zero()) term_zero = true;
      } else if (db.table(query.from[i].table).empty()) {
        term_zero = true;
      }
    }
    if (term_zero) continue;
    ++st.terms_evaluated;
    obs::Span term_span("dra.term");

    // Join order for this term: plan with the term's own cardinalities so
    // the (tiny) delta sides are joined first.
    std::vector<std::size_t> term_cards;
    std::vector<const Relation*> term_samples(n, nullptr);
    term_cards.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (bound[i] != nullptr) {
        term_cards.push_back(bound[i]->size());
        // Delta sides are qualified and already filter-reduced; sampling
        // them stops the planner double-counting the filter's selectivity.
        term_samples[i] = &bound[i]->pos;
      } else {
        term_cards.push_back(db.table(query.from[i].table).size());
      }
    }
    const qry::PlannedQuery term_plan =
        qry::plan(query, schemas, term_cards, &term_samples);

    std::vector<ExprPtr> pending = term_plan.join_conjuncts;
    std::vector<Signed> materialized(n);
    auto bind_base = [&](std::size_t p) -> const Signed& {
      if (materialized[p].pos.schema().empty()) {
        materialized[p] = Signed{base_of(p), Relation(schemas[p])};
      }
      return materialized[p];
    };

    const std::size_t first = term_plan.join_order[0];
    Signed acc = bound[first] != nullptr ? *bound[first] : bind_base(first);
    for (std::size_t step = 1; step < n && !acc.zero(); ++step) {
      const std::size_t p = term_plan.join_order[step];
      const rel::Schema combined = acc.pos.schema().concat(schemas[p]);
      std::vector<ExprPtr> applicable;
      std::vector<ExprPtr> still_pending;
      for (const auto& conjunct : pending) {
        if (conjunct->resolves_in(combined)) {
          applicable.push_back(conjunct);
        } else {
          still_pending.push_back(conjunct);
        }
      }
      pending = std::move(still_pending);

      Signed via_index;
      if (bound[p] == nullptr && options.use_persistent_indexes &&
          try_index_join(acc, p, applicable, via_index)) {
        acc = std::move(via_index);
        continue;
      }
      const Signed& next = bound[p] != nullptr ? *bound[p] : bind_base(p);
      acc = signed_join(acc, next, alg::conjoin(applicable), options.use_hash_join,
                        metrics);
    }
    if (acc.zero()) continue;
    if (!pending.empty()) {
      const ExprPtr rest = alg::conjoin(pending);
      acc.pos = alg::select(acc.pos, *rest, metrics);
      acc.neg = alg::select(acc.neg, *rest, metrics);
    }

    // Canonical column order so all terms line up.
    if (n > 1) {
      acc.pos = alg::project(acc.pos, canon, false, metrics);
      acc.neg = alg::project(acc.neg, canon, false, metrics);
    }

    // Term sign: unchanged positions bind the *current* state, so the term
    // carries (−1)^(|b|+1).
    const bool positive = (popcount % 2) == 1;
    sum_pos = alg::union_all(sum_pos, positive ? acc.pos : acc.neg);
    sum_neg = alg::union_all(sum_neg, positive ? acc.neg : acc.pos);
  }

  // ---- projection (DiffProj: linear, keeps signs), then consolidation ----
  if (!query.projection.empty()) {
    sum_pos = alg::project(sum_pos, query.projection, false, metrics);
    sum_neg = alg::project(sum_neg, query.projection, false, metrics);
  }
  DiffResult raw;
  raw.inserted = std::move(sum_pos);
  raw.deleted = std::move(sum_neg);
  if (metrics != nullptr) {
    metrics->add(common::metric::kDraTermsEvaluated,
                 static_cast<std::int64_t>(st.terms_evaluated));
    metrics->add(common::metric::kIndexProbes,
                 static_cast<std::int64_t>(st.index_probes));
  }
  return raw.consolidated();
}

}  // namespace cq::core
