#include "cq/propagate.hpp"

#include "query/evaluate.hpp"

namespace cq::core {

rel::Relation recompute(const qry::SpjQuery& query, const cat::Database& db,
                        common::Metrics* metrics) {
  if (metrics != nullptr) {
    for (const auto& ref : query.from) {
      metrics->add(common::metric::kBaseRowsScanned,
                   static_cast<std::int64_t>(db.table(ref.table).size()));
    }
  }
  return qry::evaluate_spj(query, db, metrics);
}

DiffResult propagate(const qry::SpjQuery& query, const cat::Database& db,
                     const rel::Relation& previous_result, common::Metrics* metrics) {
  const rel::Relation current = recompute(query, db, metrics);
  return diff(previous_result, current);
}

}  // namespace cq::core
