#include "cq/continual_query.hpp"

#include <map>
#include <sstream>

#include "algebra/ops.hpp"
#include "algebra/predicate.hpp"
#include "common/error.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"
#include "query/planner.hpp"

namespace cq::core {

using common::Timestamp;
using rel::Relation;

const char* to_string(DeliveryMode mode) noexcept {
  switch (mode) {
    case DeliveryMode::kInsertionsOnly: return "insertions-only";
    case DeliveryMode::kDeletionsOnly: return "deletions-only";
    case DeliveryMode::kDifferential: return "differential";
    case DeliveryMode::kComplete: return "complete";
  }
  return "?";
}

CqSpec CqSpec::from_sql(std::string name, const std::string& sql, TriggerPtr trigger,
                        StopPtr stop, DeliveryMode mode) {
  CqSpec spec;
  spec.name = std::move(name);
  spec.query = qry::parse_query(sql);
  spec.trigger = std::move(trigger);
  spec.stop = std::move(stop);
  spec.mode = mode;
  return spec;
}

ContinualQuery::ContinualQuery(CqSpec spec, const cat::Database& db)
    : spec_(std::move(spec)), last_exec_(Timestamp::min()) {
  spec_.query.validate();
  if (!spec_.trigger) throw common::InvalidArgument("CQ '" + spec_.name + "': no trigger");
  if (!spec_.stop) spec_.stop = stop::never();
  for (const auto& ref : spec_.query.from) {
    if (!db.has_table(ref.table)) {
      throw common::NotFound("CQ '" + spec_.name + "': unknown table '" + ref.table + "'");
    }
    relations_.push_back(ref.table);
  }
}

qry::SpjQuery ContinualQuery::spj_core() const {
  qry::SpjQuery core = spec_.query;
  core.distinct = false;
  core.order_by.clear();  // ordering is presentation-only
  if (core.is_aggregate()) {
    core.projection.clear();  // aggregates read the full joined row
    core.aggregates.clear();
    core.group_by.clear();
    core.having = nullptr;  // applied at delivery, over the aggregate output
  }
  return core;
}

rel::Relation ContinualQuery::delivered_aggregate() const {
  Relation out = agg_state_->current();
  if (spec_.query.having) out = alg::select(out, *spec_.query.having);
  return out;
}

TriggerContext ContinualQuery::context(const cat::Database& db,
                                       const delta::SnapshotMap* snapshots) const {
  return TriggerContext{db,  relations_,  last_exec_,
                        db.clock().now(), executions_, snapshots};
}

bool ContinualQuery::should_fire(const cat::Database& db,
                                 const delta::SnapshotMap* snapshots) const {
  return !finished_ && spec_.trigger->should_fire(context(db, snapshots));
}

bool ContinualQuery::should_stop(const cat::Database& db,
                                 const delta::SnapshotMap* snapshots) const {
  return finished_ || spec_.stop->satisfied(context(db, snapshots));
}

ContinualQuery::Staleness ContinualQuery::staleness(const cat::Database& db) const {
  Staleness out;
  out.age = db.clock().now() - last_exec_;

  const qry::SpjQuery core = spj_core();
  std::vector<rel::Schema> schemas;
  std::vector<std::size_t> cards;
  for (const auto& ref : core.from) {
    schemas.push_back(qry::qualify(db.table(ref.table).schema(), ref));
    cards.push_back(db.table(ref.table).size());
  }
  const qry::PlannedQuery planned = qry::plan(core, schemas, cards);

  for (std::size_t i = 0; i < core.from.size(); ++i) {
    const auto& d = db.delta(core.from[i].table);
    // Pin so GC cannot truncate the window between the change test and
    // the insertion/deletion copies below.
    const auto pin = d.pin_reads();
    if (!d.changed_since(last_exec_)) continue;
    Relation ins = d.insertions(last_exec_);
    Relation del = d.deletions(last_exec_);
    out.pending_changes += ins.size() + del.size();
    const alg::ExprPtr f = planned.filter(i);
    if (alg::is_always_true(f)) {
      out.relevant_changes += ins.size() + del.size();
    } else {
      ins.set_schema(schemas[i]);
      del.set_schema(schemas[i]);
      out.relevant_changes +=
          alg::select(ins, *f).size() + alg::select(del, *f).size();
    }
  }
  return out;
}

std::string ContinualQuery::explain(const cat::Database& db) const {
  std::ostringstream os;
  os << "CQ '" << spec_.name << "': " << spec_.query.to_string() << "\n";
  os << "  trigger: " << spec_.trigger->describe() << "\n";
  os << "  stop: " << spec_.stop->describe() << "\n";
  os << "  mode: " << core::to_string(spec_.mode) << ", strategy: "
     << (spec_.strategy == ExecutionStrategy::kDra ? "DRA" : "recompute") << "\n";
  os << "  executions: " << executions_ << ", last at t=" << last_exec_.to_string()
     << "\n";

  const qry::SpjQuery core = spj_core();
  std::vector<rel::Schema> schemas;
  std::vector<std::size_t> cards;
  for (const auto& ref : core.from) {
    schemas.push_back(qry::qualify(db.table(ref.table).schema(), ref));
    cards.push_back(db.table(ref.table).size());
  }
  const qry::PlannedQuery planned = qry::plan(core, schemas, cards);
  os << "  " << planned.to_string(core);

  for (std::size_t i = 0; i < core.from.size(); ++i) {
    const auto& d = db.delta(core.from[i].table);
    const auto pin = d.pin_reads();  // hold GC off while we count the window
    const std::size_t pending =
        d.changed_since(last_exec_) ? d.net_effect(last_exec_).size() : 0;
    os << "  Δ" << core.from[i].table << ": " << pending << " pending net rows";
    const auto names = db.index_names(core.from[i].table);
    if (!names.empty()) {
      os << " (indexes:";
      for (const auto& n : names) os << " " << n;
      os << ")";
    }
    os << "\n";
  }
  const Staleness s = staleness(db);
  os << "  staleness: " << s.pending_changes << " pending / " << s.relevant_changes
     << " relevant changes, age " << s.age.ticks() << " ticks\n";
  return os.str();
}

namespace {

/// Lift a multiset SPJ-level diff to DISTINCT level, updating `counts` to
/// the post-diff multiplicities. A distinct row is inserted when its count
/// rises from zero and deleted when it falls to zero.
DiffResult lift_to_distinct(rel::TupleBag& counts, const DiffResult& raw,
                            const rel::Schema& schema) {
  DiffResult out;
  out.inserted = Relation(schema);
  out.deleted = Relation(schema);
  for (const auto& row : raw.deleted.rows()) {
    counts.add(row, -1);
    const auto remaining = counts.count(row);
    if (remaining < 0) {
      throw common::InternalError("distinct maintenance: negative multiplicity");
    }
    if (remaining == 0) {
      rel::Tuple lifted(row.values());
      lifted.set_prov(row.prov());
      out.deleted.append(std::move(lifted));
    }
  }
  for (const auto& row : raw.inserted.rows()) {
    const auto before = counts.count(row);
    counts.add(row, +1);
    if (before == 0) {
      rel::Tuple lifted(row.values());
      lifted.set_prov(row.prov());
      out.inserted.append(std::move(lifted));
    }
  }
  return out;
}

/// Attach to each aggregate delta row the union of the lineage sets of the
/// raw ΔQ rows that landed in its group: the aggregate output's first
/// |group_by| columns are the group key (AggregateState::group_columns
/// documents the layout), and every raw SPJ row keys its group at those
/// source columns.
void attach_group_lineage(const AggregateState& state, const DiffResult& raw,
                          DiffResult& delta) {
  const std::vector<std::size_t>& group_cols = state.group_columns();
  std::map<std::vector<rel::Value>, rel::prov::ProvSetPtr> by_group;
  auto fold = [&](const Relation& r) {
    for (const auto& row : r.rows()) {
      if (!row.prov()) continue;
      std::vector<rel::Value> key;
      key.reserve(group_cols.size());
      for (auto gi : group_cols) key.push_back(row.at(gi));
      rel::prov::ProvSetPtr& slot = by_group[std::move(key)];
      slot = rel::prov::merge(slot, row.prov());
    }
  };
  fold(raw.inserted);
  fold(raw.deleted);
  auto attach = [&](Relation& r) {
    for (auto& row : r.mutable_rows()) {
      std::vector<rel::Value> key(row.values().begin(),
                                  row.values().begin() +
                                      static_cast<std::ptrdiff_t>(group_cols.size()));
      auto it = by_group.find(key);
      if (it != by_group.end()) row.set_prov(it->second);
    }
  };
  attach(delta.inserted);
  attach(delta.deleted);
}

rel::Relation distinct_from_counts(const rel::TupleBag& counts, const rel::Schema& schema) {
  Relation out(schema);
  counts.for_each([&](const rel::Tuple& t, std::ptrdiff_t) { out.append(t); });
  return out;
}

}  // namespace

Notification ContinualQuery::prime_from_scratch(const cat::Database& db,
                                                common::Metrics* metrics) {
  const qry::SpjQuery core = spj_core();
  Relation spj = recompute(core, db, metrics);
  if (metrics != nullptr) metrics->add(common::metric::kQueryExecutions, 1);

  Notification note;
  note.cq_name = spec_.name;

  saved_result_.reset();
  result_counts_.reset();
  agg_state_.reset();
  if (spec_.query.is_aggregate()) {
    agg_state_.emplace(spj.schema(), spec_.query.group_by, spec_.query.aggregates);
    agg_state_->initialize(spj);
    note.aggregate = delivered_aggregate();
    note.complete = note.aggregate;
    // ΔQ plumbing still needs the previous SPJ result under kRecompute.
    if (spec_.strategy == ExecutionStrategy::kRecompute) saved_result_ = spj;
    note.delta.inserted = Relation(spj.schema());
    note.delta.deleted = Relation(spj.schema());
  } else if (spec_.query.distinct) {
    result_counts_.emplace();
    for (const auto& row : spj.rows()) result_counts_->add(row, +1);
    note.complete = distinct_from_counts(*result_counts_, spj.schema());
    if (spec_.strategy == ExecutionStrategy::kRecompute) saved_result_ = spj;
    note.delta.inserted = Relation(spj.schema());
    note.delta.deleted = Relation(spj.schema());
  } else {
    note.delta.inserted = Relation(spj.schema());
    note.delta.deleted = Relation(spj.schema());
    note.complete = spj;
    if (spec_.mode == DeliveryMode::kComplete ||
        spec_.strategy == ExecutionStrategy::kRecompute) {
      saved_result_ = std::move(spj);
    }
  }

  reprime_pending_ = false;
  last_exec_ = db.clock().now();
  note.at = last_exec_;
  return note;
}

bool ContinualQuery::needs_reprime() const noexcept {
  if (reprime_pending_) return true;
  if (spec_.query.is_aggregate()) {
    if (!agg_state_) return true;
  } else if (spec_.query.distinct) {
    if (!result_counts_) return true;
  } else if (spec_.mode == DeliveryMode::kComplete && !saved_result_) {
    return true;
  }
  return spec_.strategy == ExecutionStrategy::kRecompute && !saved_result_;
}

Notification ContinualQuery::execute_initial(const cat::Database& db,
                                             common::Metrics* metrics) {
  if (executions_ != 0) {
    throw common::InvalidArgument("CQ '" + spec_.name + "': already initialized");
  }
  Notification note = prime_from_scratch(db, metrics);
  note.sequence = 0;
  executions_ = 1;
  return note;
}

void ContinualQuery::restore(const cat::Database& db, Timestamp last_execution,
                             std::uint64_t executions) {
  if (executions_ != 0) {
    throw common::InvalidArgument("CQ '" + spec_.name + "': restore on a live CQ");
  }
  if (executions == 0) {
    throw common::InvalidArgument("CQ '" + spec_.name +
                                  "': restore needs executions >= 1");
  }
  const qry::SpjQuery core = spj_core();

  // If garbage collection already reclaimed part of the rollback window
  // (last_execution, now], the inverted differential below would silently
  // reconstruct the *wrong* previous result (the truncated prefix of the
  // window is simply missing from the log). Detect it via the truncation
  // watermark and re-prime on the next execution instead of rolling back.
  for (const auto& ref : core.from) {
    const auto reclaimed = db.delta(ref.table).truncated_through();
    if (reclaimed && *reclaimed > last_execution) {
      invalidate_saved_result();
      executions_ = executions;
      last_exec_ = last_execution;
      return;
    }
  }

  // Reconstruct the SPJ result as of last_execution: current state rolled
  // back by the inverted delta window (last_execution, now].
  Relation spj = recompute(core, db);
  DiffResult window = dra_differential(core, db, last_execution, nullptr,
                                       spec_.dra_options);
  DiffResult inverted;
  inverted.inserted = std::move(window.deleted);
  inverted.deleted = std::move(window.inserted);
  spj = apply_diff(spj, inverted);

  if (spec_.query.is_aggregate()) {
    agg_state_.emplace(spj.schema(), spec_.query.group_by, spec_.query.aggregates);
    agg_state_->initialize(spj);
    if (spec_.strategy == ExecutionStrategy::kRecompute) saved_result_ = std::move(spj);
  } else if (spec_.query.distinct) {
    result_counts_.emplace();
    for (const auto& row : spj.rows()) result_counts_->add(row, +1);
    if (spec_.strategy == ExecutionStrategy::kRecompute) saved_result_ = std::move(spj);
  } else if (spec_.mode == DeliveryMode::kComplete ||
             spec_.strategy == ExecutionStrategy::kRecompute) {
    saved_result_ = std::move(spj);
  }

  executions_ = executions;
  last_exec_ = last_execution;
}

Notification ContinualQuery::execute(const cat::Database& db, common::Metrics* metrics,
                                     DraStats* stats, const delta::SnapshotMap* snapshots) {
  if (executions_ == 0) return execute_initial(db, metrics);
  if (needs_reprime()) {
    // State the strategy/mode relies on is gone (explicit invalidation, or
    // restore() found the rollback window GC-truncated). Re-prime: one full
    // recompute, delivered as a complete result with an empty delta.
    Notification note = prime_from_scratch(db, metrics);
    note.sequence = executions_;
    ++executions_;
    return note;
  }
  const qry::SpjQuery core = spj_core();

  // ---- ΔQ of the SPJ core ----
  DiffResult raw;
  if (spec_.strategy == ExecutionStrategy::kDra) {
    raw = dra_differential(core, db, last_exec_, metrics, spec_.dra_options, stats,
                           snapshots);
    if (saved_result_) saved_result_ = apply_diff(*saved_result_, raw);
  } else {
    Relation current = recompute(core, db, metrics);
    raw = diff(*saved_result_, current);
    saved_result_ = std::move(current);
  }
  if (metrics != nullptr) metrics->add(common::metric::kQueryExecutions, 1);

  Notification note;
  note.cq_name = spec_.name;
  note.sequence = executions_;

  // ---- assemble per delivery mode (Algorithm 1, step 4) ----
  if (spec_.query.is_aggregate()) {
    const Relation before = delivered_aggregate();
    agg_state_->apply(raw);
    const Relation after = delivered_aggregate();
    note.aggregate = after;
    note.delta = diff(before, after);
    if (rel::prov::enabled()) attach_group_lineage(*agg_state_, raw, note.delta);
    if (spec_.mode == DeliveryMode::kComplete) note.complete = after;
  } else if (spec_.query.distinct) {
    note.delta = lift_to_distinct(*result_counts_, raw, raw.inserted.schema());
    if (spec_.mode == DeliveryMode::kComplete) {
      note.complete = distinct_from_counts(*result_counts_, raw.inserted.schema());
    }
  } else {
    note.delta = raw;
    if (spec_.mode == DeliveryMode::kComplete) note.complete = *saved_result_;
  }

  switch (spec_.mode) {
    case DeliveryMode::kInsertionsOnly:
      note.delta.deleted = Relation(note.delta.deleted.schema());
      break;
    case DeliveryMode::kDeletionsOnly:
      note.delta.inserted = Relation(note.delta.inserted.schema());
      break;
    case DeliveryMode::kDifferential:
    case DeliveryMode::kComplete:
      break;
  }

  ++executions_;
  last_exec_ = db.clock().now();
  note.at = last_exec_;
  return note;
}

}  // namespace cq::core
