// Epsilon views: divergence-controlled cached query answering, the
// Epsilon-Serializability side of the paper (Section 3.2). An epsilon
// query "could contain errors up to [the epsilon specification] and still
// return a meaningful result" — so a cached materialization may be served
// as long as its divergence from the live database stays within the
// ε-spec, and is refreshed *differentially* the moment it would not.
//
// Divergence is measured from the differential relations only (never by
// recomputing): the number of relevant pending changes, and — for
// SUM-style aggregates — the absolute pending drift of a monitored column.
#pragma once

#include <optional>
#include <string>

#include "catalog/database.hpp"
#include "cq/continual_query.hpp"

namespace cq::core {

class EpsilonView {
 public:
  struct Spec {
    /// Serve the cached result while at most this many relevant tuple
    /// changes are pending. 0 = refresh whenever anything relevant changed.
    std::size_t max_relevant_changes = 0;

    /// Additionally bound |Σ new − Σ old| of `drift_column` on
    /// `drift_table`'s pending deltas (the checking-account ε-spec).
    /// Unset = no aggregate bound.
    std::optional<double> max_drift;
    std::string drift_table;
    std::string drift_column;
  };

  /// Result of one read.
  struct Answer {
    /// The served relation: the complete result for plain queries, the
    /// maintained aggregate for aggregate queries.
    rel::Relation result;
    /// Relevant pending changes NOT reflected in `result` (0 after refresh).
    std::size_t divergence = 0;
    /// Pending aggregate drift not reflected (0 when unbounded/refreshed).
    double drift = 0.0;
    bool refreshed = false;
  };

  /// Materializes the view immediately (one complete evaluation).
  EpsilonView(std::string name, const std::string& sql, cat::Database& db, Spec spec);

  /// Serve the view: cached if within the ε-spec, freshly (differentially)
  /// refreshed otherwise.
  [[nodiscard]] Answer read();

  /// Force a refresh regardless of divergence.
  void refresh();

  [[nodiscard]] const Spec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t refreshes() const noexcept { return cq_.executions() - 1; }

 private:
  [[nodiscard]] double pending_drift() const;
  [[nodiscard]] rel::Relation current_result(const Notification& n) const;

  cat::Database& db_;
  Spec spec_;
  ContinualQuery cq_;
  rel::Relation cached_;
};

}  // namespace cq::core
