// The paper defines the result of a continual query as *the sequence*
// {Q(S_1), Q(S_2), ..., Q(S_n)} (Section 3.1). ResultHistory materializes
// that sequence space-efficiently: the initial complete result plus one
// ΔQ per execution (with periodic checkpoints), supporting random access
// by execution number and time-travel by timestamp — "what did the user
// see at time t?".
//
// Works as a ResultSink for CQs in kDifferential or kComplete mode (the
// insertions-/deletions-only modes drop one side of ΔQ, which makes the
// sequence non-reconstructible; attaching one raises Unsupported).
// Aggregate CQs are stored by their (small) delivered aggregate relations.
#pragma once

#include <optional>
#include <vector>

#include "common/timestamp.hpp"
#include "cq/continual_query.hpp"

namespace cq::core {

class ResultHistory final : public ResultSink {
 public:
  /// `checkpoint_every` bounds reconstruction cost: a full copy of the
  /// result is stored every that-many executions.
  explicit ResultHistory(std::size_t checkpoint_every = 16);

  void on_result(const Notification& notification) override;

  /// Number of recorded executions (including the initial one).
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Timestamp of execution i.
  [[nodiscard]] common::Timestamp timestamp(std::size_t execution) const;

  /// The full result the user held after execution i (0 = initial).
  [[nodiscard]] rel::Relation at(std::size_t execution) const;

  /// The result as of logical time t: the latest execution with
  /// timestamp <= t. Throws NotFound when t precedes the initial execution.
  [[nodiscard]] rel::Relation as_of(common::Timestamp t) const;

  /// ΔQ delivered by execution i (empty for the initial execution).
  [[nodiscard]] const DiffResult& delta(std::size_t execution) const;

  /// Total rows held across checkpoints + deltas (memory accounting).
  [[nodiscard]] std::size_t stored_rows() const noexcept;

 private:
  struct Entry {
    common::Timestamp at;
    DiffResult delta;
    std::optional<rel::Relation> checkpoint;  // every checkpoint_every-th
  };

  std::size_t checkpoint_every_;
  std::vector<Entry> entries_;
};

}  // namespace cq::core
