#include "cq/manager.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace cq::core {

namespace obs = common::obs;

namespace {

/// Rows in a notification's payload, as the sink sees it.
std::uint64_t rows_delivered(const Notification& note) {
  if (note.sequence == 0 || note.aggregate) {
    const auto& payload = note.aggregate ? note.aggregate : note.complete;
    return payload ? payload->size() : 0;
  }
  std::uint64_t rows = note.delta.inserted.size() + note.delta.deleted.size();
  if (note.complete) rows += note.complete->size();
  return rows;
}

obs::Histogram& cq_exec_histogram() {
  static obs::Histogram& h = obs::global().histogram(obs::hist::kCqExecUs);
  return h;
}

obs::Gauge& active_cq_gauge() {
  static obs::Gauge& g = obs::global().gauge(obs::gauge::kActiveCqs);
  return g;
}

obs::Gauge& parallelism_gauge() {
  static obs::Gauge& g = obs::global().gauge(obs::gauge::kEvalParallelism);
  return g;
}

/// The manager this thread is currently dispatching for. Commits arrive
/// on whichever writer thread committed, so the reentrancy guard ("a CQ
/// execution never re-triggers itself") must be per-thread — a bool
/// member would make one writer's dispatch swallow another's.
thread_local const void* t_dispatching = nullptr;

/// Restores the guard even when a CQ execution throws, so one failed
/// dispatch cannot wedge every future commit into a silent no-op.
class DispatchGuard {
 public:
  explicit DispatchGuard(const void* manager) : prev_(t_dispatching) {
    t_dispatching = manager;
  }
  ~DispatchGuard() { t_dispatching = prev_; }
  DispatchGuard(const DispatchGuard&) = delete;
  DispatchGuard& operator=(const DispatchGuard&) = delete;

 private:
  const void* prev_;
};

/// Claims the shared thread pool for one dispatch; concurrent dispatches
/// that lose the race evaluate their batches inline instead of waiting
/// (run_all is not reentrant and must not be entered twice).
class PoolLease {
 public:
  explicit PoolLease(std::atomic<bool>& busy) : busy_(busy) {
    owned_ = !busy_.exchange(true, std::memory_order_acquire);
  }
  ~PoolLease() {
    if (owned_) busy_.store(false, std::memory_order_release);
  }
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  [[nodiscard]] bool owned() const noexcept { return owned_; }

 private:
  std::atomic<bool>& busy_;
  bool owned_ = false;
};

}  // namespace

CqManager::CqManager(cat::Database& db) : db_(db) {}

CqManager::~CqManager() {
  if (eager_) {
    db_.set_commit_hook(nullptr);
    db_.set_commit_closure_hook(nullptr);
  }
}

CqStats& CqManager::stats_of(const Entry& entry) {
  CqStats& s = stats_[entry.query->name()];
  s.name = entry.query->name();
  return s;
}

CqManager::Entry* CqManager::find_entry(CqHandle handle) {
  common::LockGuard lock(entries_mu_);
  auto it = entries_.find(handle);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<CqHandle> CqManager::relevant_handles(
    const std::vector<std::string>* tables) const {
  common::LockGuard lock(entries_mu_);
  std::vector<CqHandle> out;
  out.reserve(entries_.size());
  for (const auto& [h, e] : entries_) {
    if (tables != nullptr) {
      const auto& relations = e.query->relations();
      const bool relevant =
          std::any_of(tables->begin(), tables->end(), [&](const std::string& t) {
            return std::find(relations.begin(), relations.end(), t) != relations.end();
          });
      if (!relevant) continue;
    }
    out.push_back(h);
  }
  return out;
}

void CqManager::extend_closure(const std::vector<std::string>& write_set,
                               std::vector<std::string>& closure) const {
  common::LockGuard lock(entries_mu_);
  for (const auto& [h, e] : entries_) {
    const auto& relations = e.query->relations();
    const bool relevant =
        std::any_of(write_set.begin(), write_set.end(), [&](const std::string& t) {
          return std::find(relations.begin(), relations.end(), t) != relations.end();
        });
    if (!relevant) continue;
    // Duplicates are fine: the closure only feeds the shard-mask OR.
    closure.insert(closure.end(), relations.begin(), relations.end());
  }
}

CqHandle CqManager::install(CqSpec spec, std::shared_ptr<ResultSink> sink) {
  Entry entry;
  entry.query = std::make_unique<ContinualQuery>(std::move(spec), db_);
  entry.sink = std::move(sink);

  obs::Span span("cq.install");
  common::Metrics local;
  const std::uint64_t t0 = obs::now_ns();
  const Notification initial = entry.query->execute_initial(db_, &local);
  const std::uint64_t elapsed = obs::now_ns() - t0;
  entry.zone_id = db_.zones().register_cq(entry.query->last_execution());
  record_lineage(initial);
  if (entry.sink) entry.sink->on_result(initial);

  {
    common::LockGuard lock(stats_mu_);
    metrics_.merge(local);
    CqStats& s = stats_of(entry);
    s.executions = 1;
    s.finished = false;
    s.last_exec_ns = elapsed;
    s.total_exec_ns += elapsed;
    s.rows_delivered += rows_delivered(initial);
    s.last_execution = entry.query->last_execution();
  }
  if (obs::enabled()) cq_exec_histogram().record(elapsed / 1000);

  common::log_info("installed CQ '", entry.query->name(), "' trigger=",
                   entry.query->spec().trigger->describe());
  obs::event(obs::Severity::kInfo, "cq_installed", entry.query->name(),
             "trigger=" + entry.query->spec().trigger->describe(),
             db_.clock().now().ticks());

  CqHandle handle = 0;
  {
    common::LockGuard lock(entries_mu_);
    handle = next_handle_++;
    entries_.emplace(handle, std::move(entry));
    active_cq_gauge().set(static_cast<std::int64_t>(entries_.size()));
  }
  return handle;
}

CqHandle CqManager::install_restored(CqSpec spec, std::shared_ptr<ResultSink> sink,
                                     common::Timestamp last_execution,
                                     std::uint64_t executions) {
  Entry entry;
  entry.query = std::make_unique<ContinualQuery>(std::move(spec), db_);
  entry.sink = std::move(sink);
  entry.query->restore(db_, last_execution, executions);
  entry.zone_id = db_.zones().register_cq(last_execution);

  {
    common::LockGuard lock(stats_mu_);
    CqStats& s = stats_of(entry);
    s.executions = executions;
    s.finished = false;
    s.last_execution = last_execution;
  }

  common::log_info("restored CQ '", entry.query->name(), "' at t=",
                   last_execution.to_string(), " after ", executions, " executions");

  CqHandle handle = 0;
  {
    common::LockGuard lock(entries_mu_);
    handle = next_handle_++;
    entries_.emplace(handle, std::move(entry));
    active_cq_gauge().set(static_cast<std::int64_t>(entries_.size()));
  }
  return handle;
}

void CqManager::remove(CqHandle handle) {
  common::LockGuard lock(entries_mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    throw common::NotFound("CqManager: unknown handle " + std::to_string(handle));
  }
  obs::event(obs::Severity::kInfo, "cq_terminated", it->second.query->name(),
             "removed", db_.clock().now().ticks());
  {
    common::LockGuard stats_lock(stats_mu_);
    stats_of(it->second).finished = true;
  }
  db_.zones().unregister(it->second.zone_id);
  entries_.erase(it);
  active_cq_gauge().set(static_cast<std::int64_t>(entries_.size()));
}

void CqManager::finish(CqHandle handle) {
  common::LockGuard lock(entries_mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) return;
  common::log_info("CQ '", it->second.query->name(), "' reached its Stop condition");
  obs::event(obs::Severity::kInfo, "cq_terminated", it->second.query->name(),
             "stop condition reached", db_.clock().now().ticks());
  {
    common::LockGuard stats_lock(stats_mu_);
    stats_of(it->second).finished = true;
  }
  db_.zones().unregister(it->second.zone_id);
  entries_.erase(it);
  active_cq_gauge().set(static_cast<std::int64_t>(entries_.size()));
}

void CqManager::record_check(const Entry& entry, bool fired) {
  {
    common::LockGuard lock(stats_mu_);
    CqStats& s = stats_of(entry);
    ++s.trigger_checks;
    if (fired) {
      ++s.fired;
      metrics_.add(common::metric::kTriggersFired, 1);
    } else {
      ++s.suppressed;
      metrics_.add(common::metric::kTriggersSuppressed, 1);
    }
  }
  if (fired) {
    if (obs::enabled()) {
      obs::event(obs::Severity::kInfo, "trigger_fired", entry.query->name(), "",
                 db_.clock().now().ticks());
    }
  } else {
    if (obs::enabled()) {
      obs::event(obs::Severity::kDebug, "trigger_suppressed", entry.query->name(), "",
                 db_.clock().now().ticks());
    }
  }
}

void CqManager::run(CqHandle handle, Entry& entry) {
  obs::Span span("cq.run");
  DraStats stats;
  common::Metrics local;
  const std::uint64_t t0 = obs::now_ns();
  const Notification note = entry.query->execute(db_, &local, &stats);
  const std::uint64_t elapsed = obs::now_ns() - t0;

  {
    common::LockGuard lock(stats_mu_);
    last_stats_ = stats;
    metrics_.merge(local);
    CqStats& s = stats_of(entry);
    ++s.executions;
    s.last_exec_ns = elapsed;
    s.total_exec_ns += elapsed;
    s.delta_rows_consumed += stats.delta_rows_read;
    s.rows_delivered += rows_delivered(note);
    s.last_execution = entry.query->last_execution();
  }
  if (obs::enabled()) {
    cq_exec_histogram().record(elapsed / 1000);
    obs::event(obs::Severity::kInfo, "cq_delivered", entry.query->name(),
               std::to_string(rows_delivered(note)) + " row(s)",
               entry.query->last_execution().ticks());
  }

  db_.zones().advance(entry.zone_id, entry.query->last_execution());
  record_lineage(note);
  if (entry.sink) {
    obs::Span notify_span("cq.notify");
    entry.sink->on_result(note);
  }
  if (entry.query->should_stop(db_)) {
    entry.query->mark_finished();
    finish(handle);
  }
}

std::size_t CqManager::poll() {
  static obs::Histogram& poll_hist = obs::global().histogram(obs::hist::kPollUs);
  obs::Span span("cq.poll", &poll_hist);
  std::size_t executed = 0;
  // Snapshot handles: run() may erase finished entries.
  const std::vector<CqHandle> handles = relevant_handles(nullptr);

  if (threads_ > 1) return dispatch_parallel(handles);

  for (const CqHandle h : handles) {
    Entry* entry = find_entry(h);
    if (entry == nullptr) continue;
    {
      common::LockGuard lock(stats_mu_);
      metrics_.add(common::metric::kTriggerChecks, 1);
    }
    if (entry->query->should_stop(db_)) {
      entry->query->mark_finished();
      finish(h);
      continue;
    }
    const bool fire = entry->query->should_fire(db_);
    record_check(*entry, fire);
    if (fire) {
      run(h, *entry);
      ++executed;
    }
  }
  return executed;
}

void CqManager::set_parallelism(std::size_t threads) {
  const std::size_t lanes = threads == 0 ? 1 : threads;
  if (lanes == threads_) return;
  threads_ = lanes;
  pool_.reset();  // rebuilt lazily at the next dispatch with the new width
  parallelism_gauge().set(static_cast<std::int64_t>(threads_));
}

std::size_t CqManager::dispatch_parallel(const std::vector<CqHandle>& handles) {
  if (handles.empty()) return 0;

  // ---- one outcome slot per eligible CQ, in handle order ----
  struct Outcome {
    CqHandle handle = 0;
    Entry* entry = nullptr;
    bool stop_pre = false;
    bool fired = false;
    bool stop_post = false;
    Notification note;
    DraStats stats;
    common::Metrics local;  // merged into metrics_ in handle order
    std::uint64_t elapsed_ns = 0;
    std::exception_ptr error;
  };
  std::vector<Outcome> outcomes;
  outcomes.reserve(handles.size());
  for (const CqHandle h : handles) {
    Entry* entry = find_entry(h);
    if (entry == nullptr) continue;
    Outcome o;
    o.handle = h;
    o.entry = entry;
    outcomes.push_back(std::move(o));
  }
  if (outcomes.empty()) return 0;

  // ---- snapshot each touched delta once, shared by every eligible CQ ----
  obs::Span snapshot_span("commit.snapshot");
  delta::SnapshotMap snapshots;
  for (const Outcome& o : outcomes) {
    for (const auto& table : o.entry->query->relations()) {
      if (!snapshots.contains(table)) {
        snapshots.emplace(table,
                          std::make_shared<delta::DeltaSnapshot>(db_.delta(table)));
      }
    }
  }
  snapshot_span.close();

  // ---- partition into batches keyed by the relations each CQ reads ----
  // CQs over one read set share the snapshot's memoized views, so keeping
  // them on one lane maximizes cache reuse; a single hot read set is still
  // sub-chunked so it spreads across all lanes instead of serializing.
  std::map<std::string, std::vector<std::size_t>> by_read_set;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    std::vector<std::string> key_parts = outcomes[i].entry->query->relations();
    std::sort(key_parts.begin(), key_parts.end());
    std::string key;
    for (const auto& part : key_parts) {
      key += part;
      key += ',';
    }
    by_read_set[key].push_back(i);
  }
  std::vector<std::vector<std::size_t>> batches;
  for (auto& [key, members] : by_read_set) {
    const std::size_t chunk = (members.size() + threads_ - 1) / threads_;
    for (std::size_t start = 0; start < members.size(); start += chunk) {
      const std::size_t stop = std::min(start + chunk, members.size());
      batches.emplace_back(members.begin() + static_cast<std::ptrdiff_t>(start),
                           members.begin() + static_cast<std::ptrdiff_t>(stop));
    }
  }
  parallelism_gauge().set(
      static_cast<std::int64_t>(std::min(threads_, batches.size())));

  // ---- evaluate: workers do pure reads + per-CQ state transitions ----
  static obs::Histogram& batch_hist = obs::global().histogram(obs::hist::kEvalBatchUs);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(batches.size());
  for (auto& batch : batches) {
    tasks.emplace_back([this, &snapshots, &outcomes, batch = std::move(batch)] {
      // Lands on the executing lane's track, carrying the dispatching
      // commit's trace id (the pool adopts the dispatcher's context).
      obs::Span batch_span("eval.batch", &batch_hist);
      for (const std::size_t i : batch) {
        Outcome& out = outcomes[i];
        try {
          ContinualQuery& query = *out.entry->query;
          out.stop_pre = query.should_stop(db_, &snapshots);
          if (out.stop_pre) continue;
          out.fired = query.should_fire(db_, &snapshots);
          if (!out.fired) continue;
          obs::Span span("cq.run");
          const std::uint64_t t0 = obs::now_ns();
          out.note = query.execute(db_, &out.local, &out.stats, &snapshots);
          out.elapsed_ns = obs::now_ns() - t0;
          out.stop_post = query.should_stop(db_, &snapshots);
        } catch (...) {
          out.error = std::current_exception();
        }
      }
    });
  }
  {
    obs::Span eval_span("commit.eval");
    // One pool, many possible dispatchers: the lease loser (a concurrent
    // commit over disjoint shards) evaluates its batches on its own
    // thread — same results, no cross-dispatch wait.
    PoolLease lease(pool_busy_);
    if (lease.owned()) {
      if (!pool_) pool_ = std::make_unique<common::ThreadPool>(threads_ - 1);
      pool_->run_all(std::move(tasks));
    } else {
      for (auto& task : tasks) task();
    }
  }

  // ---- merge: replay every side effect in handle order, exactly as the
  // sequential loop would have produced it ----
  obs::Span merge_span("commit.merge");
  std::size_t executed = 0;
  for (Outcome& out : outcomes) {
    {
      common::LockGuard lock(stats_mu_);
      metrics_.add(common::metric::kTriggerChecks, 1);
    }
    if (out.error) std::rethrow_exception(out.error);
    Entry& entry = *out.entry;
    if (out.stop_pre) {
      entry.query->mark_finished();
      finish(out.handle);
      continue;
    }
    record_check(entry, out.fired);
    if (!out.fired) continue;
    ++executed;
    {
      common::LockGuard lock(stats_mu_);
      last_stats_ = out.stats;
      metrics_.merge(out.local);
      CqStats& s = stats_of(entry);
      ++s.executions;
      s.last_exec_ns = out.elapsed_ns;
      s.total_exec_ns += out.elapsed_ns;
      s.delta_rows_consumed += out.stats.delta_rows_read;
      s.rows_delivered += rows_delivered(out.note);
      s.last_execution = entry.query->last_execution();
    }
    if (obs::enabled()) {
      cq_exec_histogram().record(out.elapsed_ns / 1000);
      obs::event(obs::Severity::kInfo, "cq_delivered", entry.query->name(),
                 std::to_string(rows_delivered(out.note)) + " row(s)",
                 entry.query->last_execution().ticks());
    }
    db_.zones().advance(entry.zone_id, entry.query->last_execution());
    record_lineage(out.note);
    if (entry.sink) {
      obs::Span notify_span("cq.notify");
      entry.sink->on_result(out.note);
    }
    if (out.stop_post) {
      entry.query->mark_finished();
      finish(out.handle);
    }
  }
  return executed;
}

void CqManager::set_eager(bool eager) {
  if (eager == eager_) return;
  eager_ = eager;
  if (eager_) {
    // The closure hook first: a commit arriving between the two set
    // calls must never dispatch without its closure being locked.
    db_.set_commit_closure_hook(
        [this](const std::vector<std::string>& write_set,
               std::vector<std::string>& closure) { extend_closure(write_set, closure); });
    db_.set_commit_hook([this](const std::vector<std::string>& tables,
                               common::Timestamp ts) { on_commit(tables, ts); });
  } else {
    db_.set_commit_hook(nullptr);
    db_.set_commit_closure_hook(nullptr);
  }
}

void CqManager::on_commit(const std::vector<std::string>& tables, common::Timestamp) {
  if (t_dispatching == this) return;  // a CQ execution never re-triggers itself
  DispatchGuard guard(this);

  const std::vector<CqHandle> relevant = relevant_handles(&tables);
  if (relevant.empty()) return;

  if (threads_ > 1) {
    dispatch_parallel(relevant);
    return;
  }

  for (const CqHandle h : relevant) {
    Entry* entry = find_entry(h);
    if (entry == nullptr) continue;
    {
      common::LockGuard lock(stats_mu_);
      metrics_.add(common::metric::kTriggerChecks, 1);
    }
    if (entry->query->should_stop(db_)) {
      entry->query->mark_finished();
      finish(h);
      continue;
    }
    const bool fire = entry->query->should_fire(db_);
    record_check(*entry, fire);
    if (fire) run(h, *entry);
  }
}

Notification CqManager::execute_now(CqHandle handle) {
  Entry* found = find_entry(handle);
  if (found == nullptr) {
    throw common::NotFound("CqManager: unknown handle " + std::to_string(handle));
  }
  Entry& entry = *found;
  obs::Span span("cq.run");
  DraStats stats;
  common::Metrics local;
  const std::uint64_t t0 = obs::now_ns();
  const Notification note = entry.query->execute(db_, &local, &stats);
  const std::uint64_t elapsed = obs::now_ns() - t0;

  {
    common::LockGuard lock(stats_mu_);
    last_stats_ = stats;
    metrics_.merge(local);
    CqStats& s = stats_of(entry);
    ++s.executions;
    s.last_exec_ns = elapsed;
    s.total_exec_ns += elapsed;
    s.delta_rows_consumed += stats.delta_rows_read;
    s.rows_delivered += rows_delivered(note);
    s.last_execution = entry.query->last_execution();
  }
  if (obs::enabled()) {
    cq_exec_histogram().record(elapsed / 1000);
    obs::event(obs::Severity::kInfo, "cq_delivered", entry.query->name(),
               std::to_string(rows_delivered(note)) + " row(s)",
               entry.query->last_execution().ticks());
  }

  db_.zones().advance(entry.zone_id, entry.query->last_execution());
  record_lineage(note);
  if (entry.sink) {
    obs::Span notify_span("cq.notify");
    entry.sink->on_result(note);
  }
  if (entry.query->should_stop(db_)) {
    entry.query->mark_finished();
    finish(handle);
  }
  return note;
}

void CqManager::set_lineage(bool enabled, std::size_t retention) {
  lineage_.set_retention(retention);
  if (enabled == lineage_on_) return;
  lineage_on_ = enabled;
  rel::prov::set_enabled(enabled);
}

void CqManager::record_lineage(const Notification& note) {
  if (!lineage_on_) return;
  lineage_.record(note, obs::current_context().trace_id);
}

std::size_t CqManager::collect_garbage() {
  static obs::Histogram& gc_hist = obs::global().histogram(obs::hist::kGcUs);
  obs::Span span("cq.gc", &gc_hist);
  const std::size_t reclaimed = db_.garbage_collect();
  common::LockGuard lock(stats_mu_);
  metrics_.add(common::metric::kGcRuns, 1);
  metrics_.add(common::metric::kGcRowsReclaimed, static_cast<std::int64_t>(reclaimed));
  return reclaimed;
}

const ContinualQuery& CqManager::cq(CqHandle handle) const {
  common::LockGuard lock(entries_mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    throw common::NotFound("CqManager: unknown handle " + std::to_string(handle));
  }
  return *it->second.query;
}

CqStats CqManager::stats(CqHandle handle) const {
  std::string name;
  {
    common::LockGuard lock(entries_mu_);
    auto it = entries_.find(handle);
    if (it == entries_.end()) {
      throw common::NotFound("CqManager: unknown handle " + std::to_string(handle));
    }
    name = it->second.query->name();
  }
  common::LockGuard lock(stats_mu_);
  auto stats_it = stats_.find(name);
  CQ_ASSERT(stats_it != stats_.end());
  return stats_it->second;
}

std::map<std::string, CqStats> CqManager::cq_stats() const {
  common::LockGuard lock(stats_mu_);
  return stats_;
}

std::vector<CqHandle> CqManager::handles() const {
  common::LockGuard lock(entries_mu_);
  std::vector<CqHandle> out;
  out.reserve(entries_.size());
  for (const auto& [h, e] : entries_) out.push_back(h);
  return out;
}

void CqManager::write_stats_json(common::obs::JsonWriter& w) const {
  common::LockGuard lock(stats_mu_);
  w.begin_object();
  for (const auto& [name, s] : stats_) {
    w.key(name).begin_object();
    w.kv("executions", s.executions);
    w.kv("trigger_checks", s.trigger_checks);
    w.kv("fired", s.fired);
    w.kv("suppressed", s.suppressed);
    w.kv("delta_rows_consumed", s.delta_rows_consumed);
    w.kv("rows_delivered", s.rows_delivered);
    w.kv("last_exec_us", s.last_exec_ns / 1000);
    w.kv("total_exec_us", s.total_exec_ns / 1000);
    w.kv("last_execution_at", s.last_execution.ticks());
    w.kv("finished", s.finished);
    w.end_object();
  }
  w.end_object();
}

common::obs::Section CqManager::stats_section() const {
  return {"cqs", [this](common::obs::JsonWriter& w) { write_stats_json(w); }};
}

void CqManager::write_prometheus(common::obs::PromWriter& w) const {
  common::LockGuard lock(stats_mu_);
  // active_cqs itself lives in the registry (maintained at install/remove),
  // so it is not re-emitted here — one sample per (name, labels).
  for (const auto& [name, s] : stats_) {
    const obs::Labels labels{{"cq", name}};
    w.counter("executions", static_cast<std::int64_t>(s.executions), labels);
    w.counter("trigger_checks", static_cast<std::int64_t>(s.trigger_checks), labels);
    w.counter("triggers_fired", static_cast<std::int64_t>(s.fired), labels);
    w.counter("triggers_suppressed", static_cast<std::int64_t>(s.suppressed), labels);
    w.counter("delta_rows_consumed", static_cast<std::int64_t>(s.delta_rows_consumed),
              labels);
    w.counter("rows_delivered", static_cast<std::int64_t>(s.rows_delivered), labels);
    w.counter("exec_time_us", static_cast<std::int64_t>(s.total_exec_ns / 1000), labels);
  }
}

std::function<void(common::obs::PromWriter&)> CqManager::prometheus_section() const {
  return [this](common::obs::PromWriter& w) { write_prometheus(w); };
}

void CqManager::reset_stats() {
  metrics_.reset();
  common::LockGuard lock(stats_mu_);
  last_stats_ = DraStats{};
  // Zero in place: stats(handle) relies on every installed CQ keeping its
  // record, and the name/finished fields describe identity, not work.
  for (auto& [name, s] : stats_) {
    s.executions = 0;
    s.trigger_checks = 0;
    s.fired = 0;
    s.suppressed = 0;
    s.delta_rows_consumed = 0;
    s.rows_delivered = 0;
    s.last_exec_ns = 0;
    s.total_exec_ns = 0;
  }
}

}  // namespace cq::core
