#include "cq/manager.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace cq::core {

CqManager::CqManager(cat::Database& db) : db_(db) {}

CqManager::~CqManager() {
  if (eager_) db_.set_commit_hook(nullptr);
}

CqHandle CqManager::install(CqSpec spec, std::shared_ptr<ResultSink> sink) {
  Entry entry;
  entry.query = std::make_unique<ContinualQuery>(std::move(spec), db_);
  entry.sink = std::move(sink);

  const Notification initial = entry.query->execute_initial(db_, &metrics_);
  entry.zone_id = db_.zones().register_cq(entry.query->last_execution());
  if (entry.sink) entry.sink->on_result(initial);

  common::log_info("installed CQ '", entry.query->name(), "' trigger=",
                   entry.query->spec().trigger->describe());

  const CqHandle handle = next_handle_++;
  entries_.emplace(handle, std::move(entry));
  return handle;
}

CqHandle CqManager::install_restored(CqSpec spec, std::shared_ptr<ResultSink> sink,
                                     common::Timestamp last_execution,
                                     std::uint64_t executions) {
  Entry entry;
  entry.query = std::make_unique<ContinualQuery>(std::move(spec), db_);
  entry.sink = std::move(sink);
  entry.query->restore(db_, last_execution, executions);
  entry.zone_id = db_.zones().register_cq(last_execution);

  common::log_info("restored CQ '", entry.query->name(), "' at t=",
                   last_execution.to_string(), " after ", executions, " executions");

  const CqHandle handle = next_handle_++;
  entries_.emplace(handle, std::move(entry));
  return handle;
}

void CqManager::remove(CqHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    throw common::NotFound("CqManager: unknown handle " + std::to_string(handle));
  }
  db_.zones().unregister(it->second.zone_id);
  entries_.erase(it);
}

void CqManager::finish(CqHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) return;
  common::log_info("CQ '", it->second.query->name(), "' reached its Stop condition");
  db_.zones().unregister(it->second.zone_id);
  entries_.erase(it);
}

void CqManager::run(CqHandle handle, Entry& entry) {
  DraStats stats;
  const Notification note = entry.query->execute(db_, &metrics_, &stats);
  last_stats_ = stats;
  db_.zones().advance(entry.zone_id, entry.query->last_execution());
  if (entry.sink) entry.sink->on_result(note);
  if (entry.query->should_stop(db_)) {
    entry.query->mark_finished();
    finish(handle);
  }
}

std::size_t CqManager::poll() {
  std::size_t executed = 0;
  // Snapshot handles: run() may erase finished entries.
  std::vector<CqHandle> handles;
  handles.reserve(entries_.size());
  for (const auto& [h, e] : entries_) handles.push_back(h);

  for (const CqHandle h : handles) {
    auto it = entries_.find(h);
    if (it == entries_.end()) continue;
    Entry& entry = it->second;
    metrics_.add(common::metric::kTriggerChecks, 1);
    if (entry.query->should_stop(db_)) {
      entry.query->mark_finished();
      finish(h);
      continue;
    }
    if (entry.query->should_fire(db_)) {
      run(h, entry);
      ++executed;
    }
  }
  return executed;
}

void CqManager::set_eager(bool eager) {
  if (eager == eager_) return;
  eager_ = eager;
  if (eager_) {
    db_.set_commit_hook([this](const std::vector<std::string>& tables,
                               common::Timestamp ts) { on_commit(tables, ts); });
  } else {
    db_.set_commit_hook(nullptr);
  }
}

void CqManager::on_commit(const std::vector<std::string>& tables, common::Timestamp) {
  if (in_dispatch_) return;  // a CQ execution never re-triggers itself
  in_dispatch_ = true;
  std::vector<CqHandle> handles;
  handles.reserve(entries_.size());
  for (const auto& [h, e] : entries_) handles.push_back(h);

  for (const CqHandle h : handles) {
    auto it = entries_.find(h);
    if (it == entries_.end()) continue;
    Entry& entry = it->second;
    const auto& relations = entry.query->relations();
    const bool relevant =
        std::any_of(tables.begin(), tables.end(), [&](const std::string& t) {
          return std::find(relations.begin(), relations.end(), t) != relations.end();
        });
    if (!relevant) continue;
    metrics_.add(common::metric::kTriggerChecks, 1);
    if (entry.query->should_stop(db_)) {
      entry.query->mark_finished();
      finish(h);
      continue;
    }
    if (entry.query->should_fire(db_)) run(h, entry);
  }
  in_dispatch_ = false;
}

Notification CqManager::execute_now(CqHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    throw common::NotFound("CqManager: unknown handle " + std::to_string(handle));
  }
  DraStats stats;
  const Notification note = it->second.query->execute(db_, &metrics_, &stats);
  last_stats_ = stats;
  db_.zones().advance(it->second.zone_id, it->second.query->last_execution());
  if (it->second.sink) it->second.sink->on_result(note);
  if (it->second.query->should_stop(db_)) {
    it->second.query->mark_finished();
    finish(handle);
  }
  return note;
}

std::size_t CqManager::collect_garbage() { return db_.garbage_collect(); }

const ContinualQuery& CqManager::cq(CqHandle handle) const {
  auto it = entries_.find(handle);
  if (it == entries_.end()) {
    throw common::NotFound("CqManager: unknown handle " + std::to_string(handle));
  }
  return *it->second.query;
}

std::vector<CqHandle> CqManager::handles() const {
  std::vector<CqHandle> out;
  out.reserve(entries_.size());
  for (const auto& [h, e] : entries_) out.push_back(h);
  return out;
}

}  // namespace cq::core
