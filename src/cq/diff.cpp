#include "cq/diff.hpp"

#include <sstream>
#include <unordered_map>

#include "algebra/ops.hpp"
#include "common/error.hpp"

namespace cq::core {

using rel::Relation;
using rel::Tuple;

namespace {

// Why-provenance must survive multiset cancellation: one net joined row can
// appear as several value-equal signed instances across DRA terms (ΔS⋈T',
// S'⋈ΔT, ΔS⋈ΔT), each citing only its own term's deltas. The instance the
// streaming difference happens to keep is arbitrary, so attach the union of
// every value-equal instance's sources to the surviving rows instead.
void merge_value_provenance(const DiffResult& raw, DiffResult& out) {
  std::unordered_map<std::size_t,
                     std::vector<std::pair<const Tuple*, rel::prov::ProvSetPtr>>>
      by_value;
  auto fold = [&](const Relation& r) {
    for (const auto& row : r.rows()) {
      if (row.prov() == nullptr) continue;
      auto& bucket = by_value[row.value_hash()];
      bool found = false;
      for (auto& [exemplar, set] : bucket) {
        if (exemplar->same_values(row)) {
          set = rel::prov::merge(set, row.prov());
          found = true;
          break;
        }
      }
      if (!found) bucket.emplace_back(&row, row.prov());
    }
  };
  fold(raw.inserted);
  fold(raw.deleted);
  if (by_value.empty()) return;
  auto attach = [&](Relation& r) {
    for (auto& row : r.mutable_rows()) {
      auto it = by_value.find(row.value_hash());
      if (it == by_value.end()) continue;
      for (const auto& [exemplar, set] : it->second) {
        if (exemplar->same_values(row)) {
          row.set_prov(set);
          break;
        }
      }
    }
  };
  attach(out.inserted);
  attach(out.deleted);
}

}  // namespace

bool DiffResult::equivalent(const DiffResult& other) const {
  const DiffResult a = consolidated();
  const DiffResult b = other.consolidated();
  return a.inserted.equal_multiset(b.inserted) && a.deleted.equal_multiset(b.deleted);
}

DiffResult DiffResult::consolidated() const {
  DiffResult out;
  out.inserted = alg::difference(inserted, deleted);
  out.deleted = alg::difference(deleted, inserted);
  if (rel::prov::enabled()) merge_value_provenance(*this, out);
  return out;
}

std::string DiffResult::to_string() const {
  std::ostringstream os;
  os << "ΔQ inserted: " << inserted.to_string() << "ΔQ deleted: " << deleted.to_string();
  return os.str();
}

DiffResult diff(const Relation& before, const Relation& after) {
  DiffResult out;
  out.inserted = alg::difference(after, before);
  out.deleted = alg::difference(before, after);
  return out;
}

rel::Relation apply_diff(const Relation& previous, const DiffResult& delta) {
  Relation next = previous;
  for (const auto& row : delta.deleted.rows()) {
    if (!next.remove_one(row)) {
      throw common::InternalError(
          "apply_diff: deleted row missing from previous result: " + row.to_string());
    }
  }
  for (const auto& row : delta.inserted.rows()) next.append(row);
  return next;
}

ClassifiedDiff classify(const DiffResult& delta) {
  ClassifiedDiff out;
  out.pure_insertions = rel::Relation(delta.inserted.schema());
  out.pure_deletions = rel::Relation(delta.deleted.schema());

  std::unordered_map<rel::TupleId, const Tuple*> deleted_by_tid;
  for (const auto& row : delta.deleted.rows()) {
    if (row.tid().valid()) deleted_by_tid.emplace(row.tid(), &row);
  }
  std::unordered_map<rel::TupleId, bool> matched;
  for (const auto& row : delta.inserted.rows()) {
    auto it = row.tid().valid() ? deleted_by_tid.find(row.tid()) : deleted_by_tid.end();
    if (it != deleted_by_tid.end()) {
      out.modified.emplace_back(*it->second, row);
      matched[row.tid()] = true;
    } else {
      out.pure_insertions.append(row);
    }
  }
  for (const auto& row : delta.deleted.rows()) {
    if (!row.tid().valid() || !matched.contains(row.tid())) {
      out.pure_deletions.append(row);
    }
  }
  return out;
}

}  // namespace cq::core
