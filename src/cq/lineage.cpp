#include "cq/lineage.hpp"

#include <algorithm>
#include <sstream>

#include "catalog/database.hpp"
#include "common/observability.hpp"
#include "delta/delta_relation.hpp"

namespace cq::core {

namespace obs = common::obs;

namespace {

std::size_t row_bytes(const LineageRow& row) {
  return sizeof(LineageRow) + row.row.size() +
         row.sources.capacity() * sizeof(rel::prov::ProvId);
}

LineageRow make_row(const rel::Tuple& t, bool inserted) {
  LineageRow out;
  out.row = t.to_string();
  out.inserted = inserted;
  if (t.prov()) out.sources = *t.prov();
  return out;
}

void write_record_json(obs::JsonWriter& w, const LineageRecord& rec) {
  w.begin_object();
  w.kv("sequence", rec.sequence);
  w.kv("at", rec.at.ticks());
  w.kv("trace_id", rec.trace_id);
  w.key("rows");
  w.begin_array();
  for (const LineageRow& row : rec.rows) {
    w.begin_object();
    w.kv("row", row.row);
    w.kv("inserted", row.inserted);
    w.kv("fanin", static_cast<std::uint64_t>(row.sources.size()));
    w.key("sources");
    w.begin_array();
    for (const rel::prov::ProvId& id : row.sources) {
      w.begin_object();
      w.kv("txn", id.txn);
      w.kv("relation", rel::prov::relation_name(id.rel));
      w.kv("seq", id.seq);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

/// Locate the physical delta row a ProvId cites, or nullptr when the table
/// is gone or GC reclaimed the row.
const delta::DeltaRow* resolve(const cat::Database& db, const rel::prov::ProvId& id) {
  const std::string table = rel::prov::relation_name(id.rel);
  if (!db.has_table(table)) return nullptr;
  for (const delta::DeltaRow& row : db.delta(table).rows()) {
    if (row.ts.ticks() == id.txn && row.seq == id.seq) return &row;
  }
  return nullptr;
}

}  // namespace

void LineageStore::set_retention(std::size_t k) {
  common::LockGuard lock(mu_);
  retention_ = k == 0 ? 1 : k;
  for (auto& [name, ring] : rings_) {
    while (ring.size() > retention_) {
      bytes_ -= ring.front().bytes;
      ring.pop_front();
    }
  }
}

std::size_t LineageStore::retention() const {
  common::LockGuard lock(mu_);
  return retention_;
}

void LineageStore::record(const Notification& note, std::uint64_t trace_id) {
  LineageRecord rec;
  rec.sequence = note.sequence;
  rec.at = note.at;
  rec.trace_id = trace_id;
  rec.bytes = sizeof(LineageRecord);
  for (const rel::Tuple& t : note.delta.inserted.rows()) {
    rec.rows.push_back(make_row(t, true));
  }
  for (const rel::Tuple& t : note.delta.deleted.rows()) {
    rec.rows.push_back(make_row(t, false));
  }

  std::size_t max_fanin = 0;
  static obs::Histogram& global_fanin =
      obs::global().histogram(obs::hist::kLineageFanin);
  std::size_t total_bytes = 0;
  {
    common::LockGuard lock(mu_);
    obs::Histogram& per_cq = fanin_[note.cq_name];
    for (LineageRow& row : rec.rows) {
      per_cq.record(row.sources.size());
      global_fanin.record(row.sources.size());
      max_fanin = std::max(max_fanin, row.sources.size());
      rec.bytes += row_bytes(row);
    }
    std::deque<LineageRecord>& ring = rings_[note.cq_name];
    bytes_ += rec.bytes;
    ring.push_back(std::move(rec));
    while (ring.size() > retention_) {
      bytes_ -= ring.front().bytes;
      ring.pop_front();
    }
    total_bytes = bytes_;
  }
  static obs::Gauge& bytes_gauge = obs::global().gauge(obs::gauge::kLineageBytes);
  bytes_gauge.set(static_cast<std::int64_t>(total_bytes));
  obs::event(obs::Severity::kDebug, "lineage", note.cq_name,
             "rows=" + std::to_string(note.delta.inserted.size() +
                                      note.delta.deleted.size()) +
                 " max_fanin=" + std::to_string(max_fanin),
             note.at.ticks());
}

std::vector<LineageRecord> LineageStore::tail(const std::string& cq,
                                              std::size_t n) const {
  common::LockGuard lock(mu_);
  std::vector<LineageRecord> out;
  auto it = rings_.find(cq);
  if (it == rings_.end()) return out;
  const std::deque<LineageRecord>& ring = it->second;
  const std::size_t want = std::min(n, ring.size());
  out.reserve(want);
  for (std::size_t i = ring.size() - want; i < ring.size(); ++i) {
    out.push_back(ring[i]);
  }
  return out;
}

std::vector<std::string> LineageStore::cq_names() const {
  common::LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(rings_.size());
  for (const auto& [name, ring] : rings_) out.push_back(name);
  return out;
}

std::size_t LineageStore::bytes() const {
  common::LockGuard lock(mu_);
  return bytes_;
}

void LineageStore::clear() {
  common::LockGuard lock(mu_);
  rings_.clear();
  fanin_.clear();
  bytes_ = 0;
}

std::string LineageStore::to_json(const std::string& cq, std::size_t n) const {
  obs::JsonWriter w;
  if (cq.empty()) {
    common::LockGuard lock(mu_);
    w.begin_object();
    w.kv("retention", static_cast<std::uint64_t>(retention_));
    w.kv("bytes", static_cast<std::uint64_t>(bytes_));
    w.key("cqs");
    w.begin_array();
    for (const auto& [name, ring] : rings_) {
      w.begin_object();
      w.kv("cq", name);
      w.kv("records", static_cast<std::uint64_t>(ring.size()));
      w.kv("last_sequence", ring.empty() ? std::uint64_t{0} : ring.back().sequence);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
  }

  common::LockGuard lock(mu_);
  w.begin_object();
  w.kv("cq", cq);
  w.kv("retention", static_cast<std::uint64_t>(retention_));
  w.kv("bytes", static_cast<std::uint64_t>(bytes_));
  w.key("records");
  w.begin_array();
  auto it = rings_.find(cq);
  if (it != rings_.end()) {
    const std::deque<LineageRecord>& ring = it->second;
    const std::size_t want = std::min(n, ring.size());
    for (std::size_t i = ring.size() - want; i < ring.size(); ++i) {
      write_record_json(w, ring[i]);
    }
  }
  w.end_array();
  auto fit = fanin_.find(cq);
  if (fit != fanin_.end()) {
    w.key("fanin");
    obs::write_histogram_json(w, fit->second);
  }
  w.end_object();
  return w.str();
}

std::string LineageStore::explain(const cat::Database& db, const std::string& cq,
                                  std::size_t n) const {
  const std::vector<LineageRecord> records = tail(cq, n);
  std::ostringstream os;
  if (records.empty()) {
    os << "no lineage retained for CQ '" << cq
       << "' (is lineage collection on? see LINEAGE ON)\n";
    return os.str();
  }
  for (const LineageRecord& rec : records) {
    os << "notification #" << rec.sequence << " at t=" << rec.at.ticks();
    if (rec.trace_id != 0) os << " (trace " << rec.trace_id << ")";
    os << "\n";
    if (rec.rows.empty()) os << "  (empty delta)\n";
    for (const LineageRow& row : rec.rows) {
      os << "  " << (row.inserted ? "+" : "-") << " " << row.row << "\n";
      if (row.sources.empty()) {
        os << "      <= (no cited base deltas)\n";
        continue;
      }
      for (const rel::prov::ProvId& id : row.sources) {
        os << "      <= Δ" << rel::prov::relation_name(id.rel) << " txn=" << id.txn
           << " seq=" << id.seq;
        if (const delta::DeltaRow* source = resolve(db, id)) {
          os << " " << delta::to_string(source->kind());
          if (source->old_values) {
            os << " old=" << rel::Tuple(*source->old_values).to_string();
          }
          if (source->new_values) {
            os << " new=" << rel::Tuple(*source->new_values).to_string();
          }
        } else {
          os << " (row reclaimed or table dropped)";
        }
        os << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace cq::core
