// Trigger conditions T_CQ (Section 3.1) and epsilon specifications
// (Section 3.2), including their *differential* evaluation (Section 5.3):
// every data-dependent trigger below reads only the differential relations
// restricted to ts > t_last — never the base tables.
//
// Supported forms, mirroring the paper's list in Section 3.1:
//   * direct time specification            -> at_times()
//   * interval since the previous result   -> periodic()
//   * condition on the database state      -> change_count(), on_change()
//   * relation between previous result and
//     current state (epsilon specs)        -> aggregate_drift()
// plus AND/OR composition.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "common/timestamp.hpp"
#include "delta/delta_snapshot.hpp"

namespace cq::core {

/// Everything a trigger may consult when deciding whether to fire.
struct TriggerContext {
  const cat::Database& db;
  /// Tables the continual query reads (trigger scope defaults to these).
  const std::vector<std::string>& relations;
  common::Timestamp last_execution;
  common::Timestamp now;
  std::uint64_t executions = 0;  // completed executions so far
  /// Per-dispatch pinned delta snapshots (parallel evaluation engine);
  /// null outside a parallel dispatch. Data-dependent triggers read the
  /// snapshot when their table is present, the live log otherwise.
  const delta::SnapshotMap* snapshots = nullptr;

  /// The snapshot covering `table`, or null to read the live delta.
  [[nodiscard]] const delta::DeltaSnapshot* snapshot_of(const std::string& table) const {
    if (snapshots == nullptr) return nullptr;
    auto it = snapshots->find(table);
    return it == snapshots->end() ? nullptr : it->second.get();
  }
};

class Trigger {
 public:
  virtual ~Trigger() = default;

  /// True when the CQ should re-execute now. Must be cheap: called after
  /// every relevant commit under the eager strategy (Section 5.3).
  [[nodiscard]] virtual bool should_fire(const TriggerContext& context) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

using TriggerPtr = std::shared_ptr<const Trigger>;

namespace triggers {

/// Fire whenever logical time `interval` has elapsed since the last
/// execution ("a week since Q(S_{n-1}) was produced").
[[nodiscard]] TriggerPtr periodic(common::Duration interval);

/// Fire at each of the given instants (direct time specification, like the
/// Harvest gatherers' "once every Monday"). Each instant fires at most once.
[[nodiscard]] TriggerPtr at_times(std::vector<common::Timestamp> times);

/// Fire as soon as any relevant differential relation has a change after
/// the last execution.
[[nodiscard]] TriggerPtr on_change();

/// Epsilon spec on update volume: fire when the net number of changed
/// tuples across the CQ's relations since the last execution reaches
/// `threshold` ("a deposit of one million dollars" style conditions use
/// aggregate_drift below; this one counts tuples).
[[nodiscard]] TriggerPtr change_count(std::size_t threshold);

/// Epsilon spec on an aggregate (Section 5.3's checking-account example):
/// fire when |SUM(column) over insertions − SUM(column) over deletions|
/// ≥ epsilon, evaluated against Δ`table` only — the differential form
///   ΔDeposits  := SELECT SUM(amount) FROM insertions(ΔCheckingAccounts)
///                 WHERE ts > t_{i-1}
///   ΔWithdrawals := ... deletions(...) ...
[[nodiscard]] TriggerPtr aggregate_drift(std::string table, std::string column,
                                         double epsilon);

/// Both sub-triggers must agree.
[[nodiscard]] TriggerPtr all_of(std::vector<TriggerPtr> triggers);

/// Any sub-trigger suffices.
[[nodiscard]] TriggerPtr any_of(std::vector<TriggerPtr> triggers);

/// Never fires on its own (useful with manual execute_now()).
[[nodiscard]] TriggerPtr manual();

}  // namespace triggers

}  // namespace cq::core
