// Incremental maintenance of aggregate query results on top of ΔQ.
//
// The paper's epsilon-query examples (Sections 3.2, 5.3) are aggregates —
// "SELECT SUM(amount) FROM CheckingAccounts" — refreshed differentially.
// AggregateState holds per-group accumulators that can both *add* and
// *remove* contributions, so a DiffResult from the DRA updates the
// aggregate in O(|ΔQ|) instead of O(|Q|):
//   SUM / COUNT / AVG: running sums and counts;
//   MIN / MAX:         a per-group ordered multiset of values (deletions
//                      may expose the second-smallest/-largest).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algebra/aggregate.hpp"
#include "cq/diff.hpp"
#include "relation/relation.hpp"

namespace cq::core {

class AggregateState {
 public:
  /// `spj_schema` is the schema of the SPJ core result the aggregates are
  /// computed over (i.e. of the relations later passed to apply()).
  AggregateState(rel::Schema spj_schema, std::vector<std::string> group_by,
                 std::vector<alg::AggSpec> specs);

  /// Reset to the aggregate of `spj_result` (used at CQ installation).
  void initialize(const rel::Relation& spj_result);

  /// Fold one differential result into the state.
  void apply(const DiffResult& delta);

  /// Current aggregate relation; identical (as a multiset) to
  /// alg::group_aggregate(current SPJ result, group_by, specs).
  [[nodiscard]] rel::Relation current() const;

  /// Schema of current().
  [[nodiscard]] const rel::Schema& output_schema() const noexcept { return out_schema_; }

  /// Indexes of the GROUP BY columns in the SPJ schema (empty when
  /// ungrouped). Output rows of current() lead with these columns in the
  /// same order, so the first group_columns().size() values of an output
  /// row form its group key — lineage attachment relies on this layout.
  [[nodiscard]] const std::vector<std::size_t>& group_columns() const noexcept {
    return group_idx_;
  }

  /// Convenience for single-aggregate, ungrouped queries: the lone value
  /// (e.g. the running SUM). Throws when grouped or multi-aggregate.
  [[nodiscard]] rel::Value scalar() const;

 private:
  struct SpecState {
    std::int64_t non_null = 0;  // rows with a non-null input
    double dbl_sum = 0.0;
    std::int64_t int_sum = 0;
    bool is_double = false;
    // Ordered multiset for MIN/MAX.
    std::map<rel::Value, std::int64_t> values;
  };
  struct GroupState {
    std::int64_t rows = 0;  // total rows in the group (for group liveness)
    std::vector<SpecState> specs;
  };

  void fold_row(const rel::Tuple& row, std::int64_t weight);
  [[nodiscard]] rel::Value spec_result(const alg::AggSpec& spec,
                                       const SpecState& state) const;

  rel::Schema spj_schema_;
  std::vector<std::string> group_by_;
  std::vector<alg::AggSpec> specs_;
  rel::Schema out_schema_;
  std::vector<std::size_t> group_idx_;
  std::vector<std::optional<std::size_t>> spec_idx_;

  struct KeyLess {
    bool operator()(const std::vector<rel::Value>& a,
                    const std::vector<rel::Value>& b) const;
  };
  std::map<std::vector<rel::Value>, GroupState, KeyLess> groups_;
};

}  // namespace cq::core
