// The Differential Re-evaluation Algorithm (Section 4.3, Algorithm 1).
//
// For an SPJ continual query Q = π_X(σ_F(R1 ⋈ ... ⋈ Rn)), after its last
// execution at time t_i, the DRA computes ΔQ — the rows entering and
// leaving the result — from the differential relations alone plus the
// current base tables, without recomputing Q from scratch:
//
//   1. Identify the k operand relations changed since t_i (their ΔR has a
//      non-empty net effect with ts > t_i — the timestamp predicate of
//      Section 4.2 input (iv)).
//   2. Enumerate the 2^k − 1 non-zero truth-table rows. Each row b yields
//      one SPJ term in which ΔRi is substituted for Ri wherever b_i = 1.
//      ΔRi is a *signed* relation: insertions(ΔRi) carry weight +1 and
//      deletions(ΔRi) weight −1 (a modification contributes one of each).
//   3. Evaluate each term differentially (DiffSelect/DiffProj/DiffJoin):
//      selections push below joins, joins multiply signs, and the term's
//      overall sign is (−1)^(|b|+1) because unchanged positions bind the
//      *current* base state R'i = Ri ∪ ΔRi rather than the old state —
//      algebraically equivalent to the paper's formulation, but it avoids
//      materializing pre-update base snapshots.
//   4. Sum the terms and consolidate: net-positive rows are ΔQ insertions,
//      net-negative rows are ΔQ deletions.
//
// The result is functionally equivalent to Propagate (propagate.hpp); the
// property tests in tests/dra_oracle_test.cpp check exactly this.
#pragma once

#include "catalog/database.hpp"
#include "common/metrics.hpp"
#include "common/timestamp.hpp"
#include "cq/diff.hpp"
#include "delta/delta_snapshot.hpp"
#include "query/ast.hpp"

namespace cq::core {

struct DraOptions {
  /// Section 5.2 refinement: first test each changed relation's delta
  /// against that relation's pushed-down selection; when every filtered
  /// delta is empty the whole re-evaluation is skipped.
  bool irrelevance_check = true;

  /// Use hash joins for equi-join conjuncts inside DiffJoin terms
  /// (nested-loop otherwise). Ablation A1.
  bool use_hash_join = true;

  /// Probe persistent indexes (Database::create_index) for unchanged-side
  /// join inputs instead of scanning/materializing the filtered base. Makes
  /// differential join terms O(|Δ| · fanout) instead of O(|base|).
  bool use_persistent_indexes = true;
};

/// Statistics of one DRA invocation (for benchmarks and EXPLAIN output).
struct DraStats {
  std::size_t changed_relations = 0;  // k
  std::size_t terms_evaluated = 0;    // ≤ 2^k − 1
  std::size_t delta_rows_read = 0;    // total net-effect rows consumed
  std::size_t index_probes = 0;       // accumulator rows probed into indexes
  bool skipped_irrelevant = false;    // irrelevance check short-circuited
};

/// Compute ΔQ of the SPJ core of `query` for all updates committed after
/// `since`. Aggregates/DISTINCT must be handled by the caller (the
/// ContinualQuery layer maintains them incrementally on top of ΔQ).
///
/// When `snapshots` is non-null, delta reads for relations present in the
/// map go through the shared pinned DeltaSnapshot instead of the live log
/// (the parallel evaluation engine builds one map per commit); relations
/// absent from the map fall back to db.delta(). Base-table reads always
/// hit the live catalog — commits are serialized with dispatch, so the
/// base state cannot move underneath an evaluation.
[[nodiscard]] DiffResult dra_differential(const qry::SpjQuery& query,
                                          const cat::Database& db,
                                          common::Timestamp since,
                                          common::Metrics* metrics = nullptr,
                                          const DraOptions& options = {},
                                          DraStats* stats = nullptr,
                                          const delta::SnapshotMap* snapshots = nullptr);

}  // namespace cq::core
