// Notification lineage retention: a bounded per-CQ ring of the base-delta
// derivations behind recent notifications.
//
// When lineage collection is on (rel::prov::enabled(), toggled through
// CqManager::set_lineage), every delta row leaving a DeltaRelation carries
// a ProvId leaf and the DRA operators propagate/union the sets, so each
// output row of a notification arrives here citing exactly the base delta
// rows that caused it. The store keeps the last K notifications per CQ,
// renders them as the /lineage JSON document and as the human-readable
// EXPLAIN NOTIFICATION derivation (base rows → operator path → output
// row), and feeds the lineage_fanin histogram + lineage_bytes gauge.
//
// Thread safety: recording happens at the manager's serialized delivery
// points (sequential run, parallel merge, execute_now) while the
// introspection HTTP server reads from its own thread — hence the mutex.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/sync.hpp"
#include "common/timestamp.hpp"
#include "cq/continual_query.hpp"
#include "relation/provenance.hpp"

namespace cq::cat {
class Database;
}  // namespace cq::cat

namespace cq::core {

/// One output row of a notification plus the base deltas that caused it.
struct LineageRow {
  std::string row;      ///< Rendered output tuple, e.g. "(DEC, 150)".
  bool inserted = true; ///< true = entered the result, false = left it.
  rel::prov::ProvSet sources;  ///< Cited base deltas, sorted.
};

/// The retained lineage of one delivered notification.
struct LineageRecord {
  std::uint64_t sequence = 0;     ///< Notification sequence number.
  common::Timestamp at;           ///< Logical delivery instant.
  std::uint64_t trace_id = 0;     ///< Owning commit's trace id; 0 = none.
  std::vector<LineageRow> rows;
  std::size_t bytes = 0;          ///< Approximate heap bytes of this record.
};

class LineageStore {
 public:
  static constexpr std::size_t kDefaultRetention = 8;

  /// Ring depth per CQ; shrinking drops the oldest records immediately.
  void set_retention(std::size_t k);
  [[nodiscard]] std::size_t retention() const;

  /// Retain the lineage of one delivered notification: extracts each delta
  /// row's provenance set, records fan-in into the per-CQ and global
  /// lineage_fanin histograms, updates the lineage_bytes gauge, and emits
  /// a "lineage" journal event. Call only from serialized delivery points.
  void record(const Notification& note, std::uint64_t trace_id);

  /// The newest `n` retained records for `cq`, oldest first.
  [[nodiscard]] std::vector<LineageRecord> tail(const std::string& cq,
                                                std::size_t n) const;

  /// CQ names with retained lineage, sorted.
  [[nodiscard]] std::vector<std::string> cq_names() const;

  /// Total approximate heap bytes across all rings.
  [[nodiscard]] std::size_t bytes() const;

  /// Drop all retained records (retention unchanged).
  void clear();

  /// The /lineage JSON document. With a CQ name: that CQ's newest `n`
  /// records plus its fan-in histogram. With an empty name: an index of
  /// all CQs with retained lineage.
  [[nodiscard]] std::string to_json(const std::string& cq, std::size_t n) const;

  /// Human-readable derivation of the newest `n` notifications of `cq`:
  /// each output row followed by the cited base delta rows, resolved
  /// against `db`'s delta logs (reclaimed rows are flagged as such).
  [[nodiscard]] std::string explain(const cat::Database& db, const std::string& cq,
                                    std::size_t n) const;

 private:
  mutable common::Mutex mu_{"lineage_store", common::lockorder::LockRank::kLineageStore};
  std::size_t retention_ CQ_GUARDED_BY(mu_) = kDefaultRetention;
  std::map<std::string, std::deque<LineageRecord>> rings_ CQ_GUARDED_BY(mu_);
  // Histogram is internally atomic, but the map structure grows on first
  // use per CQ — the node-stable map is guarded like the registry's.
  std::map<std::string, common::obs::Histogram> fanin_ CQ_GUARDED_BY(mu_);
  std::size_t bytes_ CQ_GUARDED_BY(mu_) = 0;
};

}  // namespace cq::core
