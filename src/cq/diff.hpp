// The differential result type shared by the DRA and by the complete
// re-evaluation oracle: which rows entered the query result and which left
// it between two executions. This is the paper's Diff operator output
// (Section 4.2), i.e. ΔQ.
#pragma once

#include <string>
#include <vector>

#include "relation/relation.hpp"

namespace cq::core {

/// ΔQ between two executions: multiset of rows that entered (`inserted`)
/// and left (`deleted`) the result. A modified tuple that stays in the
/// result appears in both (old version in deleted, new in inserted).
struct DiffResult {
  rel::Relation inserted;
  rel::Relation deleted;

  [[nodiscard]] bool empty() const noexcept {
    return inserted.empty() && deleted.empty();
  }

  /// Total number of change rows.
  [[nodiscard]] std::size_t size() const noexcept {
    return inserted.size() + deleted.size();
  }

  /// Two diffs are equivalent when their inserted and deleted multisets
  /// match (tids ignored). This is how DRA output is validated against the
  /// Propagate oracle.
  [[nodiscard]] bool equivalent(const DiffResult& other) const;

  /// Cancel rows present in both inserted and deleted (no net change).
  /// Needed after summing truth-table terms, where a tuple can be produced
  /// positively by one term and negatively by another.
  [[nodiscard]] DiffResult consolidated() const;

  [[nodiscard]] std::string to_string() const;
};

/// Compute Diff(before, after): rows of `after` not in `before` become
/// inserted; rows of `before` not in `after` become deleted. Multiset
/// semantics; schemas must be union-compatible.
[[nodiscard]] DiffResult diff(const rel::Relation& before, const rel::Relation& after);

/// Apply a diff to a previous complete result:
///   next = previous − deleted ∪ inserted    (Section 4.2's complete-set
/// formula). Throws InternalError if a deleted row is absent from previous
/// (indicates an inconsistent diff).
[[nodiscard]] rel::Relation apply_diff(const rel::Relation& previous,
                                       const DiffResult& delta);

/// Classification of a diff by tid: rows modified in place (same tid on
/// both sides) vs pure insertions vs pure deletions. Used to present
/// results the way Section 4.2 describes (deletion notification etc.).
struct ClassifiedDiff {
  rel::Relation pure_insertions;
  rel::Relation pure_deletions;
  /// Pairs (old, new) for tuples whose tid appears on both sides.
  std::vector<std::pair<rel::Tuple, rel::Tuple>> modified;
};

[[nodiscard]] ClassifiedDiff classify(const DiffResult& delta);

}  // namespace cq::core
