#include "cq/epsilon_view.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cq::core {

namespace {
CqSpec view_spec(std::string name, const std::string& sql) {
  CqSpec spec = CqSpec::from_sql(std::move(name), sql, triggers::manual(), nullptr,
                                 DeliveryMode::kComplete);
  return spec;
}
}  // namespace

EpsilonView::EpsilonView(std::string name, const std::string& sql, cat::Database& db,
                         Spec spec)
    : db_(db), spec_(std::move(spec)), cq_(view_spec(std::move(name), sql), db) {
  if (spec_.max_drift && (spec_.drift_table.empty() || spec_.drift_column.empty())) {
    throw common::InvalidArgument(
        "EpsilonView: max_drift needs drift_table and drift_column");
  }
  if (spec_.max_drift && *spec_.max_drift < 0) {
    throw common::InvalidArgument("EpsilonView: max_drift must be non-negative");
  }
  const Notification initial = cq_.execute_initial(db_);
  cached_ = current_result(initial);
}

rel::Relation EpsilonView::current_result(const Notification& n) const {
  if (n.aggregate) return *n.aggregate;
  CQ_ASSERT(n.complete.has_value());
  return *n.complete;
}

double EpsilonView::pending_drift() const {
  if (!spec_.max_drift) return 0.0;
  const auto& delta = db_.delta(spec_.drift_table);
  // Pin before the net_effect scan: drift is computed outside any engine
  // lock, so GC must be held off for the duration of the read.
  const auto pin = delta.pin_reads();
  if (!delta.changed_since(cq_.last_execution())) return 0.0;
  const std::size_t col = delta.base_schema().index_of(spec_.drift_column);
  double drift = 0.0;
  for (const auto& row : delta.net_effect(cq_.last_execution())) {
    if (row.new_values && !(*row.new_values)[col].is_null()) {
      drift += (*row.new_values)[col].numeric();
    }
    if (row.old_values && !(*row.old_values)[col].is_null()) {
      drift -= (*row.old_values)[col].numeric();
    }
  }
  return drift;
}

void EpsilonView::refresh() {
  const Notification n = cq_.execute(db_);
  cached_ = current_result(n);
}

EpsilonView::Answer EpsilonView::read() {
  const ContinualQuery::Staleness staleness = cq_.staleness(db_);
  const double drift = pending_drift();
  const bool within_count = staleness.relevant_changes <= spec_.max_relevant_changes;
  const bool within_drift = !spec_.max_drift || std::fabs(drift) <= *spec_.max_drift;

  Answer answer;
  if (within_count && within_drift) {
    answer.result = cached_;
    answer.divergence = staleness.relevant_changes;
    answer.drift = drift;
    answer.refreshed = false;
    return answer;
  }
  refresh();
  answer.result = cached_;
  answer.divergence = 0;
  answer.drift = 0.0;
  answer.refreshed = true;
  return answer;
}

}  // namespace cq::core
