#include "cq/agg_state.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cq::core {

using alg::AggKind;
using rel::Relation;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

bool AggregateState::KeyLess::operator()(const std::vector<Value>& a,
                                         const std::vector<Value>& b) const {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto c = a[i].compare(b[i]);
    if (c != std::strong_ordering::equal) return c == std::strong_ordering::less;
  }
  return a.size() < b.size();
}

AggregateState::AggregateState(rel::Schema spj_schema, std::vector<std::string> group_by,
                               std::vector<alg::AggSpec> specs)
    : spj_schema_(std::move(spj_schema)),
      group_by_(std::move(group_by)),
      specs_(std::move(specs)),
      out_schema_(alg::aggregate_output_schema(spj_schema_, group_by_, specs_)) {
  if (specs_.empty()) {
    throw common::InvalidArgument("AggregateState: at least one aggregate required");
  }
  for (const auto& g : group_by_) group_idx_.push_back(spj_schema_.index_of(g));
  for (const auto& s : specs_) {
    if (!s.column.empty() && s.column != "*") {
      spec_idx_.push_back(spj_schema_.index_of(s.column));
    } else {
      spec_idx_.push_back(std::nullopt);
    }
  }
}

void AggregateState::initialize(const Relation& spj_result) {
  groups_.clear();
  for (const auto& row : spj_result.rows()) fold_row(row, +1);
}

void AggregateState::apply(const DiffResult& delta) {
  for (const auto& row : delta.inserted.rows()) fold_row(row, +1);
  for (const auto& row : delta.deleted.rows()) fold_row(row, -1);
}

void AggregateState::fold_row(const Tuple& row, std::int64_t weight) {
  std::vector<Value> key;
  key.reserve(group_idx_.size());
  for (auto gi : group_idx_) key.push_back(row.at(gi));

  auto it = groups_.find(key);
  if (it == groups_.end()) {
    if (weight < 0) {
      throw common::InternalError("AggregateState: deletion from unknown group");
    }
    GroupState fresh;
    fresh.specs.resize(specs_.size());
    it = groups_.emplace(std::move(key), std::move(fresh)).first;
  }
  GroupState& group = it->second;
  group.rows += weight;
  if (group.rows < 0) {
    throw common::InternalError("AggregateState: negative group cardinality");
  }

  for (std::size_t s = 0; s < specs_.size(); ++s) {
    SpecState& state = group.specs[s];
    const Value input = spec_idx_[s] ? row.at(*spec_idx_[s]) : Value(true);
    if (input.is_null()) continue;
    state.non_null += weight;
    if (state.non_null < 0) {
      throw common::InternalError("AggregateState: negative non-null count");
    }
    switch (specs_[s].kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (input.type() == ValueType::kInt && !state.is_double) {
          state.int_sum += weight * input.as_int();
        } else {
          if (!state.is_double) {
            state.dbl_sum = static_cast<double>(state.int_sum);
            state.is_double = true;
          }
          state.dbl_sum += static_cast<double>(weight) * input.numeric();
        }
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        auto vit = state.values.find(input);
        if (weight > 0) {
          if (vit == state.values.end()) {
            state.values.emplace(input, 1);
          } else {
            ++vit->second;
          }
        } else {
          if (vit == state.values.end()) {
            throw common::InternalError("AggregateState: deleting absent MIN/MAX value");
          }
          if (--vit->second == 0) state.values.erase(vit);
        }
        break;
      }
    }
  }

  if (group.rows == 0) groups_.erase(it);
}

Value AggregateState::spec_result(const alg::AggSpec& spec, const SpecState& state) const {
  switch (spec.kind) {
    case AggKind::kCount:
      return Value(state.non_null);
    case AggKind::kSum:
      if (state.non_null == 0) return Value::null();
      return state.is_double ? Value(state.dbl_sum) : Value(state.int_sum);
    case AggKind::kAvg:
      if (state.non_null == 0) return Value::null();
      return Value((state.is_double ? state.dbl_sum
                                    : static_cast<double>(state.int_sum)) /
                   static_cast<double>(state.non_null));
    case AggKind::kMin:
      return state.values.empty() ? Value::null() : state.values.begin()->first;
    case AggKind::kMax:
      return state.values.empty() ? Value::null() : state.values.rbegin()->first;
  }
  return Value::null();
}

Relation AggregateState::current() const {
  Relation out(out_schema_);
  for (const auto& [key, group] : groups_) {
    std::vector<Value> values = key;
    for (std::size_t s = 0; s < specs_.size(); ++s) {
      values.push_back(spec_result(specs_[s], group.specs[s]));
    }
    out.append(Tuple(std::move(values)));
  }
  return out;
}

Value AggregateState::scalar() const {
  if (!group_by_.empty() || specs_.size() != 1) {
    throw common::InvalidArgument("AggregateState::scalar needs 1 aggregate, no groups");
  }
  if (groups_.empty()) {
    // SQL: aggregates over an empty input still yield one row.
    SpecState empty;
    return spec_result(specs_[0], empty);
  }
  return spec_result(specs_[0], groups_.begin()->second.specs[0]);
}

}  // namespace cq::core
