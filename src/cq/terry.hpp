// Baseline: Terry et al.'s *continuous queries* (SIGMOD '92), as
// characterized in Section 2 of the paper — incremental evaluation under
// the **append-only** assumption. Deletions and in-place modifications are
// outside its model; this implementation faithfully refuses them (throws
// Unsupported), which is exactly the limitation the paper's DRA removes.
//
// On pure-append workloads the incremental step is simply Q over the
// appended tuples (for monotone SPJ queries), so both approaches are
// incremental there; benchmark E7 compares them and demonstrates the
// generality gap on mixed workloads.
#pragma once

#include "catalog/database.hpp"
#include "common/metrics.hpp"
#include "common/timestamp.hpp"
#include "cq/diff.hpp"
#include "query/ast.hpp"

namespace cq::core {

/// Incremental continuous-query step: new result rows contributed by
/// tuples appended after `since`. Throws common::Unsupported when any
/// non-append change (deletion or modification) exists in the window.
[[nodiscard]] rel::Relation terry_incremental(const qry::SpjQuery& query,
                                              const cat::Database& db,
                                              common::Timestamp since,
                                              common::Metrics* metrics = nullptr);

/// True when every change after `since` on the query's relations is an
/// insertion (the workload satisfies the append-only assumption).
[[nodiscard]] bool append_only_since(const qry::SpjQuery& query, const cat::Database& db,
                                     common::Timestamp since);

}  // namespace cq::core
