// A continual query is the triple (Q, T_CQ, Stop) — Section 3.1 — plus the
// runtime state the DRA needs between executions (Section 4.2, inputs
// i–v): the last execution timestamp and, depending on the delivery mode,
// the saved previous result (Section 3.3 discusses exactly this trade-off).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "common/metrics.hpp"
#include "cq/agg_state.hpp"
#include "cq/diff.hpp"
#include "cq/dra.hpp"
#include "cq/stop.hpp"
#include "cq/trigger.hpp"
#include "query/ast.hpp"

namespace cq::core {

/// What each execution delivers to the user (Section 4.3 step 4 lists
/// exactly these assemblies of the differential result).
enum class DeliveryMode {
  /// Only the rows that entered the result since the last execution
  /// ("differential result ... without deletion notification").
  kInsertionsOnly,
  /// Only the rows that left the result ("notified of all deleted tuples").
  kDeletionsOnly,
  /// Both sides of ΔQ.
  kDifferential,
  /// The full result, maintained as E(Q,t_i) − deletions ∪ insertions.
  kComplete,
};

[[nodiscard]] const char* to_string(DeliveryMode mode) noexcept;

/// How executions after the first are computed. kDra is the paper's
/// contribution; kRecompute is the Propagate baseline (used for benchmarks
/// and as a cross-check).
enum class ExecutionStrategy { kDra, kRecompute };

/// Static definition of a continual query.
struct CqSpec {
  std::string name;
  qry::SpjQuery query;
  TriggerPtr trigger;
  StopPtr stop;  // nullptr = stop::never()
  DeliveryMode mode = DeliveryMode::kDifferential;
  ExecutionStrategy strategy = ExecutionStrategy::kDra;
  DraOptions dra_options;

  /// Convenience: parse the query from SQL.
  static CqSpec from_sql(std::string name, const std::string& sql, TriggerPtr trigger,
                         StopPtr stop = nullptr,
                         DeliveryMode mode = DeliveryMode::kDifferential);
};

/// One delivered result.
struct Notification {
  std::string cq_name;
  std::uint64_t sequence = 0;  // 0 = initial execution
  common::Timestamp at;
  /// ΔQ for differential modes; empty on the initial execution.
  DiffResult delta;
  /// Present for kComplete mode and for the initial execution.
  std::optional<rel::Relation> complete;
  /// Present for aggregate queries: the maintained aggregate relation.
  std::optional<rel::Relation> aggregate;
};

/// Consumer of CQ results.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void on_result(const Notification& notification) = 0;
};

/// Sink that stores every notification (tests, examples).
class CollectingSink final : public ResultSink {
 public:
  void on_result(const Notification& notification) override {
    notifications_.push_back(notification);
  }
  [[nodiscard]] const std::vector<Notification>& notifications() const noexcept {
    return notifications_;
  }
  void clear() noexcept { notifications_.clear(); }

 private:
  std::vector<Notification> notifications_;
};

/// Sink that forwards to a callable.
class CallbackSink final : public ResultSink {
 public:
  using Callback = std::function<void(const Notification&)>;
  explicit CallbackSink(Callback callback) : callback_(std::move(callback)) {}
  void on_result(const Notification& notification) override { callback_(notification); }

 private:
  Callback callback_;
};

/// Runtime instance of one installed CQ. Owned by the CqManager; exposed
/// for inspection.
class ContinualQuery {
 public:
  ContinualQuery(CqSpec spec, const cat::Database& db);

  [[nodiscard]] const CqSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] common::Timestamp last_execution() const noexcept { return last_exec_; }
  [[nodiscard]] std::uint64_t executions() const noexcept { return executions_; }
  [[nodiscard]] const std::vector<std::string>& relations() const noexcept {
    return relations_;
  }
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// The saved previous SPJ result, when the delivery mode maintains one.
  [[nodiscard]] const std::optional<rel::Relation>& saved_result() const noexcept {
    return saved_result_;
  }

  /// Initial execution E_0 (complete re-evaluation by definition).
  [[nodiscard]] Notification execute_initial(const cat::Database& db,
                                             common::Metrics* metrics = nullptr);

  /// Subsequent execution E_i, differential per the configured strategy.
  /// `snapshots` (optional) routes delta reads through the per-dispatch
  /// pinned snapshot set built by the parallel evaluation engine.
  [[nodiscard]] Notification execute(const cat::Database& db,
                                     common::Metrics* metrics = nullptr,
                                     DraStats* stats = nullptr,
                                     const delta::SnapshotMap* snapshots = nullptr);

  /// Restore the runtime state of a CQ that had last executed at
  /// `last_execution` (with `executions` completed) against a database
  /// whose delta logs still cover that instant — e.g. after reloading a
  /// persisted snapshot. No result needs to have been persisted: the saved
  /// result is reconstructed by *rolling back* the current state with an
  /// inverted differential (next = prev − del ∪ ins  ⇔  prev = next − ins
  /// ∪ del), which is exactly the DRA run in reverse. Throws if the CQ has
  /// already executed or if `executions` is zero.
  void restore(const cat::Database& db, common::Timestamp last_execution,
               std::uint64_t executions);

  /// Evaluate the trigger / stop conditions.
  [[nodiscard]] bool should_fire(const cat::Database& db,
                                 const delta::SnapshotMap* snapshots = nullptr) const;
  [[nodiscard]] bool should_stop(const cat::Database& db,
                                 const delta::SnapshotMap* snapshots = nullptr) const;
  void mark_finished() noexcept { finished_ = true; }

  /// Drop every maintained per-mode artifact (saved previous result,
  /// DISTINCT multiplicities, aggregate state). The next execution then
  /// *re-primes*: one full recompute delivered as a complete result with
  /// an empty delta — instead of throwing "recompute strategy lost its
  /// saved result" the way stale state used to. restore() calls this
  /// automatically when GC truncated the rollback window it needs.
  void invalidate_saved_result() noexcept {
    saved_result_.reset();
    result_counts_.reset();
    agg_state_.reset();
    reprime_pending_ = true;
  }

  /// True when the next execution will re-prime instead of running
  /// differentially (diagnostics / tests).
  [[nodiscard]] bool reprime_pending() const noexcept { return reprime_pending_; }

  /// How far the delivered result has drifted from the live database — the
  /// Epsilon-Serializability-inspired divergence measure the paper's
  /// ε-specs bound (Section 3.2). Cheap: reads only the delta logs.
  struct Staleness {
    /// Net-effect rows on the CQ's relations since the last execution.
    std::size_t pending_changes = 0;
    /// Of those, rows surviving the CQ's pushed-down selections (a lower
    /// bound on how many could actually affect the result).
    std::size_t relevant_changes = 0;
    /// Logical time elapsed since the last execution.
    common::Duration age{0};
  };
  [[nodiscard]] Staleness staleness(const cat::Database& db) const;

  /// Human-readable description of how the next execution would proceed:
  /// trigger, strategy, per-relation pending deltas, and the planner's
  /// decomposition of the query (Section 5.2's refinement, made visible).
  [[nodiscard]] std::string explain(const cat::Database& db) const;

 private:
  [[nodiscard]] TriggerContext context(const cat::Database& db,
                                       const delta::SnapshotMap* snapshots) const;
  [[nodiscard]] qry::SpjQuery spj_core() const;
  /// The aggregate relation as the user sees it (HAVING applied).
  [[nodiscard]] rel::Relation delivered_aggregate() const;
  /// Full recompute + per-mode state rebuild; shared by execute_initial
  /// and the re-prime path. Fills everything in the notification except
  /// the sequence number, and sets last_exec_ to now.
  [[nodiscard]] Notification prime_from_scratch(const cat::Database& db,
                                                common::Metrics* metrics);
  /// True when the per-mode state the configured strategy/mode relies on
  /// is absent, so the next execution must re-prime.
  [[nodiscard]] bool needs_reprime() const noexcept;

  CqSpec spec_;
  std::vector<std::string> relations_;
  common::Timestamp last_exec_;
  std::uint64_t executions_ = 0;
  bool finished_ = false;
  bool reprime_pending_ = false;

  /// Maintained for kComplete (and needed by kDifferential with DISTINCT).
  std::optional<rel::Relation> saved_result_;
  /// Multiset counts of the SPJ core result, used to derive DISTINCT-level
  /// diffs without recomputation.
  std::optional<rel::TupleBag> result_counts_;
  std::optional<AggregateState> agg_state_;
};

}  // namespace cq::core
