// The Propagate operator (Section 4.2): the formal *complete
// re-evaluation* solution. Propagate(Q; [R, ΔR]) recomputes Q over the
// current database state from scratch and diffs against the saved previous
// result. It is the correctness oracle for the DRA ("functionally
// equivalent to the recompute-the-query-from-scratch solution") and the
// baseline in every benchmark.
#pragma once

#include "catalog/database.hpp"
#include "common/metrics.hpp"
#include "cq/diff.hpp"
#include "query/ast.hpp"

namespace cq::core {

/// Recompute Q(S_now) over the base tables from scratch.
[[nodiscard]] rel::Relation recompute(const qry::SpjQuery& query, const cat::Database& db,
                                      common::Metrics* metrics = nullptr);

/// Propagate(Q; [R, ΔR]) = Diff(Q(S_prev), Q(S_now)) — computed the
/// expensive way: full recompute of the SPJ core, then multiset diff
/// against the caller-saved previous result.
[[nodiscard]] DiffResult propagate(const qry::SpjQuery& query, const cat::Database& db,
                                   const rel::Relation& previous_result,
                                   common::Metrics* metrics = nullptr);

}  // namespace cq::core
