// Termination conditions (the `Stop` of the triple (Q, T_CQ, Stop),
// Section 3.1). When Stop becomes true the CQ sequence ends and the CQ
// manager deinstalls the query, releasing its delta zone.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/timestamp.hpp"

namespace cq::core {

struct TriggerContext;

class StopCondition {
 public:
  virtual ~StopCondition() = default;

  /// Checked after each execution (and on every trigger poll). True means
  /// the CQ is finished.
  [[nodiscard]] virtual bool satisfied(const TriggerContext& context) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

using StopPtr = std::shared_ptr<const StopCondition>;

namespace stop {

/// Stop = nil: the CQ runs until explicitly removed.
[[nodiscard]] StopPtr never();

/// End once logical time reaches `t`.
[[nodiscard]] StopPtr at_time(common::Timestamp t);

/// End after the CQ has produced `n` results.
[[nodiscard]] StopPtr after_executions(std::uint64_t n);

/// Arbitrary predicate over the trigger context.
[[nodiscard]] StopPtr when(std::function<bool(const TriggerContext&)> predicate,
                           std::string description);

}  // namespace stop

}  // namespace cq::core
