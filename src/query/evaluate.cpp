#include "query/evaluate.hpp"

#include "algebra/ops.hpp"
#include "algebra/predicate.hpp"
#include "common/error.hpp"

namespace cq::qry {

using alg::ExprPtr;
using common::Metrics;
using rel::Relation;

Relation qualified_copy(const Relation& input, const TableRef& ref) {
  Relation out = input;
  out.set_schema(qualify(input.schema(), ref));
  return out;
}

Relation evaluate_spj_over(const SpjQuery& query,
                           const std::vector<const Relation*>& inputs,
                           Metrics* metrics, SpjExecTrace* trace) {
  query.validate();
  if (inputs.size() != query.from.size()) {
    throw common::InvalidArgument("evaluate_spj_over: expected " +
                                  std::to_string(query.from.size()) + " inputs, got " +
                                  std::to_string(inputs.size()));
  }
  const std::size_t n = inputs.size();

  std::vector<rel::Schema> schemas;
  std::vector<std::size_t> cards;
  schemas.reserve(n);
  cards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    schemas.push_back(inputs[i]->schema());
    cards.push_back(inputs[i]->size());
  }
  const PlannedQuery planned = plan(query, schemas, cards, &inputs);
  if (trace != nullptr) {
    *trace = SpjExecTrace{};
    trace->plan = planned;
    trace->input_rows = cards;
    trace->scan_rows.resize(n);
  }

  // Select before join (Section 5.2): filter each input first.
  std::vector<Relation> filtered(n);
  std::vector<const Relation*> bound(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ExprPtr f = planned.filter(i);
    if (alg::is_always_true(f)) {
      bound[i] = inputs[i];
    } else {
      filtered[i] = alg::select(*inputs[i], *f, metrics);
      bound[i] = &filtered[i];
    }
    if (trace != nullptr) trace->scan_rows[i] = bound[i]->size();
  }

  // Join in planner order, applying join conjuncts as soon as they resolve.
  std::vector<ExprPtr> pending = planned.join_conjuncts;
  Relation acc = *bound[planned.join_order[0]];
  for (std::size_t step = 1; step < n; ++step) {
    const Relation& next = *bound[planned.join_order[step]];
    const rel::Schema combined = acc.schema().concat(next.schema());
    std::vector<ExprPtr> applicable;
    std::vector<ExprPtr> still_pending;
    for (const auto& c : pending) {
      if (c->resolves_in(combined)) {
        applicable.push_back(c);
      } else {
        still_pending.push_back(c);
      }
    }
    pending = std::move(still_pending);
    acc = alg::join(acc, next, alg::conjoin(applicable), metrics);
    if (trace != nullptr) trace->join_rows.push_back(acc.size());
  }
  if (!pending.empty()) {
    // Conjuncts that never resolved (e.g. reference unknown columns) —
    // surface the error through expression evaluation.
    acc = alg::select(acc, *alg::conjoin(pending), metrics);
    if (trace != nullptr) {
      trace->has_residual = true;
      trace->residual_rows = acc.size();
    }
  }

  // Projection.
  if (!query.projection.empty()) {
    acc = alg::project(acc, query.projection, query.distinct, metrics);
  } else {
    if (n > 1) {
      // SELECT * over a join: the planner may have joined in any order, so
      // restore the canonical FROM-order column layout (the DRA and the
      // Propagate oracle rely on both producing the same schema).
      std::vector<std::string> canonical;
      for (const auto& s : schemas) {
        for (const auto& a : s.attributes()) canonical.push_back(a.name);
      }
      acc = alg::project(acc, canonical, false, metrics);
    }
    if (query.distinct) acc = alg::distinct(acc);
  }
  if (trace != nullptr) trace->output_rows = acc.size();
  return acc;
}

Relation evaluate_spj(const SpjQuery& query, const cat::Database& db, Metrics* metrics,
                      SpjExecTrace* trace) {
  query.validate();
  std::vector<Relation> qualified;
  qualified.reserve(query.from.size());
  for (const auto& ref : query.from) {
    qualified.push_back(qualified_copy(db.table(ref.table), ref));
  }
  std::vector<const Relation*> inputs;
  inputs.reserve(qualified.size());
  for (const auto& r : qualified) inputs.push_back(&r);
  return evaluate_spj_over(query, inputs, metrics, trace);
}

Relation apply_aggregates(const SpjQuery& query, const Relation& spj_result,
                          Metrics* metrics) {
  if (!query.is_aggregate()) return spj_result;
  Relation out =
      alg::group_aggregate(spj_result, query.group_by, query.aggregates, metrics);
  if (query.having) out = alg::select(out, *query.having, metrics);
  return out;
}

Relation apply_order_by(const SpjQuery& query, Relation input) {
  if (query.order_by.empty()) return input;
  std::vector<std::size_t> keys;
  keys.reserve(query.order_by.size());
  for (const auto& k : query.order_by) keys.push_back(input.schema().index_of(k.column));

  std::vector<rel::Tuple> rows = input.rows();
  std::stable_sort(rows.begin(), rows.end(), [&](const rel::Tuple& a, const rel::Tuple& b) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto c = a.at(keys[i]).compare(b.at(keys[i]));
      if (c == std::strong_ordering::equal) continue;
      const bool less = c == std::strong_ordering::less;
      return query.order_by[i].descending ? !less : less;
    }
    return false;
  });
  Relation out(input.schema());
  for (auto& row : rows) out.append(std::move(row));
  return out;
}

Relation evaluate(const SpjQuery& query, const cat::Database& db, Metrics* metrics) {
  // For aggregate queries the SPJ core must keep all columns the aggregates
  // and group keys reference; the projection list is empty in that case.
  if (query.is_aggregate()) {
    SpjQuery core = query;
    core.projection.clear();
    core.distinct = false;
    core.aggregates.clear();
    core.group_by.clear();
    core.having = nullptr;
    core.order_by.clear();
    Relation spj = evaluate_spj(core, db, metrics);
    return apply_order_by(query, apply_aggregates(query, spj, metrics));
  }
  return apply_order_by(query, evaluate_spj(query, db, metrics));
}

namespace {
/// The SPJ core evaluate() runs for an aggregate query: all columns kept,
/// aggregation stripped (see evaluate()).
SpjQuery spj_core_of(const SpjQuery& query) {
  SpjQuery core = query;
  core.projection.clear();
  core.distinct = false;
  core.aggregates.clear();
  core.group_by.clear();
  core.having = nullptr;
  core.order_by.clear();
  return core;
}

std::string aggregate_label(const SpjQuery& query) {
  std::string label = "Aggregate [";
  for (std::size_t i = 0; i < query.aggregates.size(); ++i) {
    const alg::AggSpec& a = query.aggregates[i];
    if (i > 0) label += ", ";
    label += std::string(alg::to_string(a.kind)) + "(" +
             (a.column.empty() ? "*" : a.column) + ")";
  }
  label += "]";
  if (!query.group_by.empty()) {
    label += " GROUP BY [";
    for (std::size_t i = 0; i < query.group_by.size(); ++i) {
      if (i > 0) label += ", ";
      label += query.group_by[i];
    }
    label += "]";
  }
  if (query.having) label += " HAVING [" + query.having->to_string() + "]";
  return label;
}

std::string sort_label(const SpjQuery& query) {
  std::string label = "Sort [";
  for (std::size_t i = 0; i < query.order_by.size(); ++i) {
    if (i > 0) label += ", ";
    label += query.order_by[i].column;
    if (query.order_by[i].descending) label += " DESC";
  }
  return label + "]";
}
}  // namespace

QueryExplain explain_query(const SpjQuery& query, const cat::Database& db,
                           bool execute) {
  query.validate();
  const bool aggregate = query.is_aggregate();
  const SpjQuery core = aggregate ? spj_core_of(query) : query;

  std::vector<Relation> qualified;
  qualified.reserve(core.from.size());
  for (const auto& ref : core.from) {
    qualified.push_back(qualified_copy(db.table(ref.table), ref));
  }
  std::vector<const Relation*> inputs;
  std::vector<rel::Schema> schemas;
  std::vector<std::size_t> cards;
  inputs.reserve(qualified.size());
  schemas.reserve(qualified.size());
  cards.reserve(qualified.size());
  for (const auto& r : qualified) {
    inputs.push_back(&r);
    schemas.push_back(r.schema());
    cards.push_back(r.size());
  }

  QueryExplain out;
  if (execute) {
    SpjExecTrace trace;
    Relation spj = evaluate_spj_over(core, inputs, nullptr, &trace);
    out.plan = trace.plan;
    out.root = build_plan_tree(core, out.plan, schemas, &trace);
    out.result = aggregate ? apply_order_by(query, apply_aggregates(query, spj))
                           : apply_order_by(query, std::move(spj));
    out.executed = true;
  } else {
    out.plan = plan(core, schemas, cards, &inputs);
    out.root = build_plan_tree(core, out.plan, schemas);
  }

  if (aggregate) {
    ExplainNode agg;
    agg.label = aggregate_label(query);
    if (out.executed) agg.actual_rows = static_cast<std::int64_t>(out.result.size());
    agg.children.push_back(std::move(out.root));
    out.root = std::move(agg);
  }
  if (!query.order_by.empty()) {
    ExplainNode sort;
    sort.label = sort_label(query);
    sort.estimated_rows = out.root.estimated_rows;
    if (out.executed) sort.actual_rows = static_cast<std::int64_t>(out.result.size());
    sort.children.push_back(std::move(out.root));
    out.root = std::move(sort);
  }
  return out;
}

}  // namespace cq::qry
