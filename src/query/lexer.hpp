// Tokenizer for the SQL subset. Keywords are case-insensitive; identifiers
// are case-sensitive and may be qualified ("s.price").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cq::qry {

enum class TokenKind {
  kIdentifier,  // foo, Stocks.price
  kInteger,
  kDouble,
  kString,      // 'abc'
  kKeyword,     // normalized upper-case: SELECT, FROM, WHERE, ...
  kSymbol,      // ( ) , * = <> < <= > >= + - /
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // normalized: keywords upper-cased, strings unquoted
  std::int64_t integer = 0;
  double real = 0.0;
  std::size_t offset = 0;  // position in the input, for error messages

  [[nodiscard]] bool is_keyword(const char* kw) const noexcept {
    return kind == TokenKind::kKeyword && text == kw;
  }
  [[nodiscard]] bool is_symbol(const char* sym) const noexcept {
    return kind == TokenKind::kSymbol && text == sym;
  }
};

/// Tokenize the whole input. Throws ParseError on malformed input. The
/// result always ends with a kEnd token.
[[nodiscard]] std::vector<Token> tokenize(const std::string& input);

}  // namespace cq::qry
