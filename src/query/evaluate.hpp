// Query evaluation. Two entry points:
//
//   evaluate(query, db)       — run over a Database's base tables (the
//                               "complete re-evaluation" of Section 4.2);
//   evaluate_spj_over(...)    — run the SPJ part over caller-supplied
//                               relations bound positionally to the FROM
//                               list. The DRA uses this to substitute
//                               insertions(ΔR)/deletions(ΔR) for R in each
//                               truth-table term (Algorithm 1, step 2).
//
// Both paths share one physical pipeline: qualify schemas, push selections
// below joins, join in planner order, project, then aggregate.
#pragma once

#include <vector>

#include "catalog/database.hpp"
#include "common/metrics.hpp"
#include "query/ast.hpp"
#include "query/planner.hpp"
#include "relation/relation.hpp"

namespace cq::qry {

/// Copy `input` with its schema alias-qualified for `ref`.
[[nodiscard]] rel::Relation qualified_copy(const rel::Relation& input,
                                           const TableRef& ref);

/// Evaluate the SPJ core (joins + selection + projection/distinct; no
/// aggregates) over `inputs`, which must be alias-qualified and bound
/// positionally to query.from. When `trace` is non-null it is overwritten
/// with the chosen plan and per-operator row counts (EXPLAIN support).
[[nodiscard]] rel::Relation evaluate_spj_over(const SpjQuery& query,
                                              const std::vector<const rel::Relation*>& inputs,
                                              common::Metrics* metrics = nullptr,
                                              SpjExecTrace* trace = nullptr);

/// Evaluate the SPJ core over the database's base tables.
[[nodiscard]] rel::Relation evaluate_spj(const SpjQuery& query, const cat::Database& db,
                                         common::Metrics* metrics = nullptr,
                                         SpjExecTrace* trace = nullptr);

/// Full evaluation including aggregation. For aggregate queries the result
/// has the group-by keys followed by the aggregate columns (one row total
/// when there is no GROUP BY).
[[nodiscard]] rel::Relation evaluate(const SpjQuery& query, const cat::Database& db,
                                     common::Metrics* metrics = nullptr);

/// Apply the aggregate part of `query` (GROUP BY + HAVING) to an
/// already-computed SPJ result.
[[nodiscard]] rel::Relation apply_aggregates(const SpjQuery& query,
                                             const rel::Relation& spj_result,
                                             common::Metrics* metrics = nullptr);

/// Apply the query's ORDER BY (presentation ordering) to a result.
[[nodiscard]] rel::Relation apply_order_by(const SpjQuery& query, rel::Relation input);

/// Everything EXPLAIN needs: the chosen plan, the operator tree with
/// estimated (and, when executed, actual) row counts, and — when executed —
/// the query result itself.
struct QueryExplain {
  PlannedQuery plan;
  ExplainNode root;
  rel::Relation result;  // final rows; empty unless `executed`
  bool executed = false;

  /// Indented one-operator-per-line rendering of the tree.
  [[nodiscard]] std::string to_string() const { return render_plan_tree(root); }
};

/// Plan `query` against `db` and build its EXPLAIN tree. With
/// `execute == true` (EXPLAIN ANALYZE semantics) the query actually runs
/// and every operator is annotated with the row count it produced;
/// otherwise only the planner's estimates are shown.
[[nodiscard]] QueryExplain explain_query(const SpjQuery& query, const cat::Database& db,
                                         bool execute = true);

}  // namespace cq::qry
