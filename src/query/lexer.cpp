#include "query/lexer.hpp"

#include <cctype>
#include <unordered_set>

#include "common/error.hpp"

namespace cq::qry {

namespace {
const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw = {
      "SELECT", "DISTINCT", "FROM", "WHERE",   "GROUP", "BY",   "AS",  "AND",
      "OR",     "NOT",      "IN",   "BETWEEN", "IS",    "NULL", "LIKE", "TRUE",
      "FALSE",  "SUM",      "COUNT", "AVG",    "MIN",   "MAX",  "HAVING",
      "ORDER",  "ASC",      "DESC"};
  return kw;
}

std::string upper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}
}  // namespace

std::vector<Token> tokenize(const std::string& input) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = input.size();

  auto error = [&](const std::string& message) -> void {
    throw common::ParseError(message + " at offset " + std::to_string(i) + " in: " + input);
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_' || input[i] == '.')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string up = upper(word);
      if (keywords().contains(up)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = up;
      } else {
        tok.kind = TokenKind::kIdentifier;
        tok.text = std::move(word);
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(input[i]))) {
          error("malformed exponent");
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      const std::string num = input.substr(start, i - start);
      if (is_double) {
        tok.kind = TokenKind::kDouble;
        try {
          tok.real = std::stod(num);
        } catch (const std::out_of_range&) {
          // Overflow ("1e9999") and underflow both surface as out_of_range.
          error("numeric literal out of range");
        }
      } else {
        tok.kind = TokenKind::kInteger;
        try {
          tok.integer = std::stoll(num);
        } catch (const std::out_of_range&) {
          error("integer literal out of range");
        }
      }
      tok.text = num;
    } else if (c == '\'') {
      ++i;
      std::string s;
      for (;;) {
        if (i >= n) error("unterminated string literal");
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote ''
            s.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        s.push_back(input[i++]);
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
    } else {
      // symbols, including two-character comparators
      auto two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tok.kind = TokenKind::kSymbol;
        tok.text = two == "!=" ? "<>" : two;
        i += 2;
      } else if (std::string("()*,=<>+-/").find(c) != std::string::npos) {
        tok.kind = TokenKind::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        error(std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back(std::move(tok));
  }
  out.push_back(Token{});  // kEnd
  return out;
}

}  // namespace cq::qry
