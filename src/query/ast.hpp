// The query AST: SPJ expressions π_X(σ_F(R1 ⋈ ... ⋈ Rn)) — exactly the
// class the DRA handles (Section 4.3, Algorithm 1) — plus optional
// aggregation on top (the epsilon-query examples of Sections 3.2 / 5.3).
#pragma once

#include <string>
#include <vector>

#include "algebra/aggregate.hpp"
#include "algebra/expr.hpp"

namespace cq::qry {

/// One FROM entry. `alias` is the name used to qualify columns; it defaults
/// to the table name.
struct TableRef {
  std::string table;
  std::string alias;

  [[nodiscard]] const std::string& effective_alias() const noexcept {
    return alias.empty() ? table : alias;
  }
};

/// A parsed SELECT statement.
struct SpjQuery {
  std::vector<TableRef> from;

  /// Selection predicate F over the qualified join schema; always_true()
  /// when absent.
  alg::ExprPtr where;

  /// Projection list X (column names, possibly qualified). Empty = SELECT *.
  std::vector<std::string> projection;

  /// SELECT DISTINCT?
  bool distinct = false;

  /// Aggregates; when non-empty this is an aggregate query and `projection`
  /// is unused (group keys come from `group_by`).
  std::vector<alg::AggSpec> aggregates;
  std::vector<std::string> group_by;

  /// HAVING predicate over the aggregate output schema (group columns and
  /// aggregate aliases); nullptr when absent. Requires is_aggregate().
  alg::ExprPtr having;

  /// Presentation ordering, applied by evaluate() to the final rows.
  /// Column names refer to the output schema.
  struct OrderKey {
    std::string column;
    bool descending = false;
  };
  std::vector<OrderKey> order_by;

  [[nodiscard]] bool is_aggregate() const noexcept { return !aggregates.empty(); }

  /// True when the SPJ shape is valid: at least one table, no duplicate
  /// aliases. Throws InvalidArgument otherwise.
  void validate() const;

  /// Render back to SQL-ish text (not necessarily the original input).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace cq::qry
