#include "query/parser.hpp"

#include <sstream>

#include "common/error.hpp"
#include "query/lexer.hpp"

namespace cq::qry {

using alg::AggKind;
using alg::AggSpec;
using alg::CmpOp;
using alg::Expr;
using alg::ExprPtr;
using rel::Value;

namespace {

class Parser {
 public:
  explicit Parser(const std::string& sql) : sql_(sql), tokens_(tokenize(sql)) {}

  /// Recursion ceiling for nested expressions. Pathological inputs like
  /// "((((...." or "NOT NOT NOT ..." must fail with a ParseError, not
  /// exhaust the stack (each nesting level costs several parse frames).
  static constexpr std::size_t kMaxExprDepth = 200;

  SpjQuery parse_select() {
    expect_keyword("SELECT");
    SpjQuery q;
    if (accept_keyword("DISTINCT")) q.distinct = true;
    parse_select_list(q);
    expect_keyword("FROM");
    parse_from_list(q);
    if (accept_keyword("WHERE")) {
      q.where = parse_expr();
    } else {
      q.where = Expr::always_true();
    }
    if (accept_keyword("GROUP")) {
      expect_keyword("BY");
      do {
        q.group_by.push_back(expect_identifier("GROUP BY column"));
      } while (accept_symbol(","));
    }
    if (accept_keyword("HAVING")) {
      q.having = parse_expr();
    }
    if (accept_keyword("ORDER")) {
      expect_keyword("BY");
      do {
        SpjQuery::OrderKey key;
        key.column = expect_identifier("ORDER BY column");
        if (accept_keyword("DESC")) {
          key.descending = true;
        } else {
          accept_keyword("ASC");
        }
        q.order_by.push_back(std::move(key));
      } while (accept_symbol(","));
    }
    expect_end();
    q.validate();
    return q;
  }

  ExprPtr parse_standalone_predicate() {
    ExprPtr e = parse_expr();
    expect_end();
    return e;
  }

 private:
  /// RAII depth ticket for the recursive productions (NOT chains and
  /// parenthesized/unary factors are the unbounded ones).
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (parser_.depth_ >= kMaxExprDepth) parser_.fail("expression nesting too deep");
      ++parser_.depth_;
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream os;
    os << message << " near offset " << peek().offset << " (token '" << peek().text
       << "') in: " << sql_;
    throw common::ParseError(os.str());
  }

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_++]; }

  bool accept_keyword(const char* kw) {
    if (peek().is_keyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_keyword(const char* kw) {
    if (!accept_keyword(kw)) fail(std::string("expected ") + kw);
  }
  bool accept_symbol(const char* sym) {
    if (peek().is_symbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_symbol(const char* sym) {
    if (!accept_symbol(sym)) fail(std::string("expected '") + sym + "'");
  }
  std::string expect_identifier(const char* what) {
    if (peek().kind != TokenKind::kIdentifier) fail(std::string("expected ") + what);
    return advance().text;
  }
  void expect_end() {
    if (peek().kind != TokenKind::kEnd) fail("unexpected trailing input");
  }

  [[nodiscard]] static std::optional<AggKind> agg_kind(const Token& t) {
    if (t.kind != TokenKind::kKeyword) return std::nullopt;
    if (t.text == "SUM") return AggKind::kSum;
    if (t.text == "COUNT") return AggKind::kCount;
    if (t.text == "AVG") return AggKind::kAvg;
    if (t.text == "MIN") return AggKind::kMin;
    if (t.text == "MAX") return AggKind::kMax;
    return std::nullopt;
  }

  void parse_select_list(SpjQuery& q) {
    if (accept_symbol("*")) return;  // SELECT *
    do {
      if (auto kind = agg_kind(peek())) {
        advance();
        expect_symbol("(");
        AggSpec spec;
        spec.kind = *kind;
        if (accept_symbol("*")) {
          if (spec.kind != AggKind::kCount) fail("only COUNT accepts *");
          spec.column = "*";
        } else {
          spec.column = expect_identifier("aggregate column");
        }
        expect_symbol(")");
        if (accept_keyword("AS")) spec.alias = expect_identifier("alias");
        q.aggregates.push_back(std::move(spec));
      } else {
        q.projection.push_back(expect_identifier("projection column"));
      }
    } while (accept_symbol(","));
    if (!q.aggregates.empty() && !q.projection.empty()) {
      // Plain columns next to aggregates must appear in GROUP BY; we check
      // in validate() after GROUP BY is parsed. Here we fold them into
      // group-key order implicitly by leaving both lists populated.
      ;
    }
  }

  void parse_from_list(SpjQuery& q) {
    do {
      TableRef ref;
      ref.table = expect_identifier("table name");
      if (accept_keyword("AS")) {
        ref.alias = expect_identifier("table alias");
      } else if (peek().kind == TokenKind::kIdentifier) {
        ref.alias = advance().text;  // FROM Stocks s
      }
      q.from.push_back(std::move(ref));
    } while (accept_symbol(","));
  }

  // expr := or
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (accept_keyword("OR")) lhs = Expr::logical_or(lhs, parse_and());
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (accept_keyword("AND")) lhs = Expr::logical_and(lhs, parse_not());
    return lhs;
  }

  ExprPtr parse_not() {
    DepthGuard depth(*this);
    if (accept_keyword("NOT")) return Expr::logical_not(parse_not());
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    // Boolean literal shortcuts.
    if (peek().is_keyword("TRUE")) {
      advance();
      return Expr::lit(Value(true));
    }
    if (peek().is_keyword("FALSE")) {
      advance();
      return Expr::lit(Value(false));
    }
    ExprPtr lhs = parse_operand();

    if (accept_keyword("IS")) {
      const bool negated = accept_keyword("NOT");
      expect_keyword("NULL");
      return Expr::is_null(lhs, negated);
    }
    bool negated = false;
    if (peek().is_keyword("NOT") &&
        (peek(1).is_keyword("IN") || peek(1).is_keyword("BETWEEN") ||
         peek(1).is_keyword("LIKE"))) {
      advance();
      negated = true;
    }
    if (accept_keyword("IN")) {
      expect_symbol("(");
      std::vector<Value> values;
      do {
        values.push_back(parse_literal_value());
      } while (accept_symbol(","));
      expect_symbol(")");
      return Expr::in_list(lhs, std::move(values), negated);
    }
    if (accept_keyword("BETWEEN")) {
      Value lo = parse_literal_value();
      expect_keyword("AND");
      Value hi = parse_literal_value();
      ExprPtr between = Expr::between(lhs, std::move(lo), std::move(hi));
      return negated ? Expr::logical_not(between) : between;
    }
    if (accept_keyword("LIKE")) {
      if (peek().kind != TokenKind::kString) fail("LIKE expects a string literal");
      std::string pattern = advance().text;
      if (pattern.empty() || pattern.back() != '%' ||
          pattern.find('%') != pattern.size() - 1 ||
          pattern.find('_') != std::string::npos) {
        fail("only prefix LIKE patterns ('abc%') are supported");
      }
      pattern.pop_back();
      ExprPtr like = Expr::like_prefix(lhs, std::move(pattern));
      return negated ? Expr::logical_not(like) : like;
    }

    static constexpr std::pair<const char*, CmpOp> kCmps[] = {
        {"=", CmpOp::kEq}, {"<>", CmpOp::kNe}, {"<=", CmpOp::kLe},
        {">=", CmpOp::kGe}, {"<", CmpOp::kLt}, {">", CmpOp::kGt}};
    for (const auto& [sym, op] : kCmps) {
      if (accept_symbol(sym)) return Expr::cmp(op, lhs, parse_operand());
    }
    return lhs;  // bare operand used as a predicate (e.g. TRUE)
  }

  // operand := term (('+'|'-') term)*
  ExprPtr parse_operand() {
    ExprPtr lhs = parse_term();
    for (;;) {
      if (accept_symbol("+")) {
        lhs = Expr::arith(alg::ArithOp::kAdd, lhs, parse_term());
      } else if (accept_symbol("-")) {
        lhs = Expr::arith(alg::ArithOp::kSub, lhs, parse_term());
      } else {
        return lhs;
      }
    }
  }

  // term := factor (('*'|'/') factor)*
  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    for (;;) {
      if (accept_symbol("*")) {
        lhs = Expr::arith(alg::ArithOp::kMul, lhs, parse_factor());
      } else if (accept_symbol("/")) {
        lhs = Expr::arith(alg::ArithOp::kDiv, lhs, parse_factor());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_factor() {
    DepthGuard depth(*this);
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInteger:
        advance();
        return Expr::lit(Value(t.integer));
      case TokenKind::kDouble:
        advance();
        return Expr::lit(Value(t.real));
      case TokenKind::kString:
        advance();
        return Expr::lit(Value(t.text));
      case TokenKind::kIdentifier:
        advance();
        return Expr::col(t.text);
      case TokenKind::kKeyword:
        if (t.text == "NULL") {
          advance();
          return Expr::lit(Value::null());
        }
        if (t.text == "TRUE") {
          advance();
          return Expr::lit(Value(true));
        }
        if (t.text == "FALSE") {
          advance();
          return Expr::lit(Value(false));
        }
        fail("unexpected keyword in expression");
      case TokenKind::kSymbol:
        if (t.text == "(") {
          advance();
          ExprPtr inner = parse_expr();
          expect_symbol(")");
          return inner;
        }
        if (t.text == "-") {  // unary minus on a literal or factor
          advance();
          return Expr::arith(alg::ArithOp::kSub, Expr::lit(Value(std::int64_t{0})),
                             parse_factor());
        }
        fail("unexpected symbol in expression");
      case TokenKind::kEnd:
        fail("unexpected end of input in expression");
    }
    fail("unexpected token");
  }

  Value parse_literal_value() {
    const Token& t = peek();
    bool negative = false;
    if (t.is_symbol("-")) {
      advance();
      negative = true;
    }
    const Token& v = peek();
    switch (v.kind) {
      case TokenKind::kInteger:
        advance();
        return Value(negative ? -v.integer : v.integer);
      case TokenKind::kDouble:
        advance();
        return Value(negative ? -v.real : v.real);
      case TokenKind::kString:
        if (negative) fail("cannot negate a string literal");
        advance();
        return Value(v.text);
      case TokenKind::kKeyword:
        if (v.text == "NULL" && !negative) {
          advance();
          return Value::null();
        }
        if (v.text == "TRUE" && !negative) {
          advance();
          return Value(true);
        }
        if (v.text == "FALSE" && !negative) {
          advance();
          return Value(false);
        }
        [[fallthrough]];
      default:
        fail("expected a literal value");
    }
  }

  const std::string& sql_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

SpjQuery parse_query(const std::string& sql) { return Parser(sql).parse_select(); }

alg::ExprPtr parse_predicate(const std::string& sql) {
  return Parser(sql).parse_standalone_predicate();
}

}  // namespace cq::qry
