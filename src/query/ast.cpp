#include "query/ast.hpp"

#include <sstream>
#include <unordered_set>

#include "common/error.hpp"

namespace cq::qry {

void SpjQuery::validate() const {
  if (from.empty()) {
    throw common::InvalidArgument("query must reference at least one table");
  }
  std::unordered_set<std::string> aliases;
  for (const auto& ref : from) {
    if (ref.table.empty()) throw common::InvalidArgument("empty table name in FROM");
    if (!aliases.insert(ref.effective_alias()).second) {
      throw common::InvalidArgument("duplicate alias '" + ref.effective_alias() +
                                    "' in FROM");
    }
  }
  if (is_aggregate()) {
    // Plain projection columns alongside aggregates must be group keys.
    for (const auto& col : projection) {
      bool grouped = false;
      for (const auto& g : group_by) grouped = grouped || g == col;
      if (!grouped) {
        throw common::InvalidArgument("column '" + col +
                                      "' must appear in GROUP BY when aggregating");
      }
    }
  } else if (!group_by.empty()) {
    throw common::InvalidArgument("GROUP BY requires at least one aggregate");
  }
  if (having && !is_aggregate()) {
    throw common::InvalidArgument("HAVING requires an aggregate query");
  }
}

std::string SpjQuery::to_string() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  bool first = true;
  for (const auto& col : projection) {
    if (!first) os << ", ";
    os << col;
    first = false;
  }
  for (const auto& agg : aggregates) {
    if (!first) os << ", ";
    os << alg::to_string(agg.kind) << "(" << (agg.column.empty() ? "*" : agg.column)
       << ")";
    if (!agg.alias.empty()) os << " AS " << agg.alias;
    first = false;
  }
  if (first) os << "*";
  os << " FROM ";
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    os << from[i].table;
    if (!from[i].alias.empty() && from[i].alias != from[i].table) {
      os << " AS " << from[i].alias;
    }
  }
  if (where && !(where->kind() == alg::Expr::Kind::kLiteral &&
                 where->literal().type() == rel::ValueType::kBool &&
                 where->literal().as_bool())) {
    os << " WHERE " << where->to_string();
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i];
    }
  }
  if (having) os << " HAVING " << having->to_string();
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (std::size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].column;
      if (order_by[i].descending) os << " DESC";
    }
  }
  return os.str();
}

}  // namespace cq::qry
