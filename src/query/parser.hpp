// Recursive-descent parser for the SQL subset:
//
//   SELECT [DISTINCT] * | col[, col...] | AGG(col)[, AGG(col)...]
//   FROM table [AS alias][, table [AS alias]...]
//   [WHERE predicate]
//   [GROUP BY col[, col...]]
//
// Predicates support AND/OR/NOT, =, <>, <, <=, >, >=, arithmetic (+ - * /),
// IS [NOT] NULL, [NOT] IN (literal, ...), BETWEEN lo AND hi, LIKE 'prefix%',
// parentheses, TRUE/FALSE, and NULL literals.
#pragma once

#include <string>

#include "algebra/expr.hpp"
#include "query/ast.hpp"

namespace cq::qry {

/// Parse a full SELECT statement. Throws ParseError on malformed input.
[[nodiscard]] SpjQuery parse_query(const std::string& sql);

/// Parse a standalone predicate (handy for building triggers and tests).
[[nodiscard]] alg::ExprPtr parse_predicate(const std::string& sql);

}  // namespace cq::qry
