#include "query/planner.hpp"

#include <algorithm>
#include <sstream>

#include "algebra/predicate.hpp"
#include "algebra/simplify.hpp"
#include "common/error.hpp"

namespace cq::qry {

using alg::ExprPtr;

rel::Schema qualify(const rel::Schema& table_schema, const TableRef& ref) {
  return table_schema.qualified(ref.effective_alias());
}

namespace {
/// Fraction of up to kPlannerSampleSize leading rows satisfying `filter`,
/// clamped away from 0 so downstream estimates never hit exact zero.
double sampled_selectivity(const rel::Relation& input, const alg::ExprPtr& filter) {
  const std::size_t n = std::min(input.size(), kPlannerSampleSize);
  if (n == 0) return 1.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (filter->eval_bool(input.row(i), input.schema())) ++hits;
  }
  return std::max(0.5 / static_cast<double>(n),
                  static_cast<double>(hits) / static_cast<double>(n));
}
}  // namespace

PlannedQuery plan(const SpjQuery& query, const std::vector<rel::Schema>& qualified_schemas,
                  const std::vector<std::size_t>& cardinalities,
                  const std::vector<const rel::Relation*>* samples) {
  if (qualified_schemas.size() != query.from.size() ||
      cardinalities.size() != query.from.size()) {
    throw common::InvalidArgument("plan: schema/cardinality count mismatch");
  }
  if (samples != nullptr && samples->size() != query.from.size()) {
    throw common::InvalidArgument("plan: sample count mismatch");
  }
  const std::size_t n = query.from.size();
  PlannedQuery out;
  out.table_filters.resize(n);

  // 1. Simplify, then classify each conjunct: single-table conjuncts become
  //    filters (constant folding can also prune entire branches here).
  for (const auto& conjunct : alg::split_conjuncts(alg::simplify(query.where))) {
    std::size_t owner = n;  // n = spans multiple / none
    std::size_t owners = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (conjunct->resolves_in(qualified_schemas[i])) {
        owner = i;
        ++owners;
      }
    }
    if (owners == 1) {
      out.table_filters[owner].push_back(conjunct);
    } else {
      out.join_conjuncts.push_back(conjunct);
    }
  }

  // 2. Cheapest predicates first within each table filter (Section 5.2).
  for (auto& filters : out.table_filters) {
    std::stable_sort(filters.begin(), filters.end(),
                     [](const ExprPtr& a, const ExprPtr& b) {
                       return alg::predicate_cost_rank(a) < alg::predicate_cost_rank(b);
                     });
  }

  // 3. Join order: greedy by estimated post-filter cardinality, preferring
  //    tables connected to the already-joined set by some join conjunct.
  std::vector<double> estimate(n);
  for (std::size_t i = 0; i < n; ++i) {
    double e = static_cast<double>(cardinalities[i]);
    if (!out.table_filters[i].empty()) {
      const alg::ExprPtr filter = alg::conjoin(out.table_filters[i]);
      if (samples != nullptr && (*samples)[i] != nullptr) {
        e *= sampled_selectivity(*(*samples)[i], filter);
      } else {
        for (const auto& f : out.table_filters[i]) e *= alg::estimate_selectivity(f);
      }
    }
    estimate[i] = e;
  }
  out.scan_estimates = estimate;

  auto connected = [&](std::size_t candidate, const std::vector<bool>& joined) {
    // A conjunct connects `candidate` when it references candidate's schema
    // and at least one already-joined schema.
    for (const auto& c : out.join_conjuncts) {
      bool touches_candidate = false;
      bool touches_joined = false;
      for (const auto& col : c->columns()) {
        if (qualified_schemas[candidate].contains(col)) touches_candidate = true;
        for (std::size_t j = 0; j < n; ++j) {
          if (joined[j] && qualified_schemas[j].contains(col)) touches_joined = true;
        }
      }
      if (touches_candidate && touches_joined) return true;
    }
    return false;
  };

  std::vector<bool> joined(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (joined[i]) continue;
      const bool i_connected = step > 0 && connected(i, joined);
      if (best == n) {
        best = i;
        continue;
      }
      const bool best_connected = step > 0 && connected(best, joined);
      if (i_connected != best_connected) {
        if (i_connected) best = i;
        continue;
      }
      if (estimate[i] < estimate[best]) best = i;
    }
    joined[best] = true;
    out.join_order.push_back(best);
  }
  return out;
}

namespace {
/// "12" for whole numbers, "12.3" otherwise — keeps EXPLAIN lines tidy.
std::string format_estimate(double rows) {
  std::ostringstream os;
  if (rows == static_cast<double>(static_cast<long long>(rows))) {
    os << static_cast<long long>(rows);
  } else {
    os.precision(1);
    os << std::fixed << rows;
  }
  return os.str();
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

void render_node(const ExplainNode& node, std::size_t depth, std::ostringstream& os) {
  os << std::string(depth * 2, ' ') << node.label << "  (est~";
  if (node.estimated_rows >= 0) {
    os << format_estimate(node.estimated_rows);
  } else {
    os << "?";
  }
  os << ", actual=";
  if (node.actual_rows >= 0) {
    os << node.actual_rows;
  } else {
    os << "?";
  }
  os << ")\n";
  for (const auto& child : node.children) render_node(child, depth + 1, os);
}
}  // namespace

ExplainNode build_plan_tree(const SpjQuery& query, const PlannedQuery& planned,
                            const std::vector<rel::Schema>& qualified_schemas,
                            const SpjExecTrace* trace) {
  const std::size_t n = query.from.size();
  if (planned.join_order.size() != n || qualified_schemas.size() != n) {
    throw common::InvalidArgument("build_plan_tree: plan/schema count mismatch");
  }

  auto scan_node = [&](std::size_t idx) {
    ExplainNode node;
    const TableRef& ref = query.from[idx];
    node.label = "Scan " + ref.table;
    if (ref.effective_alias() != ref.table) {
      node.label += " AS " + ref.effective_alias();
    }
    const ExprPtr filter = planned.filter(idx);
    if (!alg::is_always_true(filter)) {
      node.label += " [" + filter->to_string() + "]";
    }
    if (idx < planned.scan_estimates.size()) {
      node.estimated_rows = planned.scan_estimates[idx];
    }
    if (trace != nullptr && idx < trace->scan_rows.size()) {
      node.actual_rows = static_cast<std::int64_t>(trace->scan_rows[idx]);
    }
    return node;
  };

  // Left-deep spine: same walk as evaluate_spj_over, conjuncts applied at
  // the first join whose combined schema resolves them.
  ExplainNode acc = scan_node(planned.join_order[0]);
  double est = acc.estimated_rows;
  rel::Schema combined = qualified_schemas[planned.join_order[0]];
  std::vector<ExprPtr> pending = planned.join_conjuncts;
  for (std::size_t step = 1; step < n; ++step) {
    const std::size_t idx = planned.join_order[step];
    ExplainNode right = scan_node(idx);
    combined = combined.concat(qualified_schemas[idx]);
    std::vector<ExprPtr> applicable;
    std::vector<ExprPtr> still_pending;
    for (const auto& c : pending) {
      (c->resolves_in(combined) ? applicable : still_pending).push_back(c);
    }
    pending = std::move(still_pending);

    ExplainNode join;
    join.label = applicable.empty()
                     ? "Join (cross)"
                     : "Join [" + alg::conjoin(applicable)->to_string() + "]";
    if (est >= 0 && right.estimated_rows >= 0) {
      double e = est * right.estimated_rows;
      for (const auto& c : applicable) e *= alg::estimate_selectivity(c);
      join.estimated_rows = e;
    }
    if (trace != nullptr && step - 1 < trace->join_rows.size()) {
      join.actual_rows = static_cast<std::int64_t>(trace->join_rows[step - 1]);
    }
    est = join.estimated_rows;
    join.children.push_back(std::move(acc));
    join.children.push_back(std::move(right));
    acc = std::move(join);
  }

  if (!pending.empty()) {
    ExplainNode filter;
    filter.label = "Filter [" + alg::conjoin(pending)->to_string() + "]";
    if (est >= 0) {
      double e = est;
      for (const auto& c : pending) e *= alg::estimate_selectivity(c);
      filter.estimated_rows = e;
      est = e;
    }
    if (trace != nullptr && trace->has_residual) {
      filter.actual_rows = static_cast<std::int64_t>(trace->residual_rows);
    }
    filter.children.push_back(std::move(acc));
    acc = std::move(filter);
  }

  // The output operator, when one materially exists: an explicit projection,
  // the canonical SELECT-* reordering over a join, or a distinct pass.
  if (!query.projection.empty() || n > 1 || query.distinct) {
    ExplainNode proj;
    if (!query.projection.empty()) {
      proj.label = std::string(query.distinct ? "Project DISTINCT [" : "Project [") +
                   join_names(query.projection) + "]";
    } else if (n > 1) {
      proj.label = query.distinct ? "Project DISTINCT *" : "Project *";
    } else {
      proj.label = "Distinct";
    }
    // Projection preserves cardinality; distinct makes it unknowable here.
    proj.estimated_rows = query.distinct ? -1 : est;
    if (trace != nullptr) {
      proj.actual_rows = static_cast<std::int64_t>(trace->output_rows);
    }
    proj.children.push_back(std::move(acc));
    acc = std::move(proj);
  }
  return acc;
}

std::string render_plan_tree(const ExplainNode& node) {
  std::ostringstream os;
  render_node(node, 0, os);
  return os.str();
}

std::string PlannedQuery::to_string(const SpjQuery& query) const {
  std::ostringstream os;
  os << "Plan for " << query.to_string() << "\n";
  os << "  join order:";
  for (auto i : join_order) os << " " << query.from[i].effective_alias();
  os << "\n";
  for (std::size_t i = 0; i < table_filters.size(); ++i) {
    if (table_filters[i].empty()) continue;
    os << "  filter[" << query.from[i].effective_alias()
       << "]: " << alg::conjoin(table_filters[i])->to_string() << "\n";
  }
  if (!join_conjuncts.empty()) {
    os << "  join predicate: " << alg::conjoin(join_conjuncts)->to_string() << "\n";
  }
  return os.str();
}

}  // namespace cq::qry
