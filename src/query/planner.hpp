// Heuristic planner (Section 5.2): decomposes the WHERE clause into
// per-table filters ("Select before Join"), orders the per-table filter
// conjuncts cheapest-first, and greedily orders joins smallest-estimate
// first, preferring equi-connected tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "algebra/expr.hpp"
#include "query/ast.hpp"
#include "relation/relation.hpp"
#include "relation/schema.hpp"

namespace cq::qry {

struct PlannedQuery {
  /// One entry per FROM table (same order as SpjQuery::from): the conjuncts
  /// that reference only that table, cheapest-first. May be empty.
  std::vector<std::vector<alg::ExprPtr>> table_filters;

  /// Conjuncts spanning two or more tables, applied during joins.
  std::vector<alg::ExprPtr> join_conjuncts;

  /// FROM indexes in the order tables should be joined.
  std::vector<std::size_t> join_order;

  /// Estimated post-filter cardinality per FROM entry (same order as
  /// SpjQuery::from) — the numbers the greedy join ordering ranked by.
  std::vector<double> scan_estimates;

  /// Filter for table i AND-combined (always_true() when none).
  [[nodiscard]] alg::ExprPtr filter(std::size_t i) const {
    return alg::conjoin(table_filters.at(i));
  }

  /// Human-readable plan, for EXPLAIN-style output.
  [[nodiscard]] std::string to_string(const SpjQuery& query) const;
};

/// One operator of the chosen plan tree, for EXPLAIN: the planner's row
/// estimate next to the count actually observed when the plan ran.
struct ExplainNode {
  std::string label;
  double estimated_rows = -1;     // < 0: no estimate available
  std::int64_t actual_rows = -1;  // < 0: not executed
  std::vector<ExplainNode> children;
};

/// Per-operator row counts observed while evaluate_spj_over ran a plan;
/// indexes mirror PlannedQuery (FROM order for scans, join order for join
/// steps). Filled when a trace pointer is passed to evaluate_spj_over.
struct SpjExecTrace {
  std::vector<std::size_t> input_rows;  // per FROM entry, before filters
  std::vector<std::size_t> scan_rows;   // per FROM entry, after pushed filters
  std::vector<std::size_t> join_rows;   // per join step (join_order[1..])
  bool has_residual = false;            // a leftover-conjunct Filter ran
  std::size_t residual_rows = 0;
  std::size_t output_rows = 0;  // after projection / distinct
  PlannedQuery plan;            // the plan actually used
};

/// Build the left-deep operator tree the planner chose: scans (with
/// pushed-down filters) joined in plan order, topped by the projection.
/// When `trace` is given (from an execution), actual_rows is filled from
/// it; otherwise actual_rows stays unset (see qry::explain_query in
/// evaluate.hpp for the end-to-end path).
[[nodiscard]] ExplainNode build_plan_tree(const SpjQuery& query,
                                          const PlannedQuery& planned,
                                          const std::vector<rel::Schema>& qualified_schemas,
                                          const SpjExecTrace* trace = nullptr);

/// Render `node` and its subtree with indentation, one operator per line:
///   Project [sym, price]  (est~12, actual=15)
///     Join [s.sym = n.sym]  ...
[[nodiscard]] std::string render_plan_tree(const ExplainNode& node);

/// Plan `query` given the alias-qualified schema of each FROM table and an
/// estimate of each table's current cardinality. When `samples` is
/// provided (one relation per FROM entry, alias-qualified), per-table
/// filter selectivities are *measured* on a bounded row sample instead of
/// guessed from predicate shape, which materially improves join ordering
/// on skewed data.
[[nodiscard]] PlannedQuery plan(const SpjQuery& query,
                                const std::vector<rel::Schema>& qualified_schemas,
                                const std::vector<std::size_t>& cardinalities,
                                const std::vector<const rel::Relation*>* samples =
                                    nullptr);

/// Number of rows the sampling estimator inspects per table.
inline constexpr std::size_t kPlannerSampleSize = 100;

/// The alias-qualified schema of one FROM entry.
[[nodiscard]] rel::Schema qualify(const rel::Schema& table_schema, const TableRef& ref);

}  // namespace cq::qry
