// Heuristic planner (Section 5.2): decomposes the WHERE clause into
// per-table filters ("Select before Join"), orders the per-table filter
// conjuncts cheapest-first, and greedily orders joins smallest-estimate
// first, preferring equi-connected tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "algebra/expr.hpp"
#include "query/ast.hpp"
#include "relation/relation.hpp"
#include "relation/schema.hpp"

namespace cq::qry {

struct PlannedQuery {
  /// One entry per FROM table (same order as SpjQuery::from): the conjuncts
  /// that reference only that table, cheapest-first. May be empty.
  std::vector<std::vector<alg::ExprPtr>> table_filters;

  /// Conjuncts spanning two or more tables, applied during joins.
  std::vector<alg::ExprPtr> join_conjuncts;

  /// FROM indexes in the order tables should be joined.
  std::vector<std::size_t> join_order;

  /// Filter for table i AND-combined (always_true() when none).
  [[nodiscard]] alg::ExprPtr filter(std::size_t i) const {
    return alg::conjoin(table_filters.at(i));
  }

  /// Human-readable plan, for EXPLAIN-style output.
  [[nodiscard]] std::string to_string(const SpjQuery& query) const;
};

/// Plan `query` given the alias-qualified schema of each FROM table and an
/// estimate of each table's current cardinality. When `samples` is
/// provided (one relation per FROM entry, alias-qualified), per-table
/// filter selectivities are *measured* on a bounded row sample instead of
/// guessed from predicate shape, which materially improves join ordering
/// on skewed data.
[[nodiscard]] PlannedQuery plan(const SpjQuery& query,
                                const std::vector<rel::Schema>& qualified_schemas,
                                const std::vector<std::size_t>& cardinalities,
                                const std::vector<const rel::Relation*>* samples =
                                    nullptr);

/// Number of rows the sampling estimator inspects per table.
inline constexpr std::size_t kPlannerSampleSize = 100;

/// The alias-qualified schema of one FROM entry.
[[nodiscard]] rel::Schema qualify(const rel::Schema& table_schema, const TableRef& ref);

}  // namespace cq::qry
