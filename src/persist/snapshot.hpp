// Durable snapshots: serialize a whole Database (schemas, base tables with
// tids, differential logs, index definitions, clock) plus a manifest of the
// installed continual queries' runtime positions, so a monitoring
// deployment can stop and resume without re-running initial executions or
// losing unconsumed deltas.
//
// CQ derived state (saved results, aggregate accumulators, DISTINCT counts)
// is deliberately *not* serialized: on restore it is reconstructed from the
// snapshot database by running the DRA in reverse
// (ContinualQuery::restore), which both keeps the format small and
// exercises the same differential machinery the paper proves correct.
//
// Triggers and sinks contain arbitrary behaviour (callbacks, composed
// conditions) and cannot round-trip through bytes; the application
// re-supplies each CQ's spec at restore time, matched to the manifest by
// CQ name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "catalog/database.hpp"
#include "cq/manager.hpp"
#include "diom/mediator.hpp"
#include "diom/wire.hpp"

namespace cq::persist {

using diom::Bytes;

/// Serialize the full database state.
[[nodiscard]] Bytes save_database(const cat::Database& db);

/// Rebuild a database from save_database output. The returned database has
/// its own VirtualClock advanced to the saved instant; indexes are rebuilt.
[[nodiscard]] cat::Database load_database(const Bytes& bytes);

/// One installed CQ's resumable position.
struct CqManifestEntry {
  std::string name;
  common::Timestamp last_execution;
  std::uint64_t executions = 0;
};

/// Manifest of every CQ currently installed in `manager`.
[[nodiscard]] std::vector<CqManifestEntry> manifest(const core::CqManager& manager);

[[nodiscard]] Bytes encode_manifest(const std::vector<CqManifestEntry>& entries);
[[nodiscard]] std::vector<CqManifestEntry> decode_manifest(const Bytes& bytes);

/// Convenience: save/restore database + manifest as one blob.
struct Snapshot {
  Bytes database;
  Bytes manifest;
};

[[nodiscard]] Bytes encode_snapshot(const cat::Database& db,
                                    const core::CqManager& manager);

struct DecodedSnapshot {
  cat::Database db;
  std::vector<CqManifestEntry> cqs;
};

[[nodiscard]] DecodedSnapshot decode_snapshot(const Bytes& bytes);

// ---- mediator deployments ----

/// Serialize a mediator's whole client-side state: the mirror database
/// (with delta logs and indexes) plus every attached source's resumable
/// position (cursor + tid mapping). Sinks/triggers of the mediator's CQ
/// manager follow the same rule as CqManager snapshots: re-supply the specs
/// at restore time (see `manifest`).
[[nodiscard]] Bytes save_mediator(const diom::Mediator& mediator);

/// Rebuild a mediator from save_mediator output. `sources` are matched to
/// saved states by source name; every saved state must find its source.
/// Returns the mediator plus the CQ manifest of its manager.
struct RestoredMediator {
  std::unique_ptr<diom::Mediator> mediator;
  std::vector<CqManifestEntry> cqs;
};
[[nodiscard]] RestoredMediator restore_mediator(
    const Bytes& bytes, std::string client_name, diom::Network* network,
    const std::vector<std::shared_ptr<diom::InformationSource>>& sources);

/// File convenience wrappers (atomic via write-to-temp-then-rename).
void save_snapshot_file(const std::string& path, const cat::Database& db,
                        const core::CqManager& manager);
[[nodiscard]] DecodedSnapshot load_snapshot_file(const std::string& path);

}  // namespace cq::persist
