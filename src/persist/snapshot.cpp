#include "persist/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "common/error.hpp"

namespace cq::persist {

using diom::Decoder;
using diom::Encoder;

namespace {

constexpr const char* kMagic = "CQSNAP1";

void put_schema(Encoder& enc, const rel::Schema& schema) {
  enc.put_u32(static_cast<std::uint32_t>(schema.size()));
  for (const auto& attr : schema.attributes()) {
    enc.put_string(attr.name);
    enc.put_u8(static_cast<std::uint8_t>(attr.type));
  }
}

rel::Schema get_schema(Decoder& dec) {
  const std::uint32_t n = dec.get_u32();
  dec.check_count(n, 5);  // name length prefix (4) + type tag (1)
  std::vector<rel::Attribute> attrs;
  attrs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = dec.get_string();
    const std::uint8_t tag = dec.get_u8();
    if (tag > static_cast<std::uint8_t>(rel::ValueType::kString)) {
      throw common::InvalidArgument("snapshot: unknown value-type tag in schema");
    }
    attrs.push_back({std::move(name), static_cast<rel::ValueType>(tag)});
  }
  return rel::Schema(std::move(attrs));
}

void put_blob(Encoder& enc, const Bytes& blob) {
  enc.put_u32(static_cast<std::uint32_t>(blob.size()));
  for (auto b : blob) enc.put_u8(b);
}

Bytes get_blob(Decoder& dec) {
  const std::uint32_t n = dec.get_u32();
  dec.check_count(n, 1);  // corrupted length prefixes must not allocate
  Bytes out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(dec.get_u8());
  return out;
}

}  // namespace

Bytes save_database(const cat::Database& db) {
  Encoder enc;
  enc.put_string(kMagic);
  enc.put_i64(db.clock().now().ticks());

  const auto tables = db.table_names();
  enc.put_u32(static_cast<std::uint32_t>(tables.size()));
  for (const auto& name : tables) {
    enc.put_string(name);
    const rel::Relation& base = db.table(name);
    put_schema(enc, base.schema());
    put_blob(enc, diom::encode_relation(base));
    put_blob(enc, diom::encode_deltas(db.delta(name).rows()));

    const auto index_names = db.index_names(name);
    enc.put_u32(static_cast<std::uint32_t>(index_names.size()));
    for (const auto& index_name : index_names) {
      enc.put_string(index_name);
      const auto& columns = db.index(name, index_name).columns();
      enc.put_u32(static_cast<std::uint32_t>(columns.size()));
      for (auto c : columns) enc.put_u32(static_cast<std::uint32_t>(c));
    }
  }
  return enc.take();
}

cat::Database load_database(const Bytes& bytes) {
  Decoder dec(bytes);
  if (dec.get_string() != kMagic) {
    throw common::InvalidArgument("snapshot: bad magic (not a CQ snapshot?)");
  }
  const common::Timestamp now(dec.get_i64());

  auto clock = std::make_shared<common::VirtualClock>();
  clock->advance_to(now);
  cat::Database db(clock);

  const std::uint32_t table_count = dec.get_u32();
  // name (4) + schema count (4) + two blob prefixes (8) + index count (4)
  dec.check_count(table_count, 20);
  for (std::uint32_t t = 0; t < table_count; ++t) {
    const std::string name = dec.get_string();
    rel::Schema schema = get_schema(dec);
    rel::Relation base = diom::decode_relation(get_blob(dec), schema);
    delta::DeltaRelation log(schema);
    for (auto& row : diom::decode_deltas(get_blob(dec), schema.size())) {
      log.append(std::move(row));
    }
    db.restore_table(name, std::move(base), std::move(log));

    const std::uint32_t index_count = dec.get_u32();
    dec.check_count(index_count, 8);  // name length prefix (4) + column count (4)
    for (std::uint32_t i = 0; i < index_count; ++i) {
      const std::string index_name = dec.get_string();
      const std::uint32_t column_count = dec.get_u32();
      dec.check_count(column_count, 4);
      std::vector<std::string> columns;
      columns.reserve(column_count);
      for (std::uint32_t c = 0; c < column_count; ++c) {
        columns.push_back(schema.at(dec.get_u32()).name);
      }
      db.create_index(name, index_name, columns);
    }
  }
  if (!dec.done()) throw common::InvalidArgument("snapshot: trailing bytes");
  return db;
}

std::vector<CqManifestEntry> manifest(const core::CqManager& manager) {
  std::vector<CqManifestEntry> out;
  for (const auto handle : manager.handles()) {
    const auto& cq = manager.cq(handle);
    out.push_back({cq.name(), cq.last_execution(), cq.executions()});
  }
  return out;
}

Bytes encode_manifest(const std::vector<CqManifestEntry>& entries) {
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    enc.put_string(e.name);
    enc.put_i64(e.last_execution.ticks());
    enc.put_i64(static_cast<std::int64_t>(e.executions));
  }
  return enc.take();
}

std::vector<CqManifestEntry> decode_manifest(const Bytes& bytes) {
  Decoder dec(bytes);
  const std::uint32_t n = dec.get_u32();
  dec.check_count(n, 20);  // name length prefix (4) + two i64 fields
  std::vector<CqManifestEntry> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CqManifestEntry e;
    e.name = dec.get_string();
    e.last_execution = common::Timestamp(dec.get_i64());
    e.executions = static_cast<std::uint64_t>(dec.get_i64());
    out.push_back(std::move(e));
  }
  if (!dec.done()) throw common::InvalidArgument("manifest: trailing bytes");
  return out;
}

Bytes encode_snapshot(const cat::Database& db, const core::CqManager& manager) {
  Encoder enc;
  put_blob(enc, save_database(db));
  put_blob(enc, encode_manifest(manifest(manager)));
  return enc.take();
}

DecodedSnapshot decode_snapshot(const Bytes& bytes) {
  Decoder dec(bytes);
  Bytes db_blob = get_blob(dec);
  Bytes manifest_blob = get_blob(dec);
  if (!dec.done()) throw common::InvalidArgument("snapshot: trailing bytes");
  return DecodedSnapshot{load_database(db_blob), decode_manifest(manifest_blob)};
}

Bytes save_mediator(const diom::Mediator& mediator) {
  Encoder enc;
  put_blob(enc, save_database(mediator.database()));
  put_blob(enc, encode_manifest(manifest(mediator.manager())));
  const auto states = mediator.export_source_states();
  enc.put_u32(static_cast<std::uint32_t>(states.size()));
  for (const auto& state : states) {
    enc.put_string(state.source_name);
    enc.put_string(state.local_table);
    enc.put_i64(state.cursor.ticks());
    enc.put_u32(static_cast<std::uint32_t>(state.tid_map.size()));
    for (const auto& [src, mirror] : state.tid_map) {
      enc.put_i64(static_cast<std::int64_t>(src));
      enc.put_i64(static_cast<std::int64_t>(mirror));
    }
  }
  return enc.take();
}

RestoredMediator restore_mediator(
    const Bytes& bytes, std::string client_name, diom::Network* network,
    const std::vector<std::shared_ptr<diom::InformationSource>>& sources) {
  Decoder dec(bytes);
  cat::Database mirror = load_database(get_blob(dec));
  std::vector<CqManifestEntry> cqs = decode_manifest(get_blob(dec));

  RestoredMediator out;
  out.cqs = std::move(cqs);
  out.mediator = std::make_unique<diom::Mediator>(std::move(client_name), network,
                                                  std::move(mirror));

  const std::uint32_t n = dec.get_u32();
  dec.check_count(n, 20);
  for (std::uint32_t i = 0; i < n; ++i) {
    diom::Mediator::SourceState state;
    state.source_name = dec.get_string();
    state.local_table = dec.get_string();
    state.cursor = common::Timestamp(dec.get_i64());
    const std::uint32_t pairs = dec.get_u32();
    dec.check_count(pairs, 16);
    state.tid_map.reserve(pairs);
    for (std::uint32_t p = 0; p < pairs; ++p) {
      const auto src = static_cast<rel::TupleId::rep>(dec.get_i64());
      const auto mir = static_cast<rel::TupleId::rep>(dec.get_i64());
      state.tid_map.emplace_back(src, mir);
    }

    std::shared_ptr<diom::InformationSource> match;
    for (const auto& s : sources) {
      if (s && s->name() == state.source_name) match = s;
    }
    if (!match) {
      throw common::NotFound("restore_mediator: no source supplied for '" +
                             state.source_name + "'");
    }
    out.mediator->attach_restored(match, state);
  }
  if (!dec.done()) throw common::InvalidArgument("mediator snapshot: trailing bytes");
  return out;
}

void save_snapshot_file(const std::string& path, const cat::Database& db,
                        const core::CqManager& manager) {
  const Bytes blob = encode_snapshot(db, manager);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw common::InvalidArgument("snapshot: cannot open '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) throw common::InvalidArgument("snapshot: write failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw common::InvalidArgument("snapshot: rename to '" + path + "' failed");
  }
}

DecodedSnapshot load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw common::NotFound("snapshot: cannot open '" + path + "'");
  Bytes blob((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return decode_snapshot(blob);
}

}  // namespace cq::persist
