// Simulated network (substitution for the paper's Internet deployment):
// named nodes connected by links with latency and bandwidth. Message
// delivery is immediate (the simulation is single-threaded); the *cost* of
// each transfer — bytes moved and simulated transfer time — is what the
// benchmarks report, matching the paper's Section 5.1 arguments about
// communication overhead and network traffic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/metrics.hpp"

namespace cq::diom {

/// Link characteristics. transfer_time = latency + bytes / bandwidth.
struct LinkSpec {
  double latency_ms = 5.0;
  double bandwidth_bytes_per_ms = 1000.0;  // ~1 MB/s default
};

class Network {
 public:
  /// Set the link used between `a` and `b` (symmetric). Unset pairs use the
  /// default link.
  void set_link(const std::string& a, const std::string& b, LinkSpec spec);
  void set_default_link(LinkSpec spec) noexcept { default_link_ = spec; }

  /// Account one message of `bytes` from `from` to `to`; returns the
  /// simulated transfer time in milliseconds.
  double send(const std::string& from, const std::string& to, std::size_t bytes);

  /// Totals since construction / last reset.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_messages() const noexcept { return total_messages_; }
  [[nodiscard]] double total_transfer_ms() const noexcept { return total_ms_; }

  /// Per-endpoint-pair byte counts ("a->b").
  [[nodiscard]] const std::map<std::string, std::uint64_t>& bytes_by_pair() const noexcept {
    return by_pair_;
  }

  void reset() noexcept;

  /// Mirror counters into a Metrics bag as well (optional).
  void attach_metrics(common::Metrics* metrics) noexcept { metrics_ = metrics; }

 private:
  [[nodiscard]] const LinkSpec& link(const std::string& a, const std::string& b) const;

  LinkSpec default_link_;
  std::map<std::pair<std::string, std::string>, LinkSpec> links_;
  std::map<std::string, std::uint64_t> by_pair_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  double total_ms_ = 0.0;
  common::Metrics* metrics_ = nullptr;
};

}  // namespace cq::diom
