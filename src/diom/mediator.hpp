// The DIOM mediator: the client-side component that makes continual
// queries work across autonomous sources (Sections 1, 5.1). It keeps a
// local *mirror* database — one table per attached source — refreshed by
// shipping differential relations (never base data) over the simulated
// network, and runs the CQ manager + DRA against the mirror. This realizes
// the paper's scalability argument: processing shifts to the client, and
// only deltas cross the network.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/database.hpp"
#include "cq/manager.hpp"
#include "diom/network.hpp"
#include "diom/source.hpp"
#include "diom/wire.hpp"

namespace cq::diom {

class Mediator {
 public:
  /// `network` may be null (costs not accounted). The network must outlive
  /// the mediator.
  explicit Mediator(std::string client_name, Network* network = nullptr);

  /// Construct around an existing mirror database (a persisted deployment
  /// being restored). Use attach_restored() to rebind sources.
  Mediator(std::string client_name, Network* network, cat::Database mirror);

  Mediator(const Mediator&) = delete;
  Mediator& operator=(const Mediator&) = delete;

  /// Attach a source as local table `local_table` (defaults to the source
  /// name). Ships the initial snapshot over the network and loads it into
  /// the mirror. The source must outlive the mediator.
  void attach(std::shared_ptr<InformationSource> source, std::string local_table = "");

  /// Pull every attached source's deltas (ts > its cursor), ship them,
  /// decode, and apply to the mirror as transactions. Returns the number of
  /// differential rows applied.
  ///
  /// Sources are autonomous and may fail (network, translator errors): a
  /// failing source is skipped for this round — its cursor does not move,
  /// so the next sync re-pulls the same window — and its name is reported.
  std::size_t sync();

  struct SyncReport {
    std::size_t rows_applied = 0;
    /// Sources whose pull or apply failed this round, with the error text.
    std::vector<std::pair<std::string, std::string>> failures;
  };
  SyncReport sync_report();

  /// For cost comparisons (bench E4): ship a fresh full snapshot from every
  /// source without touching the mirror; returns total bytes moved. This is
  /// what a client-side *complete* re-evaluation strategy would pay.
  std::size_t ship_snapshots();

  // ---- persistence of the mediator's own state ----

  /// Resumable position of one attached source: where incremental pulls
  /// continue from and how source tids map onto mirror tids.
  struct SourceState {
    std::string source_name;
    std::string local_table;
    common::Timestamp cursor;
    std::vector<std::pair<rel::TupleId::rep, rel::TupleId::rep>> tid_map;
  };

  /// States of all attached sources (persist::save_mediator serializes
  /// these next to the mirror database).
  [[nodiscard]] std::vector<SourceState> export_source_states() const;

  /// Re-bind `source` to a restored mirror: no snapshot shipping — the
  /// local table already holds the mirrored rows — and syncs resume at the
  /// saved cursor with the saved tid mapping. Matched by source name.
  void attach_restored(std::shared_ptr<InformationSource> source,
                       const SourceState& state);

  [[nodiscard]] cat::Database& database() noexcept { return db_; }
  [[nodiscard]] const cat::Database& database() const noexcept { return db_; }
  [[nodiscard]] core::CqManager& manager() noexcept { return manager_; }
  [[nodiscard]] const core::CqManager& manager() const noexcept { return manager_; }
  [[nodiscard]] const std::string& client_name() const noexcept { return client_; }
  [[nodiscard]] std::size_t source_count() const noexcept { return sources_.size(); }

 private:
  struct Attached {
    std::shared_ptr<InformationSource> source;
    std::string local_table;
    common::Timestamp cursor = common::Timestamp::min();
    /// source tid -> mirror tid (sources are autonomous; tids can collide).
    std::unordered_map<rel::TupleId::rep, rel::TupleId> tid_map;
  };

  void apply_deltas(Attached& attached, const std::vector<delta::DeltaRow>& rows);

  std::string client_;
  Network* network_;
  cat::Database db_;
  core::CqManager manager_;
  std::vector<Attached> sources_;
};

}  // namespace cq::diom
