// The DIOM mediator: the client-side component that makes continual
// queries work across autonomous sources (Sections 1, 5.1). It keeps a
// local *mirror* database — one table per attached source — refreshed by
// shipping differential relations (never base data) over the simulated
// network, and runs the CQ manager + DRA against the mirror. This realizes
// the paper's scalability argument: processing shifts to the client, and
// only deltas cross the network.
//
// Threading: the mediator's sync bookkeeping (attached sources, shipping
// stats, round history) is guarded by an internal mutex so introspection
// handlers can read it while the engine thread runs sync rounds. The
// mirror database and the CQ manager remain engine state — serialize
// access to them with the engine mutex you hand diom::serve_introspection
// (lock order: engine mutex first, then the mediator's internal mutex,
// then whatever the commit pipeline takes below them: the mirror's
// commit_shard locks, commit_ts, and the manager's internal mutexes all
// rank after "mediator", so a sync round committing mirror transactions
// nests legally — see docs/lock-hierarchy.md).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/database.hpp"
#include "common/observability.hpp"
#include "common/prometheus.hpp"
#include "common/sync.hpp"
#include "cq/manager.hpp"
#include "diom/network.hpp"
#include "diom/source.hpp"
#include "diom/wire.hpp"

namespace cq::diom {

class Mediator {
 public:
  /// `network` may be null (costs not accounted). The network must outlive
  /// the mediator.
  explicit Mediator(std::string client_name, Network* network = nullptr);

  /// Construct around an existing mirror database (a persisted deployment
  /// being restored). Use attach_restored() to rebind sources.
  Mediator(std::string client_name, Network* network, cat::Database mirror);

  Mediator(const Mediator&) = delete;
  Mediator& operator=(const Mediator&) = delete;

  /// Attach a source as local table `local_table` (defaults to the source
  /// name). Ships the initial snapshot over the network and loads it into
  /// the mirror. The source must outlive the mediator.
  void attach(std::shared_ptr<InformationSource> source, std::string local_table = "");

  /// Pull every attached source's deltas (ts > its cursor), ship them,
  /// decode, and apply to the mirror as transactions. Returns the number of
  /// differential rows applied.
  ///
  /// Sources are autonomous and may fail (network, translator errors): a
  /// failing source is skipped for this round — its cursor does not move,
  /// so the next sync re-pulls the same window — and its name is reported.
  std::size_t sync();

  struct SyncReport {
    std::size_t rows_applied = 0;
    /// Sources whose pull or apply failed this round, with the error text.
    std::vector<std::pair<std::string, std::string>> failures;
    /// Differential bytes shipped this round (all sources).
    std::size_t bytes_shipped = 0;
    /// Simulated transfer time spent this round, milliseconds.
    double transfer_ms = 0.0;
    /// Host wall time of the round, nanoseconds.
    std::uint64_t wall_ns = 0;
    /// 1-based sequence number of the round.
    std::uint64_t round = 0;
  };
  SyncReport sync_report();

  /// Cumulative shipping statistics of one attached source.
  struct SourceStats {
    std::string source_name;
    std::string local_table;
    std::uint64_t rounds = 0;          // sync rounds that touched the source
    std::uint64_t failures = 0;        // rounds that failed for the source
    std::uint64_t messages = 0;        // network messages shipped
    std::uint64_t bytes_shipped = 0;   // incl. the initial snapshot
    std::uint64_t snapshot_bytes = 0;  // the initial snapshot alone
    std::uint64_t rows_applied = 0;    // differential rows applied
    double last_transfer_ms = 0.0;     // simulated, latest round with traffic
    double total_transfer_ms = 0.0;    // simulated, cumulative
  };
  [[nodiscard]] std::vector<SourceStats> source_stats() const;

  /// The most recent sync rounds, oldest first (bounded; see
  /// kSyncHistoryLimit). Returns a copy: the live deque is guarded by the
  /// mediator's sync mutex and rotates while introspection reads.
  [[nodiscard]] std::deque<SyncReport> sync_history() const;
  static constexpr std::size_t kSyncHistoryLimit = 128;

  /// Emit {"sources": [...], "rounds": [...]} into `w`.
  void write_stats_json(common::obs::JsonWriter& w) const;

  /// Per-source stats + round history packaged for observability
  /// export_json (key "sync").
  [[nodiscard]] common::obs::Section stats_section() const;

  // ---- health & introspection ----

  /// Liveness of one attached source, computed on demand: how far its
  /// mirror cursor lags the source clock, and whether that lag is within
  /// the staleness threshold. A source whose clock cannot even be read is
  /// unhealthy with `error` set.
  struct SourceHealth {
    std::string source_name;
    std::string local_table;
    std::int64_t staleness_ticks = 0;  // source->now() - cursor
    std::uint64_t failures = 0;        // cumulative failed sync rounds
    bool healthy = true;
    std::string error;  // set when the source could not be probed
  };

  /// Probe every attached source (never throws; failures mark the source
  /// unhealthy instead).
  [[nodiscard]] std::vector<SourceHealth> health() const;

  /// True when every attached source is healthy. A mediator with no
  /// sources is vacuously healthy.
  [[nodiscard]] bool healthy() const;

  /// Maximum cursor lag (in clock ticks) a source may accumulate before
  /// health() declares it unhealthy. Zero (the default) disables the
  /// check: only unreachable sources are then unhealthy.
  void set_staleness_threshold(common::Duration d) {
    LockGuard lock(mu_);
    staleness_threshold_ = d;
  }
  [[nodiscard]] common::Duration staleness_threshold() const {
    LockGuard lock(mu_);
    return staleness_threshold_;
  }

  /// Emit per-source sync counters (rounds, failures, messages, bytes,
  /// rows — label source="name") and per-source health gauges into a
  /// Prometheus exposition.
  void write_prometheus(common::obs::PromWriter& w) const;

  /// write_prometheus packaged for render_prometheus's section list.
  [[nodiscard]] std::function<void(common::obs::PromWriter&)> prometheus_section() const;

  /// For cost comparisons (bench E4): ship a fresh full snapshot from every
  /// source without touching the mirror; returns total bytes moved. This is
  /// what a client-side *complete* re-evaluation strategy would pay.
  std::size_t ship_snapshots();

  // ---- persistence of the mediator's own state ----

  /// Resumable position of one attached source: where incremental pulls
  /// continue from and how source tids map onto mirror tids.
  struct SourceState {
    std::string source_name;
    std::string local_table;
    common::Timestamp cursor;
    std::vector<std::pair<rel::TupleId::rep, rel::TupleId::rep>> tid_map;
  };

  /// States of all attached sources (persist::save_mediator serializes
  /// these next to the mirror database).
  [[nodiscard]] std::vector<SourceState> export_source_states() const;

  /// Re-bind `source` to a restored mirror: no snapshot shipping — the
  /// local table already holds the mirrored rows — and syncs resume at the
  /// saved cursor with the saved tid mapping. Matched by source name.
  void attach_restored(std::shared_ptr<InformationSource> source,
                       const SourceState& state);

  [[nodiscard]] cat::Database& database() noexcept { return db_; }
  [[nodiscard]] const cat::Database& database() const noexcept { return db_; }
  [[nodiscard]] core::CqManager& manager() noexcept { return manager_; }
  [[nodiscard]] const core::CqManager& manager() const noexcept { return manager_; }

  /// Evaluation lanes for CQ dispatch after each sync round / commit.
  /// Forwards to CqManager::set_parallelism; 1 = sequential (default).
  void set_eval_threads(std::size_t threads) { manager_.set_parallelism(threads); }
  [[nodiscard]] std::size_t eval_threads() const noexcept {
    return manager_.parallelism();
  }
  [[nodiscard]] const std::string& client_name() const noexcept { return client_; }
  [[nodiscard]] std::size_t source_count() const {
    LockGuard lock(mu_);
    return sources_.size();
  }

 private:
  struct Attached {
    std::shared_ptr<InformationSource> source;
    std::string local_table;
    common::Timestamp cursor = common::Timestamp::min();
    /// source tid -> mirror tid (sources are autonomous; tids can collide).
    std::unordered_map<rel::TupleId::rep, rel::TupleId> tid_map;
    SourceStats stats;
    /// Registry gauges (label source="name"), lazily resolved; pointers are
    /// stable for the registry's lifetime.
    common::obs::Gauge* staleness_gauge = nullptr;
    common::obs::Gauge* pending_gauge = nullptr;
  };

  void apply_deltas(Attached& attached, const std::vector<delta::DeltaRow>& rows)
      CQ_REQUIRES(mu_);
  /// Publish one source's staleness/pending gauges (no-op when collection
  /// is disabled).
  void publish_source_gauges(Attached& attached, std::int64_t staleness,
                             std::int64_t pending) CQ_REQUIRES(mu_);
  /// health() with the sync mutex already held (write_prometheus probes
  /// health and reads shipping stats under one acquisition).
  [[nodiscard]] std::vector<SourceHealth> health_impl() const CQ_REQUIRES(mu_);

  std::string client_;
  Network* network_;
  // db_ and manager_ are *engine state*: they are serialized by the
  // caller's engine mutex (the one diom::serve_introspection requires),
  // not by mu_ — CQ executions re-enter the manager from commit hooks, so
  // an internal lock here would self-deadlock. mu_ guards the mediator's
  // own sync bookkeeping, which introspection handlers read while the
  // engine thread runs sync rounds.
  cat::Database db_;
  core::CqManager manager_;
  mutable common::Mutex mu_{"mediator", common::lockorder::LockRank::kMediator};
  std::vector<Attached> sources_ CQ_GUARDED_BY(mu_);
  std::deque<SyncReport> history_ CQ_GUARDED_BY(mu_);
  std::uint64_t sync_rounds_ CQ_GUARDED_BY(mu_) = 0;
  common::Duration staleness_threshold_ CQ_GUARDED_BY(mu_){0};
};

}  // namespace cq::diom
