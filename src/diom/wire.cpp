#include "diom/wire.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace cq::diom {

using rel::Value;
using rel::ValueType;

void Encoder::put_u8(std::uint8_t v) { buffer_.push_back(v); }

void Encoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_i64(std::int64_t v) {
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
}

void Encoder::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_i64(static_cast<std::int64_t>(bits));
}

void Encoder::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Encoder::put_value(const Value& v) {
  put_u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull: break;
    case ValueType::kBool: put_u8(v.as_bool() ? 1 : 0); break;
    case ValueType::kInt: put_i64(v.as_int()); break;
    case ValueType::kDouble: put_f64(v.as_double()); break;
    case ValueType::kString: put_string(v.as_string()); break;
  }
}

void Encoder::put_tuple(const rel::Tuple& t) {
  put_i64(static_cast<std::int64_t>(t.tid().raw()));
  put_u32(static_cast<std::uint32_t>(t.size()));
  for (const auto& v : t.values()) put_value(v);
}

void Decoder::check_count(std::size_t count, std::size_t min_bytes_each) const {
  if (count > remaining() / std::max<std::size_t>(1, min_bytes_each)) {
    throw common::InvalidArgument("wire: implausible element count (corrupt message?)");
  }
}

void Decoder::need(std::size_t n) const {
  // pos_ <= size() is an invariant, so the subtraction cannot wrap; the
  // equivalent `pos_ + n > size()` form would overflow for adversarial n.
  if (n > bytes_.size() - pos_) {
    throw common::InvalidArgument("wire: truncated message");
  }
}

std::uint8_t Decoder::get_u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t Decoder::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::int64_t Decoder::get_i64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  return static_cast<std::int64_t>(v);
}

double Decoder::get_f64() {
  const auto bits = static_cast<std::uint64_t>(get_i64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Decoder::get_string() {
  const std::uint32_t n = get_u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

Value Decoder::get_value() {
  const auto type = static_cast<ValueType>(get_u8());
  switch (type) {
    case ValueType::kNull: return Value::null();
    case ValueType::kBool: return Value(get_u8() != 0);
    case ValueType::kInt: return Value(get_i64());
    case ValueType::kDouble: return Value(get_f64());
    case ValueType::kString: return Value(get_string());
  }
  throw common::InvalidArgument("wire: unknown value tag");
}

rel::Tuple Decoder::get_tuple() {
  const auto tid = rel::TupleId(static_cast<rel::TupleId::rep>(get_i64()));
  const std::uint32_t n = get_u32();
  check_count(n, 1);  // every value costs at least its tag byte
  std::vector<Value> values;
  values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) values.push_back(get_value());
  return rel::Tuple(std::move(values), tid);
}

Bytes encode_relation(const rel::Relation& relation) {
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(relation.size()));
  for (const auto& row : relation.rows()) enc.put_tuple(row);
  return enc.take();
}

rel::Relation decode_relation(const Bytes& bytes, rel::Schema schema) {
  Decoder dec(bytes);
  const std::uint32_t n = dec.get_u32();
  dec.check_count(n, 12);  // tid (8) + arity (4)
  rel::Relation out(std::move(schema));
  for (std::uint32_t i = 0; i < n; ++i) out.append(dec.get_tuple());
  if (!dec.done()) throw common::InvalidArgument("wire: trailing bytes after relation");
  return out;
}

namespace {
void put_optional_values(Encoder& enc, const std::optional<std::vector<Value>>& values) {
  if (!values) {
    enc.put_u8(0);
    return;
  }
  enc.put_u8(1);
  enc.put_u32(static_cast<std::uint32_t>(values->size()));
  for (const auto& v : *values) enc.put_value(v);
}

std::optional<std::vector<Value>> get_optional_values(Decoder& dec, std::size_t arity) {
  if (dec.get_u8() == 0) return std::nullopt;
  const std::uint32_t n = dec.get_u32();
  if (n != arity) throw common::InvalidArgument("wire: delta arity mismatch");
  dec.check_count(n, 1);
  std::vector<Value> values;
  values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) values.push_back(dec.get_value());
  return values;
}
}  // namespace

Bytes encode_deltas(const std::vector<delta::DeltaRow>& rows) {
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(rows.size()));
  for (const auto& row : rows) {
    enc.put_i64(static_cast<std::int64_t>(row.tid.raw()));
    enc.put_i64(row.ts.ticks());
    put_optional_values(enc, row.old_values);
    put_optional_values(enc, row.new_values);
  }
  return enc.take();
}

std::vector<delta::DeltaRow> decode_deltas(const Bytes& bytes, std::size_t arity) {
  Decoder dec(bytes);
  const std::uint32_t n = dec.get_u32();
  dec.check_count(n, 18);  // tid (8) + ts (8) + two presence tags
  std::vector<delta::DeltaRow> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    delta::DeltaRow row;
    row.tid = rel::TupleId(static_cast<rel::TupleId::rep>(dec.get_i64()));
    row.ts = common::Timestamp(dec.get_i64());
    row.old_values = get_optional_values(dec, arity);
    row.new_values = get_optional_values(dec, arity);
    out.push_back(std::move(row));
  }
  if (!dec.done()) throw common::InvalidArgument("wire: trailing bytes after deltas");
  return out;
}

}  // namespace cq::diom
