#include "diom/introspect.hpp"

#include "common/observability.hpp"
#include "common/prometheus.hpp"
#include "common/sync.hpp"

namespace cq::diom {

namespace obs = cq::common::obs;

namespace {

// Every handler serializes with the engine loop through engine_mu for the
// whole request — reading the mirror database, the CQ manager's stats and
// the mediator's sync state is only safe while the engine is parked.

obs::HttpResponse metrics_handler(Mediator& mediator, common::Mutex& mu) {
  common::LockGuard lock(mu);
  mediator.database().refresh_resource_gauges();
  std::string body = obs::render_prometheus(
      mediator.manager().metrics(), obs::global(),
      {mediator.manager().prometheus_section(), mediator.prometheus_section()});
  obs::HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = std::move(body);
  return resp;
}

obs::HttpResponse stats_handler(Mediator& mediator, common::Mutex& mu) {
  common::LockGuard lock(mu);
  return obs::HttpResponse::json(obs::export_json(
      mediator.manager().metrics(), obs::global().histogram_snapshot(),
      {mediator.manager().stats_section(), mediator.stats_section(),
       obs::events_section()}));
}

obs::HttpResponse healthz_handler(Mediator& mediator, common::Mutex& mu) {
  common::LockGuard lock(mu);
  const std::vector<Mediator::SourceHealth> health = mediator.health();
  bool ok = true;
  obs::JsonWriter w;
  w.begin_object();
  w.key("sources").begin_array();
  for (const auto& h : health) {
    ok = ok && h.healthy;
    w.begin_object();
    w.kv("source", h.source_name);
    w.kv("local_table", h.local_table);
    w.kv("staleness_ticks", h.staleness_ticks);
    w.kv("failures", h.failures);
    w.kv("healthy", h.healthy);
    if (!h.error.empty()) w.kv("error", h.error);
    w.end_object();
  }
  w.end_array();
  w.kv("staleness_threshold_ticks", mediator.staleness_threshold().ticks());
  w.kv("status", ok ? "ok" : "stale");
  w.end_object();
  return obs::HttpResponse::json(w.str(), ok ? 200 : 503);
}

obs::HttpResponse events_handler(const obs::HttpRequest& req, common::Mutex& mu) {
  common::LockGuard lock(mu);
  const std::uint64_t n = req.query_u64("n", 100);
  // ?since=<seq> returns only events newer than that journal seq —
  // pollers resume from the last_seq /stats reported.
  const std::uint64_t since = req.query_u64("since", 0);
  obs::HttpResponse resp;
  resp.content_type = "application/x-ndjson; charset=utf-8";
  resp.body = obs::global().events().to_ndjson(static_cast<std::size_t>(n), since);
  return resp;
}

obs::HttpResponse lineage_handler(const obs::HttpRequest& req, Mediator& mediator,
                                  common::Mutex& mu) {
  common::LockGuard lock(mu);
  const std::string cq = req.query_str("cq");
  const std::uint64_t n =
      req.query_u64("n", core::LineageStore::kDefaultRetention);
  return obs::HttpResponse::json(
      mediator.manager().lineage().to_json(cq, static_cast<std::size_t>(n)));
}

obs::HttpResponse trace_handler(const obs::HttpRequest& req, common::Mutex& mu) {
  common::LockGuard lock(mu);
  // ?trace_id=N narrows the dump to one commit (its retained capture when
  // the trace ranked among the slowest, else whatever is still in the ring).
  const std::uint64_t id = req.query_u64("trace_id", 0);
  return obs::HttpResponse::json(obs::global().traces().to_chrome_json(id));
}

obs::HttpResponse profile_handler(common::Mutex& mu) {
  common::LockGuard lock(mu);
  return obs::HttpResponse::json(obs::export_profile_json());
}

obs::HttpResponse lockgraph_handler(const obs::HttpRequest& req) {
  // Deliberately lock-free: the lock-order graph is relaxed atomics all
  // the way down, so the one endpoint that *reports on* the engine's
  // mutexes never waits on any of them. ?format=dot renders GraphViz.
  if (req.query_str("format") == "dot") {
    return obs::HttpResponse::text(common::lockorder::to_dot());
  }
  return obs::HttpResponse::json(common::lockorder::to_json());
}

}  // namespace

void serve_introspection(common::obs::IntrospectServer& server, Mediator& mediator,
                         common::Mutex& engine_mu) {
  server.route("/metrics", [&mediator, &engine_mu](const obs::HttpRequest&) {
    return metrics_handler(mediator, engine_mu);
  });
  server.route("/stats", [&mediator, &engine_mu](const obs::HttpRequest&) {
    return stats_handler(mediator, engine_mu);
  });
  server.route("/healthz", [&mediator, &engine_mu](const obs::HttpRequest&) {
    return healthz_handler(mediator, engine_mu);
  });
  server.route("/events", [&engine_mu](const obs::HttpRequest& req) {
    return events_handler(req, engine_mu);
  });
  server.route("/lineage", [&mediator, &engine_mu](const obs::HttpRequest& req) {
    return lineage_handler(req, mediator, engine_mu);
  });
  server.route("/trace", [&engine_mu](const obs::HttpRequest& req) {
    return trace_handler(req, engine_mu);
  });
  server.route("/profile", [&engine_mu](const obs::HttpRequest&) {
    return profile_handler(engine_mu);
  });
  server.route("/lockgraph", [](const obs::HttpRequest& req) {
    return lockgraph_handler(req);
  });
}

}  // namespace cq::diom
