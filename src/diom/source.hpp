// Information sources (Sections 1, 5.5): heterogeneous producers whose
// updates reach the DRA as differential relations. Relational sources
// produce deltas natively; non-relational sources (file stores, append-only
// feeds) go through simple translators "as part of the DIOM services".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "common/timestamp.hpp"
#include "delta/delta_relation.hpp"
#include "relation/relation.hpp"

namespace cq::diom {

/// One autonomous information producer.
class InformationSource {
 public:
  virtual ~InformationSource() = default;

  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Relational schema of the records this source exports.
  [[nodiscard]] virtual const rel::Schema& schema() const = 0;

  /// Full snapshot of the current contents (used for a client's initial
  /// load — analogous to the CQ's initial complete execution).
  [[nodiscard]] virtual rel::Relation snapshot() const = 0;

  /// All changes with ts > since, as differential rows in ts order. This is
  /// the only thing a source must be able to produce incrementally.
  [[nodiscard]] virtual std::vector<delta::DeltaRow> pull_deltas(
      common::Timestamp since) const = 0;

  /// The source's current logical time (drives incremental pulls).
  [[nodiscard]] virtual common::Timestamp now() const = 0;
};

/// A source backed by one table of a relational Database — delta
/// generation is "quite straightforward" (Section 5.5): it reads the
/// table's differential relation directly.
class RelationalSource final : public InformationSource {
 public:
  /// The database must outlive the source.
  RelationalSource(std::string name, const cat::Database& db, std::string table);

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] const rel::Schema& schema() const override;
  [[nodiscard]] rel::Relation snapshot() const override;
  [[nodiscard]] std::vector<delta::DeltaRow> pull_deltas(
      common::Timestamp since) const override;
  [[nodiscard]] common::Timestamp now() const override;

 private:
  std::string name_;
  const cat::Database* db_;
  std::string table_;
};

}  // namespace cq::diom
