// Wires a mediator (mirror database + CQ manager + attached sources) to
// the introspection HTTP server: /metrics (Prometheus text exposition),
// /stats (the JSON stats document), /healthz (per-source staleness,
// 200/503), /trace (chrome://tracing JSON) and /events (NDJSON journal
// tail, ?n=<count>).
//
// Handlers run on the server's background thread while the engine runs on
// the caller's; pass the mutex your engine loop holds so scrapes serialize
// with engine work. A null mutex is fine for single-threaded tests that
// only scrape while the engine is idle.
#pragma once

#include <mutex>

#include "common/introspect_server.hpp"
#include "diom/mediator.hpp"

namespace cq::diom {

/// Register the standard endpoint set on `server` (route() only; the
/// caller decides when to start()). `mediator` and `engine_mu` must
/// outlive the server.
void serve_introspection(common::obs::IntrospectServer& server, Mediator& mediator,
                         std::mutex* engine_mu = nullptr);

}  // namespace cq::diom
