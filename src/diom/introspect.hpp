// Wires a mediator (mirror database + CQ manager + attached sources) to
// the introspection HTTP server: /metrics (Prometheus text exposition),
// /stats (the JSON stats document), /healthz (per-source staleness,
// 200/503), /trace (chrome://tracing JSON, ?trace_id=<id> for one
// commit), /events (NDJSON journal tail, ?n=<count>) and /profile
// (lock-contention sites + pool lane utilization + slowest commit traces).
//
// Handlers run on the server's background thread while the engine runs on
// the caller's; every handler takes `engine_mu` — the mutex the engine
// loop holds while it installs CQs, commits transactions and runs sync
// rounds — so scrapes serialize with engine work. The mutex is required,
// not optional: single-threaded callers simply declare a cq::Mutex next
// to the mediator and never contend on it. (Earlier revisions accepted a
// null std::mutex*, which let tests scrape a mediator the engine was
// concurrently mutating — a data race the thread-safety annotations in
// common/sync.hpp now make structurally impossible to reintroduce.)
#pragma once

#include "common/introspect_server.hpp"
#include "common/sync.hpp"
#include "diom/mediator.hpp"

namespace cq::diom {

/// Register the standard endpoint set on `server` (route() only; the
/// caller decides when to start()). `mediator` and `engine_mu` must
/// outlive the server. Every handler acquires `engine_mu` for the length
/// of the request.
void serve_introspection(common::obs::IntrospectServer& server, Mediator& mediator,
                         common::Mutex& engine_mu);

}  // namespace cq::diom
