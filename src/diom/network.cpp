#include "diom/network.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/observability.hpp"

namespace cq::diom {

void Network::set_link(const std::string& a, const std::string& b, LinkSpec spec) {
  if (spec.bandwidth_bytes_per_ms <= 0) {
    throw common::InvalidArgument("Network: bandwidth must be positive");
  }
  links_[{std::min(a, b), std::max(a, b)}] = spec;
}

const LinkSpec& Network::link(const std::string& a, const std::string& b) const {
  auto it = links_.find({std::min(a, b), std::max(a, b)});
  return it == links_.end() ? default_link_ : it->second;
}

double Network::send(const std::string& from, const std::string& to, std::size_t bytes) {
  namespace obs = common::obs;
  obs::Span span("net.send");
  const LinkSpec& spec = link(from, to);
  const double ms =
      spec.latency_ms + static_cast<double>(bytes) / spec.bandwidth_bytes_per_ms;
  total_bytes_ += bytes;
  ++total_messages_;
  total_ms_ += ms;
  by_pair_[from + "->" + to] += bytes;
  if (metrics_ != nullptr) {
    metrics_->add(common::metric::kBytesSent, static_cast<std::int64_t>(bytes));
    metrics_->add(common::metric::kMessagesSent, 1);
  }
  if (obs::enabled()) {
    // Histogram of *simulated* transfer time — what the paper's network
    // argument is about — not host wall time.
    static obs::Histogram& h = obs::global().histogram(obs::hist::kNetTransferUs);
    h.record(static_cast<std::uint64_t>(ms * 1000.0));
  }
  return ms;
}

void Network::reset() noexcept {
  by_pair_.clear();
  total_bytes_ = 0;
  total_messages_ = 0;
  total_ms_ = 0.0;
}

}  // namespace cq::diom
