// An append-only information source: a stream of records that are never
// modified or removed — the world the earlier continuous-query systems
// (Terry et al., Alert) assumed. Included both as a realistic source kind
// (news feeds, tickers) and to drive the Terry-baseline benchmark (E7).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "diom/source.hpp"

namespace cq::diom {

class FeedSource final : public InformationSource {
 public:
  FeedSource(std::string name, rel::Schema schema,
             std::shared_ptr<common::Clock> clock = nullptr);

  /// Publish one record to the feed.
  rel::TupleId publish(std::vector<rel::Value> values);

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] const rel::Schema& schema() const override { return schema_; }
  [[nodiscard]] rel::Relation snapshot() const override { return contents_; }
  [[nodiscard]] std::vector<delta::DeltaRow> pull_deltas(
      common::Timestamp since) const override;
  [[nodiscard]] common::Timestamp now() const override { return clock_->now(); }

 private:
  std::string name_;
  rel::Schema schema_;
  std::shared_ptr<common::Clock> clock_;
  rel::Relation contents_;
  delta::DeltaRelation log_;
};

}  // namespace cq::diom
