// A non-relational information source: a simulated flat-file record store
// whose mutations are observed by middleware and *translated* into
// differential relations (Section 5.5's file-system example — "file system
// updates can be captured by either operating system or middleware and
// translated into a differential relation and fed into DRA").
//
// Records are CSV-ish lines ("101088,MAC,117"). The translator parses each
// line against a declared schema; write/remove/replace operations on lines
// become insert/delete/modify delta rows stamped by the source's own clock.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "diom/source.hpp"

namespace cq::diom {

class FileSource final : public InformationSource {
 public:
  /// `schema` declares how each line's comma-separated fields are typed.
  FileSource(std::string name, rel::Schema schema,
             std::shared_ptr<common::Clock> clock = nullptr);

  // ---- the "file system" surface (what applications mutate) ----

  /// Append a new line; returns its stable line number (the tid).
  std::uint64_t write_line(const std::string& line);

  /// Remove a line by number.
  void remove_line(std::uint64_t line_number);

  /// Replace a line's contents in place.
  void replace_line(std::uint64_t line_number, const std::string& line);

  [[nodiscard]] std::size_t line_count() const noexcept { return lines_.size(); }

  // ---- the InformationSource surface (what the mediator consumes) ----
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] const rel::Schema& schema() const override { return schema_; }
  [[nodiscard]] rel::Relation snapshot() const override;
  [[nodiscard]] std::vector<delta::DeltaRow> pull_deltas(
      common::Timestamp since) const override;
  [[nodiscard]] common::Timestamp now() const override { return clock_->now(); }

  /// Translate one raw line into typed values per the schema. Exposed for
  /// tests. Throws ParseError on malformed lines.
  [[nodiscard]] std::vector<rel::Value> translate(const std::string& line) const;

 private:
  std::string name_;
  rel::Schema schema_;
  std::shared_ptr<common::Clock> clock_;
  std::map<std::uint64_t, std::string> lines_;  // line number -> raw text
  std::uint64_t next_line_ = 1;
  delta::DeltaRelation log_;  // translated change log
};

}  // namespace cq::diom
