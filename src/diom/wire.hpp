// Wire format: the bytes that actually cross the (simulated) network
// between information sources and the DIOM mediator. Values, tuples,
// relations, and delta batches round-trip through a compact length-prefixed
// binary encoding; every benchmark byte count comes from real encoded
// sizes, not estimates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "delta/delta_relation.hpp"
#include "relation/relation.hpp"

namespace cq::diom {

using Bytes = std::vector<std::uint8_t>;

/// Append-only byte writer.
class Encoder {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_string(const std::string& s);
  void put_value(const rel::Value& v);
  void put_tuple(const rel::Tuple& t);

  [[nodiscard]] const Bytes& bytes() const noexcept { return buffer_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Sequential byte reader; throws InvalidArgument on truncated/garbled input.
class Decoder {
 public:
  explicit Decoder(const Bytes& bytes) : bytes_(bytes) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::int64_t get_i64();
  double get_f64();
  std::string get_string();
  rel::Value get_value();
  rel::Tuple get_tuple();

  [[nodiscard]] bool done() const noexcept { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  /// Validate an element count against the bytes left (each element needs at
  /// least `min_bytes_each`); throws InvalidArgument on an implausible count
  /// so corrupted length prefixes cannot trigger huge allocations.
  void check_count(std::size_t count, std::size_t min_bytes_each) const;

 private:
  void need(std::size_t n) const;
  const Bytes& bytes_;
  std::size_t pos_ = 0;
};

// ---- message payloads ----

/// Encode/decode a whole relation (schema is NOT shipped; both ends know it).
[[nodiscard]] Bytes encode_relation(const rel::Relation& relation);
[[nodiscard]] rel::Relation decode_relation(const Bytes& bytes, rel::Schema schema);

/// Encode/decode a batch of differential rows.
[[nodiscard]] Bytes encode_deltas(const std::vector<delta::DeltaRow>& rows);
[[nodiscard]] std::vector<delta::DeltaRow> decode_deltas(const Bytes& bytes,
                                                         std::size_t arity);

}  // namespace cq::diom
