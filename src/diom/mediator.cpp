#include "diom/mediator.hpp"

#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace cq::diom {

namespace obs = common::obs;

Mediator::Mediator(std::string client_name, Network* network)
    : client_(std::move(client_name)), network_(network), manager_(db_) {}

Mediator::Mediator(std::string client_name, Network* network, cat::Database mirror)
    : client_(std::move(client_name)),
      network_(network),
      db_(std::move(mirror)),
      manager_(db_) {}

std::vector<Mediator::SourceState> Mediator::export_source_states() const {
  LockGuard lock(mu_);
  std::vector<SourceState> out;
  out.reserve(sources_.size());
  for (const auto& attached : sources_) {
    SourceState state;
    state.source_name = attached.source->name();
    state.local_table = attached.local_table;
    state.cursor = attached.cursor;
    state.tid_map.reserve(attached.tid_map.size());
    for (const auto& [src, mirror] : attached.tid_map) {
      state.tid_map.emplace_back(src, mirror.raw());
    }
    out.push_back(std::move(state));
  }
  return out;
}

void Mediator::attach_restored(std::shared_ptr<InformationSource> source,
                               const SourceState& state) {
  if (!source) throw common::InvalidArgument("Mediator::attach_restored: null source");
  if (source->name() != state.source_name) {
    throw common::InvalidArgument("Mediator::attach_restored: source '" +
                                  source->name() + "' does not match saved state for '" +
                                  state.source_name + "'");
  }
  if (!db_.has_table(state.local_table)) {
    throw common::NotFound("Mediator::attach_restored: mirror table '" +
                           state.local_table + "' missing from restored database");
  }
  Attached attached;
  attached.source = std::move(source);
  attached.local_table = state.local_table;
  attached.cursor = state.cursor;
  attached.stats.source_name = attached.source->name();
  attached.stats.local_table = attached.local_table;
  for (const auto& [src, mirror] : state.tid_map) {
    attached.tid_map.emplace(src, rel::TupleId(mirror));
  }
  common::log_info("mediator '", client_, "' re-attached source '",
                   attached.source->name(), "' at cursor ",
                   attached.cursor.to_string());
  LockGuard lock(mu_);
  sources_.push_back(std::move(attached));
}

void Mediator::attach(std::shared_ptr<InformationSource> source,
                      std::string local_table) {
  if (!source) throw common::InvalidArgument("Mediator::attach: null source");
  Attached attached;
  attached.source = std::move(source);
  attached.local_table =
      local_table.empty() ? attached.source->name() : std::move(local_table);

  db_.create_table(attached.local_table, attached.source->schema().unqualified());

  // Initial load: ship the full snapshot once (the analogue of the CQ's
  // initial complete execution).
  obs::Span span("diom.attach");
  const rel::Relation snapshot = attached.source->snapshot();
  const Bytes payload = encode_relation(snapshot);
  attached.stats.source_name = attached.source->name();
  attached.stats.local_table = attached.local_table;
  attached.stats.snapshot_bytes = payload.size();
  attached.stats.bytes_shipped = payload.size();
  manager_.metrics().add(common::metric::kBytesSent,
                         static_cast<std::int64_t>(payload.size()));
  if (network_ != nullptr) {
    attached.stats.total_transfer_ms =
        network_->send(attached.source->name(), client_, payload.size());
    attached.stats.last_transfer_ms = attached.stats.total_transfer_ms;
    ++attached.stats.messages;
    manager_.metrics().add(common::metric::kMessagesSent, 1);
  }
  const rel::Relation received = decode_relation(payload, snapshot.schema());

  auto txn = db_.begin();
  for (const auto& row : received.rows()) {
    const rel::TupleId mirror_tid = txn.insert(attached.local_table, row.values());
    attached.tid_map.emplace(row.tid().raw(), mirror_tid);
  }
  txn.commit();
  attached.cursor = attached.source->now();

  common::log_info("mediator '", client_, "' attached source '",
                   attached.source->name(), "' as table '", attached.local_table, "' (",
                   received.size(), " rows)");
  obs::event(obs::Severity::kInfo, "source_attached", attached.source->name(),
             std::to_string(received.size()) + " snapshot row(s) as table '" +
                 attached.local_table + "'",
             attached.cursor.ticks());
  LockGuard lock(mu_);
  sources_.push_back(std::move(attached));
}

void Mediator::apply_deltas(Attached& attached,
                            const std::vector<delta::DeltaRow>& rows) {
  if (rows.empty()) return;
  auto txn = db_.begin();
  for (const auto& row : rows) {
    switch (row.kind()) {
      case delta::ChangeKind::kInsert: {
        const rel::TupleId mirror_tid =
            txn.insert(attached.local_table, *row.new_values);
        attached.tid_map[row.tid.raw()] = mirror_tid;
        break;
      }
      case delta::ChangeKind::kDelete: {
        auto it = attached.tid_map.find(row.tid.raw());
        if (it == attached.tid_map.end()) {
          throw common::InternalError("mediator: delete of unmapped source tid " +
                                      row.tid.to_string());
        }
        txn.erase(attached.local_table, it->second);
        attached.tid_map.erase(it);
        break;
      }
      case delta::ChangeKind::kModify: {
        auto it = attached.tid_map.find(row.tid.raw());
        if (it == attached.tid_map.end()) {
          throw common::InternalError("mediator: modify of unmapped source tid " +
                                      row.tid.to_string());
        }
        txn.modify(attached.local_table, it->second, *row.new_values);
        break;
      }
    }
  }
  txn.commit();
}

std::size_t Mediator::sync() { return sync_report().rows_applied; }

Mediator::SyncReport Mediator::sync_report() {
  static obs::Histogram& sync_hist = obs::global().histogram(obs::hist::kSyncUs);
  obs::Span span("diom.sync", &sync_hist);
  const std::uint64_t round_t0 = obs::now_ns();
  // One acquisition for the whole round: cursors, shipping stats and the
  // history ring must move together or a concurrent scrape sees a torn
  // round. The mirror commits inside apply_deltas stay engine-serialized
  // by the caller (see the class comment's lock-order note).
  LockGuard lock(mu_);
  SyncReport report;
  report.round = ++sync_rounds_;
  common::Metrics& metrics = manager_.metrics();
  metrics.add(common::metric::kSyncRounds, 1);
  for (auto& attached : sources_) {
    ++attached.stats.rounds;
    std::size_t pulled = 0;  // rows pulled this round, for the pending gauge
    try {
      // Read the source clock *before* pulling, so nothing committed between
      // the pull and the cursor update can be skipped, and only advance the
      // cursor after the deltas were applied — a failure mid-way leaves the
      // window intact for the next round.
      const common::Timestamp up_to = attached.source->now();
      const std::vector<delta::DeltaRow> rows =
          attached.source->pull_deltas(attached.cursor);
      pulled = rows.size();
      if (!rows.empty()) {
        const Bytes payload = encode_deltas(rows);
        metrics.add(common::metric::kBytesSent,
                    static_cast<std::int64_t>(payload.size()));
        if (network_ != nullptr) {
          const double ms =
              network_->send(attached.source->name(), client_, payload.size());
          attached.stats.last_transfer_ms = ms;
          attached.stats.total_transfer_ms += ms;
          ++attached.stats.messages;
          metrics.add(common::metric::kMessagesSent, 1);
          report.transfer_ms += ms;
        }
        const std::vector<delta::DeltaRow> received =
            decode_deltas(payload, attached.source->schema().size());
        apply_deltas(attached, received);
        report.rows_applied += received.size();
        report.bytes_shipped += payload.size();
        attached.stats.bytes_shipped += payload.size();
        attached.stats.rows_applied += received.size();
      }
      attached.cursor = up_to;
      publish_source_gauges(attached, 0, 0);
    } catch (const common::Error& e) {
      common::log_warn("mediator '", client_, "': sync of source '",
                       attached.source->name(), "' failed: ", e.what());
      report.failures.emplace_back(attached.source->name(), e.what());
      ++attached.stats.failures;
      metrics.add(common::metric::kSyncFailures, 1);
      obs::event(obs::Severity::kWarn, "sync_failure", attached.source->name(),
                 e.what(), attached.cursor.ticks());
      // The cursor did not advance; report the live lag and whatever we
      // pulled but could not apply.
      std::int64_t staleness = 0;
      try {
        staleness = (attached.source->now() - attached.cursor).ticks();
      } catch (const common::Error&) {
        staleness = -1;  // source clock unreachable
      }
      publish_source_gauges(attached, staleness, static_cast<std::int64_t>(pulled));
    }
  }
  metrics.add(common::metric::kSyncRowsApplied,
              static_cast<std::int64_t>(report.rows_applied));
  report.wall_ns = obs::now_ns() - round_t0;
  if (obs::enabled()) {
    obs::event(report.failures.empty() ? obs::Severity::kInfo : obs::Severity::kWarn,
               "sync_round", client_,
               std::to_string(report.rows_applied) + " row(s), " +
                   std::to_string(report.bytes_shipped) + " byte(s), " +
                   std::to_string(report.failures.size()) + " failure(s)",
               static_cast<std::int64_t>(report.round));
  }
  history_.push_back(report);
  if (history_.size() > kSyncHistoryLimit) history_.pop_front();
  return report;
}

void Mediator::publish_source_gauges(Attached& attached, std::int64_t staleness,
                                     std::int64_t pending) {
  if (!obs::enabled()) return;
  if (attached.staleness_gauge == nullptr) {
    const obs::Labels labels{{"source", attached.source->name()}};
    attached.staleness_gauge =
        &obs::global().gauge(obs::gauge::kSourceStalenessTicks, labels);
    attached.pending_gauge =
        &obs::global().gauge(obs::gauge::kSourcePendingRows, labels);
  }
  attached.staleness_gauge->set(staleness);
  attached.pending_gauge->set(pending);
}

std::vector<Mediator::SourceHealth> Mediator::health() const {
  LockGuard lock(mu_);
  return health_impl();
}

std::vector<Mediator::SourceHealth> Mediator::health_impl() const {
  std::vector<SourceHealth> out;
  out.reserve(sources_.size());
  for (const auto& attached : sources_) {
    SourceHealth h;
    h.source_name = attached.source->name();
    h.local_table = attached.local_table;
    h.failures = attached.stats.failures;
    try {
      h.staleness_ticks = (attached.source->now() - attached.cursor).ticks();
      h.healthy = staleness_threshold_.ticks() <= 0 ||
                  h.staleness_ticks <= staleness_threshold_.ticks();
    } catch (const common::Error& e) {
      h.healthy = false;
      h.staleness_ticks = -1;
      h.error = e.what();
    }
    out.push_back(std::move(h));
  }
  return out;
}

bool Mediator::healthy() const {
  for (const auto& h : health()) {
    if (!h.healthy) return false;
  }
  return true;
}

void Mediator::write_prometheus(common::obs::PromWriter& w) const {
  LockGuard lock(mu_);
  for (const auto& h : health_impl()) {
    const obs::Labels labels{{"source", h.source_name}};
    w.gauge("source_up", h.healthy ? 1 : 0, labels);
    w.gauge("source_staleness_ticks_live", h.staleness_ticks, labels);
  }
  for (const auto& attached : sources_) {
    const SourceStats& s = attached.stats;
    const obs::Labels labels{{"source", s.source_name}};
    w.counter("source_sync_rounds", static_cast<std::int64_t>(s.rounds), labels);
    w.counter("source_sync_failures", static_cast<std::int64_t>(s.failures), labels);
    w.counter("source_messages", static_cast<std::int64_t>(s.messages), labels);
    w.counter("source_bytes_shipped", static_cast<std::int64_t>(s.bytes_shipped),
              labels);
    w.counter("source_rows_applied", static_cast<std::int64_t>(s.rows_applied), labels);
  }
}

std::function<void(common::obs::PromWriter&)> Mediator::prometheus_section() const {
  return [this](common::obs::PromWriter& w) { write_prometheus(w); };
}

std::vector<Mediator::SourceStats> Mediator::source_stats() const {
  LockGuard lock(mu_);
  std::vector<SourceStats> out;
  out.reserve(sources_.size());
  for (const auto& attached : sources_) out.push_back(attached.stats);
  return out;
}

void Mediator::write_stats_json(common::obs::JsonWriter& w) const {
  LockGuard lock(mu_);
  w.begin_object();
  w.key("sources").begin_array();
  for (const auto& attached : sources_) {
    const SourceStats& s = attached.stats;
    w.begin_object();
    w.kv("source", s.source_name);
    w.kv("local_table", s.local_table);
    w.kv("rounds", s.rounds);
    w.kv("failures", s.failures);
    w.kv("messages", s.messages);
    w.kv("bytes_shipped", s.bytes_shipped);
    w.kv("snapshot_bytes", s.snapshot_bytes);
    w.kv("rows_applied", s.rows_applied);
    w.kv("last_transfer_ms", s.last_transfer_ms);
    w.kv("total_transfer_ms", s.total_transfer_ms);
    w.end_object();
  }
  w.end_array();
  w.key("rounds").begin_array();
  for (const auto& r : history_) {
    w.begin_object();
    w.kv("round", r.round);
    w.kv("rows_applied", std::uint64_t{r.rows_applied});
    w.kv("bytes_shipped", std::uint64_t{r.bytes_shipped});
    w.kv("failures", std::uint64_t{r.failures.size()});
    w.kv("transfer_ms", r.transfer_ms);
    w.kv("wall_us", r.wall_ns / 1000);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::deque<Mediator::SyncReport> Mediator::sync_history() const {
  LockGuard lock(mu_);
  return history_;
}

common::obs::Section Mediator::stats_section() const {
  return {"sync", [this](common::obs::JsonWriter& w) { write_stats_json(w); }};
}

std::size_t Mediator::ship_snapshots() {
  LockGuard lock(mu_);
  std::size_t total = 0;
  for (const auto& attached : sources_) {
    const Bytes payload = encode_relation(attached.source->snapshot());
    if (network_ != nullptr) {
      network_->send(attached.source->name(), client_, payload.size());
    }
    total += payload.size();
  }
  return total;
}

}  // namespace cq::diom
