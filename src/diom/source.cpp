#include "diom/source.hpp"

#include "common/error.hpp"

namespace cq::diom {

RelationalSource::RelationalSource(std::string name, const cat::Database& db,
                                   std::string table)
    : name_(std::move(name)), db_(&db), table_(std::move(table)) {
  if (!db.has_table(table_)) {
    throw common::NotFound("RelationalSource: no table '" + table_ + "'");
  }
}

const rel::Schema& RelationalSource::schema() const {
  return db_->table(table_).schema();
}

rel::Relation RelationalSource::snapshot() const { return db_->table(table_); }

std::vector<delta::DeltaRow> RelationalSource::pull_deltas(
    common::Timestamp since) const {
  const auto& d = db_->delta(table_);
  const auto pin = d.pin_reads();  // net_effect copies; pin covers the copy
  return d.net_effect(since);
}

common::Timestamp RelationalSource::now() const { return db_->clock().now(); }

}  // namespace cq::diom
