#include "diom/file_source.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cq::diom {

using rel::Value;
using rel::ValueType;

FileSource::FileSource(std::string name, rel::Schema schema,
                       std::shared_ptr<common::Clock> clock)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      clock_(clock ? std::move(clock) : std::make_shared<common::VirtualClock>()),
      log_(schema_) {}

std::vector<Value> FileSource::translate(const std::string& line) const {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  if (fields.size() != schema_.size()) {
    throw common::ParseError("FileSource '" + name_ + "': line has " +
                             std::to_string(fields.size()) + " fields, schema needs " +
                             std::to_string(schema_.size()) + ": " + line);
  }
  std::vector<Value> values;
  values.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    try {
      switch (schema_.at(i).type) {
        case ValueType::kInt:
          values.emplace_back(static_cast<std::int64_t>(std::stoll(f)));
          break;
        case ValueType::kDouble:
          values.emplace_back(std::stod(f));
          break;
        case ValueType::kBool:
          values.emplace_back(f == "true" || f == "1");
          break;
        case ValueType::kString:
        case ValueType::kNull:
          values.emplace_back(f);
          break;
      }
    } catch (const std::exception&) {
      throw common::ParseError("FileSource '" + name_ + "': bad field '" + f +
                               "' for attribute " + schema_.at(i).name);
    }
  }
  return values;
}

std::uint64_t FileSource::write_line(const std::string& line) {
  std::vector<Value> values = translate(line);  // validate before mutating
  const std::uint64_t number = next_line_++;
  lines_.emplace(number, line);
  log_.record_insert(rel::TupleId(number), std::move(values), clock_->tick());
  return number;
}

void FileSource::remove_line(std::uint64_t line_number) {
  auto it = lines_.find(line_number);
  if (it == lines_.end()) {
    throw common::NotFound("FileSource '" + name_ + "': no line " +
                           std::to_string(line_number));
  }
  std::vector<Value> old_values = translate(it->second);
  lines_.erase(it);
  log_.record_delete(rel::TupleId(line_number), std::move(old_values), clock_->tick());
}

void FileSource::replace_line(std::uint64_t line_number, const std::string& line) {
  auto it = lines_.find(line_number);
  if (it == lines_.end()) {
    throw common::NotFound("FileSource '" + name_ + "': no line " +
                           std::to_string(line_number));
  }
  std::vector<Value> new_values = translate(line);
  std::vector<Value> old_values = translate(it->second);
  it->second = line;
  log_.record_modify(rel::TupleId(line_number), std::move(old_values),
                     std::move(new_values), clock_->tick());
}

rel::Relation FileSource::snapshot() const {
  rel::Relation out(schema_);
  for (const auto& [number, line] : lines_) {
    out.append(rel::Tuple(translate(line), rel::TupleId(number)));
  }
  return out;
}

std::vector<delta::DeltaRow> FileSource::pull_deltas(common::Timestamp since) const {
  const auto pin = log_.pin_reads();  // net_effect copies; pin covers the copy
  return log_.net_effect(since);
}

}  // namespace cq::diom
