#include "diom/feed_source.hpp"

namespace cq::diom {

FeedSource::FeedSource(std::string name, rel::Schema schema,
                       std::shared_ptr<common::Clock> clock)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      clock_(clock ? std::move(clock) : std::make_shared<common::VirtualClock>()),
      contents_(schema_),
      log_(schema_) {}

rel::TupleId FeedSource::publish(std::vector<rel::Value> values) {
  const rel::TupleId tid = contents_.insert_values(values);
  log_.record_insert(tid, std::move(values), clock_->tick());
  return tid;
}

std::vector<delta::DeltaRow> FeedSource::pull_deltas(common::Timestamp since) const {
  const auto pin = log_.pin_reads();  // net_effect copies; pin covers the copy
  return log_.net_effect(since);
}

}  // namespace cq::diom
