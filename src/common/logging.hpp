// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate what the CQ manager is doing.
#pragma once

#include <sstream>
#include <string>

namespace cq::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line at the given level (no newline needed).
void log(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace cq::common
