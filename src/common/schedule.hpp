// Seeded schedule perturbation — layer 3 of the lock-discipline subsystem
// (docs/static-analysis.md). When enabled, the preemption points compiled
// into Mutex::lock/unlock and ThreadPool dispatch (CQ_LOCK_ORDER_CHECKS
// builds only) inject randomized yields and micro-sleeps driven by a PRNG
// seed, shaking thread interleavings loose from the scheduler's habitual
// ones. The fuzz_schedule target feeds seeds from fuzzer input and asserts
// the DRA pipeline's notification digest is bit-identical under every
// perturbed schedule; tests sweep 100+ seeds the same way.
//
// Determinism contract: the *perturbation stream* each thread draws is a
// pure function of (seed, thread-arrival ordinal), so a replayed seed
// perturbs the same way — the schedules explored differ only by what the
// OS makes of the injected delays. Disabled cost is one relaxed load and
// a branch per point; Release builds compile the points out entirely.
//
// Sits below sync.hpp (which includes it) — no locks, atomics only.
#pragma once

#include <atomic>
#include <cstdint>

namespace cq::common::schedule {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Is perturbation on? One relaxed load — called at every preemption
/// point in checked builds.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arm the perturber with `seed`. Threads derive their streams from
/// (seed, per-thread arrival ordinal); re-enabling with a new seed starts
/// a new epoch, so already-running threads reseed at their next point.
void enable(std::uint64_t seed) noexcept;

void disable() noexcept;

/// One preemption point: maybe yield, maybe micro-sleep, per this
/// thread's seeded stream. `where` labels the point class ("mutex.lock",
/// "pool.dispatch", ...) and is folded into the draw so distinct point
/// classes perturb decorrelated even on one thread.
void perturb(const char* where) noexcept;

/// Yields + sleeps injected since the last enable() (diagnostics: tests
/// assert a perturbed run actually perturbed).
[[nodiscard]] std::uint64_t injected() noexcept;

}  // namespace cq::common::schedule

/// Preemption point, compiled out with the lock-order checker so Release
/// hot paths carry no trace of it.
#if defined(CQ_LOCK_ORDER_CHECKS)
#define CQ_SCHED_POINT(where)                       \
  do {                                              \
    if (::cq::common::schedule::enabled()) {        \
      ::cq::common::schedule::perturb(where);       \
    }                                               \
  } while (0)
#else
#define CQ_SCHED_POINT(where) ((void)0)
#endif
