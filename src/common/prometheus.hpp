// Prometheus text exposition (format version 0.0.4) for the observability
// registry: counters, gauges and log2 latency histograms rendered as
// `name{label="value"} 123` sample lines with `# TYPE` headers, the
// document a Prometheus server (or promtool) scrapes from the /metrics
// endpoint of the introspection HTTP server.
//
// Conventions: every family is prefixed "cq_"; counters get the
// "_total" suffix; histograms render cumulative `_bucket{le="..."}` lines
// at the log2 bucket upper bounds (1, 3, 7, ..., 2^k-1, "+Inf") plus
// `_sum` and `_count`. Family lines are grouped and sorted, as the format
// requires.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/observability.hpp"

namespace cq::common::obs {

/// Accumulates sample lines grouped by metric family; str() renders the
/// final exposition. Samples of one family may be added in any order and
/// interleaved with other families — grouping happens at render time.
class PromWriter {
 public:
  /// Add one counter sample. `family` is the raw name ("rows_scanned");
  /// the rendered family is cq_<family>_total.
  void counter(const std::string& family, std::int64_t value, const Labels& labels = {});

  /// Add one gauge sample, rendered as cq_<family>.
  void gauge(const std::string& family, std::int64_t value, const Labels& labels = {});

  /// Add one histogram (all of its _bucket/_sum/_count lines), rendered
  /// under family cq_<family>.
  void histogram(const std::string& family, const Histogram& h, const Labels& labels = {});

  /// The complete exposition: families sorted by name, each preceded by
  /// its `# TYPE` line, terminated by a trailing newline.
  [[nodiscard]] std::string str() const;

  /// Clamp `raw` to the metric-name alphabet [a-zA-Z0-9_:]; invalid
  /// characters become '_', and a leading digit gains a '_' prefix.
  [[nodiscard]] static std::string sanitize_name(const std::string& raw);

  /// Escape a label value: backslash, double quote and newline.
  [[nodiscard]] static std::string escape_label_value(const std::string& v);

 private:
  struct Family {
    std::string type;
    std::vector<std::string> lines;
  };

  Family& family(const std::string& name, const char* type);
  static void append_sample(Family& fam, const std::string& name, const Labels& labels,
                            const std::string& value);

  std::map<std::string, Family> families_;
};

/// Render an exposition from explicit parts (no registry access): the
/// counter bag, gauge readings, and histogram families, plus any
/// caller-supplied sections.
[[nodiscard]] std::string render_prometheus(
    const Metrics& counters, const std::vector<GaugeSample>& gauges,
    const std::map<std::string, Histogram>& histograms,
    const std::vector<std::function<void(PromWriter&)>>& sections = {});

/// Render the standard engine document from `registry`: refreshes the
/// registry's self-describing gauges, then renders `counters` (the
/// caller's merged Metrics bags), every registry gauge and histogram, and
/// any caller sections (per-CQ counters from the manager, per-source
/// gauges from the mediator).
[[nodiscard]] std::string render_prometheus(
    const Metrics& counters, Registry& registry,
    const std::vector<std::function<void(PromWriter&)>>& sections = {});

}  // namespace cq::common::obs
