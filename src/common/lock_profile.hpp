// Opt-in lock-contention profiling for the annotated mutexes in
// common/sync.hpp. A cq::Mutex constructed with a site name ("pool",
// "trace_ring", "engine", ...) registers itself here on its first profiled
// acquisition; while profiling is enabled every lock() takes the try_lock
// fast path and, on a miss, records the time spent blocked plus a
// contention count, and every critical section feeds a hold-time
// histogram. The tables are exported through /metrics (cq_lock_* families)
// and the /profile endpoint.
//
// Contract, mirroring observability.hpp: *disabled is free*. When
// lockprof::enabled() is false a profiled mutex costs one relaxed atomic
// load and a branch over plain std::mutex — no clock reads, no table
// lookups. Unnamed mutexes are never profiled at all.
//
// Everything here is atomics over a fixed-capacity site table, so this
// header can sit *below* sync.hpp (it must: sync.hpp includes it) without
// ever taking a lock of its own.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/histogram.hpp"

namespace cq::common::lockprof {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Is contention profiling on? One relaxed load — called on every lock().
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic nanoseconds (own steady-clock reader: obs::now_ns lives above
/// sync.hpp in the include order and cannot be used from here).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Per-site acquisition statistics. All fields are relaxed atomics;
/// concurrent lock()/unlock() on different threads update them without
/// coordination, so readers see monotone but possibly momentarily
/// inconsistent values (fine for monitoring).
struct SiteStats {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> acquisitions{0};  // profiled lock() + try_lock() wins
  std::atomic<std::uint64_t> contended{0};     // fast-path try_lock missed
  std::atomic<std::uint64_t> wait_ns{0};       // total time blocked acquiring
  std::atomic<std::uint64_t> hold_ns{0};       // total time inside the lock
  obs::Histogram wait_us;  // per contended acquisition
  obs::Histogram hold_us;  // per profiled critical section
};

/// Capacity of the site table. Sites are named compile-time constants
/// (one per mutex role, not per mutex instance), so a small fixed table
/// suffices; registration beyond capacity returns nullptr and the mutex
/// silently stays unprofiled.
inline constexpr std::size_t kMaxSites = 64;

/// Find-or-create the stats slot for `name` (pointer-keyed first, then
/// string compare, so distinct mutexes sharing one site literal aggregate
/// into one row). Never throws; nullptr when the table is full.
[[nodiscard]] SiteStats* register_site(const char* name) noexcept;

/// Number of registered sites (rows of site() worth reading).
[[nodiscard]] std::size_t site_count() noexcept;

/// The i-th registered site, i < site_count(). References stay valid for
/// the process lifetime.
[[nodiscard]] const SiteStats& site(std::size_t i) noexcept;

/// Zero every site's statistics (registrations and names survive).
void reset() noexcept;

}  // namespace cq::common::lockprof
