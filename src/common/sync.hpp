// Compile-time lock discipline for the CQ engine.
//
// The engine runs most work on one thread, but the introspection HTTP
// server (src/common/introspect_server.hpp) answers scrapes on its own
// thread, and the observability rings are written from wherever a span or
// journal event completes. Every mutex in the tree therefore uses the
// annotated types below instead of raw std::mutex, and every field a
// mutex guards says so with CQ_GUARDED_BY. Under Clang (-Wthread-safety,
// see scripts/check_thread_safety.sh) violating the discipline — touching
// a guarded field without the lock, calling a CQ_REQUIRES method unlocked
// — is a compile error. Under GCC the macros expand to nothing and the
// types behave exactly like std::mutex / std::lock_guard.
//
//   class Cache {
//    public:
//     void put(int k, int v) {
//       cq::LockGuard lock(mu_);
//       map_[k] = v;                    // ok: lock held
//     }
//    private:
//     mutable cq::Mutex mu_;
//     std::map<int, int> map_ CQ_GUARDED_BY(mu_);
//   };
//
// scripts/lint_invariants.py enforces that library and example code never
// reaches for raw std::mutex / std::lock_guard directly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/lock_order.hpp"
#include "common/lock_profile.hpp"
#include "common/schedule.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CQ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CQ_THREAD_ANNOTATION
#define CQ_THREAD_ANNOTATION(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Marks a type as a lockable capability ("mutex").
#define CQ_CAPABILITY(x) CQ_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type that acquires in its constructor, releases in its
/// destructor.
#define CQ_SCOPED_CAPABILITY CQ_THREAD_ANNOTATION(scoped_lockable)
/// Field `x` may only be read/written while holding the named mutex.
#define CQ_GUARDED_BY(x) CQ_THREAD_ANNOTATION(guarded_by(x))
/// Pointee of field `x` may only be dereferenced while holding the mutex.
#define CQ_PT_GUARDED_BY(x) CQ_THREAD_ANNOTATION(pt_guarded_by(x))
/// The function may only be called while already holding the mutex(es).
#define CQ_REQUIRES(...) CQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The function acquires the mutex(es) and does not release them.
#define CQ_ACQUIRE(...) CQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases the mutex(es).
#define CQ_RELEASE(...) CQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The function acquires the mutex iff it returns the first argument
/// (e.g. CQ_TRY_ACQUIRE(true)); further arguments name the capability.
#define CQ_TRY_ACQUIRE(...) CQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// The function must NOT be called while holding the mutex(es)
/// (deadlock guard for methods that lock internally).
#define CQ_EXCLUDES(...) CQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// The function returns a reference to the named mutex.
#define CQ_RETURN_CAPABILITY(x) CQ_THREAD_ANNOTATION(lock_returned(x))
/// Declared lock-ordering edges.
#define CQ_ACQUIRED_BEFORE(...) CQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CQ_ACQUIRED_AFTER(...) CQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Escape hatch — use only with a comment explaining why the analysis
/// cannot see the synchronization.
#define CQ_NO_THREAD_SAFETY_ANALYSIS CQ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cq::common {

/// std::mutex as an annotated capability. Non-copyable, non-movable.
///
/// A mutex constructed with a *site name* (a string literal naming its
/// role: "pool", "trace_ring", "engine", ...) additionally participates in
/// the opt-in contention profiler (common/lock_profile.hpp). While
/// lockprof::enabled() is on, lock() takes a try_lock fast path and on a
/// miss records time-to-acquire + a contention count against the site, and
/// unlock() feeds the critical-section hold time into the site's
/// histogram. When profiling is off — or for unnamed mutexes, always — the
/// cost over plain std::mutex is one relaxed load and a branch; no clock
/// is ever read.
class CQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Profiled variant. `site` must be a string with static storage
  /// duration (in practice: a literal); distinct mutexes sharing one site
  /// name aggregate into one profiler row.
  explicit Mutex(const char* site) noexcept : site_(site) {}
  /// Profiled and *ranked* variant: the mutex additionally participates
  /// in lock-order verification (common/lock_order.hpp) in checked
  /// builds. Engine-lifetime mutexes must use this form — enforced by
  /// scripts/check_lock_order.py against docs/lock-hierarchy.md.
  Mutex(const char* site, lockorder::LockRank rank) noexcept
      : site_(site), rank_(lockorder::rank_value(rank)) {}
  /// Ranked *cohort* member: one of an ordered array of same-rank mutexes
  /// (e.g. the catalog commit shards). `order_key` must be nonzero and
  /// unique within the cohort; the lock-order checker permits equal-rank
  /// nesting only in strictly ascending key order.
  Mutex(const char* site, lockorder::LockRank rank,
        std::uint32_t order_key) noexcept
      : site_(site), rank_(lockorder::rank_value(rank)),
        order_key_(order_key) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Late cohort-key assignment for mutexes whose array index is not
  /// known at member-initialization time. Call before first lock().
  void set_order_key(std::uint32_t order_key) noexcept {
    order_key_ = order_key;
  }

  void lock() CQ_ACQUIRE() {
    CQ_SCHED_POINT("mutex.lock");
#if defined(CQ_LOCK_ORDER_CHECKS)
    if (site_ != nullptr) {
      lockorder::on_lock(this, site_, rank_, order_key_, order_site(),
                         /*blocking=*/true);
    }
#endif
    if (site_ == nullptr || !lockprof::enabled()) {
      mu_.lock();
      return;
    }
    lock_profiled();
  }

  void unlock() CQ_RELEASE() {
    // hold_start_ns_ is owned by the lock holder (synchronized by mu_
    // itself); non-zero only when the acquisition went through the
    // profiled path, so the off path stays clock-free.
    if (hold_start_ns_ != 0) note_release();
#if defined(CQ_LOCK_ORDER_CHECKS)
    if (site_ != nullptr) lockorder::on_unlock(this);
#endif
    mu_.unlock();
    CQ_SCHED_POINT("mutex.unlock");
  }

  [[nodiscard]] bool try_lock() CQ_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if defined(CQ_LOCK_ORDER_CHECKS)
    // A successful try_lock cannot deadlock, so ranks are not enforced —
    // but the lock *is* now held, so it joins the stack (later blocking
    // acquisitions rank-check against it) and the edge graph.
    if (site_ != nullptr) {
      lockorder::on_lock(this, site_, rank_, order_key_, order_site(),
                         /*blocking=*/false);
    }
#endif
    if (site_ != nullptr && lockprof::enabled()) note_uncontended();
    return true;
  }

  /// Declared acquisition rank (0 = unranked).
  [[nodiscard]] std::uint16_t rank() const noexcept { return rank_; }

 private:
  void lock_profiled() noexcept {
    lockprof::SiteStats* s = stats();
    if (s == nullptr) {  // site table full: behave like an unnamed mutex
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {
      s->acquisitions.fetch_add(1, std::memory_order_relaxed);
      hold_start_ns_ = lockprof::now_ns();
      return;
    }
    const std::uint64_t t0 = lockprof::now_ns();
    mu_.lock();
    const std::uint64_t acquired = lockprof::now_ns();
    const std::uint64_t wait = acquired - t0;
    s->acquisitions.fetch_add(1, std::memory_order_relaxed);
    s->contended.fetch_add(1, std::memory_order_relaxed);
    s->wait_ns.fetch_add(wait, std::memory_order_relaxed);
    s->wait_us.record(wait / 1000);
    hold_start_ns_ = acquired;
  }

  void note_uncontended() noexcept {
    if (lockprof::SiteStats* s = stats()) {
      s->acquisitions.fetch_add(1, std::memory_order_relaxed);
      hold_start_ns_ = lockprof::now_ns();
    }
  }

  void note_release() noexcept {
    const std::uint64_t held = lockprof::now_ns() - hold_start_ns_;
    hold_start_ns_ = 0;
    if (lockprof::SiteStats* s = stats_.load(std::memory_order_relaxed)) {
      s->hold_ns.fetch_add(held, std::memory_order_relaxed);
      s->hold_us.record(held / 1000);
    }
  }

  [[nodiscard]] lockprof::SiteStats* stats() noexcept {
    lockprof::SiteStats* s = stats_.load(std::memory_order_acquire);
    if (s == nullptr) {
      s = lockprof::register_site(site_);
      if (s != nullptr) stats_.store(s, std::memory_order_release);
    }
    return s;
  }

#if defined(CQ_LOCK_ORDER_CHECKS)
  /// Lazily registered lock-order graph slot (first lock of any instance
  /// of this site wins; instances sharing a site literal share the slot).
  [[nodiscard]] std::uint32_t order_site() noexcept {
    std::uint32_t s = order_site_.load(std::memory_order_relaxed);
    if (s == kOrderSiteUnset) {
      s = lockorder::register_site(site_, rank_);
      order_site_.store(s, std::memory_order_relaxed);
    }
    return s;
  }
#endif

  std::mutex mu_;
  const char* site_ = nullptr;
  std::uint16_t rank_ = 0;       // lockorder::LockRank; 0 = unranked
  std::uint32_t order_key_ = 0;  // cohort index; 0 = not a cohort member
  std::atomic<lockprof::SiteStats*> stats_{nullptr};
#if defined(CQ_LOCK_ORDER_CHECKS)
  static constexpr std::uint32_t kOrderSiteUnset = lockorder::kNoSite - 1;
  std::atomic<std::uint32_t> order_site_{kOrderSiteUnset};
#endif
  // Steady-clock instant the current profiled hold began; 0 when the hold
  // is unprofiled. Written only by the holding thread, ordered by mu_.
  std::uint64_t hold_start_ns_ = 0;
};

/// std::lock_guard over Mutex, visible to the analysis: constructing one
/// acquires the capability for the enclosing scope.
class CQ_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) CQ_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() CQ_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on the annotated Mutex. Built on
/// std::condition_variable_any, which accepts any BasicLockable — so the
/// waiters stay inside the lock discipline instead of reaching for a raw
/// std::mutex. wait() releases and re-acquires the mutex internally; the
/// analysis cannot see that handoff, so the contract is the honest one:
/// the caller holds the mutex before and after the call.
///
/// Because the internal handoff goes through Mutex::unlock()/lock(), the
/// runtime instrumentation stays exact across waits: lockprof attributes
/// hold time only to the spans the mutex is actually held (the blocked
/// wait is excluded), and the lock-order held stack pops on entry and
/// re-pushes (re-rank-checked) on wakeup — asserted by the observability
/// suite.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) CQ_REQUIRES(mu) CQ_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) CQ_REQUIRES(mu) CQ_NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) cv_.wait(mu);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cq::common

namespace cq {
// The short spellings used across the tree: cq::Mutex / cq::LockGuard.
using common::CondVar;
using common::LockGuard;
using common::Mutex;
}  // namespace cq
