// Deterministic random number generation for workloads and property tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cq::common {

/// xoshiro256** — fast, high-quality, reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  bool chance(double p) noexcept;

  /// Zipfian-distributed rank in [0, n) with skew theta (0 = uniform-ish).
  /// Uses the classic rejection-free approximation of Gray et al.
  std::uint64_t zipf(std::uint64_t n, double theta);

  /// Random lowercase ASCII string of the given length.
  std::string string(std::size_t length);

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  // Cached zipf parameters so repeated draws over the same (n, theta) are cheap.
  std::uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace cq::common
