// Logical timestamps for differential relations and continual-query state.
//
// The paper (Section 4.1) only requires "a system clock, or any other
// monotonically increasing source of timestamps". We therefore model time as
// a strong int64 wrapper and let a Clock implementation (clock.hpp) decide
// whether ticks come from a deterministic logical counter or the wall clock.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>
#include <string>

namespace cq::common {

/// A monotonically increasing logical instant. Ordered, hashable, printable.
class Timestamp {
 public:
  using rep = std::int64_t;

  constexpr Timestamp() noexcept = default;
  constexpr explicit Timestamp(rep ticks) noexcept : ticks_(ticks) {}

  /// The earliest representable instant; every real timestamp compares later.
  [[nodiscard]] static constexpr Timestamp min() noexcept {
    return Timestamp(std::numeric_limits<rep>::min());
  }
  /// The latest representable instant.
  [[nodiscard]] static constexpr Timestamp max() noexcept {
    return Timestamp(std::numeric_limits<rep>::max());
  }
  /// Conventional "beginning of history" (tick 0).
  [[nodiscard]] static constexpr Timestamp zero() noexcept { return Timestamp(0); }

  [[nodiscard]] constexpr rep ticks() const noexcept { return ticks_; }

  constexpr auto operator<=>(const Timestamp&) const noexcept = default;

  /// The immediately following instant. Saturates at max().
  [[nodiscard]] constexpr Timestamp next() const noexcept {
    return ticks_ == std::numeric_limits<rep>::max() ? *this : Timestamp(ticks_ + 1);
  }

  [[nodiscard]] std::string to_string() const { return std::to_string(ticks_); }

 private:
  rep ticks_ = 0;
};

/// A length of logical time, used by periodic trigger conditions.
class Duration {
 public:
  using rep = std::int64_t;

  constexpr Duration() noexcept = default;
  constexpr explicit Duration(rep ticks) noexcept : ticks_(ticks) {}

  [[nodiscard]] constexpr rep ticks() const noexcept { return ticks_; }
  constexpr auto operator<=>(const Duration&) const noexcept = default;

 private:
  rep ticks_ = 0;
};

[[nodiscard]] constexpr Timestamp operator+(Timestamp t, Duration d) noexcept {
  return Timestamp(t.ticks() + d.ticks());
}
[[nodiscard]] constexpr Duration operator-(Timestamp a, Timestamp b) noexcept {
  return Duration(a.ticks() - b.ticks());
}

}  // namespace cq::common

template <>
struct std::hash<cq::common::Timestamp> {
  std::size_t operator()(const cq::common::Timestamp& t) const noexcept {
    return std::hash<cq::common::Timestamp::rep>{}(t.ticks());
  }
};
