#include "common/clock.hpp"

#include <chrono>

namespace cq::common {

void VirtualClock::advance_to(Timestamp t) noexcept {
  auto cur = now_.load(std::memory_order_relaxed);
  while (t.ticks() > cur &&
         !now_.compare_exchange_weak(cur, t.ticks(), std::memory_order_relaxed)) {
  }
}

namespace {
Timestamp::rep wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Timestamp SystemClock::now() const {
  auto t = wall_ns();
  auto prev = last_.load(std::memory_order_relaxed);
  while (t > prev && !last_.compare_exchange_weak(prev, t, std::memory_order_relaxed)) {
  }
  return Timestamp(last_.load(std::memory_order_relaxed));
}

Timestamp SystemClock::tick() {
  auto t = wall_ns();
  auto prev = last_.load(std::memory_order_relaxed);
  for (;;) {
    auto next = t > prev ? t : prev + 1;
    if (last_.compare_exchange_weak(prev, next, std::memory_order_relaxed)) {
      return Timestamp(next);
    }
  }
}

}  // namespace cq::common
