// Clock abstraction: the single source of timestamps for a database.
//
// Tests and benchmarks use VirtualClock so every run is deterministic and
// trigger conditions like "once a week" can be exercised without waiting.
#pragma once

#include <atomic>
#include <memory>

#include "common/timestamp.hpp"

namespace cq::common {

/// Source of monotonically increasing timestamps.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current instant. Repeated calls never go backwards.
  [[nodiscard]] virtual Timestamp now() const = 0;

  /// Returns a timestamp strictly greater than any previously returned by
  /// tick(); used to stamp commits so no two commits share an instant.
  virtual Timestamp tick() = 0;
};

/// Deterministic logical clock. now() is the last ticked instant; advance()
/// lets scenarios jump forward (e.g. "a week later") without real waiting.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Timestamp start = Timestamp::zero()) noexcept
      : now_(start.ticks()) {}

  [[nodiscard]] Timestamp now() const override {
    return Timestamp(now_.load(std::memory_order_relaxed));
  }

  Timestamp tick() override {
    return Timestamp(now_.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  /// Jump the clock forward by d. No-op for non-positive durations.
  void advance(Duration d) noexcept {
    if (d.ticks() > 0) now_.fetch_add(d.ticks(), std::memory_order_relaxed);
  }

  /// Set the clock to t if t is later than the current instant.
  void advance_to(Timestamp t) noexcept;

 private:
  std::atomic<Timestamp::rep> now_;
};

/// Wall-clock nanoseconds since epoch, forced monotone across calls.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] Timestamp now() const override;
  Timestamp tick() override;

 private:
  mutable std::atomic<Timestamp::rep> last_{0};
};

}  // namespace cq::common
