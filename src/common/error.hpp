// Error hierarchy. Invalid usage of the public API throws; internal
// invariant violations use CQ_ASSERT which throws InternalError so tests can
// observe them (rather than aborting the whole test binary).
#pragma once

#include <stdexcept>
#include <string>

namespace cq::common {

/// Root of all library errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The caller supplied something malformed (bad schema, unknown column, ...).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Two schemas/types that must agree do not.
class SchemaMismatch : public InvalidArgument {
 public:
  using InvalidArgument::InvalidArgument;
};

/// Lookup of a named object (relation, column, CQ) failed.
class NotFound : public Error {
 public:
  using Error::Error;
};

/// SQL-subset parser rejected the input.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// An operation is not supported in the current state (e.g. feeding a
/// deletion to the append-only Terry baseline).
class Unsupported : public Error {
 public:
  using Error::Error;
};

/// A filesystem operation (trace dump, stats export) failed.
class IoError : public Error {
 public:
  using Error::Error;
};

/// A library invariant was violated; indicates a bug in this library.
class InternalError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] inline void internal_fail(const char* expr, const char* file, int line) {
  throw InternalError(std::string("invariant failed: ") + expr + " at " + file + ":" +
                      std::to_string(line));
}

}  // namespace cq::common

#define CQ_ASSERT(expr)                                             \
  do {                                                              \
    if (!(expr)) ::cq::common::internal_fail(#expr, __FILE__, __LINE__); \
  } while (false)
