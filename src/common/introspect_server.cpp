#include "common/introspect_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace cq::common::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;
constexpr int kIoTimeoutMs = 5000;

/// Thread-safe errno rendering (std::strerror shares one static buffer —
/// concurrency-mt-unsafe). strerror_r has two signatures; cover both.
std::string errno_message(int err) {
  char buf[128] = {};
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return strerror_r(err, buf, sizeof(buf));  // GNU: may return a static string
#else
  strerror_r(err, buf, sizeof(buf));  // XSI: fills buf
  return buf;
#endif
}

const char* reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Blocking full write with a poll guard; best-effort (the peer may close).
void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, kIoTimeoutMs) <= 0) return;
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint64_t HttpRequest::query_u64(const std::string& key,
                                     std::uint64_t fallback) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      const std::string v = pair.substr(eq + 1);
      if (!v.empty() && v.find_first_not_of("0123456789") == std::string::npos) {
        return std::stoull(v);
      }
      return fallback;
    }
    pos = amp + 1;
  }
  return fallback;
}

std::string HttpRequest::query_str(const std::string& key,
                                   std::string fallback) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return fallback;
}

HttpResponse HttpResponse::text(std::string body, int status) {
  return {status, "text/plain; charset=utf-8", std::move(body)};
}

HttpResponse HttpResponse::json(std::string body, int status) {
  return {status, "application/json", std::move(body)};
}

IntrospectServer::~IntrospectServer() { stop(); }

void IntrospectServer::route(std::string path, Handler handler) {
  // The serve thread reads routes_ without a lock; that is only race-free
  // because every write happens-before the thread is created in start().
  // Registering a route on a live server would be a data race — refuse.
  if (running_.load()) {
    throw InvalidArgument("IntrospectServer: route() after start() would race "
                          "the serve thread; register routes before starting");
  }
  routes_[std::move(path)] = std::move(handler);
}

void IntrospectServer::start(std::uint16_t port) {
  if (running_.load()) throw InvalidArgument("IntrospectServer: already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("IntrospectServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = errno_message(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("IntrospectServer: bind to port " + std::to_string(port) +
                  " failed: " + err);
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("IntrospectServer: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(stop_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("IntrospectServer: pipe() failed");
  }

  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  log_info("introspection server listening on http://127.0.0.1:", port_, "/");
}

void IntrospectServer::stop() {
  if (!running_.exchange(false)) return;
  // Wake the poll loop.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void IntrospectServer::serve_loop() {
  while (running_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready <= 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || !running_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void IntrospectServer::handle_connection(int fd) {
  // Read until the end of the header block (we never accept bodies).
  std::string raw;
  while (raw.size() < kMaxRequestBytes && raw.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, kIoTimeoutMs) <= 0) return;
    char buf[2048];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    raw.append(buf, static_cast<std::size_t>(n));
  }

  HttpRequest req;
  HttpResponse resp;
  const std::size_t line_end = raw.find("\r\n");
  const std::string line = raw.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = HttpResponse::text("malformed request line\n", 400);
  } else {
    req.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      req.query = target.substr(qmark + 1);
      target.resize(qmark);
    }
    req.path = target;

    if (req.method != "GET" && req.method != "HEAD") {
      resp = HttpResponse::text("only GET is supported\n", 405);
    } else if (auto it = routes_.find(req.path); it != routes_.end()) {
      try {
        resp = it->second(req);
      } catch (const std::exception& e) {
        resp = HttpResponse::text(std::string("handler error: ") + e.what() + "\n", 500);
      }
    } else if (req.path == "/") {
      std::string index = "cq introspection endpoints:\n";
      for (const auto& [path, h] : routes_) index += "  " + path + "\n";
      resp = HttpResponse::text(std::move(index));
    } else {
      resp = HttpResponse::text("no such endpoint: " + req.path + "\n", 404);
    }
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    reason_phrase(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (req.method != "HEAD") out += resp.body;
  write_all(fd, out);
}

}  // namespace cq::common::obs
