// A tiny dependency-free HTTP/1.1 server for live introspection: POSIX
// sockets, one background thread running a single-threaded accept loop,
// one request per connection (Connection: close). Deliberately minimal —
// enough for curl, Prometheus scrapes, and the cqtop dashboard, not a
// general web server.
//
// Usage:
//   obs::IntrospectServer server;
//   server.route("/metrics", [&](const obs::HttpRequest&) {
//     return obs::HttpResponse::text(render_prometheus(...));
//   });
//   server.start(9090);      // port 0 picks an ephemeral port
//   ... server.port() ...
//   server.stop();           // also runs at destruction
//
// Handlers run on the server thread: wire handlers that touch engine
// state through a mutex shared with the engine loop (see
// diom::serve_introspection and cqshell SERVE).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace cq::common::obs {

struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string path;    // "/metrics" (query string stripped)
  std::string query;   // "n=100" (no leading '?')

  /// Integer query parameter `key`, or `fallback` when absent/malformed.
  [[nodiscard]] std::uint64_t query_u64(const std::string& key,
                                        std::uint64_t fallback) const;

  /// String query parameter `key` (raw, no percent-decoding), or
  /// `fallback` when absent.
  [[nodiscard]] std::string query_str(const std::string& key,
                                      std::string fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  [[nodiscard]] static HttpResponse text(std::string body, int status = 200);
  [[nodiscard]] static HttpResponse json(std::string body, int status = 200);
};

class IntrospectServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  IntrospectServer() = default;
  ~IntrospectServer();

  IntrospectServer(const IntrospectServer&) = delete;
  IntrospectServer& operator=(const IntrospectServer&) = delete;

  /// Register the handler for an exact path. Must be called before
  /// start() — the serve thread reads the route table without a lock, so
  /// routing on a live server throws InvalidArgument. Unrouted paths
  /// answer 404; "/" answers with a plain-text index of the routed paths.
  void route(std::string path, Handler handler);

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and serve on a background
  /// thread. Throws common::IoError on socket/bind failure.
  void start(std::uint16_t port);

  /// Stop the loop and join the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  /// The bound port (useful after start(0)).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load();
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  // routes_ is written only before start() (enforced there) and read by
  // the serve thread; thread creation orders the writes before the reads,
  // so no mutex is needed. requests_ is atomic: handler threads increment
  // while /stats-style callers read requests_served().
  std::map<std::string, Handler> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  // self-pipe: stop() wakes the poll loop
};

}  // namespace cq::common::obs
