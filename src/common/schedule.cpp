#include "common/schedule.hpp"

#include <chrono>
#include <thread>

namespace cq::common::schedule {

namespace {

std::atomic<std::uint64_t> g_seed{0};
std::atomic<std::uint32_t> g_epoch{0};
std::atomic<std::uint32_t> g_next_ordinal{0};
std::atomic<std::uint64_t> g_injected{0};

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct ThreadStream {
  std::uint32_t epoch = 0;
  std::uint64_t state = 0;
};

ThreadStream& stream() noexcept {
  thread_local ThreadStream s;
  thread_local std::uint32_t ordinal =
      g_next_ordinal.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t epoch = g_epoch.load(std::memory_order_acquire);
  if (s.epoch != epoch) {
    s.epoch = epoch;
    std::uint64_t mix = g_seed.load(std::memory_order_relaxed) ^
                        (static_cast<std::uint64_t>(ordinal) << 32 | epoch);
    // Two warm-up rounds decorrelate neighbouring ordinals.
    splitmix64(mix);
    s.state = splitmix64(mix) + mix;
  }
  return s;
}

}  // namespace

void enable(std::uint64_t seed) noexcept {
  g_seed.store(seed, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  detail::g_enabled.store(true, std::memory_order_release);
}

void disable() noexcept {
  detail::g_enabled.store(false, std::memory_order_release);
}

void perturb(const char* where) noexcept {
  if (!enabled()) return;
  ThreadStream& s = stream();
  // Fold the point-class label in so lock() and unlock() points on one
  // thread draw decorrelated streams. The label is a compile-time literal
  // — hashing its address is stable within a run, which is all the
  // determinism contract needs (streams are per (seed, thread) anyway).
  std::uint64_t draw = splitmix64(s.state) ^
                       (reinterpret_cast<std::uintptr_t>(where) * 0x9e3779b97f4a7c15ULL);
  const unsigned kind = static_cast<unsigned>(draw & 0x3f);
  if (kind < 8) {  // ~1/8 of points: give up the timeslice
    g_injected.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  } else if (kind < 10) {  // ~1/32: a real delay, 1..128 microseconds
    g_injected.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(1 + ((draw >> 6) & 0x7f)));
  }
}

std::uint64_t injected() noexcept {
  return g_injected.load(std::memory_order_relaxed);
}

}  // namespace cq::common::schedule
