#include "common/lock_profile.hpp"

#include <chrono>
#include <cstring>

namespace cq::common::lockprof {

std::uint64_t now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock::now().time_since_epoch())
          .count());
}

namespace {

SiteStats g_sites[kMaxSites];
std::atomic<std::size_t> g_site_count{0};

}  // namespace

SiteStats* register_site(const char* name) noexcept {
  if (name == nullptr) return nullptr;
  const std::size_t n = g_site_count.load(std::memory_order_acquire);
  // Same literal (pointer) or same spelling: reuse the slot, so every
  // "engine" mutex in the process lands in one aggregated row.
  for (std::size_t i = 0; i < n; ++i) {
    const char* existing = g_sites[i].name.load(std::memory_order_acquire);
    if (existing == name || (existing != nullptr && std::strcmp(existing, name) == 0)) {
      return &g_sites[i];
    }
  }
  // Claim the next free slot. Racing registrants may briefly create a
  // duplicate spelling (two threads registering the same new name); both
  // slots stay valid and export distinguishes nothing — acceptable for a
  // profiler, and impossible for the engine's compile-time site constants
  // which all register through static locals in sync.hpp.
  for (;;) {
    std::size_t slot = g_site_count.load(std::memory_order_relaxed);
    if (slot >= kMaxSites) return nullptr;
    if (!g_site_count.compare_exchange_weak(slot, slot + 1,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    g_sites[slot].name.store(name, std::memory_order_release);
    return &g_sites[slot];
  }
}

std::size_t site_count() noexcept {
  const std::size_t n = g_site_count.load(std::memory_order_acquire);
  // A slot is published once its name lands; trim a slot claimed but not
  // yet named by a racing registrant.
  std::size_t ready = 0;
  while (ready < n && g_sites[ready].name.load(std::memory_order_acquire) != nullptr) {
    ++ready;
  }
  return ready;
}

const SiteStats& site(std::size_t i) noexcept { return g_sites[i]; }

void reset() noexcept {
  const std::size_t n = site_count();
  for (std::size_t i = 0; i < n; ++i) {
    SiteStats& s = g_sites[i];
    s.acquisitions.store(0, std::memory_order_relaxed);
    s.contended.store(0, std::memory_order_relaxed);
    s.wait_ns.store(0, std::memory_order_relaxed);
    s.hold_ns.store(0, std::memory_order_relaxed);
    s.wait_us.reset();
    s.hold_us.reset();
  }
}

}  // namespace cq::common::lockprof
