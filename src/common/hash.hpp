// Hash combining utilities (boost-style mixing with a 64-bit finalizer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cq::common {

/// Mix a new 64-bit value into an accumulated hash seed.
constexpr std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t v) noexcept {
  // splitmix64 finalizer applied to the combination.
  std::uint64_t x = seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combine the std::hash of v into seed.
template <typename T>
std::size_t hash_combine(std::size_t seed, const T& v) {
  return static_cast<std::size_t>(
      hash_mix(static_cast<std::uint64_t>(seed),
               static_cast<std::uint64_t>(std::hash<T>{}(v))));
}

}  // namespace cq::common
