// Observability: tracing spans, latency histograms, a process-global
// registry, and a JSON exporter.
//
// Design goals (in order):
//   1. *Disabled is free.* Every hot-path instrumentation site compiles to
//      one relaxed atomic load and a branch when tracing is off — no clock
//      reads, no allocation, no locking. Benchmarks therefore run at seed
//      speed unless --stats-json / set_enabled(true) opts in.
//   2. *Bounded memory.* Completed spans land in a fixed-capacity ring
//      buffer; old events are overwritten, never accumulated.
//   3. *One exporter.* export_json() serializes counters + histograms +
//      caller-supplied sections (per-CQ stats, per-source sync stats) into
//      a single JSON document, and the trace ring dumps to a
//      chrome://tracing-compatible event array.
//
// Thread safety: the enable flag is atomic and the TraceCollector and the
// Registry's histogram map are mutex-guarded (the multi-source sync path
// may one day run sources on worker threads). Histogram::record and the
// Metrics bag are NOT internally synchronized — see metrics.hpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/event_log.hpp"
#include "common/metrics.hpp"
#include "common/sync.hpp"

namespace cq::common::obs {

// ---------------------------------------------------------------- enable --

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Is span/histogram collection on? One relaxed load — safe to call in the
/// innermost loops.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic nanoseconds since the first call in this process.
[[nodiscard]] std::uint64_t now_ns() noexcept;

// ------------------------------------------------------------- Histogram --

/// Fixed log2-bucketed histogram of non-negative integer samples (the
/// engine records latencies in microseconds). Sample v lands in bucket
/// bit_width(v): [0], [1], [2,3], [4,7], ... so 64 buckets cover the full
/// uint64 range with <2x relative error, refined by linear interpolation
/// inside the winning bucket and clamped to the observed [min, max].
///
/// Thread-safe: the parallel evaluation engine records from worker threads
/// (dra_exec_us, eval_batch_us), so every field is a relaxed atomic.
/// record() is wait-free except for the min/max CAS loops; readers see a
/// possibly-torn but monotone view (count may momentarily lag sum), which
/// is fine for monitoring and exact once the writers quiesce.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width in [0, 64]

  Histogram() = default;
  Histogram(const Histogram& other) noexcept { copy_from(other); }
  Histogram& operator=(const Histogram& other) noexcept {
    if (this != &other) copy_from(other);
    return *this;
  }

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return load(count_); }
  [[nodiscard]] std::uint64_t sum() const noexcept { return load(sum_); }
  /// Raw count of bucket b (samples with bit_width == b).
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return b < kBuckets ? load(buckets_[b]) : 0;
  }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return load(count_) == 0 ? 0 : load(min_);
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return load(max_); }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = load(count_);
    return n == 0 ? 0.0 : static_cast<double>(load(sum_)) / static_cast<double>(n);
  }

  /// Estimated value at percentile p in [0, 100]. 0 when empty; exact for
  /// a single sample (interpolation clamps to [min, max]).
  [[nodiscard]] double percentile(double p) const noexcept;
  [[nodiscard]] double p50() const noexcept { return percentile(50); }
  [[nodiscard]] double p95() const noexcept { return percentile(95); }
  [[nodiscard]] double p99() const noexcept { return percentile(99); }

  void reset() noexcept;

  /// One-line summary: count/mean/p50/p95/p99/max.
  [[nodiscard]] std::string to_string() const;

 private:
  static std::uint64_t load(const std::atomic<std::uint64_t>& v) noexcept {
    return v.load(std::memory_order_relaxed);
  }
  void copy_from(const Histogram& other) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  // Sentinel UINT64_MAX = "no sample yet"; min() hides it behind count_.
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

// ----------------------------------------------------------------- gauge --

/// A value that can go up and down: resource levels (relation rows/bytes,
/// delta backlog, queue depths, staleness). Atomic so the introspection
/// HTTP server can read gauges from its own thread while the engine
/// updates them.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) noexcept { value_.fetch_sub(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Prometheus-style label set: (key, value) pairs, e.g. {{"table","Stocks"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One gauge reading, for export.
struct GaugeSample {
  std::string name;
  Labels labels;
  std::int64_t value = 0;
};

/// Well-known gauge family names (labels in parentheses).
namespace gauge {
inline constexpr const char* kRelationRows = "relation_rows";      // (table)
inline constexpr const char* kRelationBytes = "relation_bytes";    // (table)
inline constexpr const char* kDeltaRows = "delta_rows";            // (table)
inline constexpr const char* kDeltaBytes = "delta_bytes";          // (table)
inline constexpr const char* kActiveCqs = "active_cqs";
inline constexpr const char* kTraceRingEvents = "trace_ring_events";
inline constexpr const char* kTraceRingDropped = "trace_ring_dropped";
inline constexpr const char* kEventLogEvents = "event_log_events";
inline constexpr const char* kEventLogDropped = "event_log_dropped";
inline constexpr const char* kSourceStalenessTicks = "source_staleness_ticks";  // (source)
inline constexpr const char* kSourcePendingRows = "source_pending_rows";        // (source)
/// Tasks queued in the evaluation thread pool, awaiting a worker.
inline constexpr const char* kPoolQueueDepth = "pool_queue_depth";
/// Evaluation lanes the CQ manager dispatches across (1 = sequential).
inline constexpr const char* kEvalParallelism = "eval_parallelism";
}  // namespace gauge

// ----------------------------------------------------------------- trace --

/// One completed span, steady-clock nanoseconds.
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;  // nesting depth at span open (0 = top level)
};

/// Fixed-capacity ring buffer of completed spans. Mutex-guarded: spans may
/// finish on any thread. When full, the oldest events are overwritten and
/// counted in dropped().
class TraceCollector {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceCollector(std::size_t capacity = kDefaultCapacity);

  void record(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint32_t depth);

  /// Events in chronological (insertion) order.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop all events (capacity unchanged).
  void clear();
  /// Resize the ring; clears collected events.
  void set_capacity(std::size_t capacity);

  /// The ring as a chrome://tracing "trace event" JSON array: complete
  /// ("ph":"X") events with microsecond ts/dur. Load via chrome://tracing
  /// or https://ui.perfetto.dev.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`; throws common::IoError on failure.
  void write_chrome_trace(const std::string& path) const;

 private:
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ CQ_GUARDED_BY(mu_);
  std::size_t capacity_ CQ_GUARDED_BY(mu_);
  std::size_t next_ CQ_GUARDED_BY(mu_) = 0;  // ring index of the next write
  std::uint64_t total_ CQ_GUARDED_BY(mu_) = 0;  // events ever recorded
};

/// RAII span: opens at construction, records into the global trace
/// collector at destruction (or close()). When obs::enabled() is false the
/// constructor is one branch and the span records nothing. Optionally
/// feeds its duration (µs) into a Histogram.
class Span {
 public:
  explicit Span(const char* name, Histogram* latency_us = nullptr) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { close(); }

  /// End the span early (idempotent).
  void close() noexcept;

 private:
  const char* name_;
  Histogram* latency_us_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_;
};

// -------------------------------------------------------------- registry --

/// Process-global home of the trace ring, the shared counter bag and the
/// named histograms. Layers that own their own Metrics (CqManager, bench
/// bags) keep doing so; the registry is where cross-layer latency
/// histograms and the trace ring live.
class Registry {
 public:
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] TraceCollector& traces() noexcept { return traces_; }
  [[nodiscard]] const TraceCollector& traces() const noexcept { return traces_; }

  /// The named histogram, created empty on first use. The reference stays
  /// valid for the registry's lifetime (node-stable map). Hot paths should
  /// resolve once:  static auto& h = obs::global().histogram("dra_exec_us");
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Name → copy of every histogram, for export (the live map can grow
  /// concurrently).
  [[nodiscard]] std::map<std::string, Histogram> histogram_snapshot() const;

  /// The gauge for (family, labels), created at zero on first use. Like
  /// histogram(), the reference stays valid for the registry's lifetime —
  /// hot paths resolve once and keep the pointer.
  [[nodiscard]] Gauge& gauge(const std::string& name, Labels labels = {});

  /// Every gauge reading, sorted by (name, labels).
  [[nodiscard]] std::vector<GaugeSample> gauge_snapshot() const;

  /// The structured event journal (see event_log.hpp).
  [[nodiscard]] EventLog& events() noexcept { return events_; }
  [[nodiscard]] const EventLog& events() const noexcept { return events_; }

  /// Zero counters, histograms and gauges; drop trace and journal events.
  void reset();

 private:
  Metrics metrics_;
  TraceCollector traces_;
  EventLog events_;
  mutable Mutex mu_;
  // mu_ guards the *map structure* (growth on first use). The Histogram
  // and Gauge values a lookup hands out stay referenced by hot paths and
  // are internally atomic — parallel evaluation workers record into both
  // concurrently; see the threading notes in docs/static-analysis.md.
  std::map<std::string, Histogram> histograms_ CQ_GUARDED_BY(mu_);
  std::map<std::pair<std::string, Labels>, Gauge> gauges_ CQ_GUARDED_BY(mu_);
};

[[nodiscard]] Registry& global() noexcept;

/// Well-known histogram names (all record microseconds).
namespace hist {
inline constexpr const char* kDraExecUs = "dra_exec_us";
inline constexpr const char* kCqExecUs = "cq_exec_us";
inline constexpr const char* kPollUs = "poll_us";
inline constexpr const char* kGcUs = "gc_us";
inline constexpr const char* kSyncUs = "sync_us";
inline constexpr const char* kNetTransferUs = "net_transfer_us";  // simulated
/// One parallel evaluation batch (a worker's slice of a commit dispatch).
inline constexpr const char* kEvalBatchUs = "eval_batch_us";
}  // namespace hist

/// Append one event to the global journal — a no-op when collection is
/// disabled, so lifecycle call sites need no guard of their own. `logical`
/// is the engine's logical-clock instant (ticks).
inline void event(Severity severity, std::string kind, std::string subject,
                  std::string detail = "", std::int64_t logical = 0) {
  if (!enabled()) return;  // "disabled is free": no journal writes
  global().events().record(severity, std::move(kind), std::move(subject),
                           std::move(detail), logical);
}

/// Refresh the registry's self-describing gauges (trace-ring occupancy and
/// drops, journal occupancy and drops). Called before each export/scrape.
void refresh_registry_gauges();

// ------------------------------------------------------------------ JSON --

/// Minimal streaming JSON writer (objects, arrays, scalars; correct
/// escaping and comma placement). Enough for stats export — not a general
/// serializer.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// key + scalar in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, T v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] std::string str() const { return out_; }

  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void comma();
  std::string out_;
  std::vector<bool> first_;  // per open scope: no element emitted yet
  bool pending_key_ = false;
};

/// Serialize a histogram summary as a JSON object (count, sum, min, max,
/// mean, p50, p95, p99) into `w` (caller supplies the key).
void write_histogram_json(JsonWriter& w, const Histogram& h);

/// A named top-level entry contributed by a higher layer (per-CQ registry,
/// per-source sync stats). `write` must emit exactly one JSON value.
struct Section {
  std::string key;
  std::function<void(JsonWriter&)> write;
};

/// The single stats document:
///   { "counters": {...}, "histograms": {...}, <section.key>: ..., ... }
[[nodiscard]] std::string export_json(const Metrics& counters,
                                      const std::map<std::string, Histogram>& histograms,
                                      const std::vector<Section>& sections = {});

/// Convenience: export the global registry's counters + histograms.
[[nodiscard]] std::string export_json(const Registry& registry,
                                      const std::vector<Section>& sections = {});

}  // namespace cq::common::obs
