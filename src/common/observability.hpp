// Observability: tracing spans, latency histograms, a process-global
// registry, and a JSON exporter.
//
// Design goals (in order):
//   1. *Disabled is free.* Every hot-path instrumentation site compiles to
//      one relaxed atomic load and a branch when tracing is off — no clock
//      reads, no allocation, no locking. Benchmarks therefore run at seed
//      speed unless --stats-json / set_enabled(true) opts in.
//   2. *Bounded memory.* Completed spans land in a fixed-capacity ring
//      buffer; old events are overwritten, never accumulated.
//   3. *One exporter.* export_json() serializes counters + histograms +
//      caller-supplied sections (per-CQ stats, per-source sync stats) into
//      a single JSON document, and the trace ring dumps to a
//      chrome://tracing-compatible event array.
//
// Thread safety: the enable flag is atomic and the TraceCollector and the
// Registry's histogram map are mutex-guarded (the multi-source sync path
// may one day run sources on worker threads). Histogram::record and the
// Metrics bag are NOT internally synchronized — see metrics.hpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/event_log.hpp"
#include "common/histogram.hpp"
#include "common/metrics.hpp"
#include "common/sync.hpp"

namespace cq::common::obs {

// ---------------------------------------------------------------- enable --

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Is span/histogram collection on? One relaxed load — safe to call in the
/// innermost loops.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic nanoseconds since the first call in this process.
[[nodiscard]] std::uint64_t now_ns() noexcept;

// (Histogram lives in common/histogram.hpp — re-exported here so existing
// obs::Histogram users are unaffected by the split.)

// ----------------------------------------------------------------- gauge --

/// A value that can go up and down: resource levels (relation rows/bytes,
/// delta backlog, queue depths, staleness). Atomic so the introspection
/// HTTP server can read gauges from its own thread while the engine
/// updates them.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) noexcept { value_.fetch_sub(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Prometheus-style label set: (key, value) pairs, e.g. {{"table","Stocks"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One gauge reading, for export.
struct GaugeSample {
  std::string name;
  Labels labels;
  std::int64_t value = 0;
};

/// Well-known gauge family names (labels in parentheses).
namespace gauge {
inline constexpr const char* kRelationRows = "relation_rows";      // (table)
inline constexpr const char* kRelationBytes = "relation_bytes";    // (table)
inline constexpr const char* kDeltaRows = "delta_rows";            // (table)
inline constexpr const char* kDeltaBytes = "delta_bytes";          // (table)
inline constexpr const char* kActiveCqs = "active_cqs";
inline constexpr const char* kTraceRingEvents = "trace_ring_events";
inline constexpr const char* kTraceRingDropped = "trace_ring_dropped";
inline constexpr const char* kEventLogEvents = "event_log_events";
inline constexpr const char* kEventLogDropped = "event_log_dropped";
inline constexpr const char* kSourceStalenessTicks = "source_staleness_ticks";  // (source)
inline constexpr const char* kSourcePendingRows = "source_pending_rows";        // (source)
/// Tasks queued in the evaluation thread pool, awaiting a worker.
inline constexpr const char* kPoolQueueDepth = "pool_queue_depth";
/// Evaluation lanes the CQ manager dispatches across (1 = sequential).
inline constexpr const char* kEvalParallelism = "eval_parallelism";
/// Cumulative busy time of one pool lane, microseconds (label lane).
/// Monotonic — exported as a Prometheus counter, not a gauge.
inline constexpr const char* kPoolLaneBusyUs = "pool_lane_busy_us";
/// Lifetime busy fraction of one pool lane, percent (label lane).
inline constexpr const char* kPoolLaneUtilization = "pool_lane_utilization_pct";
/// Heap bytes held by the per-CQ lineage retention rings.
inline constexpr const char* kLineageBytes = "lineage_bytes";
/// Commits applied through one catalog shard (label shard). Monotonic —
/// exported as a Prometheus counter, not a gauge.
inline constexpr const char* kShardCommits = "shard_commits";
}  // namespace gauge

/// Gauge families that are in fact monotonic counters (dropped-event
/// totals, per-lane busy time). They live in the gauge map — set() is the
/// natural way to publish them — but the Prometheus exposition renders
/// them as counters so rate() works.
[[nodiscard]] bool gauge_is_counter(const std::string& name) noexcept;

// ----------------------------------------------------------------- trace --

// --- span context: which commit, how deep, which lane ---
//
// Spans carry causal identity across threads. A commit allocates a trace
// id (CommitTrace below); the id rides in a thread-local SpanContext that
// ThreadPool::run_all captures at enqueue and adopts inside each worker
// (ContextScope), so a worker's eval spans land on the worker's own lane
// track but keep the commit's trace id — one commit's cost breakdown is a
// single trace query.

struct SpanContext {
  std::uint64_t trace_id = 0;  // 0 = not inside any commit
  std::uint32_t depth = 0;     // nesting depth the next span opens at
};

/// This thread's current span context (cheap: thread-local read).
[[nodiscard]] SpanContext current_context() noexcept;

/// RAII adoption of another thread's context: construct with the context
/// captured at enqueue time, and spans opened on this thread until the
/// scope closes inherit its trace id and nest under its depth.
class ContextScope {
 public:
  explicit ContextScope(SpanContext ctx) noexcept;
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;
  ~ContextScope();

 private:
  SpanContext saved_;
};

/// Allocate a fresh process-unique trace id (never 0).
[[nodiscard]] std::uint64_t next_trace_id() noexcept;

// --- lanes: one trace track per thread ---

/// Dense id of the calling thread's trace lane, assigned on first use
/// (0, 1, 2, ... in thread-first-seen order). Becomes the "tid" of every
/// span the thread records.
[[nodiscard]] std::uint32_t lane_id() noexcept;

/// Name the calling thread's lane ("pool-1", "dispatch"); shown as the
/// Perfetto track name via chrome-trace "M" metadata events.
void set_lane_name(std::string name);

/// Like set_lane_name but keeps an existing name (the dispatcher names
/// its lane on first dispatch without clobbering an explicit name).
void name_lane_if_unset(const char* name);

/// The lane's display name; "lane-<id>" when never named.
[[nodiscard]] std::string lane_name(std::uint32_t lane);

/// Lanes handed out so far (ids are 0..lane_count()-1).
[[nodiscard]] std::uint32_t lane_count() noexcept;

/// One completed span, steady-clock nanoseconds.
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;     // nesting depth at span open (0 = top level)
  std::uint32_t tid = 0;       // lane id of the recording thread
  std::uint64_t trace_id = 0;  // owning commit's trace id; 0 = none
};

/// One commit's retained trace: the root interval plus every span recorded
/// under its trace id while it was active (bounded; see
/// kMaxEventsPerTrace).
struct RetainedTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::string label;  // e.g. the tables the commit touched
  std::vector<TraceEvent> events;
};

/// Fixed-capacity ring buffer of completed spans. Mutex-guarded: spans may
/// finish on any thread. When full, the oldest events are overwritten and
/// counted in dropped().
///
/// Besides the ring, the collector retains the N *slowest* commit traces
/// in full (tail-based retention): begin_trace() opens a bounded capture
/// for a trace id, record() copies matching events into it, and
/// end_trace() keeps the capture iff it ranks among the slowest seen.
class TraceCollector {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  /// Commit traces capturable concurrently; excess commits are measured
  /// but not retained.
  static constexpr std::size_t kMaxActiveTraces = 8;
  /// Events one retained trace may hold (a commit dispatching hundreds of
  /// CQs keeps its first 512 spans, enough for the phase breakdown).
  static constexpr std::size_t kMaxEventsPerTrace = 512;
  /// Default tail-retention width (see set_slow_capacity).
  static constexpr std::size_t kDefaultSlowCapacity = 16;

  explicit TraceCollector(std::size_t capacity = kDefaultCapacity);

  void record(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint32_t depth, std::uint32_t tid = 0, std::uint64_t trace_id = 0);

  /// Events in chronological (insertion) order.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop all events and retained traces (capacity unchanged).
  void clear();
  /// Resize the ring; clears collected events.
  void set_capacity(std::size_t capacity);

  // --- tail-based retention of the slowest commits ---

  /// Start capturing events recorded under `trace_id`. No-op when
  /// kMaxActiveTraces captures are already open.
  void begin_trace(std::uint64_t trace_id);

  /// Finish the capture: retain it iff it ranks among the slow_capacity()
  /// slowest traces seen so far.
  void end_trace(std::uint64_t trace_id, std::uint64_t start_ns, std::uint64_t dur_ns,
                 std::string label);

  /// The retained traces, slowest first.
  [[nodiscard]] std::vector<RetainedTrace> slowest() const;

  [[nodiscard]] std::size_t slow_capacity() const;
  /// Resize the retention set (drops the fastest retained traces first).
  void set_slow_capacity(std::size_t n);

  /// The ring as a chrome://tracing "trace event" JSON array: "M" metadata
  /// events naming the process and each lane track, then complete
  /// ("ph":"X") events with microsecond ts/dur, real per-lane tids and the
  /// owning commit's trace id in args. Load via chrome://tracing or
  /// https://ui.perfetto.dev. A non-zero `trace_id` narrows the dump to
  /// one commit: its retained capture when available, else the matching
  /// ring events.
  [[nodiscard]] std::string to_chrome_json(std::uint64_t trace_id = 0) const;

  /// Write to_chrome_json() to `path`; throws common::IoError on failure.
  void write_chrome_trace(const std::string& path) const;

 private:
  void capture(const TraceEvent& event) CQ_REQUIRES(mu_);

  mutable Mutex mu_{"trace_ring", lockorder::LockRank::kTraceRing};
  std::vector<TraceEvent> ring_ CQ_GUARDED_BY(mu_);
  std::size_t capacity_ CQ_GUARDED_BY(mu_);
  std::size_t next_ CQ_GUARDED_BY(mu_) = 0;  // ring index of the next write
  std::uint64_t total_ CQ_GUARDED_BY(mu_) = 0;  // events ever recorded
  std::vector<RetainedTrace> active_ CQ_GUARDED_BY(mu_);   // captures in flight
  std::vector<RetainedTrace> slowest_ CQ_GUARDED_BY(mu_);  // desc by dur_ns
  std::size_t slow_capacity_ CQ_GUARDED_BY(mu_) = kDefaultSlowCapacity;
};

/// RAII span: opens at construction, records into the global trace
/// collector at destruction (or close()). When obs::enabled() is false the
/// constructor is one branch and the span records nothing. Optionally
/// feeds its duration (µs) into a Histogram. The span stamps the thread's
/// current SpanContext (trace id + depth) into the recorded event.
class Span {
 public:
  explicit Span(const char* name, Histogram* latency_us = nullptr) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { close(); }

  /// End the span early (idempotent).
  void close() noexcept;

 private:
  const char* name_;
  Histogram* latency_us_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint32_t depth_ = 0;
  bool active_;
};

/// RAII scope of one commit's trace: allocates the trace id, installs it
/// in this thread's SpanContext, opens a retention capture, and at close
/// records the root "commit" span, feeds commit_to_notify_us, and hands
/// the capture to tail-based retention. Constructed at the top of
/// Transaction::commit; a no-op (one branch) when collection is disabled.
class CommitTrace {
 public:
  CommitTrace() noexcept;
  CommitTrace(const CommitTrace&) = delete;
  CommitTrace& operator=(const CommitTrace&) = delete;
  ~CommitTrace();

  /// Label the retained trace (the touched tables, set once known).
  void set_label(std::string label);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return id_; }

 private:
  std::uint64_t id_ = 0;
  std::uint64_t start_ns_ = 0;
  SpanContext saved_{};
  std::string label_;
  bool active_ = false;
};

// -------------------------------------------------------------- registry --

/// Process-global home of the trace ring, the shared counter bag and the
/// named histograms. Layers that own their own Metrics (CqManager, bench
/// bags) keep doing so; the registry is where cross-layer latency
/// histograms and the trace ring live.
class Registry {
 public:
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] TraceCollector& traces() noexcept { return traces_; }
  [[nodiscard]] const TraceCollector& traces() const noexcept { return traces_; }

  /// The named histogram, created empty on first use. The reference stays
  /// valid for the registry's lifetime (node-stable map). Hot paths should
  /// resolve once:  static auto& h = obs::global().histogram("dra_exec_us");
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Name → copy of every histogram, for export (the live map can grow
  /// concurrently).
  [[nodiscard]] std::map<std::string, Histogram> histogram_snapshot() const;

  /// The gauge for (family, labels), created at zero on first use. Like
  /// histogram(), the reference stays valid for the registry's lifetime —
  /// hot paths resolve once and keep the pointer.
  [[nodiscard]] Gauge& gauge(const std::string& name, Labels labels = {});

  /// Every gauge reading, sorted by (name, labels).
  [[nodiscard]] std::vector<GaugeSample> gauge_snapshot() const;

  /// The structured event journal (see event_log.hpp).
  [[nodiscard]] EventLog& events() noexcept { return events_; }
  [[nodiscard]] const EventLog& events() const noexcept { return events_; }

  /// Zero counters, histograms and gauges; drop trace and journal events.
  void reset();

 private:
  Metrics metrics_;
  TraceCollector traces_;
  EventLog events_;
  mutable Mutex mu_{"obs_registry", lockorder::LockRank::kObsRegistry};
  // mu_ guards the *map structure* (growth on first use). The Histogram
  // and Gauge values a lookup hands out stay referenced by hot paths and
  // are internally atomic — parallel evaluation workers record into both
  // concurrently; see the threading notes in docs/static-analysis.md.
  std::map<std::string, Histogram> histograms_ CQ_GUARDED_BY(mu_);
  std::map<std::pair<std::string, Labels>, Gauge> gauges_ CQ_GUARDED_BY(mu_);
};

[[nodiscard]] Registry& global() noexcept;

/// Well-known histogram names (all record microseconds).
namespace hist {
inline constexpr const char* kDraExecUs = "dra_exec_us";
inline constexpr const char* kCqExecUs = "cq_exec_us";
inline constexpr const char* kPollUs = "poll_us";
inline constexpr const char* kGcUs = "gc_us";
inline constexpr const char* kSyncUs = "sync_us";
inline constexpr const char* kNetTransferUs = "net_transfer_us";  // simulated
/// One parallel evaluation batch (a worker's slice of a commit dispatch).
inline constexpr const char* kEvalBatchUs = "eval_batch_us";
/// Full commit pipeline: transaction commit through the last CQ
/// notification leaving the manager (recorded by CommitTrace).
inline constexpr const char* kCommitToNotifyUs = "commit_to_notify_us";
/// Scheduler queue wait: task enqueue on the pool to execution start.
inline constexpr const char* kPoolTaskWaitUs = "pool_task_wait_us";
/// Time a committer spends blocked acquiring its shard lock set.
inline constexpr const char* kCommitLockWaitUs = "commit_lock_wait_us";
/// Base deltas cited per notification output row (a fan-in count, not a
/// latency — still a log2 histogram).
inline constexpr const char* kLineageFanin = "lineage_fanin";
}  // namespace hist

/// Append one event to the global journal — a no-op when collection is
/// disabled, so lifecycle call sites need no guard of their own. `logical`
/// is the engine's logical-clock instant (ticks). The calling thread's
/// current trace id is stamped onto the line automatically, so events
/// recorded inside a commit (trigger_fired, cq_delivered, ...) join
/// against /trace?trace_id= without timestamp guessing.
inline void event(Severity severity, std::string kind, std::string subject,
                  std::string detail = "", std::int64_t logical = 0) {
  if (!enabled()) return;  // "disabled is free": no journal writes
  global().events().record(severity, std::move(kind), std::move(subject),
                           std::move(detail), logical,
                           current_context().trace_id);
}

/// Refresh the registry's self-describing gauges (trace-ring occupancy and
/// drops, journal occupancy and drops), then run every registered refresh
/// hook. Called before each export/scrape.
void refresh_registry_gauges();

/// Register `fn` to run inside refresh_registry_gauges() — how components
/// with live internal state (the thread pool's per-lane busy clocks)
/// publish gauges only when someone scrapes. Returns a handle for
/// unregister_refresh_hook; unregister blocks until no refresh is running
/// the hook, so the component may be destroyed right after.
[[nodiscard]] std::uint64_t register_refresh_hook(std::function<void()> fn);
void unregister_refresh_hook(std::uint64_t id);

/// The /profile document: lock-contention sites, pool lane utilization,
/// scheduler + commit latency histograms, and the slowest retained commit
/// traces with a per-phase duration rollup. Refreshes gauges first.
[[nodiscard]] std::string export_profile_json();

// ------------------------------------------------------------------ JSON --

/// Minimal streaming JSON writer (objects, arrays, scalars; correct
/// escaping and comma placement). Enough for stats export — not a general
/// serializer.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// key + scalar in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, T v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] std::string str() const { return out_; }

  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void comma();
  std::string out_;
  std::vector<bool> first_;  // per open scope: no element emitted yet
  bool pending_key_ = false;
};

/// Serialize a histogram summary as a JSON object (count, sum, min, max,
/// mean, p50, p95, p99) into `w` (caller supplies the key).
void write_histogram_json(JsonWriter& w, const Histogram& h);

/// A named top-level entry contributed by a higher layer (per-CQ registry,
/// per-source sync stats). `write` must emit exactly one JSON value.
struct Section {
  std::string key;
  std::function<void(JsonWriter&)> write;
};

/// A Section describing the global event journal's cursor state —
/// {"last_seq": N, "dropped": M, "size": K} — so /stats consumers learn
/// the seq to pass as /events?since= without fetching the journal itself.
[[nodiscard]] Section events_section();

/// The single stats document:
///   { "counters": {...}, "histograms": {...}, <section.key>: ..., ... }
[[nodiscard]] std::string export_json(const Metrics& counters,
                                      const std::map<std::string, Histogram>& histograms,
                                      const std::vector<Section>& sections = {});

/// Convenience: export the global registry's counters + histograms.
[[nodiscard]] std::string export_json(const Registry& registry,
                                      const std::vector<Section>& sections = {});

}  // namespace cq::common::obs
