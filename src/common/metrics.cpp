#include "common/metrics.hpp"

#include <sstream>

namespace cq::common {

namespace metric {

const char* name(Id id) noexcept {
  switch (id) {
    case kRowsScanned: return "rows_scanned";
    case kRowsOutput: return "rows_output";
    case kTuplesCompared: return "tuples_compared";
    case kBytesSent: return "bytes_sent";
    case kMessagesSent: return "messages_sent";
    case kDeltaRowsScanned: return "delta_rows_scanned";
    case kBaseRowsScanned: return "base_rows_scanned";
    case kQueryExecutions: return "query_executions";
    case kTriggerChecks: return "trigger_checks";
    case kTriggersFired: return "triggers_fired";
    case kTriggersSuppressed: return "triggers_suppressed";
    case kGcRuns: return "gc_runs";
    case kGcRowsReclaimed: return "gc_rows_reclaimed";
    case kSyncRounds: return "sync_rounds";
    case kSyncFailures: return "sync_failures";
    case kSyncRowsApplied: return "sync_rows_applied";
    case kIndexProbes: return "index_probes";
    case kDraInvocations: return "dra_invocations";
    case kDraTermsEvaluated: return "dra_terms_evaluated";
    case kDraSkippedIrrelevant: return "dra_skipped_irrelevant";
    case kIdCount: break;
  }
  return "?";
}

Id from_name(const std::string& name_text) noexcept {
  for (std::uint16_t i = 0; i < kIdCount; ++i) {
    const Id id = static_cast<Id>(i);
    if (name_text == name(id)) return id;
  }
  return kIdCount;
}

}  // namespace metric

void Metrics::add(const std::string& name, std::int64_t delta) {
  const metric::Id id = metric::from_name(name);
  if (id != metric::kIdCount) {
    add(id, delta);
  } else {
    custom_[name] += delta;
  }
}

std::int64_t Metrics::get(const std::string& name) const noexcept {
  const metric::Id id = metric::from_name(name);
  if (id != metric::kIdCount) return get(id);
  auto it = custom_.find(name);
  return it == custom_.end() ? 0 : it->second;
}

std::map<std::string, std::int64_t> Metrics::all() const {
  std::map<std::string, std::int64_t> out = custom_;
  for (std::uint16_t i = 0; i < metric::kIdCount; ++i) {
    const auto id = static_cast<metric::Id>(i);
    if (wellknown_[i] != 0) out[metric::name(id)] = wellknown_[i];
  }
  return out;
}

void Metrics::merge(const Metrics& other) {
  for (std::size_t i = 0; i < wellknown_.size(); ++i) wellknown_[i] += other.wellknown_[i];
  for (const auto& [name, value] : other.custom_) custom_[name] += value;
}

std::string Metrics::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : all()) os << name << "=" << value << "\n";
  return os.str();
}

}  // namespace cq::common
