#include "common/metrics.hpp"

#include <sstream>

namespace cq::common {

void Metrics::add(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

std::int64_t Metrics::get(const std::string& name) const noexcept {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string Metrics::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) os << name << "=" << value << "\n";
  return os.str();
}

}  // namespace cq::common
