#include "common/event_log.hpp"

#include "common/observability.hpp"

namespace cq::common::obs {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 256));
}

void EventLog::record(Severity severity, std::string kind, std::string subject,
                      std::string detail, std::int64_t logical,
                      std::uint64_t trace_id) {
  const std::uint64_t at = now_ns();
  LockGuard lock(mu_);
  Event event{++total_,        at,
              logical,         trace_id,
              severity,        std::move(kind),
              std::move(subject), std::move(detail)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_ % capacity_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<Event> EventLog::tail(std::size_t n, std::uint64_t since_seq) const {
  LockGuard lock(mu_);
  std::vector<Event> out;
  const std::size_t have = ring_.size();
  const std::size_t want = std::min(n, have);
  out.reserve(want);
  // Chronological start of the ring: index next_ once it has wrapped.
  const std::size_t base = have < capacity_ ? 0 : next_;
  for (std::size_t i = have - want; i < have; ++i) {
    const Event& e = ring_[(base + i) % have];
    if (e.seq > since_seq) out.push_back(e);
  }
  return out;
}

std::size_t EventLog::size() const {
  LockGuard lock(mu_);
  return ring_.size();
}

std::size_t EventLog::capacity() const {
  LockGuard lock(mu_);
  return capacity_;
}

std::uint64_t EventLog::dropped() const {
  LockGuard lock(mu_);
  return total_ - ring_.size();
}

std::uint64_t EventLog::total() const {
  LockGuard lock(mu_);
  return total_;
}

void EventLog::clear() {
  LockGuard lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void EventLog::set_capacity(std::size_t capacity) {
  LockGuard lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  total_ = 0;
}

std::string EventLog::to_ndjson(std::size_t n, std::uint64_t since_seq) const {
  const std::vector<Event> events = tail(n, since_seq);
  std::string out;
  for (const Event& e : events) {
    JsonWriter w;
    w.begin_object();
    w.kv("seq", e.seq);
    w.kv("wall_ns", e.wall_ns);
    w.kv("logical", e.logical);
    w.kv("trace_id", e.trace_id);
    w.kv("severity", to_string(e.severity));
    w.kv("kind", e.kind);
    w.kv("subject", e.subject);
    w.kv("detail", e.detail);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace cq::common::obs
