// Lightweight counters used by operators, the DRA, and the simulated
// network to account for work done (rows scanned, bytes shipped, ...).
// Benchmarks read these to report the paper's cost quantities directly.
//
// Well-known counters are pre-interned: metric::Id is an enum indexing a
// flat array, so hot-path `add(metric::kRowsScanned, n)` is one array
// store — no string hashing or map lookup. The string-keyed API remains
// for ad-hoc counters (slow path, ordered map).
//
// Thread safety: a Metrics bag is NOT internally synchronized. The engine
// is single-threaded by design (the mediator sync loop, the CQ manager and
// the benches all run on one thread); callers that share a bag across
// threads must synchronize externally. The trace collector — which *is*
// shared by observability consumers — carries its own mutex (see
// observability.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace cq::common {

/// Well-known counter ids, so producers and consumers agree on spelling
/// and the hot paths pay one array index instead of a string lookup.
/// The catalog of names (metric::name) is documented in
/// docs/observability.md.
namespace metric {
enum Id : std::uint16_t {
  kRowsScanned = 0,
  kRowsOutput,
  kTuplesCompared,
  kBytesSent,
  kMessagesSent,
  kDeltaRowsScanned,
  kBaseRowsScanned,
  kQueryExecutions,
  kTriggerChecks,
  kTriggersFired,
  kTriggersSuppressed,
  kGcRuns,
  kGcRowsReclaimed,
  kSyncRounds,
  kSyncFailures,
  kSyncRowsApplied,
  kIndexProbes,
  kDraInvocations,
  kDraTermsEvaluated,
  kDraSkippedIrrelevant,
  kIdCount  // sentinel; not a counter
};

/// Canonical spelling of a well-known counter ("rows_scanned", ...).
[[nodiscard]] const char* name(Id id) noexcept;

/// Reverse lookup; returns kIdCount when `name` is not well-known.
[[nodiscard]] Id from_name(const std::string& name) noexcept;
}  // namespace metric

/// A named bag of monotonically increasing counters.
class Metrics {
 public:
  /// Add delta to a well-known counter. O(1), no allocation.
  void add(metric::Id id, std::int64_t delta = 1) noexcept {
    wellknown_[static_cast<std::size_t>(id)] += delta;
  }

  /// Add delta to the named counter (creating it at zero). Resolves
  /// well-known names to their interned slot so both APIs agree.
  void add(const std::string& name, std::int64_t delta = 1);

  /// Current value of a well-known counter.
  [[nodiscard]] std::int64_t get(metric::Id id) const noexcept {
    return wellknown_[static_cast<std::size_t>(id)];
  }

  /// Current value by name, or 0 if never touched.
  [[nodiscard]] std::int64_t get(const std::string& name) const noexcept;

  /// All non-zero counters in name order (well-known and custom merged).
  [[nodiscard]] std::map<std::string, std::int64_t> all() const;

  /// Fold every counter of `other` into this bag.
  void merge(const Metrics& other);

  /// Reset every counter to zero.
  void reset() noexcept {
    wellknown_.fill(0);
    custom_.clear();
  }

  /// Human-readable dump: one `name=value` line per non-zero counter,
  /// sorted by name — deterministic across runs for scripted consumers
  /// (cqshell STATS, golden tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::int64_t, metric::kIdCount> wellknown_{};
  std::map<std::string, std::int64_t> custom_;
};

}  // namespace cq::common
