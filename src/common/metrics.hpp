// Lightweight counters used by operators, the DRA, and the simulated
// network to account for work done (rows scanned, bytes shipped, ...).
// Benchmarks read these to report the paper's cost quantities directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cq::common {

/// A named bag of monotonically increasing counters.
class Metrics {
 public:
  /// Add delta to the named counter (creating it at zero).
  void add(const std::string& name, std::int64_t delta = 1);

  /// Current value, or 0 if never touched.
  [[nodiscard]] std::int64_t get(const std::string& name) const noexcept;

  /// All counters in name order.
  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const noexcept {
    return counters_;
  }

  /// Reset every counter to zero.
  void reset() noexcept { counters_.clear(); }

  /// Human-readable one-line-per-counter dump.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::int64_t> counters_;
};

/// Well-known counter names, so producers and consumers agree on spelling.
namespace metric {
inline constexpr const char* kRowsScanned = "rows_scanned";
inline constexpr const char* kRowsOutput = "rows_output";
inline constexpr const char* kTuplesCompared = "tuples_compared";
inline constexpr const char* kBytesSent = "bytes_sent";
inline constexpr const char* kMessagesSent = "messages_sent";
inline constexpr const char* kDeltaRowsScanned = "delta_rows_scanned";
inline constexpr const char* kBaseRowsScanned = "base_rows_scanned";
inline constexpr const char* kQueryExecutions = "query_executions";
inline constexpr const char* kTriggerChecks = "trigger_checks";
}  // namespace metric

}  // namespace cq::common
