#include "common/observability.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cq::common::obs {

namespace {

// Journal every first-observed lock-order edge (common/lock_order.hpp).
// The checker invokes the hook with its re-entrancy guard set, so the
// journal mutex the record takes is invisible to the checker itself.
void journal_lock_order_edge(const lockorder::EdgeEvent& e) {
  if (!enabled()) return;  // same contract as every other journal producer
  global().events().record(
      Severity::kDebug, "lock_order_edge",
      std::string(e.held != nullptr ? e.held : "?") + "->" +
          (e.acquired != nullptr ? e.acquired : "?"),
      "held rank " + std::to_string(e.held_rank) + ", acquired rank " +
          std::to_string(e.acquired_rank));
}

// Installed at static-init time: set_edge_hook is one atomic store, and
// the hook only dereferences function-local statics (global()), which
// construct on first use.
[[maybe_unused]] const bool g_lock_order_hook_installed = [] {
  lockorder::set_edge_hook(&journal_lock_order_edge);
  return true;
}();

}  // namespace

std::uint64_t now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - origin)
          .count());
}

// ------------------------------------------------------------- context --

namespace {

thread_local SpanContext t_ctx;

thread_local std::uint32_t t_lane = ~std::uint32_t{0};
std::atomic<std::uint32_t> g_lane_counter{0};

// Lane display names, indexed by lane id. Guarded by its own named mutex
// (never taken on the span hot path — only at thread naming and export).
Mutex& lane_mu() noexcept {
  static Mutex mu{"lane_names", lockorder::LockRank::kLaneNames};
  return mu;
}
std::vector<std::string>& lane_names_locked() {
  static std::vector<std::string> names;
  return names;
}

}  // namespace

SpanContext current_context() noexcept { return t_ctx; }

ContextScope::ContextScope(SpanContext ctx) noexcept : saved_(t_ctx) { t_ctx = ctx; }

ContextScope::~ContextScope() { t_ctx = saved_; }

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint32_t lane_id() noexcept {
  if (t_lane == ~std::uint32_t{0}) {
    t_lane = g_lane_counter.fetch_add(1, std::memory_order_relaxed);
  }
  return t_lane;
}

std::uint32_t lane_count() noexcept {
  return g_lane_counter.load(std::memory_order_relaxed);
}

void set_lane_name(std::string name) {
  const std::uint32_t lane = lane_id();
  LockGuard lock(lane_mu());
  auto& names = lane_names_locked();
  if (names.size() <= lane) names.resize(lane + 1);
  names[lane] = std::move(name);
}

void name_lane_if_unset(const char* name) {
  const std::uint32_t lane = lane_id();
  LockGuard lock(lane_mu());
  auto& names = lane_names_locked();
  if (names.size() <= lane) names.resize(lane + 1);
  if (names[lane].empty()) names[lane] = name;
}

std::string lane_name(std::uint32_t lane) {
  {
    LockGuard lock(lane_mu());
    const auto& names = lane_names_locked();
    if (lane < names.size() && !names[lane].empty()) return names[lane];
  }
  return "lane-" + std::to_string(lane);
}

// --------------------------------------------------------- TraceCollector --

TraceCollector::TraceCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceCollector::record(std::string name, std::uint64_t start_ns,
                            std::uint64_t dur_ns, std::uint32_t depth,
                            std::uint32_t tid, std::uint64_t trace_id) {
  LockGuard lock(mu_);
  TraceEvent event{std::move(name), start_ns, dur_ns, depth, tid, trace_id};
  if (event.trace_id != 0 && !active_.empty()) capture(event);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_ % capacity_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

void TraceCollector::capture(const TraceEvent& event) {
  for (RetainedTrace& t : active_) {
    if (t.trace_id == event.trace_id) {
      if (t.events.size() < kMaxEventsPerTrace) t.events.push_back(event);
      return;
    }
  }
}

void TraceCollector::begin_trace(std::uint64_t trace_id) {
  LockGuard lock(mu_);
  if (active_.size() >= kMaxActiveTraces) return;
  RetainedTrace t;
  t.trace_id = trace_id;
  t.events.reserve(32);
  active_.push_back(std::move(t));
}

void TraceCollector::end_trace(std::uint64_t trace_id, std::uint64_t start_ns,
                               std::uint64_t dur_ns, std::string label) {
  LockGuard lock(mu_);
  auto it = active_.begin();
  while (it != active_.end() && it->trace_id != trace_id) ++it;
  if (it == active_.end()) return;  // capture never opened (active set full)
  RetainedTrace done = std::move(*it);
  active_.erase(it);
  done.start_ns = start_ns;
  done.dur_ns = dur_ns;
  done.label = std::move(label);
  // Keep slowest_ sorted, slowest first; admit iff it beats the current
  // tail or there is room.
  if (slowest_.size() >= slow_capacity_ &&
      (slow_capacity_ == 0 || done.dur_ns <= slowest_.back().dur_ns)) {
    return;
  }
  auto pos = slowest_.begin();
  while (pos != slowest_.end() && pos->dur_ns >= done.dur_ns) ++pos;
  slowest_.insert(pos, std::move(done));
  if (slowest_.size() > slow_capacity_) slowest_.resize(slow_capacity_);
}

std::vector<RetainedTrace> TraceCollector::slowest() const {
  LockGuard lock(mu_);
  return slowest_;
}

std::size_t TraceCollector::slow_capacity() const {
  LockGuard lock(mu_);
  return slow_capacity_;
}

void TraceCollector::set_slow_capacity(std::size_t n) {
  LockGuard lock(mu_);
  slow_capacity_ = n;
  if (slowest_.size() > slow_capacity_) slowest_.resize(slow_capacity_);
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  LockGuard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Oldest event sits at next_ once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::size_t TraceCollector::size() const {
  LockGuard lock(mu_);
  return ring_.size();
}

std::size_t TraceCollector::capacity() const {
  LockGuard lock(mu_);
  return capacity_;
}

std::uint64_t TraceCollector::dropped() const {
  LockGuard lock(mu_);
  return total_ - ring_.size();
}

void TraceCollector::clear() {
  LockGuard lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  active_.clear();
  slowest_.clear();
}

void TraceCollector::set_capacity(std::size_t capacity) {
  LockGuard lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  total_ = 0;
}

std::string TraceCollector::to_chrome_json(std::uint64_t trace_id) const {
  std::vector<TraceEvent> events;
  if (trace_id != 0) {
    // Prefer the retained capture (complete even after the ring wrapped);
    // fall back to whatever of the trace still sits in the ring.
    {
      LockGuard lock(mu_);
      for (const RetainedTrace& t : slowest_) {
        if (t.trace_id == trace_id) {
          events = t.events;
          break;
        }
      }
    }
    if (events.empty()) {
      for (TraceEvent& e : snapshot()) {
        if (e.trace_id == trace_id) events.push_back(std::move(e));
      }
    }
  } else {
    events = snapshot();
  }

  JsonWriter w;
  w.begin_array();
  // "M" metadata events label the process and each lane track, so
  // Perfetto shows "pool-1" instead of a bare tid.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", std::int64_t{1});
  w.key("args").begin_object().kv("name", "cq-engine").end_object();
  w.end_object();
  std::uint32_t lanes = lane_count();
  for (const TraceEvent& e : events) {
    if (e.tid >= lanes) lanes = e.tid + 1;
  }
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", std::int64_t{1});
    w.kv("tid", std::uint64_t{lane});
    w.key("args").begin_object().kv("name", lane_name(lane)).end_object();
    w.end_object();
  }
  for (const auto& e : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", "X");
    w.kv("pid", std::int64_t{1});
    // chrome://tracing stacks same-tid "X" events by time containment;
    // depth is informative only.
    w.kv("tid", std::uint64_t{e.tid});
    w.kv("ts", static_cast<double>(e.start_ns) / 1000.0);
    w.kv("dur", static_cast<double>(e.dur_ns) / 1000.0);
    w.key("args").begin_object();
    w.kv("depth", std::uint64_t{e.depth});
    if (e.trace_id != 0) w.kv("trace_id", e.trace_id);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  return w.str();
}

void TraceCollector::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("trace dump: cannot open '" + path + "' for writing");
  out << to_chrome_json() << "\n";
  if (!out) throw IoError("trace dump: write to '" + path + "' failed");
}

// ------------------------------------------------------------------ Span --

Span::Span(const char* name, Histogram* latency_us) noexcept
    : name_(name), latency_us_(latency_us), active_(enabled()) {
  if (active_) {
    start_ns_ = now_ns();
    trace_id_ = t_ctx.trace_id;
    depth_ = t_ctx.depth++;
  }
}

void Span::close() noexcept {
  if (!active_) return;
  active_ = false;
  --t_ctx.depth;
  const std::uint64_t dur = now_ns() - start_ns_;
  try {
    global().traces().record(name_, start_ns_, dur, depth_, lane_id(), trace_id_);
    if (latency_us_ != nullptr) latency_us_->record(dur / 1000);
  } catch (...) {
    // Tracing must never take the process down (allocation failure, ...).
  }
}

// ----------------------------------------------------------- CommitTrace --

CommitTrace::CommitTrace() noexcept {
  if (!enabled()) return;
  active_ = true;
  id_ = next_trace_id();
  start_ns_ = now_ns();
  saved_ = t_ctx;
  // Children open one level under the root "commit" span this scope
  // records at close.
  t_ctx = SpanContext{id_, saved_.depth + 1};
  try {
    global().traces().begin_trace(id_);
  } catch (...) {
    // Same contract as Span::close: tracing must never take the engine
    // down. A failed begin_trace just loses this commit's trace.
  }
}

void CommitTrace::set_label(std::string label) {
  if (active_) label_ = std::move(label);
}

CommitTrace::~CommitTrace() {
  if (!active_) return;
  const std::uint64_t dur = now_ns() - start_ns_;
  t_ctx = saved_;
  try {
    TraceCollector& traces = global().traces();
    traces.record("commit", start_ns_, dur, saved_.depth, lane_id(), id_);
    static Histogram& commit_hist = global().histogram(hist::kCommitToNotifyUs);
    commit_hist.record(dur / 1000);
    traces.end_trace(id_, start_ns_, dur,
                     label_.empty() ? std::string{"commit"} : std::move(label_));
  } catch (...) {
    // Same contract as Span::close: never take the engine down.
  }
}

// -------------------------------------------------------------- Registry --

Histogram& Registry::histogram(const std::string& name) {
  LockGuard lock(mu_);
  return histograms_[name];
}

std::map<std::string, Histogram> Registry::histogram_snapshot() const {
  LockGuard lock(mu_);
  return histograms_;
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  LockGuard lock(mu_);
  return gauges_[{name, std::move(labels)}];
}

std::vector<GaugeSample> Registry::gauge_snapshot() const {
  LockGuard lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    out.push_back({key.first, key.second, g.get()});
  }
  return out;
}

void Registry::reset() {
  metrics_.reset();
  traces_.clear();
  events_.clear();
  LockGuard lock(mu_);
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [key, g] : gauges_) g.set(0);
}

bool gauge_is_counter(const std::string& name) noexcept {
  return name == gauge::kTraceRingDropped || name == gauge::kEventLogDropped ||
         name == gauge::kPoolLaneBusyUs || name == gauge::kShardCommits;
}

namespace {

Mutex& hooks_mu() noexcept {
  static Mutex mu{"refresh_hooks", lockorder::LockRank::kRefreshHooks};
  return mu;
}
std::map<std::uint64_t, std::function<void()>>& hooks_locked() {
  static std::map<std::uint64_t, std::function<void()>> hooks;
  return hooks;
}

}  // namespace

std::uint64_t register_refresh_hook(std::function<void()> fn) {
  static std::atomic<std::uint64_t> next_id{0};
  const std::uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed) + 1;
  LockGuard lock(hooks_mu());
  hooks_locked()[id] = std::move(fn);
  return id;
}

void unregister_refresh_hook(std::uint64_t id) {
  LockGuard lock(hooks_mu());
  hooks_locked().erase(id);
}

void refresh_registry_gauges() {
  Registry& r = global();
  r.gauge(gauge::kTraceRingEvents).set(static_cast<std::int64_t>(r.traces().size()));
  r.gauge(gauge::kTraceRingDropped).set(static_cast<std::int64_t>(r.traces().dropped()));
  r.gauge(gauge::kEventLogEvents).set(static_cast<std::int64_t>(r.events().size()));
  r.gauge(gauge::kEventLogDropped).set(static_cast<std::int64_t>(r.events().dropped()));
  // Hooks run under the hooks mutex: unregister_refresh_hook then blocks
  // until no refresh is mid-hook, so a component may destroy itself the
  // moment unregister returns. Hooks only publish gauges — they must not
  // call back into register/unregister.
  LockGuard lock(hooks_mu());
  for (const auto& [id, fn] : hooks_locked()) fn();
}

Registry& global() noexcept {
  static Registry registry;
  return registry;
}

// ------------------------------------------------------------ JsonWriter --

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair; no comma
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  std::ostringstream os;
  os << v;
  out_ += os.str();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

// ---------------------------------------------------------------- export --

void write_histogram_json(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("sum", h.sum());
  w.kv("min", h.min());
  w.kv("max", h.max());
  w.kv("mean", h.mean());
  w.kv("p50", h.p50());
  w.kv("p95", h.p95());
  w.kv("p99", h.p99());
  w.end_object();
}

Section events_section() {
  return {"events", [](JsonWriter& w) {
            const EventLog& log = global().events();
            w.begin_object();
            w.kv("last_seq", log.total());
            w.kv("dropped", log.dropped());
            w.kv("size", static_cast<std::uint64_t>(log.size()));
            w.end_object();
          }};
}

std::string export_json(const Metrics& counters,
                        const std::map<std::string, Histogram>& histograms,
                        const std::vector<Section>& sections) {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters.all()) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name);
    write_histogram_json(w, h);
  }
  w.end_object();
  for (const auto& section : sections) {
    w.key(section.key);
    section.write(w);
  }
  w.end_object();
  return w.str();
}

std::string export_json(const Registry& registry, const std::vector<Section>& sections) {
  return export_json(registry.metrics(), registry.histogram_snapshot(), sections);
}

std::string export_profile_json() {
  refresh_registry_gauges();
  Registry& r = global();
  JsonWriter w;
  w.begin_object();
  w.kv("lock_profiling", lockprof::enabled());

  w.key("lock_contention").begin_array();
  const std::size_t sites = lockprof::site_count();
  for (std::size_t i = 0; i < sites; ++i) {
    const lockprof::SiteStats& s = lockprof::site(i);
    const char* name = s.name.load(std::memory_order_acquire);
    w.begin_object();
    w.kv("site", name != nullptr ? name : "?");
    w.kv("acquisitions", s.acquisitions.load(std::memory_order_relaxed));
    w.kv("contended", s.contended.load(std::memory_order_relaxed));
    w.kv("wait_us_total", s.wait_ns.load(std::memory_order_relaxed) / 1000);
    w.kv("hold_us_total", s.hold_ns.load(std::memory_order_relaxed) / 1000);
    w.key("wait_us");
    write_histogram_json(w, s.wait_us);
    w.key("hold_us");
    write_histogram_json(w, s.hold_us);
    w.end_object();
  }
  w.end_array();

  // Lane rows come off the gauge snapshot (the pool's refresh hook just
  // published them), so the document needs no reference to the pool.
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> lanes;
  for (const GaugeSample& g : r.gauge_snapshot()) {
    if (g.labels.size() != 1 || g.labels[0].first != "lane") continue;
    if (g.name == gauge::kPoolLaneBusyUs) {
      lanes[g.labels[0].second].first = g.value;
    } else if (g.name == gauge::kPoolLaneUtilization) {
      lanes[g.labels[0].second].second = g.value;
    }
  }
  w.key("lanes").begin_array();
  for (const auto& [lane, v] : lanes) {
    w.begin_object();
    w.kv("lane", lane);
    w.kv("busy_us", v.first);
    w.kv("utilization_pct", v.second);
    w.end_object();
  }
  w.end_array();

  const std::map<std::string, Histogram> hists = r.histogram_snapshot();
  for (const char* name : {hist::kPoolTaskWaitUs, hist::kCommitToNotifyUs}) {
    auto it = hists.find(name);
    if (it == hists.end()) continue;
    w.key(name);
    write_histogram_json(w, it->second);
  }

  w.key("slowest_commits").begin_array();
  for (const RetainedTrace& t : r.traces().slowest()) {
    w.begin_object();
    w.kv("trace_id", t.trace_id);
    w.kv("label", t.label);
    w.kv("start_us", t.start_ns / 1000);
    w.kv("dur_us", t.dur_ns / 1000);
    // Per-phase rollup: total duration and count of each span name under
    // the commit (the child spans are the pipeline phases).
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> phases;
    for (const TraceEvent& e : t.events) {
      auto& [count, total_ns] = phases[e.name];
      ++count;
      total_ns += e.dur_ns;
    }
    w.key("phases").begin_object();
    for (const auto& [name, p] : phases) {
      w.key(name).begin_object();
      w.kv("count", p.first);
      w.kv("total_us", p.second / 1000);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace cq::common::obs
